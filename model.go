package gator

import (
	"encoding/json"
	"sort"
)

// Model is the full GUI model of an application in a serializable form —
// the "key component to be used by compile-time analysis researchers" the
// paper's abstract promises, consumable by downstream tools (test
// generators, security analyzers, run-time explorers).
type Model struct {
	App        string            `json:"app"`
	Views      []ModelView       `json:"views"`
	Activities []ModelActivity   `json:"activities"`
	Hierarchy  []ModelEdge       `json:"hierarchy"`
	Tuples     []EventTuple      `json:"eventTuples"`
	Menus      []MenuEntry       `json:"menus,omitempty"`
	Transit    []Transition      `json:"transitions,omitempty"`
	Findings   []CheckFinding    `json:"findings,omitempty"`
	Stats      map[string]int    `json:"stats"`
	Elapsed    string            `json:"analysisTime"`
	Options    map[string]bool   `json:"options,omitempty"`
	Variables  map[string]string `json:"-"`
}

// ModelView is one abstract view object.
type ModelView struct {
	Class  string `json:"class"`
	Origin string `json:"origin"`
	ID     string `json:"id,omitempty"`
}

// ModelActivity is one activity with its content roots.
type ModelActivity struct {
	Name  string   `json:"name"`
	Roots []string `json:"roots"`
}

// ModelEdge is one parent-child association, by origin.
type ModelEdge struct {
	Parent string `json:"parent"`
	Child  string `json:"child"`
}

// Model assembles the complete serializable GUI model.
func (r *Result) Model() *Model {
	m := &Model{
		App:     r.app.Name,
		Tuples:  r.EventTuples(),
		Menus:   r.MenuEntries(),
		Transit: r.Transitions(),
		Elapsed: r.Elapsed().String(),
		Stats:   map[string]int{},
	}
	for _, v := range r.Views() {
		m.Views = append(m.Views, ModelView{Class: v.Class, Origin: v.Origin, ID: v.ID})
	}
	sort.Slice(m.Views, func(i, j int) bool { return m.Views[i].Origin < m.Views[j].Origin })
	for _, a := range r.Activities() {
		ma := ModelActivity{Name: a.Activity}
		for _, root := range a.Roots {
			ma.Roots = append(ma.Roots, root.Origin)
		}
		sort.Strings(ma.Roots)
		m.Activities = append(m.Activities, ma)
	}
	for _, e := range r.Hierarchy() {
		m.Hierarchy = append(m.Hierarchy, ModelEdge{Parent: e.Parent.Origin, Child: e.Child.Origin})
	}
	sort.Slice(m.Hierarchy, func(i, j int) bool {
		a, b := m.Hierarchy[i], m.Hierarchy[j]
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		return a.Child < b.Child
	})
	m.Findings = r.Check()

	t1 := r.Table1()
	m.Stats["classes"] = t1.Classes
	m.Stats["methods"] = t1.Methods
	m.Stats["layouts"] = t1.LayoutIDs
	m.Stats["viewIds"] = t1.ViewIDs
	m.Stats["viewsInflated"] = t1.ViewsInflated
	m.Stats["viewsAllocated"] = t1.ViewsAllocated
	m.Stats["listeners"] = t1.Listeners
	m.Stats["inflateOps"] = t1.InflateOps
	m.Stats["findViewOps"] = t1.FindViewOps
	m.Stats["addViewOps"] = t1.AddViewOps
	m.Stats["setListenerOps"] = t1.SetListenerOps
	m.Stats["setIdOps"] = t1.SetIdOps
	return m
}

// JSON serializes the model with stable field ordering.
func (m *Model) JSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

package gator

import (
	"strings"
	"testing"

	"gator/internal/corpus"
)

// benchEditSize is the modular-app size (activities, one compilation unit
// each plus a shared unit) used by the incremental-edit benchmarks and by
// gatorbench's BENCH_4.json record. 30 activities yield 62 compilation
// units (sources + layouts); BenchmarkIncrementalLarge runs the same edit
// on a 502-unit app — the paged unit bitsets put no cap on how many units
// dependency tracking covers.
const benchEditSize = 30

// benchEditVariants returns the base input and two alternating body-only
// variants of one activity file, so every benchmark iteration performs a
// real edit (identical input would short-circuit as "unchanged").
func benchEditVariants() (sources, layouts map[string]string, a, b string) {
	sources, layouts = corpus.ModularApp(benchEditSize)
	base := sources["act1.alite"]
	a = strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	b = strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = p;\n", 1)
	return sources, layouts, a, b
}

// BenchmarkIncrementalEdit measures re-analysis after a single-file body
// edit on the incremental path: shared parse cache, in-place re-lowering of
// the edited file, and warm re-solving from the retained fact base.
func BenchmarkIncrementalEdit(bm *testing.B) {
	sources, layouts, va, vb := benchEditVariants()
	c := NewCache()
	prev, err := AnalyzeIncremental(nil, sources, layouts, Options{}, c)
	if err != nil {
		bm.Fatal(err)
	}
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if i%2 == 0 {
			sources["act1.alite"] = va
		} else {
			sources["act1.alite"] = vb
		}
		res, err := AnalyzeIncremental(prev, sources, layouts, Options{}, c)
		if err != nil {
			bm.Fatal(err)
		}
		if mode := res.Incremental().Mode; mode != "warm" {
			bm.Fatalf("iteration %d: mode %q (reason %q), want warm", i, mode, res.Incremental().Reason)
		}
		prev = res
	}
}

// BenchmarkIncrementalLarge is BenchmarkIncrementalEdit at 250 activities
// (502 compilation units): the shape the former 64-unit dependency-tracking
// budget forced to scratch on every edit. gatorbench -solvejson records the
// warm-vs-cold ratio for this size into BENCH_6.json.
func BenchmarkIncrementalLarge(bm *testing.B) {
	sources, layouts := corpus.ModularApp(250)
	base := sources["act1.alite"]
	va := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	vb := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = p;\n", 1)
	c := NewCache()
	prev, err := AnalyzeIncremental(nil, sources, layouts, Options{}, c)
	if err != nil {
		bm.Fatal(err)
	}
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if i%2 == 0 {
			sources["act1.alite"] = va
		} else {
			sources["act1.alite"] = vb
		}
		res, err := AnalyzeIncremental(prev, sources, layouts, Options{}, c)
		if err != nil {
			bm.Fatal(err)
		}
		if mode := res.Incremental().Mode; mode != "warm" {
			bm.Fatalf("iteration %d: mode %q (reason %q), want warm", i, mode, res.Incremental().Reason)
		}
		prev = res
	}
}

// BenchmarkScratchEdit is the baseline the incremental path is judged
// against: the same single-file edit handled the way a non-incremental
// pipeline must — re-load everything and solve from scratch.
func BenchmarkScratchEdit(bm *testing.B) {
	sources, layouts, va, vb := benchEditVariants()
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		if i%2 == 0 {
			sources["act1.alite"] = va
		} else {
			sources["act1.alite"] = vb
		}
		app, err := Load(sources, layouts)
		if err != nil {
			bm.Fatal(err)
		}
		app.Analyze(Options{})
	}
}

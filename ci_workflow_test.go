package gator

// The GitHub Actions workflows are plain data no compiler checks, and a
// YAML syntax slip (a stray tab, a typo'd trigger key) silently disables
// CI instead of failing it. These tests lint .github/workflows/*.yml with
// the strictness a config file deserves — structure, indentation, and the
// contract that CI actually invokes the repo's own gates — using only the
// stdlib (the repo takes no external dependencies, so no yaml package).

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readWorkflow loads one workflow file and applies the YAML subset lint
// every workflow must pass: no tabs (YAML forbids them in indentation and
// GitHub rejects them), no trailing whitespace, even space indentation,
// and balanced ${{ }} expressions.
func readWorkflow(t *testing.T, name string) string {
	t.Helper()
	path := filepath.Join(".github", "workflows", name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("workflow missing: %v", err)
	}
	text := string(data)
	for i, line := range strings.Split(text, "\n") {
		if strings.Contains(line, "\t") {
			t.Errorf("%s:%d: tab character (YAML indentation must be spaces)", path, i+1)
		}
		if line != strings.TrimRight(line, " ") {
			t.Errorf("%s:%d: trailing whitespace", path, i+1)
		}
		indent := len(line) - len(strings.TrimLeft(line, " "))
		if indent%2 != 0 && !strings.HasPrefix(strings.TrimSpace(line), "#") {
			t.Errorf("%s:%d: odd indentation (%d spaces)", path, i+1, indent)
		}
		if strings.Count(line, "${{") != strings.Count(line, "}}") {
			t.Errorf("%s:%d: unbalanced ${{ }} expression", path, i+1)
		}
	}
	return text
}

// topLevelKeys returns the zero-indent mapping keys of a workflow document.
func topLevelKeys(text string) map[string]bool {
	keys := map[string]bool{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, " ") || strings.HasPrefix(line, "#") {
			continue
		}
		if i := strings.Index(line, ":"); i > 0 {
			keys[line[:i]] = true
		}
	}
	return keys
}

// requireAll asserts each marker appears in the workflow text.
func requireAll(t *testing.T, path, text string, markers []string) {
	t.Helper()
	for _, m := range markers {
		if !strings.Contains(text, m) {
			t.Errorf("%s: missing %q", path, m)
		}
	}
}

// checkActionsPinned asserts every `uses:` references a major version tag,
// so an action update is an explicit diff rather than a moving target.
func checkActionsPinned(t *testing.T, path, text string) {
	t.Helper()
	for i, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(line), "- "))
		if !strings.HasPrefix(trimmed, "uses:") {
			continue
		}
		ref := strings.TrimSpace(strings.TrimPrefix(trimmed, "uses:"))
		if !strings.Contains(ref, "@v") {
			t.Errorf("%s:%d: action %q not pinned to a major version", path, i+1, ref)
		}
	}
}

// checkJobTimeouts asserts every job carries its own timeout-minutes
// ceiling. GitHub's default is 6 hours; a hung smoke or fuzz target should
// fail the run, not hold a runner. Jobs are counted by their `runs-on`
// lines, so a new job without a timeout fails here rather than shipping.
func checkJobTimeouts(t *testing.T, path, text string) {
	t.Helper()
	jobs := strings.Count(text, "runs-on:")
	timeouts := strings.Count(text, "timeout-minutes:")
	if jobs == 0 {
		t.Errorf("%s: no runs-on lines; job counting is broken", path)
	}
	if timeouts != jobs {
		t.Errorf("%s: %d jobs but %d timeout-minutes lines; every job needs its own ceiling", path, jobs, timeouts)
	}
}

func TestCIWorkflow(t *testing.T) {
	text := readWorkflow(t, "ci.yml")
	keys := topLevelKeys(text)
	for _, k := range []string{"name", "on", "permissions", "jobs"} {
		if !keys[k] {
			t.Errorf("ci.yml: missing top-level key %q", k)
		}
	}
	requireAll(t, "ci.yml", text, []string{
		// Triggers: every push to main and every pull request.
		"push:", "pull_request:",
		// The gate job must run this repo's own tier-1 script, not an
		// inlined command list that can drift from it.
		"scripts/ci.sh",
		// Go version matrix: current and previous release.
		"matrix", "stable", "oldstable",
		"actions/checkout@", "actions/setup-go@",
		// Module/build caching and the separate full race-detector job.
		"cache: true", "go test -race ./...",
		// Failed runs keep their logs — and the cluster smoke's per-replica
		// request logs (ci.sh step 12 writes them to cluster-smoke-logs/).
		"if: failure()", "actions/upload-artifact@",
		"cluster-smoke-logs",
	})
	checkActionsPinned(t, "ci.yml", text)
	checkJobTimeouts(t, "ci.yml", text)
}

func TestNightlyWorkflow(t *testing.T) {
	text := readWorkflow(t, "nightly.yml")
	keys := topLevelKeys(text)
	for _, k := range []string{"name", "on", "permissions", "jobs"} {
		if !keys[k] {
			t.Errorf("nightly.yml: missing top-level key %q", k)
		}
	}
	requireAll(t, "nightly.yml", text, []string{
		"schedule:", "cron:", "workflow_dispatch",
		// Benchmark regression gate over the checked-in records, including
		// the precision record added with context sensitivity and the
		// lifecycle-recall record added with the ordering checkers.
		"scripts/benchdiff.sh", "BENCH_7.json", "BENCH_10.json",
		"BenchmarkIncrementalEdit",
		// The cluster failover smoke runs nightly with its replica logs
		// under bench-new/, where the failure artifact picks them up.
		"gatorproxy -smoke", "bench-new/cluster-smoke-logs",
		// Fuzz budget: 30 seconds per target, all targets present.
		"-fuzztime 30s", "FuzzParse", "FuzzLayout", "FuzzOrderingScenario",
		// Crashers and regenerated records survive the failed run.
		"if: failure()", "actions/upload-artifact@",
	})
	checkActionsPinned(t, "nightly.yml", text)
	checkJobTimeouts(t, "nightly.yml", text)
}

// TestCIScriptsExist pins the coupling between the workflows and the
// scripts they invoke: renaming a script must fail the suite, not silently
// break CI.
func TestCIScriptsExist(t *testing.T) {
	for _, s := range []string{"scripts/ci.sh", "scripts/benchdiff.sh"} {
		info, err := os.Stat(s)
		if err != nil {
			t.Errorf("%s: %v", s, err)
			continue
		}
		if info.Mode()&0o111 == 0 {
			t.Errorf("%s: not executable", s)
		}
	}
}

// TestCIScriptsCoverPrecision pins the precision gate into both scripts:
// ci.sh must run the context-sensitivity smoke step and regenerate
// BENCH_7.json, and benchdiff.sh must regenerate and diff it nightly.
func TestCIScriptsCoverPrecision(t *testing.T) {
	for path, markers := range map[string][]string{
		"scripts/ci.sh":        {"-ctx 1cfa", "-table precision", "-precjson BENCH_7.json"},
		"scripts/benchdiff.sh": {"-precjson", "BENCH_7.json"},
	} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		requireAll(t, path, string(data), markers)
	}
}

// TestCIScriptsCoverCluster pins the cluster gate into the tier-1 script:
// the server smoke must exercise replica identity, the cluster smoke must
// run with its replica logs where ci.yml's failure artifact expects them,
// the short race sweep must include the cluster package (the proxy's whole
// job is concurrent routing), and the full run must regenerate the cluster
// benchmark record.
func TestCIScriptsCoverCluster(t *testing.T) {
	data, err := os.ReadFile("scripts/ci.sh")
	if err != nil {
		t.Fatal(err)
	}
	requireAll(t, "scripts/ci.sh", string(data), []string{
		"gatord -smoke -replica",
		"gatorproxy -smoke -smoke-logs cluster-smoke-logs",
		"./internal/cluster",
		"-clusterjson BENCH_9.json",
	})
}

// TestBenchRecordWiringInSync derives the authoritative benchmark-record
// list from the checked-in BENCH_*.json files themselves and asserts every
// consumer knows about every record: ci.sh must regenerate it, benchdiff.sh
// must regenerate and diff it, and nightly.yml must document it. Adding a
// BENCH_N.json without wiring it everywhere — or wiring a record that was
// never checked in — fails here instead of silently ungated drift.
func TestBenchRecordWiringInSync(t *testing.T) {
	records, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(records) == 0 {
		t.Fatal("no checked-in BENCH_*.json records; the glob is broken")
	}
	for _, consumer := range []string{
		"scripts/ci.sh",
		"scripts/benchdiff.sh",
		filepath.Join(".github", "workflows", "nightly.yml"),
	} {
		data, err := os.ReadFile(consumer)
		if err != nil {
			t.Errorf("%s: %v", consumer, err)
			continue
		}
		requireAll(t, consumer, string(data), records)
	}
	// The reverse direction: benchdiff.sh must not diff a record that is
	// not checked in (a stale line would fail every nightly run).
	diffScript, err := os.ReadFile("scripts/benchdiff.sh")
	if err != nil {
		t.Fatal(err)
	}
	checked := map[string]bool{}
	for _, r := range records {
		checked[r] = true
	}
	for _, line := range strings.Split(string(diffScript), "\n") {
		fields := strings.Fields(line)
		for _, f := range fields {
			if strings.HasPrefix(f, "BENCH_") && strings.HasSuffix(f, ".json") &&
				!strings.Contains(f, "*") && !checked[f] {
				t.Errorf("scripts/benchdiff.sh references %s, which is not checked in", f)
			}
		}
	}
}

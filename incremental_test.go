package gator

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"gator/internal/corpus"
)

// snapshot renders every cross-run-stable output of a result into one
// string, for byte-identity comparison between incremental and from-scratch
// analyses. Timing fields (summary, Model.Elapsed) and node-numbered outputs
// (Dot) are excluded by design; see DESIGN.md, "Incremental solving".
func snapshot(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	for _, v := range res.Views() {
		fmt.Fprintf(&b, "view %s %s id=%s\n", v.Class, v.Origin, v.ID)
	}
	for _, e := range res.Hierarchy() {
		fmt.Fprintf(&b, "hier %s(%s) => %s(%s)\n", e.Parent.Class, e.Parent.Origin, e.Child.Class, e.Child.Origin)
	}
	for _, a := range res.Activities() {
		fmt.Fprintf(&b, "act %s:", a.Activity)
		for _, r := range a.Roots {
			fmt.Fprintf(&b, " %s(%s)", r.Class, r.Origin)
		}
		b.WriteString("\n")
	}
	for _, tup := range res.EventTuples() {
		fmt.Fprintf(&b, "tuple %s %s(%s) %s %s\n", tup.Activity, tup.View.Class, tup.View.Origin, tup.Event, tup.Handler)
	}
	for _, m := range res.MenuEntries() {
		fmt.Fprintf(&b, "menu %s %s %s\n", m.Activity, m.ItemID, m.Handler)
	}
	for _, tr := range res.Transitions() {
		fmt.Fprintf(&b, "transition %s -> %s via %s\n", tr.Source, tr.Target, tr.Via)
	}
	cr, err := res.CheckReport()
	if err != nil {
		t.Fatalf("CheckReport: %v", err)
	}
	b.WriteString(cr.Text())
	sarif, err := cr.SARIF()
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}
	b.Write(sarif)
	return b.String()
}

// edit mutates one application input in place.
type edit struct {
	name     string
	wantMode string // expected IncrementalStats.Mode after the edit
	apply    func(sources, layouts map[string]string)
}

// editCorpus is the differential edit corpus: every class of change the
// incremental contract distinguishes. Body-confined edits must re-solve
// warm; everything else must fall back to a full rebuild — and in both
// cases the solution must be byte-identical to analyzing the edited
// input from scratch.
func editCorpus() []edit {
	return []edit{
		{"body-stmt-add", "warm", func(s, l map[string]string) {
			s["act2.alite"] = strings.Replace(s["act2.alite"],
				"\t\tthis.stash = back;\n",
				"\t\tthis.stash = back;\n\t\tView extra = this.findViewById(R.id.act2_txt);\n\t\tthis.stash = extra;\n", 1)
		}},
		{"body-new-code-id", "warm", func(s, l map[string]string) {
			s["act0.alite"] = strings.Replace(s["act0.alite"],
				"\t\tw.setId(R.id.act0_txt);\n",
				"\t\tw.setId(R.id.fresh_code_only_id);\n", 1)
		}},
		{"swap-listener", "warm", func(s, l map[string]string) {
			s["act1.alite"] = strings.Replace(s["act1.alite"],
				"\t\tbtn.setOnLongClickListener(ll);\n",
				"\t\tView tgt = this.findViewById(R.id.act1_root);\n\t\ttgt.setOnLongClickListener(ll);\n", 1)
		}},
		{"add-view-id", "scratch", func(s, l map[string]string) {
			l["act3"] = strings.Replace(l["act3"],
				`<TextView android:id="@+id/act3_txt"/>`,
				`<TextView android:id="@+id/act3_txt"/><TextView android:id="@+id/act3_added"/>`, 1)
		}},
		{"remove-view-id", "scratch", func(s, l map[string]string) {
			l["act0"] = strings.Replace(l["act0"],
				`<Button android:id="@+id/act0_btn"/>`, `<Button/>`, 1)
		}},
		{"rename-view-id", "scratch", func(s, l map[string]string) {
			l["act1"] = strings.Replace(l["act1"],
				`android:id="@+id/act1_txt"`, `android:id="@+id/act1_renamed"`, 1)
		}},
		{"shape-add-method", "scratch", func(s, l map[string]string) {
			s["act3.alite"] = strings.Replace(s["act3.alite"],
				"\tvoid onPanelClick(View v) {\n",
				"\tvoid helper(View v) {\n\t\tthis.stash = v;\n\t}\n\tvoid onPanelClick(View v) {\n", 1)
		}},
		{"add-file", "scratch", func(s, l map[string]string) {
			s["extra.alite"] = "class Extra implements OnClickListener {\n\tView got;\n\tvoid onClick(View v) {\n\t\tthis.got = v;\n\t}\n}\n"
		}},
	}
}

func copyInput(sources, layouts map[string]string) (map[string]string, map[string]string) {
	s := make(map[string]string, len(sources))
	for k, v := range sources {
		s[k] = v
	}
	l := make(map[string]string, len(layouts))
	for k, v := range layouts {
		l[k] = v
	}
	return s, l
}

// TestIncrementalWarmBodyEdit is the core contract on the fast path: a
// body-only edit re-solves warm, retracting and retaining facts, and the
// warm solution renders byte-identically to a from-scratch analysis of the
// edited input.
func TestIncrementalWarmBodyEdit(t *testing.T) {
	sources, layouts := corpus.ModularApp(4)
	c := NewCache()
	prev, err := AnalyzeIncremental(nil, sources, layouts, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := prev.Incremental().Mode; got != "scratch" {
		t.Fatalf("initial mode = %q, want scratch", got)
	}

	edited, editedLayouts := copyInput(sources, layouts)
	edited["act1.alite"] = strings.Replace(edited["act1.alite"],
		"\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)

	warm, err := AnalyzeIncremental(prev, edited, editedLayouts, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Incremental()
	if st.Mode != "warm" {
		t.Fatalf("mode = %q (reason %q), want warm", st.Mode, st.Reason)
	}
	if st.Retained == 0 || st.Retracted == 0 {
		t.Fatalf("retained=%d retracted=%d, want both nonzero", st.Retained, st.Retracted)
	}
	if len(st.DirtyUnits) != 1 || st.DirtyUnits[0] != "act1.alite" {
		t.Fatalf("dirty units = %v", st.DirtyUnits)
	}
	if !prev.Stale() {
		t.Fatal("warm re-solve must mark the consumed result stale")
	}

	fresh, err := Load(edited, editedLayouts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapshot(t, warm), snapshot(t, fresh.Analyze(Options{})); got != want {
		t.Fatalf("warm solution differs from scratch:\n--- warm ---\n%s\n--- scratch ---\n%s", got, want)
	}

	// A consumed previous result is refused, not silently misused.
	if _, err := AnalyzeIncremental(prev, edited, editedLayouts, Options{}, c); !errors.Is(err, ErrStaleResult) {
		t.Fatalf("reusing a stale result: err = %v, want ErrStaleResult", err)
	}
}

// TestIncrementalUnchanged: byte-identical inputs short-circuit.
func TestIncrementalUnchanged(t *testing.T) {
	sources, layouts := corpus.ModularApp(2)
	prev, err := AnalyzeIncremental(nil, sources, layouts, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, err := AnalyzeIncremental(prev, sources, layouts, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if again != prev {
		t.Fatal("unchanged input must return the previous result")
	}
	if got := again.Incremental().Mode; got != "unchanged" {
		t.Fatalf("mode = %q, want unchanged", got)
	}
}

// TestIncrementalFallbackReasons: every non-body edit class and every
// schedule-sensitive option falls back to a full rebuild, with the reason
// reported.
func TestIncrementalFallbackReasons(t *testing.T) {
	sources, layouts := corpus.ModularApp(2)
	base, err := AnalyzeIncremental(nil, sources, layouts, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name       string
		mutate     func(s, l map[string]string)
		wantPrefix string
	}{
		{"layout-edit", func(s, l map[string]string) {
			l["panel"] = strings.Replace(l["panel"], "panel_btn", "panel_button", 1)
		}, "layouts changed"},
		{"file-added", func(s, l map[string]string) {
			s["new.alite"] = "class N {\n\tint x;\n}\n"
		}, "file set changed"},
		{"file-removed", func(s, l map[string]string) {
			delete(s, "act1.alite")
		}, "file set changed"},
		{"shape-change", func(s, l map[string]string) {
			s["shared.alite"] = strings.Replace(s["shared.alite"], "\tView held;\n", "\tView held;\n\tView spare;\n", 1)
		}, "declaration shape changed"},
	}
	for _, tc := range cases {
		s, l := copyInput(sources, layouts)
		tc.mutate(s, l)
		// file-removed drops a referenced activity class; the rebuild may
		// legitimately fail to load, which is the same outcome scratch gives.
		res, err := AnalyzeIncremental(base, s, l, Options{}, nil)
		if err != nil {
			if _, ferr := Load(s, l); ferr == nil {
				t.Fatalf("%s: incremental failed (%v) but scratch load succeeds", tc.name, err)
			}
			continue
		}
		st := res.Incremental()
		if st.Mode != "scratch" || !strings.HasPrefix(st.Reason, tc.wantPrefix) {
			t.Fatalf("%s: mode=%q reason=%q, want scratch/%s*", tc.name, st.Mode, st.Reason, tc.wantPrefix)
		}
		if got, want := snapshot(t, res), snapshot(t, mustAnalyze(t, s, l, Options{})); got != want {
			t.Fatalf("%s: fallback solution differs from scratch", tc.name)
		}
	}

	// Provenance needs the full derivation schedule: the core layer reports
	// the fallback even when the edit is body-only.
	s, l := copyInput(sources, layouts)
	s["act0.alite"] = strings.Replace(s["act0.alite"], "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	res, err := AnalyzeIncremental(base, s, l, Options{Provenance: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Incremental(); st.Mode != "scratch" {
		t.Fatalf("provenance run: mode=%q reason=%q, want scratch", st.Mode, st.Reason)
	}
}

func mustAnalyze(t *testing.T, sources, layouts map[string]string, opts Options) *Result {
	t.Helper()
	app, err := Load(sources, layouts)
	if err != nil {
		t.Fatal(err)
	}
	return app.Analyze(opts)
}

// TestIncrementalEditCorpus runs the full differential corpus: for every
// edit class, an incremental chain (initial scratch → edited re-analysis)
// must produce byte-identical stable outputs to a one-shot analysis of the
// edited input, the mode must match the edit class, and batch runs over the
// edited corpus at 1 and 8 workers must agree with both.
func TestIncrementalEditCorpus(t *testing.T) {
	baseSources, baseLayouts := corpus.ModularApp(4)

	type variant struct {
		name     string
		sources  map[string]string
		layouts  map[string]string
		incrSnap string
	}
	var variants []variant

	for _, e := range editCorpus() {
		e := e
		t.Run(e.name, func(t *testing.T) {
			c := NewCache()
			prev, err := AnalyzeIncremental(nil, baseSources, baseLayouts, Options{}, c)
			if err != nil {
				t.Fatal(err)
			}
			s, l := copyInput(baseSources, baseLayouts)
			e.apply(s, l)

			res, err := AnalyzeIncremental(prev, s, l, Options{}, c)
			if err != nil {
				t.Fatal(err)
			}
			if got := res.Incremental().Mode; got != e.wantMode {
				t.Fatalf("mode = %q (reason %q), want %q", got, res.Incremental().Reason, e.wantMode)
			}
			snap := snapshot(t, res)
			if want := snapshot(t, mustAnalyze(t, s, l, Options{})); snap != want {
				t.Fatalf("incremental solution differs from scratch for %s", e.name)
			}

			// -explain equality: provenance forces the scratch path, but the
			// derivation trees must match a one-shot provenance analysis.
			pPrev, err := AnalyzeIncremental(nil, baseSources, baseLayouts, Options{Provenance: true}, c)
			if err != nil {
				t.Fatal(err)
			}
			pRes, err := AnalyzeIncremental(pPrev, s, l, Options{Provenance: true}, c)
			if err != nil {
				t.Fatal(err)
			}
			gotTrees, err1 := pRes.ExplainViewID("shared_tag")
			wantTrees, err2 := mustAnalyze(t, s, l, Options{Provenance: true}).ExplainViewID("shared_tag")
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("explain errors diverge: %v vs %v", err1, err2)
			}
			if err1 == nil && strings.Join(gotTrees, "\n==\n") != strings.Join(wantTrees, "\n==\n") {
				t.Fatalf("explain trees differ for %s", e.name)
			}

			variants = append(variants, variant{name: e.name, sources: s, layouts: l, incrSnap: snap})
		})
	}
	if t.Failed() {
		return
	}

	// Batch determinism over the edited corpus: 1 worker vs 8 workers with a
	// shared parse cache, each app matching its incremental snapshot.
	for _, workers := range []int{1, 8} {
		var inputs []BatchInput
		for _, v := range variants {
			// All variants share the default app name: the check report and
			// SARIF embed it, and the snapshots being compared used "app".
			inputs = append(inputs, BatchInput{Name: "app", Sources: v.sources, Layouts: v.layouts})
		}
		batch := AnalyzeBatch(inputs, BatchOptions{Workers: workers, Cache: NewCache()})
		for i, rep := range batch.Apps {
			if rep.Err != nil {
				t.Fatalf("j%d %s: %v", workers, variants[i].name, rep.Err)
			}
			if got := snapshot(t, rep.Result); got != variants[i].incrSnap {
				t.Fatalf("j%d %s: batch solution differs from incremental", workers, variants[i].name)
			}
		}
	}
}

// TestIncrementalChain applies the whole edit corpus sequentially to one
// evolving application, re-analyzing incrementally at each step — the watch
// mode usage pattern — and checks every step against scratch.
func TestIncrementalChain(t *testing.T) {
	sources, layouts := corpus.ModularApp(4)
	c := NewCache()
	res, err := AnalyzeIncremental(nil, sources, layouts, Options{}, c)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range editCorpus() {
		next, nextLayouts := copyInput(sources, layouts)
		e.apply(next, nextLayouts)
		// Edits target ModularApp(4) units; skip ones that touched nothing.
		if mapsEqual(next, sources) && mapsEqual(nextLayouts, layouts) {
			continue
		}
		res, err = AnalyzeIncremental(res, next, nextLayouts, Options{}, c)
		if err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if got, want := snapshot(t, res), snapshot(t, mustAnalyze(t, next, nextLayouts, Options{})); got != want {
			t.Fatalf("%s: chained incremental differs from scratch", e.name)
		}
		sources, layouts = next, nextLayouts
	}
}

// TestIncrementalParseCacheShared: the parse cache spans apps and editions —
// re-analyzing after an edit re-parses only the edited file.
func TestIncrementalParseCacheShared(t *testing.T) {
	sources, layouts := corpus.ModularApp(4)
	c := NewCache()
	if _, err := AnalyzeIncremental(nil, sources, layouts, Options{}, c); err != nil {
		t.Fatal(err)
	}
	h0, m0 := c.ParseStats()
	if m0 != int64(len(sources)) || h0 != 0 {
		t.Fatalf("cold load: hits=%d misses=%d, want 0/%d", h0, m0, len(sources))
	}
	// A second app with identical sources hits for every file.
	if _, err := LoadCached(sources, layouts, c); err != nil {
		t.Fatal(err)
	}
	h1, _ := c.ParseStats()
	if h1 != int64(len(sources)) {
		t.Fatalf("warm load: hits=%d, want %d", h1, len(sources))
	}
}

package gator

import (
	"fmt"
	"strings"
	"testing"

	"gator/internal/corpus"
)

// TestIncrementalWarmPast64Units: the former incremental budget capped
// unit-dependency tracking at 64 compilation units and silently fell back
// to scratch re-analysis beyond it. With paged unit bitsets the warm path
// must work — and stay byte-identical to scratch — on an application far
// past that boundary.
func TestIncrementalWarmPast64Units(t *testing.T) {
	// 40 activities -> 41 sources + 41 layouts = 82 units.
	sources, layouts := corpus.ModularApp(40)
	prev, err := AnalyzeIncremental(nil, sources, layouts, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}

	edited, editedLayouts := copyInput(sources, layouts)
	// act30.alite sorts past bit 63 of the unit table.
	edited["act30.alite"] = strings.Replace(edited["act30.alite"],
		"\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)

	warm, err := AnalyzeIncremental(prev, edited, editedLayouts, Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Incremental()
	if st.Mode != "warm" {
		t.Fatalf("mode = %q (reason %q), want warm", st.Mode, st.Reason)
	}
	if len(st.DirtyUnits) != 1 || st.DirtyUnits[0] != "act30.alite" {
		t.Fatalf("dirty units = %v, want [act30.alite]", st.DirtyUnits)
	}
	fresh, err := Load(edited, editedLayouts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := snapshot(t, warm), snapshot(t, fresh.Analyze(Options{})); got != want {
		t.Fatalf("warm solution differs from scratch past 64 units:\n--- warm ---\n%s\n--- scratch ---\n%s", got, want)
	}
}

// fuzzEdits are the body-edit templates FuzzIncrementalEdit applies to one
// ModularApp source unit. All are body-confined (same declaration shape),
// so the incremental engine must take the warm path.
var fuzzEdits = []func(src string) string{
	func(src string) string {
		return strings.Replace(src, "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	},
	func(src string) string {
		return strings.Replace(src, "\t\trp.keep(w);\n", "\t\trp.keep(btn);\n", 1)
	},
	func(src string) string {
		return strings.Replace(src, "\t\tbtn.setOnLongClickListener(ll);\n", "", 1)
	},
	func(src string) string {
		return strings.Replace(src, "\t\tthis.stash = back;\n",
			"\t\tthis.stash = back;\n\t\tView fz = this.findViewById(R.id.shared_tag);\n\t\tthis.stash = fz;\n", 1)
	},
}

// FuzzIncrementalEdit fuzzes the incremental engine's core contract: after
// a body edit to one compilation unit of a multi-unit application, the warm
// re-solve must produce a solution byte-identical to analyzing the edited
// input from scratch. Seeds cover both the small case and applications past
// the 64-unit bitset page boundary.
func FuzzIncrementalEdit(f *testing.F) {
	f.Add(uint8(4), uint16(1), uint8(0))
	f.Add(uint8(10), uint16(7), uint8(1))
	f.Add(uint8(40), uint16(30), uint8(2)) // 82 units: past the first bitset word
	f.Add(uint8(70), uint16(66), uint8(3)) // 142 units: past the second word
	f.Fuzz(func(t *testing.T, nActRaw uint8, unitRaw uint16, flavorRaw uint8) {
		nAct := 1 + int(nActRaw)%80
		sources, layouts := corpus.ModularApp(nAct)
		target := fmt.Sprintf("act%d.alite", int(unitRaw)%nAct)
		mutate := fuzzEdits[int(flavorRaw)%len(fuzzEdits)]

		edited, editedLayouts := copyInput(sources, layouts)
		edited[target] = mutate(edited[target])
		if edited[target] == sources[target] {
			t.Skip("mutation was a no-op")
		}

		prev, err := AnalyzeIncremental(nil, sources, layouts, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := AnalyzeIncremental(prev, edited, editedLayouts, Options{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if st := warm.Incremental(); st.Mode != "warm" {
			t.Fatalf("nAct=%d unit=%s flavor=%d: mode = %q (reason %q), want warm",
				nAct, target, int(flavorRaw)%len(fuzzEdits), st.Mode, st.Reason)
		}
		fresh, err := Load(edited, editedLayouts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := snapshot(t, warm), snapshot(t, fresh.Analyze(Options{})); got != want {
			t.Errorf("nAct=%d unit=%s flavor=%d: warm solution differs from scratch",
				nAct, target, int(flavorRaw)%len(fuzzEdits))
		}
	})
}

package gator

import (
	"testing"
	"time"

	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/ir"
)

// TestScalability supports the paper's "low cost" claim an order of
// magnitude beyond its largest subject: a synthetic application with ~5000
// classes, ~20000 methods, 200 layouts, and 600 view ids must analyze in
// seconds.
func TestScalability(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	spec := corpus.Spec{
		Name:            "Goliath",
		Classes:         5000,
		Methods:         20000,
		Layouts:         200,
		ViewIDs:         600,
		InflatedViews:   1500,
		AllocViews:      120,
		Listeners:       300,
		AddViews:        true,
		TargetReceivers: 1.5,
	}
	app := corpus.Generate(spec)

	start := time.Now()
	prog, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
	if err != nil {
		t.Fatal(err)
	}
	frontend := time.Since(start)

	start = time.Now()
	res := core.Analyze(prog, core.Options{})
	analysis := time.Since(start)

	t.Logf("frontend %v, analysis %v, %d fixpoint rounds, %d nodes",
		frontend, analysis, res.Iterations, len(res.Graph.Nodes()))

	if analysis > 30*time.Second {
		t.Errorf("analysis took %v; the approach should stay practical at scale", analysis)
	}
	classes := 0
	for range prog.AppClasses() {
		classes++
	}
	if classes != spec.Classes {
		t.Errorf("classes = %d", classes)
	}
	if got := len(res.Graph.Infls()); got < spec.InflatedViews {
		t.Errorf("inflated views = %d, want >= %d", got, spec.InflatedViews)
	}
}

// BenchmarkScale measures the full pipeline on the large synthetic app.
func BenchmarkScale(b *testing.B) {
	spec := corpus.Spec{
		Name: "Goliath", Classes: 2000, Methods: 8000, Layouts: 100,
		ViewIDs: 300, InflatedViews: 700, AllocViews: 60, Listeners: 150,
		AddViews: true, TargetReceivers: 1.2,
	}
	app := corpus.Generate(spec)
	prog, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Analyze(prog, core.Options{})
	}
}

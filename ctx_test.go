package gator

// Oracle soundness and rendering tests for the context-sensitive solving
// modes (Options.ContextSensitivity). The precision-monotonicity half of
// the tentpole contract lives next to the solver
// (internal/core/ctx_test.go); this file holds the halves that need the
// public API: the concrete-interpreter soundness oracle, the acceptance
// criterion on PolymorphicHelperApp(8), the incremental-guard regression,
// and the -explain transcript with its j1≡j8 byte-equality contract.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"gator/internal/corpus"
)

var ctxModes = []CtxMode{Ctx1CFA, Ctx1Obj}

func analyzePoly(t *testing.T, n int, opts Options) *Result {
	t.Helper()
	sources, layouts := corpus.PolymorphicHelperApp(n)
	return mustAnalyze(t, sources, layouts, opts)
}

// TestCtxSoundnessCorpus runs the concrete interpreter against the
// context-sensitive solutions of every corpus app: the observed set must
// stay inside the (smaller) solution in both modes.
func TestCtxSoundnessCorpus(t *testing.T) {
	apps := corpus.GenerateAll()
	if testing.Short() {
		apps = apps[:6]
	}
	for _, app := range apps {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, mode := range ctxModes {
				res := mustAnalyze(t, app.BatchSources(), app.LayoutXML(),
					Options{ContextSensitivity: mode})
				er := res.Explore(1)
				if !er.Sound {
					t.Errorf("%s/%s: soundness violations: %v", app.Spec.Name, mode, er.Violations)
				}
			}
		})
	}
}

// TestCtxAcceptance is the PR's acceptance criterion at the public API: on
// PolymorphicHelperApp(8), the 1-CFA solution is strictly smaller than the
// insensitive solution while remaining a superset of the oracle's observed
// set, and the measured precision ratio improves.
func TestCtxAcceptance(t *testing.T) {
	insens := analyzePoly(t, 8, Options{})
	insensFacts := insens.ProjectedFacts()
	insensER := insens.Explore(1)
	if !insensER.Sound {
		t.Fatalf("insensitive: soundness violations: %v", insensER.Violations)
	}
	for _, mode := range ctxModes {
		res := analyzePoly(t, 8, Options{ContextSensitivity: mode})
		facts := res.ProjectedFacts()
		if len(facts) >= len(insensFacts) {
			t.Errorf("%s: solution not strictly smaller: %d facts vs %d", mode, len(facts), len(insensFacts))
		}
		inSuper := make(map[string]bool, len(insensFacts))
		for _, f := range insensFacts {
			inSuper[f] = true
		}
		for _, f := range facts {
			if !inSuper[f] {
				t.Errorf("%s: fact outside the insensitive solution: %s", mode, f)
			}
		}
		er := res.Explore(1)
		if !er.Sound {
			t.Errorf("%s: soundness violations: %v", mode, er.Violations)
		}
		if er.PrecisionRatio >= insensER.PrecisionRatio {
			t.Errorf("%s: precision ratio %.3f did not improve on insensitive %.3f",
				mode, er.PrecisionRatio, insensER.PrecisionRatio)
		}
		t.Logf("%s: %d facts (insensitive %d), ratio %.3f (insensitive %.3f)",
			mode, len(facts), len(insensFacts), er.PrecisionRatio, insensER.PrecisionRatio)
	}
}

// TestCtxIncrementalFallback is the guard regression: an incremental
// session under a context-sensitive mode must cleanly report
// Incremental().Reason = "context-sensitive", fall back to scratch, and
// return fresh facts — never stale merged ones.
func TestCtxIncrementalFallback(t *testing.T) {
	for _, mode := range ctxModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			sources, layouts := corpus.PolymorphicHelperApp(3)
			opts := Options{ContextSensitivity: mode}
			prev, err := AnalyzeIncremental(nil, sources, layouts, opts, nil)
			if err != nil {
				t.Fatal(err)
			}

			// Body-only edit: activity 1 now looks up its text view instead
			// of its button. A silently-stale result would still report the
			// button.
			edited := map[string]string{}
			for k, v := range sources {
				edited[k] = v
			}
			edited["ph1.alite"] = strings.Replace(edited["ph1.alite"],
				"this.findAndCast(R.id.ph1_btn)", "this.findAndCast(R.id.ph1_txt)", 1)
			if edited["ph1.alite"] == sources["ph1.alite"] {
				t.Fatal("edit did not apply")
			}

			res, err := AnalyzeIncremental(prev, edited, layouts, opts, nil)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Incremental()
			if st.Mode != "scratch" || st.Reason != "context-sensitive" {
				t.Fatalf("mode=%q reason=%q, want scratch/context-sensitive", st.Mode, st.Reason)
			}
			views, err := res.VarViews("PhAct1", "onCreate", "w")
			if err != nil {
				t.Fatal(err)
			}
			var ids []string
			for _, v := range views {
				ids = append(ids, v.ID)
			}
			if len(ids) != 1 || ids[0] != "ph1_txt" {
				t.Fatalf("post-edit w = %v, want exactly [ph1_txt] (stale facts?)", ids)
			}
		})
	}
}

// TestReadmePrecisionTable pins the README's precision table to the
// checked-in BENCH_7.json record: regenerate the block between the markers
// from the record (same rendering as below), or this fails. The gated
// quantities are deterministic fact-count ratios, so a fresh
// `gatorbench -precjson` run reproduces them bit-for-bit.
func TestReadmePrecisionTable(t *testing.T) {
	var rec struct {
		Modes []struct {
			Mode       string  `json:"mode"`
			Ratio      float64 `json:"ratio"`
			Violations int     `json:"violations"`
		} `json:"modes"`
		Stressor struct {
			InsensitiveFacts int `json:"insensitiveFacts"`
			CfaFacts         int `json:"cfaFacts"`
			ObjFacts         int `json:"objFacts"`
		} `json:"stressor"`
	}
	data, err := os.ReadFile("BENCH_7.json")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	stressFacts := map[string]int{
		"off":  rec.Stressor.InsensitiveFacts,
		"1cfa": rec.Stressor.CfaFacts,
		"1obj": rec.Stressor.ObjFacts,
	}
	var b strings.Builder
	b.WriteString("| Mode | Corpus ratio (static/observed) | Violations | `polyhelper-8` facts |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, m := range rec.Modes {
		fmt.Fprintf(&b, "| `%s` | %.3f | %d | %d |\n", m.Mode, m.Ratio, m.Violations, stressFacts[m.Mode])
	}

	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	s := string(readme)
	begin, end := "<!-- precision:begin -->\n", "<!-- precision:end -->"
	i := strings.Index(s, begin)
	j := strings.Index(s, end)
	if i < 0 || j < 0 || j < i {
		t.Fatal("README.md precision-table markers missing")
	}
	if got := s[i+len(begin) : j]; got != b.String() {
		t.Errorf("README precision table is stale; regenerate from BENCH_7.json.\n--- README ---\n%s--- record ---\n%s", got, b.String())
	}
}

// TestCtxExplainTranscript is the golden -explain transcript: derivation
// trees under 1-CFA render the context component (the interned call-site
// label), and the rendered transcript is byte-identical between a j=1 and a
// j=8 batch run — the determinism contract the batch engine promises.
func TestCtxExplainTranscript(t *testing.T) {
	sources, layouts := corpus.PolymorphicHelperApp(3)
	opts := Options{ContextSensitivity: Ctx1CFA, Provenance: true}

	transcript := func(r *Result) string {
		var b strings.Builder
		for i := 0; i < 3; i++ {
			lines, err := r.ExplainDerivation(fmt.Sprintf("PhAct%d", i), "onCreate", "w")
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range lines {
				b.WriteString(l)
				b.WriteByte('\n')
			}
		}
		return b.String()
	}

	seq := transcript(mustAnalyze(t, sources, layouts, opts))
	for _, want := range []string{
		// The context component: the helper's variable under the caller's
		// interned call-site context.
		"@ cs:ph1.alite:",
		// The derivation rules the tree is annotated with.
		"[FindView", "[Inflate", "[Seed]",
		// Each caller sees exactly its own button.
		"Infl[Button@ph2:1 id=ph2_btn",
	} {
		if !strings.Contains(seq, want) {
			t.Errorf("transcript missing %q:\n%s", want, seq)
		}
	}

	inputs := []BatchInput{{Name: "poly", Sources: sources, Layouts: layouts}}
	var prev []byte
	for _, j := range []int{1, 8} {
		br := AnalyzeBatch(inputs, BatchOptions{Workers: j, Options: opts})
		if failed := br.Failed(); len(failed) > 0 {
			t.Fatalf("j=%d: %v", j, failed[0].Err)
		}
		got := []byte(transcript(br.Apps[0].Result))
		if !bytes.Equal(got, []byte(seq)) {
			t.Errorf("j=%d: transcript differs from sequential run", j)
		}
		if prev != nil && !bytes.Equal(got, prev) {
			t.Errorf("j=%d: transcript differs from j=1", j)
		}
		prev = got
	}
}

// Command alitefmt pretty-prints ALite source files, like gofmt for the
// paper's abstracted language. Reads the named files (or stdin with no
// arguments) and writes the canonical form to stdout; -w rewrites files in
// place; -l lists files whose formatting differs.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"gator/internal/alite"
)

func main() {
	write := flag.Bool("w", false, "rewrite files in place")
	list := flag.Bool("l", false, "list files whose formatting differs")
	flag.Parse()

	if flag.NArg() == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			fatal(err)
		}
		out, err := format("<stdin>", string(src))
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
		return
	}

	exit := 0
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		out, err := format(path, string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, "alitefmt:", err)
			exit = 1
			continue
		}
		switch {
		case *list:
			if out != string(data) {
				fmt.Println(path)
			}
		case *write:
			if out != string(data) {
				if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
					fatal(err)
				}
			}
		default:
			fmt.Print(out)
		}
	}
	os.Exit(exit)
}

func format(name, src string) (string, error) {
	f, err := alite.Parse(name, src)
	if err != nil {
		return "", err
	}
	return alite.Print(f), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alitefmt:", err)
	os.Exit(1)
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestAlitefmt(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "alitefmt")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	messy := "class A extends Activity{void onCreate(){this.setContentView(R.layout.x);}}"
	want := "class A extends Activity {\n\tvoid onCreate() {\n\t\tthis.setContentView(R.layout.x);\n\t}\n}\n"

	// stdin mode.
	cmd := exec.Command(bin)
	cmd.Stdin = strings.NewReader(messy)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("stdin: %v\n%s", err, out)
	}
	if string(out) != want {
		t.Errorf("stdin output:\n%q\nwant:\n%q", out, want)
	}

	// -l lists unformatted files; -w rewrites; a second -l is quiet.
	dir := t.TempDir()
	file := filepath.Join(dir, "a.alite")
	if err := os.WriteFile(file, []byte(messy), 0o644); err != nil {
		t.Fatal(err)
	}
	out, _ = exec.Command(bin, "-l", file).CombinedOutput()
	if !strings.Contains(string(out), "a.alite") {
		t.Errorf("-l did not list: %q", out)
	}
	if out, err := exec.Command(bin, "-w", file).CombinedOutput(); err != nil {
		t.Fatalf("-w: %v\n%s", err, out)
	}
	data, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != want {
		t.Errorf("-w result:\n%q", data)
	}
	out, _ = exec.Command(bin, "-l", file).CombinedOutput()
	if strings.TrimSpace(string(out)) != "" {
		t.Errorf("-l on formatted file: %q", out)
	}

	// Parse errors exit nonzero.
	bad := filepath.Join(dir, "bad.alite")
	if err := os.WriteFile(bad, []byte("class {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := exec.Command(bin, bad).Run(); err == nil {
		t.Error("bad file did not fail")
	}
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCLI compiles the command once per test binary.
func buildCLI(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "gator")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func runCLI(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("run %v: %v\n%s", args, err, out)
	}
	return string(out), code
}

func TestCLIReports(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := buildCLI(t)
	appDir := filepath.Join("..", "..", "testdata", "notepad")

	cases := []struct {
		args []string
		want []string
		code int
	}{
		{[]string{appDir}, []string{"classes", "views:", "ops:"}, 0},
		{[]string{"-report", "views", appDir}, []string{"ListView", "layout:note_list"}, 0},
		{[]string{"-report", "tuples", appDir}, []string{"NoteListActivity", "click"}, 0},
		{[]string{"-report", "transitions", appDir}, []string{"NoteListActivity -> EditNoteActivity"}, 0},
		{[]string{"-report", "menus", appDir}, []string{"menu_clear", "onOptionsItemSelected"}, 0},
		{[]string{"-report", "check", appDir}, []string{"unused-view-id"}, 0},
		{[]string{"-report", "hierarchy", appDir}, []string{"=>"}, 0},
		{[]string{"-report", "activities", appDir}, []string{"EditNoteActivity:"}, 0},
		{[]string{"-report", "dot", appDir}, []string{"digraph gator"}, 0},
		{[]string{"-report", "ir", appDir}, []string{"class NoteListActivity", ":= new"}, 0},
		{[]string{"-report", "json", appDir}, []string{`"eventTuples"`}, 0},
		{[]string{"-report", "explore", appDir}, []string{"sound=true"}, 0},
		{[]string{"-explain", "SaveListener.onClick.body", appDir}, []string{"flowsTo(", "[Seed]"}, 0},
		{[]string{"-figure1"}, []string{"6 inflated"}, 0},
		{[]string{"-report", "bogus", appDir}, []string{"unknown report"}, 2},
		{[]string{}, []string{"usage"}, 2},
		{[]string{"/nonexistent-dir-xyz"}, []string{"gator:"}, 1},
	}
	for _, c := range cases {
		out, code := runCLI(t, bin, c.args...)
		if code != c.code {
			t.Errorf("%v: exit %d, want %d\n%s", c.args, code, c.code, out)
		}
		for _, w := range c.want {
			if !strings.Contains(out, w) {
				t.Errorf("%v: output missing %q\n%s", c.args, w, out)
			}
		}
	}
}

// TestCLIBatch: several directories analyze as one batch; per-app sections
// come out in argument order, a bad directory fails its own app only, and
// -stats summarizes the pool.
func TestCLIBatch(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := buildCLI(t)
	appDir := filepath.Join("..", "..", "testdata", "notepad")

	out, code := runCLI(t, bin, "-j", "2", "-stats", appDir, appDir)
	if code != 0 {
		t.Fatalf("batch exit %d\n%s", code, out)
	}
	if got := strings.Count(out, "== notepad =="); got != 2 {
		t.Errorf("want 2 app sections, got %d\n%s", got, out)
	}
	if !strings.Contains(out, "2 workers") {
		t.Errorf("missing -stats summary\n%s", out)
	}

	// One bad directory: its error is reported, the good app still prints,
	// and the exit code is 1.
	out, code = runCLI(t, bin, appDir, "/nonexistent-dir-xyz")
	if code != 1 {
		t.Errorf("mixed batch exit %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "5 classes") || !strings.Contains(out, "gator:") {
		t.Errorf("mixed batch output\n%s", out)
	}
}

// TestCLIExplainDeterministic: the acceptance contract of the provenance
// layer — `-explain` prints byte-identical derivation trees whether the
// batch runs on one worker or eight. Two copies of the app make the batch
// genuinely parallel under -j 8.
func TestCLIExplainDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := buildCLI(t)
	buggy := filepath.Join("..", "..", "examples", "buggyapp")

	for _, query := range []string{"Main.onCreate.btn", "id:go"} {
		out1, code1 := runCLI(t, bin, "-j", "1", "-explain", query, buggy, buggy)
		out8, code8 := runCLI(t, bin, "-j", "8", "-explain", query, buggy, buggy)
		if code1 != 0 || code8 != 0 {
			t.Fatalf("explain %q: exits %d/%d\n%s\n%s", query, code1, code8, out1, out8)
		}
		if out1 != out8 {
			t.Errorf("explain %q differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", query, out1, out8)
		}
	}

	// The tree names the paper's rule and bottoms out in seeds.
	out, _ := runCLI(t, bin, "-explain", "Main.onCreate.btn", buggy)
	for _, w := range []string{"[FindView2]", "[Seed]", "rootView(", "ancestorOf(", "hasId("} {
		if !strings.Contains(out, w) {
			t.Errorf("-explain tree missing %q\n%s", w, out)
		}
	}
}

// TestCLITraceAndStatsJSON: -trace writes a loadable Chrome trace and
// -stats-json is byte-stable across runs (and excludes wall-clock fields).
func TestCLITraceAndStatsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := buildCLI(t)
	appDir := filepath.Join("..", "..", "testdata", "notepad")

	traceFile := filepath.Join(t.TempDir(), "trace.json")
	out, code := runCLI(t, bin, "-trace", traceFile, appDir)
	if code != 0 {
		t.Fatalf("-trace exit %d\n%s", code, out)
	}
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{`"traceEvents"`, `notepad:load`, `notepad:solve`, `"ph": "B"`, `"ph": "C"`} {
		if !strings.Contains(string(data), w) {
			t.Errorf("trace file missing %s\n%s", w, data)
		}
	}

	stats1, code := runCLI(t, bin, "-stats-json", "-", "-report", "dot", appDir)
	if code != 0 {
		t.Fatalf("-stats-json exit %d\n%s", code, stats1)
	}
	stats2, _ := runCLI(t, bin, "-stats-json", "-", "-report", "dot", appDir)
	if stats1 != stats2 {
		t.Errorf("-stats-json is not byte-stable:\n--- run 1 ---\n%s--- run 2 ---\n%s", stats1, stats2)
	}
	for _, w := range []string{`"app": "notepad"`, `"iterations"`, `"status": "ok"`} {
		if !strings.Contains(stats1, w) {
			t.Errorf("-stats-json missing %s\n%s", w, stats1)
		}
	}
	if strings.Contains(stats1, "Wall") || strings.Contains(stats1, "wall") {
		t.Errorf("-stats-json leaks wall-clock fields\n%s", stats1)
	}
}

// TestCLIChecks: the diagnostics engine end-to-end — findings with
// positions, warning exit code, selection, SARIF output, and the registry
// listing.
func TestCLIChecks(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := buildCLI(t)
	buggy := filepath.Join("..", "..", "examples", "buggyapp")
	notepad := filepath.Join("..", "..", "testdata", "notepad")

	out, code := runCLI(t, bin, "-checks", buggy)
	if code != 1 {
		t.Errorf("-checks on buggy app: exit %d, want 1\n%s", code, out)
	}
	for _, w := range []string{
		"app.alite:13:21: warning: [findview-before-setcontentview]",
		"app.alite:16:8: warning: [null-view-deref]",
		"app.alite:21:7: warning: [listener-reset]",
		"1 suppressed",
	} {
		if !strings.Contains(out, w) {
			t.Errorf("-checks output missing %q\n%s", w, out)
		}
	}

	// A clean app (info findings only) exits 0.
	out, code = runCLI(t, bin, "-checks", notepad)
	if code != 0 {
		t.Errorf("-checks on notepad: exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "0 warnings") {
		t.Errorf("-checks summary missing\n%s", out)
	}

	// -only restricts the run; unknown names exit 2.
	out, code = runCLI(t, bin, "-checks", "-only", "listener-reset", buggy)
	if code != 1 || strings.Contains(out, "null-view-deref") || !strings.Contains(out, "listener-reset") {
		t.Errorf("-only output (exit %d):\n%s", code, out)
	}
	if out, code = runCLI(t, bin, "-checks", "-only", "bogus", buggy); code != 2 || !strings.Contains(out, "bogus") {
		t.Errorf("unknown -only: exit %d\n%s", code, out)
	}

	// -sarif implies -checks and writes a SARIF 2.1.0 log.
	sarifFile := filepath.Join(t.TempDir(), "out.sarif")
	_, code = runCLI(t, bin, "-sarif", sarifFile, buggy)
	if code != 1 {
		t.Errorf("-sarif exit %d, want 1", code)
	}
	data, err := os.ReadFile(sarifFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []string{`"version": "2.1.0"`, `"ruleId": "null-view-deref"`, `"startLine": 16`, `"uri": "app.alite"`} {
		if !strings.Contains(string(data), w) {
			t.Errorf("SARIF missing %s\n%s", w, data)
		}
	}

	// -stats adds per-pass timing on stderr.
	out, _ = runCLI(t, bin, "-checks", "-stats", buggy)
	if !strings.Contains(out, "Pass") || !strings.Contains(out, "total") {
		t.Errorf("-stats pass table missing\n%s", out)
	}

	// -listchecks prints the registry and exits 0.
	out, code = runCLI(t, bin, "-listchecks")
	if code != 0 {
		t.Errorf("-listchecks exit %d", code)
	}
	for _, id := range []string{"dangling-findview", "findview-before-setcontentview", "null-view-deref", "listener-reset"} {
		if !strings.Contains(out, id) {
			t.Errorf("-listchecks missing %s\n%s", id, out)
		}
	}
}

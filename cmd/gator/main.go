// Command gator analyzes application directories (*.alite sources plus
// layout XML files) and reports the computed GUI-object solution: views,
// activity content, the view hierarchy, (activity, view, event, handler)
// tuples, Table 1/2 measurements, or a Graphviz rendering of the constraint
// graph (Figures 3 and 4 of the paper).
//
// Usage:
//
//	gator [flags] <app-dir> [<app-dir>...]
//
// With several directories the apps are analyzed as a batch on -j parallel
// workers; one failing app is reported and the rest still complete. With
// -figure1, the embedded running example of the paper is analyzed instead
// of a directory.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"gator"
	"gator/internal/cache"
	"gator/internal/corpus"
	"gator/internal/metrics"
	"gator/internal/trace"
)

func main() {
	report := flag.String("report", "summary", "what to print: summary, views, tuples, hierarchy, activities, transitions, menus, check, table1, table2, dot, ir, json, explore")
	figure1 := flag.Bool("figure1", false, "analyze the paper's embedded Figure 1 example")
	seed := flag.Int64("seed", 1, "seed for -report explore")
	explain := flag.String("explain", "", "print derivation trees for a variable's solution (Class.method.var) or a view id (id:name)")
	filterCasts := flag.Bool("filter-casts", false, "enable cast filtering")
	sharedInfl := flag.Bool("shared-inflation", false, "share inflation nodes per layout")
	noFV3 := flag.Bool("no-findview3", false, "disable the FindView3 child-only refinement")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel analysis workers for multi-directory batches")
	stats := flag.Bool("stats", false, "print per-stage batch statistics to stderr")
	checksMode := flag.Bool("checks", false, "run the diagnostics engine and print its findings (exit 1 on warnings)")
	only := flag.String("only", "", "comma-separated check IDs to run (with -checks; default all)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (implies -checks)")
	listChecks := flag.Bool("listchecks", false, "print the checker registry and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the whole run to `file` (open in chrome://tracing or Perfetto)")
	statsJSON := flag.String("stats-json", "", "write byte-stable machine-readable batch stats JSON to `file` (\"-\" for stdout)")
	watch := flag.Bool("watch", false, "watch one app directory and re-analyze incrementally on change (polls modification times)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache `directory`: reprint cached reports for unchanged inputs without re-analyzing")
	flag.Parse()

	if *listChecks {
		fmt.Print(gator.ListChecks())
		os.Exit(0)
	}
	if *sarifOut != "" {
		*checksMode = true
	}

	opts := gator.Options{
		FilterCasts:           *filterCasts,
		SharedInflation:       *sharedInfl,
		NoFindView3Refinement: *noFV3,
		// -explain renders derivation trees, which need the recorded DAG.
		Provenance: *explain != "",
	}

	if *watch {
		if *figure1 || flag.NArg() != 1 || *checksMode {
			fmt.Fprintln(os.Stderr, "gator: -watch wants exactly one app directory (and no -checks/-sarif)")
			os.Exit(2)
		}
		runWatch(flag.Arg(0), opts, *report, *explain, *seed)
	}

	var inputs []gator.BatchInput
	switch {
	case *figure1:
		inputs = []gator.BatchInput{{
			Name:    "Figure1",
			Sources: map[string]string{"connectbot.alite": corpus.Figure1Source},
			Layouts: map[string]string{
				"act_console":   corpus.Figure1ActConsoleXML,
				"item_terminal": corpus.Figure1ItemTerminalXML,
			},
		}}
	case flag.NArg() >= 1:
		for _, dir := range flag.Args() {
			inputs = append(inputs, gator.BatchInput{Dir: dir})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: gator [flags] <app-dir> [<app-dir>...]  (or -figure1)")
		os.Exit(2)
	}

	bopts := gator.BatchOptions{Workers: *jobs, Options: opts, Cache: gator.NewCache()}
	var sink *trace.Collect
	if *traceOut != "" {
		sink = &trace.Collect{}
		bopts.Tracer = trace.New(sink)
	}

	// With -cache-dir, apps whose fingerprint (options, report, sources,
	// layouts) matches a stored entry skip analysis entirely and replay the
	// stored report. Reports with unstable output (summary timing) or side
	// outputs (-checks/-sarif aggregation, derivation trees) always run.
	var store *cache.DiskStore
	total := len(inputs)
	keys := make([]string, total)
	replay := make([][]byte, total)
	names := make([]string, total)
	if *cacheDir != "" && !*checksMode && *explain == "" && *report != "summary" {
		var err error
		if store, err = cache.OpenDiskStore(*cacheDir); err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
		tag := fmt.Sprintf("%s|report=%s|seed=%d", opts.CacheTag(), *report, *seed)
		var run []gator.BatchInput
		for i, in := range inputs {
			sources, layouts := in.Sources, in.Layouts
			if in.Dir != "" {
				s, l, err := gator.ReadAppDir(in.Dir)
				if err != nil {
					// Let the batch produce the proper per-app error.
					run = append(run, in)
					continue
				}
				sources, layouts = s, l
			}
			keys[i] = cache.AppFingerprint(tag, sources, layouts)
			names[i] = batchLabelOf(in, i)
			data, hit := store.Get(keys[i])
			bopts.Tracer.Scope(names[i], 0).CacheProbe("result", hit)
			if hit && len(data) > 0 {
				replay[i] = data
			} else {
				run = append(run, in)
			}
		}
		inputs = run
	}

	batch := gator.AnalyzeBatch(inputs, bopts)
	if *stats {
		fmt.Fprint(os.Stderr, metrics.FormatBatch(batch.Stats))
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, sink.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
	}
	if *statsJSON != "" {
		data, err := batch.StatsJSON()
		if err == nil {
			if *statsJSON == "-" {
				_, err = os.Stdout.Write(data)
			} else {
				err = os.WriteFile(*statsJSON, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
	}

	exit := 0
	var checkReports []*gator.CheckReport
	next := 0 // next unconsumed entry of batch.Apps
	for i := 0; i < total; i++ {
		if replay[i] != nil {
			if total > 1 {
				if i > 0 {
					fmt.Println()
				}
				fmt.Printf("== %s ==\n", names[i])
			}
			// Entries store one exit-code digit followed by the rendered
			// report (see the Put below).
			os.Stdout.Write(replay[i][1:])
			if code := int(replay[i][0] - '0'); code > exit {
				exit = code
			}
			continue
		}
		rep := batch.Apps[next]
		next++
		if rep.Err != nil {
			fmt.Fprintln(os.Stderr, "gator:", rep.Err)
			exit = 1
			continue
		}
		if total > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", rep.Name)
		}
		if *checksMode {
			cr, err := rep.Result.CheckReport(splitChecks(*only)...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
				os.Exit(2)
			}
			fmt.Print(cr.Text())
			if *stats {
				fmt.Fprint(os.Stderr, cr.PassTimings())
			}
			checkReports = append(checkReports, cr)
			if cr.Warnings() > 0 && exit == 0 {
				exit = 1
			}
			continue
		}
		var buf bytes.Buffer
		code := printReport(&buf, rep.Name, rep.Result, *report, *explain, *seed)
		os.Stdout.Write(buf.Bytes())
		if store != nil && keys[i] != "" && code <= 1 {
			entry := append([]byte{byte('0' + code)}, buf.Bytes()...)
			if err := store.Put(keys[i], entry); err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
			}
		}
		if code > exit {
			exit = code
		}
	}
	if *sarifOut != "" && len(checkReports) > 0 {
		data, err := gator.SARIFAll(checkReports...)
		if err == nil {
			err = os.WriteFile(*sarifOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// writeTrace writes the collected events in Chrome trace_event format.
func writeTrace(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitChecks parses the -only flag into check IDs.
func splitChecks(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// batchLabelOf names one input the way AnalyzeBatch will, for headers and
// trace scopes of apps served from the result cache.
func batchLabelOf(in gator.BatchInput, index int) string {
	switch {
	case in.Name != "":
		return in.Name
	case in.Dir != "":
		return filepath.Base(in.Dir)
	}
	return fmt.Sprintf("app%d", index)
}

// runWatch polls one application directory and re-analyzes on change,
// delta-resolving body-only edits against the previous solution. It never
// returns; interrupt the process to stop.
func runWatch(dir string, opts gator.Options, report, explain string, seed int64) {
	const pollInterval = 500 * time.Millisecond
	c := gator.NewCache()
	var prev *gator.Result
	lastSig := "\x00unread" // never matches a real signature
	for {
		sig, err := dirSignature(dir)
		if err == nil && sig == lastSig {
			time.Sleep(pollInterval)
			continue
		}
		lastSig = sig
		sources, layouts, err := gator.ReadAppDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			time.Sleep(pollInterval)
			continue
		}
		res, err := gator.AnalyzeIncremental(prev, sources, layouts, opts, c)
		if err != nil {
			// Mid-edit parse errors leave prev usable; a consumed prev does
			// not — drop it and recover with a full analysis next round.
			if errors.Is(err, gator.ErrStaleResult) {
				prev = nil
			}
			fmt.Fprintln(os.Stderr, "gator:", err)
			time.Sleep(pollInterval)
			continue
		}
		prev = res
		st := res.Incremental()
		if st.Mode == "unchanged" {
			continue
		}
		fmt.Fprintf(os.Stderr, "gator: %s analyzed in %v (%s", dir, res.Elapsed(), st.Mode)
		switch {
		case st.Mode == "warm":
			fmt.Fprintf(os.Stderr, ": retained %d, retracted %d facts", st.Retained, st.Retracted)
		case st.Reason != "":
			fmt.Fprintf(os.Stderr, ": %s", st.Reason)
		}
		fmt.Fprintln(os.Stderr, ")")
		printReport(os.Stdout, filepath.Base(dir), res, report, explain, seed)
	}
}

// dirSignature fingerprints the watched directory by file names, sizes, and
// modification times, so the poll loop only re-reads contents after a change.
func dirSignature(dir string) (string, error) {
	var b strings.Builder
	for _, sub := range []string{dir, filepath.Join(dir, "layout")} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			if sub != dir {
				continue // the layout/ subdirectory is optional
			}
			return "", err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "%s/%s:%d:%d\n", sub, e.Name(), info.Size(), info.ModTime().UnixNano())
		}
	}
	return b.String(), nil
}

// printReport renders one app's solution to w and returns the exit code the
// report asks for (reports with pass/fail semantics exit nonzero on fail).
func printReport(w io.Writer, name string, res *gator.Result, report, explain string, seed int64) int {
	if explain != "" {
		var trees []string
		var err error
		if strings.HasPrefix(explain, "id:") {
			trees, err = res.ExplainViewID(strings.TrimPrefix(explain, "id:"))
		} else {
			parts := strings.SplitN(explain, ".", 3)
			if len(parts) != 3 {
				fmt.Fprintln(os.Stderr, "gator: -explain wants Class.method.var or id:name")
				return 2
			}
			trees, err = res.ExplainDerivation(parts[0], parts[1], parts[2])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			return 1
		}
		for i, t := range trees {
			if i > 0 {
				fmt.Fprintln(w)
			}
			fmt.Fprint(w, t)
		}
		return 0
	}

	switch report {
	case "summary":
		t1 := res.Table1()
		fmt.Fprintf(w, "%s: %d classes, %d methods\n", name, t1.Classes, t1.Methods)
		fmt.Fprintf(w, "ids: %d layouts, %d view ids\n", t1.LayoutIDs, t1.ViewIDs)
		fmt.Fprintf(w, "views: %d inflated, %d allocated; %d listeners\n",
			t1.ViewsInflated, t1.ViewsAllocated, t1.Listeners)
		fmt.Fprintf(w, "ops: %d inflate, %d find-view, %d add-view, %d set-listener, %d set-id\n",
			t1.InflateOps, t1.FindViewOps, t1.AddViewOps, t1.SetListenerOps, t1.SetIdOps)
		fmt.Fprintf(w, "analysis: %v, %d fixpoint rounds\n", res.Elapsed(), res.Iterations())
	case "views":
		for _, v := range res.Views() {
			id := v.ID
			if id == "" {
				id = "-"
			}
			fmt.Fprintf(w, "%-20s %-28s id=%s\n", v.Class, v.Origin, id)
		}
	case "tuples":
		for _, t := range res.EventTuples() {
			act := t.Activity
			if act == "" {
				act = "-"
			}
			fmt.Fprintf(w, "activity=%-20s view=%s(%s) event=%-12s handler=%s\n",
				act, t.View.Class, t.View.Origin, t.Event, t.Handler)
		}
	case "hierarchy":
		for _, e := range res.Hierarchy() {
			fmt.Fprintf(w, "%s(%s) => %s(%s)\n", e.Parent.Class, e.Parent.Origin, e.Child.Class, e.Child.Origin)
		}
	case "activities":
		for _, a := range res.Activities() {
			fmt.Fprintf(w, "%s:\n", a.Activity)
			for _, r := range a.Roots {
				fmt.Fprintf(w, "\troot %s (%s)\n", r.Class, r.Origin)
			}
		}
	case "table1":
		fmt.Fprintf(w, "%+v\n", res.Table1())
	case "table2":
		r := res.Table2()
		fmt.Fprintf(w, "time=%v receivers=%.2f results=%.2f listeners=%.2f\n",
			r.Time, r.AvgReceivers, r.AvgResults, r.AvgListeners)
	case "check":
		fs := res.Check()
		warnings := 0
		for _, f := range fs {
			where := f.Pos
			if where == "" {
				where = name
			}
			fmt.Fprintf(w, "%s: %s: [%s] %s\n", where, f.Severity, f.Check, f.Msg)
			if f.Severity == "warning" {
				warnings++
			}
		}
		if warnings > 0 {
			return 1
		}
	case "menus":
		for _, e := range res.MenuEntries() {
			fmt.Fprintf(w, "activity=%-20s item=%-16s handler=%s\n", e.Activity, e.ItemID, e.Handler)
		}
	case "transitions":
		for _, tr := range res.Transitions() {
			fmt.Fprintf(w, "%s -> %s  (via %s)\n", tr.Source, tr.Target, tr.Via)
		}
	case "json":
		data, err := res.Model().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			return 1
		}
		fmt.Fprintln(w, string(data))
	case "ir":
		fmt.Fprint(w, res.DumpIR())
	case "dot":
		fmt.Fprint(w, res.Dot())
	case "explore":
		rep := res.Explore(seed)
		fmt.Fprintf(w, "sound=%v sites=%d perfect=%d steps=%d\n",
			rep.Sound, rep.ObservedSites, rep.PerfectSites, rep.Steps)
		for _, v := range rep.Violations {
			fmt.Fprintln(w, "violation:", v)
		}
		if !rep.Sound {
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "gator: unknown report %q\n", report)
		return 2
	}
	return 0
}

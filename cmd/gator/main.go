// Command gator analyzes application directories (*.alite sources plus
// layout XML files) and reports the computed GUI-object solution: views,
// activity content, the view hierarchy, (activity, view, event, handler)
// tuples, Table 1/2 measurements, or a Graphviz rendering of the constraint
// graph (Figures 3 and 4 of the paper).
//
// Usage:
//
//	gator [flags] <app-dir> [<app-dir>...]
//
// With several directories the apps are analyzed as a batch on -j parallel
// workers; one failing app is reported and the rest still complete. With
// -figure1, the embedded running example of the paper is analyzed instead
// of a directory.
//
// With -remote ADDR the CLI becomes a frontend to a running gatord daemon:
// inputs are uploaded over HTTP, reports come back byte-identical to local
// rendering, and -watch pushes coalesced edits into a warm server-side
// session instead of re-analyzing locally.
package main

import (
	"bytes"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"gator"
	"gator/internal/cache"
	"gator/internal/corpus"
	"gator/internal/metrics"
	"gator/internal/report"
	"gator/internal/server"
	"gator/internal/trace"
	"gator/internal/watch"
)

func main() {
	reportKind := flag.String("report", "summary", "what to print: summary, views, tuples, hierarchy, activities, transitions, menus, check, checks, sarif, table1, table2, dot, ir, json, explore")
	figure1 := flag.Bool("figure1", false, "analyze the paper's embedded Figure 1 example")
	seed := flag.Int64("seed", 1, "seed for -report explore")
	explain := flag.String("explain", "", "print derivation trees for a variable's solution (Class.method.var), a view id (id:name), or a lifecycle ordering (order:Class.cb1.cb2)")
	filterCasts := flag.Bool("filter-casts", false, "enable cast filtering")
	sharedInfl := flag.Bool("shared-inflation", false, "share inflation nodes per layout")
	noFV3 := flag.Bool("no-findview3", false, "disable the FindView3 child-only refinement")
	ctxMode := flag.String("ctx", "off", "context sensitivity: off, 1cfa (call-site cloning), or 1obj (receiver-object cloning)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel analysis workers for multi-directory batches")
	stats := flag.Bool("stats", false, "print per-stage batch statistics to stderr")
	checksMode := flag.Bool("checks", false, "run the diagnostics engine and print its findings (exit 1 on warnings)")
	only := flag.String("only", "", "comma-separated check IDs or glob patterns, e.g. lifecycle-* (with -checks; default all)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (implies -checks)")
	listChecks := flag.Bool("listchecks", false, "print the checker registry and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the whole run to `file` (open in chrome://tracing or Perfetto)")
	statsJSON := flag.String("stats-json", "", "write byte-stable machine-readable batch stats JSON to `file` (\"-\" for stdout)")
	watchMode := flag.Bool("watch", false, "watch one app directory and re-analyze incrementally on change (debounced: rapid edits coalesce)")
	cacheDir := flag.String("cache-dir", "", "content-addressed result cache `directory`: reprint cached reports for unchanged inputs without re-analyzing")
	cacheMax := flag.Int64("cache-max-bytes", 0, "bound the -cache-dir store; least-recently-used entries are evicted (0 = unbounded)")
	remote := flag.String("remote", "", "send work to the gatord daemon at `addr` instead of analyzing locally")
	flag.Parse()

	if *listChecks {
		fmt.Print(gator.ListChecks())
		os.Exit(0)
	}
	if *sarifOut != "" {
		*checksMode = true
	}

	ctx, ok := gator.ParseCtxMode(*ctxMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "gator: -ctx %q: want off, 1cfa, or 1obj\n", *ctxMode)
		os.Exit(2)
	}

	opts := gator.Options{
		FilterCasts:           *filterCasts,
		SharedInflation:       *sharedInfl,
		NoFindView3Refinement: *noFV3,
		ContextSensitivity:    ctx,
		// -explain renders derivation trees, which need the recorded DAG —
		// except order: queries, answered from the lifecycle table alone.
		Provenance: report.Request{Explain: *explain}.NeedsProvenance(),
	}

	if *remote != "" {
		os.Exit(runRemote(remoteConfig{
			addr:    *remote,
			report:  *reportKind,
			explain: *explain,
			seed:    *seed,
			checks:  *checksMode,
			only:    splitChecks(*only),
			sarif:   *sarifOut,
			watch:   *watchMode,
			figure1: *figure1,
			opts:    opts,
			dirs:    flag.Args(),
		}))
	}

	if *watchMode {
		if *figure1 || flag.NArg() != 1 || *checksMode {
			fmt.Fprintln(os.Stderr, "gator: -watch wants exactly one app directory (and no -checks/-sarif)")
			os.Exit(2)
		}
		runWatch(flag.Arg(0), opts, *reportKind, *explain, *seed)
	}

	var inputs []gator.BatchInput
	switch {
	case *figure1:
		inputs = []gator.BatchInput{figure1Input()}
	case flag.NArg() >= 1:
		for _, dir := range flag.Args() {
			inputs = append(inputs, gator.BatchInput{Dir: dir})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: gator [flags] <app-dir> [<app-dir>...]  (or -figure1)")
		os.Exit(2)
	}

	bopts := gator.BatchOptions{Workers: *jobs, Options: opts, Cache: gator.NewCache()}
	var sink *trace.Collect
	if *traceOut != "" {
		sink = &trace.Collect{}
		bopts.Tracer = trace.New(sink)
	}

	// With -cache-dir, apps whose fingerprint (options, report, sources,
	// layouts) matches a stored entry skip analysis entirely and replay the
	// stored report. Reports with unstable output (wall-clock timing) or
	// side outputs (-checks/-sarif aggregation, derivation trees) always
	// run.
	var store *cache.DiskStore
	total := len(inputs)
	keys := make([]string, total)
	replay := make([][]byte, total)
	names := make([]string, total)
	if *cacheDir != "" && !*checksMode && *explain == "" && report.Stable(*reportKind) {
		var err error
		if store, err = cache.OpenDiskStore(*cacheDir, *cacheMax); err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
		tag := fmt.Sprintf("%s|report=%s|seed=%d", opts.CacheTag(), *reportKind, *seed)
		var run []gator.BatchInput
		for i, in := range inputs {
			sources, layouts := in.Sources, in.Layouts
			if in.Dir != "" {
				s, l, err := gator.ReadAppDir(in.Dir)
				if err != nil {
					// Let the batch produce the proper per-app error.
					run = append(run, in)
					continue
				}
				sources, layouts = s, l
			}
			keys[i] = cache.AppFingerprint(tag, sources, layouts)
			names[i] = batchLabelOf(in, i)
			data, hit := store.Get(keys[i])
			bopts.Tracer.Scope(names[i], 0).CacheProbe("result", hit)
			if hit && len(data) > 0 {
				replay[i] = data
			} else {
				run = append(run, in)
			}
		}
		inputs = run
	}

	batch := gator.AnalyzeBatch(inputs, bopts)
	if *stats {
		fmt.Fprint(os.Stderr, metrics.FormatBatch(batch.Stats))
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, sink.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
	}
	if *statsJSON != "" {
		data, err := batch.StatsJSON()
		if err == nil {
			if *statsJSON == "-" {
				_, err = os.Stdout.Write(data)
			} else {
				err = os.WriteFile(*statsJSON, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
	}

	exit := 0
	var checkReports []*gator.CheckReport
	next := 0 // next unconsumed entry of batch.Apps
	for i := 0; i < total; i++ {
		if replay[i] != nil {
			if total > 1 {
				if i > 0 {
					fmt.Println()
				}
				fmt.Printf("== %s ==\n", names[i])
			}
			// Entries store one exit-code digit followed by the rendered
			// report (see the Put below).
			os.Stdout.Write(replay[i][1:])
			if code := int(replay[i][0] - '0'); code > exit {
				exit = code
			}
			continue
		}
		rep := batch.Apps[next]
		next++
		if rep.Err != nil {
			fmt.Fprintln(os.Stderr, "gator:", rep.Err)
			exit = 1
			continue
		}
		if total > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", rep.Name)
		}
		if *checksMode {
			cr, err := rep.Result.CheckReport(splitChecks(*only)...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
				os.Exit(2)
			}
			fmt.Print(cr.Text())
			if *stats {
				fmt.Fprint(os.Stderr, cr.PassTimings())
			}
			checkReports = append(checkReports, cr)
			if cr.Warnings() > 0 && exit == 0 {
				exit = 1
			}
			continue
		}
		var buf bytes.Buffer
		code := report.Render(&buf, os.Stderr, rep.Name, rep.Result,
			report.Request{Report: *reportKind, Explain: *explain, Seed: *seed})
		os.Stdout.Write(buf.Bytes())
		if store != nil && keys[i] != "" && code <= 1 {
			entry := append([]byte{byte('0' + code)}, buf.Bytes()...)
			if err := store.Put(keys[i], entry); err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
			}
		}
		if code > exit {
			exit = code
		}
	}
	if *sarifOut != "" && len(checkReports) > 0 {
		data, err := gator.SARIFAll(checkReports...)
		if err == nil {
			err = os.WriteFile(*sarifOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// figure1Input is the paper's embedded running example as a batch input.
func figure1Input() gator.BatchInput {
	return gator.BatchInput{
		Name:    "Figure1",
		Sources: map[string]string{"connectbot.alite": corpus.Figure1Source},
		Layouts: map[string]string{
			"act_console":   corpus.Figure1ActConsoleXML,
			"item_terminal": corpus.Figure1ItemTerminalXML,
		},
	}
}

// writeTrace writes the collected events in Chrome trace_event format.
func writeTrace(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitChecks parses the -only flag into check IDs.
func splitChecks(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// batchLabelOf names one input the way AnalyzeBatch will, for headers and
// trace scopes of apps served from the result cache.
func batchLabelOf(in gator.BatchInput, index int) string {
	switch {
	case in.Name != "":
		return in.Name
	case in.Dir != "":
		return filepath.Base(in.Dir)
	}
	return fmt.Sprintf("app%d", index)
}

// runWatch watches one application directory and re-analyzes on change,
// delta-resolving body-only edits against the previous solution. Rapid
// successive edits (save bursts, multi-file refactors) coalesce into one
// re-analysis via the settle-window debounce in internal/watch. It never
// returns; interrupt the process to stop.
func runWatch(dir string, opts gator.Options, reportKind, explain string, seed int64) {
	c := gator.NewCache()
	var prev *gator.Result
	stop := make(chan struct{}) // never closed: ^C ends the process
	watch.Watch(stop, dir, watch.Config{FireInitial: true}, gator.ReadAppDir, func(ev watch.Event) {
		if ev.Err != nil {
			fmt.Fprintln(os.Stderr, "gator:", ev.Err)
			return
		}
		res, err := gator.AnalyzeIncremental(prev, ev.Sources, ev.Layouts, opts, c)
		if err != nil {
			// Mid-edit parse errors leave prev usable; a consumed prev does
			// not — drop it and recover with a full analysis next round.
			if errors.Is(err, gator.ErrStaleResult) {
				prev = nil
			}
			fmt.Fprintln(os.Stderr, "gator:", err)
			return
		}
		prev = res
		st := res.Incremental()
		if st.Mode == "unchanged" {
			return
		}
		fmt.Fprintf(os.Stderr, "gator: %s analyzed in %v (%s", dir, res.Elapsed(), st.Mode)
		switch {
		case st.Mode == "warm":
			fmt.Fprintf(os.Stderr, ": retained %d, retracted %d facts", st.Retained, st.Retracted)
		case st.Reason != "":
			fmt.Fprintf(os.Stderr, ": %s", st.Reason)
		}
		fmt.Fprintln(os.Stderr, ")")
		report.Render(os.Stdout, os.Stderr, filepath.Base(dir), res,
			report.Request{Report: reportKind, Explain: explain, Seed: seed})
	})
	select {} // unreachable: Watch only returns when stop closes
}

// remoteConfig is the -remote frontend's effective flag set.
type remoteConfig struct {
	addr    string
	report  string
	explain string
	seed    int64
	checks  bool
	only    []string
	sarif   string
	watch   bool
	figure1 bool
	opts    gator.Options
	dirs    []string
}

// spec maps the CLI flags onto the wire report selection: -checks becomes
// the "checks" report (same text, same exit-1-on-warnings semantics).
func (rc remoteConfig) spec() server.ReportSpec {
	kind := rc.report
	if rc.checks {
		kind = "checks"
	}
	return server.ReportSpec{Report: kind, Explain: rc.explain, Seed: rc.seed, Checks: rc.only}
}

func (rc remoteConfig) options() server.OptionsJSON {
	ctx := ""
	if rc.opts.ContextSensitivity != gator.CtxOff {
		ctx = rc.opts.ContextSensitivity.String()
	}
	return server.OptionsJSON{
		FilterCasts:           rc.opts.FilterCasts,
		SharedInflation:       rc.opts.SharedInflation,
		NoFindView3Refinement: rc.opts.NoFindView3Refinement,
		DeclaredDispatchOnly:  rc.opts.DeclaredDispatchOnly,
		Context1:              rc.opts.Context1,
		ContextSensitivity:    ctx,
		Provenance:            rc.opts.Provenance,
	}
}

// runRemote drives a gatord daemon instead of the local pipeline and
// returns the process exit code. Reports arrive byte-identical to local
// rendering, so the frontend only moves bytes.
func runRemote(rc remoteConfig) int {
	c := server.NewClient(rc.addr)

	if rc.watch {
		if rc.figure1 || len(rc.dirs) != 1 {
			fmt.Fprintln(os.Stderr, "gator: -remote -watch wants exactly one app directory")
			return 2
		}
		stop := make(chan struct{}) // never closed: ^C ends the process
		err := c.WatchSession(stop, rc.dirs[0], watch.Config{}, server.AnalyzeRequest{
			Name:       filepath.Base(rc.dirs[0]),
			Options:    rc.options(),
			ReportSpec: rc.spec(),
		}, gator.ReadAppDir, func(resp *server.AnalyzeResponse, err error) {
			if err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
				return
			}
			if inc := resp.Incremental; inc != nil && inc.Mode == "unchanged" {
				return
			}
			if inc := resp.Incremental; inc != nil {
				fmt.Fprintf(os.Stderr, "gator: %s analyzed remotely in %.1fms (%s)\n",
					rc.dirs[0], resp.ElapsedMs, inc.Mode)
			}
			os.Stdout.WriteString(resp.Output)
			if resp.Stderr != "" {
				fmt.Fprint(os.Stderr, resp.Stderr)
			}
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			return 1
		}
		return 0
	}

	type input struct {
		name             string
		sources, layouts map[string]string
	}
	var inputs []input
	switch {
	case rc.figure1:
		in := figure1Input()
		inputs = []input{{name: in.Name, sources: in.Sources, layouts: in.Layouts}}
	case len(rc.dirs) >= 1:
		for _, dir := range rc.dirs {
			sources, layouts, err := gator.ReadAppDir(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
				return 1
			}
			inputs = append(inputs, input{name: filepath.Base(dir), sources: sources, layouts: layouts})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: gator -remote ADDR [flags] <app-dir> [<app-dir>...]  (or -figure1)")
		return 2
	}
	if rc.sarif != "" && len(inputs) != 1 {
		fmt.Fprintln(os.Stderr, "gator: -remote -sarif wants exactly one application")
		return 2
	}

	exit := 0
	for i, in := range inputs {
		resp, err := c.Analyze(server.AnalyzeRequest{
			Name:       in.name,
			Sources:    in.sources,
			Layouts:    in.layouts,
			Options:    rc.options(),
			ReportSpec: rc.spec(),
		})
		if err != nil {
			var se *server.StatusError
			if errors.As(err, &se) && se.RetryAfter > 0 {
				fmt.Fprintf(os.Stderr, "gator: %v (retry after %v)\n", err, se.RetryAfter)
			} else {
				fmt.Fprintln(os.Stderr, "gator:", err)
			}
			exit = 1
			continue
		}
		if len(inputs) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", in.name)
		}
		os.Stdout.WriteString(resp.Output)
		if resp.Stderr != "" {
			fmt.Fprint(os.Stderr, resp.Stderr)
		}
		if resp.ExitCode > exit {
			exit = resp.ExitCode
		}

		if rc.sarif != "" {
			sr, err := c.Analyze(server.AnalyzeRequest{
				Name:       in.name,
				Sources:    in.sources,
				Layouts:    in.layouts,
				Options:    rc.options(),
				ReportSpec: server.ReportSpec{Report: "sarif", Checks: rc.only},
			})
			if err == nil {
				err = os.WriteFile(rc.sarif, []byte(sr.Output), 0o644)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
				exit = 1
			}
		}
	}
	return exit
}

// Command gator analyzes application directories (*.alite sources plus
// layout XML files) and reports the computed GUI-object solution: views,
// activity content, the view hierarchy, (activity, view, event, handler)
// tuples, Table 1/2 measurements, or a Graphviz rendering of the constraint
// graph (Figures 3 and 4 of the paper).
//
// Usage:
//
//	gator [flags] <app-dir> [<app-dir>...]
//
// With several directories the apps are analyzed as a batch on -j parallel
// workers; one failing app is reported and the rest still complete. With
// -figure1, the embedded running example of the paper is analyzed instead
// of a directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"gator"
	"gator/internal/corpus"
	"gator/internal/metrics"
	"gator/internal/trace"
)

func main() {
	report := flag.String("report", "summary", "what to print: summary, views, tuples, hierarchy, activities, transitions, menus, check, table1, table2, dot, ir, json, explore")
	figure1 := flag.Bool("figure1", false, "analyze the paper's embedded Figure 1 example")
	seed := flag.Int64("seed", 1, "seed for -report explore")
	explain := flag.String("explain", "", "print derivation trees for a variable's solution (Class.method.var) or a view id (id:name)")
	filterCasts := flag.Bool("filter-casts", false, "enable cast filtering")
	sharedInfl := flag.Bool("shared-inflation", false, "share inflation nodes per layout")
	noFV3 := flag.Bool("no-findview3", false, "disable the FindView3 child-only refinement")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel analysis workers for multi-directory batches")
	stats := flag.Bool("stats", false, "print per-stage batch statistics to stderr")
	checksMode := flag.Bool("checks", false, "run the diagnostics engine and print its findings (exit 1 on warnings)")
	only := flag.String("only", "", "comma-separated check IDs to run (with -checks; default all)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to `file` (implies -checks)")
	listChecks := flag.Bool("listchecks", false, "print the checker registry and exit")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the whole run to `file` (open in chrome://tracing or Perfetto)")
	statsJSON := flag.String("stats-json", "", "write byte-stable machine-readable batch stats JSON to `file` (\"-\" for stdout)")
	flag.Parse()

	if *listChecks {
		fmt.Print(gator.ListChecks())
		os.Exit(0)
	}
	if *sarifOut != "" {
		*checksMode = true
	}

	opts := gator.Options{
		FilterCasts:           *filterCasts,
		SharedInflation:       *sharedInfl,
		NoFindView3Refinement: *noFV3,
		// -explain renders derivation trees, which need the recorded DAG.
		Provenance: *explain != "",
	}

	var inputs []gator.BatchInput
	switch {
	case *figure1:
		inputs = []gator.BatchInput{{
			Name:    "Figure1",
			Sources: map[string]string{"connectbot.alite": corpus.Figure1Source},
			Layouts: map[string]string{
				"act_console":   corpus.Figure1ActConsoleXML,
				"item_terminal": corpus.Figure1ItemTerminalXML,
			},
		}}
	case flag.NArg() >= 1:
		for _, dir := range flag.Args() {
			inputs = append(inputs, gator.BatchInput{Dir: dir})
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: gator [flags] <app-dir> [<app-dir>...]  (or -figure1)")
		os.Exit(2)
	}

	bopts := gator.BatchOptions{Workers: *jobs, Options: opts}
	var sink *trace.Collect
	if *traceOut != "" {
		sink = &trace.Collect{}
		bopts.Tracer = trace.New(sink)
	}

	batch := gator.AnalyzeBatch(inputs, bopts)
	if *stats {
		fmt.Fprint(os.Stderr, metrics.FormatBatch(batch.Stats))
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, sink.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
	}
	if *statsJSON != "" {
		data, err := batch.StatsJSON()
		if err == nil {
			if *statsJSON == "-" {
				_, err = os.Stdout.Write(data)
			} else {
				err = os.WriteFile(*statsJSON, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			os.Exit(1)
		}
	}

	exit := 0
	var checkReports []*gator.CheckReport
	for i, rep := range batch.Apps {
		if rep.Err != nil {
			fmt.Fprintln(os.Stderr, "gator:", rep.Err)
			exit = 1
			continue
		}
		if len(batch.Apps) > 1 {
			if i > 0 {
				fmt.Println()
			}
			fmt.Printf("== %s ==\n", rep.Name)
		}
		if *checksMode {
			cr, err := rep.Result.CheckReport(splitChecks(*only)...)
			if err != nil {
				fmt.Fprintln(os.Stderr, "gator:", err)
				os.Exit(2)
			}
			fmt.Print(cr.Text())
			if *stats {
				fmt.Fprint(os.Stderr, cr.PassTimings())
			}
			checkReports = append(checkReports, cr)
			if cr.Warnings() > 0 && exit == 0 {
				exit = 1
			}
			continue
		}
		if code := printReport(rep.Name, rep.Result, *report, *explain, *seed); code > exit {
			exit = code
		}
	}
	if *sarifOut != "" && len(checkReports) > 0 {
		data, err := gator.SARIFAll(checkReports...)
		if err == nil {
			err = os.WriteFile(*sarifOut, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			exit = 1
		}
	}
	os.Exit(exit)
}

// writeTrace writes the collected events in Chrome trace_event format.
func writeTrace(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// splitChecks parses the -only flag into check IDs.
func splitChecks(s string) []string {
	var out []string
	for _, id := range strings.Split(s, ",") {
		if id = strings.TrimSpace(id); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// printReport renders one app's solution and returns the exit code the
// report asks for (reports with pass/fail semantics exit nonzero on fail).
func printReport(name string, res *gator.Result, report, explain string, seed int64) int {
	if explain != "" {
		var trees []string
		var err error
		if strings.HasPrefix(explain, "id:") {
			trees, err = res.ExplainViewID(strings.TrimPrefix(explain, "id:"))
		} else {
			parts := strings.SplitN(explain, ".", 3)
			if len(parts) != 3 {
				fmt.Fprintln(os.Stderr, "gator: -explain wants Class.method.var or id:name")
				return 2
			}
			trees, err = res.ExplainDerivation(parts[0], parts[1], parts[2])
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			return 1
		}
		for i, t := range trees {
			if i > 0 {
				fmt.Println()
			}
			fmt.Print(t)
		}
		return 0
	}

	switch report {
	case "summary":
		t1 := res.Table1()
		fmt.Printf("%s: %d classes, %d methods\n", name, t1.Classes, t1.Methods)
		fmt.Printf("ids: %d layouts, %d view ids\n", t1.LayoutIDs, t1.ViewIDs)
		fmt.Printf("views: %d inflated, %d allocated; %d listeners\n",
			t1.ViewsInflated, t1.ViewsAllocated, t1.Listeners)
		fmt.Printf("ops: %d inflate, %d find-view, %d add-view, %d set-listener, %d set-id\n",
			t1.InflateOps, t1.FindViewOps, t1.AddViewOps, t1.SetListenerOps, t1.SetIdOps)
		fmt.Printf("analysis: %v, %d fixpoint rounds\n", res.Elapsed(), res.Iterations())
	case "views":
		for _, v := range res.Views() {
			id := v.ID
			if id == "" {
				id = "-"
			}
			fmt.Printf("%-20s %-28s id=%s\n", v.Class, v.Origin, id)
		}
	case "tuples":
		for _, t := range res.EventTuples() {
			act := t.Activity
			if act == "" {
				act = "-"
			}
			fmt.Printf("activity=%-20s view=%s(%s) event=%-12s handler=%s\n",
				act, t.View.Class, t.View.Origin, t.Event, t.Handler)
		}
	case "hierarchy":
		for _, e := range res.Hierarchy() {
			fmt.Printf("%s(%s) => %s(%s)\n", e.Parent.Class, e.Parent.Origin, e.Child.Class, e.Child.Origin)
		}
	case "activities":
		for _, a := range res.Activities() {
			fmt.Printf("%s:\n", a.Activity)
			for _, r := range a.Roots {
				fmt.Printf("\troot %s (%s)\n", r.Class, r.Origin)
			}
		}
	case "table1":
		fmt.Printf("%+v\n", res.Table1())
	case "table2":
		r := res.Table2()
		fmt.Printf("time=%v receivers=%.2f results=%.2f listeners=%.2f\n",
			r.Time, r.AvgReceivers, r.AvgResults, r.AvgListeners)
	case "check":
		fs := res.Check()
		warnings := 0
		for _, f := range fs {
			where := f.Pos
			if where == "" {
				where = name
			}
			fmt.Printf("%s: %s: [%s] %s\n", where, f.Severity, f.Check, f.Msg)
			if f.Severity == "warning" {
				warnings++
			}
		}
		if warnings > 0 {
			return 1
		}
	case "menus":
		for _, e := range res.MenuEntries() {
			fmt.Printf("activity=%-20s item=%-16s handler=%s\n", e.Activity, e.ItemID, e.Handler)
		}
	case "transitions":
		for _, tr := range res.Transitions() {
			fmt.Printf("%s -> %s  (via %s)\n", tr.Source, tr.Target, tr.Via)
		}
	case "json":
		data, err := res.Model().JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "gator:", err)
			return 1
		}
		fmt.Println(string(data))
	case "ir":
		fmt.Print(res.DumpIR())
	case "dot":
		fmt.Print(res.Dot())
	case "explore":
		rep := res.Explore(seed)
		fmt.Printf("sound=%v sites=%d perfect=%d steps=%d\n",
			rep.Sound, rep.ObservedSites, rep.PerfectSites, rep.Steps)
		for _, v := range rep.Violations {
			fmt.Println("violation:", v)
		}
		if !rep.Sound {
			return 1
		}
	default:
		fmt.Fprintf(os.Stderr, "gator: unknown report %q\n", report)
		return 2
	}
	return 0
}

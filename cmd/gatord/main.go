// Command gatord is the analysis-as-a-service daemon: a long-running HTTP
// server exposing the full gator pipeline — cold submissions, cached
// replays, warm incremental sessions, and streaming batch analysis — to
// request/response clients (`gator -remote`, the Go client in
// internal/server, or plain curl).
//
// Usage:
//
//	gatord [-addr :7465] [-workers N] [-queue N] [-job-timeout 60s]
//	       [-session-ttl 30m] [-max-sessions N] [-max-request-bytes N]
//	       [-cache-dir DIR] [-cache-max-bytes N]
//	       [-log-level info] [-log-format json] [-trace-sample N]
//	       [-trace-ring N] [-replica ID] [-shared-cache URL]
//
// -replica and -shared-cache make the daemon one node of a gatorproxy
// cluster (see cmd/gatorproxy and DESIGN.md, "Cluster"): responses carry
// the replica id, and cacheable results are shared cluster-wide through
// the proxy's content-addressed store.
//
// Endpoints (see README.md, "Server mode"):
//
//	POST   /v1/analyze        one-shot analysis (content-addressed replay)
//	POST   /v1/batch          parallel batch, SSE progress stream
//	POST   /v1/sessions       upload once, then …
//	PATCH  /v1/sessions/{id}  … patch files, warm incremental re-analysis
//	GET    /v1/sessions/{id}  session metadata
//	DELETE /v1/sessions/{id}  drop a session
//	GET    /healthz /readyz /metrics /metrics.json /debug/pprof/
//	GET    /v1/debug/traces/{id}  captured solver trace (NDJSON)
//
// Telemetry: every request carries a W3C trace context (incoming
// traceparent headers are continued, others started fresh), /metrics
// serves Prometheus text exposition (JSON at /metrics.json), request
// logs are structured (-log-format json|text, -log-level), and solver
// traces are captured for every Nth request (-trace-sample) or on demand
// (?trace=1), retrievable at /v1/debug/traces/{traceId}.
//
// SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503, queued
// jobs are rejected, in-flight jobs finish, then the listener closes.
//
// With -smoke the daemon exercises itself once end-to-end (cold request,
// session patch, drain) against the app directory argument and exits —
// the CI gate's server smoke test.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"gator/internal/cluster"
	"gator/internal/server"
	"gator/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7465", "listen address (host:port; port 0 picks a free port)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent analysis workers")
	queue := flag.Int("queue", 64, "admission queue depth (past it: 429 + Retry-After)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job deadline, queue wait included (past it: 504)")
	sessionTTL := flag.Duration("session-ttl", 30*time.Minute, "evict sessions idle longer than this")
	maxSessions := flag.Int("max-sessions", 256, "max live sessions (past it: LRU eviction)")
	maxBytes := flag.Int64("max-request-bytes", 16<<20, "max request body bytes (past it: 413)")
	cacheDir := flag.String("cache-dir", "", "persist rendered reports in this `directory` (content-addressed, survives restarts)")
	cacheMax := flag.Int64("cache-max-bytes", 0, "bound the -cache-dir store; least-recently-used entries are evicted (0 = unbounded)")
	drainGrace := flag.Duration("drain-grace", 30*time.Second, "max time to wait for in-flight work on shutdown")
	logLevel := flag.String("log-level", "info", "request log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "json", "request log format: json or text")
	traceSample := flag.Int("trace-sample", 0, "capture the solver trace of every Nth analysis request (0 = only ?trace=1 requests)")
	traceRing := flag.Int("trace-ring", 64, "max captured solver traces kept in memory")
	replica := flag.String("replica", "", "replica `id` when this daemon is one node of a gatorproxy cluster; echoed in X-Gator-Replica on every response")
	sharedCache := flag.String("shared-cache", "", "base `URL` of the cluster's shared result store (the gatorproxy address); consulted after local caches miss, written through on every solve")
	smoke := flag.Bool("smoke", false, "self-test: serve on a free port, run one cold and one incremental request against the app directory argument, drain, exit")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatord:", err)
		os.Exit(2)
	}

	cfg := server.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		JobTimeout:       *jobTimeout,
		SessionTTL:       *sessionTTL,
		MaxSessions:      *maxSessions,
		MaxRequestBytes:  *maxBytes,
		CacheDir:         *cacheDir,
		CacheMaxBytes:    *cacheMax,
		Logger:           logger,
		TraceSample:      *traceSample,
		TraceRingEntries: *traceRing,
		ReplicaID:        *replica,
	}
	if *sharedCache != "" {
		cfg.Shared = cluster.NewStoreClient(*sharedCache)
	}

	if *smoke {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "gatord: -smoke wants exactly one app directory")
			os.Exit(2)
		}
		if err := runSmoke(cfg, flag.Arg(0)); err != nil {
			fmt.Fprintln(os.Stderr, "gatord: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("gatord: smoke ok")
		return
	}

	srv, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatord:", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatord:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gatord: listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}

	// Reclaim abandoned sessions even when nobody touches the store.
	sweepStop := make(chan struct{})
	go func() {
		ticker := time.NewTicker(time.Minute)
		defer ticker.Stop()
		for {
			select {
			case <-sweepStop:
				return
			case <-ticker.C:
				srv.SweepSessions()
			}
		}
	}()

	// Graceful drain on SIGINT/SIGTERM: readiness flips first so load
	// balancers stop routing, then the job queue drains, then the
	// listener closes once in-flight responses are written.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s := <-sig
		fmt.Fprintf(os.Stderr, "gatord: %v: draining\n", s)
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "gatord: shutdown:", err)
		}
	}()

	err = httpSrv.Serve(ln)
	close(sweepStop)
	if !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gatord:", err)
		os.Exit(1)
	}
	<-done
	fmt.Fprintln(os.Stderr, "gatord: drained, bye")
}

package main

// The -smoke self-test: boot the daemon on a loopback port, drive it
// through one cold submission and one incremental session patch with the
// Go client, check both against locally computed reports (the remote ≡
// local byte-identity contract), then drain and verify the shutdown
// semantics. scripts/ci.sh runs this as the server smoke gate.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sort"
	"time"

	"gator"
	"gator/internal/metrics"
	"gator/internal/report"
	"gator/internal/server"
)

// localReport renders the same report the server is asked for, through the
// same library path a local CLI run takes.
func localReport(name string, sources, layouts map[string]string, kind string) (string, error) {
	app, err := gator.Load(sources, layouts)
	if err != nil {
		return "", err
	}
	app.Name = name
	res := app.Analyze(gator.Options{})
	var out, errBuf bytes.Buffer
	if code := report.Render(&out, &errBuf, name, res, report.Request{Report: kind, Seed: 1}); code != 0 {
		return "", fmt.Errorf("local render exited %d: %s", code, errBuf.String())
	}
	return out.String(), nil
}

func runSmoke(cfg server.Config, dir string) error {
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	c := server.NewClient(ln.Addr().String())
	if err := c.Healthz(); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	if err := c.Readyz(); err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	// With -replica set, every response must carry the replica identity —
	// what the cluster proxy and its rollup key on.
	if cfg.ReplicaID != "" {
		replica, err := c.Replica()
		if err != nil {
			return fmt.Errorf("read replica header: %w", err)
		}
		if replica != cfg.ReplicaID {
			return fmt.Errorf("replica header %q, want %q", replica, cfg.ReplicaID)
		}
		fmt.Printf("gatord: smoke: replica identity ok (%s)\n", replica)
	}

	sources, layouts, err := gator.ReadAppDir(dir)
	if err != nil {
		return err
	}
	const kind = "views"

	// Cold submission: the rendered report must be byte-identical to the
	// local pipeline's.
	cold, err := c.Analyze(server.AnalyzeRequest{
		Name:       "smoke",
		Sources:    sources,
		Layouts:    layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("cold analyze: %w", err)
	}
	want, err := localReport("smoke", sources, layouts, kind)
	if err != nil {
		return err
	}
	if cold.Output != want {
		return fmt.Errorf("cold report differs from local output\nremote:\n%s\nlocal:\n%s", cold.Output, want)
	}
	fmt.Printf("gatord: smoke: cold request ok (%d bytes, exit %d)\n", len(cold.Output), cold.ExitCode)

	// Session + incremental patch: append a comment to one source file (a
	// body-only edit) and check the warm re-analysis against a local
	// scratch solve of the edited input — PR 4's differential tests prove
	// warm ≡ scratch, so this also cross-checks the session plumbing.
	open, err := c.OpenSession(server.AnalyzeRequest{
		Name:       "smoke",
		Sources:    sources,
		Layouts:    layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("open session: %w", err)
	}
	var names []string
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	edited := names[0]
	newSrc := sources[edited] + "\n// gatord smoke edit\n"
	patch, err := c.PatchSession(open.SessionID, server.PatchRequest{
		Sources:    map[string]string{edited: newSrc},
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("patch session: %w", err)
	}
	editedSources := map[string]string{}
	for n, s := range sources {
		editedSources[n] = s
	}
	editedSources[edited] = newSrc
	want, err = localReport("smoke", editedSources, layouts, kind)
	if err != nil {
		return err
	}
	if patch.Output != want {
		return fmt.Errorf("incremental report differs from local output\nremote:\n%s\nlocal:\n%s", patch.Output, want)
	}
	if patch.Incremental == nil {
		return errors.New("patch response lacks incremental stats")
	}
	fmt.Printf("gatord: smoke: incremental request ok (mode=%s, %d bytes)\n",
		patch.Incremental.Mode, len(patch.Output))
	if err := c.CloseSession(open.SessionID); err != nil {
		return fmt.Errorf("close session: %w", err)
	}

	// Telemetry: the Prometheus exposition must parse and carry the
	// request counters, and an on-demand traced request must yield a
	// retrievable solver trace whose events carry the trace id.
	prom, err := c.MetricsProm()
	if err != nil {
		return fmt.Errorf("scrape /metrics: %w", err)
	}
	fams, err := metrics.ParsePrometheus(prom)
	if err != nil {
		return fmt.Errorf("/metrics is not valid Prometheus text: %w", err)
	}
	if _, ok := fams["gatord_http_requests_total"]; !ok {
		return errors.New("/metrics lacks gatord_http_requests_total")
	}
	traced, err := c.AnalyzeTraced(server.AnalyzeRequest{
		Name:       "smoke",
		Sources:    sources,
		Layouts:    layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("traced analyze: %w", err)
	}
	if traced.TraceID == "" {
		return errors.New("traced analyze returned no traceId")
	}
	events, err := c.DebugTrace(traced.TraceID)
	if err != nil {
		return fmt.Errorf("fetch debug trace: %w", err)
	}
	if !bytes.Contains(events, []byte(traced.TraceID)) {
		return errors.New("captured solver trace events lack the trace id")
	}
	fmt.Printf("gatord: smoke: telemetry ok (%d metric families, trace %s, %d trace bytes)\n",
		len(fams), traced.TraceID, len(events))

	// Drain: readiness must flip, new work must be rejected, and the
	// listener must close cleanly.
	srv.Drain()
	if err := c.Readyz(); err == nil {
		return errors.New("readyz still ok after drain")
	}
	if _, err := c.Analyze(server.AnalyzeRequest{Sources: sources}); err == nil {
		return errors.New("analyze accepted after drain")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	fmt.Println("gatord: smoke: drain + clean shutdown ok")
	return nil
}

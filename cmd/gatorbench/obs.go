package main

// The -obsjson benchmark (BENCH_8.json): what the request telemetry layer
// costs. Two identical loopback daemons serve the same request mix — one
// with telemetry off (Config.NoTelemetry: the benchmark baseline), one
// with the full layer on (trace propagation, per-request metrics and
// logs, head-sampled solver trace capture, structured logging to a
// discarded writer so the measurement includes serialization but not disk
// I/O). The recorded overheadPct is the relative cost of the telemetry-on
// side; the nightly benchdiff gate fails past 5%.
//
// The measurement is built for a noisy shared runner, where GC pauses
// are as long as the requests themselves and would otherwise dominate
// the comparison:
//
//   - requests are the largest Table 1 corpus apps with NoCache, so
//     every one pays a full parse + solve + render path long enough
//     (tens of ms) that scheduler jitter is small relative to the
//     quantity being measured;
//   - the two daemons are driven back-to-back per request, so each
//     off/on pair shares nearly the same machine state, and the order
//     within a pair alternates each round so GC triggered by one side's
//     allocations does not systematically land on the other;
//   - a forced GC runs before each pair (outside the timed window) with
//     GOGC raised for the measurement, so collections mostly happen at
//     pair boundaries rather than during a timed request — this alone
//     cuts the estimator's run-to-run spread by about 4x;
//   - the recorded overheadPct is the interquartile mean of the paired
//     latency deltas over the mean baseline: the trim discards the
//     pairs a stray collection or co-tenant burst still lands in, and
//     the mean over the rest converges. The min-of-rounds latency sums
//     are recorded alongside for trend reading.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"

	"gator/internal/corpus"
	"gator/internal/server"
	"gator/internal/telemetry"
)

// obsBenchOutput is the -obsjson file shape. TelemetryOnMs > 0 is what
// cmd/benchdiff uses to detect this record shape.
type obsBenchOutput struct {
	GeneratedAt   string  `json:"generatedAt"`
	Workers       int     `json:"workers"`
	Requests      int     `json:"requests"`
	Rounds        int     `json:"rounds"`
	TelemetryOff  float64 `json:"telemetryOffMs"`
	TelemetryOnMs float64 `json:"telemetryOnMs"`
	OverheadPct   float64 `json:"overheadPct"`
}

// obsDaemon boots one loopback daemon and returns its client and a
// shutdown func.
func obsDaemon(cfg server.Config) (*server.Client, func(), error) {
	srv, err := server.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	done := make(chan struct{})
	go func() { httpSrv.Serve(ln); close(done) }()
	stop := func() {
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		<-done
	}
	return server.NewClient(ln.Addr().String()), stop, nil
}

// obsRound drives the request mix against one daemon once, folding each
// request's latency into the per-request minimum in best.
func obsRound(c *server.Client, reqs []server.AnalyzeRequest, best []time.Duration) error {
	for i, req := range reqs {
		start := time.Now()
		if _, err := c.Analyze(req); err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		if d := time.Since(start); d < best[i] {
			best[i] = d
		}
	}
	return nil
}

func newBest(n int) []time.Duration {
	best := make([]time.Duration, n)
	for i := range best {
		best[i] = time.Duration(1<<63 - 1)
	}
	return best
}

func sum(best []time.Duration) time.Duration {
	var total time.Duration
	for _, d := range best {
		total += d
	}
	return total
}

// iqMean is the interquartile mean: the average of the middle half of the
// samples, discarding the top and bottom quarters.
func iqMean(xs []float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	lo, hi := len(sorted)/4, len(sorted)-len(sorted)/4
	var s float64
	for _, x := range sorted[lo:hi] {
		s += x
	}
	return s / float64(hi-lo)
}

// obsRequests builds the request mix: the four largest Table 1 corpus
// apps, each a full-sized parse + solve + render per request (NoCache).
// Small random apps finish in well under a millisecond over loopback,
// where scheduler jitter swamps the telemetry cost being measured; these
// run long enough for the ratio to be about the code, not the machine.
func obsRequests() ([]server.AnalyzeRequest, error) {
	var reqs []server.AnalyzeRequest
	for _, name := range []string{"Astrid", "K9", "FBReader", "XBMC"} {
		spec, ok := corpus.SpecByName(name)
		if !ok {
			return nil, fmt.Errorf("obsjson: no corpus spec %q", name)
		}
		app := corpus.Generate(spec)
		reqs = append(reqs, server.AnalyzeRequest{
			Name:       name,
			Sources:    app.BatchSources(),
			Layouts:    app.LayoutXML(),
			ReportSpec: server.ReportSpec{Report: "views"},
			NoCache:    true,
		})
	}
	return reqs, nil
}

func writeObsJSON(path string, workers int) error {
	const rounds = 12
	reqs, err := obsRequests()
	if err != nil {
		return err
	}

	offClient, offStop, err := obsDaemon(server.Config{Workers: workers, NoTelemetry: true})
	if err != nil {
		return err
	}
	defer offStop()
	// The telemetry-on side runs everything the production daemon would:
	// JSON request logging (to a discarded writer — serialization cost
	// stays in the measurement, disk latency does not) and head sampling
	// on every 10th request.
	logger, err := telemetry.NewLogger(io.Discard, "info", "json")
	if err != nil {
		return err
	}
	onClient, onStop, err := obsDaemon(server.Config{
		Workers: workers, Logger: logger, TraceSample: 10,
	})
	if err != nil {
		return err
	}
	defer onStop()

	// Warm both parse caches outside the measurement window.
	if err := obsRound(offClient, reqs, newBest(len(reqs))); err != nil {
		return fmt.Errorf("obsjson: baseline warmup: %w", err)
	}
	if err := obsRound(onClient, reqs, newBest(len(reqs))); err != nil {
		return fmt.Errorf("obsjson: telemetry warmup: %w", err)
	}

	// Measure with GC quiesced to pair boundaries (see the file comment).
	oldGC := debug.SetGCPercent(800)
	defer debug.SetGCPercent(oldGC)
	timed := func(c *server.Client, req server.AnalyzeRequest) (time.Duration, error) {
		start := time.Now()
		_, err := c.Analyze(req)
		return time.Since(start), err
	}
	offBest, onBest := newBest(len(reqs)), newBest(len(reqs))
	var deltas, bases []float64
	for r := 0; r < rounds; r++ {
		for i, req := range reqs {
			runtime.GC()
			var offD, onD time.Duration
			var offErr, onErr error
			if r%2 == 0 {
				offD, offErr = timed(offClient, req)
				onD, onErr = timed(onClient, req)
			} else {
				onD, onErr = timed(onClient, req)
				offD, offErr = timed(offClient, req)
			}
			if offErr != nil {
				return fmt.Errorf("obsjson: baseline round %d request %d: %w", r, i, offErr)
			}
			if onErr != nil {
				return fmt.Errorf("obsjson: telemetry round %d request %d: %w", r, i, onErr)
			}
			if offD < offBest[i] {
				offBest[i] = offD
			}
			if onD < onBest[i] {
				onBest[i] = onD
			}
			deltas = append(deltas, float64(onD-offD))
			bases = append(bases, float64(offD))
		}
	}
	off, on := sum(offBest), sum(onBest)
	overhead := iqMean(deltas) / iqMean(bases) * 100

	out := obsBenchOutput{
		GeneratedAt:   time.Now().UTC().Format(time.RFC3339),
		Workers:       workers,
		Requests:      len(reqs),
		Rounds:        rounds,
		TelemetryOff:  ms(off),
		TelemetryOnMs: ms(on),
		OverheadPct:   overhead,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

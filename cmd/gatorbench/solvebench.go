package main

// The -solvejson benchmark (BENCH_6.json): the solver hot-path campaign's
// recorded numbers. Part one solves a 501-unit chain-shaped application —
// one outer fixpoint iteration per findViewById chain stage, ~26 in all, so
// the delta operation worklist and the CSR propagation arrays actually pay
// off — under three engines: the
// reference schedule (Options.ReferenceSolver), the default optimized
// engine, and the sharded parallel engine. Part two measures incremental
// re-analysis (warm vs cold) on a 502-unit modular application, far past
// the former 64-unit dependency-tracking budget. Only the solve phase is
// timed for the engine comparison (extracted from trace phase events);
// parsing, IR construction, and graph building are identical across
// engines and would only dilute the ratio.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"gator"
	"gator/internal/corpus"
	"gator/internal/trace"
)

// solveBenchRuns is the per-configuration repetition count; the minimum is
// reported (minimum, not mean, to shed scheduler noise on shared runners).
const solveBenchRuns = 3

// solveBenchOutput is the -solvejson file shape.
type solveBenchOutput struct {
	GeneratedAt string `json:"generatedAt"`
	Cores       int    `json:"cores"`

	// Engine comparison on the chain-shaped app.
	App        string  `json:"app"`
	Units      int     `json:"units"`
	Iterations int     `json:"iterations"`
	Shards     int     `json:"shards"`
	RefMs      float64 `json:"refMs"`
	OptMs      float64 `json:"optMs"`
	ShardMs    float64 `json:"shardMs"`
	// OptSpeedup is the campaign headline: reference schedule vs the
	// CSR+delta engine, same machine, same solution. ShardSpeedup is
	// reference vs the sharded engine; on a single-core runner it records
	// that sharding at least does not regress.
	OptSpeedup   float64 `json:"optSpeedup"`
	ShardSpeedup float64 `json:"shardSpeedup"`

	// Incremental warm-vs-cold on a >64-unit app.
	IncApp     string  `json:"incApp"`
	IncUnits   int     `json:"incUnits"`
	IncColdMs  float64 `json:"incColdMs"`
	IncWarmMs  float64 `json:"incWarmMs"`
	IncSpeedup float64 `json:"incSpeedup"`
}

// solvePhaseMs extracts the "solve" phase duration from collected events.
func solvePhaseMs(events []trace.Event) (float64, error) {
	var begin time.Duration
	haveBegin := false
	for _, ev := range events {
		if ev.Name != "solve" {
			continue
		}
		switch ev.Kind {
		case trace.KindPhaseBegin:
			begin, haveBegin = ev.TS, true
		case trace.KindPhaseEnd:
			if haveBegin {
				return ms(ev.TS - begin), nil
			}
		}
	}
	return 0, fmt.Errorf("solvejson: no solve phase in trace")
}

// timeSolve loads the app fresh and returns the solve-phase time and
// iteration count under opts, minimized over solveBenchRuns runs.
func timeSolve(sources, layouts map[string]string, opts gator.Options) (float64, int, error) {
	best := 0.0
	iters := 0
	for run := 0; run < solveBenchRuns; run++ {
		app, err := gator.Load(sources, layouts)
		if err != nil {
			return 0, 0, err
		}
		sink := &trace.Collect{}
		opts.Trace = trace.New(sink).Scope("solvebench", 0)
		res := app.Analyze(opts)
		d, err := solvePhaseMs(sink.Events())
		if err != nil {
			return 0, 0, err
		}
		if run == 0 || d < best {
			best = d
		}
		iters = res.Iterations()
	}
	return best, iters, nil
}

func writeSolveJSON(path string) error {
	const nAct, depth = 250, 24
	const shards = 4
	sources, layouts := corpus.ModularChainApp(nAct, depth)

	out := solveBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Cores:       runtime.NumCPU(),
		App:         fmt.Sprintf("modular-chain-%dx%d", nAct, depth),
		Units:       len(sources) + len(layouts),
		Shards:      shards,
	}

	var err error
	if out.RefMs, out.Iterations, err = timeSolve(sources, layouts, gator.Options{ReferenceSolver: true}); err != nil {
		return err
	}
	if out.OptMs, _, err = timeSolve(sources, layouts, gator.Options{}); err != nil {
		return err
	}
	if out.ShardMs, _, err = timeSolve(sources, layouts, gator.Options{SolverShards: shards}); err != nil {
		return err
	}
	out.OptSpeedup = out.RefMs / out.OptMs
	out.ShardSpeedup = out.RefMs / out.ShardMs

	if err := solveBenchIncremental(&out); err != nil {
		return err
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// solveBenchIncremental measures a single-file body edit on a 502-unit
// modular app: warm AnalyzeIncremental vs cold Load+Analyze. The former
// 64-unit budget forced exactly this shape to scratch; the paged bitsets
// make it warm.
func solveBenchIncremental(out *solveBenchOutput) error {
	const nActs = 250
	sources, layouts := corpus.ModularApp(nActs)
	out.IncApp = fmt.Sprintf("modular-%d", nActs)
	out.IncUnits = len(sources) + len(layouts)

	base := sources["act1.alite"]
	va := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	vb := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = p;\n", 1)
	if va == base || vb == base {
		return fmt.Errorf("solvejson: edit variants did not apply to act1.alite")
	}
	edit := func(i int) {
		if i%2 == 0 {
			sources["act1.alite"] = va
		} else {
			sources["act1.alite"] = vb
		}
	}

	cold := 0.0
	for i := 0; i < solveBenchRuns; i++ {
		edit(i)
		start := time.Now()
		app, err := gator.Load(sources, layouts)
		if err != nil {
			return err
		}
		app.Analyze(gator.Options{})
		if d := ms(time.Since(start)); i == 0 || d < cold {
			cold = d
		}
	}

	sources["act1.alite"] = base
	c := gator.NewCache()
	prev, err := gator.AnalyzeIncremental(nil, sources, layouts, gator.Options{}, c)
	if err != nil {
		return err
	}
	warm := 0.0
	for i := 0; i < solveBenchRuns; i++ {
		edit(i)
		start := time.Now()
		res, err := gator.AnalyzeIncremental(prev, sources, layouts, gator.Options{}, c)
		if err != nil {
			return err
		}
		d := ms(time.Since(start))
		if st := res.Incremental(); st.Mode != "warm" {
			return fmt.Errorf("solvejson: edit %d fell back to %q (%s)", i, st.Mode, st.Reason)
		}
		if i == 0 || d < warm {
			warm = d
		}
		prev = res
	}

	out.IncColdMs = cold
	out.IncWarmMs = warm
	out.IncSpeedup = cold / warm
	return nil
}

package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gator"
	"gator/internal/corpus"
)

// precApp is one application's record inside a -precjson mode entry.
type precApp struct {
	App           string  `json:"app"`
	StaticFacts   int     `json:"staticFacts"`
	ObservedFacts int     `json:"observedFacts"`
	Ratio         float64 `json:"ratio"`
	Violations    int     `json:"violations"`
}

// precMode is one context-sensitivity mode's corpus-wide precision record.
type precMode struct {
	Mode       string    `json:"mode"`
	Ratio      float64   `json:"ratio"`
	Violations int       `json:"violations"`
	AnalysisMs float64   `json:"analysisMs"`
	Apps       []precApp `json:"apps"`
}

// precStressor is the polymorphic-helper acceptance measurement: on the
// n-activity shared-helper app the context-sensitive solutions must be
// strictly smaller than the insensitive one (Strict), fact counts recorded
// for trend reading.
type precStressor struct {
	App              string `json:"app"`
	InsensitiveFacts int    `json:"insensitiveFacts"`
	CfaFacts         int    `json:"cfaFacts"`
	ObjFacts         int    `json:"objFacts"`
	Strict           bool   `json:"strict"`
}

// precOutput is the -precjson file shape (BENCH_7.json): the measured
// precision frontier. Ratio is total static solution size over total
// oracle-observed facts (1.0 would be an exact analysis); the nightly
// benchdiff gate fails when a mode's ratio regresses by more than 5%, when
// any soundness violation appears, or when the stressor stops being strict.
type precOutput struct {
	GeneratedAt string       `json:"generatedAt"`
	Seed        int64        `json:"seed"`
	Modes       []precMode   `json:"modes"`
	Stressor    precStressor `json:"stressor"`
}

// writePrecisionJSON runs the full corpus under each context-sensitivity
// mode, scores every solution against the interpreter oracle, and adds the
// polymorphic-helper stressor comparison.
func writePrecisionJSON(path string, seed int64, jobs int) error {
	var inputs []gator.BatchInput
	for _, app := range corpus.GenerateAll() {
		inputs = append(inputs, gator.BatchInput{
			Name:    app.Name,
			Sources: app.BatchSources(),
			Layouts: app.LayoutXML(),
		})
	}

	out := precOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:        seed,
	}
	for _, mode := range []gator.CtxMode{gator.CtxOff, gator.Ctx1CFA, gator.Ctx1Obj} {
		batch := gator.AnalyzeBatch(inputs, gator.BatchOptions{
			Workers: jobs,
			Options: gator.Options{ContextSensitivity: mode},
		})
		rec := precMode{Mode: mode.String(), AnalysisMs: ms(batch.Stats.TotalWork())}
		staticSum, observedSum := 0, 0
		for _, rep := range batch.Apps {
			if rep.Err != nil {
				return fmt.Errorf("precjson: %s under %s: %v", rep.Name, mode, rep.Err)
			}
			er := rep.Result.Explore(seed)
			rec.Apps = append(rec.Apps, precApp{
				App:           rep.Name,
				StaticFacts:   er.StaticFacts,
				ObservedFacts: er.ObservedFacts,
				Ratio:         er.PrecisionRatio,
				Violations:    len(er.Violations),
			})
			rec.Violations += len(er.Violations)
			staticSum += er.StaticFacts
			observedSum += er.ObservedFacts
		}
		if observedSum > 0 {
			rec.Ratio = float64(staticSum) / float64(observedSum)
		}
		out.Modes = append(out.Modes, rec)
	}

	// Stressor: the acceptance shape from DESIGN.md — every context-sensitive
	// mode must collapse the shared helper's merged solution.
	const stressN = 8
	sources, layouts := corpus.PolymorphicHelperApp(stressN)
	facts := map[gator.CtxMode]int{}
	for _, mode := range []gator.CtxMode{gator.CtxOff, gator.Ctx1CFA, gator.Ctx1Obj} {
		app, err := gator.Load(sources, layouts)
		if err != nil {
			return fmt.Errorf("precjson: stressor: %v", err)
		}
		res := app.Analyze(gator.Options{ContextSensitivity: mode})
		facts[mode] = len(res.ProjectedFacts())
	}
	out.Stressor = precStressor{
		App:              fmt.Sprintf("polyhelper-%d", stressN),
		InsensitiveFacts: facts[gator.CtxOff],
		CfaFacts:         facts[gator.Ctx1CFA],
		ObjFacts:         facts[gator.Ctx1Obj],
		Strict: facts[gator.Ctx1CFA] < facts[gator.CtxOff] &&
			facts[gator.Ctx1Obj] < facts[gator.CtxOff],
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

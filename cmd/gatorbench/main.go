// Command gatorbench regenerates the paper's evaluation (Section 5) over
// the 20-application corpus: Table 1 (application features and constraint
// graph nodes), Table 2 (analysis cost and precision averages), and the
// case-study comparison against the concrete-interpreter oracle. The corpus
// is analyzed as one parallel batch (-j workers); per-app results are
// reported in corpus order regardless of completion order.
//
// Usage:
//
//	gatorbench [-table 1|2|precision|all] [-app NAME] [-seed N] [-j N] [-stats]
//	           [-filter-casts] [-shared-inflation] [-no-findview3] [-declared-dispatch]
//	           [-ctx off|1cfa|1obj] [-trace FILE] [-metrics FILE] [-pprof ADDR]
//	           [-benchjson FILE] [-incjson FILE] [-solvejson FILE] [-precjson FILE]
//	           [-servejson FILE] [-obsjson FILE] [-clusterjson FILE]
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // -pprof serves the standard profiling endpoints
	"os"
	"runtime"
	"strings"
	"time"

	"gator"
	"gator/internal/corpus"
	"gator/internal/metrics"
	"gator/internal/trace"
)

func main() {
	table := flag.String("table", "all", "which table to regenerate: 1, 2, precision, or all")
	appFilter := flag.String("app", "", "restrict to one application")
	seed := flag.Int64("seed", 1, "interpreter seed for the precision case study")
	filterCasts := flag.Bool("filter-casts", false, "ablation: cast-based filtering")
	sharedInfl := flag.Bool("shared-inflation", false, "ablation: shared inflation nodes per layout")
	noFV3 := flag.Bool("no-findview3", false, "ablation: disable child-only FindView3 refinement")
	declared := flag.Bool("declared-dispatch", false, "ablation: declared-type-only dispatch")
	ctx1 := flag.Bool("context1", false, "refinement: bounded call-site context sensitivity")
	ctxMode := flag.String("ctx", "off", "context sensitivity: off, 1cfa (call-site cloning), or 1obj (receiver-object cloning)")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel analysis workers")
	stats := flag.Bool("stats", false, "print per-stage batch statistics to stderr")
	benchJSON := flag.String("benchjson", "", "write machine-readable benchmark results to `file`")
	incJSON := flag.String("incjson", "", "write the incremental re-analysis benchmark (single-file edit, warm vs cold) to `file`")
	solveJSON := flag.String("solvejson", "", "write the solver engine benchmark (reference vs CSR+delta vs sharded, plus >64-unit incremental) to `file`")
	precJSON := flag.String("precjson", "", "write the precision benchmark (solution/oracle ratio per context-sensitivity mode, plus the polymorphic-helper stressor) to `file`")
	serveJSON := flag.String("servejson", "", "write the server benchmark (request latency percentiles, warm session speedup) to `file`")
	obsJSON := flag.String("obsjson", "", "write the telemetry overhead benchmark (request latency with the telemetry layer on vs off) to `file`")
	clusterJSON := flag.String("clusterjson", "", "write the cluster benchmark (throughput scaling at 1/2/4 replicas, failover tail latency under a mid-run replica kill) to `file`")
	lifeJSON := flag.String("lifejson", "", "write the lifecycle-checker recall benchmark (per-checker recall over synthesized ordering-bug scenarios plus clean-twin false positives) to `file`")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON of the corpus run to `file`")
	metricsOut := flag.String("metrics", "", "write the aggregated counter/histogram registry as JSON to `file` (\"-\" for stderr; implies tracing)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof and expvar on `addr` (e.g. localhost:6060) for the duration of the run")
	flag.Parse()

	if *pprofAddr != "" {
		// The imports register /debug/pprof/* and /debug/vars on the default
		// mux; the trace registry is published under "gator" below.
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "gatorbench: pprof:", err)
			}
		}()
	}

	ctx, ok := gator.ParseCtxMode(*ctxMode)
	if !ok {
		fmt.Fprintf(os.Stderr, "gatorbench: -ctx %q: want off, 1cfa, or 1obj\n", *ctxMode)
		os.Exit(2)
	}

	opts := gator.Options{
		FilterCasts:           *filterCasts,
		SharedInflation:       *sharedInfl,
		NoFindView3Refinement: *noFV3,
		DeclaredDispatchOnly:  *declared,
		Context1:              *ctx1,
		ContextSensitivity:    ctx,
	}

	var inputs []gator.BatchInput
	for _, app := range corpus.GenerateAll() {
		if *appFilter != "" && app.Name != *appFilter {
			continue
		}
		inputs = append(inputs, gator.BatchInput{
			Name:    app.Name,
			Sources: app.BatchSources(),
			Layouts: app.LayoutXML(),
		})
	}

	bopts := gator.BatchOptions{Workers: *jobs, Options: opts}
	var sink *trace.Collect
	var reg *metrics.Registry
	if *traceOut != "" || *metricsOut != "" || *pprofAddr != "" {
		sink = &trace.Collect{}
		reg = metrics.NewRegistry()
		bopts.Tracer = trace.New(sink, trace.WithRegistry(reg))
		// Live aggregates for /debug/vars while the batch runs.
		expvar.Publish("gator", expvar.Func(func() any { return reg.Snapshot() }))
	}

	batch := gator.AnalyzeBatch(inputs, bopts)
	if *stats {
		fmt.Fprint(os.Stderr, metrics.FormatBatch(batch.Stats))
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, sink.Events()); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *metricsOut != "" {
		data, err := reg.JSON()
		if err == nil {
			if *metricsOut == "-" {
				_, err = os.Stderr.Write(data)
			} else {
				err = os.WriteFile(*metricsOut, data, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}

	var rows1 []metrics.Table1Row
	var rows2 []metrics.Table2Row
	var rowsP []metrics.PrecisionRow
	violations := 0
	for _, rep := range batch.Apps {
		if rep.Err != nil {
			fmt.Fprintf(os.Stderr, "gatorbench: %s: %v\n", rep.Name, rep.Err)
			os.Exit(1)
		}
		res := rep.Result
		rows1 = append(rows1, res.Table1())
		rows2 = append(rows2, res.Table2())

		if *table == "precision" || *table == "all" {
			er := res.Explore(*seed)
			rowsP = append(rowsP, metrics.PrecisionRow{
				App:           rep.Name,
				ObservedSites: er.ObservedSites,
				PerfectSites:  er.PerfectSites,
				Violations:    len(er.Violations),
				Steps:         er.Steps,
				Ratio:         er.PrecisionRatio,
			})
			violations += len(er.Violations)
			for _, v := range er.Violations {
				fmt.Fprintf(os.Stderr, "gatorbench: %s: SOUNDNESS VIOLATION: %s\n", rep.Name, v)
			}
		}
	}

	switch *table {
	case "1":
		fmt.Println("Table 1: analyzed applications and relevant constraint graph nodes")
		fmt.Print(metrics.FormatTable1(rows1))
	case "2":
		fmt.Println("Table 2: analysis running time and average solution sizes")
		fmt.Print(metrics.FormatTable2(rows2))
		printReceiverComparison(rows2)
	case "precision":
		fmt.Println("Case study: static solution vs. interpreter oracle")
		fmt.Print(metrics.FormatPrecision(rowsP))
	case "all":
		fmt.Println("Table 1: analyzed applications and relevant constraint graph nodes")
		fmt.Print(metrics.FormatTable1(rows1))
		fmt.Println()
		fmt.Println("Table 2: analysis running time and average solution sizes")
		fmt.Print(metrics.FormatTable2(rows2))
		printReceiverComparison(rows2)
		fmt.Println()
		fmt.Println("Case study: static solution vs. interpreter oracle")
		fmt.Print(metrics.FormatPrecision(rowsP))
	default:
		fmt.Fprintf(os.Stderr, "gatorbench: unknown table %q\n", *table)
		os.Exit(2)
	}

	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, batch, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *incJSON != "" {
		if err := writeIncrementalJSON(*incJSON); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *solveJSON != "" {
		if err := writeSolveJSON(*solveJSON); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *serveJSON != "" {
		if err := writeServeJSON(*serveJSON, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *obsJSON != "" {
		if err := writeObsJSON(*obsJSON, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *clusterJSON != "" {
		if err := writeClusterJSON(*clusterJSON); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *precJSON != "" {
		if err := writePrecisionJSON(*precJSON, *seed, *jobs); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if *lifeJSON != "" {
		if err := writeLifecycleJSON(*lifeJSON, 24); err != nil {
			fmt.Fprintln(os.Stderr, "gatorbench:", err)
			os.Exit(1)
		}
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "gatorbench: %d soundness violation(s) against the oracle\n", violations)
		os.Exit(1)
	}
}

// benchApp is one application's record in the -benchjson output.
type benchApp struct {
	App        string  `json:"app"`
	AnalysisMs float64 `json:"analysisMs"`
	Iterations int     `json:"iterations"`
	ChecksMs   float64 `json:"checksMs"`
	Findings   int     `json:"findings"`
	Warnings   int     `json:"warnings"`
}

// benchOutput is the -benchjson file shape: corpus-wide per-app analysis
// and diagnostics cost, plus batch parallelism numbers — the repo's
// recorded performance trajectory across PRs.
type benchOutput struct {
	GeneratedAt string     `json:"generatedAt"`
	Workers     int        `json:"workers"`
	BatchWallMs float64    `json:"batchWallMs"`
	TotalWorkMs float64    `json:"totalWorkMs"`
	Speedup     float64    `json:"speedup"`
	Apps        []benchApp `json:"apps"`
}

func writeBenchJSON(path string, batch *gator.BatchResult, workers int) error {
	out := benchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Workers:     workers,
		BatchWallMs: ms(batch.Stats.Wall),
		TotalWorkMs: ms(batch.Stats.TotalWork()),
		Speedup:     batch.Stats.Speedup(),
	}
	for _, rep := range batch.Apps {
		if rep.Err != nil {
			continue
		}
		start := time.Now()
		cr, err := rep.Result.CheckReport()
		if err != nil {
			return err
		}
		out.Apps = append(out.Apps, benchApp{
			App:        rep.Name,
			AnalysisMs: ms(rep.Result.Elapsed()),
			Iterations: rep.Result.Iterations(),
			ChecksMs:   ms(time.Since(start)),
			Findings:   len(cr.Findings),
			Warnings:   cr.Warnings(),
		})
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// incBenchOutput is the -incjson file shape (BENCH_4.json): the cost of
// re-analyzing after a single-file body edit, warm (AnalyzeIncremental
// resuming the retained fact base) vs cold (Load + Analyze from scratch),
// on a mid-sized modular app. (The paged unit bitsets no longer cap how
// many units dependency tracking covers; the -solvejson benchmark records
// the same measurement on a 502-unit app.)
// Speedup is the recorded incremental-solving win; the nightly
// benchdiff gate fails when it regresses below 5x or by more than the
// threshold against the checked-in record.
type incBenchOutput struct {
	GeneratedAt string  `json:"generatedAt"`
	App         string  `json:"app"`
	Units       int     `json:"units"`
	Edits       int     `json:"edits"`
	ColdMs      float64 `json:"coldMs"`
	WarmMs      float64 `json:"warmMs"`
	Speedup     float64 `json:"speedup"`
	Retained    int     `json:"retained"`
	Retracted   int     `json:"retracted"`
}

// writeIncrementalJSON measures the incremental-edit benchmark: the same
// alternating body-only edit the BenchmarkIncrementalEdit/BenchmarkScratchEdit
// pair in incremental_bench_test.go runs, timed here over a fixed number of
// edits with the minimum per-edit time reported (minimum, not mean, to shed
// scheduler noise on shared CI runners).
func writeIncrementalJSON(path string) error {
	const nActs = 30 // keep in sync with benchEditSize (incremental_bench_test.go)
	const edits = 10
	sources, layouts := corpus.ModularApp(nActs)
	base := sources["act1.alite"]
	va := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	vb := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = p;\n", 1)
	if va == base || vb == base {
		return fmt.Errorf("incjson: edit variants did not apply to act1.alite")
	}
	edit := func(i int) {
		if i%2 == 0 {
			sources["act1.alite"] = va
		} else {
			sources["act1.alite"] = vb
		}
	}

	// Cold baseline: each edit handled the way a non-incremental pipeline
	// must — re-load everything and solve from scratch.
	cold := time.Duration(1<<63 - 1)
	for i := 0; i < edits; i++ {
		edit(i)
		start := time.Now()
		app, err := gator.Load(sources, layouts)
		if err != nil {
			return err
		}
		app.Analyze(gator.Options{})
		if d := time.Since(start); d < cold {
			cold = d
		}
	}

	// Warm path: chained AnalyzeIncremental with a shared parse cache.
	sources["act1.alite"] = base
	c := gator.NewCache()
	prev, err := gator.AnalyzeIncremental(nil, sources, layouts, gator.Options{}, c)
	if err != nil {
		return err
	}
	warm := time.Duration(1<<63 - 1)
	var last gator.IncrementalStats
	for i := 0; i < edits; i++ {
		edit(i)
		start := time.Now()
		res, err := gator.AnalyzeIncremental(prev, sources, layouts, gator.Options{}, c)
		if err != nil {
			return err
		}
		d := time.Since(start)
		last = res.Incremental()
		if last.Mode != "warm" {
			return fmt.Errorf("incjson: edit %d fell back to %q (%s)", i, last.Mode, last.Reason)
		}
		if d < warm {
			warm = d
		}
		prev = res
	}

	out := incBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		App:         fmt.Sprintf("modular-%d", nActs),
		Units:       len(sources) + len(layouts),
		Edits:       edits,
		ColdMs:      ms(cold),
		WarmMs:      ms(warm),
		Speedup:     float64(cold) / float64(warm),
		Retained:    last.Retained,
		Retracted:   last.Retracted,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeTrace writes the collected events in Chrome trace_event format.
func writeTrace(path string, events []trace.Event) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChrome(f, events); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printReceiverComparison puts the measured receivers average next to the
// paper's Table 2 value for the same application.
func printReceiverComparison(rows []metrics.Table2Row) {
	fmt.Println()
	fmt.Println("Receivers average: paper vs. this reproduction")
	fmt.Printf("%-16s %8s %9s\n", "App", "paper", "measured")
	for _, r := range rows {
		spec, ok := corpus.SpecByName(r.App)
		if !ok {
			continue
		}
		fmt.Printf("%-16s %8.2f %9.2f\n", r.App, spec.TargetReceivers, r.AvgReceivers)
	}
}

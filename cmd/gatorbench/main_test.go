package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestGatorbenchSingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "gatorbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-app", "ConnectBot", "-table", "all").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"Table 1", "Table 2", "Case study",
		"ConnectBot", "371", "2366", // classes, methods from the paper
		"violations",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	if strings.Contains(s, "SOUNDNESS VIOLATION") {
		t.Errorf("soundness violation reported:\n%s", s)
	}

	// The ablation flags parse and run.
	out, err = exec.Command(bin, "-app", "APV", "-table", "2", "-context1", "-filter-casts").CombinedOutput()
	if err != nil {
		t.Fatalf("ablation run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "APV") {
		t.Errorf("ablation output:\n%s", out)
	}

	// Unknown table exits nonzero.
	cmd := exec.Command(bin, "-table", "9")
	if err := cmd.Run(); err == nil {
		t.Error("unknown table did not fail")
	}
}

package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestGatorbenchSingleApp(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "gatorbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-app", "ConnectBot", "-table", "all").CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}
	s := string(out)
	for _, want := range []string{
		"Table 1", "Table 2", "Case study",
		"ConnectBot", "371", "2366", // classes, methods from the paper
		"violations",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q\n%s", want, s)
		}
	}
	if strings.Contains(s, "SOUNDNESS VIOLATION") {
		t.Errorf("soundness violation reported:\n%s", s)
	}

	// The ablation flags parse and run.
	out, err = exec.Command(bin, "-app", "APV", "-table", "2", "-context1", "-filter-casts").CombinedOutput()
	if err != nil {
		t.Fatalf("ablation run: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "APV") {
		t.Errorf("ablation output:\n%s", out)
	}

	// Unknown table exits nonzero.
	cmd := exec.Command(bin, "-table", "9")
	if err := cmd.Run(); err == nil {
		t.Error("unknown table did not fail")
	}
}

// TestGatorbenchParallelDeterminism: the rendered tables must be
// byte-identical at -j 1 and -j 8 (tables 1 and precision carry no
// wall-clock columns, so any difference is a real nondeterminism bug).
func TestGatorbenchParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "gatorbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	for _, table := range []string{"1", "precision"} {
		var outputs []string
		for _, j := range []string{"1", "8"} {
			out, err := exec.Command(bin, "-table", table, "-j", j).Output()
			if err != nil {
				t.Fatalf("-table %s -j %s: %v", table, j, err)
			}
			outputs = append(outputs, string(out))
		}
		if outputs[0] != outputs[1] {
			t.Errorf("-table %s differs between -j 1 and -j 8:\n-- j1 --\n%s\n-- j8 --\n%s",
				table, outputs[0], outputs[1])
		}
		if !strings.Contains(outputs[0], "XBMC") {
			t.Errorf("-table %s output missing the corpus:\n%s", table, outputs[0])
		}
	}

	// -stats reports the batch accounting on stderr.
	cmd := exec.Command(bin, "-table", "1", "-j", "4", "-stats")
	var stderr strings.Builder
	cmd.Stderr = &stderr
	if _, err := cmd.Output(); err != nil {
		t.Fatalf("-stats run: %v", err)
	}
	if !strings.Contains(stderr.String(), "4 workers") {
		t.Errorf("-stats stderr missing batch summary:\n%s", stderr.String())
	}
}

// TestGatorbenchTraceAndMetrics: -trace writes a Chrome trace of the corpus
// run and -metrics the aggregated rule/worklist registry.
func TestGatorbenchTraceAndMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI exec test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "gatorbench")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	traceFile := filepath.Join(t.TempDir(), "trace.json")
	metricsFile := filepath.Join(t.TempDir(), "metrics.json")
	out, err := exec.Command(bin, "-app", "ConnectBot", "-table", "1",
		"-trace", traceFile, "-metrics", metricsFile).CombinedOutput()
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out)
	}

	traceData, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"traceEvents"`, "ConnectBot:load", "ConnectBot:solve", `"ph": "C"`} {
		if !strings.Contains(string(traceData), want) {
			t.Errorf("trace missing %s", want)
		}
	}

	metricsData, err := os.ReadFile(metricsFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"counters"`, `"rule/FindView2"`, `"solver/iterations"`, `"histograms"`, `"solver/worklist"`} {
		if !strings.Contains(string(metricsData), want) {
			t.Errorf("metrics missing %s\n%s", want, metricsData)
		}
	}
}

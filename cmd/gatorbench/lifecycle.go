package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"gator/internal/analysis"
	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/ir"
)

// lifeScenario is one synthesized ordering scenario's outcome: whether the
// seeded bug's checker located it, and how many lifecycle findings its
// clean twin (same shape, legal ordering) produced.
type lifeScenario struct {
	Name          string `json:"name"`
	Bug           string `json:"bug"`
	Depth         int    `json:"depth"`
	Branch        bool   `json:"branch"`
	Detected      bool   `json:"detected"`
	CleanFindings int    `json:"cleanFindings"`
}

// lifeChecker aggregates one ordering checker over its scenarios.
type lifeChecker struct {
	Checker  string `json:"checker"`
	Seeded   int    `json:"seeded"`
	Detected int    `json:"detected"`
	// Recall is Detected/Seeded over synthesized bugs of this checker's kind.
	Recall float64 `json:"recall"`
	// CleanFindings counts lifecycle findings on the clean twins — any
	// nonzero value is a false positive by construction.
	CleanFindings int `json:"cleanFindings"`
}

// lifeOutput is the -lifejson file shape (BENCH_10.json): measured recall
// of the ordering checkers over the synthesized scenario pack. The nightly
// benchdiff gate fails when any checker's recall drops below 0.9 or any
// clean twin produces a finding.
type lifeOutput struct {
	GeneratedAt string         `json:"generatedAt"`
	Scenarios   int            `json:"scenarios"`
	Checkers    []lifeChecker  `json:"checkers"`
	Detail      []lifeScenario `json:"detail"`
}

// lifecycleFindings analyzes one scenario app and counts its lifecycle-*
// findings by checker ID.
func lifecycleFindings(app *corpus.App) (map[string]int, error) {
	p, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
	if err != nil {
		return nil, fmt.Errorf("%s: %v", app.Name, err)
	}
	res := core.Analyze(p, core.Options{})
	rep, err := analysis.Run(app.Name, res, analysis.Options{Checks: []string{"lifecycle-*"}})
	if err != nil {
		return nil, err
	}
	counts := map[string]int{}
	for _, f := range rep.Findings {
		counts[f.Check]++
	}
	return counts, nil
}

// writeLifecycleJSON runs the ordering-bug scenario pack — n seeded-bug
// apps plus their clean twins — through the lifecycle checkers and records
// per-checker recall and clean-twin false positives.
func writeLifecycleJSON(path string, n int) error {
	specs := corpus.ScenarioPack(n)
	byChecker := map[string]*lifeChecker{}
	out := lifeOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Scenarios:   len(specs),
	}
	for _, spec := range specs {
		id := spec.Bug.CheckerID()
		agg := byChecker[id]
		if agg == nil {
			agg = &lifeChecker{Checker: id}
			byChecker[id] = agg
		}
		buggy, err := lifecycleFindings(corpus.GenerateScenario(spec))
		if err != nil {
			return err
		}
		clean, err := lifecycleFindings(corpus.GenerateScenario(spec.CleanTwin()))
		if err != nil {
			return err
		}
		cleanTotal := 0
		for _, c := range clean {
			cleanTotal += c
		}
		agg.Seeded++
		detected := buggy[id] > 0
		if detected {
			agg.Detected++
		}
		agg.CleanFindings += cleanTotal
		out.Detail = append(out.Detail, lifeScenario{
			Name:          spec.Name(),
			Bug:           spec.Bug.String(),
			Depth:         spec.Depth,
			Branch:        spec.Branch,
			Detected:      detected,
			CleanFindings: cleanTotal,
		})
	}
	// Render checkers in first-seen (pack) order with recall computed.
	for _, spec := range specs {
		id := spec.Bug.CheckerID()
		agg, ok := byChecker[id]
		if !ok {
			continue
		}
		delete(byChecker, id)
		agg.Recall = float64(agg.Detected) / float64(agg.Seeded)
		out.Checkers = append(out.Checkers, *agg)
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

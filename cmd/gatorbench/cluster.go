package main

// The -clusterjson benchmark (BENCH_9.json): what the cluster tier buys
// and what a replica failure costs, measured end to end through
// cmd/gatorproxy's routing layer. Two experiments:
//
//   - throughput scaling: the same request load (distinct apps, NoCache,
//     16 concurrent clients) against 1, 2, and 4 replicas. Every replica
//     runs Workers=1 with a fixed ServiceDelay, modeling one
//     single-machine analysis unit with a known service time; because the
//     delay dominates and sleeping requests overlap across replicas on
//     any core count, the measured ratio is the ROUTER's scaling — how
//     well consistent hashing spreads independent apps — and is
//     reproducible on single-core CI runners, where a CPU-bound variant
//     of this benchmark would measure only the core count. The nightly
//     benchdiff gate fails when 4-replica scaling drops below 1.5x.
//
//   - failover: warm sessions patched through the proxy while one replica
//     is killed mid-run. Patches on dead sessions 404; the benchmark
//     recovers exactly as a real client does — re-create, re-patch — and
//     records the tail latency of the failover window next to the steady
//     state. The gate requires zero unrecovered requests and at least one
//     re-create (otherwise the kill missed every session and the run
//     proved nothing).

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"gator/internal/cluster"
	"gator/internal/corpus"
	"gator/internal/server"
)

// clusterBenchOutput is the -clusterjson file shape. Scaling4x > 0 is what
// cmd/benchdiff uses to detect this record shape.
type clusterBenchOutput struct {
	GeneratedAt    string  `json:"generatedAt"`
	Cores          int     `json:"cores"`
	ServiceDelayMs float64 `json:"serviceDelayMs"`
	Requests       int     `json:"requests"`
	Concurrency    int     `json:"concurrency"`
	Throughput1    float64 `json:"throughput1"` // req/s, 1 replica
	Throughput2    float64 `json:"throughput2"`
	Throughput4    float64 `json:"throughput4"`
	Scaling2x      float64 `json:"scaling2x"`
	Scaling4x      float64 `json:"scaling4x"`

	FailoverSessions int     `json:"failoverSessions"`
	FailoverPatches  int     `json:"failoverPatches"`
	SteadyP99Ms      float64 `json:"steadyP99Ms"`
	FailoverP99Ms    float64 `json:"failoverP99Ms"`
	Recreates        int     `json:"recreates"`
	FailedRequests   int     `json:"failedRequests"`
}

// benchCluster is a proxy over n in-process replicas, ready for load.
type benchCluster struct {
	proxy  *cluster.Proxy
	ln     net.Listener
	hs     *http.Server
	reps   []*cluster.LocalReplica
	client *server.Client
}

func startBenchCluster(n int, delay time.Duration) (*benchCluster, error) {
	p := cluster.New(cluster.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: p.Handler()}
	go hs.Serve(ln)
	bc := &benchCluster{proxy: p, ln: ln, hs: hs,
		client: server.NewClient("http://" + ln.Addr().String())}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		// Workers=1 + a fixed ServiceDelay: each replica is one serial
		// analysis unit with a known service time (see the file comment).
		lr, err := cluster.StartLocalReplica(name, server.Config{
			Workers:      1,
			QueueDepth:   256,
			ServiceDelay: delay,
			NoTelemetry:  true,
		})
		if err != nil {
			bc.close()
			return nil, err
		}
		bc.reps = append(bc.reps, lr)
		p.AddReplica(name, lr.URL())
	}
	return bc, nil
}

func (bc *benchCluster) close() {
	for _, lr := range bc.reps {
		lr.Kill()
	}
	bc.hs.Close()
}

// measureThroughput drives reqs distinct-app requests through conc
// concurrent clients and returns requests per second.
func measureThroughput(bc *benchCluster, apps []server.AnalyzeRequest, conc int) (float64, error) {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	next := make(chan server.AnalyzeRequest)
	start := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for req := range next {
				if _, err := bc.client.Analyze(req); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, req := range apps {
		next <- req
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return 0, firstErr
	}
	return float64(len(apps)) / time.Since(start).Seconds(), nil
}

func writeClusterJSON(path string) error {
	const (
		delay    = 20 * time.Millisecond
		reqs     = 96
		conc     = 16
		distinct = 8 // distinct generated apps, cycled across request names
	)

	// Pre-generate the request bodies once; every request carries a
	// distinct name (the routing key) and NoCache so each one is a real
	// job — no tier anywhere may short-circuit the service time.
	var seeds []server.AnalyzeRequest
	for i := 0; i < distinct; i++ {
		sources, layouts := corpus.RandomApp(int64(2000 + i))
		seeds = append(seeds, server.AnalyzeRequest{
			Sources: sources, Layouts: layouts,
			ReportSpec: server.ReportSpec{Report: "summary"},
			NoCache:    true,
		})
	}
	apps := make([]server.AnalyzeRequest, reqs)
	for i := range apps {
		apps[i] = seeds[i%distinct]
		apps[i].Name = fmt.Sprintf("load-%d", i)
	}

	out := clusterBenchOutput{
		GeneratedAt:    time.Now().UTC().Format(time.RFC3339),
		Cores:          runtime.NumCPU(),
		ServiceDelayMs: ms(delay),
		Requests:       reqs,
		Concurrency:    conc,
	}

	throughputs := map[int]float64{}
	for _, n := range []int{1, 2, 4} {
		bc, err := startBenchCluster(n, delay)
		if err != nil {
			return fmt.Errorf("clusterjson: boot %d replicas: %w", n, err)
		}
		thr, err := measureThroughput(bc, apps, conc)
		bc.close()
		if err != nil {
			return fmt.Errorf("clusterjson: %d-replica load: %w", n, err)
		}
		throughputs[n] = thr
	}
	out.Throughput1 = throughputs[1]
	out.Throughput2 = throughputs[2]
	out.Throughput4 = throughputs[4]
	out.Scaling2x = throughputs[2] / throughputs[1]
	out.Scaling4x = throughputs[4] / throughputs[1]

	if err := runFailover(&out, delay); err != nil {
		return fmt.Errorf("clusterjson: failover: %w", err)
	}

	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// runFailover patches warm sessions through a 2-replica cluster, kills
// one replica mid-run, and recovers via the client's 404 → re-create
// path, recording tail latencies and the recovery counts.
func runFailover(out *clusterBenchOutput, delay time.Duration) error {
	const (
		sessions    = 8
		steadyRound = 3 // patch rounds before the kill
		failRounds  = 3 // patch rounds after the kill
	)
	bc, err := startBenchCluster(2, delay)
	if err != nil {
		return err
	}
	defer bc.close()

	sources, layouts := corpus.ModularApp(6)
	openReq := func(i int) server.AnalyzeRequest {
		return server.AnalyzeRequest{
			Name: fmt.Sprintf("sess-%d", i), Sources: sources, Layouts: layouts,
			ReportSpec: server.ReportSpec{Report: "summary"},
		}
	}
	ids := make([]string, sessions)
	for i := range ids {
		open, err := bc.client.OpenSession(openReq(i))
		if err != nil {
			return err
		}
		ids[i] = open.SessionID
	}

	patch := func(i, round int) server.PatchRequest {
		return server.PatchRequest{
			Sources:    map[string]string{"extra.alite": fmt.Sprintf("class Extra%d_%d {}", i, round)},
			ReportSpec: server.ReportSpec{Report: "summary"},
		}
	}

	// patchAll runs one concurrent patch round over every session,
	// recovering 404s by re-creating (recover=true). Returns latencies.
	var recreates, failed int
	var mu sync.Mutex
	patchAll := func(round int, recover bool) []time.Duration {
		lats := make([]time.Duration, sessions)
		var wg sync.WaitGroup
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				start := time.Now()
				_, err := bc.client.PatchSession(ids[i], patch(i, round))
				var se *server.StatusError
				if err != nil && recover && errors.As(err, &se) && se.Code == http.StatusNotFound {
					// The replica owning this session died: the client
					// contract is re-create, then continue patching.
					reopened, rerr := bc.client.OpenSession(openReq(i))
					if rerr == nil {
						mu.Lock()
						recreates++
						ids[i] = reopened.SessionID
						mu.Unlock()
						_, err = bc.client.PatchSession(reopened.SessionID, patch(i, round))
					} else {
						err = rerr
					}
				}
				if err != nil {
					mu.Lock()
					failed++
					mu.Unlock()
				}
				lats[i] = time.Since(start)
			}(i)
		}
		wg.Wait()
		return lats
	}

	var steady, failover []time.Duration
	for round := 0; round < steadyRound; round++ {
		steady = append(steady, patchAll(round, false)...)
	}
	bc.reps[0].Kill() // mid-run: half the ring (and its sessions) vanish
	for round := 0; round < failRounds; round++ {
		failover = append(failover, patchAll(steadyRound+round, true)...)
	}

	p99 := func(lats []time.Duration) float64 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return ms(lats[(len(lats)*99)/100])
	}
	out.FailoverSessions = sessions
	out.FailoverPatches = len(steady) + len(failover)
	out.SteadyP99Ms = p99(steady)
	out.FailoverP99Ms = p99(failover)
	out.Recreates = recreates
	out.FailedRequests = failed
	if recreates == 0 {
		return errors.New("the kill missed every session; the failover measurement proved nothing")
	}
	return nil
}

package main

// The -servejson benchmark (BENCH_5.json): the serving layer's cost, as a
// client sees it over real loopback HTTP. Two quantities are recorded:
//
//   - cold request latency percentiles: every request carries a distinct
//     application, so each one pays upload + parse + solve + render;
//   - the session speedup: the same alternating single-file edit sequence
//     the incremental benchmark (-incjson) uses, once as stateless
//     /v1/analyze submissions (re-upload + scratch solve per edit) and once
//     as PATCHes to a warm session. The ratio is what sessions exist to
//     buy; the nightly benchdiff gate fails when it drops below 3x (lower
//     than the library-level 5x floor because both sides carry HTTP and
//     JSON overhead, which the warm path cannot amortize away).
//
// Ratios are same-process, same-machine, so they are stable across runner
// hardware in a way absolute milliseconds are not; the percentiles are
// recorded for trend reading, not gating.

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"gator/internal/corpus"
	"gator/internal/server"
)

// serveBenchOutput is the -servejson file shape. ColdP50Ms > 0 is what
// cmd/benchdiff uses to detect this record shape.
type serveBenchOutput struct {
	GeneratedAt string  `json:"generatedAt"`
	Workers     int     `json:"workers"`
	Requests    int     `json:"requests"`
	ColdP50Ms   float64 `json:"coldP50Ms"`
	ColdP99Ms   float64 `json:"coldP99Ms"`
	App         string  `json:"app"`
	Edits       int     `json:"edits"`
	StatelessMs float64 `json:"statelessMs"`
	SessionMs   float64 `json:"sessionMs"`
	Speedup     float64 `json:"speedup"`
}

func writeServeJSON(path string, workers int) error {
	srv, err := server.New(server.Config{Workers: workers})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	serveDone := make(chan struct{})
	go func() { httpSrv.Serve(ln); close(serveDone) }()
	defer func() {
		srv.Drain()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		<-serveDone
	}()
	c := server.NewClient(ln.Addr().String())

	// Cold latency percentiles: distinct random apps so the content-
	// addressed caches never short-circuit the measurement.
	const coldReqs = 50
	lats := make([]time.Duration, 0, coldReqs)
	for i := 0; i < coldReqs; i++ {
		sources, layouts := corpus.RandomApp(int64(1000 + i))
		start := time.Now()
		if _, err := c.Analyze(server.AnalyzeRequest{
			Name:       fmt.Sprintf("cold%d", i),
			Sources:    sources,
			Layouts:    layouts,
			ReportSpec: server.ReportSpec{Report: "views"},
		}); err != nil {
			return fmt.Errorf("servejson: cold request %d: %w", i, err)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	p50 := lats[len(lats)/2]
	p99 := lats[(len(lats)*99)/100]

	// Warm-session speedup over the incremental benchmark's edit sequence.
	// Both sides render the cheap "summary" report so the comparison
	// isolates what sessions change — upload + solve — rather than report
	// rendering, which is identical work on either path.
	const nActs = 30 // keep in sync with writeIncrementalJSON
	const edits = 20
	sources, layouts := corpus.ModularApp(nActs)
	base := sources["act1.alite"]
	va := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = btn;\n", 1)
	vb := strings.Replace(base, "\t\tthis.stash = back;\n", "\t\tthis.stash = p;\n", 1)
	if va == base || vb == base {
		return fmt.Errorf("servejson: edit variants did not apply to act1.alite")
	}
	variant := func(i int) string {
		if i%2 == 0 {
			return va
		}
		return vb
	}

	// Stateless baseline: each edit as a full /v1/analyze submission.
	// NoCache keeps the result caches out of it — the point of comparison
	// is "no session state on the server", not "no caching anywhere".
	stateless := time.Duration(1<<63 - 1)
	for i := 0; i < edits; i++ {
		sources["act1.alite"] = variant(i)
		start := time.Now()
		if _, err := c.Analyze(server.AnalyzeRequest{
			Name: "edited", Sources: sources, Layouts: layouts,
			ReportSpec: server.ReportSpec{Report: "summary"},
			NoCache:    true,
		}); err != nil {
			return fmt.Errorf("servejson: stateless edit %d: %w", i, err)
		}
		if d := time.Since(start); d < stateless {
			stateless = d
		}
	}

	// Warm path: one upload, then per-edit PATCHes against the session.
	sources["act1.alite"] = base
	open, err := c.OpenSession(server.AnalyzeRequest{
		Name: "edited", Sources: sources, Layouts: layouts,
		ReportSpec: server.ReportSpec{Report: "summary"},
	})
	if err != nil {
		return fmt.Errorf("servejson: open session: %w", err)
	}
	warm := time.Duration(1<<63 - 1)
	for i := 0; i < edits; i++ {
		start := time.Now()
		resp, err := c.PatchSession(open.SessionID, server.PatchRequest{
			Sources:    map[string]string{"act1.alite": variant(i)},
			ReportSpec: server.ReportSpec{Report: "summary"},
		})
		if err != nil {
			return fmt.Errorf("servejson: session edit %d: %w", i, err)
		}
		if resp.Incremental == nil || resp.Incremental.Mode != "warm" {
			return fmt.Errorf("servejson: edit %d fell off the warm path: %+v", i, resp.Incremental)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
	}

	out := serveBenchOutput{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Workers:     workers,
		Requests:    coldReqs,
		ColdP50Ms:   ms(p50),
		ColdP99Ms:   ms(p99),
		App:         fmt.Sprintf("modular-%d", nActs),
		Edits:       edits,
		StatelessMs: ms(stateless),
		SessionMs:   ms(warm),
		Speedup:     float64(stateless) / float64(warm),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

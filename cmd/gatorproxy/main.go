// Command gatorproxy is the cluster coordinator for gatord: it routes
// analysis requests across N replicas by consistent hashing on the app id
// (so warm incremental sessions stay sticky to the replica that owns
// them), serves a shared content-addressed result store every replica
// consults behind its own caches, health-probes the replicas — evicting
// dead ones from the ring and re-adding recovered ones — and serves a
// cluster-wide /metrics rollup with a `replica` label on every series.
//
// Usage:
//
//	gatorproxy -replicas host:port,host:port[,name=host:port...]
//	           [-addr :7460] [-vnodes 128] [-probe-interval 2s]
//	           [-probe-timeout 1s] [-cache-bytes N]
//
// Replicas are plain gatord processes started with -replica NAME and
// -shared-cache pointing back at this proxy:
//
//	gatord -addr :7465 -replica r0 -shared-cache 127.0.0.1:7460
//	gatord -addr :7466 -replica r1 -shared-cache 127.0.0.1:7460
//	gatorproxy -addr :7460 -replicas r0=127.0.0.1:7465,r1=127.0.0.1:7466
//
// Clients need no changes: the proxy speaks the daemon's exact wire
// protocol, and a dead replica's sessions answer 404 — the signal the
// client's existing re-create path already handles.
//
// With -smoke the proxy boots two in-process replicas, drives cold,
// cached, warm-session, failover, and rollup checks against the app
// directory argument, and exits — the CI gate's cluster smoke test.
// -smoke-logs DIR writes each replica's request log to DIR/NAME.log so a
// CI failure leaves evidence behind.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gator/internal/cluster"
	"gator/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":7460", "listen address (host:port; port 0 picks a free port)")
	replicas := flag.String("replicas", "", "comma-separated replica list: host:port or name=host:port (names default to the address)")
	vnodes := flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per replica on the hash ring")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "health-probe period")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "shared result store size bound (bytes, LRU eviction)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "json", "log format: json or text")
	smoke := flag.Bool("smoke", false, "self-test: boot 2 in-process replicas, run the cluster smoke against the app directory argument, exit")
	smokeLogs := flag.String("smoke-logs", "", "with -smoke: write per-replica request logs into this `directory`")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatorproxy:", err)
		os.Exit(2)
	}

	cfg := cluster.Config{
		Vnodes:           *vnodes,
		ProbeInterval:    *probeInterval,
		ProbeTimeout:     *probeTimeout,
		SharedCacheBytes: *cacheBytes,
		Logger:           logger,
	}

	if *smoke {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "gatorproxy: -smoke wants exactly one app directory")
			os.Exit(2)
		}
		if err := runSmoke(cfg, flag.Arg(0), *smokeLogs); err != nil {
			fmt.Fprintln(os.Stderr, "gatorproxy: smoke:", err)
			os.Exit(1)
		}
		fmt.Println("gatorproxy: smoke ok")
		return
	}

	members, err := parseReplicas(*replicas)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatorproxy:", err)
		os.Exit(2)
	}
	if len(members) == 0 {
		fmt.Fprintln(os.Stderr, "gatorproxy: -replicas is required (see -h)")
		os.Exit(2)
	}

	p := cluster.New(cfg)
	for _, m := range members {
		p.AddReplica(m.name, m.base)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gatorproxy:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "gatorproxy: listening on %s, %d replicas\n", ln.Addr(), len(members))

	stop := make(chan struct{})
	go p.RunProber(stop)

	httpSrv := &http.Server{Handler: p.Handler()}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		fmt.Fprintf(os.Stderr, "gatorproxy: %v: shutting down\n", s)
		close(stop)
		httpSrv.Close()
	}()

	if err := httpSrv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "gatorproxy:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "gatorproxy: bye")
}

type member struct{ name, base string }

// parseReplicas parses "-replicas r0=host:port,host:port" — a bare
// address is its own name.
func parseReplicas(s string) ([]member, error) {
	var out []member
	seen := map[string]bool{}
	for _, item := range strings.Split(s, ",") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		m := member{name: item, base: item}
		if eq := strings.IndexByte(item, '='); eq >= 0 {
			m.name, m.base = item[:eq], item[eq+1:]
		}
		if m.name == "" || m.base == "" {
			return nil, fmt.Errorf("bad replica entry %q (want host:port or name=host:port)", item)
		}
		if seen[m.name] {
			return nil, fmt.Errorf("duplicate replica name %q", m.name)
		}
		seen[m.name] = true
		out = append(out, m)
	}
	return out, nil
}

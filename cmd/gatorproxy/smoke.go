package main

// The -smoke self-test: a real 2-replica cluster on loopback — two
// in-process gatord replicas, the routing proxy in front — driven through
// the properties the cluster exists to provide:
//
//  1. cold and warm-session reports through the proxy are byte-identical
//     to the local library pipeline (the single-node contract, preserved);
//  2. a second replica's cold analyze replays the first's solve through
//     the shared content-addressed tier (Cached, same bytes);
//  3. killing a session's replica turns the session into a 404 and a
//     re-created session on the survivor renders the same bytes — the
//     client's existing recovery path, exercised end to end;
//  4. the rolled-up /metrics parses with the repo's validating parser and
//     carries a replica label on every replica series.
//
// scripts/ci.sh runs this as the cluster smoke gate; -smoke-logs leaves
// each replica's request log behind as a CI failure artifact.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"gator"
	"gator/internal/cluster"
	"gator/internal/metrics"
	"gator/internal/report"
	"gator/internal/server"
	"gator/internal/telemetry"
)

func runSmoke(cfg cluster.Config, dir, logDir string) error {
	sources, layouts, err := gator.ReadAppDir(dir)
	if err != nil {
		return err
	}

	// Proxy first: replicas need its address for the shared tier.
	p := cluster.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: p.Handler()}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	proxyURL := "http://" + ln.Addr().String()

	replicaCfg := func(name string) (server.Config, error) {
		rc := server.Config{Shared: cluster.NewStoreClient(proxyURL)}
		if logDir == "" {
			return rc, nil
		}
		if err := os.MkdirAll(logDir, 0o755); err != nil {
			return rc, err
		}
		f, err := os.Create(filepath.Join(logDir, name+".log"))
		if err != nil {
			return rc, err
		}
		// Leaked deliberately: the log must capture the replica's whole
		// life, and the process exits right after the smoke.
		rc.Logger, err = telemetry.NewLogger(f, "info", "json")
		return rc, err
	}

	var reps []*cluster.LocalReplica
	for _, name := range []string{"r0", "r1"} {
		rc, err := replicaCfg(name)
		if err != nil {
			return err
		}
		lr, err := cluster.StartLocalReplica(name, rc)
		if err != nil {
			return fmt.Errorf("boot replica %s: %w", name, err)
		}
		defer lr.Kill()
		reps = append(reps, lr)
		p.AddReplica(name, lr.URL())
	}

	c := server.NewClient(proxyURL)
	if err := c.Readyz(); err != nil {
		return fmt.Errorf("proxy readyz: %w", err)
	}

	const kind = "views"
	want, err := localReport("smoke", sources, layouts, kind)
	if err != nil {
		return err
	}

	// 1. Cold through the proxy ≡ local.
	cold, err := c.Analyze(server.AnalyzeRequest{
		Name: "smoke", Sources: sources, Layouts: layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("cold analyze via proxy: %w", err)
	}
	if cold.Output != want {
		return fmt.Errorf("proxied cold report differs from local output\nremote:\n%s\nlocal:\n%s", cold.Output, want)
	}
	owner, ok := p.OwnerOf("smoke")
	if !ok {
		return errors.New("ring has no owner for the smoke app")
	}
	fmt.Printf("gatorproxy: smoke: cold request ok (%d bytes via replica %s)\n", len(cold.Output), owner)

	// 2. Shared tier: ask the NON-owning replica directly — its local
	// caches are cold, so a Cached reply proves the cluster tier works.
	var other *cluster.LocalReplica
	for _, lr := range reps {
		if lr.Name != owner {
			other = lr
		}
	}
	direct := server.NewClient(other.URL())
	replay, err := direct.Analyze(server.AnalyzeRequest{
		Name: "smoke", Sources: sources, Layouts: layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("cross-replica analyze: %w", err)
	}
	if !replay.Cached {
		return errors.New("cross-replica analyze missed the shared result tier")
	}
	if replay.Output != want {
		return errors.New("shared-tier replay differs from the original bytes")
	}
	fmt.Printf("gatorproxy: smoke: shared-tier replay ok (replica %s, cached)\n", other.Name)

	// 3. Warm session ≡ local, then failover: kill the owner, expect 404,
	// re-create on the survivor, byte-compare again.
	open, err := c.OpenSession(server.AnalyzeRequest{
		Name: "smoke", Sources: sources, Layouts: layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("open session via proxy: %w", err)
	}
	var names []string
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	edited := names[0]
	editedSources := map[string]string{}
	for n, s := range sources {
		editedSources[n] = s
	}
	editedSources[edited] = sources[edited] + "\n// gatorproxy smoke edit\n"
	patch, err := c.PatchSession(open.SessionID, server.PatchRequest{
		Sources:    map[string]string{edited: editedSources[edited]},
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("patch session via proxy: %w", err)
	}
	wantEdited, err := localReport("smoke", editedSources, layouts, kind)
	if err != nil {
		return err
	}
	if patch.Output != wantEdited {
		return fmt.Errorf("proxied warm report differs from local output\nremote:\n%s\nlocal:\n%s", patch.Output, wantEdited)
	}
	fmt.Printf("gatorproxy: smoke: warm session ok (%d bytes)\n", len(patch.Output))

	sessOwner, ok := sessionOwner(reps, owner)
	if !ok {
		return errors.New("no replica matches the session owner")
	}
	sessOwner.Kill()
	_, err = c.PatchSession(open.SessionID, server.PatchRequest{
		Sources:    map[string]string{edited: editedSources[edited]},
		ReportSpec: server.ReportSpec{Report: kind},
	})
	var se *server.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		return fmt.Errorf("patch after replica kill: got %v, want 404", err)
	}
	reopened, err := c.OpenSession(server.AnalyzeRequest{
		Name: "smoke", Sources: sources, Layouts: layouts,
		ReportSpec: server.ReportSpec{Report: kind},
	})
	if err != nil {
		return fmt.Errorf("re-create session after replica kill: %w", err)
	}
	if reopened.Output != want {
		return errors.New("re-created session rendered different bytes")
	}
	if _, err := c.PatchSession(reopened.SessionID, server.PatchRequest{
		Sources:    map[string]string{edited: editedSources[edited]},
		ReportSpec: server.ReportSpec{Report: kind},
	}); err != nil {
		return fmt.Errorf("patch re-created session: %w", err)
	}
	live := p.LiveReplicas()
	if len(live) != 1 {
		return fmt.Errorf("ring still lists %v after the kill", live)
	}
	fmt.Printf("gatorproxy: smoke: failover ok (killed %s, session re-created on %s)\n", sessOwner.Name, live[0])

	// 4. Rollup: must parse, and every replica series must carry the label.
	prom, err := c.MetricsProm()
	if err != nil {
		return fmt.Errorf("scrape rolled-up /metrics: %w", err)
	}
	fams, err := metrics.ParsePrometheus(prom)
	if err != nil {
		return fmt.Errorf("rolled-up /metrics is not valid Prometheus text: %w", err)
	}
	reqFam, ok := fams["gatord_http_requests_total"]
	if !ok {
		return errors.New("rollup lacks gatord_http_requests_total")
	}
	for _, s := range reqFam.Samples {
		if s.Labels["replica"] == "" {
			return fmt.Errorf("rollup sample without replica label: %v", s.Labels)
		}
	}
	proxyFams := 0
	for name := range fams {
		if strings.HasPrefix(name, "gatorproxy_") {
			proxyFams++
		}
	}
	if proxyFams == 0 {
		return errors.New("rollup lacks the proxy's own gatorproxy_ families")
	}
	fmt.Printf("gatorproxy: smoke: metrics rollup ok (%d families, %d proxy-own)\n", len(fams), proxyFams)
	return nil
}

// sessionOwner resolves the replica that owns the smoke session (the ring
// owner of the app id, since the session was created through the ring).
func sessionOwner(reps []*cluster.LocalReplica, owner string) (*cluster.LocalReplica, bool) {
	for _, lr := range reps {
		if lr.Name == owner {
			return lr, true
		}
	}
	return nil, false
}

// localReport renders the reference report through the local library
// path, exactly as cmd/gatord's smoke does.
func localReport(name string, sources, layouts map[string]string, kind string) (string, error) {
	app, err := gator.Load(sources, layouts)
	if err != nil {
		return "", err
	}
	app.Name = name
	res := app.Analyze(gator.Options{})
	var out, errBuf bytes.Buffer
	if code := report.Render(&out, &errBuf, name, res, report.Request{Report: kind, Seed: 1}); code != 0 {
		return "", fmt.Errorf("local render exited %d: %s", code, errBuf.String())
	}
	return out.String(), nil
}

// Command benchdiff compares a freshly regenerated benchmark record against
// the checked-in baseline and exits non-zero on regression. It understands
// both record shapes the repo tracks:
//
//   - corpus records (BENCH_2.json, gatorbench -benchjson): per-app findings
//     and warnings must match the baseline exactly (a drift there is a
//     behavior change, not noise), and total analysis work may not grow by
//     more than the threshold;
//   - incremental records (BENCH_4.json, gatorbench -incjson): the warm/cold
//     speedup may not drop by more than the threshold, and never below the
//     5x floor the incremental re-solver is built to clear. The speedup is a
//     same-machine ratio, so it is stable across runner hardware in a way
//     absolute milliseconds are not;
//   - server records (BENCH_5.json, gatorbench -servejson): the warm-session
//     vs stateless-resubmission speedup over HTTP, guarded the same way with
//     a 3x floor (lower than the library floor: both sides carry transport
//     overhead). The latency percentiles in the record are informational;
//   - solver records (BENCH_6.json, gatorbench -solvejson): the optimized
//     engine (CSR + delta worklist) must beat the reference schedule by the
//     2x floor on the deep-fixpoint chain app, the sharded engine must never
//     fall below the reference schedule, and the >64-unit incremental
//     speedup carries the same 5x floor as BENCH_4. All three are
//     same-machine ratios, so they hold on single-core runners too (the
//     sharded engine's win there comes from the shared CSR hot path, not
//     parallelism; the record's "cores" field says what produced it).
//     Solver ratios are floor-gated only — each divides two independently
//     measured solve times, so the relative threshold would trip on runner
//     noise alone; the baseline is printed for trend reading.
//   - precision records (BENCH_7.json, gatorbench -precjson): per
//     context-sensitivity mode, the solution/oracle ratio may not grow by
//     more than 5% over the baseline (a deterministic count-of-facts ratio,
//     so the tight bound holds on any runner), any soundness violation is a
//     hard failure, and the polymorphic-helper stressor must stay strict
//     (context-sensitive solutions strictly smaller than the insensitive
//     one);
//   - observability records (BENCH_8.json, gatorbench -obsjson): the
//     telemetry layer's request-latency overhead may not exceed the 5%
//     ceiling. The overhead is a same-machine on/off ratio of min-of-N
//     latencies, so like the solver ratios it gates on the absolute
//     ceiling only; the baseline is printed for trend reading.
//   - lifecycle-recall records (BENCH_10.json, gatorbench -lifejson): each
//     ordering checker's recall over the synthesized ordering-bug scenario
//     pack must stay at or above the 0.9 floor, and the clean twins (same
//     helper/branch shape, legal callback placement) must produce zero
//     findings. Both gates are deterministic counts over generated apps, so
//     they are absolute, not baseline-relative; the baseline recall is
//     printed for trend reading.
//   - cluster records (BENCH_9.json, gatorbench -clusterjson): aggregate
//     throughput at 4 replicas must beat 1 replica by the 1.5x floor
//     (the benchmark models a fixed per-replica service time, so the
//     ratio measures the router's spread and holds on any core count),
//     a mid-run replica kill must end with zero unrecovered requests and
//     at least one session re-create, and the failover-window p99 must
//     stay under an absolute ceiling. All gates are floors/ceilings, not
//     baseline-relative: the scaling ratio divides two independently
//     measured walls, so a relative threshold would trip on noise.
//
// Usage:
//
//	benchdiff [-threshold 0.15] BASELINE REGENERATED
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// speedupFloor is the minimum acceptable warm/cold speedup for incremental
// records, independent of the baseline (see DESIGN.md, "Incremental
// solving").
const speedupFloor = 5.0

// serveSpeedupFloor is the floor for server records: a warm session must
// beat stateless resubmission by at least this much end to end (see
// DESIGN.md, "Serving").
const serveSpeedupFloor = 3.0

// optSpeedupFloor is the floor for solver records: the CSR + delta-worklist
// engine must beat the reference schedule by at least this much on the
// chain-shaped deep-fixpoint app (see DESIGN.md, "Solver internals").
const optSpeedupFloor = 2.0

// shardSpeedupFloor: the sharded engine may never be slower than the
// reference schedule, whatever the core count.
const shardSpeedupFloor = 1.0

// obsOverheadCeiling is the maximum acceptable telemetry overhead, in
// percent, for observability records — the cost of the full request
// telemetry layer (trace propagation, per-request metrics and logs,
// head-sampled trace capture) relative to a telemetry-off daemon (see
// DESIGN.md, "Observability").
const obsOverheadCeiling = 5.0

// clusterScalingFloor is the minimum acceptable 4-replica/1-replica
// throughput ratio for cluster records: consistent hashing must spread
// independent apps well enough that four service units beat one by at
// least this much (see DESIGN.md, "Cluster").
const clusterScalingFloor = 1.5

// failoverP99CeilingMs bounds the failover-window patch p99 for cluster
// records: a replica kill may cost the affected sessions a re-create (one
// cold solve), never a stall. The ceiling is absolute wall-clock, sized
// for a loopback cluster with the benchmark's fixed service delay.
const failoverP99CeilingMs = 2000.0

// ratioSlack is the maximum tolerated growth of a precision record's
// solution/oracle ratio over the baseline. The ratio counts canonical facts,
// not time, so it is exactly reproducible and gets a bound far tighter than
// the timing threshold.
const ratioSlack = 0.05

// recallFloor is the minimum acceptable per-checker recall for
// lifecycle-recall records: the ordering checkers must locate at least 90%
// of the seeded scenario-pack bugs (see DESIGN.md, "Lifecycle & callback
// ordering").
const recallFloor = 0.9

type appRec struct {
	App      string `json:"app"`
	Findings int    `json:"findings"`
	Warnings int    `json:"warnings"`
}

type modeRec struct {
	Mode       string  `json:"mode"`
	Ratio      float64 `json:"ratio"`
	Violations int     `json:"violations"`
}

type stressorRec struct {
	App              string `json:"app"`
	InsensitiveFacts int    `json:"insensitiveFacts"`
	CfaFacts         int    `json:"cfaFacts"`
	ObjFacts         int    `json:"objFacts"`
	Strict           bool   `json:"strict"`
}

type checkerRec struct {
	Checker       string  `json:"checker"`
	Seeded        int     `json:"seeded"`
	Detected      int     `json:"detected"`
	Recall        float64 `json:"recall"`
	CleanFindings int     `json:"cleanFindings"`
}

// record is the superset of the benchmark file shapes; shape is detected
// by which fields are populated (precision records carry modes, corpus
// records carry apps, incremental records carry warmMs, server records
// carry coldP50Ms, observability records carry telemetryOnMs, and
// lifecycle-recall records carry checkers).
type record struct {
	TotalWorkMs    float64      `json:"totalWorkMs"`
	Speedup        float64      `json:"speedup"`
	WarmMs         float64      `json:"warmMs"`
	ColdMs         float64      `json:"coldMs"`
	ColdP50Ms      float64      `json:"coldP50Ms"`
	ColdP99Ms      float64      `json:"coldP99Ms"`
	OptSpeedup     float64      `json:"optSpeedup"`
	ShardSpeedup   float64      `json:"shardSpeedup"`
	IncSpeedup     float64      `json:"incSpeedup"`
	TelemetryOffMs float64      `json:"telemetryOffMs"`
	TelemetryOnMs  float64      `json:"telemetryOnMs"`
	OverheadPct    float64      `json:"overheadPct"`
	Scaling2x      float64      `json:"scaling2x"`
	Scaling4x      float64      `json:"scaling4x"`
	SteadyP99Ms    float64      `json:"steadyP99Ms"`
	FailoverP99Ms  float64      `json:"failoverP99Ms"`
	Recreates      int          `json:"recreates"`
	FailedRequests int          `json:"failedRequests"`
	Apps           []appRec     `json:"apps"`
	Modes          []modeRec    `json:"modes"`
	Checkers       []checkerRec `json:"checkers"`
	Stressor       stressorRec  `json:"stressor"`
}

func load(path string) (record, error) {
	var r record
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

func main() {
	threshold := flag.Float64("threshold", 0.15, "maximum tolerated fractional regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold F] BASELINE REGENERATED")
		os.Exit(2)
	}
	old, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	cur, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var failures []string
	fail := func(format string, args ...any) {
		failures = append(failures, fmt.Sprintf(format, args...))
	}

	switch {
	case len(old.Checkers) > 0:
		// Lifecycle-recall record: per-checker recall floor plus the
		// zero-findings contract on clean twins. Both are deterministic
		// counts over generated scenarios — absolute gates, no threshold.
		byChecker := map[string]checkerRec{}
		for _, c := range cur.Checkers {
			byChecker[c.Checker] = c
		}
		for _, want := range old.Checkers {
			got, ok := byChecker[want.Checker]
			if !ok {
				fail("checker %s: missing from regenerated record", want.Checker)
				continue
			}
			fmt.Printf("%s: checker %s recall %.2f (%d/%d) vs baseline %.2f (floor %.1f); clean-twin findings %d\n",
				flag.Arg(1), want.Checker, got.Recall, got.Detected, got.Seeded,
				want.Recall, recallFloor, got.CleanFindings)
			if got.Seeded == 0 {
				fail("checker %s: no scenarios seeded", want.Checker)
				continue
			}
			if got.Recall < recallFloor {
				fail("checker %s: recall %.2f (%d/%d) below the %.1f floor",
					want.Checker, got.Recall, got.Detected, got.Seeded, recallFloor)
			}
			if got.CleanFindings != 0 {
				fail("checker %s: %d finding(s) on clean twins (want 0)",
					want.Checker, got.CleanFindings)
			}
		}
		if len(cur.Checkers) < len(old.Checkers) {
			fail("checker count %d, baseline %d", len(cur.Checkers), len(old.Checkers))
		}

	case old.Scaling4x > 0:
		// Cluster record: floor-gated scaling plus the failover contract.
		// Zero unrecovered requests is absolute; at least one re-create
		// proves the kill actually hit warm sessions.
		fmt.Printf("%s: scaling 2x=%.2f 4x=%.2f (floor %.1fx) vs baseline 4x=%.2f; failover p99 %.1fms (ceiling %.0fms, steady %.1fms), recreates %d, failed %d\n",
			flag.Arg(1), cur.Scaling2x, cur.Scaling4x, clusterScalingFloor, old.Scaling4x,
			cur.FailoverP99Ms, failoverP99CeilingMs, cur.SteadyP99Ms, cur.Recreates, cur.FailedRequests)
		if cur.Scaling4x < clusterScalingFloor {
			fail("4-replica throughput scaling %.2fx below the %.1fx floor", cur.Scaling4x, clusterScalingFloor)
		}
		if cur.FailedRequests != 0 {
			fail("%d request(s) never recovered after the replica kill (want 0)", cur.FailedRequests)
		}
		if cur.Recreates < 1 {
			fail("replica kill triggered no session re-creates; the failover path went unexercised")
		}
		if cur.FailoverP99Ms > failoverP99CeilingMs {
			fail("failover-window p99 %.1fms exceeds the %.0fms ceiling", cur.FailoverP99Ms, failoverP99CeilingMs)
		}

	case len(old.Modes) > 0:
		// Precision record: deterministic fact-count ratios per
		// context-sensitivity mode. Soundness violations and a non-strict
		// stressor are hard failures; the ratio gets the tight 5% bound.
		byMode := map[string]modeRec{}
		for _, m := range cur.Modes {
			byMode[m.Mode] = m
		}
		for _, want := range old.Modes {
			got, ok := byMode[want.Mode]
			if !ok {
				fail("mode %q: missing from regenerated record", want.Mode)
				continue
			}
			limit := want.Ratio * (1 + ratioSlack)
			fmt.Printf("%s: mode %s ratio %.3f vs baseline %.3f (limit %.3f), violations %d\n",
				flag.Arg(1), want.Mode, got.Ratio, want.Ratio, limit, got.Violations)
			if got.Violations > 0 {
				fail("mode %s: %d soundness violation(s) against the oracle", want.Mode, got.Violations)
			}
			if got.Ratio > limit {
				fail("mode %s: precision ratio %.3f regressed more than %.0f%% from baseline %.3f",
					want.Mode, got.Ratio, ratioSlack*100, want.Ratio)
			}
		}
		if old.Stressor.App != "" && cur.Stressor.App == "" {
			fail("stressor %s: missing from regenerated record", old.Stressor.App)
		}
		if cur.Stressor.App != "" && !cur.Stressor.Strict {
			fail("stressor %s: context-sensitive solution no longer strictly smaller (off=%d 1cfa=%d 1obj=%d)",
				cur.Stressor.App, cur.Stressor.InsensitiveFacts, cur.Stressor.CfaFacts, cur.Stressor.ObjFacts)
		}

	case len(old.Apps) > 0:
		// Corpus record: behavior exactly, cost within threshold.
		byName := map[string]appRec{}
		for _, a := range cur.Apps {
			byName[a.App] = a
		}
		for _, want := range old.Apps {
			got, ok := byName[want.App]
			if !ok {
				fail("%s: missing from regenerated record", want.App)
				continue
			}
			if got.Findings != want.Findings || got.Warnings != want.Warnings {
				fail("%s: findings/warnings %d/%d, baseline %d/%d",
					want.App, got.Findings, got.Warnings, want.Findings, want.Warnings)
			}
		}
		if len(cur.Apps) != len(old.Apps) {
			fail("app count %d, baseline %d", len(cur.Apps), len(old.Apps))
		}
		if old.TotalWorkMs > 0 {
			limit := old.TotalWorkMs * (1 + *threshold)
			fmt.Printf("%s: totalWorkMs %.1f vs baseline %.1f (limit %.1f)\n",
				flag.Arg(1), cur.TotalWorkMs, old.TotalWorkMs, limit)
			if cur.TotalWorkMs > limit {
				fail("totalWorkMs %.1f exceeds baseline %.1f by more than %.0f%%",
					cur.TotalWorkMs, old.TotalWorkMs, *threshold*100)
			}
		}

	case old.OptSpeedup > 0:
		// Solver record: three same-machine ratios, each gated by its own
		// hard floor. Unlike the single-ratio records below, no relative
		// threshold applies: each ratio divides two separately-measured
		// solve times, so its run-to-run noise is the *sum* of both sides'
		// and routinely exceeds 15% on busy single-core runners without any
		// code change. The baseline comparison is printed for trend reading.
		fmt.Printf("%s: opt speedup %.2fx vs baseline %.2fx (floor %.1fx); shard %.2fx (floor %.1fx); incremental %.2fx (floor %.1fx)\n",
			flag.Arg(1), cur.OptSpeedup, old.OptSpeedup, optSpeedupFloor,
			cur.ShardSpeedup, shardSpeedupFloor, cur.IncSpeedup, speedupFloor)
		if cur.OptSpeedup < optSpeedupFloor {
			fail("optimized-engine speedup %.2fx below the %.1fx floor", cur.OptSpeedup, optSpeedupFloor)
		}
		if cur.ShardSpeedup < shardSpeedupFloor {
			fail("sharded engine is slower than the reference schedule (%.2fx)", cur.ShardSpeedup)
		}
		if cur.IncSpeedup < speedupFloor {
			fail("large-app incremental speedup %.2fx below the %.1fx floor", cur.IncSpeedup, speedupFloor)
		}

	case old.TelemetryOnMs > 0:
		// Observability record: the telemetry layer's request-latency
		// overhead, gated by the absolute ceiling. Like the solver ratios,
		// no relative-to-baseline threshold applies — the percentage divides
		// two independently measured latency sums, so run-to-run noise would
		// trip a relative gate without any code change. The baseline figure
		// is printed for trend reading; the ceiling is the contract.
		fmt.Printf("%s: telemetry overhead %.2f%% vs baseline %.2f%% (ceiling %.1f%%); on %.1fms off %.1fms\n",
			flag.Arg(1), cur.OverheadPct, old.OverheadPct, obsOverheadCeiling,
			cur.TelemetryOnMs, cur.TelemetryOffMs)
		if cur.TelemetryOnMs == 0 || cur.TelemetryOffMs == 0 {
			fail("regenerated record is not an observability record (on %.1fms, off %.1fms)",
				cur.TelemetryOnMs, cur.TelemetryOffMs)
		} else if cur.OverheadPct > obsOverheadCeiling {
			fail("telemetry overhead %.2f%% exceeds the %.1f%% ceiling", cur.OverheadPct, obsOverheadCeiling)
		}

	case old.ColdP50Ms > 0:
		// Server record: same ratio discipline as the incremental record,
		// with the transport-inclusive floor. Percentiles are printed for
		// trend reading but never gate — they are absolute wall-clock.
		limit := old.Speedup * (1 - *threshold)
		fmt.Printf("%s: session speedup %.2fx vs baseline %.2fx (limit %.2fx, floor %.1fx); cold p50 %.1fms p99 %.1fms (baseline %.1f/%.1f)\n",
			flag.Arg(1), cur.Speedup, old.Speedup, limit, serveSpeedupFloor,
			cur.ColdP50Ms, cur.ColdP99Ms, old.ColdP50Ms, old.ColdP99Ms)
		if cur.Speedup < limit {
			fail("session speedup %.2fx regressed more than %.0f%% from baseline %.2fx",
				cur.Speedup, *threshold*100, old.Speedup)
		}
		if cur.Speedup < serveSpeedupFloor {
			fail("session speedup %.2fx below the %.1fx floor", cur.Speedup, serveSpeedupFloor)
		}

	case old.WarmMs > 0:
		// Incremental record: the speedup ratio is the guarded quantity.
		limit := old.Speedup * (1 - *threshold)
		fmt.Printf("%s: speedup %.2fx vs baseline %.2fx (limit %.2fx, floor %.1fx)\n",
			flag.Arg(1), cur.Speedup, old.Speedup, limit, speedupFloor)
		if cur.Speedup < limit {
			fail("speedup %.2fx regressed more than %.0f%% from baseline %.2fx",
				cur.Speedup, *threshold*100, old.Speedup)
		}
		if cur.Speedup < speedupFloor {
			fail("speedup %.2fx below the %.1fx floor", cur.Speedup, speedupFloor)
		}

	default:
		fmt.Fprintf(os.Stderr, "benchdiff: %s: unrecognized record shape\n", flag.Arg(0))
		os.Exit(2)
	}

	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "benchdiff: REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

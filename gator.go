// Package gator is a static reference analysis for GUI objects in Android
// software, reproducing Rountev & Yan, "Static Reference Analysis for GUI
// Objects in Android Software" (CGO 2014).
//
// An application consists of ALite source files (the paper's abstracted
// Java-like core language) and Android layout XML files. The analysis
// models the creation and propagation of GUI-related objects — views,
// activities, listeners, and layout/view ids — and their structural
// relationships: which views belong to which activity, the parent-child
// view hierarchy, view-id associations, and view-listener associations.
//
// Typical use:
//
//	app, err := gator.LoadDir("path/to/app")
//	res, err := app.Analyze(gator.Options{})
//	for _, t := range res.EventTuples() { ... }
//
// Many applications can be analyzed as one parallel batch with
// AnalyzeBatch; per-app solutions are identical to sequential runs (see
// batch.go and DESIGN.md).
package gator

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"gator/internal/alite"
	"gator/internal/analysis"
	"gator/internal/cache"
	"gator/internal/core"
	"gator/internal/dot"
	"gator/internal/graph"
	"gator/internal/interp"
	"gator/internal/ir"
	"gator/internal/layout"
	"gator/internal/lifecycle"
	"gator/internal/metrics"
	"gator/internal/oracle"
	"gator/internal/platform"
	"gator/internal/trace"
)

// App is a loaded, resolved application.
type App struct {
	// Name labels the application in reports.
	Name string
	prog *ir.Program
	// sources retains the raw ALite texts (file name → source) so the
	// checkers can honor inline `// gator:disable` suppressions and
	// AnalyzeIncremental can diff edits.
	sources map[string]string
	// layouts retains the raw layout XML (layout name → XML) for
	// incremental diffing; layout definitions are always re-parsed on
	// rebuild because linking resolves them in place.
	layouts map[string]string
	// shapes fingerprints each source file's declarations
	// (ir.ShapeSignature); an edit whose shape is unchanged touches method
	// bodies only and is eligible for in-place re-lowering.
	shapes map[string]string
}

// CtxMode selects the context-sensitive solving mode (see DESIGN.md,
// "Context sensitivity").
type CtxMode = core.CtxMode

// Context-sensitivity modes, re-exported for Options.ContextSensitivity.
const (
	CtxOff  = core.CtxOff
	Ctx1CFA = core.Ctx1CFA
	Ctx1Obj = core.Ctx1Obj
)

// ParseCtxMode parses a -ctx flag value ("", "off", "1cfa", "1obj").
func ParseCtxMode(s string) (CtxMode, bool) { return core.ParseCtxMode(s) }

// Options configure analysis variants; the zero value is the configuration
// evaluated in the paper.
type Options struct {
	// FilterCasts enables cast-based filtering of flowing values
	// (a precision refinement beyond the paper).
	FilterCasts bool
	// SharedInflation shares inflated view nodes per layout instead of per
	// inflation site (an ablation; the paper materializes per site).
	SharedInflation bool
	// NoFindView3Refinement disables the child-only refinement of
	// operations such as getCurrentView (an ablation).
	NoFindView3Refinement bool
	// DeclaredDispatchOnly disables class-hierarchy call resolution
	// (an ablation; unsound for interface-dispatched handlers).
	DeclaredDispatchOnly bool
	// Context1 enables bounded call-site context sensitivity for small
	// helper methods — the refinement the paper's case study identifies
	// for the XBMC receiver imprecision.
	Context1 bool
	// ContextSensitivity selects the labeled context-sensitive solving
	// mode: CtxOff (the paper's insensitive analysis), Ctx1CFA (one
	// context per call site), or Ctx1Obj (one context per receiver
	// class). Contexts carry human-readable labels that Explain queries
	// and derivation trees render; solutions are projected back to
	// source identities, so every query keeps working. Supersedes
	// Context1 when set.
	ContextSensitivity CtxMode
	// Provenance records the solver's derivation DAG, enabling the
	// ExplainDerivation/ExplainViewID queries. Costs memory proportional to
	// the number of derived facts; off by default.
	Provenance bool
	// SolverShards, when at least 2, runs flow propagation across that many
	// parallel shards with deterministic boundary exchange. The solution is
	// identical to the sequential solver's; runs that need the exact
	// sequential schedule (Provenance, incremental dependency tracking)
	// ignore the setting.
	SolverShards int
	// ReferenceSolver selects the original map-walking, apply-everything
	// fixpoint schedule instead of the packed CSR engine with the delta
	// operation worklist. It is the baseline the differential harness and
	// the solver benchmarks compare the optimized engines against; the
	// solution is identical either way.
	ReferenceSolver bool
	// Trace receives solver instrumentation events (phase boundaries,
	// fixpoint iterations, rule firings, dataflow solves). nil disables
	// tracing with no overhead.
	Trace *trace.Scope
}

func (o Options) internal() core.Options {
	return core.Options{
		FilterCasts:           o.FilterCasts,
		SharedInflation:       o.SharedInflation,
		NoFindView3Refinement: o.NoFindView3Refinement,
		DeclaredDispatchOnly:  o.DeclaredDispatchOnly,
		Context1:              o.Context1,
		ContextSensitivity:    o.ContextSensitivity,
		Provenance:            o.Provenance,
		SolverShards:          o.SolverShards,
		ReferenceSolver:       o.ReferenceSolver,
		Trace:                 o.Trace,
	}
}

// LoadDir loads an application from a directory containing *.alite sources
// and *.xml layout files (optionally under a layout/ subdirectory).
// Extensions are matched case-insensitively (MAIN.XML is a layout).
func LoadDir(dir string) (*App, error) {
	return LoadDirCached(dir, nil)
}

// LoadDirCached is LoadDir with a shared parse cache (see LoadCached).
func LoadDirCached(dir string, c *Cache) (*App, error) {
	sources, layouts, err := ReadAppDir(dir)
	if err != nil {
		return nil, err
	}
	app, err := LoadCached(sources, layouts, c)
	if err != nil {
		return nil, err
	}
	app.Name = filepath.Base(dir)
	return app, nil
}

// ReadAppDir reads an application directory into raw unit maps (file name →
// ALite source, layout name → XML) without parsing or resolving anything.
// It is the input form AnalyzeIncremental diffs against, so watch loops can
// re-read a directory cheaply and hand both maps back unchanged.
func ReadAppDir(dir string) (sources, layouts map[string]string, err error) {
	sources = map[string]string{}
	layouts = map[string]string{}
	addFile := func(path string) error {
		base := filepath.Base(path)
		ext := strings.ToLower(filepath.Ext(base))
		if ext != ".alite" && ext != ".xml" {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("gator: reading %s: %w", path, err)
		}
		if ext == ".alite" {
			sources[base] = string(data)
		} else {
			layouts[base[:len(base)-len(".xml")]] = string(data)
		}
		return nil
	}
	var paths []string
	for _, sub := range []string{dir, filepath.Join(dir, "layout")} {
		entries, err := os.ReadDir(sub)
		if err != nil {
			if sub != dir && errors.Is(err, fs.ErrNotExist) {
				continue // the layout/ subdirectory is optional
			}
			return nil, nil, fmt.Errorf("gator: reading %s: %w", sub, err)
		}
		for _, e := range entries {
			if !e.IsDir() {
				paths = append(paths, filepath.Join(sub, e.Name()))
			}
		}
	}
	// Deterministic load order regardless of how the OS enumerated the
	// directories (os.ReadDir sorts per directory; this pins the combined
	// order too, so batch results cannot depend on filesystem quirks).
	sort.Strings(paths)
	for _, path := range paths {
		if err := addFile(path); err != nil {
			return nil, nil, err
		}
	}
	if len(sources) == 0 {
		return nil, nil, fmt.Errorf("gator: no .alite sources in %s", dir)
	}
	return sources, layouts, nil
}

// Load builds an application from in-memory sources: file name → ALite
// source, and layout name → layout XML.
func Load(sources map[string]string, layoutXML map[string]string) (*App, error) {
	return loadApp(sources, layoutXML, nil)
}

// LoadCached is Load with a shared parse cache: source files whose content
// the cache has seen before (under any application) skip parsing. Layout
// definitions are always re-parsed — linking resolves them in place, so
// their parsed form is per-build.
func LoadCached(sources, layoutXML map[string]string, c *Cache) (*App, error) {
	var pc *cache.ParseCache
	if c != nil {
		pc = c.parse
	}
	return loadApp(sources, layoutXML, pc)
}

func loadApp(sources map[string]string, layoutXML map[string]string, pc *cache.ParseCache) (*App, error) {
	var names []string
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*alite.File
	shapes := make(map[string]string, len(names))
	for _, n := range names {
		var f *alite.File
		var err error
		if pc != nil {
			f, _, err = pc.Parse(n, sources[n])
		} else {
			f, err = alite.Parse(n, sources[n])
		}
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		shapes[n] = ir.ShapeSignature(f)
	}
	layouts := map[string]*layout.Layout{}
	for name, xml := range layoutXML {
		l, err := layout.Parse(name, xml)
		if err != nil {
			return nil, err
		}
		layouts[name] = l
	}
	prog, err := ir.Build(files, layouts)
	if err != nil {
		return nil, err
	}
	// Copy so later caller mutations of the maps cannot skew suppression
	// scanning or incremental diffing.
	kept := make(map[string]string, len(sources))
	for n, src := range sources {
		kept[n] = src
	}
	keptLayouts := make(map[string]string, len(layoutXML))
	for n, xml := range layoutXML {
		keptLayouts[n] = xml
	}
	return &App{Name: "app", prog: prog, sources: kept, layouts: keptLayouts, shapes: shapes}, nil
}

// Analyze runs the reference analysis.
func (a *App) Analyze(opts Options) *Result {
	start := time.Now()
	res := core.Analyze(a.prog, opts.internal())
	return &Result{app: a, res: res, elapsed: time.Since(start), tr: opts.Trace}
}

// Result is a computed analysis solution with user-facing query methods.
type Result struct {
	app     *App
	res     *core.Result
	elapsed time.Duration
	tr      *trace.Scope
	incr    IncrementalStats
	// invalid marks a result whose underlying program has since been
	// patched in place by AnalyzeIncremental; queries on it would mix old
	// facts with new IR. See the staleness contract in DESIGN.md.
	invalid bool
}

// Elapsed returns the analysis running time.
func (r *Result) Elapsed() time.Duration { return r.elapsed }

// SetAppName relabels the application in subsequently rendered reports
// (Table rows, check reports, the JSON model). Server sessions use it to
// carry the client-chosen name across incremental re-analyses, whose
// in-memory loads would otherwise default to "app".
func (r *Result) SetAppName(name string) { r.app.Name = name }

// Iterations returns the number of fixpoint rounds.
func (r *Result) Iterations() int { return r.res.Iterations }

// View describes one abstract view object.
type View struct {
	// Class is the view class name.
	Class string
	// Origin describes where the view comes from: "layout:<name>:<path>"
	// for inflated views, "new@<pos>" for allocations.
	Origin string
	// ID is the view id name associated with the view, or "".
	ID string

	val graph.Value
}

func (r *Result) viewInfo(v graph.Value) View {
	out := View{val: v}
	switch v := v.(type) {
	case *graph.InflNode:
		out.Class = v.Class.Name
		out.Origin = fmt.Sprintf("layout:%s:%d", v.LayoutName, v.Path)
	case *graph.AllocNode:
		out.Class = v.Class.Name
		out.Origin = fmt.Sprintf("new@%s", v.Site.Pos())
	}
	ids := r.res.Graph.ViewIDsOf(v)
	if len(ids) > 0 {
		names := make([]string, len(ids))
		for i, id := range ids {
			names[i] = id.Name
		}
		sort.Strings(names)
		out.ID = strings.Join(names, ",")
	}
	return out
}

// viewLess orders views by content (origin, class, id) — not by internal
// node numbering, which depends on the solver's materialization order and
// differs between from-scratch and incremental runs.
func viewLess(a, b View) bool {
	if a.Origin != b.Origin {
		return a.Origin < b.Origin
	}
	if a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.ID < b.ID
}

// Views returns every abstract view object the analysis discovered, in
// content order.
func (r *Result) Views() []View {
	var out []View
	for _, n := range r.res.Graph.Infls() {
		out = append(out, r.viewInfo(n))
	}
	for _, a := range r.res.Graph.Allocs() {
		if a.IsView {
			out = append(out, r.viewInfo(a))
		}
	}
	sort.Slice(out, func(i, j int) bool { return viewLess(out[i], out[j]) })
	return out
}

// VarViews returns the views that may flow to a variable, identified as
// "Class.method.var" (method by name; the first match wins for overloads).
func (r *Result) VarViews(class, method, varName string) ([]View, error) {
	c := r.app.prog.Class(class)
	if c == nil {
		return nil, fmt.Errorf("gator: unknown class %s", class)
	}
	for _, m := range c.MethodsSorted() {
		if m.Name != method {
			continue
		}
		for _, v := range m.Locals {
			if v.Name == varName {
				var out []View
				for _, val := range r.res.VarPointsTo(v) {
					if graph.IsViewValue(val) {
						out = append(out, r.viewInfo(val))
					}
				}
				return out, nil
			}
		}
	}
	return nil, fmt.Errorf("gator: no variable %s in %s.%s", varName, class, method)
}

// EventTuple is one (activity, view, event, handler) tuple — the model
// element that Section 6 of the paper describes as the input to GUI-model
// construction, automated test generation, and run-time exploration.
type EventTuple struct {
	// Activity is the activity (or dialog) class whose GUI contains View;
	// "" when the view is not associated with any activity content.
	Activity string
	// View is the GUI object.
	View View
	// Event is the GUI event kind ("click", "longclick", ...).
	Event string
	// Handler is the handler method, as "Class.method".
	Handler string
}

// EventTuples enumerates the (activity, view, event, handler) tuples of the
// solution.
func (r *Result) EventTuples() []EventTuple {
	g := r.res.Graph

	// Map each view to the activities whose content trees contain it.
	viewOwners := map[graph.Value][]string{}
	g.RootPairs(func(owner, root graph.Value) {
		var ownerName string
		switch o := owner.(type) {
		case *graph.ActivityNode:
			ownerName = o.Class.Name
		case *graph.AllocNode:
			ownerName = o.Class.Name
		default:
			return
		}
		for _, w := range descendantsIncl(g, root) {
			viewOwners[w] = append(viewOwners[w], ownerName)
		}
	})

	var out []EventTuple
	add := func(view graph.Value, event, handlerClassAndMethod string) {
		owners := viewOwners[view]
		if len(owners) == 0 {
			owners = []string{""}
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				continue
			}
			seen[o] = true
			out = append(out, EventTuple{
				Activity: o,
				View:     r.viewInfo(view),
				Event:    event,
				Handler:  handlerClassAndMethod,
			})
		}
	}

	for _, op := range g.Ops() {
		if op.Event == "" || op.Recv == nil || len(op.Args) == 0 {
			continue
		}
		spec, ok := listenerSpec(op.Event)
		if !ok {
			continue
		}
		for _, view := range r.res.OpReceivers(op) {
			if !graph.IsViewValue(view) {
				continue
			}
			for _, lst := range r.res.OpArg(op, 0) {
				lstClass := classOf(lst)
				if lstClass == nil {
					continue
				}
				for _, h := range spec {
					m := lstClass.Dispatch(h)
					if m != nil && m.Body != nil {
						add(view, op.Event, m.QualifiedName())
					}
				}
			}
		}
	}

	// Declarative android:onClick handlers.
	for _, n := range g.Infls() {
		if n.OnClick == "" {
			continue
		}
		for _, lst := range g.Listeners(n) {
			c := classOf(lst)
			if c == nil {
				continue
			}
			if m := c.Dispatch(n.OnClick + "(R)"); m != nil && m.Body != nil {
				add(n, "click", m.QualifiedName())
			}
		}
	}
	// Deduplicate (a tuple can arise both from a set-listener op and a
	// declarative binding).
	seenTuple := map[EventTuple]bool{}
	dedup := out[:0]
	for _, t := range out {
		key := t
		key.View.val = nil
		if !seenTuple[key] {
			seenTuple[key] = true
			dedup = append(dedup, t)
		}
	}
	out = dedup
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Activity != b.Activity {
			return a.Activity < b.Activity
		}
		if a.View.Origin != b.View.Origin {
			return a.View.Origin < b.View.Origin
		}
		if a.Event != b.Event {
			return a.Event < b.Event
		}
		return a.Handler < b.Handler
	})
	return out
}

// HierarchyEdge is one parent-child association between views.
type HierarchyEdge struct{ Parent, Child View }

// Hierarchy returns all parent-child view associations, in content order.
func (r *Result) Hierarchy() []HierarchyEdge {
	var out []HierarchyEdge
	r.res.Graph.ChildPairs(func(p, c graph.Value) {
		out = append(out, HierarchyEdge{r.viewInfo(p), r.viewInfo(c)})
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if viewLess(a.Parent, b.Parent) {
			return true
		}
		if viewLess(b.Parent, a.Parent) {
			return false
		}
		return viewLess(a.Child, b.Child)
	})
	return out
}

// ActivityContent describes one activity's content roots.
type ActivityContent struct {
	Activity string
	Roots    []View
}

// Activities returns each activity (and dialog) with its content roots.
func (r *Result) Activities() []ActivityContent {
	byName := map[string]*ActivityContent{}
	var order []string
	r.res.Graph.RootPairs(func(owner, root graph.Value) {
		c := classOf(owner)
		if c == nil {
			return
		}
		ac, ok := byName[c.Name]
		if !ok {
			ac = &ActivityContent{Activity: c.Name}
			byName[c.Name] = ac
			order = append(order, c.Name)
		}
		ac.Roots = append(ac.Roots, r.viewInfo(root))
	})
	sort.Strings(order)
	out := make([]ActivityContent, len(order))
	for i, n := range order {
		ac := *byName[n]
		sort.Slice(ac.Roots, func(i, j int) bool { return viewLess(ac.Roots[i], ac.Roots[j]) })
		out[i] = ac
	}
	return out
}

// Table1 computes the application's Table 1 row.
func (r *Result) Table1() metrics.Table1Row { return metrics.Table1(r.app.Name, r.res) }

// Table2 computes the application's Table 2 row.
func (r *Result) Table2() metrics.Table2Row {
	return metrics.Table2(r.app.Name, r.res, r.elapsed)
}

// DumpIR renders the application's lowered three-address representation,
// one class at a time — the form the analysis actually consumes.
func (r *Result) DumpIR() string { return ir.DumpProgram(r.app.prog) }

// CheckFinding is one static-checker finding (see Check).
type CheckFinding struct {
	// Check is the checker identifier.
	Check string
	// Severity is "warning" or "info".
	Severity string
	// Pos is the source position ("" when the finding is structural).
	Pos string
	// Msg describes the issue.
	Msg string
	// SuggestedFix describes how to address the finding, or "".
	SuggestedFix string
}

// PassTiming is one checker pass's wall-clock and yield in a CheckReport.
type PassTiming struct {
	Check    string
	Wall     time.Duration
	Findings int
}

// CheckReport is the outcome of running the diagnostics engine over one
// solution: the findings in deterministic (position, check, message) order
// plus per-pass accounting.
type CheckReport struct {
	// App is the analyzed application's name.
	App string
	// Findings are the kept findings.
	Findings []CheckFinding
	// Suppressed counts findings dropped by `// gator:disable` comments.
	Suppressed int
	// Passes records per-pass timing in execution order.
	Passes []PassTiming

	rep *analysis.Report
}

// Warnings counts findings at warning severity.
func (c *CheckReport) Warnings() int { return c.rep.Warnings() }

// SARIF renders the report as a SARIF 2.1.0 log.
func (c *CheckReport) SARIF() ([]byte, error) { return analysis.SARIF(c.rep) }

// Text renders the report as plain text: one line per finding plus a
// summary.
func (c *CheckReport) Text() string { return analysis.Text(c.rep) }

// PassTimings renders the per-pass accounting as aligned text.
func (c *CheckReport) PassTimings() string { return metrics.FormatPasses(c.rep.Passes) }

// CheckReport runs the analysis-backed GUI diagnostics engine (the static
// error checking application of Section 6, extended with flow-sensitive
// passes). checkIDs restricts the run to the named checks; empty runs all.
// Inline `// gator:disable <check>` comments in the loaded sources suppress
// findings on their own line or the line below.
func (r *Result) CheckReport(checkIDs ...string) (*CheckReport, error) {
	rep, err := analysis.Run(r.app.Name, r.res, analysis.Options{
		Checks:  checkIDs,
		Sources: r.app.sources,
		Trace:   r.tr,
	})
	if err != nil {
		return nil, err
	}
	out := &CheckReport{App: rep.App, Suppressed: rep.Suppressed, rep: rep}
	for _, f := range rep.Findings {
		cf := CheckFinding{
			Check:        f.Check,
			Severity:     f.Severity.String(),
			Msg:          f.Msg,
			SuggestedFix: f.SuggestedFix,
		}
		if f.Pos.IsValid() {
			cf.Pos = f.Pos.String()
		}
		out.Findings = append(out.Findings, cf)
	}
	for _, p := range rep.Passes {
		out.Passes = append(out.Passes, PassTiming{Check: p.Pass, Wall: p.Wall, Findings: p.Findings})
	}
	return out, nil
}

// Check runs every checker and returns the findings. It is the simple form
// of CheckReport.
func (r *Result) Check() []CheckFinding {
	rep, err := r.CheckReport()
	if err != nil {
		// Unreachable: an empty selection cannot name an unknown check.
		panic(err)
	}
	return rep.Findings
}

// SARIFAll renders several check reports (typically one per batch
// application) as one SARIF 2.1.0 log with one run per report.
func SARIFAll(reports ...*CheckReport) ([]byte, error) {
	inner := make([]*analysis.Report, len(reports))
	for i, r := range reports {
		inner[i] = r.rep
	}
	return analysis.SARIFMulti(inner)
}

// ListChecks renders the checker registry, one aligned line per check.
func ListChecks() string { return analysis.ListChecks() }

// CheckTable renders the checker registry as a Markdown table (the README's
// checker section is generated from it).
func CheckTable() string { return analysis.MarkdownTable() }

// ExplainVar reconstructs how each view reached a variable: one line per
// value, showing the chain of graph nodes from the value's origin (an
// allocation/inflation operation or seed) to the variable. Useful when
// debugging why the analysis reports a surprising view at an operation.
func (r *Result) ExplainVar(class, method, varName string) ([]string, error) {
	c := r.app.prog.Class(class)
	if c == nil {
		return nil, fmt.Errorf("gator: unknown class %s", class)
	}
	for _, m := range c.MethodsSorted() {
		if m.Name != method {
			continue
		}
		for _, v := range m.Locals {
			if v.Name != varName {
				continue
			}
			// One chain per (context variant, value): cloned variable
			// nodes render their context label, so context-sensitive
			// runs show which caller or receiver class a view belongs to.
			var out []string
			for _, node := range r.res.VarNodesOf(v) {
				for _, val := range r.res.PointsTo(node) {
					chain := r.res.Explain(node, val)
					parts := make([]string, len(chain))
					for i, n := range chain {
						parts[i] = n.String()
					}
					out = append(out, val.String()+": "+strings.Join(parts, " -> "))
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("gator: no variable %s in %s.%s", varName, class, method)
}

// ExplainDerivation renders, for each value reaching Class.method.var, the
// minimal derivation tree of the fact flowsTo(var, value): every node is one
// derived fact annotated with the paper's inference rule that produced it
// (FindView2, Inflate1, ...), and every chain bottoms out in Seed facts.
// Requires Options.Provenance; trees are identical across runs and across
// batch parallelism levels.
func (r *Result) ExplainDerivation(class, method, varName string) ([]string, error) {
	if !r.res.HasProvenance() {
		return nil, errors.New("gator: derivation explanations need Options.Provenance")
	}
	c := r.app.prog.Class(class)
	if c == nil {
		return nil, fmt.Errorf("gator: unknown class %s", class)
	}
	for _, m := range c.MethodsSorted() {
		if m.Name != method {
			continue
		}
		for _, v := range m.Locals {
			if v.Name != varName {
				continue
			}
			// One tree per (context variant, value): the rendered facts
			// carry the context component on cloned nodes.
			var out []string
			for _, node := range r.res.VarNodesOf(v) {
				for _, val := range r.res.PointsTo(node) {
					if f, ok := r.res.FlowFactOf(node, val); ok {
						out = append(out, r.res.RenderDerivation(f))
					}
				}
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("gator: no variable %s in %s.%s", varName, class, method)
}

// ExplainViewID renders the derivation tree of every hasId(view, id) fact
// for the named view id: why each view carries the id. Requires
// Options.Provenance.
func (r *Result) ExplainViewID(name string) ([]string, error) {
	if !r.res.HasProvenance() {
		return nil, errors.New("gator: derivation explanations need Options.Provenance")
	}
	facts := r.res.ViewIDFacts(name)
	if len(facts) == 0 {
		return nil, fmt.Errorf("gator: no view carries id %q", name)
	}
	out := make([]string, 0, len(facts))
	for _, f := range facts {
		out = append(out, r.res.RenderDerivation(f))
	}
	return out, nil
}

// ExplainOrdering renders the lifecycle automaton's justification for
// whether cb2 can run after cb1 on the named component class: the
// conclusion plus one premise line per transition rule of the shortest
// witness schedule, in the same derivation-tree style as ExplainDerivation.
// Unlike the flow explanations it needs no provenance DAG — the transition
// table is the derivation. Queried via `gator -explain order:Class.cb1.cb2`.
func (r *Result) ExplainOrdering(class, cb1, cb2 string) (string, error) {
	sched := lifecycle.Order(r.app.prog)
	comp, ok := sched.Component(class)
	if !ok {
		return "", fmt.Errorf("gator: %s is not a lifecycle component (not an activity or dialog class)", class)
	}
	for _, cb := range []string{cb1, cb2} {
		if !comp.Known(cb) {
			return "", fmt.Errorf("gator: %s is not a lifecycle callback of %s %s", cb, comp.Kind, class)
		}
	}
	txt, _ := comp.Justify(cb1, cb2)
	return txt, nil
}

// MenuEntry describes one options-menu item: the owning activity, the
// item's id name(s), and the selection handler.
type MenuEntry struct {
	Activity string
	ItemID   string
	Handler  string
}

// MenuEntries enumerates the options-menu model: every item added to every
// activity's menu, with the handler that receives its selection.
func (r *Result) MenuEntries() []MenuEntry {
	var out []MenuEntry
	for _, menu := range r.res.Graph.Menus() {
		handler := ""
		if h := menu.Activity.Dispatch(platform.MenuSelectCallback + "(R)"); h != nil && h.Body != nil {
			handler = h.QualifiedName()
		}
		for _, item := range r.res.Graph.MenuItems(menu) {
			ids := r.res.Graph.ViewIDsOf(item)
			names := make([]string, len(ids))
			for i, id := range ids {
				names[i] = id.Name
			}
			sort.Strings(names)
			out = append(out, MenuEntry{
				Activity: menu.Activity.Name,
				ItemID:   strings.Join(names, ","),
				Handler:  handler,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Activity != b.Activity {
			return a.Activity < b.Activity
		}
		return a.ItemID < b.ItemID
	})
	return out
}

// Transition is one inter-component control-flow edge of the activity
// transition graph (the model Section 6 of the paper motivates): Source
// launches Target via the method Via.
type Transition struct {
	Source string
	Target string
	Via    string // "Class.method" containing the startActivity call
}

// Transitions returns the activity transition graph derived from the
// solution: for every startActivity operation, the launching activities
// (receiver solution) crossed with the targets of the reaching intents.
func (r *Result) Transitions() []Transition {
	var out []Transition
	for _, t := range r.res.Transitions() {
		out = append(out, Transition{
			Source: t.Source.Name,
			Target: t.Target.Name,
			Via:    t.Via.QualifiedName(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Source != b.Source {
			return a.Source < b.Source
		}
		if a.Target != b.Target {
			return a.Target < b.Target
		}
		return a.Via < b.Via
	})
	return out
}

// Dot renders the solved constraint graph in Graphviz format (the
// structure of Figures 3 and 4 of the paper).
func (r *Result) Dot() string {
	return dot.Export(r.res, dot.Options{Flow: true, Relations: true})
}

// ProjectedFacts renders the solution as sorted per-fact lines with cloning
// contexts projected back to source identities — the representation under
// which a context-sensitive solution is provably a subset of the
// insensitive one (see DESIGN.md, "Context sensitivity").
func (r *Result) ProjectedFacts() []string { return r.res.ProjectedSolution() }

// ExploreReport is the outcome of a dynamic-exploration soundness check.
type ExploreReport struct {
	// Sound is true when every concrete observation is covered.
	Sound bool
	// Violations describes missed facts, if any.
	Violations []string
	// ObservedSites, PerfectSites, Steps summarize the exploration.
	ObservedSites int
	PerfectSites  int
	Steps         int
	// StaticFacts / ObservedFacts size the static solution against the
	// observed values at executed sites, by source identity (context
	// clones collapse). PrecisionRatio is their quotient — the
	// solution-size / oracle-size metric BENCH_7.json records.
	StaticFacts    int
	ObservedFacts  int
	PrecisionRatio float64
}

// Explore runs the seeded concrete interpreter and checks the solution
// against its observations (the paper's case study, mechanized).
func (r *Result) Explore(seed int64) ExploreReport {
	obs := interp.New(r.app.prog, interp.Config{Seed: seed}).Run()
	rep := oracle.Compare(r.res, obs)
	out := ExploreReport{
		Sound:          rep.Sound(),
		ObservedSites:  rep.ObservedSites,
		PerfectSites:   rep.PerfectSites,
		Steps:          obs.Steps,
		StaticFacts:    rep.StaticFacts,
		ObservedFacts:  rep.ObservedFacts,
		PrecisionRatio: rep.Ratio(),
	}
	for _, v := range rep.Violations {
		out.Violations = append(out.Violations, v.String())
	}
	return out
}

// helpers

func classOf(v graph.Value) *ir.Class {
	switch v := v.(type) {
	case *graph.ActivityNode:
		return v.Class
	case *graph.AllocNode:
		return v.Class
	case *graph.InflNode:
		return v.Class
	}
	return nil
}

func descendantsIncl(g *graph.Graph, root graph.Value) []graph.Value {
	seen := map[int]bool{}
	queue := []graph.Value{root}
	var out []graph.Value
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.ID()] {
			continue
		}
		seen[v.ID()] = true
		out = append(out, v)
		queue = append(queue, g.Children(v)...)
	}
	return out
}

// listenerSpec returns the handler signature keys for an event.
func listenerSpec(event string) ([]string, bool) {
	spec, ok := platform.ListenerByEvent(event)
	if !ok {
		return nil, false
	}
	var keys []string
	for _, h := range spec.Handlers {
		types := make([]alite.Type, len(h.Params))
		for i, pn := range h.Params {
			if pn == "int" {
				types[i] = alite.Type{Prim: alite.TypeInt}
			} else {
				types[i] = alite.Type{Name: pn}
			}
		}
		keys = append(keys, ir.MethodKey(h.Name, types))
	}
	return keys, true
}

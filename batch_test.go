package gator

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"gator/internal/corpus"
	"gator/internal/trace"
)

// corpusInputs converts generated corpus apps into public batch inputs
// (ALite source text plus rendered layout XML — the same form external
// callers use).
func corpusInputs(apps []*corpus.App) []BatchInput {
	inputs := make([]BatchInput, len(apps))
	for i, app := range apps {
		inputs[i] = BatchInput{
			Name:    app.Name,
			Sources: app.BatchSources(),
			Layouts: app.LayoutXML(),
		}
	}
	return inputs
}

// canonical renders a solution deterministically: the full serialized GUI
// model (views, hierarchy = ancestorOf projection, event tuples = flowsTo
// projection, menus, transitions, findings, Table 1 stats) with wall-clock
// stripped, plus the Table 2 precision averages.
func canonical(t *testing.T, res *Result) []byte {
	t.Helper()
	m := res.Model()
	m.Elapsed = "" // the only run-to-run varying field
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	t2 := res.Table2()
	return append(data, fmt.Sprintf(
		"\nreceivers=%.6f parameters=%.6f addview=%v results=%.6f listeners=%.6f\n",
		t2.AvgReceivers, t2.AvgParameters, t2.HasAddView, t2.AvgResults, t2.AvgListeners)...)
}

// TestBatchDeterminism is the differential check: for every corpus app, the
// sequential public API, AnalyzeBatch at one worker, and AnalyzeBatch at
// eight workers must produce byte-identical rendered solutions. Run under
// `go test -race` (scripts/ci.sh) this also proves the batch engine is
// race-free.
func TestBatchDeterminism(t *testing.T) {
	apps := corpus.GenerateAll()
	if testing.Short() {
		apps = apps[:6]
	}
	inputs := corpusInputs(apps)

	// Path 1: the plain sequential API, one app at a time.
	seq := make(map[string][]byte, len(apps))
	for _, in := range inputs {
		app, err := Load(in.Sources, in.Layouts)
		if err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		app.Name = in.Name
		seq[in.Name] = canonical(t, app.Analyze(Options{}))
	}

	// Paths 2 and 3: the batch engine at j=1 and j=8.
	for _, workers := range []int{1, 8} {
		br := AnalyzeBatch(inputs, BatchOptions{Workers: workers})
		if len(br.Apps) != len(inputs) {
			t.Fatalf("j=%d: %d reports for %d inputs", workers, len(br.Apps), len(inputs))
		}
		for i, rep := range br.Apps {
			if rep.Name != inputs[i].Name {
				t.Fatalf("j=%d: report %d is %q, want %q (ordering must match inputs)",
					workers, i, rep.Name, inputs[i].Name)
			}
			if rep.Err != nil {
				t.Fatalf("j=%d: %s: %v", workers, rep.Name, rep.Err)
			}
			got := canonical(t, rep.Result)
			if !bytes.Equal(got, seq[rep.Name]) {
				t.Errorf("j=%d: %s: batch solution differs from sequential solution\nbatch:\n%s\nsequential:\n%s",
					workers, rep.Name, got, seq[rep.Name])
			}
		}
	}
}

// TestBatchPanicIsolation injects a corpus entry whose build panics; it
// must surface as that one app's error while every other app completes.
func TestBatchPanicIsolation(t *testing.T) {
	inputs := corpusInputs(corpus.GenerateAll()[:3])
	bomb := BatchInput{
		Name: "Bomb",
		Load: func() (*App, error) { panic("injected corpus build failure") },
	}
	inputs = append(inputs[:2:2], append([]BatchInput{bomb}, inputs[2:]...)...)

	br := AnalyzeBatch(inputs, BatchOptions{Workers: 4})
	failed := br.Failed()
	if len(failed) != 1 || failed[0].Name != "Bomb" {
		t.Fatalf("Failed() = %v, want exactly the Bomb entry", failed)
	}
	rep := br.Apps[2]
	if rep.Name != "Bomb" || rep.Err == nil || rep.Result != nil {
		t.Fatalf("bomb report = %+v", rep)
	}
	for _, want := range []string{"panic", "injected corpus build failure"} {
		if !strings.Contains(rep.Err.Error(), want) {
			t.Errorf("bomb error %q missing %q", rep.Err, want)
		}
	}
	if br.Stats.Apps[2].Err == "" {
		t.Error("bomb stats carry no error")
	}
	for i, other := range br.Apps {
		if i == 2 {
			continue
		}
		if other.Err != nil || other.Result == nil {
			t.Errorf("%s: batch neighbor of a panicking app failed: %v", other.Name, other.Err)
		}
	}
}

// TestBatchLoadErrors: plain errors (not panics) from every input form are
// reported per-app.
func TestBatchLoadErrors(t *testing.T) {
	inputs := []BatchInput{
		{Name: "BadDir", Dir: "testdata/definitely-missing"},
		{Name: "BadSource", Sources: map[string]string{"x.alite": "class {{{"}},
		{Name: "BadLayout",
			Sources: map[string]string{"x.alite": "class A {\n}\n"},
			Layouts: map[string]string{"main": "<LinearLayout>"}},
		{Name: "Good", Dir: "testdata/notepad"},
	}
	br := AnalyzeBatch(inputs, BatchOptions{})
	if got := len(br.Failed()); got != 3 {
		t.Fatalf("Failed() = %d, want 3", got)
	}
	for i, rep := range br.Apps[:3] {
		if rep.Err == nil {
			t.Errorf("input %d (%s): no error", i, rep.Name)
		}
		if rep.Err != nil && strings.Contains(rep.Err.Error(), "panic") {
			t.Errorf("%s: plain load error reported as panic: %v", rep.Name, rep.Err)
		}
	}
	good := br.Apps[3]
	if good.Err != nil || good.Result == nil {
		t.Fatalf("notepad app failed: %v", good.Err)
	}
	if good.Result.Elapsed() <= 0 {
		t.Error("batch result lost its analysis time")
	}
}

// TestBatchStats: the engine accounts per-stage wall-clock and resolves the
// worker default.
func TestBatchStats(t *testing.T) {
	inputs := corpusInputs(corpus.GenerateAll()[:2])
	br := AnalyzeBatch(inputs, BatchOptions{Workers: -1})
	if br.Stats.Workers < 1 || br.Stats.Workers > len(inputs) {
		t.Errorf("workers = %d", br.Stats.Workers)
	}
	if br.Stats.Wall <= 0 || br.Stats.TotalWork() <= 0 || br.Stats.Speedup() <= 0 {
		t.Errorf("stats = %+v", br.Stats)
	}
	for _, a := range br.Stats.Apps {
		if a.StageWall("load") <= 0 || a.StageWall("analyze") <= 0 {
			t.Errorf("%s: missing stage stats: %+v", a.App, a.Stages)
		}
	}

	// An empty batch returns immediately rather than deadlocking.
	if empty := AnalyzeBatch(nil, BatchOptions{}); len(empty.Apps) != 0 {
		t.Errorf("empty batch produced %d reports", len(empty.Apps))
	}
}

// TestBatchNameDefaulting: an input without a name inherits the loaded
// app's name.
func TestBatchNameDefaulting(t *testing.T) {
	br := AnalyzeBatch([]BatchInput{{Dir: "testdata/notepad"}}, BatchOptions{})
	if br.Apps[0].Err != nil {
		t.Fatal(br.Apps[0].Err)
	}
	if got := br.Apps[0].Name; got != "notepad" {
		t.Errorf("name = %q, want notepad (from the directory)", got)
	}
	if got := br.Stats.Apps[0].App; got != "notepad" {
		t.Errorf("stats name = %q", got)
	}
}

// TestBatchProgress: the callback fires once per app with a monotonically
// increasing done count, serialized, and covers every input exactly once.
func TestBatchProgress(t *testing.T) {
	inputs := corpusInputs(corpus.GenerateAll()[:6])
	inputs = append(inputs, BatchInput{Name: "Bomb",
		Load: func() (*App, error) { panic("injected") }})

	var events []ProgressEvent
	br := AnalyzeBatch(inputs, BatchOptions{
		Workers: 4,
		// The contract says calls are serialized; appending without a lock
		// under -race proves it.
		Progress: func(ev ProgressEvent) { events = append(events, ev) },
	})
	if len(br.Apps) != len(inputs) {
		t.Fatalf("%d reports", len(br.Apps))
	}
	if len(events) != len(inputs) {
		t.Fatalf("%d progress events for %d inputs", len(events), len(inputs))
	}
	seen := map[int]bool{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != len(inputs) {
			t.Errorf("event %d: done=%d total=%d", i, ev.Done, ev.Total)
		}
		if seen[ev.Index] {
			t.Errorf("index %d reported twice", ev.Index)
		}
		seen[ev.Index] = true
		if (ev.Name == "Bomb") != (ev.Err != nil) {
			t.Errorf("event %+v: only the bomb should carry an error", ev)
		}
	}
}

// TestBatchTracing: a traced batch tags every event with its app label and a
// valid worker lane, brackets each app's load phase, and streams the
// solver's phase/iteration events — while leaving the solutions identical to
// an untraced run.
func TestBatchTracing(t *testing.T) {
	inputs := corpusInputs(corpus.GenerateAll()[:4])
	sink := &trace.Collect{}
	br := AnalyzeBatch(inputs, BatchOptions{Workers: 2, Tracer: trace.New(sink)})
	plain := AnalyzeBatch(inputs, BatchOptions{Workers: 2})

	for i, rep := range br.Apps {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Name, rep.Err)
		}
		got, want := canonical(t, rep.Result), canonical(t, plain.Apps[i].Result)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: tracing changed the solution", rep.Name)
		}
	}

	byApp := map[string]map[trace.Kind]int{}
	for _, ev := range sink.Events() {
		if ev.App == "" {
			t.Fatalf("unlabeled event %+v", ev)
		}
		if ev.Worker < 0 || ev.Worker >= 2 {
			t.Fatalf("event %+v: worker out of range", ev)
		}
		if byApp[ev.App] == nil {
			byApp[ev.App] = map[trace.Kind]int{}
		}
		byApp[ev.App][ev.Kind]++
	}
	if len(byApp) != len(inputs) {
		t.Fatalf("events cover %d apps, want %d", len(byApp), len(inputs))
	}
	for app, kinds := range byApp {
		if kinds[trace.KindPhaseBegin] < 3 { // load, build, solve
			t.Errorf("%s: %d phase-begin events, want >= 3", app, kinds[trace.KindPhaseBegin])
		}
		if kinds[trace.KindPhaseBegin] != kinds[trace.KindPhaseEnd] {
			t.Errorf("%s: unbalanced phases: %v", app, kinds)
		}
		if kinds[trace.KindIteration] == 0 || kinds[trace.KindRule] == 0 {
			t.Errorf("%s: no solver events: %v", app, kinds)
		}
	}
}

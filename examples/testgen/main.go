// Testgen: the automated-test-generation use case of Section 6 of the
// paper. Concolic GUI testing needs tuples (activity a, GUI object v, event
// e, handler h) where v is visible when a is active and event e on v is
// handled by h — in the cited work these models were written by hand; here
// the analysis derives them, and the example turns them into a test plan.
//
// The subject is a small two-screen task-list application defined inline:
// a list activity with an "add" button opening a (simulated) editor dialog,
// plus rows inflated on demand with both programmatic listeners and a
// declarative android:onClick handler.
package main

import (
	"fmt"
	"log"

	"gator"
)

const mainSrc = `
class TaskListActivity extends Activity {
	View list;

	void onCreate() {
		this.setContentView(R.layout.task_list);
		View l = this.findViewById(R.id.list);
		this.list = l;
		View add = this.findViewById(R.id.add_button);
		AddTaskListener al = new AddTaskListener(this);
		add.setOnClickListener(al);
		View clear = this.findViewById(R.id.clear_button);
		ClearListener cl = new ClearListener(this);
		clear.setOnLongClickListener(cl);
	}

	void addRow() {
		LayoutInflater nf = this.getLayoutInflater();
		ViewGroup lg = (ViewGroup) this.list;
		View row = nf.inflate(R.layout.task_row, lg);
		View done = row.findViewById(R.id.done_box);
		DoneListener dl = new DoneListener();
		done.setOnClickListener(dl);
	}

	void onCreateOptionsMenu(Menu menu) {
		MenuItem sortItem = menu.add(R.id.menu_sort);
		MenuItem clearItem = menu.add(R.id.menu_clear_done);
	}

	void onOptionsItemSelected(MenuItem item) {
	}

	void openHelp(View v) {
		HelpDialog d = new HelpDialog();
	}
}

class HelpDialog extends Dialog {
	void onCreate() {
		this.setContentView(R.layout.help);
	}
}

class AddTaskListener implements OnClickListener {
	TaskListActivity owner;
	AddTaskListener(TaskListActivity a) { this.owner = a; }
	void onClick(View v) {
		TaskListActivity a = this.owner;
		a.addRow();
	}
}

class ClearListener implements OnLongClickListener {
	TaskListActivity owner;
	ClearListener(TaskListActivity a) { this.owner = a; }
	void onLongClick(View v) {
	}
}

class DoneListener implements OnClickListener {
	void onClick(View v) {
		View row = v.findViewById(R.id.task_label);
	}
}
`

var layouts = map[string]string{
	"task_list": `
<LinearLayout android:id="@+id/screen">
	<LinearLayout android:id="@+id/list"/>
	<Button android:id="@+id/add_button"/>
	<Button android:id="@+id/clear_button"/>
	<ImageButton android:id="@+id/help_button" android:onClick="openHelp"/>
</LinearLayout>`,
	"task_row": `
<LinearLayout>
	<CheckBox android:id="@+id/done_box"/>
	<TextView android:id="@+id/task_label"/>
</LinearLayout>`,
	"help": `<TextView android:id="@+id/help_text"/>`,
}

func main() {
	app, err := gator.Load(map[string]string{"tasklist.alite": mainSrc}, layouts)
	if err != nil {
		log.Fatal(err)
	}
	app.Name = "TaskList"
	res := app.Analyze(gator.Options{})

	tuples := res.EventTuples()
	fmt.Printf("== %s: %d event tuples derived statically\n\n", app.Name, len(tuples))
	for _, t := range tuples {
		fmt.Printf("  (%-18s %-32s %-10s %s)\n",
			t.Activity+",", fmt.Sprintf("%s@%s,", t.View.Class, t.View.Origin), t.Event+",", t.Handler)
	}

	// Turn the tuples into a simple test plan: one test per (activity,
	// event) group, firing each handler-bearing view once.
	fmt.Println("\n== Generated test plan")
	byActivity := map[string][]gator.EventTuple{}
	var order []string
	for _, t := range tuples {
		if _, ok := byActivity[t.Activity]; !ok {
			order = append(order, t.Activity)
		}
		byActivity[t.Activity] = append(byActivity[t.Activity], t)
	}
	caseNum := 1
	for _, act := range order {
		fmt.Printf("\nTest case %d: exercise %s\n", caseNum, act)
		caseNum++
		fmt.Printf("  1. launch %s\n", act)
		step := 2
		for _, t := range byActivity[act] {
			target := t.View.ID
			if target == "" {
				target = t.View.Origin
			}
			fmt.Printf("  %d. fire %q on view %q  (dispatches to %s)\n", step, t.Event, target, t.Handler)
			step++
		}
	}

	// Options-menu test steps.
	menus := res.MenuEntries()
	if len(menus) > 0 {
		fmt.Printf("\nTest case %d: exercise the options menu\n", caseNum)
		fmt.Printf("  1. launch %s\n", menus[0].Activity)
		for i, e := range menus {
			fmt.Printf("  %d. select menu item %q (dispatches to %s)\n", i+2, e.ItemID, e.Handler)
		}
	}

	// Check the plan against the concrete interpreter: everything the
	// analysis promises should be dispatchable.
	rep := res.Explore(1)
	fmt.Printf("\n== Dynamic check: sound=%v, %d op sites observed, %d matched exactly\n",
		rep.Sound, rep.ObservedSites, rep.PerfectSites)
}

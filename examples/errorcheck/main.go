// Errorcheck: the static error checking application of Section 6 of the
// paper. The subject application contains six seeded GUI defects that only
// a reference analysis can see — each depends on which views actually flow
// where, not on syntax. The example runs the checkers and shows that every
// seeded defect is caught and explained.
package main

import (
	"fmt"
	"log"

	"gator"
)

const buggySrc = `
class SettingsListener implements OnClickListener {
	void onClick(View v) {
		// BUG 6 (unfired-handler): this listener is allocated below but
		// never registered on any view.
		View w = v.findFocus();
	}
}

class SaveListener implements OnClickListener {
	void onClick(View v) { }
}

class MainActivity extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		// BUG 1 (dangling-findview): detail_title only exists in the
		// detail layout, which this activity never inflates.
		View title = this.findViewById(R.id.detail_title);

		View save = this.findViewById(R.id.save_button);
		SaveListener sl = new SaveListener();
		save.setOnClickListener(sl);

		SettingsListener never = new SettingsListener();

		// BUG 3 (invisible-listener-view): created, given a listener, but
		// never attached to the content tree.
		Button ghost = new Button();
		SaveListener gl = new SaveListener();
		ghost.setOnClickListener(gl);

		// BUG 4 (duplicate-id): a second view with save_button's id.
		Button clone = new Button();
		clone.setId(R.id.save_button);
		LinearLayout root = (LinearLayout) this.findViewById(R.id.root);
		root.addView(clone);
	}

	// BUG 5 (unhandled-menu): items added, no onOptionsItemSelected.
	void onCreateOptionsMenu(Menu menu) {
		MenuItem save = menu.add(R.id.menu_save);
	}
}

class BrokenActivity extends Activity {
	void onCreate() {
		// BUG 2 (missing-content-view): findViewById before any
		// setContentView.
		View v = this.findViewById(R.id.root);
	}
}
`

var buggyLayouts = map[string]string{
	"main": `<LinearLayout android:id="@+id/root">
		<Button android:id="@+id/save_button"/>
		<TextView android:id="@+id/forgotten"/>
	</LinearLayout>`,
	"detail": `<LinearLayout><TextView android:id="@+id/detail_title"/></LinearLayout>`,
}

func main() {
	app, err := gator.Load(map[string]string{"buggy.alite": buggySrc}, buggyLayouts)
	if err != nil {
		log.Fatal(err)
	}
	app.Name = "BuggyApp"
	res := app.Analyze(gator.Options{})

	findings := res.Check()
	fmt.Printf("== %d findings in %s\n\n", len(findings), app.Name)
	byCheck := map[string]int{}
	for _, f := range findings {
		where := f.Pos
		if where == "" {
			where = "(structural)"
		}
		fmt.Printf("  %-8s %-24s %s\n      at %s\n", f.Severity+":", f.Check, f.Msg, where)
		byCheck[f.Check]++
	}

	fmt.Println("\n== Seeded defects vs. detections")
	for _, want := range []string{
		"dangling-findview", "missing-content-view", "invisible-listener-view",
		"duplicate-id", "unhandled-menu", "unfired-handler", "unused-view-id",
	} {
		status := "MISSED"
		if byCheck[want] > 0 {
			status = "caught"
		}
		fmt.Printf("  %-24s %s (%d)\n", want, status, byCheck[want])
	}
}

// Transitions: builds the activity transition graph (ATG) that Section 6 of
// the paper motivates. The paper's critique of SCanDroid/A3E-era models is
// that transitions are usually triggered inside event handlers defined in
// listener classes *outside* the activity, so a sound ATG needs exactly what
// the GUI reference analysis provides: (1) activity-view associations,
// (2) view-handler associations, and (3) the activities those handlers
// start. This example runs the full chain on a four-screen application and
// prints the ATG plus the (activity, view, event) triggers for every edge.
package main

import (
	"fmt"
	"log"

	"gator"
)

const appSrc = `
class HomeActivity extends Activity {
	void onCreate() {
		this.setContentView(R.layout.home);
		View browse = this.findViewById(R.id.browse);
		OpenList ol = new OpenList(this);
		browse.setOnClickListener(ol);
		View prefs = this.findViewById(R.id.prefs);
		OpenSettings os = new OpenSettings(this);
		prefs.setOnClickListener(os);
	}
}

class ListActivityScreen extends Activity {
	void onCreate() {
		this.setContentView(R.layout.listscreen);
		View row = this.findViewById(R.id.row);
		OpenDetail od = new OpenDetail(this);
		row.setOnClickListener(od);
	}
	void goHome(View v) {
		Intent i = new Intent(HomeActivity.class);
		this.startActivity(i);
	}
}

class DetailActivity extends Activity {
	void onCreate() {
		this.setContentView(R.layout.detail);
	}
}

class SettingsScreen extends Activity {
	void onCreate() {
	}
}

class OpenList implements OnClickListener {
	HomeActivity owner;
	OpenList(HomeActivity a) { this.owner = a; }
	void onClick(View v) {
		HomeActivity a = this.owner;
		Intent i = new Intent(ListActivityScreen.class);
		a.startActivity(i);
	}
}

class OpenSettings implements OnClickListener {
	HomeActivity owner;
	OpenSettings(HomeActivity a) { this.owner = a; }
	void onClick(View v) {
		HomeActivity a = this.owner;
		Intent i = new Intent(SettingsScreen.class);
		a.startActivity(i);
	}
}

class OpenDetail implements OnClickListener {
	ListActivityScreen owner;
	OpenDetail(ListActivityScreen a) { this.owner = a; }
	void onClick(View v) {
		ListActivityScreen a = this.owner;
		Intent i = new Intent(DetailActivity.class);
		a.startActivity(i);
	}
}
`

var appLayouts = map[string]string{
	"home": `<LinearLayout>
		<Button android:id="@+id/browse"/>
		<Button android:id="@+id/prefs"/>
	</LinearLayout>`,
	"listscreen": `<LinearLayout>
		<TextView android:id="@+id/row"/>
		<Button android:id="@+id/home" android:onClick="goHome"/>
	</LinearLayout>`,
	"detail": `<TextView android:id="@+id/body"/>`,
}

func main() {
	app, err := gator.Load(map[string]string{"app.alite": appSrc}, appLayouts)
	if err != nil {
		log.Fatal(err)
	}
	app.Name = "Navigator"
	res := app.Analyze(gator.Options{})

	fmt.Println("== Activity transition graph")
	transitions := res.Transitions()
	for _, tr := range transitions {
		fmt.Printf("  %-22s -> %-22s (in %s)\n", tr.Source, tr.Target, tr.Via)
	}

	// Join transitions with event tuples: which GUI action triggers each
	// edge? A handler method triggers an edge when the edge's Via is that
	// handler (or the handler's class hosts it).
	fmt.Println("\n== GUI triggers per edge")
	tuples := res.EventTuples()
	for _, tr := range transitions {
		fmt.Printf("  %s -> %s:\n", tr.Source, tr.Target)
		found := false
		for _, tu := range tuples {
			if tu.Handler == tr.Via {
				fmt.Printf("      %q on %s(id=%s) while %s is active\n",
					tu.Event, tu.View.Class, tu.View.ID, tu.Activity)
				found = true
			}
		}
		if !found {
			fmt.Printf("      (launched from %s directly, e.g. lifecycle code)\n", tr.Via)
		}
	}

	// Validate against the dynamic oracle.
	rep := res.Explore(3)
	fmt.Printf("\n== Dynamic check: sound=%v (%d op sites observed)\n", rep.Sound, rep.ObservedSites)
}

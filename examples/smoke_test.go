// Package examples holds runnable demonstration programs; this test keeps
// them honest. Every example under examples/ is compiled and executed, and
// must exit 0 with non-empty output — so the demo programs cannot silently
// rot as the API evolves.
package examples

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// expectedOutput pins one load-bearing line per example, so a demo that
// runs but prints garbage still fails.
var expectedOutput = map[string]string{
	"quickstart":    "button_esc",
	"transitions":   "->",
	"errorcheck":    "dangling",
	"securityaudit": "password",
	"testgen":       "test case",
	"explorer":      "sound",
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("example exec test skipped in -short mode")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		// Data-only directories (e.g. buggyapp, an ALite demo app for
		// `gator -checks`) hold no Go program to run.
		if !hasGoFiles(t, name) {
			continue
		}
		ran++
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+name)
			cmd.Dir = ".." // module root
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example exited nonzero: %v\n%s", err, out)
			}
			if len(strings.TrimSpace(string(out))) == 0 {
				t.Fatal("example produced no output")
			}
			if want, ok := expectedOutput[name]; ok && !strings.Contains(strings.ToLower(string(out)), want) {
				t.Errorf("output missing %q:\n%s", want, out)
			}
		})
	}
	if ran == 0 {
		t.Fatal("no example directories found")
	}
}

func hasGoFiles(t *testing.T, dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

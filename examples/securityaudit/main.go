// Securityaudit: the security-analysis use case of Section 6 of the paper.
// Taint analyses such as FlowDroid need to know which GUI objects are taint
// sources (e.g. password fields) and which event handlers those objects'
// data flows through. This example statically audits a small login
// application: it finds the sensitive input widgets, determines every
// handler that can reach them (directly via the callback parameter, or by
// looking them up through the activity), and reports the handlers an
// auditor should inspect.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	"gator"
)

const loginSrc = `
class LoginActivity extends Activity {
	View passwordBox;

	void onCreate() {
		this.setContentView(R.layout.login);
		View pw = this.findViewById(R.id.password);
		this.passwordBox = pw;
		View user = this.findViewById(R.id.username);
		View submit = this.findViewById(R.id.submit);
		SubmitListener sl = new SubmitListener(this);
		submit.setOnClickListener(sl);
		View reveal = this.findViewById(R.id.reveal);
		RevealListener rl = new RevealListener(this);
		reveal.setOnClickListener(rl);
	}

	void showHints(View v) {
	}
}

class SubmitListener implements OnClickListener {
	LoginActivity owner;
	SubmitListener(LoginActivity a) { this.owner = a; }
	void onClick(View v) {
		LoginActivity a = this.owner;
		View pw = a.passwordBox;
		View user = a.findViewById(R.id.username);
		// pw/user text would be read and sent over the network here.
	}
}

class RevealListener implements OnClickListener {
	LoginActivity owner;
	RevealListener(LoginActivity a) { this.owner = a; }
	void onClick(View v) {
		LoginActivity a = this.owner;
		View pw = a.findViewById(R.id.password);
		// toggles password visibility
	}
}
`

const loginLayout = `
<LinearLayout android:id="@+id/form">
	<EditText android:id="@+id/username"/>
	<EditText android:id="@+id/password"/>
	<Button android:id="@+id/submit"/>
	<ImageButton android:id="@+id/reveal"/>
	<Button android:id="@+id/hints" android:onClick="showHints"/>
</LinearLayout>`

func main() {
	app, err := gator.Load(
		map[string]string{"login.alite": loginSrc},
		map[string]string{"login": loginLayout})
	if err != nil {
		log.Fatal(err)
	}
	app.Name = "Login"
	res := app.Analyze(gator.Options{})

	// 1. Sensitive sources: EditText views (user-entered text).
	fmt.Println("== Sensitive input widgets (EditText views)")
	var sources []gator.View
	for _, v := range res.Views() {
		if v.Class == "EditText" {
			sources = append(sources, v)
			fmt.Printf("  %s id=%s (%s)\n", v.Class, v.ID, v.Origin)
		}
	}

	// 2. Handlers that can reach each source: scan every handler method's
	// variables for the source view.
	fmt.Println("\n== Handlers reaching each sensitive widget")
	type reach struct{ handler, via string }
	reached := map[string][]reach{}
	for _, t := range res.EventTuples() {
		parts := strings.SplitN(t.Handler, ".", 2)
		if len(parts) != 2 {
			continue
		}
		cls, method := parts[0], parts[1]
		// Which variables of the handler hold a sensitive view?
		for _, varName := range []string{"v", "pw", "user"} {
			views, err := res.VarViews(cls, method, varName)
			if err != nil {
				continue
			}
			for _, hv := range views {
				for _, s := range sources {
					if hv.Origin == s.Origin {
						reached[s.ID] = append(reached[s.ID], reach{t.Handler, varName})
					}
				}
			}
		}
	}
	var ids []string
	for id := range reached {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %s:\n", id)
		seen := map[reach]bool{}
		for _, r := range reached[id] {
			if seen[r] {
				continue
			}
			seen[r] = true
			fmt.Printf("    reachable in %-28s (via variable %q)\n", r.handler, r.via)
		}
	}

	// 3. Audit summary: every event entry point and whether it touches a
	// sensitive widget.
	fmt.Println("\n== Event entry points")
	touches := map[string]bool{}
	for _, rs := range reached {
		for _, r := range rs {
			touches[r.handler] = true
		}
	}
	for _, t := range res.EventTuples() {
		mark := " "
		if touches[t.Handler] {
			mark = "!"
		}
		fmt.Printf("  [%s] %s on %s(id=%s) -> %s\n", mark, t.Event, t.View.Class, t.View.ID, t.Handler)
	}
	fmt.Println("\n('!' = handler can reference password/username widgets; audit its data flow)")
}

// Explorer: the run-time exploration use case of Section 6 (A3E-style
// systematic testing). The static solution enumerates the GUI event space;
// the concrete interpreter then explores the application under several
// seeds, and the example reports how much of the statically predicted event
// space the exploration covered — plus the soundness check in the other
// direction (everything observed must be predicted).
//
// The subject is one of the synthetic Table 1 benchmark applications
// (default: TippyTipper), selectable with -app.
package main

import (
	"flag"
	"fmt"
	"log"

	"gator"
	"gator/internal/corpus"
	"gator/internal/layout"
)

func main() {
	appName := flag.String("app", "TippyTipper", "benchmark application to explore")
	seeds := flag.Int("seeds", 5, "number of exploration seeds")
	flag.Parse()

	spec, ok := corpus.SpecByName(*appName)
	if !ok {
		log.Fatalf("unknown benchmark app %q", *appName)
	}
	gen := corpus.Generate(spec)
	sources := map[string]string{gen.Name + ".alite": gen.Source}
	layoutXML := map[string]string{}
	for name, l := range gen.Layouts {
		layoutXML[name] = layout.Render(l)
	}

	app, err := gator.Load(sources, layoutXML)
	if err != nil {
		log.Fatal(err)
	}
	app.Name = *appName
	res := app.Analyze(gator.Options{})

	tuples := res.EventTuples()
	fmt.Printf("== %s: static event space = %d (activity, view, event, handler) tuples\n",
		app.Name, len(tuples))

	t1 := res.Table1()
	fmt.Printf("   %d classes, %d methods, %d layouts, %d views, analysis %v\n\n",
		t1.Classes, t1.Methods, t1.LayoutIDs, t1.ViewsInflated+t1.ViewsAllocated, res.Elapsed())

	totalSites, totalPerfect := 0, 0
	for seed := int64(1); seed <= int64(*seeds); seed++ {
		rep := res.Explore(seed)
		status := "SOUND"
		if !rep.Sound {
			status = fmt.Sprintf("UNSOUND (%d violations)", len(rep.Violations))
		}
		fmt.Printf("  seed %d: %s — %d op sites executed, %d matched the static solution exactly, %d steps\n",
			seed, status, rep.ObservedSites, rep.PerfectSites, rep.Steps)
		totalSites += rep.ObservedSites
		totalPerfect += rep.PerfectSites
		if !rep.Sound {
			for _, v := range rep.Violations {
				fmt.Println("    violation:", v)
			}
		}
	}
	if totalSites > 0 {
		fmt.Printf("\n== Exactness across seeds: %d/%d sites (%.1f%%)\n",
			totalPerfect, totalSites, 100*float64(totalPerfect)/float64(totalSites))
	}
}

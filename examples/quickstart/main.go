// Quickstart: analyze the paper's running example (Figure 1, a ConnectBot
// fragment) and walk through the solution the paper derives in Sections 2
// and 4 — which views exist, how the hierarchy fits together, and which
// handler responds to the ESC button.
package main

import (
	"fmt"
	"log"

	"gator"
	"gator/internal/corpus"
)

func main() {
	app, err := gator.Load(
		map[string]string{"connectbot.alite": corpus.Figure1Source},
		map[string]string{
			"act_console":   corpus.Figure1ActConsoleXML,
			"item_terminal": corpus.Figure1ItemTerminalXML,
		})
	if err != nil {
		log.Fatal(err)
	}
	app.Name = "ConnectBot (Figure 1)"
	res := app.Analyze(gator.Options{})

	fmt.Printf("== %s analyzed in %v (%d fixpoint rounds)\n\n", app.Name, res.Elapsed(), res.Iterations())

	fmt.Println("Abstract view objects (paper: six inflation nodes + one allocation):")
	for _, v := range res.Views() {
		id := v.ID
		if id == "" {
			id = "(no id)"
		}
		fmt.Printf("  %-16s %-26s %s\n", v.Class, v.Origin, id)
	}

	fmt.Println("\nActivity content roots (rule INFLATE2):")
	for _, a := range res.Activities() {
		for _, r := range a.Roots {
			fmt.Printf("  %s => %s (%s)\n", a.Activity, r.Class, r.Origin)
		}
	}

	fmt.Println("\nView hierarchy (layout edges + AddView2 edges):")
	for _, e := range res.Hierarchy() {
		fmt.Printf("  %-32s => %s\n",
			fmt.Sprintf("%s(%s)", e.Parent.Class, e.Parent.Origin),
			fmt.Sprintf("%s(%s)", e.Child.Class, e.Child.Origin))
	}

	fmt.Println("\nVariable solutions from the paper's walkthrough:")
	for _, q := range []struct{ class, method, v, note string }{
		{"ConsoleActivity", "onCreate", "g", "findViewById(R.id.button_esc) -> the ImageView"},
		{"ConsoleActivity", "addNewTerminalView", "k", "inflate(item_terminal) -> its root"},
		{"ConsoleActivity", "findCurrentView", "c", "getCurrentView -> flipper children only"},
		{"ConsoleActivity", "findCurrentView", "d", "findViewById(console_flip) -> the TerminalView"},
		{"EscapeButtonListener", "onClick", "r", "callback parameter -> the ESC ImageView"},
	} {
		views, err := res.VarViews(q.class, q.method, q.v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  pts(%s.%s:%s)  [%s]\n", q.class, q.method, q.v, q.note)
		for _, v := range views {
			fmt.Printf("      %s (%s)\n", v.Class, v.Origin)
		}
	}

	fmt.Println("\nEvent tuples (activity, view, event, handler):")
	for _, t := range res.EventTuples() {
		fmt.Printf("  (%s, %s@%s, %s, %s)\n", t.Activity, t.View.Class, t.View.Origin, t.Event, t.Handler)
	}
}

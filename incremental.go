package gator

import (
	"errors"
	"sort"
	"time"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/ir"
	"gator/internal/trace"
)

// IncrementalStats describes how an AnalyzeIncremental run was computed.
type IncrementalStats struct {
	// Mode is "warm" when the previous solution was delta-resolved,
	// "scratch" when the analysis fell back to a full solve, or "unchanged"
	// when the inputs were byte-identical to the previous run.
	Mode string
	// Reason explains a scratch fallback; empty otherwise.
	Reason string
	// Retained and Retracted count previous-solution facts that survived
	// the edit and facts whose derivations reached a dirty unit.
	Retained  int
	Retracted int
	// DirtyUnits are the edited compilation units.
	DirtyUnits []string
}

// Incremental reports how this result was computed. For results of Analyze
// the stats are zero; AnalyzeIncremental always fills in Mode.
func (r *Result) Incremental() IncrementalStats { return r.incr }

// Stale reports whether this result has been consumed by a later
// AnalyzeIncremental call that patched the underlying program in place.
// Queries on a stale result are unreliable; see DESIGN.md.
func (r *Result) Stale() bool { return r.invalid }

// ErrStaleResult is returned when a stale result is passed as the previous
// solution.
var ErrStaleResult = errors.New("gator: previous result is stale (already consumed by a later incremental analysis)")

// AnalyzeIncremental re-analyzes an application after an edit, reusing as
// much of prev as the edit allows. sources and layouts are the full post-edit
// input (the same maps Load takes); the edit is discovered by diffing them
// against what prev analyzed. The returned solution is equal to what
// Load+Analyze of the post-edit input computes — every content-ordered query
// (Views, Hierarchy, EventTuples, SARIF, ...) renders byte-identically.
//
// The fast path applies when only method bodies changed in known source
// files: the edited files are re-lowered in place (ir.PatchFile) and the
// solver retracts only facts whose derivation reached an edited file
// (core.AnalyzeIncremental). That path consumes prev — the previous result
// shares the patched program and becomes Stale; passing it again returns
// ErrStaleResult. Any other edit (layout changes, added or removed files,
// declaration-shape changes) rebuilds from scratch, reusing c's parse cache,
// and leaves prev intact.
//
// prev == nil is allowed and performs the initial full analysis, so a watch
// loop can call this uniformly. c may be nil to disable parse caching.
func AnalyzeIncremental(prev *Result, sources, layouts map[string]string, opts Options, c *Cache) (*Result, error) {
	if prev == nil {
		return analyzeFull(nil, sources, layouts, opts, c, "no previous result")
	}
	if prev.invalid {
		return nil, ErrStaleResult
	}
	app := prev.app
	if !mapsEqual(app.layouts, layouts) {
		// Layout linking resolves parsed layouts in place during ir.Build, so
		// there is no patched middle ground for layout edits.
		return analyzeFull(prev, sources, layouts, opts, c, "layouts changed")
	}
	var dirty []string
	for name, src := range sources {
		old, ok := app.sources[name]
		if !ok {
			return analyzeFull(prev, sources, layouts, opts, c, "file set changed")
		}
		if old != src {
			dirty = append(dirty, name)
		}
	}
	if len(sources) != len(app.sources) {
		return analyzeFull(prev, sources, layouts, opts, c, "file set changed")
	}
	if len(dirty) == 0 {
		prev.incr = IncrementalStats{Mode: "unchanged"}
		return prev, nil
	}
	sort.Strings(dirty)

	// Parse the edited files; a declaration-shape change (new method, renamed
	// field, changed hierarchy) invalidates clean-file IR pointers, so only
	// body-confined edits may patch in place.
	files := make([]*alite.File, 0, len(dirty))
	for _, name := range dirty {
		f, err := parseCached(name, sources[name], opts.Trace, c)
		if err != nil {
			return nil, err
		}
		if ir.ShapeSignature(f) != app.shapes[name] {
			return analyzeFull(prev, sources, layouts, opts, c, "declaration shape changed: "+name)
		}
		files = append(files, f)
	}

	// Body-only edit: re-lower the dirty files inside prev's program. This
	// mutates the program prev's facts refer to, so prev is consumed either
	// way — even if patching fails and we fall back to a fresh build.
	start := time.Now()
	prog := app.prog
	prev.invalid = true
	for _, f := range files {
		if err := ir.PatchFile(prog, f); err != nil {
			return analyzeFull(prev, sources, layouts, opts, c, "patch failed: "+err.Error())
		}
	}
	res := core.AnalyzeIncremental(prog, opts.internal(), prev.res, dirty)

	newSources := make(map[string]string, len(sources))
	for n, s := range sources {
		newSources[n] = s
	}
	newShapes := make(map[string]string, len(app.shapes))
	for n, s := range app.shapes {
		newShapes[n] = s
	}
	for i, name := range dirty {
		newShapes[name] = ir.ShapeSignature(files[i])
	}
	newApp := &App{Name: app.Name, prog: prog, sources: newSources, layouts: app.layouts, shapes: newShapes}
	return &Result{
		app:     newApp,
		res:     res,
		elapsed: time.Since(start),
		tr:      opts.Trace,
		incr:    IncrementalStats(res.Incr),
	}, nil
}

// analyzeFull is the scratch path: a complete load and solve, still tracking
// unit dependencies so the next edit can go warm, and still sharing c's
// parse cache.
func analyzeFull(prev *Result, sources, layouts map[string]string, opts Options, c *Cache, reason string) (*Result, error) {
	h0, m0 := c.ParseStats()
	app, err := LoadCached(sources, layouts, c)
	if err != nil {
		return nil, err
	}
	if prev != nil {
		app.Name = prev.app.Name
	}
	emitParseProbes(opts.Trace, c, h0, m0)
	iopts := opts.internal()
	iopts.Incremental = true
	start := time.Now()
	res := core.Analyze(app.prog, iopts)
	return &Result{
		app:     app,
		res:     res,
		elapsed: time.Since(start),
		tr:      opts.Trace,
		incr:    IncrementalStats{Mode: "scratch", Reason: reason},
	}, nil
}

// parseCached parses one source file through the shared cache when present,
// emitting a cache-probe trace event per lookup.
func parseCached(name, src string, tr *trace.Scope, c *Cache) (*alite.File, error) {
	if c == nil {
		return alite.Parse(name, src)
	}
	f, hit, err := c.parse.Parse(name, src)
	if err != nil {
		return nil, err
	}
	tr.CacheProbe("parse", hit)
	return f, nil
}

// emitParseProbes replays the cache's hit/miss delta from a bulk load as
// individual probe events on the trace.
func emitParseProbes(tr *trace.Scope, c *Cache, h0, m0 int64) {
	if c == nil || !tr.Enabled() {
		return
	}
	h1, m1 := c.ParseStats()
	for i := h0; i < h1; i++ {
		tr.CacheProbe("parse", true)
	}
	for i := m0; i < m1; i++ {
		tr.CacheProbe("parse", false)
	}
}

func mapsEqual(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

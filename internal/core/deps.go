package core

// Unit-dependency tracking, the substrate of incremental re-solving
// (Options.Incremental). Every compilation unit of an application — each
// source file and each layout — gets one bit of a paged bitset. Every
// derived fact records the union of (a) the units its deriving rule
// application reads directly (the file containing the statement or
// operation, the layout being inflated, the file of a callee whose body the
// rule inspects) and (b) the unit sets of its premise facts. Because rules
// fire only after their premises hold, premises are always tracked before
// conclusions, and the union is a transitive over-approximation of every
// input the fact's derivation touched.
//
// On an edit, AnalyzeIncremental computes the dirty-unit mask and retracts,
// in place, the facts whose bit set intersects it (plus facts on nodes the
// rebuild replaces); the surviving fact base stays in the adopted graph and
// the solver runs the Section 4.2 rules to a new fixed point. Soundness of
// retention: a fact whose recorded derivation touched no dirty unit replays
// verbatim against the edited program, so it belongs to the new least model;
// keeping a subset of the least model on top of the re-derived base cannot
// change the monotone fixpoint. Over-retraction is always safe — a retracted
// fact that still holds is simply re-derived.

import (
	"sort"

	"gator/internal/ir"
)

// unitBits is a set of compilation units, one bit per unit. The first 64
// bits live inline so applications with at most 64 units (the common case)
// never allocate; larger applications spill into overflow words. Values are
// immutable after creation — or returns a fresh value and may share overflow
// storage with an operand — so masks can be stored, copied, and read from
// concurrent shards without cloning.
type unitBits struct {
	lo uint64
	hi []uint64 // bits 64 and up; nil when the app fits in 64 units
}

// isZero reports the empty set.
func (b unitBits) isZero() bool { return b.lo == 0 && len(b.hi) == 0 }

// or returns the union of b and o.
func (b unitBits) or(o unitBits) unitBits {
	if len(o.hi) == 0 {
		if len(b.hi) == 0 {
			return unitBits{lo: b.lo | o.lo}
		}
		return unitBits{lo: b.lo | o.lo, hi: b.hi}
	}
	if len(b.hi) == 0 {
		return unitBits{lo: b.lo | o.lo, hi: o.hi}
	}
	long, short := b.hi, o.hi
	if len(short) > len(long) {
		long, short = short, long
	}
	// Containment fast path: when every word of the shorter operand is
	// already present in the longer one, share the longer storage. Masks
	// mostly grow by absorbing already-seen premise sets, so this saves the
	// copy on the hot record path.
	contained := true
	for i, w := range short {
		if long[i]|w != long[i] {
			contained = false
			break
		}
	}
	if contained {
		return unitBits{lo: b.lo | o.lo, hi: long}
	}
	merged := make([]uint64, len(long))
	copy(merged, long)
	for i, w := range short {
		merged[i] |= w
	}
	return unitBits{lo: b.lo | o.lo, hi: merged}
}

// intersects reports whether b and o share a unit.
func (b unitBits) intersects(o unitBits) bool {
	if b.lo&o.lo != 0 {
		return true
	}
	n := len(b.hi)
	if len(o.hi) < n {
		n = len(o.hi)
	}
	for i := 0; i < n; i++ {
		if b.hi[i]&o.hi[i] != 0 {
			return true
		}
	}
	return false
}

// unitTable assigns each compilation unit of a program a bit position:
// source files in sorted order, then layouts (as "layout:<name>") in sorted
// order. The assignment is derived purely from the unit names, so two
// programs over the same file and layout sets — e.g. a program and its
// patched successor — agree on every bit. There is no cap on the unit
// count: positions past 63 land in the paged overflow words.
type unitTable struct {
	index map[string]int
	names []string
	masks []unitBits // precomputed singleton per position; shared, immutable
}

// newUnitTable builds the unit table for p.
func newUnitTable(p *ir.Program) *unitTable {
	seen := map[string]bool{}
	var names []string
	for _, f := range p.SourceFiles() {
		if !seen[f] {
			seen[f] = true
			names = append(names, f)
		}
	}
	var layouts []string
	for name := range p.Layouts {
		layouts = append(layouts, "layout:"+name)
	}
	sort.Strings(names)
	sort.Strings(layouts)
	names = append(names, layouts...)
	t := &unitTable{
		index: make(map[string]int, len(names)),
		names: names,
		masks: make([]unitBits, len(names)),
	}
	for i, n := range names {
		t.index[n] = i
		if i < 64 {
			t.masks[i] = unitBits{lo: 1 << uint(i)}
		} else {
			hi := make([]uint64, (i-64)/64+1)
			hi[(i-64)/64] = 1 << uint((i-64)%64)
			t.masks[i] = unitBits{hi: hi}
		}
	}
	return t
}

// bit returns the mask of the named unit, or the empty set for unknown
// names (platform code, synthesized positions). The returned mask shares
// the table's precomputed storage, so lookups never allocate.
func (t *unitTable) bit(name string) unitBits {
	if t == nil || name == "" {
		return unitBits{}
	}
	i, ok := t.index[name]
	if !ok {
		return unitBits{}
	}
	return t.masks[i]
}

// equal reports whether two tables assign identical bits.
func (t *unitTable) equal(o *unitTable) bool {
	if t == nil || o == nil || len(t.names) != len(o.names) {
		return false
	}
	for i, n := range t.names {
		if o.names[i] != n {
			return false
		}
	}
	return true
}

// unitOf returns the unit mask of the source file declaring m's class
// (0 for platform methods).
func (a *analysis) unitOf(m *ir.Method) unitBits {
	if a.units == nil || m == nil || m.Class.IsPlatform {
		return unitBits{}
	}
	return a.units.bit(m.Class.Pos.File)
}

// layoutUnit returns the unit mask of a layout.
func (a *analysis) layoutUnit(name string) unitBits {
	if a.units == nil {
		return unitBits{}
	}
	return a.units.bit("layout:" + name)
}

// depTracker records, per fact, the transitive unit-dependency mask of its
// first derivation, in derivation order. masks mirrors order index-for-index
// so the retraction scan reads straight arrays; bits is the dedup gate and
// the premise-mask lookup.
type depTracker struct {
	bits  map[Fact]unitBits
	order []Fact
	masks []unitBits
}

func newDepTracker() *depTracker {
	return &depTracker{bits: map[Fact]unitBits{}}
}

// record tracks a newly derived fact: the rule-site units ORed with every
// premise's tracked mask. First derivation wins, keeping the tracker
// consistent with the provenance DAG's minimality contract.
func (d *depTracker) record(f Fact, units unitBits, premises []Fact) {
	if _, ok := d.bits[f]; ok {
		return
	}
	for _, p := range premises {
		units = units.or(d.bits[p])
	}
	d.bits[f] = units
	d.order = append(d.order, f)
	d.masks = append(d.masks, units)
}

// record registers one derived fact with both trackers: the unit-dependency
// tracker (Options.Incremental) and the provenance DAG (Options.Provenance).
// units are the rule-site units only; premise units are inherited through
// the tracker. Call sites guard with a.tracking so the disabled path stays
// allocation-free.
func (a *analysis) record(f Fact, rule string, units unitBits, premises ...Fact) {
	if a.dep != nil {
		a.dep.record(f, units, premises)
	}
	if a.rec != nil {
		a.rec.record(f, rule, premises...)
	}
}

package core

import (
	"fmt"
	"testing"

	"gator/internal/alite"
	"gator/internal/corpus"
	"gator/internal/ir"
	"gator/internal/layout"
)

// trivialProgram builds a program of n source files and no layouts, so the
// unit table assigns exactly n bit positions.
func trivialProgram(t *testing.T, n int) *ir.Program {
	t.Helper()
	files := make([]*alite.File, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("u%03d.alite", i)
		files = append(files, alite.MustParse(name, fmt.Sprintf("class U%03d {\n}\n", i)))
	}
	p, err := ir.Build(files, map[string]*layout.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestUnitBitsPaging pins the paged-bitset behavior at the word boundary
// and far past it. Unit counts of 63 and 64 stay inline (no overflow
// allocation); 65 and 512 spill into overflow words. At every size the
// masks must be singletons: pairwise disjoint and jointly complete.
// This is the regression test for the former 64-unit budget, which
// silently disabled incremental tracking for larger applications.
func TestUnitBitsPaging(t *testing.T) {
	for _, n := range []int{63, 64, 65, 512} {
		n := n
		t.Run(fmt.Sprintf("units%d", n), func(t *testing.T) {
			tab := newUnitTable(trivialProgram(t, n))
			if len(tab.names) != n {
				t.Fatalf("unit table has %d units, want %d", len(tab.names), n)
			}
			var all unitBits
			for i, name := range tab.names {
				m := tab.bit(name)
				if m.isZero() {
					t.Fatalf("unit %q has empty mask", name)
				}
				if !m.intersects(m) {
					t.Fatalf("unit %q mask does not intersect itself", name)
				}
				wantOverflow := i >= 64
				if gotOverflow := len(m.hi) > 0; gotOverflow != wantOverflow {
					t.Fatalf("unit %d overflow = %v, want %v (mask %+v)", i, gotOverflow, wantOverflow, m)
				}
				for j := 0; j < i; j++ {
					if m.intersects(tab.bit(tab.names[j])) {
						t.Fatalf("units %d and %d share a bit", i, j)
					}
				}
				if all.intersects(m) {
					t.Fatalf("unit %d overlaps the union of earlier units", i)
				}
				all = all.or(m)
			}
			for _, name := range tab.names {
				if !all.intersects(tab.bit(name)) {
					t.Fatalf("union lost unit %q", name)
				}
			}
			if !tab.bit("no-such-unit.alite").isZero() {
				t.Fatal("unknown unit must map to the empty mask")
			}
		})
	}
}

// TestUnitBitsOrSharing: or() may share overflow storage only when the
// result equals the larger operand's words; a genuine merge must not alias
// either input (masks are immutable once recorded).
func TestUnitBitsOrSharing(t *testing.T) {
	a := unitBits{lo: 1, hi: []uint64{0b01}}
	b := unitBits{lo: 2, hi: []uint64{0b10}}
	u := a.or(b)
	if u.lo != 3 || len(u.hi) != 1 || u.hi[0] != 0b11 {
		t.Fatalf("or = %+v, want lo=3 hi=[0b11]", u)
	}
	if a.hi[0] != 0b01 || b.hi[0] != 0b10 {
		t.Fatalf("or mutated an operand: a=%+v b=%+v", a, b)
	}
	contained := unitBits{hi: []uint64{0b01}}
	super := unitBits{hi: []uint64{0b11, 0b1}}
	if got := contained.or(super); len(got.hi) != 2 || got.hi[0] != 0b11 || got.hi[1] != 0b1 {
		t.Fatalf("containment or = %+v", got)
	}
}

// TestDepTrackingPastPageBoundary runs a real >64-unit application with
// tracking enabled and checks the recorded dependency masks actually use
// overflow words — i.e. facts derived from high-numbered units are
// attributed to them, not silently dropped.
func TestDepTrackingPastPageBoundary(t *testing.T) {
	// 40 activities -> 41 sources + 41 layouts = 82 units.
	sources, layouts := corpus.ModularApp(40)
	r := Analyze(buildMaps(t, sources, layouts), Options{Incremental: true})
	if r.units == nil || r.dep == nil {
		t.Fatal("incremental run did not record unit dependencies")
	}
	if got := len(r.units.names); got != 82 {
		t.Fatalf("unit table has %d units, want 82", got)
	}
	overflow := 0
	for _, m := range r.dep.masks {
		if len(m.hi) > 0 {
			overflow++
		}
	}
	if overflow == 0 {
		t.Fatal("no recorded fact depends on a unit past bit 63; paging is not exercised")
	}
}

package core

// Context-sensitivity tests: the labeled cloning modes (Options.
// ContextSensitivity) against the paper's context-insensitive baseline.
// Two properties are held over the whole corpus plus the polymorphic-helper
// stressor, in the differential_test.go style:
//
//   - Soundness is delegated to the oracle harness at the repo root
//     (ctx_test.go there runs the concrete interpreter under both modes);
//     here the differential harness holds every solver engine byte-identical
//     under the new modes.
//   - Monotone precision: the context-sensitive solution, projected back to
//     source identities (ProjectedSolution), is a subset of the insensitive
//     solution on every corpus app and 100 seeded-random programs, and a
//     *strict* subset on PolymorphicHelperApp — the acceptance criterion.

import (
	"fmt"
	"testing"

	"gator/internal/corpus"
	"gator/internal/graph"
	"gator/internal/ir"
)

func polyProg(t testing.TB, n int) *ir.Program {
	sources, layouts := corpus.PolymorphicHelperApp(n)
	return buildMaps(t, sources, layouts)
}

// findVar locates a named local in Class.method for points-to queries.
func findVar(t testing.TB, p *ir.Program, class, method, name string) *ir.Var {
	t.Helper()
	for _, c := range p.AppClasses() {
		if c.Name != class {
			continue
		}
		for _, m := range c.Methods {
			if m.Name != method {
				continue
			}
			for _, v := range m.Locals {
				if v.Name == name {
					return v
				}
			}
		}
	}
	t.Fatalf("%s.%s: no local %q", class, method, name)
	return nil
}

// ctxModes enumerates the context-sensitive configurations under test.
var ctxModes = []CtxMode{Ctx1CFA, Ctx1Obj}

// assertSubset fails unless every line of sub appears in super.
func assertSubset(t *testing.T, label string, sub, super []string) {
	t.Helper()
	superSet := make(map[string]bool, len(super))
	for _, line := range super {
		superSet[line] = true
	}
	for _, line := range sub {
		if !superSet[line] {
			t.Errorf("%s: fact not in the insensitive solution: %s", label, line)
		}
	}
}

// TestPolymorphicHelperGolden pins the expected solution of the canonical
// polymorphic-helper shape in all three modes: insensitive, every caller's
// w merges all n buttons; context-sensitive, each caller gets exactly its
// own button, in both cloning modes.
func TestPolymorphicHelperGolden(t *testing.T) {
	const n = 4
	for _, mode := range append([]CtxMode{CtxOff}, ctxModes...) {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			p := polyProg(t, n)
			r := Analyze(p, Options{ContextSensitivity: mode})
			for i := 0; i < n; i++ {
				cls := fmt.Sprintf("PhAct%d", i)
				w := findVar(t, p, cls, "onCreate", "w")
				got := map[string]bool{}
				for _, v := range r.VarPointsTo(w) {
					infl, ok := v.(*graph.InflNode)
					if !ok {
						t.Fatalf("%s: w holds non-view %s", cls, v)
					}
					got[infl.IDName] = true
				}
				if mode == CtxOff {
					if len(got) != n {
						t.Errorf("%s: insensitive w holds %d buttons, want all %d: %v", cls, len(got), n, got)
					}
					continue
				}
				want := fmt.Sprintf("ph%d_btn", i)
				if len(got) != 1 || !got[want] {
					t.Errorf("%s: %s w = %v, want exactly {%s}", cls, mode, got, want)
				}
			}
		})
	}
}

// TestPolymorphicHelperStrictness is the acceptance criterion: on
// PolymorphicHelperApp(8) the 1-CFA solution is strictly smaller than the
// insensitive solution (and still a subset — the oracle-superset half is
// checked at the repo root against the concrete interpreter).
func TestPolymorphicHelperStrictness(t *testing.T) {
	insens := Analyze(polyProg(t, 8), Options{}).ProjectedSolution()
	for _, mode := range ctxModes {
		ctx := Analyze(polyProg(t, 8), Options{ContextSensitivity: mode}).ProjectedSolution()
		assertSubset(t, mode.String(), ctx, insens)
		if len(ctx) >= len(insens) {
			t.Errorf("%s: solution not strictly smaller: %d facts vs %d insensitive",
				mode, len(ctx), len(insens))
		}
		t.Logf("%s: %d facts vs %d insensitive", mode, len(ctx), len(insens))
	}
}

// TestCtxMonotonicityCorpus holds projected refinement on every registered
// corpus app, Figure 1, and the polymorphic stressor, for both modes.
func TestCtxMonotonicityCorpus(t *testing.T) {
	type app struct {
		name  string
		build func() *ir.Program
	}
	var apps []app
	for _, ca := range corpus.GenerateAll() {
		ca := ca
		apps = append(apps, app{ca.Spec.Name, func() *ir.Program {
			return buildMaps(t, ca.BatchSources(), ca.LayoutXML())
		}})
	}
	if testing.Short() {
		apps = apps[:6]
	}
	apps = append(apps,
		app{"figure1", func() *ir.Program {
			p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
			if err != nil {
				t.Fatal(err)
			}
			return p
		}},
		app{"polyhelper8", func() *ir.Program { return polyProg(t, 8) }},
	)
	for _, a := range apps {
		a := a
		t.Run(a.name, func(t *testing.T) {
			t.Parallel()
			insens := Analyze(a.build(), Options{}).ProjectedSolution()
			for _, mode := range ctxModes {
				ctx := Analyze(a.build(), Options{ContextSensitivity: mode}).ProjectedSolution()
				assertSubset(t, a.name+"/"+mode.String(), ctx, insens)
			}
		})
	}
}

// TestCtxMonotonicityRandom sweeps 100 seeded-random programs through both
// modes; the generator is deterministic per seed, so failures reproduce.
func TestCtxMonotonicityRandom(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	for block := 0; block < 4; block++ {
		block := block
		t.Run(fmt.Sprintf("block%d", block), func(t *testing.T) {
			t.Parallel()
			for seed := block; seed < seeds; seed += 4 {
				sources, layouts := corpus.RandomApp(int64(seed))
				insens := Analyze(buildMaps(t, sources, layouts), Options{}).ProjectedSolution()
				for _, mode := range ctxModes {
					ctx := Analyze(buildMaps(t, sources, layouts),
						Options{ContextSensitivity: mode}).ProjectedSolution()
					assertSubset(t, fmt.Sprintf("seed%d/%s", seed, mode), ctx, insens)
				}
			}
		})
	}
}

// TestCtxDifferentialVariants holds every solver engine byte-identical to
// the reference schedule under both context-sensitive modes — the same
// invariant differential_test.go holds for the insensitive configurations.
func TestCtxDifferentialVariants(t *testing.T) {
	sources, layouts := corpus.PolymorphicHelperApp(6)
	for _, mode := range ctxModes {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			diffApp(t, "polyhelper6-"+mode.String(), mapBuilder(t, sources, layouts),
				Options{ContextSensitivity: mode})
			diffApp(t, "figure1-"+mode.String(), func() *ir.Program {
				p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
				if err != nil {
					t.Fatal(err)
				}
				return p
			}, Options{ContextSensitivity: mode})
		})
	}
}

// TestCtxLabelsRendered pins the context component renderers and derivation
// trees show: cloned variable nodes carry the interned label — the call
// site for 1-CFA, the receiver class for 1-object.
func TestCtxLabelsRendered(t *testing.T) {
	for _, tc := range []struct {
		mode CtxMode
		want string
	}{
		{Ctx1CFA, "cs:ph2.alite:"},
		{Ctx1Obj, "obj:PhAct2"},
	} {
		p := polyProg(t, 4)
		r := Analyze(p, Options{ContextSensitivity: tc.mode})
		v := findVar(t, p, "BaseAct", "findAndCast", "v")
		variants := r.VarNodesOf(v)
		if len(variants) != 5 { // ctx-0 node + one clone per caller
			t.Fatalf("%s: %d variants of helper v, want 5", tc.mode, len(variants))
		}
		found := false
		for _, n := range variants[1:] {
			if n.CtxLabel == "" {
				t.Errorf("%s: clone %s has no context label", tc.mode, n)
			}
			if len(n.String()) > 0 && containsStr(n.String(), tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no clone of helper v renders label %q; variants: %v",
				tc.mode, tc.want, variants)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

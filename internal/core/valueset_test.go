package core

import (
	"testing"
	"testing/quick"

	"gator/internal/graph"
)

// mkValues builds n distinct values (view id nodes are the simplest).
func mkValues(n int) []graph.Value {
	g := graph.New()
	out := make([]graph.Value, n)
	for i := range out {
		out[i] = g.ViewIDNode(i, "v")
	}
	return out
}

func TestValueSetBasics(t *testing.T) {
	vals := mkValues(3)
	s := NewValueSet()
	if s.Len() != 0 || s.Contains(vals[0]) {
		t.Error("empty set misbehaves")
	}
	if !s.Add(vals[0]) || !s.Add(vals[1]) {
		t.Error("Add of new value = false")
	}
	if s.Add(vals[0]) {
		t.Error("Add of duplicate = true")
	}
	if s.Len() != 2 || !s.Contains(vals[0]) || s.Contains(vals[2]) {
		t.Error("membership wrong")
	}
	got := s.Values()
	if len(got) != 2 || got[0] != vals[0] || got[1] != vals[1] {
		t.Error("insertion order not preserved")
	}
}

// TestValueSetQuickProperties: for any insertion sequence, (1) Len equals
// the number of distinct elements, (2) Values preserves first-insertion
// order, (3) Contains agrees with insertion, (4) re-adding changes nothing.
func TestValueSetQuickProperties(t *testing.T) {
	universe := mkValues(16)
	prop := func(indices []uint8) bool {
		s := NewValueSet()
		var firstOrder []graph.Value
		seen := map[int]bool{}
		for _, i := range indices {
			v := universe[int(i)%len(universe)]
			added := s.Add(v)
			if added == seen[v.ID()] {
				return false // Add result disagrees with history
			}
			if added {
				seen[v.ID()] = true
				firstOrder = append(firstOrder, v)
			}
		}
		if s.Len() != len(firstOrder) {
			return false
		}
		got := s.Values()
		for i := range firstOrder {
			if got[i] != firstOrder[i] {
				return false
			}
		}
		for _, v := range universe {
			if s.Contains(v) != seen[v.ID()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestValueSetViews(t *testing.T) {
	g := graph.New()
	id := g.ViewIDNode(1, "x")
	act := g.ActivityNode(nil) // nil class is fine for this structural test
	s := NewValueSet()
	s.Add(id)
	s.Add(act)
	if len(s.Views()) != 0 {
		t.Errorf("Views() of non-view values = %v", s.Views())
	}
}

package core

// Context projection: rendering the solution with cloning contexts and
// clone identities erased. Context-sensitive runs give one allocation or
// inflation site several graph nodes (one per context), each with its own
// ordinal or op id, so the raw node names of two modes are incomparable.
// ProjectedSolution names every abstract value by its *source identity* —
// class plus source position — so clones of one site collapse to one name
// and "mode A refines mode B" becomes plain set inclusion over rendered
// fact lines. The precision-monotonicity harness (ctx_test.go) and the
// BENCH_7 strictness probe are built on this rendering.

import (
	"fmt"
	"sort"

	"gator/internal/graph"
)

// CanonValue names an abstract value by source identity, independent of
// which cloning context materialized its node. The oracle's precision
// counters use it so solution sizes are comparable across context modes.
func CanonValue(v graph.Value) string { return canonValue(v) }

// canonValue names an abstract value by source identity, independent of
// which cloning context materialized its node.
func canonValue(v graph.Value) string {
	switch v := v.(type) {
	case *graph.AllocNode:
		return "new " + v.Class.Name + "@" + allocSite(v)
	case *graph.ActivityNode:
		return "activity " + v.Class.Name
	case *graph.InflNode:
		return fmt.Sprintf("infl %s@%s:%d^%s", v.Class.Name, v.LayoutName, v.Path, opSite(v.Op))
	case *graph.LayoutIDNode:
		return "layout " + v.Name
	case *graph.ViewIDNode:
		return "id " + v.Name
	case *graph.StringIDNode:
		return "string " + v.Name
	case *graph.ClassNode:
		return "class " + v.Class.Name
	case *graph.MenuNode:
		return "menu " + v.Activity.Name
	case *graph.MenuItemNode:
		return "menuitem@" + opSite(v.Op)
	default:
		return v.String()
	}
}

func allocSite(n *graph.AllocNode) string {
	if n.Site != nil && n.Site.Pos().IsValid() {
		return n.Site.Pos().String()
	}
	if n.Method != nil {
		return n.Method.QualifiedName()
	}
	return "?"
}

func opSite(op *graph.OpNode) string {
	if op == nil {
		return "?"
	}
	if op.Site != nil && op.Site.Pos().IsValid() {
		return fmt.Sprintf("%s@%s", op.Kind, op.Site.Pos())
	}
	if op.Method != nil {
		return fmt.Sprintf("%s@%s", op.Kind, op.Method.QualifiedName())
	}
	return op.Kind.String()
}

// ProjectedSolution renders the full solution as sorted, deduplicated
// per-fact lines with contexts projected away: one "pts" line per
// (variable-or-field, canonical value) pair — context variants of one
// variable union into one entity — plus one line per derived relation
// pair. Because every line is a single fact, refinement between two modes
// is set inclusion over the returned slices, and the slice length is the
// solution size the precision benchmarks report.
func (r *Result) ProjectedSolution() []string {
	set := map[string]bool{}
	for _, n := range r.Graph.Nodes() {
		vals := r.PointsTo(n)
		if len(vals) == 0 {
			continue
		}
		var ent string
		switch n := n.(type) {
		case *graph.VarNode:
			ent = "var " + n.Var.String()
		case *graph.FieldNode:
			ent = "field " + n.Field.Sig()
		default:
			continue
		}
		for _, v := range vals {
			set["pts "+ent+" = "+canonValue(v)] = true
		}
	}
	pair := func(kind string) func(a, b graph.Value) {
		return func(a, b graph.Value) {
			set[kind+" "+canonValue(a)+" -> "+canonValue(b)] = true
		}
	}
	r.Graph.ChildPairs(pair("child"))
	r.Graph.ListenerPairs(pair("listener"))
	r.Graph.RootPairs(pair("root"))
	r.Graph.MenuPairs(pair("menuitem"))
	for _, n := range r.Graph.Nodes() {
		v, ok := n.(graph.Value)
		if !ok {
			continue
		}
		for _, id := range r.Graph.ViewIDsOf(v) {
			set["viewid "+canonValue(v)+" -> "+canonValue(id)] = true
		}
		for _, tgt := range r.Graph.IntentTargets(v) {
			set["intent "+canonValue(v)+" -> "+canonValue(tgt)] = true
		}
		for _, l := range r.Graph.LayoutOf(v) {
			set["layoutof "+canonValue(v)+" -> "+canonValue(l)] = true
		}
	}
	out := make([]string, 0, len(set))
	for line := range set {
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

package core

import "gator/internal/graph"

// ValueSet is an insertion-ordered set of abstract values. Insertion order
// is deterministic given a deterministic construction order, which keeps
// the whole analysis reproducible run to run.
//
// Each value carries an origin: the node the value arrived from (the flow
// predecessor, or the operation node that produced it; nil for initial
// seeds). Origins live in a slice aligned with the insertion order, so
// recording one is an append instead of the global (node, value)-keyed map
// insert it replaced — the single hottest allocation in the solver — and a
// retraction that removes a value removes its origin with it.
type ValueSet struct {
	order   []graph.Value
	origins []graph.Node
	index   map[int]int32 // value ID -> position in order
}

// NewValueSet returns an empty set.
func NewValueSet() *ValueSet {
	return &ValueSet{index: map[int]int32{}}
}

// Add inserts v with no origin, reporting whether it was new.
func (s *ValueSet) Add(v graph.Value) bool { return s.AddFrom(v, nil) }

// AddFrom inserts v, recording from as its origin, and reports whether the
// value was new. The first insertion wins; a re-add never rewrites the
// origin, matching the first-derivation-wins provenance contract.
func (s *ValueSet) AddFrom(v graph.Value, from graph.Node) bool {
	if _, ok := s.index[v.ID()]; ok {
		return false
	}
	s.index[v.ID()] = int32(len(s.order))
	s.order = append(s.order, v)
	s.origins = append(s.origins, from)
	return true
}

// Origin returns the recorded origin of v, or nil when v is absent or was
// seeded without one.
func (s *ValueSet) Origin(v graph.Value) graph.Node {
	i, ok := s.index[v.ID()]
	if !ok {
		return nil
	}
	return s.origins[i]
}

// Remove deletes v, reporting whether it was present. Removal preserves the
// insertion order of the remaining values, keeping iteration deterministic
// after incremental retraction.
func (s *ValueSet) Remove(v graph.Value) bool {
	i, ok := s.index[v.ID()]
	if !ok {
		return false
	}
	delete(s.index, v.ID())
	copy(s.order[i:], s.order[i+1:])
	s.order[len(s.order)-1] = nil
	s.order = s.order[:len(s.order)-1]
	copy(s.origins[i:], s.origins[i+1:])
	s.origins[len(s.origins)-1] = nil
	s.origins = s.origins[:len(s.origins)-1]
	for j := int(i); j < len(s.order); j++ {
		s.index[s.order[j].ID()] = int32(j)
	}
	return true
}

// Contains reports membership.
func (s *ValueSet) Contains(v graph.Value) bool {
	_, ok := s.index[v.ID()]
	return ok
}

// Len returns the number of values.
func (s *ValueSet) Len() int { return len(s.order) }

// Values returns the values in insertion order. The returned slice is the
// set's backing store; callers must not modify it.
func (s *ValueSet) Values() []graph.Value { return s.order }

// Views returns the member values that abstract views.
func (s *ValueSet) Views() []graph.Value {
	var out []graph.Value
	for _, v := range s.order {
		if graph.IsViewValue(v) {
			out = append(out, v)
		}
	}
	return out
}

package core

import "gator/internal/graph"

// ValueSet is an insertion-ordered set of abstract values. Insertion order
// is deterministic given a deterministic construction order, which keeps
// the whole analysis reproducible run to run.
type ValueSet struct {
	order []graph.Value
	has   map[int]bool
}

// NewValueSet returns an empty set.
func NewValueSet() *ValueSet {
	return &ValueSet{has: map[int]bool{}}
}

// Add inserts v, reporting whether it was new.
func (s *ValueSet) Add(v graph.Value) bool {
	if s.has[v.ID()] {
		return false
	}
	s.has[v.ID()] = true
	s.order = append(s.order, v)
	return true
}

// Remove deletes v, reporting whether it was present. Removal preserves the
// insertion order of the remaining values, keeping iteration deterministic
// after incremental retraction.
func (s *ValueSet) Remove(v graph.Value) bool {
	if !s.has[v.ID()] {
		return false
	}
	delete(s.has, v.ID())
	for i, x := range s.order {
		if x.ID() == v.ID() {
			copy(s.order[i:], s.order[i+1:])
			s.order[len(s.order)-1] = nil
			s.order = s.order[:len(s.order)-1]
			break
		}
	}
	return true
}

// Contains reports membership.
func (s *ValueSet) Contains(v graph.Value) bool { return s.has[v.ID()] }

// Len returns the number of values.
func (s *ValueSet) Len() int { return len(s.order) }

// Values returns the values in insertion order. The returned slice is the
// set's backing store; callers must not modify it.
func (s *ValueSet) Values() []graph.Value { return s.order }

// Views returns the member values that abstract views.
func (s *ValueSet) Views() []graph.Value {
	var out []graph.Value
	for _, v := range s.order {
		if graph.IsViewValue(v) {
			out = append(out, v)
		}
	}
	return out
}

package core

import "gator/internal/graph"

// ptsTable is the points-to store: one slot per graph-node id, indexed
// directly by id instead of hashing node pointers. Graph ids are dense
// creation-order integers, so the table is an array the solver's hot loops
// walk with no map overhead; slots for nodes that never receive a value
// stay nil. The table grows on demand — operation processing materializes
// inflation and menu-item nodes mid-solve, and those can appear as lookup
// subjects even though only build-created nodes ever hold sets.
type ptsTable struct {
	sets []*ValueSet
}

// of returns n's set, or nil when n has no values (or is nil).
func (t *ptsTable) of(n graph.Node) *ValueSet {
	if n == nil {
		return nil
	}
	id := n.ID()
	if id >= len(t.sets) {
		return nil
	}
	return t.sets[id]
}

// ensure returns n's set, creating it when absent.
func (t *ptsTable) ensure(n graph.Node) *ValueSet {
	id := n.ID()
	if id >= len(t.sets) {
		t.grow(id + 1)
	}
	s := t.sets[id]
	if s == nil {
		s = NewValueSet()
		t.sets[id] = s
	}
	return s
}

// grow pre-sizes the table for at least n node ids. The sharded solver
// calls this before its parallel phase so concurrent shards never trigger
// a reallocation of the shared backing array.
func (t *ptsTable) grow(n int) {
	if n <= len(t.sets) {
		return
	}
	if c := 2 * len(t.sets); n < c {
		n = c
	}
	grown := make([]*ValueSet, n)
	copy(grown, t.sets)
	t.sets = grown
}

// drop discards n's set entirely (incremental retraction of stale nodes).
func (t *ptsTable) drop(n graph.Node) {
	if id := n.ID(); id < len(t.sets) {
		t.sets[id] = nil
	}
}

// visit calls f for every node with a non-empty set, in node-id order.
// nodes is the graph's node array, used to recover the node for an id.
func (t *ptsTable) visit(nodes []graph.Node, f func(n graph.Node, s *ValueSet)) {
	for id, s := range t.sets {
		if s != nil && s.Len() > 0 && id < len(nodes) {
			f(nodes[id], s)
		}
	}
}

// size counts nodes with a non-empty set.
func (t *ptsTable) size() int {
	n := 0
	for _, s := range t.sets {
		if s != nil && s.Len() > 0 {
			n++
		}
	}
	return n
}

package core

import (
	"gator/internal/alite"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/platform"
	"gator/internal/trace"
)

// analysis carries the mutable state shared by graph construction and the
// fixpoint solver.
type analysis struct {
	prog *ir.Program
	opts Options
	g    *graph.Graph

	// pts holds the per-node points-to sets, indexed densely by node id.
	pts *ptsTable

	// worklist holds (node, value) propagation frontier entries.
	worklist []propItem

	// castFilter records the cast target class of filtered flow edges,
	// keyed by (src, dst) node ids. Only consulted when opts.FilterCasts.
	castFilter map[[2]int]*ir.Class

	// dispatchFilter restricts receiver-to-this edges: only values whose
	// dynamic class actually dispatches to the callee flow into its 'this'.
	dispatchFilter map[[2]int]dispatchReq

	// returnVars caches the reference-typed return variables per method.
	returnVars map[*ir.Method][]*ir.Var

	// chaCache memoizes CHA target sets per (declared class, key).
	chaCache map[chaKey][]*ir.Method

	// inflations records materialized layout instantiations, keyed by
	// (op id, layout name) — or just layout name under SharedInflation.
	inflations map[string]*inflation

	// rootInflation locates the materialization a root InflNode came from,
	// for declarative onClick binding when the root gets an owner.
	rootInflation map[*graph.InflNode]*inflation

	// boundOnClick tracks already-bound (owner, inflation) pairs.
	boundOnClick map[onClickKey]bool

	// descMemo caches descendant sets; invalidated when the relationship
	// generation changes.
	descMemo map[graph.Value][]graph.Value
	descGen  int

	// curSub, when non-nil, redirects variable-node lookups for the method
	// currently being cloned (Context1 or ContextSensitivity). Context ids
	// are allocated by the graph (NewContext/InternContext), so labeled and
	// anonymous contexts share one numbering.
	curSub *cloneSub
	// cloneableCache memoizes the cloneability decision.
	cloneableCache map[*ir.Method]bool
	// builtClones marks (callee, ctx) bodies already materialized, so
	// interned contexts (1-object clones shared across call sites) walk
	// each body exactly once.
	builtClones map[cloneKey]bool

	// provSource is set while an operation rule is running, so facts it
	// seeds are attributed to it (recorded as per-value origins inside each
	// ValueSet; the predecessor node is recorded during flow propagation).
	provSource graph.Node

	// rec, when non-nil, accumulates the derivation DAG (Options.Provenance).
	rec *recorder
	// tr is the trace scope for solver events; nil-safe (Options.Trace).
	tr *trace.Scope

	// units assigns each source file and layout a bit; dep tracks per-fact
	// unit-dependency masks; edgeUnits holds the rule-site units of each flow
	// edge, keyed like castFilter (Options.Incremental; see deps.go). tracking
	// is true when either the dep tracker or the provenance recorder is live.
	units     *unitTable
	dep       *depTracker
	edgeUnits map[[2]int]unitBits
	tracking  bool

	// methodUnits/classUnits record, per method body and per class's seed
	// pass, the units of every foreign method the construction read (callee
	// return variables, constructor bodies, inherited lifecycle callbacks) in
	// addition to its own unit. Incremental rebuild re-runs buildMethod /
	// buildClassSeeds exactly when this mask intersects the dirty set.
	// curUnits, while a build pass runs, points at the accumulator mention()
	// feeds.
	methodUnits map[*ir.Method]unitBits
	classUnits  map[*ir.Class]unitBits
	curUnits    *unitBits

	// Per-solve engine state (see csr.go and shard.go). csr is the packed
	// flow-graph snapshot; watchers/opDirty/opAlways/opLastGen drive the
	// delta operation worklist; shards is the parallel propagation engine.
	// All nil under Options.ReferenceSolver (and watchers under NoDelta),
	// which falls back to the original schedule.
	csr       *flowCSR
	watchers  [][]int32
	opDirty   []bool
	opAlways  []bool
	opLastGen []int
	shards    *shardRun

	iterations int
}

type cloneSub struct {
	method *ir.Method
	ctx    int
}

type cloneKey struct {
	method *ir.Method
	ctx    int
}

// varNode resolves a variable to its graph node, honoring the active
// cloning substitution.
func (a *analysis) varNode(v *ir.Var) *graph.VarNode {
	if a.curSub != nil && v.Method == a.curSub.method {
		return a.g.VarNodeCtx(v, a.curSub.ctx)
	}
	return a.g.VarNode(v)
}

type propItem struct {
	node graph.Node
	val  graph.Value
}

type chaKey struct {
	class *ir.Class
	key   string
}

type dispatchReq struct {
	key    string
	callee *ir.Method
	// class, when non-nil, restricts the edge to receivers of exactly this
	// dynamic class — the guard that keeps each 1-object clone populated by
	// one class's objects only.
	class *ir.Class
}

type inflation struct {
	root *graph.InflNode
	all  []*graph.InflNode
}

type onClickKey struct {
	owner graph.Value
	infl  *inflation
}

func newAnalysis(p *ir.Program, opts Options) *analysis {
	a := &analysis{
		prog:           p,
		opts:           opts,
		g:              graph.New(),
		pts:            &ptsTable{},
		castFilter:     map[[2]int]*ir.Class{},
		dispatchFilter: map[[2]int]dispatchReq{},
		returnVars:     map[*ir.Method][]*ir.Var{},
		chaCache:       map[chaKey][]*ir.Method{},
		inflations:     map[string]*inflation{},
		rootInflation:  map[*graph.InflNode]*inflation{},
		boundOnClick:   map[onClickKey]bool{},
		descMemo:       map[graph.Value][]graph.Value{},
		cloneableCache: map[*ir.Method]bool{},
		builtClones:    map[cloneKey]bool{},
		tr:             opts.Trace,
	}
	if opts.Provenance {
		a.rec = newRecorder()
	}
	if opts.Incremental {
		a.units = newUnitTable(p)
		a.dep = newDepTracker()
		a.edgeUnits = map[[2]int]unitBits{}
		a.methodUnits = map[*ir.Method]unitBits{}
		a.classUnits = map[*ir.Class]unitBits{}
	}
	a.tracking = a.rec != nil || a.dep != nil
	return a
}

// mention returns the unit mask of m like unitOf and, when a build pass is
// accumulating its read set, folds it into the pass's mask. Every place graph
// construction reads a method other than the one being built must resolve its
// unit through mention, so incremental rebuild knows to re-run the pass when
// that method's file changes.
func (a *analysis) mention(m *ir.Method) unitBits {
	u := a.unitOf(m)
	if a.curUnits != nil {
		*a.curUnits = a.curUnits.or(u)
	}
	return u
}

// seed adds a value to a node's points-to set and schedules propagation.
// units are the compilation units the seed's existence depends on.
func (a *analysis) seed(n graph.Node, v graph.Value, units unitBits) {
	if a.seedChecked(n, v) && a.tracking {
		// A direct seed outside any rule application: an initial fact.
		a.record(flowFact(n, v), "Seed", units)
	}
}

// addFlow records a value-flow edge. units are the compilation units the
// edge's existence depends on; facts propagated across it inherit them.
func (a *analysis) addFlow(src, dst graph.Node, units unitBits) {
	if a.edgeUnits != nil && !units.isZero() {
		k := [2]int{src.ID(), dst.ID()}
		a.edgeUnits[k] = a.edgeUnits[k].or(units)
	}
	if a.g.AddFlow(src, dst) {
		// Replay already-known values across the new edge.
		if s := a.pts.of(src); s != nil {
			for _, v := range s.Values() {
				a.worklist = append(a.worklist, propItem{src, v})
			}
		}
	}
}

// addDispatchFlow records a receiver-to-this edge guarded by dynamic
// dispatch: only values whose class resolves key to callee pass through.
func (a *analysis) addDispatchFlow(recv *graph.VarNode, callee *ir.Method, key string, units unitBits) {
	this := a.varNode(callee.This)
	a.dispatchFilter[[2]int{recv.ID(), this.ID()}] = dispatchReq{key: key, callee: callee}
	a.addFlow(recv, this, units)
}

// addCastFlow records a value-flow edge through a cast.
func (a *analysis) addCastFlow(src, dst graph.Node, to *ir.Class, units unitBits) {
	if to != nil {
		a.castFilter[[2]int{src.ID(), dst.ID()}] = to
	}
	a.addFlow(src, dst, units)
}

// buildGraph creates the statement-derived part of the constraint graph:
// everything in Figure 3 of the paper, plus call, callback, and listener
// edges.
func (a *analysis) buildGraph() {
	p := a.prog

	// Implicitly created activity instances and their lifecycle callbacks.
	for _, c := range p.AppClasses() {
		a.buildClassSeeds(c)
	}

	// Statement-derived nodes and edges.
	for _, c := range p.AppClasses() {
		for _, m := range c.MethodsSorted() {
			a.buildMethod(m)
		}
	}
}

// buildClassSeeds seeds the platform-created facts of one class: the
// implicit activity instance flowing into its lifecycle and options-menu
// callbacks. Idempotent — incremental rebuild re-runs it against the
// retained graph, where seed and node creation deduplicate.
func (a *analysis) buildClassSeeds(c *ir.Class) {
	p := a.prog
	if c.IsInterface || !p.IsActivityClass(c) {
		return
	}
	// Lifecycle seeds depend on the activity's declaring file (the class
	// exists and dispatches there) and on the callback's declaring file
	// (the body may be inherited from another file).
	cu := unitBits{}
	if a.units != nil {
		cu = a.units.bit(c.Pos.File)
	}
	if a.dep != nil {
		acc := cu
		a.curUnits = &acc
		defer func() {
			a.curUnits = nil
			a.classUnits[c] = acc
		}()
	}
	act := a.g.ActivityNode(c)
	act.IsListener = p.IsListenerClass(c)
	for _, name := range platform.Lifecycle {
		m := c.Dispatch(ir.MethodKey(name, nil))
		if m != nil && m.Body != nil {
			a.seed(a.varNode(m.This), act, cu.or(a.mention(m)))
		}
	}
	// Options-menu callbacks: the platform passes the activity's menu
	// to onCreateOptionsMenu; items reach onOptionsItemSelected when
	// MenuAdd operations are processed.
	if m := c.Dispatch(platform.MenuCreateCallback + "(R)"); m != nil && m.Body != nil && len(m.Params) == 1 {
		mu := cu.or(a.mention(m))
		a.seed(a.varNode(m.This), act, mu)
		a.seed(a.varNode(m.Params[0]), a.g.MenuNode(c), mu)
	}
	if m := c.Dispatch(platform.MenuSelectCallback + "(R)"); m != nil && m.Body != nil && len(m.Params) == 1 {
		a.seed(a.varNode(m.This), act, cu.or(a.mention(m)))
	}
	// Managed-dialog callback: the platform invokes onCreateDialog(int) on
	// the activity; the dialogs it allocates get their own lifecycle seeds
	// at the allocation sites (see buildStmt).
	if m := c.Dispatch(platform.DialogCreateCallback + "(I)"); m != nil && m.Body != nil {
		a.seed(a.varNode(m.This), act, cu.or(a.mention(m)))
	}
}

// buildMethod lowers one method body into graph nodes, edges, and seeds.
// Idempotent against a retained graph, like buildClassSeeds.
func (a *analysis) buildMethod(m *ir.Method) {
	if m.Body == nil {
		return
	}
	if a.dep != nil {
		acc := a.unitOf(m)
		a.curUnits = &acc
		defer func() {
			a.curUnits = nil
			a.methodUnits[m] = acc
		}()
	}
	ir.WalkStmts(m.Body, func(s ir.Stmt) { a.buildStmt(m, s) })
}

func (a *analysis) buildStmt(m *ir.Method, s ir.Stmt) {
	p := a.prog
	// Statement-derived facts and edges depend on the file declaring the
	// enclosing method's body.
	mu := a.unitOf(m)
	switch s := s.(type) {
	case *ir.New:
		alloc := a.g.NewAllocNode(s, m,
			p.IsViewClass(s.Class),
			p.IsListenerClass(s.Class),
			p.IsDialogClass(s.Class))
		a.seed(a.varNode(s.Dst), alloc, mu)
		// Constructor call: arguments and receiver flow into the ctor.
		if s.Ctor != nil && s.Ctor.Body != nil {
			a.seed(a.varNode(s.Ctor.This), alloc, mu.or(a.mention(s.Ctor)))
			for i, arg := range s.Args {
				if i < len(s.Ctor.Params) {
					a.addFlow(a.varNode(arg), a.varNode(s.Ctor.Params[i]), mu)
				}
			}
		}
		// Modeled platform constructors with operation semantics
		// (e.g. new Intent(C.class) is a set-intent-target on the fresh
		// allocation).
		if s.Ctor != nil && s.Ctor.API != nil && s.Ctor.API.Kind == platform.OpSetIntentTarget && len(s.Args) > 0 {
			op := a.g.NewOpNode(platform.OpSetIntentTarget, nil, m)
			op.Recv = a.varNode(s.Dst)
			op.Args = []*graph.VarNode{a.varNode(s.Args[0])}
		}
		// Explicitly created dialogs receive lifecycle callbacks like
		// activities do.
		if alloc.IsDialog {
			for _, name := range platform.DialogLifecycle {
				lm := s.Class.Dispatch(ir.MethodKey(name, nil))
				if lm != nil && lm.Body != nil {
					a.seed(a.varNode(lm.This), alloc, mu.or(a.mention(lm)))
				}
			}
		}

	case *ir.Copy:
		a.addCastFlow(a.varNode(s.Src), a.varNode(s.Dst), s.CastTo, mu)

	case *ir.Load:
		a.addFlow(a.g.FieldNode(s.Field), a.varNode(s.Dst), mu)

	case *ir.Store:
		a.addFlow(a.varNode(s.Src), a.g.FieldNode(s.Field), mu)

	case *ir.ConstRes:
		switch {
		case s.Layout:
			a.seed(a.varNode(s.Dst), a.g.LayoutIDNode(s.ID, s.Name), mu)
		case s.Str:
			a.seed(a.varNode(s.Dst), a.g.StringIDNode(s.ID, s.Name), mu)
		default:
			a.seed(a.varNode(s.Dst), a.g.ViewIDNode(s.ID, s.Name), mu)
		}

	case *ir.ConstClass:
		a.seed(a.varNode(s.Dst), a.g.ClassNode(s.Class), mu)

	case *ir.Invoke:
		a.buildInvoke(m, s)

	case *ir.Return:
		// Handled via returnVars when call edges are added.
	}
}

func (a *analysis) buildInvoke(m *ir.Method, s *ir.Invoke) {
	if s.Target == nil {
		return // opaque platform call
	}
	if api := s.Target.API; api != nil {
		a.buildOp(m, s, api)
		return
	}
	// Ordinary call: edges to every possible callee. Dispatch and argument
	// edges depend only on the caller's file (callee signatures are shape);
	// return edges also depend on the callee's file — methodReturnVars reads
	// its body.
	mu := a.unitOf(m)
	cloning := a.opts.Context1 || a.opts.ContextSensitivity != CtxOff
	for _, callee := range a.callTargets(s.Recv.TypeClass, s.Key, s.Target) {
		cu := a.mention(callee)
		if cloning && a.curSub == nil && a.cloneable(callee) {
			if a.cloneCall(s, callee, mu.or(cu)) {
				continue
			}
		}
		a.addDispatchFlow(a.varNode(s.Recv), callee, s.Key, mu)
		for i, arg := range s.Args {
			if i < len(callee.Params) {
				a.addFlow(a.varNode(arg), a.varNode(callee.Params[i]), mu)
			}
		}
		if s.Dst != nil {
			for _, rv := range a.methodReturnVars(callee) {
				a.addFlow(a.varNode(rv), a.varNode(s.Dst), mu.or(cu))
			}
		}
	}
}

// cloneCall dispatches one call site to the active cloning mode and
// reports whether the call was handled context-sensitively (false sends
// the site down the shared, context-insensitive path).
func (a *analysis) cloneCall(s *ir.Invoke, callee *ir.Method, units unitBits) bool {
	switch a.opts.ContextSensitivity {
	case Ctx1CFA:
		// 1-CFA: one context per call-site position, interned so the
		// label renders in derivation trees. Multiple CHA callees at one
		// site share the context id; their variable nodes stay distinct.
		if !s.Pos().IsValid() {
			return false
		}
		a.buildClonedCall(s, callee, units, a.g.InternContext("cs:"+s.Pos().String()), nil)
		return true
	case Ctx1Obj:
		// 1-object: one context per possible receiver class, shared
		// across every call site dispatching to the callee on that class.
		classes := a.receiverClasses(s.Recv.TypeClass, s.Key, callee)
		if len(classes) == 0 {
			return false
		}
		for _, cls := range classes {
			a.buildClonedCall(s, callee, units, a.g.InternContext("obj:"+cls.Name), cls)
		}
		return true
	default: // legacy Context1: anonymous per-call-site contexts
		a.buildClonedCall(s, callee, units, a.g.NewContext(""), nil)
		return true
	}
}

// receiverClasses enumerates the concrete application classes whose objects
// could be the receiver of this call and dispatch it to callee — the
// context population of a 1-object clone.
func (a *analysis) receiverClasses(decl *ir.Class, key string, callee *ir.Method) []*ir.Class {
	if decl == nil {
		return nil
	}
	var out []*ir.Class
	for _, c := range a.prog.AppClasses() {
		if c.IsInterface || !c.SubtypeOf(decl) {
			continue
		}
		if c.Dispatch(key) == callee {
			out = append(out, c)
		}
	}
	return out
}

// cloneable reports whether the active cloning mode clones the callee: a
// small, non-self-recursive application method. Larger or recursive callees
// keep the shared (context-insensitive) treatment.
func (a *analysis) cloneable(callee *ir.Method) bool {
	if ok, hit := a.cloneableCache[callee]; hit {
		return ok
	}
	const maxStmts = 40
	count, selfCall := 0, false
	ir.WalkStmts(callee.Body, func(s ir.Stmt) {
		count++
		if inv, ok := s.(*ir.Invoke); ok && inv.Target == callee {
			selfCall = true
		}
	})
	ok := count <= maxStmts && !selfCall && callee.This != nil
	a.cloneableCache[callee] = ok
	return ok
}

// buildClonedCall gives the callee a fresh set of variable, operation, and
// allocation nodes under the given cloning context — bounded (depth-1)
// context sensitivity. This is the refinement the paper's case study points
// to for the XBMC outlier ("applying existing techniques for context
// sensitivity would lead to an even more precise solution"). cls, when
// non-nil, class-guards the receiver edge (1-object clones). The callee
// body is materialized once per context; interned contexts reached from
// several call sites only re-wire the call edges.
func (a *analysis) buildClonedCall(s *ir.Invoke, callee *ir.Method, units unitBits, ctx int, cls *ir.Class) {
	// Caller-side nodes resolve under the caller's (nil) substitution.
	recv := a.varNode(s.Recv)
	args := make([]*graph.VarNode, len(s.Args))
	for i, arg := range s.Args {
		args[i] = a.varNode(arg)
	}
	var dst *graph.VarNode
	if s.Dst != nil {
		dst = a.varNode(s.Dst)
	}

	sub := &cloneSub{method: callee, ctx: ctx}
	prev := a.curSub
	a.curSub = sub
	defer func() { a.curSub = prev }()

	// Materialize the callee body under the substitution: nested calls
	// inside the clone take the shared path (depth 1). Allocation and
	// operation nodes are not interned, so a body must never be walked
	// twice under one context.
	if ck := (cloneKey{callee, ctx}); !a.builtClones[ck] {
		a.builtClones[ck] = true
		ir.WalkStmts(callee.Body, func(st ir.Stmt) { a.buildStmt(callee, st) })
	}

	// Parameter, receiver, and return plumbing into the cloned nodes.
	this := a.varNode(callee.This)
	a.dispatchFilter[[2]int{recv.ID(), this.ID()}] = dispatchReq{key: s.Key, callee: callee, class: cls}
	a.addFlow(recv, this, units)
	for i := range args {
		if i < len(callee.Params) {
			a.addFlow(args[i], a.varNode(callee.Params[i]), units)
		}
	}
	if dst != nil {
		for _, rv := range a.methodReturnVars(callee) {
			a.addFlow(a.varNode(rv), dst, units)
		}
	}
}

// buildOp creates the operation node for a recognized Android API call and,
// for set-listener operations, the implicit callback edges of Section 3
// ("the callback to the handler can be modeled as y.n(x)").
func (a *analysis) buildOp(m *ir.Method, s *ir.Invoke, api *platform.ApiSpec) {
	op := a.g.NewOpNode(api.Kind, s, m)
	op.Scope = api.Scope
	op.Event = api.Event
	op.AttachParent = api.AttachParent
	op.ParentArg = api.ParentArg
	op.Recv = a.varNode(s.Recv)
	for _, arg := range s.Args {
		op.Args = append(op.Args, a.varNode(arg))
	}
	if s.Dst != nil {
		op.Out = a.varNode(s.Dst)
	}

	mu := a.unitOf(m)

	// Adapter callback: the adapter argument flows to getView's receiver;
	// the solver later attaches getView's results to the AdapterView.
	if api.Kind == platform.OpSetAdapter && len(s.Args) > 0 && s.Args[0].TypeClass != nil {
		key := ir.MethodKey("getView", []alite.Type{{Prim: alite.TypeInt}})
		static := s.Args[0].TypeClass.LookupMethod(key)
		for _, target := range a.callTargets(s.Args[0].TypeClass, key, static) {
			a.addDispatchFlow(a.varNode(s.Args[0]), target, key, mu)
		}
		return
	}

	if api.Kind != platform.OpSetListener || len(s.Args) == 0 {
		return
	}
	// Callback modeling for y.n(x): the listener argument flows to the
	// handlers' receivers; the view receiver flows to the handlers' view
	// parameters. Dispatch is CHA over the declared type of the listener
	// argument.
	spec, ok := platform.ListenerByEvent(api.Event)
	if !ok {
		return
	}
	lstArg := s.Args[0]
	if lstArg.TypeClass == nil {
		return
	}
	for _, h := range spec.Handlers {
		types := make([]alite.Type, len(h.Params))
		for i, pn := range h.Params {
			if pn == "int" {
				types[i] = alite.Type{Prim: alite.TypeInt}
			} else {
				types[i] = alite.Type{Name: pn}
			}
		}
		key := ir.MethodKey(h.Name, types)
		static := lstArg.TypeClass.LookupMethod(key)
		for _, handler := range a.callTargets(lstArg.TypeClass, key, static) {
			a.addDispatchFlow(a.varNode(lstArg), handler, key, mu)
			for _, vi := range h.ViewParams {
				if vi < len(handler.Params) {
					a.addFlow(a.varNode(s.Recv), a.varNode(handler.Params[vi]), mu)
				}
			}
		}
	}
}

// callTargets resolves the possible callees of a virtual call with the given
// declared receiver class and signature key, using class-hierarchy analysis
// (or the static target only, under the DeclaredDispatchOnly ablation).
func (a *analysis) callTargets(decl *ir.Class, key string, static *ir.Method) []*ir.Method {
	if decl == nil {
		return nil
	}
	if a.opts.DeclaredDispatchOnly {
		if static != nil && static.Body != nil {
			return []*ir.Method{static}
		}
		return nil
	}
	ck := chaKey{decl, key}
	if ts, ok := a.chaCache[ck]; ok {
		return ts
	}
	var out []*ir.Method
	seen := map[*ir.Method]bool{}
	for _, c := range a.prog.AppClasses() {
		if c.IsInterface || !c.SubtypeOf(decl) {
			continue
		}
		m := c.Dispatch(key)
		if m != nil && m.Body != nil && !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	a.chaCache[ck] = out
	return out
}

// methodReturnVars collects the reference- or int-typed variables returned
// by m (ids are ints and must propagate through returns too).
func (a *analysis) methodReturnVars(m *ir.Method) []*ir.Var {
	if vs, ok := a.returnVars[m]; ok {
		return vs
	}
	var out []*ir.Var
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		if r, ok := s.(*ir.Return); ok && r.Src != nil {
			out = append(out, r.Src)
		}
	})
	a.returnVars[m] = out
	return out
}

package core

import (
	"fmt"

	"gator/internal/alite"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/layout"
	"gator/internal/platform"
)

// solve runs the outer fixpoint: flow propagation to quiescence, then one
// pass over the operation nodes applying the inference rules of Section 4.2.
// Operation processing can seed new values (FindView/Inflate outputs) and
// add relationship edges (parent-child, ids, listeners, roots), both of
// which require further rounds; the loop ends when a full round changes
// nothing. Termination: the value universe is finite (allocation sites,
// activities, resource ids, and per-site inflation nodes) and all sets and
// relations grow monotonically.
//
// The default engine packs the flow edges into CSR arrays and schedules
// operations through a delta worklist; Options.SolverShards adds parallel
// flow propagation. Options.ReferenceSolver keeps the original map-walking,
// apply-everything schedule — the baseline the differential harness holds
// every optimized configuration to. All engines derive the same facts in
// the same order (see csr.go for the argument), so the choice is invisible
// in results, provenance, and iteration counts.
func (a *analysis) solve() {
	if !a.opts.ReferenceSolver {
		a.csr = a.buildCSR()
		if !a.opts.NoDelta {
			a.initDelta()
		}
		if a.opts.SolverShards > 1 && !a.tracking {
			a.shards = a.newShardRun(a.opts.SolverShards)
		}
	}
	for {
		a.iterations++
		a.tr.Iteration(a.iterations, len(a.worklist))
		a.propagate()
		changed := false
		for i, op := range a.g.Ops() {
			if a.opDirty != nil && !a.opTake(i) {
				continue
			}
			a.provSource = op
			if a.applyOp(op) {
				changed = true
				a.tr.Rule(op.Kind.String(), 1)
			}
			a.provSource = nil
		}
		if !changed && len(a.worklist) == 0 {
			return
		}
	}
}

// propagate drains the worklist, pushing values across flow edges through
// whichever propagation engine the options selected.
func (a *analysis) propagate() {
	switch {
	case a.shards != nil:
		a.shards.propagate()
	case a.csr != nil:
		a.propagateCSR()
	default:
		a.propagateReference()
	}
}

// propagateReference is the original propagation loop: per-node successor
// lookups through the graph's flow map and per-edge filter lookups through
// the (src, dst)-keyed maps. It is preserved verbatim as the reference
// schedule the CSR and sharded engines are differentially tested against.
func (a *analysis) propagateReference() {
	for head := 0; head < len(a.worklist); head++ {
		it := a.worklist[head]
		a.provSource = it.node
		for _, succ := range a.g.FlowSucc(it.node) {
			ek := [2]int{it.node.ID(), succ.ID()}
			if req, ok := a.dispatchFilter[ek]; ok && !dispatchAdmits(it.val, req) {
				continue
			}
			if a.opts.FilterCasts {
				if cls := a.castFilter[ek]; cls != nil && !castAdmits(it.val, cls) {
					continue
				}
			}
			if a.seedChecked(succ, it.val) && a.tracking {
				a.record(flowFact(succ, it.val), "Flow", a.edgeUnits[ek],
					flowFact(it.node, it.val))
			}
		}
	}
	a.provSource = nil
	a.worklist = a.worklist[:0]
}

// dispatchAdmits reports whether a receiver value actually dispatches the
// call to the callee guarding the edge. Values without a dynamic class
// (resource ids) are never receivers.
func dispatchAdmits(v graph.Value, req dispatchReq) bool {
	var vc *ir.Class
	switch v := v.(type) {
	case *graph.AllocNode:
		vc = v.Class
	case *graph.ActivityNode:
		vc = v.Class
	case *graph.InflNode:
		vc = v.Class
	default:
		return false
	}
	if req.class != nil && vc != req.class {
		// 1-object clone: the edge belongs to exactly one receiver class.
		return false
	}
	return vc.Dispatch(req.key) == req.callee
}

// castAdmits reports whether a value may pass a cast to cls. Values without
// a class (resource ids) pass unfiltered.
func castAdmits(v graph.Value, cls *ir.Class) bool {
	var vc *ir.Class
	switch v := v.(type) {
	case *graph.AllocNode:
		vc = v.Class
	case *graph.ActivityNode:
		vc = v.Class
	case *graph.InflNode:
		vc = v.Class
	default:
		return true
	}
	return vc.SubtypeOf(cls)
}

// seedChecked is seed that reports whether the value was new.
func (a *analysis) seedChecked(n graph.Node, v graph.Value) bool {
	if a.pts.ensure(n).AddFrom(v, a.provSource) {
		a.worklist = append(a.worklist, propItem{n, v})
		a.markWatchers(n.ID())
		return true
	}
	return false
}

func (a *analysis) ptsOf(n graph.Node) []graph.Value {
	if s := a.pts.of(n); s != nil {
		return s.Values()
	}
	return nil
}

func viewsOf(vals []graph.Value) []graph.Value {
	var out []graph.Value
	for _, v := range vals {
		if graph.IsViewValue(v) {
			out = append(out, v)
		}
	}
	return out
}

// ownersOf filters values that can own a content view: implicitly created
// activities and explicitly allocated dialogs.
func ownersOf(vals []graph.Value) []graph.Value {
	var out []graph.Value
	for _, v := range vals {
		switch v := v.(type) {
		case *graph.ActivityNode:
			out = append(out, v)
		case *graph.AllocNode:
			if v.IsDialog {
				out = append(out, v)
			}
		}
	}
	return out
}

func layoutIDsOf(vals []graph.Value) []*graph.LayoutIDNode {
	var out []*graph.LayoutIDNode
	for _, v := range vals {
		if l, ok := v.(*graph.LayoutIDNode); ok {
			out = append(out, l)
		}
	}
	return out
}

func viewIDsOf(vals []graph.Value) []*graph.ViewIDNode {
	var out []*graph.ViewIDNode
	for _, v := range vals {
		if n, ok := v.(*graph.ViewIDNode); ok {
			out = append(out, n)
		}
	}
	return out
}

// applyOp applies one operation node's inference rule against the current
// solution; it reports whether anything changed.
func (a *analysis) applyOp(op *graph.OpNode) bool {
	switch op.Kind {
	case platform.OpInflate1:
		return a.applyInflate1(op)
	case platform.OpInflate2:
		return a.applyInflate2(op)
	case platform.OpAddView1:
		return a.applyAddView1(op)
	case platform.OpAddView2:
		return a.applyAddView2(op)
	case platform.OpSetId:
		return a.applySetID(op)
	case platform.OpSetListener:
		return a.applySetListener(op)
	case platform.OpFindView1:
		return a.applyFindView1(op)
	case platform.OpFindView2:
		return a.applyFindView2(op)
	case platform.OpFindView3:
		return a.applyFindView3(op)
	case platform.OpSetIntentTarget:
		return a.applySetIntentTarget(op)
	case platform.OpFindParent:
		return a.applyFindParent(op)
	case platform.OpMenuAdd:
		return a.applyMenuAdd(op)
	case platform.OpFindMenuItem:
		return a.applyFindMenuItem(op)
	case platform.OpSetAdapter:
		return a.applySetAdapter(op)
	}
	// OpShowDialog, OpDismissDialog, OpRemoveView: visibility changes are
	// no-ops for the monotone solution; the lifecycle checkers read the
	// operations' positions instead.
	return false
}

// applySetAdapter implements the list-adapter extension: the views returned
// by the adapter's getView callback become children of the AdapterView.
func (a *analysis) applySetAdapter(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	key := ir.MethodKey("getView", []alite.Type{{Prim: alite.TypeInt}})
	for _, adapter := range a.ptsOf(op.Args[0]) {
		var cls *ir.Class
		switch ad := adapter.(type) {
		case *graph.AllocNode:
			cls = ad.Class
		case *graph.ActivityNode:
			cls = ad.Class
		default:
			continue
		}
		m := cls.Dispatch(key)
		if m == nil || m.Body == nil {
			continue
		}
		for _, rv := range a.methodReturnVars(m) {
			for _, item := range viewsOf(a.ptsOf(a.g.VarNode(rv))) {
				for _, parent := range viewsOf(a.ptsOf(op.Recv)) {
					if a.g.AddChild(parent, item) {
						changed = true
						if a.tracking {
							a.record(childFact(parent, item), op.Kind.String(), u.or(a.unitOf(m)),
								flowFact(op.Recv, parent), flowFact(op.Args[0], adapter),
								flowFact(a.g.VarNode(rv), item))
						}
					}
				}
			}
		}
	}
	return changed
}

// applyMenuAdd materializes the menu item of a Menu.add site, associates it
// with the reaching menus and item ids, and feeds it to the owning
// activities' onOptionsItemSelected callback.
func (a *analysis) applyMenuAdd(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	for _, v := range a.ptsOf(op.Recv) {
		menu, ok := v.(*graph.MenuNode)
		if !ok {
			continue
		}
		item := a.g.MenuItemNode(op)
		if a.g.AddMenuItem(menu, item) {
			changed = true
			if a.tracking {
				a.record(menuItemFact(menu, item), op.Kind.String(), u, flowFact(op.Recv, menu))
			}
		}
		for _, id := range viewIDsOf(a.ptsOf(op.Args[0])) {
			if a.g.AddViewID(item, id) {
				changed = true
				if a.tracking {
					a.record(viewIDFact(item, id), op.Kind.String(), u,
						flowFact(op.Recv, menu), flowFact(op.Args[0], id))
				}
			}
		}
		if op.Out != nil && a.seedChecked(op.Out, item) {
			changed = true
			if a.tracking {
				a.record(flowFact(op.Out, item), op.Kind.String(), u, flowFact(op.Recv, menu))
			}
		}
		if h := menu.Activity.Dispatch(platform.MenuSelectCallback + "(R)"); h != nil && h.Body != nil && len(h.Params) == 1 {
			if a.seedChecked(a.g.VarNode(h.Params[0]), item) {
				changed = true
				if a.tracking {
					a.record(flowFact(a.g.VarNode(h.Params[0]), item), op.Kind.String(),
						u.or(a.unitOf(h)), menuItemFact(menu, item))
				}
			}
		}
	}
	return changed
}

// applyFindMenuItem resolves a Menu.findItem site: the items of the
// reaching menus that carry the argument item id flow to the output — the
// menu-space analogue of the FindView rules.
func (a *analysis) applyFindMenuItem(op *graph.OpNode) bool {
	if op.Out == nil {
		return false
	}
	changed := false
	u := a.unitOf(op.Method)
	for _, v := range a.ptsOf(op.Recv) {
		menu, ok := v.(*graph.MenuNode)
		if !ok {
			continue
		}
		for _, id := range viewIDsOf(a.ptsOf(op.Args[0])) {
			for _, item := range a.g.MenuItems(menu) {
				if a.hasViewID(item, id) && a.seedChecked(op.Out, item) {
					changed = true
					if a.tracking {
						a.record(flowFact(op.Out, item), op.Kind.String(), u,
							flowFact(op.Recv, menu), flowFact(op.Args[0], id),
							menuItemFact(menu, item), viewIDFact(item, id))
					}
				}
			}
		}
	}
	return changed
}

// applyFindParent propagates the recorded parents of the receiver views to
// the output (the inverse of the parent-child relation).
func (a *analysis) applyFindParent(op *graph.OpNode) bool {
	if op.Out == nil {
		return false
	}
	changed := false
	u := a.unitOf(op.Method)
	for _, view := range viewsOf(a.ptsOf(op.Recv)) {
		for _, p := range a.g.Parents(view) {
			if a.seedChecked(op.Out, p) {
				changed = true
				if a.tracking {
					a.record(flowFact(op.Out, p), op.Kind.String(), u,
						flowFact(op.Recv, view), childFact(p, view))
				}
			}
		}
	}
	return changed
}

// applySetIntentTarget implements the inter-component extension: intent
// allocations reaching the receiver become associated with the class
// literals reaching the argument.
func (a *analysis) applySetIntentTarget(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	for _, intent := range a.ptsOf(op.Recv) {
		if _, ok := intent.(*graph.AllocNode); !ok {
			continue
		}
		for _, v := range a.ptsOf(op.Args[0]) {
			cls, ok := v.(*graph.ClassNode)
			if !ok {
				continue
			}
			if a.g.AddIntentTarget(intent, cls) {
				changed = true
				if a.tracking {
					a.record(intentFact(intent, cls), op.Kind.String(), u,
						flowFact(op.Recv, intent), flowFact(op.Args[0], cls))
				}
			}
		}
		// setClass returns the receiver for chaining.
		if op.Out != nil && a.seedChecked(op.Out, intent) {
			changed = true
			if a.tracking {
				a.record(flowFact(op.Out, intent), op.Kind.String(), u, flowFact(op.Recv, intent))
			}
		}
	}
	return changed
}

// inflate materializes the view nodes for inflating layout lid at op,
// once per (site, layout) pair — or per layout under SharedInflation.
// It returns the materialization and whether new nodes or edges appeared.
// The structural facts it establishes — child edges and view ids read from
// the layout XML — are derived by the inflation rule from the fact that the
// layout id reached the operation.
func (a *analysis) inflate(op *graph.OpNode, lid *graph.LayoutIDNode) (*inflation, bool) {
	key := lid.Name
	if !a.opts.SharedInflation {
		key = fmt.Sprintf("%d/%s", op.ID(), lid.Name)
	}
	if inf, ok := a.inflations[key]; ok {
		return inf, false
	}
	l := a.prog.Layouts[lid.Name]
	if l == nil {
		return nil, false
	}
	inf := &inflation{}
	// Inflation-derived structure depends on the inflating call's file and on
	// the layout's content.
	ul := a.unitOf(op.Method).or(a.layoutUnit(lid.Name))
	path := 0
	var build func(n *layout.Node, parent *graph.InflNode)
	build = func(n *layout.Node, parent *graph.InflNode) {
		cls := a.prog.Class(n.Class)
		if n.Merge {
			// A standalone-inflated <merge> root becomes a transparent
			// ViewGroup container.
			cls = a.prog.Class("ViewGroup")
		}
		node := a.g.NewInflNode(op, lid.Name, path, cls, n.ID, n.OnClick)
		path++
		if parent == nil {
			inf.root = node
		} else {
			a.g.AddChild(parent, node)
			if a.tracking {
				a.record(childFact(parent, node), op.Kind.String(), ul, flowFact(op.Args[0], lid))
			}
		}
		inf.all = append(inf.all, node)
		if n.ID != "" {
			if resID, ok := a.prog.R.ViewID(n.ID); ok {
				id := a.g.ViewIDNode(resID, n.ID)
				a.g.AddViewID(node, id)
				if a.tracking {
					a.record(viewIDFact(node, id), op.Kind.String(), ul, flowFact(op.Args[0], lid))
				}
			}
		}
		for _, ch := range n.Children {
			build(ch, node)
		}
	}
	build(l.Root, nil)
	a.g.AddLayoutOf(inf.root, lid)
	a.inflations[key] = inf
	a.rootInflation[inf.root] = inf
	return inf, true
}

func (a *analysis) applyInflate1(op *graph.OpNode) bool {
	changed := false
	for _, lid := range layoutIDsOf(a.ptsOf(op.Args[0])) {
		inf, c := a.inflate(op, lid)
		if inf == nil {
			continue
		}
		changed = changed || c
		ul := a.unitOf(op.Method).or(a.layoutUnit(lid.Name))
		if op.Out != nil && a.seedChecked(op.Out, inf.root) {
			changed = true
			if a.tracking {
				a.record(flowFact(op.Out, inf.root), op.Kind.String(), ul, flowFact(op.Args[0], lid))
			}
		}
		if op.AttachParent && op.ParentArg < len(op.Args) {
			for _, parent := range viewsOf(a.ptsOf(op.Args[op.ParentArg])) {
				if a.g.AddChild(parent, inf.root) {
					changed = true
					if a.tracking {
						a.record(childFact(parent, inf.root), op.Kind.String(), ul,
							flowFact(op.Args[0], lid), flowFact(op.Args[op.ParentArg], parent))
					}
				}
			}
		}
	}
	return changed
}

func (a *analysis) applyInflate2(op *graph.OpNode) bool {
	changed := false
	for _, lid := range layoutIDsOf(a.ptsOf(op.Args[0])) {
		inf, c := a.inflate(op, lid)
		if inf == nil {
			continue
		}
		changed = changed || c
		ul := a.unitOf(op.Method).or(a.layoutUnit(lid.Name))
		for _, owner := range ownersOf(a.ptsOf(op.Recv)) {
			if a.g.AddRoot(owner, inf.root) {
				changed = true
				if a.tracking {
					a.record(rootFact(owner, inf.root), op.Kind.String(), ul,
						flowFact(op.Recv, owner), flowFact(op.Args[0], lid))
				}
			}
			if a.bindOnClick(owner, inf) {
				changed = true
			}
		}
	}
	return changed
}

func (a *analysis) applyAddView1(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	for _, owner := range ownersOf(a.ptsOf(op.Recv)) {
		for _, view := range viewsOf(a.ptsOf(op.Args[0])) {
			if a.g.AddRoot(owner, view) {
				changed = true
				if a.tracking {
					a.record(rootFact(owner, view), op.Kind.String(), u,
						flowFact(op.Recv, owner), flowFact(op.Args[0], view))
				}
			}
			if root, ok := view.(*graph.InflNode); ok {
				if inf := a.rootInflation[root]; inf != nil && a.bindOnClick(owner, inf) {
					changed = true
				}
			}
		}
	}
	return changed
}

func (a *analysis) applyAddView2(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	for _, parent := range viewsOf(a.ptsOf(op.Recv)) {
		for _, child := range viewsOf(a.ptsOf(op.Args[0])) {
			if a.g.AddChild(parent, child) {
				changed = true
				if a.tracking {
					a.record(childFact(parent, child), op.Kind.String(), u,
						flowFact(op.Recv, parent), flowFact(op.Args[0], child))
				}
			}
		}
	}
	return changed
}

func (a *analysis) applySetID(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	for _, view := range viewsOf(a.ptsOf(op.Recv)) {
		for _, id := range viewIDsOf(a.ptsOf(op.Args[0])) {
			if a.g.AddViewID(view, id) {
				changed = true
				if a.tracking {
					a.record(viewIDFact(view, id), op.Kind.String(), u,
						flowFact(op.Recv, view), flowFact(op.Args[0], id))
				}
			}
		}
	}
	return changed
}

func (a *analysis) applySetListener(op *graph.OpNode) bool {
	changed := false
	u := a.unitOf(op.Method)
	for _, view := range viewsOf(a.ptsOf(op.Recv)) {
		for _, lst := range a.ptsOf(op.Args[0]) {
			if _, isID := lst.(*graph.ViewIDNode); isID {
				continue
			}
			if _, isLID := lst.(*graph.LayoutIDNode); isLID {
				continue
			}
			if a.g.AddListener(view, lst) {
				changed = true
				if a.tracking {
					a.record(listenerFact(view, lst), op.Kind.String(), u,
						flowFact(op.Recv, view), flowFact(op.Args[0], lst))
				}
			}
		}
	}
	return changed
}

func (a *analysis) applyFindView1(op *graph.OpNode) bool {
	if op.Out == nil {
		return false
	}
	changed := false
	u := a.unitOf(op.Method)
	for _, view := range viewsOf(a.ptsOf(op.Recv)) {
		for _, id := range viewIDsOf(a.ptsOf(op.Args[0])) {
			for _, w := range a.descendantsIncl(view) {
				if a.hasViewID(w, id) && a.seedChecked(op.Out, w) {
					changed = true
					if a.tracking {
						prem := []Fact{flowFact(op.Recv, view), flowFact(op.Args[0], id)}
						prem = append(prem, a.childPath(view, w)...)
						prem = append(prem, viewIDFact(w, id))
						a.record(flowFact(op.Out, w), op.Kind.String(), u, prem...)
					}
				}
			}
		}
	}
	return changed
}

func (a *analysis) applyFindView2(op *graph.OpNode) bool {
	if op.Out == nil {
		return false
	}
	changed := false
	u := a.unitOf(op.Method)
	for _, owner := range ownersOf(a.ptsOf(op.Recv)) {
		for _, id := range viewIDsOf(a.ptsOf(op.Args[0])) {
			for _, root := range a.g.Roots(owner) {
				for _, w := range a.descendantsIncl(root) {
					if a.hasViewID(w, id) && a.seedChecked(op.Out, w) {
						changed = true
						if a.tracking {
							prem := []Fact{flowFact(op.Recv, owner), flowFact(op.Args[0], id),
								rootFact(owner, root)}
							prem = append(prem, a.childPath(root, w)...)
							prem = append(prem, viewIDFact(w, id))
							a.record(flowFact(op.Out, w), op.Kind.String(), u, prem...)
						}
					}
				}
			}
		}
	}
	return changed
}

func (a *analysis) applyFindView3(op *graph.OpNode) bool {
	if op.Out == nil {
		return false
	}
	changed := false
	u := a.unitOf(op.Method)
	childOnly := op.Scope == platform.ScopeChildren && !a.opts.NoFindView3Refinement
	for _, view := range viewsOf(a.ptsOf(op.Recv)) {
		var candidates []graph.Value
		if childOnly {
			candidates = a.g.Children(view)
		} else {
			candidates = a.descendantsIncl(view)
		}
		for _, w := range candidates {
			if a.seedChecked(op.Out, w) {
				changed = true
				if a.tracking {
					prem := []Fact{flowFact(op.Recv, view)}
					prem = append(prem, a.childPath(view, w)...)
					a.record(flowFact(op.Out, w), op.Kind.String(), u, prem...)
				}
			}
		}
	}
	return changed
}

// bindOnClick wires declarative android:onClick handlers: when an inflated
// tree becomes the content of an activity or dialog, each onClick-annotated
// view flows to the View parameter of the owner's handler method, and the
// owner is recorded as the view's listener.
func (a *analysis) bindOnClick(owner graph.Value, inf *inflation) bool {
	k := onClickKey{owner, inf}
	if a.boundOnClick[k] {
		return false
	}
	a.boundOnClick[k] = true

	var ownerClass *ir.Class
	switch o := owner.(type) {
	case *graph.ActivityNode:
		ownerClass = o.Class
	case *graph.AllocNode:
		ownerClass = o.Class
	default:
		return false
	}
	changed := false
	// The binding reads the handler's declaring file and the layout's
	// onClick annotations; the owner/root association comes in as a premise.
	lu := a.layoutUnit(inf.root.LayoutName)
	for _, n := range inf.all {
		if n.OnClick == "" {
			continue
		}
		m := ownerClass.Dispatch(n.OnClick + "(R)")
		if m == nil || m.Body == nil || len(m.Params) != 1 {
			continue
		}
		hu := lu.or(a.unitOf(m))
		if a.seedChecked(a.g.VarNode(m.Params[0]), n) {
			changed = true
			if a.tracking {
				a.record(flowFact(a.g.VarNode(m.Params[0]), n), "OnClick", hu,
					rootFact(owner, inf.root))
			}
		}
		// The handler runs on the owner: the callback is owner.m(view).
		if a.seedChecked(a.g.VarNode(m.This), owner) {
			changed = true
			if a.tracking {
				a.record(flowFact(a.g.VarNode(m.This), owner), "OnClick", hu,
					rootFact(owner, inf.root))
			}
		}
		if a.g.AddListener(n, owner) {
			changed = true
			if a.tracking {
				a.record(listenerFact(n, owner), "OnClick", hu, rootFact(owner, inf.root))
			}
		}
	}
	return changed
}

// hasViewID reports whether view carries id.
func (a *analysis) hasViewID(view graph.Value, id *graph.ViewIDNode) bool {
	for _, x := range a.g.ViewIDsOf(view) {
		if x == id {
			return true
		}
	}
	return false
}

// descendantsIncl returns view plus its transitive children (the ancestorOf
// relation of the paper, read downward, reflexively). Memoized; the memo is
// invalidated whenever a relationship edge is added.
func (a *analysis) descendantsIncl(view graph.Value) []graph.Value {
	if a.descGen != a.g.Gen() {
		a.descMemo = map[graph.Value][]graph.Value{}
		a.descGen = a.g.Gen()
	}
	if d, ok := a.descMemo[view]; ok {
		return d
	}
	var out []graph.Value
	seen := map[int]bool{}
	queue := []graph.Value{view}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.ID()] {
			continue
		}
		seen[v.ID()] = true
		out = append(out, v)
		queue = append(queue, a.g.Children(v)...)
	}
	a.descMemo[view] = out
	return out
}

package core

// The packed solver hot path. The reference engine (solve.go) chases two
// levels of maps per propagated value: the graph's flow-successor map, then
// a (src, dst)-keyed filter map per edge. This file snapshots the flow
// graph into CSR (compressed sparse row) arrays once per solve, so the
// propagation inner loop is three contiguous array reads per edge, and
// schedules the operation phase through a delta worklist so each round
// revisits only operations whose inputs actually changed.
//
// Byte-identity with the reference schedule is a proved property, not an
// aspiration:
//
//   - CSR propagation visits edges in exactly the reference order: nodes
//     are packed in id order and each node's successor run preserves the
//     graph's insertion-ordered successor slice. Same edge order + same
//     worklist discipline = same seedChecked call sequence, hence the same
//     points-to insertion order, provenance links, and dependency masks.
//
//   - The delta worklist skips an operation only when re-applying it is
//     provably a no-op: every rule is a monotone function of the points-to
//     sets of its watched nodes (receiver and arguments) and of the
//     relationship state, which is versioned by the graph generation
//     counter. An operation is re-applied whenever a watched set grew
//     (watchers fire in seedChecked) or any relationship changed since its
//     last application (generation stamp mismatch); otherwise the reference
//     engine would have applied it and changed nothing. SetAdapter
//     additionally reads the points-to sets of getView return variables, so
//     it is never skipped. Skipping no-ops preserves the derivation order,
//     the per-round changed flags, and therefore Result.Iterations.
//
// The snapshot cannot go stale mid-solve: flow edges are only added during
// graph construction (build or incremental rebuild), never by the rules.

import (
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/platform"
)

// flowCSR is the per-solve snapshot of the flow graph in compressed sparse
// row form. Edge e of node src lives at index row[src] <= e < row[src+1];
// dst, dispatch, cast, and units are parallel edge arrays.
type flowCSR struct {
	// numNodes is the node count at snapshot time. Nodes materialized
	// mid-solve (inflation trees, menu items) get larger ids and have no
	// flow edges; propagation skips them by bounds check.
	numNodes int
	// nodes is the graph's id-indexed node array, shared not copied.
	nodes []graph.Node
	row   []int32
	dst   []int32
	// dispatch indexes dispReqs for receiver-to-this edges, -1 otherwise.
	dispatch []int32
	dispReqs []dispatchReq
	// cast holds the cast target per edge; nil slice unless FilterCasts.
	cast []*ir.Class
	// units holds per-edge rule-site unit masks; nil slice unless tracking.
	units []unitBits
}

// buildCSR packs the current flow graph. Called at solve start, after
// build or incremental retract/rebuild has settled the edge set.
func (a *analysis) buildCSR() *flowCSR {
	nodes := a.g.Nodes()
	n := len(nodes)
	c := &flowCSR{
		numNodes: n,
		nodes:    nodes,
		row:      make([]int32, n+1),
		dst:      make([]int32, 0, a.g.NumFlowEdges()),
		dispatch: make([]int32, 0, a.g.NumFlowEdges()),
	}
	if a.opts.FilterCasts {
		c.cast = make([]*ir.Class, 0, a.g.NumFlowEdges())
	}
	if a.tracking {
		c.units = make([]unitBits, 0, a.g.NumFlowEdges())
	}
	for id := 0; id < n; id++ {
		c.row[id] = int32(len(c.dst))
		for _, succ := range a.g.FlowSucc(nodes[id]) {
			ek := [2]int{id, succ.ID()}
			di := int32(-1)
			if req, ok := a.dispatchFilter[ek]; ok {
				di = int32(len(c.dispReqs))
				c.dispReqs = append(c.dispReqs, req)
			}
			c.dst = append(c.dst, int32(succ.ID()))
			c.dispatch = append(c.dispatch, di)
			if c.cast != nil {
				c.cast = append(c.cast, a.castFilter[ek])
			}
			if c.units != nil {
				c.units = append(c.units, a.edgeUnits[ek])
			}
		}
	}
	c.row[n] = int32(len(c.dst))
	return c
}

// propagateCSR drains the worklist over the packed edge arrays. The edge
// visit order — and therefore every derived fact and its provenance — is
// identical to propagateReference.
func (a *analysis) propagateCSR() {
	c := a.csr
	for head := 0; head < len(a.worklist); head++ {
		it := a.worklist[head]
		src := it.node.ID()
		if src >= c.numNodes {
			continue // materialized mid-solve; no flow edges
		}
		a.provSource = it.node
		for e := c.row[src]; e < c.row[src+1]; e++ {
			if di := c.dispatch[e]; di >= 0 && !dispatchAdmits(it.val, c.dispReqs[di]) {
				continue
			}
			if c.cast != nil {
				if cls := c.cast[e]; cls != nil && !castAdmits(it.val, cls) {
					continue
				}
			}
			succ := c.nodes[c.dst[e]]
			if a.seedChecked(succ, it.val) && a.tracking {
				a.record(flowFact(succ, it.val), "Flow", c.units[e],
					flowFact(it.node, it.val))
			}
		}
	}
	a.provSource = nil
	a.worklist = a.worklist[:0]
}

// initDelta prepares the delta operation worklist: per-node watcher lists
// (which operations read a node as receiver or argument) and per-op dirty
// state. All operations start dirty — including after an incremental
// rebuild, where retained facts may need re-matching against rebuilt ops.
func (a *analysis) initDelta() {
	ops := a.g.Ops()
	a.opDirty = make([]bool, len(ops))
	a.opAlways = make([]bool, len(ops))
	a.opLastGen = make([]int, len(ops))
	a.watchers = make([][]int32, a.csr.numNodes)
	for i, op := range ops {
		a.opDirty[i] = true
		a.opLastGen[i] = -1
		// SetAdapter reads getView return-variable sets the watcher lists
		// cannot anticipate (the adapter set grows during solving), so it
		// is applied every round like the reference engine does.
		a.opAlways[i] = op.Kind == platform.OpSetAdapter
		watch := func(n graph.Node) {
			if n == nil {
				return
			}
			if id := n.ID(); id < len(a.watchers) {
				a.watchers[id] = append(a.watchers[id], int32(i))
			}
		}
		watch(op.Recv)
		for _, arg := range op.Args {
			watch(arg)
		}
	}
}

// markWatchers flags every operation watching node id for re-application.
// Called by seedChecked whenever a points-to set grows; a no-op when delta
// scheduling is inactive (reference engine, NoDelta, or during build).
func (a *analysis) markWatchers(id int) {
	if a.watchers == nil || id >= len(a.watchers) {
		return
	}
	for _, oi := range a.watchers[id] {
		a.opDirty[oi] = true
	}
}

// opTake reports whether delta scheduling requires applying op i this
// round: a watched points-to set grew, a relationship changed since the
// op's last application, or the op reads state watchers cannot cover.
// Taking an op stamps it clean against the current generation; its own
// effects (new values, new relations) re-dirty it for the next round
// exactly when the reference engine could derive more from them.
func (a *analysis) opTake(i int) bool {
	gen := a.g.Gen()
	if !a.opDirty[i] && !a.opAlways[i] && a.opLastGen[i] == gen {
		return false
	}
	a.opDirty[i] = false
	a.opLastGen[i] = gen
	return true
}

package core

import "testing"

const adapterApp = `
class RowAdapter implements Adapter {
	View getView(int position) {
		LinearLayout row = new LinearLayout();
		Button action = new Button();
		action.setId(R.id.row_action);
		row.addView(action);
		return row;
	}
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		ListView list = (ListView) this.findViewById(R.id.list);
		RowAdapter ad = new RowAdapter();
		list.setAdapter(ad);
		View btn = this.findViewById(R.id.row_action);
	}
}`

var adapterLayouts = map[string]string{
	"main": `<LinearLayout><ListView android:id="@+id/list"/></LinearLayout>`,
}

func TestSetAdapterPopulatesList(t *testing.T) {
	r := analyzeSrc(t, adapterApp, adapterLayouts, Options{})
	list := inflByPath(t, r, "main", 1)

	// The adapter's row becomes a child of the ListView.
	kids := r.Graph.Children(list)
	if len(kids) != 1 {
		t.Fatalf("children(list) = %v", valueNames(kids))
	}

	// getView's receiver got the adapter allocation.
	thisVals := r.VarPointsTo(localVar(t, r, "RowAdapter", "getView(I)", "this"))
	if len(thisVals) != 1 {
		t.Errorf("pts(getView this) = %v", valueNames(thisVals))
	}

	// The row's button is findable through the activity hierarchy:
	// activity -> root -> list -> row -> button.
	btnVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "btn"))
	if len(btnVals) != 1 {
		t.Fatalf("pts(btn) = %v", valueNames(btnVals))
	}
}

func TestSetAdapterWithoutGetView(t *testing.T) {
	// An adapter argument whose class lacks a concrete getView produces
	// nothing (and does not crash).
	src := `
class A extends Activity {
	Adapter none;
	void onCreate() {
		ListView list = new ListView();
		Adapter ad = this.none;
		list.setAdapter(ad);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	for _, op := range r.Graph.Ops() {
		_ = op
	}
	_ = r
}

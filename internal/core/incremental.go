package core

import (
	"fmt"
	"sort"

	"gator/internal/graph"
	"gator/internal/ir"
)

// IncrementalStats describes how an AnalyzeIncremental run was computed.
type IncrementalStats struct {
	// Mode is "warm" when the previous solution was delta-resolved, or
	// "scratch" when the analysis fell back to a full solve.
	Mode string
	// Reason explains a scratch fallback; empty for warm runs.
	Reason string
	// Retained and Retracted count previous-solution facts that survived
	// the edit and facts whose derivations reached a dirty unit.
	Retained  int
	Retracted int
	// DirtyUnits are the unit names the edit touched, as passed in.
	DirtyUnits []string
}

// warmState is the part of the solver's working state a Result carries so the
// next AnalyzeIncremental call can resume in place instead of rebuilding and
// re-deriving everything: per-edge filters and unit masks, the inflation
// memos, call-resolution caches, and the per-method/per-class build read
// sets. nil when dependency tracking was off.
type warmState struct {
	castFilter     map[[2]int]*ir.Class
	dispatchFilter map[[2]int]dispatchReq
	returnVars     map[*ir.Method][]*ir.Var
	chaCache       map[chaKey][]*ir.Method
	inflations     map[string]*inflation
	rootInflation  map[*graph.InflNode]*inflation
	edgeUnits      map[[2]int]unitBits
	methodUnits    map[*ir.Method]unitBits
	classUnits     map[*ir.Class]unitBits
}

// warmState packages the solver state for reuse by a later incremental run.
func (a *analysis) warmState() *warmState {
	if a.dep == nil {
		return nil
	}
	return &warmState{
		castFilter:     a.castFilter,
		dispatchFilter: a.dispatchFilter,
		returnVars:     a.returnVars,
		chaCache:       a.chaCache,
		inflations:     a.inflations,
		rootInflation:  a.rootInflation,
		edgeUnits:      a.edgeUnits,
		methodUnits:    a.methodUnits,
		classUnits:     a.classUnits,
	}
}

// AnalyzeIncremental re-analyzes prog after an edit confined to the named
// compilation units (source file names, or "layout:<name>" for layouts),
// reusing the unit-dependency masks recorded by a previous Incremental run.
//
// The caller must pass a prog that already reflects the edit (typically via
// ir.PatchFile) and a prev computed with Options.Incremental from the
// pre-edit program sharing all clean pointers with prog. The warm path works
// in place on prev's constraint graph and fact base — prev is consumed:
//
//  1. retract: facts whose recorded unit mask intersects the dirty set, or
//     that mention a node owned by a re-lowered method body, are deleted from
//     the points-to sets and relations; flow edges built from dirty units are
//     dropped.
//  2. rebuild: the build passes whose recorded read sets intersect the dirty
//     units re-run against the retained graph (they are idempotent), creating
//     fresh nodes for the edited bodies.
//  3. repair + solve: nodes that lost a fact get their predecessors' values
//     re-propagated, and the Section 4.2 rules run to a new fixed point.
//
// The result is the same least model a from-scratch Analyze of the edited
// program computes — only internal node numbering may differ, which is why
// every query that crosses runs reports in content order.
//
// When reuse is not possible — no previous tracking state, provenance or
// Context1 requested (both are schedule-sensitive), shared inflation (one
// view tree serves many sites, defeating per-site retraction), options
// changed, or the unit set changed — the analysis runs from scratch (with
// tracking on, so the next edit can be incremental) and Result.Incr.Reason
// says why. There is no limit on the number of compilation units: unit
// masks page past 64 bits (see deps.go).
func AnalyzeIncremental(prog *ir.Program, opts Options, prev *Result, dirty []string) *Result {
	opts.Incremental = true
	if reason := warmBlocker(opts, prev); reason != "" {
		return analyzeScratch(prog, opts, dirty, reason)
	}
	units := newUnitTable(prog)
	if !units.equal(prev.units) {
		return analyzeScratch(prog, opts, dirty, "compilation unit set changed")
	}
	var dirtyBits unitBits
	for _, name := range dirty {
		b := units.bit(name)
		if b.isZero() {
			return analyzeScratch(prog, opts, dirty,
				fmt.Sprintf("edited unit %q not tracked", name))
		}
		dirtyBits = dirtyBits.or(b)
	}

	a := adoptAnalysis(prog, opts, prev)

	a.tr.Begin("retract")
	retained, retracted, damaged := a.retract(dirtyBits)
	a.tr.End("retract")
	a.tr.Count("incremental/retained", int64(retained))
	a.tr.Count("incremental/retracted", int64(retracted))

	a.tr.Begin("rebuild")
	a.rebuild(dirtyBits)
	a.repair(damaged)
	a.tr.End("rebuild")

	a.tr.Begin("solve")
	a.solve()
	a.tr.End("solve")

	return &Result{
		Prog:       prog,
		Graph:      a.g,
		Opts:       opts,
		pts:        a.pts,
		dep:        a.dep,
		units:      a.units,
		warm:       a.warmState(),
		Iterations: a.iterations,
		Incr: IncrementalStats{
			Mode:       "warm",
			Retained:   retained,
			Retracted:  retracted,
			DirtyUnits: sortedCopy(dirty),
		},
	}
}

// warmBlocker returns the reason warm re-solving is unavailable, or "".
func warmBlocker(opts Options, prev *Result) string {
	switch {
	case opts.ContextSensitivity != CtxOff || (prev != nil && prev.Opts.ContextSensitivity != CtxOff):
		// Cloned subgraphs share interned contexts across call sites, so a
		// unit edit cannot be retracted clone-locally; fall back to scratch
		// rather than ever serving stale merged facts. Checked first so the
		// reason is deterministic whatever tracking state prev carries.
		return "context-sensitive"
	case prev == nil:
		return "no previous result"
	case prev.dep == nil || prev.units == nil:
		return "previous result has no dependency tracking"
	case prev.warm == nil:
		return "previous result lacks reusable solver state"
	case opts.Provenance:
		return "provenance recording requires the full derivation schedule"
	case opts.Context1 || prev.Opts.Context1:
		return "context-sensitive cloning is not incrementalized"
	case opts.SharedInflation:
		return "shared inflation ties one view tree to many sites"
	case opts.FilterCasts != prev.Opts.FilterCasts,
		opts.SharedInflation != prev.Opts.SharedInflation,
		opts.NoFindView3Refinement != prev.Opts.NoFindView3Refinement,
		opts.DeclaredDispatchOnly != prev.Opts.DeclaredDispatchOnly:
		return "analysis options changed"
	}
	return ""
}

// analyzeScratch is the fallback: a full solve with tracking enabled so the
// next edit can go warm.
func analyzeScratch(prog *ir.Program, opts Options, dirty []string, reason string) *Result {
	r := Analyze(prog, opts)
	r.Incr = IncrementalStats{Mode: "scratch", Reason: reason, DirtyUnits: sortedCopy(dirty)}
	return r
}

func sortedCopy(s []string) []string {
	out := append([]string(nil), s...)
	sort.Strings(out)
	return out
}

// adoptAnalysis resumes prev's solver state in place: the constraint graph,
// points-to sets (with their origin links), dependency tracker, edge
// filters, and build caches all carry over. Memos whose validity an edit can silently
// break — declarative-onClick binding, descendant sets, return-variable
// caches of re-lowered methods — are reset instead.
func adoptAnalysis(p *ir.Program, opts Options, prev *Result) *analysis {
	w := prev.warm
	a := &analysis{
		prog:           p,
		opts:           opts,
		g:              prev.Graph,
		pts:            prev.pts,
		castFilter:     w.castFilter,
		dispatchFilter: w.dispatchFilter,
		returnVars:     w.returnVars,
		chaCache:       w.chaCache,
		inflations:     w.inflations,
		rootInflation:  w.rootInflation,
		boundOnClick:   map[onClickKey]bool{},
		descMemo:       map[graph.Value][]graph.Value{},
		descGen:        -1,
		cloneableCache: map[*ir.Method]bool{},
		tr:             opts.Trace,
		units:          prev.units,
		dep:            prev.dep,
		edgeUnits:      w.edgeUnits,
		methodUnits:    w.methodUnits,
		classUnits:     w.classUnits,
		tracking:       true,
	}
	return a
}

// relowered reports whether m's body was re-lowered by the edit: its
// declaring file is dirty, so its local and temporary variables are fresh ir
// objects and the previous run's nodes for them are stale. The receiver and
// parameters are reused by ir.PatchFile and stay live.
func (a *analysis) relowered(m *ir.Method, dirty unitBits) bool {
	return m != nil && a.unitOf(m).intersects(dirty)
}

// rebuilds reports whether m's build pass must re-run: its own file is dirty,
// or the pass read another method declared in a dirty file (recorded in
// methodUnits via mention). A rebuilt body re-creates its allocation,
// operation, and inflation nodes, so those nodes are stale even when the
// body's own file is clean.
func (a *analysis) rebuilds(m *ir.Method, dirty unitBits) bool {
	return a.methodUnits[m].intersects(dirty) || a.unitOf(m).intersects(dirty)
}

// retract deletes from the adopted solution every fact an edit to the dirty
// units can have invalidated, plus every fact mentioning a node that the
// rebuild will re-create. It returns the surviving and retracted fact counts
// and the set of nodes that lost a flow fact both of whose endpoints remain
// live — the nodes repair must re-propagate into, because an alternative
// clean derivation may still support the retracted value.
func (a *analysis) retract(dirty unitBits) (retained, retracted int, damaged map[int]bool) {
	g := a.g
	nodes := g.Nodes()

	// Per-method edit classification, computed once so the node and fact
	// scans below avoid re-hashing file names: relow marks methods whose
	// bodies were re-lowered, rebuild marks methods whose build pass re-runs.
	relow := map[*ir.Method]bool{}
	rebuild := map[*ir.Method]bool{}
	for _, c := range a.prog.AppClasses() {
		for _, m := range c.MethodsSorted() {
			if a.relowered(m, dirty) {
				relow[m] = true
			}
			if a.rebuilds(m, dirty) {
				rebuild[m] = true
			}
		}
	}

	// Stale-node classification, over the graph's live indices only — the
	// node array itself grows monotonically across chained edits and must not
	// be scanned per edit. Variable nodes die with re-lowered bodies (except
	// receivers and parameters, which PatchFile reuses); allocation and
	// operation nodes die whenever their method's build pass re-runs, because
	// the pass would otherwise duplicate them; inflation views and menu items
	// follow their operation.
	stale := make([]bool, len(nodes))
	var staleNodes []graph.Node
	mark := func(n graph.Node) {
		if !stale[n.ID()] {
			stale[n.ID()] = true
			staleNodes = append(staleNodes, n)
		}
	}
	for m := range relow {
		for _, n := range g.MethodVarNodes(m) {
			if n.Var == m.This {
				continue
			}
			isParam := false
			for _, p := range m.Params {
				if n.Var == p {
					isParam = true
					break
				}
			}
			if !isParam {
				mark(n)
			}
		}
		g.DropMethodVarNodes(m)
	}
	for _, n := range g.Allocs() {
		if rebuild[n.Method] {
			mark(n)
		}
	}
	for _, op := range g.Ops() {
		if rebuild[op.Method] {
			mark(op)
		}
	}
	for _, n := range g.Infls() {
		if stale[n.Op.ID()] {
			mark(n)
		}
	}
	g.VisitMenuItemNodes(func(op *graph.OpNode, item *graph.MenuItemNode) {
		if stale[op.ID()] {
			mark(item)
		}
	})

	// Stale nodes lose their entire points-to sets up front, so the fact scan
	// below does not pay a per-fact ordered removal for them.
	for _, n := range staleNodes {
		a.pts.drop(n)
	}

	// Fact scan, in derivation order: a fact survives when its recorded unit
	// mask avoids every dirty unit and both operands stay live. Everything
	// else is undone in the graph. Over-retraction is safe — the rules
	// re-derive any fact that still holds — so a clean-mask fact on a stale
	// node is simply dropped and re-derived against the node's replacement.
	damaged = map[int]bool{}
	order := a.dep.order
	masks := a.dep.masks
	kept := order[:0]
	keptMasks := masks[:0]
	for fi, f := range order {
		if !masks[fi].intersects(dirty) && !stale[f.A] && !stale[f.B] {
			kept = append(kept, f)
			keptMasks = append(keptMasks, masks[fi])
			continue
		}
		retracted++
		delete(a.dep.bits, f)
		na, nb := nodes[f.A], nodes[f.B]
		switch f.Kind {
		case FactFlow:
			if s := a.pts.of(na); s != nil {
				s.Remove(nb.(graph.Value))
			}
			if !stale[f.A] && !stale[f.B] {
				damaged[f.A] = true
			}
		case FactChild:
			g.RemoveChild(na.(graph.Value), nb.(graph.Value))
		case FactViewID:
			g.RemoveViewID(na.(graph.Value), nb.(graph.Value))
		case FactListener:
			g.RemoveListener(na.(graph.Value), nb.(graph.Value))
		case FactRoot:
			g.RemoveRoot(na.(graph.Value), nb.(graph.Value))
		case FactIntent:
			g.RemoveIntentTarget(na.(graph.Value), nb.(graph.Value))
		case FactMenuItem:
			g.RemoveMenuItem(na.(graph.Value), nb.(graph.Value))
		}
	}
	for i := len(kept); i < len(order); i++ {
		order[i] = Fact{}
	}
	a.dep.order = kept
	a.dep.masks = keptMasks
	retained = len(kept)

	// Flow edges built from dirty units — and any edge touching a stale
	// node — disappear along with their per-edge filter state. Note a single
	// flow edge is only ever added by rule sites within one method (edge
	// endpoints include a method-local variable), so a dirty mask bit means
	// every site that contributed the edge re-runs during rebuild.
	g.FilterFlow(func(src, dst graph.Node) bool {
		k := [2]int{src.ID(), dst.ID()}
		if a.edgeUnits[k].intersects(dirty) || stale[src.ID()] || stale[dst.ID()] {
			delete(a.edgeUnits, k)
			delete(a.castFilter, k)
			delete(a.dispatchFilter, k)
			return false
		}
		return true
	})

	// Inflation memo kill: a materialized view tree survives only when its
	// structural facts did — the operation is live, neither the inflating
	// method's file nor the layout is dirty, and the layout id still reaches
	// the operation's argument (the facts' premise). A killed tree's facts
	// are already retracted above: every fact mentioning its nodes chains
	// back to the structural facts and therefore shares their dirty mask.
	// Re-derivation materializes a fresh tree; outputs are content-ordered,
	// so the new node identities are invisible.
	for key, inf := range a.inflations {
		op := inf.root.Op
		kill := stale[op.ID()]
		if !kill {
			ul := a.unitOf(op.Method).or(a.layoutUnit(inf.root.LayoutName))
			if ul.intersects(dirty) {
				kill = true
			} else {
				kill = true
				if len(op.Args) > 0 {
					if s := a.pts.of(op.Args[0]); s != nil {
						if resID, found := a.prog.R.LayoutID(inf.root.LayoutName); found {
							if s.Contains(a.g.LayoutIDNode(resID, inf.root.LayoutName)) {
								kill = false
							}
						}
					}
				}
			}
		}
		if !kill {
			continue
		}
		delete(a.inflations, key)
		delete(a.rootInflation, inf.root)
		for _, n := range inf.all {
			stale[n.ID()] = true
		}
	}

	// Return-variable caches of re-lowered methods read replaced bodies.
	for m := range a.returnVars {
		if a.relowered(m, dirty) {
			delete(a.returnVars, m)
		}
	}

	g.Retire(func(n graph.Node) bool { return stale[n.ID()] })
	return retained, retracted, damaged
}

// rebuild re-runs exactly the build passes whose recorded read sets intersect
// the dirty units: per-class platform seeds and per-method body lowering.
// The passes are idempotent against the retained graph — existing nodes,
// edges, seeds, and fact records all deduplicate — so re-running one re-adds
// only what retraction removed, with fresh nodes for re-lowered bodies.
func (a *analysis) rebuild(dirty unitBits) {
	for _, c := range a.prog.AppClasses() {
		cu := a.units.bit(c.Pos.File)
		if a.classUnits[c].intersects(dirty) || cu.intersects(dirty) {
			a.buildClassSeeds(c)
		}
	}
	for _, c := range a.prog.AppClasses() {
		for _, m := range c.MethodsSorted() {
			if a.rebuilds(m, dirty) {
				a.buildMethod(m)
			}
		}
	}
}

// repair re-primes the worklist for the retraction's collateral damage: when
// a flow fact between two live nodes is retracted, a derivation through
// clean edges may still support it, but the previous fixpoint already
// propagated those edges and the solver would never revisit them. Every live
// predecessor of a damaged node re-pushes its values; propagation and the
// rule rescan then restore exactly the still-derivable facts. Nodes are
// visited in id order for determinism.
func (a *analysis) repair(damaged map[int]bool) {
	if len(damaged) == 0 {
		return
	}
	var srcs []graph.Node
	a.g.VisitFlow(func(src graph.Node, dsts []graph.Node) {
		for _, d := range dsts {
			if damaged[d.ID()] {
				srcs = append(srcs, src)
				return
			}
		}
	})
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].ID() < srcs[j].ID() })
	for _, n := range srcs {
		if s := a.pts.of(n); s != nil {
			for _, v := range s.Values() {
				a.worklist = append(a.worklist, propItem{n, v})
			}
		}
	}
}

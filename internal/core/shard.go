package core

// Parallel intra-app flow propagation (Options.SolverShards). The flow
// nodes are partitioned into contiguous id ranges, one shard per range;
// each shard owns the points-to sets of its nodes exclusively. A propagate
// call runs bulk-synchronous supersteps: every shard drains its local
// worklist to a local fixpoint in parallel, buffering values bound for
// foreign nodes in per-(sender, receiver) outboxes; at the barrier the
// coordinator concatenates outboxes into inboxes in fixed sender order;
// the next superstep applies them. The phase ends when every worklist,
// inbox, and outbox is empty — global quiescence.
//
// Determinism: each shard's work at superstep k is a pure function of the
// deterministic superstep k-1 state (local draining is sequential, inbox
// merge order is fixed), so two runs produce identical points-to sets in
// identical insertion order. Equality with the sequential engines is
// set-level, not order-level: flow propagation computes the monotone
// closure of the seed facts over the edges, which is schedule-independent,
// so after each propagation phase the sharded solution contains exactly
// the sequential values — only their per-node arrival order can differ.
// The operation phase stays sequential and therefore sees identical value
// sets each round, keeping derived relations, changed flags, and iteration
// counts equal to the sequential engines; every content-ordered query is
// byte-identical. Schedules that must match the sequential engine
// step-for-step — provenance recording and incremental dependency
// tracking, whose first-derivation-wins records encode the schedule —
// disable sharding (solve.go checks a.tracking), mirroring how the warm
// incremental path already refuses schedule-sensitive options.
//
// The per-value origin links behind Result.Explain are recorded directly
// in each node's ValueSet by the owning shard (exclusive ownership makes
// this race-free); under sharding a link may name a different — still
// valid, still deterministic — flow predecessor than the sequential
// schedule records.

import (
	"sync"

	"gator/internal/graph"
)

// shardMsg is one boundary fact in flight: val reached node (owned by the
// receiving shard) across an edge from src (owned by the sender).
type shardMsg struct {
	node graph.Node
	val  graph.Value
	src  graph.Node
}

// shardRun is the reusable state of the sharded propagation engine.
type shardRun struct {
	a *analysis
	n int
	// owner maps node id -> owning shard (contiguous ranges).
	owner []int32
	// work is each shard's local worklist; inbox holds boundary facts
	// merged at the previous barrier; outbox[s][t] buffers facts shard s
	// derived for nodes shard t owns.
	work   [][]propItem
	inbox  [][]shardMsg
	outbox [][][]shardMsg
	// touched collects, per shard, the ids of nodes that gained values,
	// for delta-worklist marking after the parallel phase.
	touched [][]int32
}

// newShardRun partitions the CSR snapshot's nodes across n shards.
func (a *analysis) newShardRun(n int) *shardRun {
	num := a.csr.numNodes
	if n > num && num > 0 {
		n = num
	}
	if n < 2 {
		n = 2
	}
	sr := &shardRun{
		a:       a,
		n:       n,
		owner:   make([]int32, num),
		work:    make([][]propItem, n),
		inbox:   make([][]shardMsg, n),
		outbox:  make([][][]shardMsg, n),
		touched: make([][]int32, n),
	}
	for id := 0; id < num; id++ {
		sr.owner[id] = int32(id * n / num)
	}
	for s := 0; s < n; s++ {
		sr.outbox[s] = make([][]shardMsg, n)
	}
	// Pre-warm the lazily memoized subtype caches: castAdmits calls
	// Class.SubtypeOf from concurrent shards, and its first call per class
	// populates the ancestor memo.
	for _, cls := range a.prog.Classes {
		cls.SubtypeOf(cls)
	}
	return sr
}

func (sr *shardRun) shardOf(id int) int {
	if id >= len(sr.owner) {
		return 0
	}
	return int(sr.owner[id])
}

// propagate drains the analysis worklist to global quiescence across the
// shards, then marks delta watchers for every node that gained values.
func (sr *shardRun) propagate() {
	a := sr.a
	// No slot allocation happens inside the parallel phase: every flow
	// target id is below numNodes, so growing once here keeps concurrent
	// ensure calls from reallocating the shared backing array.
	a.pts.grow(a.csr.numNodes)
	for _, it := range a.worklist {
		s := sr.shardOf(it.node.ID())
		sr.work[s] = append(sr.work[s], it)
	}
	a.worklist = a.worklist[:0]

	var wg sync.WaitGroup
	for {
		busy := false
		for s := 0; s < sr.n; s++ {
			if len(sr.work[s])+len(sr.inbox[s]) > 0 {
				busy = true
				break
			}
		}
		if !busy {
			break
		}
		for s := 0; s < sr.n; s++ {
			if len(sr.work[s])+len(sr.inbox[s]) == 0 {
				continue
			}
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sr.drain(s)
			}(s)
		}
		wg.Wait()
		// Barrier exchange: receiver t collects from senders 0..n-1 in
		// order, so inbox contents — and therefore the next superstep —
		// are schedule-independent.
		for t := 0; t < sr.n; t++ {
			for s := 0; s < sr.n; s++ {
				sr.inbox[t] = append(sr.inbox[t], sr.outbox[s][t]...)
				sr.outbox[s][t] = sr.outbox[s][t][:0]
			}
		}
	}

	for s := 0; s < sr.n; s++ {
		for _, id := range sr.touched[s] {
			a.markWatchers(int(id))
		}
		sr.touched[s] = sr.touched[s][:0]
	}
}

// drain runs one shard's superstep: apply the inbox in merged order, then
// propagate the local worklist to a local fixpoint over the CSR arrays,
// routing foreign-node facts to outboxes.
func (sr *shardRun) drain(s int) {
	a := sr.a
	c := a.csr
	for _, m := range sr.inbox[s] {
		if sr.seedLocal(s, m.node, m.val, m.src) {
			sr.work[s] = append(sr.work[s], propItem{m.node, m.val})
		}
	}
	sr.inbox[s] = sr.inbox[s][:0]
	w := sr.work[s]
	for head := 0; head < len(w); head++ {
		it := w[head]
		src := it.node.ID()
		if src >= c.numNodes {
			continue
		}
		for e := c.row[src]; e < c.row[src+1]; e++ {
			if di := c.dispatch[e]; di >= 0 && !dispatchAdmits(it.val, c.dispReqs[di]) {
				continue
			}
			if c.cast != nil {
				if cls := c.cast[e]; cls != nil && !castAdmits(it.val, cls) {
					continue
				}
			}
			did := int(c.dst[e])
			succ := c.nodes[did]
			if t := int(sr.owner[did]); t == s {
				if sr.seedLocal(s, succ, it.val, it.node) {
					w = append(w, propItem{succ, it.val})
				}
			} else {
				sr.outbox[s][t] = append(sr.outbox[s][t], shardMsg{succ, it.val, it.node})
			}
		}
	}
	sr.work[s] = w[:0]
}

// seedLocal adds v to n's set (n owned by shard s), recording the origin
// link and the touched node. Reports whether the value was new.
func (sr *shardRun) seedLocal(s int, n graph.Node, v graph.Value, from graph.Node) bool {
	if !sr.a.pts.ensure(n).AddFrom(v, from) {
		return false
	}
	sr.touched[s] = append(sr.touched[s], int32(n.ID()))
	return true
}

package core

import (
	"testing"

	"gator/internal/alite"
	"gator/internal/corpus"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/layout"
)

func analyzeSrc(t *testing.T, src string, layouts map[string]string, opts Options) *Result {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(p, opts)
}

func analyzeFigure1(t *testing.T, opts Options) *Result {
	t.Helper()
	p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(p, opts)
}

// localVar finds a variable by name in a method.
func localVar(t *testing.T, r *Result, class, methodKey, name string) *ir.Var {
	t.Helper()
	c := r.Prog.Class(class)
	if c == nil {
		t.Fatalf("no class %s", class)
	}
	m := c.Methods[methodKey]
	if m == nil {
		t.Fatalf("no method %s.%s", class, methodKey)
	}
	for _, v := range m.Locals {
		if v.Name == name {
			return v
		}
	}
	t.Fatalf("no variable %s in %s.%s", name, class, methodKey)
	return nil
}

func valueNames(vals []graph.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

// inflByPath finds the inflation node for (layout, preorder path).
func inflByPath(t *testing.T, r *Result, layoutName string, path int) *graph.InflNode {
	t.Helper()
	for _, n := range r.Graph.Infls() {
		if n.LayoutName == layoutName && n.Path == path {
			return n
		}
	}
	t.Fatalf("no inflation node %s:%d", layoutName, path)
	return nil
}

func singleView(t *testing.T, r *Result, v *ir.Var) graph.Value {
	t.Helper()
	vals := r.VarPointsTo(v)
	if len(vals) != 1 {
		t.Fatalf("pts(%s) = %v, want a single value", v, valueNames(vals))
	}
	return vals[0]
}

func containsValue(vals []graph.Value, v graph.Value) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}

// TestFigure4Inflation checks the six view inflation nodes of Figure 4.
func TestFigure4Inflation(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	infls := r.Graph.Infls()
	if len(infls) != 6 {
		t.Fatalf("got %d inflation nodes, want 6 (4 from act_console + 2 from item_terminal)", len(infls))
	}
	classes := map[string]int{}
	for _, n := range infls {
		classes[n.Class.Name]++
	}
	if classes["RelativeLayout"] != 3 || classes["ViewFlipper"] != 1 ||
		classes["ImageView"] != 1 || classes["TextView"] != 1 {
		t.Errorf("inflated classes = %v", classes)
	}
}

// TestFigure4ParentChild checks the parent-child edges of Figure 4,
// including the two created by AddView2 operations.
func TestFigure4ParentChild(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	g := r.Graph

	actRoot := inflByPath(t, r, "act_console", 0) // RelativeLayout 9.1
	flipper := inflByPath(t, r, "act_console", 1) // ViewFlipper 9.2
	kbGroup := inflByPath(t, r, "act_console", 2) // RelativeLayout 9.3
	escBtn := inflByPath(t, r, "act_console", 3)  // ImageView 9.4
	itemRoot := inflByPath(t, r, "item_terminal", 0)
	overlay := inflByPath(t, r, "item_terminal", 1)

	// The TerminalView allocation node.
	var tvAlloc *graph.AllocNode
	for _, an := range g.Allocs() {
		if an.Class.Name == "TerminalView" {
			tvAlloc = an
		}
	}
	if tvAlloc == nil {
		t.Fatal("no TerminalView allocation node")
	}

	wantChild := func(parent, child graph.Value) {
		t.Helper()
		if !containsValue(g.Children(parent), child) {
			t.Errorf("missing parent-child edge %s => %s", parent, child)
		}
	}
	// Layout-derived edges.
	wantChild(actRoot, flipper)
	wantChild(actRoot, kbGroup)
	wantChild(kbGroup, escBtn)
	wantChild(itemRoot, overlay)
	// AddView2-derived edges: n.addView(m) and p.addView(n).
	wantChild(itemRoot, tvAlloc)
	wantChild(flipper, itemRoot)

	// Activity root association (Inflate2 rule).
	act := g.ActivityNode(r.Prog.Class("ConsoleActivity"))
	if !containsValue(g.Roots(act), actRoot) {
		t.Errorf("activity => root edge missing; roots = %v", valueNames(g.Roots(act)))
	}
	// Layout provenance (root => layout id).
	if lids := g.LayoutOf(actRoot); len(lids) != 1 || lids[0].(*graph.LayoutIDNode).Name != "act_console" {
		t.Errorf("layoutOf(actRoot) = %v", valueNames(lids))
	}
}

// TestFigure4IdsAndListeners checks the id and listener edges of Figure 4.
func TestFigure4IdsAndListeners(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	g := r.Graph

	flipper := inflByPath(t, r, "act_console", 1)
	escBtn := inflByPath(t, r, "act_console", 3)

	// ViewFlipper 9.2 => console_flip from the layout.
	ids := g.ViewIDsOf(flipper)
	if len(ids) != 1 || ids[0].Name != "console_flip" {
		t.Errorf("ids(flipper) = %v", ids)
	}

	// SetId: TerminalView alloc => console_flip.
	var tvAlloc *graph.AllocNode
	for _, an := range g.Allocs() {
		if an.Class.Name == "TerminalView" {
			tvAlloc = an
		}
	}
	ids = g.ViewIDsOf(tvAlloc)
	if len(ids) != 1 || ids[0].Name != "console_flip" {
		t.Errorf("ids(TerminalView) = %v", ids)
	}

	// SetListener: ImageView 9.4 => EscapeButtonListener allocation.
	lsts := g.Listeners(escBtn)
	if len(lsts) != 1 {
		t.Fatalf("listeners(escBtn) = %v", valueNames(lsts))
	}
	if an, ok := lsts[0].(*graph.AllocNode); !ok || an.Class.Name != "EscapeButtonListener" {
		t.Errorf("listener = %v", lsts[0])
	}
}

// TestFigure1FlowSolution checks the variable solutions the paper walks
// through in Sections 2 and 4.
func TestFigure1FlowSolution(t *testing.T) {
	r := analyzeFigure1(t, Options{})

	flipper := inflByPath(t, r, "act_console", 1)
	escBtn := inflByPath(t, r, "act_console", 3)
	itemRoot := inflByPath(t, r, "item_terminal", 0)

	// g in onCreate: findViewById(R.id.button_esc) resolves to exactly the
	// ImageView ("the analysis can conclude that ImageView flowsTo g").
	gVals := r.VarPointsTo(localVar(t, r, "ConsoleActivity", "onCreate()", "g"))
	if len(gVals) != 1 || gVals[0] != escBtn {
		t.Errorf("pts(g) = %v, want the ImageView", valueNames(gVals))
	}

	// e: findViewById(R.id.console_flip). The flipper matches; so does the
	// TerminalView allocation (setId(console_flip)) once it is reachable
	// under the activity root — the expected flow-insensitive result.
	eVals := r.VarPointsTo(localVar(t, r, "ConsoleActivity", "onCreate()", "e"))
	if !containsValue(eVals, flipper) {
		t.Errorf("pts(e) = %v, missing the ViewFlipper", valueNames(eVals))
	}

	// k: the root of the inflated item_terminal hierarchy.
	if got := singleView(t, r, localVar(t, r, "ConsoleActivity", "addNewTerminalView(R)", "k")); got != itemRoot {
		t.Errorf("pts(k) = %v, want item_terminal root", got)
	}

	// c in findCurrentView: getCurrentView is child-only, so exactly the
	// RelativeLayout added by p.addView(n).
	cVals := r.VarPointsTo(localVar(t, r, "ConsoleActivity", "findCurrentView(I)", "c"))
	if len(cVals) != 1 || cVals[0] != itemRoot {
		t.Errorf("pts(c) = %v, want only item_terminal root", valueNames(cVals))
	}

	// d: findViewById(console_flip) under the item root = the TerminalView.
	dVals := r.VarPointsTo(localVar(t, r, "ConsoleActivity", "findCurrentView(I)", "d"))
	if len(dVals) != 1 {
		t.Fatalf("pts(d) = %v", valueNames(dVals))
	}
	if an, ok := dVals[0].(*graph.AllocNode); !ok || an.Class.Name != "TerminalView" {
		t.Errorf("pts(d) = %v, want TerminalView allocation", valueNames(dVals))
	}

	// Event handler callback: r (the onClick parameter) receives the
	// ImageView; this receives the listener allocation.
	rVals := r.VarPointsTo(localVar(t, r, "EscapeButtonListener", "onClick(R)", "r"))
	if len(rVals) != 1 || rVals[0] != escBtn {
		t.Errorf("pts(onClick r) = %v, want the ImageView", valueNames(rVals))
	}
	thisVals := r.VarPointsTo(localVar(t, r, "EscapeButtonListener", "onClick(R)", "this"))
	if len(thisVals) != 1 {
		t.Fatalf("pts(onClick this) = %v", valueNames(thisVals))
	}

	// t in onClick: the interprocedural result of findCurrentView.
	tVals := r.VarPointsTo(localVar(t, r, "EscapeButtonListener", "onClick(R)", "t"))
	if len(tVals) != 1 {
		t.Fatalf("pts(t) = %v", valueNames(tVals))
	}
	if an, ok := tVals[0].(*graph.AllocNode); !ok || an.Class.Name != "TerminalView" {
		t.Errorf("pts(t) = %v, want TerminalView allocation", valueNames(tVals))
	}
}

// TestFigure3OpNodes checks that the statement-derived operation nodes of
// Figure 3 all exist.
func TestFigure3OpNodes(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	kinds := map[string]int{}
	for _, op := range r.Graph.Ops() {
		kinds[op.Kind.String()]++
	}
	want := map[string]int{
		"Inflate2":    1, // setContentView
		"Inflate1":    1, // inflater.inflate
		"FindView2":   2, // two activity findViewById calls
		"FindView1":   1, // c.findViewById(a)
		"FindView3":   1, // getCurrentView
		"SetListener": 1,
		"SetId":       1,
		"AddView2":    2,
	}
	for k, n := range want {
		if kinds[k] != n {
			t.Errorf("%s ops = %d, want %d (all: %v)", k, kinds[k], n, kinds)
		}
	}
}

func TestFindView3RefinementAblation(t *testing.T) {
	r := analyzeFigure1(t, Options{NoFindView3Refinement: true})
	// Without the child-only refinement, getCurrentView returns any
	// descendant of the flipper, including the flipper itself.
	cVals := r.VarPointsTo(localVar(t, r, "ConsoleActivity", "findCurrentView(I)", "c"))
	if len(cVals) < 2 {
		t.Errorf("unrefined pts(c) = %v, want several descendants", valueNames(cVals))
	}
}

func TestCastFilteringAblation(t *testing.T) {
	base := analyzeFigure1(t, Options{})
	filt := analyzeFigure1(t, Options{FilterCasts: true})
	// pts(f) after (ViewFlipper) e: filtering drops the TerminalView.
	fBase := base.VarPointsTo(localVar(t, base, "ConsoleActivity", "onCreate()", "f"))
	fFilt := filt.VarPointsTo(localVar(t, filt, "ConsoleActivity", "onCreate()", "f"))
	if len(fFilt) > len(fBase) {
		t.Errorf("filtering enlarged the solution: %v vs %v", valueNames(fFilt), valueNames(fBase))
	}
	if len(fFilt) != 1 {
		t.Errorf("filtered pts(f) = %v, want exactly the ViewFlipper", valueNames(fFilt))
	}
}

func TestSharedInflationAblation(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LayoutInflater i = this.getLayoutInflater();
		View a = i.inflate(R.layout.main);
		View b = i.inflate(R.layout.main);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button/></LinearLayout>`}
	// Wait: two inflate calls are two distinct sites.
	perSite := analyzeSrc(t, src, layouts, Options{})
	if got := len(perSite.Graph.Infls()); got != 4 {
		t.Errorf("per-site inflation nodes = %d, want 4", got)
	}
	shared := analyzeSrc(t, src, layouts, Options{SharedInflation: true})
	if got := len(shared.Graph.Infls()); got != 2 {
		t.Errorf("shared inflation nodes = %d, want 2", got)
	}
	// Under sharing, both variables see the same root.
	aVals := shared.VarPointsTo(localVar(t, shared, "A", "onCreate()", "a"))
	bVals := shared.VarPointsTo(localVar(t, shared, "A", "onCreate()", "b"))
	if len(aVals) != 1 || len(bVals) != 1 || aVals[0] != bVals[0] {
		t.Errorf("shared roots differ: %v vs %v", valueNames(aVals), valueNames(bVals))
	}
}

func TestInflateAttachParent(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		LinearLayout box = (LinearLayout) this.findViewById(R.id.box);
		LayoutInflater i = this.getLayoutInflater();
		i.inflate(R.layout.row, box);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout android:id="@+id/box"/>`,
		"row":  `<TextView android:id="@+id/cell"/>`,
	}
	r := analyzeSrc(t, src, layouts, Options{})
	box := inflByPath(t, r, "main", 0)
	row := inflByPath(t, r, "row", 0)
	if !containsValue(r.Graph.Children(box), row) {
		t.Errorf("inflate-into-parent did not attach: children(box) = %v",
			valueNames(r.Graph.Children(box)))
	}
	// And the attached row is now findable through the activity.
	src2 := src[:len(src)-len("}\n}`")] // not used; separate check below
	_ = src2
}

func TestDialogContentAndFindView(t *testing.T) {
	src := `
class HelpDialog extends Dialog {
	void onCreate() {
		this.setContentView(R.layout.help);
	}
}
class A extends Activity {
	void onCreate() {
		HelpDialog d = new HelpDialog();
		View v = d.findViewById(R.id.text);
	}
}`
	layouts := map[string]string{"help": `<LinearLayout><TextView android:id="@+id/text"/></LinearLayout>`}
	r := analyzeSrc(t, src, layouts, Options{})
	text := inflByPath(t, r, "help", 1)
	vVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "v"))
	if len(vVals) != 1 || vVals[0] != text {
		t.Errorf("dialog findViewById: pts(v) = %v, want the TextView", valueNames(vVals))
	}
}

func TestXMLOnClickBinding(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
	}
	void sendMessage(View v) {
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/go" android:onClick="sendMessage"/></LinearLayout>`}
	r := analyzeSrc(t, src, layouts, Options{})
	btn := inflByPath(t, r, "main", 1)
	vVals := r.VarPointsTo(localVar(t, r, "A", "sendMessage(R)", "v"))
	if len(vVals) != 1 || vVals[0] != btn {
		t.Errorf("onClick param pts = %v, want the Button", valueNames(vVals))
	}
	lsts := r.Graph.Listeners(btn)
	if len(lsts) != 1 {
		t.Fatalf("listeners = %v", valueNames(lsts))
	}
	if an, ok := lsts[0].(*graph.ActivityNode); !ok || an.Class.Name != "A" {
		t.Errorf("listener = %v, want Activity[A]", lsts[0])
	}
}

func TestActivityAsListener(t *testing.T) {
	src := `
class A extends Activity implements OnClickListener {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.go);
		b.setOnClickListener(this);
	}
	void onClick(View v) {
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`}
	r := analyzeSrc(t, src, layouts, Options{})
	btn := inflByPath(t, r, "main", 1)
	lsts := r.Graph.Listeners(btn)
	if len(lsts) != 1 {
		t.Fatalf("listeners = %v", valueNames(lsts))
	}
	if _, ok := lsts[0].(*graph.ActivityNode); !ok {
		t.Errorf("listener = %v, want the activity", lsts[0])
	}
	vVals := r.VarPointsTo(localVar(t, r, "A", "onClick(R)", "v"))
	if len(vVals) != 1 || vVals[0] != btn {
		t.Errorf("pts(onClick v) = %v", valueNames(vVals))
	}
}

func TestAddViewCycleTerminates(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout x = new LinearLayout();
		LinearLayout y = new LinearLayout();
		if (*) {
			x.addView(y);
		} else {
			y.addView(x);
		}
		x.setId(R.id.probe);
		View f = x.findViewById(R.id.probe);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	fVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "f"))
	if len(fVals) != 1 {
		t.Errorf("pts(f) = %v", valueNames(fVals))
	}
}

func TestDeclaredDispatchOnlyAblation(t *testing.T) {
	src := `
class Base {
	View pick(View v) { return v; }
}
class Derived extends Base {
	View pick(View v) { return v.findFocus(); }
}
class A extends Activity {
	void onCreate() {
		LinearLayout w = new LinearLayout();
		Base b = new Derived();
		View r = b.pick(w);
	}
}`
	cha := analyzeSrc(t, src, nil, Options{})
	// CHA: both Base.pick and Derived.pick are targets; Base.pick returns
	// its argument, so w flows to r.
	rVals := cha.VarPointsTo(localVar(t, cha, "A", "onCreate()", "r"))
	if len(rVals) != 1 {
		t.Errorf("CHA pts(r) = %v", valueNames(rVals))
	}
	decl := analyzeSrc(t, src, nil, Options{DeclaredDispatchOnly: true})
	rVals2 := decl.VarPointsTo(localVar(t, decl, "A", "onCreate()", "r"))
	if len(rVals2) != 1 {
		t.Errorf("declared-only pts(r) = %v", valueNames(rVals2))
	}
}

func TestInterfaceDispatchForListeners(t *testing.T) {
	src := `
class L1 implements OnClickListener {
	void onClick(View v) { }
}
class L2 implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	OnClickListener chosen;
	void onCreate() {
		if (*) {
			this.chosen = new L1();
		} else {
			this.chosen = new L2();
		}
		Button b = new Button();
		OnClickListener l = this.chosen;
		b.setOnClickListener(l);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	// Both listener classes' onClick receive the button: CHA over the
	// declared interface type.
	for _, cls := range []string{"L1", "L2"} {
		vVals := r.VarPointsTo(localVar(t, r, cls, "onClick(R)", "v"))
		if len(vVals) != 1 {
			t.Errorf("pts(%s.onClick v) = %v", cls, valueNames(vVals))
		}
		thisVals := r.VarPointsTo(localVar(t, r, cls, "onClick(R)", "this"))
		if len(thisVals) != 1 {
			t.Errorf("pts(%s.onClick this) = %v, want own allocation only", cls, valueNames(thisVals))
		}
	}
}

func TestIterationsAndDeterminism(t *testing.T) {
	r1 := analyzeFigure1(t, Options{})
	r2 := analyzeFigure1(t, Options{})
	if r1.Iterations != r2.Iterations {
		t.Errorf("iterations differ: %d vs %d", r1.Iterations, r2.Iterations)
	}
	if r1.Iterations < 2 {
		t.Errorf("iterations = %d, expected at least 2 (ops must re-fire)", r1.Iterations)
	}
	// Same solution for a representative variable, in the same order.
	v1 := valueNames(r1.VarPointsTo(localVar(t, r1, "ConsoleActivity", "findCurrentView(I)", "d")))
	v2 := valueNames(r2.VarPointsTo(localVar(t, r2, "ConsoleActivity", "findCurrentView(I)", "d")))
	if len(v1) != len(v2) {
		t.Fatalf("solutions differ: %v vs %v", v1, v2)
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Errorf("solution order differs at %d: %q vs %q", i, v1[i], v2[i])
		}
	}
}

func TestMergeLayoutInflation(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LayoutInflater i = this.getLayoutInflater();
		View v = i.inflate(R.layout.pieces);
	}
}`
	layouts := map[string]string{"pieces": `<merge><TextView android:id="@+id/a"/><TextView android:id="@+id/b"/></merge>`}
	r := analyzeSrc(t, src, layouts, Options{})
	vVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "v"))
	if len(vVals) != 1 {
		t.Fatalf("pts(v) = %v", valueNames(vVals))
	}
	root, ok := vVals[0].(*graph.InflNode)
	if !ok || root.Class.Name != "ViewGroup" {
		t.Errorf("merge root = %v, want synthetic ViewGroup", vVals[0])
	}
	if got := len(r.Graph.Children(root)); got != 2 {
		t.Errorf("merge children = %d, want 2", got)
	}
}

package core

import (
	"testing"

	"gator/internal/graph"
)

// TestFieldBasedMerging documents the field-based abstraction: one node per
// field signature, so two objects of the same class share their field
// solutions (the paper's stated design; field-sensitive variants are future
// work).
func TestFieldBasedMerging(t *testing.T) {
	src := `
class Holder {
	View slot;
	void put(View v) { this.slot = v; }
	View get() { View r = this.slot; return r; }
}
class A extends Activity {
	void onCreate() {
		Holder h1 = new Holder();
		Holder h2 = new Holder();
		Button b1 = new Button();
		Button b2 = new Button();
		h1.put(b1);
		h2.put(b2);
		View x = h1.get();
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	xVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "x"))
	// Field-based: x sees both buttons even though h1 only ever held b1.
	if len(xVals) != 2 {
		t.Errorf("pts(x) = %v, want 2 (field-based merging)", valueNames(xVals))
	}
}

// TestActivityIsolation: two activities inflating different layouts do not
// pollute each other's find-view results.
func TestActivityIsolation(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.la);
		View va = this.findViewById(R.id.wa);
	}
}
class B extends Activity {
	void onCreate() {
		this.setContentView(R.layout.lb);
		View vb = this.findViewById(R.id.wb);
	}
}`
	layouts := map[string]string{
		"la": `<LinearLayout><Button android:id="@+id/wa"/></LinearLayout>`,
		"lb": `<LinearLayout><Button android:id="@+id/wb"/></LinearLayout>`,
	}
	r := analyzeSrc(t, src, layouts, Options{})
	va := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "va"))
	vb := r.VarPointsTo(localVar(t, r, "B", "onCreate()", "vb"))
	if len(va) != 1 || len(vb) != 1 {
		t.Fatalf("pts(va)=%v pts(vb)=%v", valueNames(va), valueNames(vb))
	}
	if va[0] == vb[0] {
		t.Error("activities share view abstractions")
	}
}

// TestSameLayoutTwoActivities: the same layout inflated by two activities
// yields distinct per-site view nodes (the paper's per-site inflation), so
// each activity's lookups stay precise.
func TestSameLayoutTwoActivities(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.shared);
		View v = this.findViewById(R.id.w);
	}
}
class B extends Activity {
	void onCreate() {
		this.setContentView(R.layout.shared);
		View v = this.findViewById(R.id.w);
	}
}`
	layouts := map[string]string{"shared": `<LinearLayout><Button android:id="@+id/w"/></LinearLayout>`}
	r := analyzeSrc(t, src, layouts, Options{})
	if got := len(r.Graph.Infls()); got != 4 {
		t.Errorf("inflation nodes = %d, want 4 (2 per site)", got)
	}
	for _, cls := range []string{"A", "B"} {
		vals := r.VarPointsTo(localVar(t, r, cls, "onCreate()", "v"))
		if len(vals) != 1 {
			t.Errorf("%s pts(v) = %v, want its own button only", cls, valueNames(vals))
		}
	}
	// Under shared inflation they merge.
	rs := analyzeSrc(t, src, layouts, Options{SharedInflation: true})
	if got := len(rs.Graph.Infls()); got != 2 {
		t.Errorf("shared inflation nodes = %d, want 2", got)
	}
}

// TestSetContentViewProgrammaticRoot: AddView1 with a programmatic root
// makes the whole programmatic tree findable.
func TestSetContentViewProgrammaticRoot(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button b = new Button();
		b.setId(R.id.go);
		root.addView(b);
		this.setContentView(root);
		View found = this.findViewById(R.id.go);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	vals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "found"))
	if len(vals) != 1 {
		t.Fatalf("pts(found) = %v", valueNames(vals))
	}
	an, ok := vals[0].(*graph.AllocNode)
	if !ok || an.Class.Name != "Button" {
		t.Errorf("found = %v", vals[0])
	}
}

// TestIdPropagationThroughIntMath is a negative capability test: ids
// reaching operations through plain integer constants (not R references)
// are not tracked — the documented limitation.
func TestIdConstantNotTracked(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(2131230720); // raw constant, not R.id
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/w"/></LinearLayout>`}
	r := analyzeSrc(t, src, layouts, Options{})
	vals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "v"))
	if len(vals) != 0 {
		t.Errorf("raw int constant tracked: %v", valueNames(vals))
	}
}

// TestInterproceduralIdFlow: ids pass through int parameters, returns, and
// int fields.
func TestInterproceduralIdFlow(t *testing.T) {
	src := `
class Ids {
	int stored;
	void keep(int id) { this.stored = id; }
	int fetch() { int r = this.stored; return r; }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		Ids ids = new Ids();
		ids.keep(R.id.deep);
		int got = ids.fetch();
		View v = this.findViewById(got);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/deep"/></LinearLayout>`}
	r := analyzeSrc(t, src, layouts, Options{})
	vals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "v"))
	if len(vals) != 1 {
		t.Errorf("pts(v) = %v, id lost through field/return", valueNames(vals))
	}
}

// TestDeadOpHasEmptySolution: operations in never-called methods stay
// empty (no spurious seeding).
func TestDeadOpHasEmptySolution(t *testing.T) {
	src := `
class Dead {
	void never(View v, int id) {
		View w = v.findViewById(id);
	}
}
class A extends Activity {
	void onCreate() { }
}`
	r := analyzeSrc(t, src, nil, Options{})
	for _, op := range r.Graph.Ops() {
		if len(r.OpReceivers(op)) != 0 || len(r.OpResults(op)) != 0 {
			t.Errorf("dead op %s has a solution", op)
		}
	}
}

// TestRemoveViewIsStaticNoOp: removal never shrinks the static relations
// (monotone abstraction) but the program still type-checks and the removed
// view remains findable statically.
func TestRemoveViewIsStaticNoOp(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button b = new Button();
		b.setId(R.id.gone);
		root.addView(b);
		root.removeView(b);
		root.removeAllViews();
		this.setContentView(root);
		View v = this.findViewById(R.id.gone);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	vals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "v"))
	if len(vals) != 1 {
		t.Errorf("pts(v) = %v, want the removed button (sound over-approximation)", valueNames(vals))
	}
}

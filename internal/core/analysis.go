// Package core implements the paper's contribution: the constraint-based,
// flow- and context-insensitive, field-based reference analysis for Android
// GUI objects. It builds the constraint graph from a resolved ir.Program
// (Section 4.1), then runs a fixed-point computation over the inference
// rules of Section 4.2, modeling layout inflation, view operations, and
// platform callbacks.
package core

import (
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/platform"
	"gator/internal/trace"
)

// CtxMode selects the context-sensitive solving mode (see DESIGN.md,
// "Context sensitivity"). The zero value is the paper's context-insensitive
// analysis.
type CtxMode int

const (
	// CtxOff is the context-insensitive baseline.
	CtxOff CtxMode = iota
	// Ctx1CFA clones small callees per call site; contexts are labeled
	// with the call-site source position.
	Ctx1CFA
	// Ctx1Obj clones small callees per receiver class; contexts are
	// labeled with the class name. Activity classes have exactly one
	// abstract object each, so for GUI helpers this is 1-object
	// sensitivity on the FindView/Inflate operation nodes inside them.
	Ctx1Obj
)

// String renders the mode the way the -ctx CLI flag spells it.
func (m CtxMode) String() string {
	switch m {
	case Ctx1CFA:
		return "1cfa"
	case Ctx1Obj:
		return "1obj"
	default:
		return "off"
	}
}

// ParseCtxMode parses a -ctx flag value ("", "off", "1cfa", "1obj").
func ParseCtxMode(s string) (CtxMode, bool) {
	switch s {
	case "", "off":
		return CtxOff, true
	case "1cfa":
		return Ctx1CFA, true
	case "1obj":
		return Ctx1Obj, true
	default:
		return CtxOff, false
	}
}

// Options configure analysis variants. The zero value is the configuration
// evaluated in the paper; the other settings exist for the ablation
// benchmarks called out in DESIGN.md.
type Options struct {
	// FilterCasts drops values that cannot satisfy a cast's target type
	// when they flow through a cast edge. The paper's analysis does not
	// filter; enabling this is a precision refinement.
	FilterCasts bool

	// SharedInflation shares one set of inflated view nodes per layout
	// instead of materializing a fresh set per inflation site (the paper's
	// choice is per-site, i.e. SharedInflation=false).
	SharedInflation bool

	// NoFindView3Refinement disables the child-only refinement of
	// FindView3 operations such as getCurrentView, treating them as
	// returning any descendant (the paper's implementation refines).
	NoFindView3Refinement bool

	// DeclaredDispatchOnly resolves calls to the statically found target
	// only, instead of class-hierarchy analysis over all subtypes.
	DeclaredDispatchOnly bool

	// Context1 enables bounded (depth-1) call-site context sensitivity:
	// small non-recursive application methods get per-call-site clones of
	// their variables, operations, and allocation sites. This is the
	// refinement the paper's case study identifies as the fix for the
	// XBMC receiver imprecision.
	Context1 bool

	// ContextSensitivity selects the labeled context-sensitive solving
	// mode. Unlike Context1's anonymous numeric contexts, these contexts
	// carry interned human-readable labels (call-site position for 1-CFA,
	// receiver class for 1-object) that renderers and derivation trees
	// show. When set to anything but CtxOff it supersedes Context1.
	ContextSensitivity CtxMode

	// Incremental records per-fact unit-dependency bitmasks (which source
	// files and layouts each derivation touched), enabling AnalyzeIncremental
	// to retract and re-derive only the facts an edit can affect. Masks are
	// paged bitsets, so applications of any unit count are tracked.
	Incremental bool

	// Provenance records the derivation DAG: every derived fact keeps its
	// inference rule and premise facts, queryable through Result.Why and
	// RenderDerivation. Off by default — recording costs memory
	// proportional to the number of derived facts.
	Provenance bool

	// ReferenceSolver forces the original solver schedule: map-walking flow
	// propagation and an apply-every-operation round structure. It computes
	// exactly what the default CSR engine computes — the differential
	// harness (differential_test.go) holds every optimized configuration
	// byte-identical to it — and exists as that baseline, not for use.
	ReferenceSolver bool

	// NoDelta disables the delta operation worklist, re-applying every
	// operation every round like the reference schedule, while keeping CSR
	// propagation. An ablation knob for benchmarks and the differential
	// harness; results are identical either way.
	NoDelta bool

	// SolverShards, when at least 2, partitions flow propagation across
	// that many parallel shards with deterministic boundary exchange (see
	// shard.go). Points-to and relation sets are identical to the
	// sequential engines; only schedule-sensitive introspection (points-to
	// insertion order, Explain chains) may observe a different — still
	// deterministic — arrival order. Runs needing the exact sequential
	// schedule (Provenance, Incremental dependency tracking) ignore the
	// setting and propagate sequentially.
	SolverShards int

	// Trace receives solver events: build/solve phase boundaries,
	// per-iteration worklist sizes, and per-rule firing counts. A nil
	// scope disables tracing with no overhead (see internal/trace).
	Trace *trace.Scope
}

// Result is the computed analysis solution.
type Result struct {
	Prog  *ir.Program
	Graph *graph.Graph
	Opts  Options

	pts *ptsTable
	rec *recorder

	// dep and units carry the unit-dependency state for incremental
	// re-solving (Options.Incremental); warm carries the reusable solver
	// working state AnalyzeIncremental resumes in place. All nil when
	// tracking was disabled.
	dep   *depTracker
	units *unitTable
	warm  *warmState

	// Iterations counts outer fixpoint rounds (flow propagation followed by
	// operation processing) until quiescence.
	Iterations int

	// Incr describes how this result was computed when it came from
	// AnalyzeIncremental; zero for plain Analyze runs.
	Incr IncrementalStats
}

// Explain reconstructs how value v reached node n: the chain of nodes the
// value flowed through, from its origin (an initial seed or the operation
// node that produced it) to n. Returns nil when v does not reach n.
func (r *Result) Explain(n graph.Node, v graph.Value) []graph.Node {
	if s := r.pts.of(n); s == nil || !s.Contains(v) {
		return nil
	}
	chain := []graph.Node{n}
	seen := map[int]bool{n.ID(): true}
	cur := n
	for {
		s := r.pts.of(cur)
		if s == nil {
			break
		}
		prev := s.Origin(v)
		if prev == nil {
			break
		}
		if _, isOp := prev.(*graph.OpNode); isOp {
			chain = append(chain, prev)
			break
		}
		if seen[prev.ID()] {
			break
		}
		seen[prev.ID()] = true
		chain = append(chain, prev)
		cur = prev
	}
	// Reverse: origin first.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// PointsTo returns the abstract values that may flow to a graph node
// (variable or field node). The slice is shared; do not modify.
func (r *Result) PointsTo(n graph.Node) []graph.Value {
	if s := r.pts.of(n); s != nil {
		return s.Values()
	}
	return nil
}

// VarPointsTo returns the abstract values of an IR variable, projected
// across cloning contexts: the union, in first-encounter order, over every
// context variant of the variable's node. Context-insensitive runs have a
// single variant, so this is the plain lookup.
func (r *Result) VarPointsTo(v *ir.Var) []graph.Value {
	if len(r.Graph.VarContextClones(v)) == 0 {
		// Never cloned (always, context-insensitively): plain lookup, no
		// projection slice to build.
		return r.PointsTo(r.Graph.VarNode(v))
	}
	var out []graph.Value
	seen := map[graph.Value]bool{}
	for _, n := range r.Graph.ContextVarNodes(v) {
		for _, val := range r.PointsTo(n) {
			if !seen[val] {
				seen[val] = true
				out = append(out, val)
			}
		}
	}
	return out
}

// VarNodesOf returns every context variant of v's node, base (context-0)
// node first — the projection index renderers and derivation queries use
// under context-sensitive modes.
func (r *Result) VarNodesOf(v *ir.Var) []*graph.VarNode {
	return r.Graph.ContextVarNodes(v)
}

// FieldPointsTo returns the abstract values of a field (field-based: one
// summary per field signature).
func (r *Result) FieldPointsTo(f *ir.Field) []graph.Value {
	return r.PointsTo(r.Graph.FieldNode(f))
}

// OpReceivers returns the values reaching an operation's receiver.
func (r *Result) OpReceivers(op *graph.OpNode) []graph.Value {
	if op.Recv == nil {
		return nil
	}
	return r.PointsTo(op.Recv)
}

// OpArg returns the values reaching an operation's i-th argument.
func (r *Result) OpArg(op *graph.OpNode, i int) []graph.Value {
	if i >= len(op.Args) || op.Args[i] == nil {
		return nil
	}
	return r.PointsTo(op.Args[i])
}

// OpResults returns the values flowing out of an operation.
func (r *Result) OpResults(op *graph.OpNode) []graph.Value {
	if op.Out == nil {
		return nil
	}
	return r.PointsTo(op.Out)
}

// Transition is one inter-component control-flow edge: the receiver
// activity (or dialog) of a startActivity operation launches the target
// activity class, from within Via.
type Transition struct {
	// Source is the launching activity/dialog class.
	Source *ir.Class
	// Target is the launched activity class.
	Target *ir.Class
	// Via is the method containing the startActivity call.
	Via *ir.Method
}

// Transitions derives the activity transition graph from the solution
// (the inter-component model that Section 6 of the paper motivates).
func (r *Result) Transitions() []Transition {
	var out []Transition
	seen := map[Transition]bool{}
	for _, op := range r.Graph.Ops() {
		if op.Kind != platform.OpStartActivity || len(op.Args) == 0 {
			continue
		}
		for _, src := range r.OpReceivers(op) {
			var srcClass *ir.Class
			switch s := src.(type) {
			case *graph.ActivityNode:
				srcClass = s.Class
			case *graph.AllocNode:
				if s.IsDialog {
					srcClass = s.Class
				}
			}
			if srcClass == nil {
				continue
			}
			for _, intent := range r.PointsTo(op.Args[0]) {
				for _, target := range r.Graph.IntentTargets(intent) {
					tr := Transition{Source: srcClass, Target: target.Class, Via: op.Method}
					if !seen[tr] {
						seen[tr] = true
						out = append(out, tr)
					}
				}
			}
		}
	}
	return out
}

// Analyze runs the full analysis on a resolved program.
func Analyze(p *ir.Program, opts Options) *Result {
	a := newAnalysis(p, opts)
	a.tr.Begin("build")
	a.buildGraph()
	a.tr.End("build")
	a.tr.Begin("solve")
	a.solve()
	a.tr.End("solve")
	return &Result{
		Prog:       p,
		Graph:      a.g,
		Opts:       opts,
		pts:        a.pts,
		rec:        a.rec,
		dep:        a.dep,
		units:      a.units,
		warm:       a.warmState(),
		Iterations: a.iterations,
	}
}

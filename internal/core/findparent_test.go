package core

import "testing"

func TestFindParentOp(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View btn = this.findViewById(R.id.go);
		ViewGroup parent = btn.getParent();
		parent.setId(R.id.probe);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><FrameLayout android:id="@+id/box"><Button android:id="@+id/go"/></FrameLayout></LinearLayout>`,
	}
	r := analyzeSrc(t, src, layouts, Options{})
	box := inflByPath(t, r, "main", 1)
	pVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "parent"))
	if len(pVals) != 1 || pVals[0] != box {
		t.Errorf("pts(parent) = %v, want the FrameLayout", valueNames(pVals))
	}
	// SetId applied through the parent lands on the FrameLayout.
	ids := r.Graph.ViewIDsOf(box)
	found := false
	for _, id := range ids {
		if id.Name == "probe" {
			found = true
		}
	}
	if !found {
		t.Errorf("ids(box) = %v", ids)
	}
}

func TestFindParentAfterAddView(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button b = new Button();
		root.addView(b);
		ViewGroup p = b.getParent();
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	pVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "p"))
	if len(pVals) != 1 {
		t.Fatalf("pts(p) = %v", valueNames(pVals))
	}
}

func TestFindParentOfRootIsEmpty(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		ViewGroup p = root.getParent();
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	if pVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "p")); len(pVals) != 0 {
		t.Errorf("pts(p) = %v, want empty", valueNames(pVals))
	}
}

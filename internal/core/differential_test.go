package core

// The differential solver harness: the standing invariant of the optimized
// engines is that every configuration — CSR propagation, the delta
// operation worklist, and the sharded parallel fixpoint — computes exactly
// the solution of the reference schedule (Options.ReferenceSolver). This
// file checks that invariant on every registered corpus application, the
// paper's Figure 1 app, a multi-unit modular app (past the 64-unit bitset
// page boundary), and a swarm of seeded-random applications.
//
// Identity is checked at two strengths, matching the contract in shard.go:
//
//   - All variants, including shards: canonical (content-sorted) solution
//     strings are byte-identical, and Iterations match.
//   - Sequential variants (CSR, CSR+delta): additionally, points-to
//     insertion order matches the reference engine, and with Provenance
//     enabled the recorded derivation DAG — the source of Result.Why
//     trees — is deeply equal. Sharded runs with Provenance fall back to
//     the sequential schedule (tracking disables sharding), so their Why
//     trees are held to the same exact-equality bar.

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/corpus"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/layout"
)

// mapBuilder adapts a (sources, layouts) string-map pair to diffApp's
// fresh-program contract. Each variant gets its own ir.Program: analysis
// options like Context1 extend the program in place, so sharing one across
// runs would let variants observe each other.
func mapBuilder(t *testing.T, sources, layouts map[string]string) func() *ir.Program {
	return func() *ir.Program { return buildMaps(t, sources, layouts) }
}

func buildMaps(t testing.TB, sources, layouts map[string]string) *ir.Program {
	t.Helper()
	names := make([]string, 0, len(sources))
	for n := range sources {
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*alite.File, 0, len(names))
	for _, n := range names {
		f, err := alite.Parse(n, sources[n])
		if err != nil {
			t.Fatalf("%s: %v", n, err)
		}
		files = append(files, f)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build(files, ls)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// solutionString renders the full solution — every non-empty points-to set
// plus every derived relation — as one string. Relation pairs are always
// sorted (the underlying relation maps iterate in map order); points-to
// values keep insertion order when ordered is true, which only the
// sequential engines promise to reproduce, and are sorted otherwise.
func solutionString(r *Result, ordered bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "iterations %d\n", r.Iterations)
	for _, n := range r.Graph.Nodes() {
		vals := r.PointsTo(n)
		if len(vals) == 0 {
			continue
		}
		names := valueNamesTB(vals)
		if !ordered {
			sort.Strings(names)
		}
		fmt.Fprintf(&b, "pts %s = {%s}\n", n, strings.Join(names, ", "))
	}
	var rel []string
	pair := func(kind string) func(a, b graph.Value) {
		return func(a, b graph.Value) {
			rel = append(rel, kind+" "+a.String()+" -> "+b.String())
		}
	}
	r.Graph.ChildPairs(pair("child"))
	r.Graph.ListenerPairs(pair("listener"))
	r.Graph.RootPairs(pair("root"))
	r.Graph.MenuPairs(pair("menuitem"))
	for _, n := range r.Graph.Nodes() {
		v, ok := n.(graph.Value)
		if !ok {
			continue
		}
		for _, id := range r.Graph.ViewIDsOf(v) {
			rel = append(rel, "viewid "+v.String()+" -> "+id.String())
		}
		for _, tgt := range r.Graph.IntentTargets(v) {
			rel = append(rel, "intent "+v.String()+" -> "+tgt.String())
		}
		for _, l := range r.Graph.LayoutOf(v) {
			rel = append(rel, "layoutof "+v.String()+" -> "+l.String())
		}
	}
	sort.Strings(rel)
	for _, line := range rel {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}

func valueNamesTB(vals []graph.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.String()
	}
	return out
}

// solverVariants enumerates the engine configurations under test. ordered
// marks configurations whose schedule must match the reference engine
// step-for-step, not just set-for-set.
var solverVariants = []struct {
	name    string
	ordered bool
	opts    func(Options) Options
}{
	{"csr-nodelta", true, func(o Options) Options { o.NoDelta = true; return o }},
	{"csr-delta", true, func(o Options) Options { return o }},
	{"shards1", true, func(o Options) Options { o.SolverShards = 1; return o }},
	{"shards2", false, func(o Options) Options { o.SolverShards = 2; return o }},
	{"shards8", false, func(o Options) Options { o.SolverShards = 8; return o }},
}

// diffApp runs every solver variant against the reference engine on one
// application and fails on any divergence. build must return a fresh
// program on every call.
func diffApp(t *testing.T, label string, build func() *ir.Program, base Options) {
	t.Helper()
	refOpts := base
	refOpts.ReferenceSolver = true
	ref := Analyze(build(), refOpts)
	refSorted := solutionString(ref, false)
	refOrdered := solutionString(ref, true)

	for _, v := range solverVariants {
		r := Analyze(build(), v.opts(base))
		if got := solutionString(r, false); got != refSorted {
			t.Errorf("%s: %s solution diverges from reference:\n%s",
				label, v.name, firstDiff(refSorted, got))
			continue
		}
		if v.ordered {
			if got := solutionString(r, true); got != refOrdered {
				t.Errorf("%s: %s points-to insertion order diverges from reference:\n%s",
					label, v.name, firstDiff(refOrdered, got))
			}
		}
	}

	// Provenance runs record first-derivation-wins Why trees keyed by
	// stable node ids; any schedule drift shows up as a different DAG.
	// Sharding is suppressed under tracking, so even the shard variants
	// must reproduce the reference derivations exactly.
	provBase := base
	provBase.Provenance = true
	provRefOpts := provBase
	provRefOpts.ReferenceSolver = true
	provRef := Analyze(build(), provRefOpts)
	for _, v := range solverVariants {
		r := Analyze(build(), v.opts(provBase))
		if !reflect.DeepEqual(r.rec.deriv, provRef.rec.deriv) {
			t.Errorf("%s: %s derivation DAG diverges from reference (%d vs %d facts)",
				label, v.name, len(r.rec.deriv), len(provRef.rec.deriv))
		}
	}
}

// firstDiff locates the first line where two solution strings diverge.
func firstDiff(want, got string) string {
	w := strings.Split(want, "\n")
	g := strings.Split(got, "\n")
	for i := 0; i < len(w) && i < len(g); i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  reference: %s\n  variant:   %s", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: reference %d, variant %d", len(w), len(g))
}

// TestDifferentialCorpus holds every solver variant byte-identical to the
// reference engine on the registered corpus applications and Figure 1,
// under both the default options and the cast-filtering refinement (the
// one option that changes propagation itself).
func TestDifferentialCorpus(t *testing.T) {
	apps := corpus.GenerateAll()
	if testing.Short() {
		apps = apps[:6]
	}
	for _, app := range apps {
		app := app
		t.Run(app.Spec.Name, func(t *testing.T) {
			t.Parallel()
			diffApp(t, app.Spec.Name, mapBuilder(t, app.BatchSources(), app.LayoutXML()), Options{})
		})
	}
	t.Run("figure1", func(t *testing.T) {
		t.Parallel()
		build := func() *ir.Program {
			p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
			if err != nil {
				t.Fatal(err)
			}
			return p
		}
		diffApp(t, "figure1", build, Options{})
		diffApp(t, "figure1-casts", build, Options{FilterCasts: true})
		diffApp(t, "figure1-ctx1", build, Options{Context1: true})
	})
	t.Run("modular80", func(t *testing.T) {
		t.Parallel()
		// 40 activities -> 82 compilation units: exercises the paged
		// unit bitsets past the first 64-bit word.
		sources, layouts := corpus.ModularApp(40)
		diffApp(t, "modular80", mapBuilder(t, sources, layouts), Options{})
	})
	t.Run("chain", func(t *testing.T) {
		t.Parallel()
		// The deep-fixpoint benchmark shape: roughly one outer iteration
		// per findViewById chain stage, so the delta worklist actually
		// skips work. Small instance here; the benchmarks run the 501-unit
		// version.
		sources, layouts := corpus.ModularChainApp(6, 5)
		diffApp(t, "chain", mapBuilder(t, sources, layouts), Options{})
	})
}

// TestDifferentialRandom sweeps seeded-random applications through every
// solver variant. The generator is deterministic per seed, so failures
// reproduce by seed number.
func TestDifferentialRandom(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	for block := 0; block < 8; block++ {
		block := block
		t.Run(fmt.Sprintf("block%d", block), func(t *testing.T) {
			t.Parallel()
			for seed := block; seed < seeds; seed += 8 {
				sources, layouts := corpus.RandomApp(int64(seed))
				diffApp(t, fmt.Sprintf("seed%d", seed), mapBuilder(t, sources, layouts), Options{})
			}
		})
	}
}

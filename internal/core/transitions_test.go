package core

import (
	"testing"

	"gator/internal/graph"
)

// transitionApp is a three-activity application whose launches happen from
// event handlers — the exact pattern Section 6 of the paper argues requires
// GUI-object analysis to model: (1) the activity-view association, (2) the
// view-handler association, (3) the activities the handler starts.
const transitionApp = `
class MainActivity extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View s = this.findViewById(R.id.settings);
		OpenSettings l = new OpenSettings(this);
		s.setOnClickListener(l);
	}
}
class SettingsActivity extends Activity {
	void onCreate() {
		this.setContentView(R.layout.settings);
		View a = this.findViewById(R.id.about);
		OpenAbout l = new OpenAbout(this);
		a.setOnClickListener(l);
	}
}
class AboutActivity extends Activity {
	void onCreate() {
	}
}
class OpenSettings implements OnClickListener {
	MainActivity owner;
	OpenSettings(MainActivity a) { this.owner = a; }
	void onClick(View v) {
		MainActivity a = this.owner;
		Intent i = new Intent(SettingsActivity.class);
		a.startActivity(i);
	}
}
class OpenAbout implements OnClickListener {
	SettingsActivity owner;
	OpenAbout(SettingsActivity a) { this.owner = a; }
	void onClick(View v) {
		SettingsActivity a = this.owner;
		Intent i = new Intent(AboutActivity.class);
		a.startActivity(i);
	}
}
`

var transitionLayouts = map[string]string{
	"main":     `<LinearLayout><Button android:id="@+id/settings"/></LinearLayout>`,
	"settings": `<LinearLayout><Button android:id="@+id/about"/></LinearLayout>`,
}

func TestTransitionsFromHandlers(t *testing.T) {
	r := analyzeSrc(t, transitionApp, transitionLayouts, Options{})
	trs := r.Transitions()
	if len(trs) != 2 {
		t.Fatalf("transitions = %v", trs)
	}
	want := map[[2]string]bool{
		{"MainActivity", "SettingsActivity"}:  true,
		{"SettingsActivity", "AboutActivity"}: true,
	}
	for _, tr := range trs {
		key := [2]string{tr.Source.Name, tr.Target.Name}
		if !want[key] {
			t.Errorf("unexpected transition %s -> %s via %s", tr.Source, tr.Target, tr.Via)
		}
		delete(want, key)
	}
	for k := range want {
		t.Errorf("missing transition %s -> %s", k[0], k[1])
	}
}

func TestIntentSetClassChaining(t *testing.T) {
	src := `
class B extends Activity { void onCreate() { } }
class A extends Activity {
	void onCreate() {
		Intent i = new Intent(B.class);
		Intent j = i.setClass(B.class);
		this.startActivity(j);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	trs := r.Transitions()
	if len(trs) != 1 || trs[0].Source.Name != "A" || trs[0].Target.Name != "B" {
		t.Fatalf("transitions = %v", trs)
	}
}

func TestIntentThroughFieldsAndBranches(t *testing.T) {
	src := `
class B extends Activity { void onCreate() { } }
class C extends Activity { void onCreate() { } }
class Router {
	Intent pending;
	void set(Intent i) { this.pending = i; }
	Intent get() { Intent i = this.pending; return i; }
}
class A extends Activity {
	void onCreate() {
		Router r = new Router();
		if (*) {
			Intent x = new Intent(B.class);
			r.set(x);
		} else {
			Intent y = new Intent(C.class);
			r.set(y);
		}
		Intent z = r.get();
		this.startActivity(z);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	targets := map[string]bool{}
	for _, tr := range r.Transitions() {
		if tr.Source.Name != "A" {
			t.Errorf("source = %s", tr.Source)
		}
		targets[tr.Target.Name] = true
	}
	if !targets["B"] || !targets["C"] || len(targets) != 2 {
		t.Errorf("targets = %v", targets)
	}
}

func TestNoTransitionWithoutTarget(t *testing.T) {
	src := `
class B { }
class A extends Activity {
	void onCreate() {
		Intent i = new Intent(B.class);
		this.startActivity(i);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	// B is not an activity class; Transitions still reports the static
	// edge (the class node is recorded), and the interpreter would not
	// launch it. Here we only check nothing panics and the edge targets B.
	for _, tr := range r.Transitions() {
		if tr.Target.Name != "B" {
			t.Errorf("target = %s", tr.Target)
		}
	}
}

func TestClassLiteralValues(t *testing.T) {
	src := `
class B extends Activity { void onCreate() { } }
class A extends Activity {
	void onCreate() {
		Intent i = new Intent(B.class);
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	iVals := r.VarPointsTo(localVar(t, r, "A", "onCreate()", "i"))
	if len(iVals) != 1 {
		t.Fatalf("pts(i) = %v", valueNames(iVals))
	}
	alloc, ok := iVals[0].(*graph.AllocNode)
	if !ok || alloc.Class.Name != "Intent" {
		t.Fatalf("pts(i) = %v", valueNames(iVals))
	}
	targets := r.Graph.IntentTargets(alloc)
	if len(targets) != 1 || targets[0].Class.Name != "B" {
		t.Errorf("targets = %v", targets)
	}
}

func TestContext1FixesSharedHelper(t *testing.T) {
	src := `
class Finder {
	View byId(View root, int id) {
		View r = root.findViewById(id);
		return r;
	}
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.la);
		View ra = this.findViewById(R.id.roota);
		Finder f = new Finder();
		View x = f.byId(ra, R.id.childa);
	}
}
class B extends Activity {
	void onCreate() {
		this.setContentView(R.layout.lb);
		View rb = this.findViewById(R.id.rootb);
		Finder f = new Finder();
		View y = f.byId(rb, R.id.childb);
	}
}`
	layouts := map[string]string{
		"la": `<LinearLayout android:id="@+id/roota"><Button android:id="@+id/childa"/></LinearLayout>`,
		"lb": `<LinearLayout android:id="@+id/rootb"><Button android:id="@+id/childb"/></LinearLayout>`,
	}

	// Context-insensitive: the helper's receiver set merges both roots and
	// its result (both children) flows back to both callers.
	base := analyzeSrc(t, src, layouts, Options{})
	xVals := base.VarPointsTo(localVar(t, base, "A", "onCreate()", "x"))
	if len(xVals) != 2 {
		t.Errorf("insensitive pts(x) = %v, want 2 (merged)", valueNames(xVals))
	}

	// Context1: each call site gets its own clone; the spurious result is
	// gone.
	ctx := analyzeSrc(t, src, layouts, Options{Context1: true})
	xVals = ctx.VarPointsTo(localVar(t, ctx, "A", "onCreate()", "x"))
	if len(xVals) != 1 {
		t.Fatalf("context-sensitive pts(x) = %v, want 1", valueNames(xVals))
	}
	if infl, ok := xVals[0].(*graph.InflNode); !ok || infl.IDName != "childa" {
		t.Errorf("pts(x) = %v, want childa", valueNames(xVals))
	}
	yVals := ctx.VarPointsTo(localVar(t, ctx, "B", "onCreate()", "y"))
	if len(yVals) != 1 {
		t.Errorf("context-sensitive pts(y) = %v, want 1", valueNames(yVals))
	}
}

package core

import (
	"strings"
	"testing"

	"gator/internal/corpus"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/trace"
)

// TestProvenanceFindView verifies the tentpole query: "why does view v flow
// to x?" for an op-produced fact. The derivation tree's root names the paper
// rule that fired, and every premise chain bottoms out in Seed facts.
func TestProvenanceFindView(t *testing.T) {
	r := analyzeFigure1(t, Options{Provenance: true})
	if !r.HasProvenance() {
		t.Fatal("provenance not recorded")
	}
	g := r.Graph.VarNode(localVar(t, r, "ConsoleActivity", "onCreate()", "g"))
	vals := r.PointsTo(g)
	if len(vals) != 1 {
		t.Fatalf("pts(g) = %v", valueNames(vals))
	}
	f, ok := r.FlowFactOf(g, vals[0])
	if !ok {
		t.Fatal("FlowFactOf: fact absent")
	}
	root := r.Why(f)
	if root == nil {
		t.Fatal("Why returned nil for a derived fact")
	}
	// g is assigned from the findViewById output: the chain is Flow steps
	// back to a FindView-rule conclusion.
	sawFindView := false
	sawSeed := false
	var walk func(n *DerivNode)
	walk = func(n *DerivNode) {
		if strings.HasPrefix(n.Rule, "FindView") {
			sawFindView = true
		}
		if n.Rule == "Seed" {
			sawSeed = true
		}
		if n.Rule == "?" {
			t.Errorf("premise without derivation: %s", r.FactString(n.Fact))
		}
		if !n.Repeat && len(n.Premises) == 0 && n.Rule != "Seed" {
			t.Errorf("non-seed leaf %s derived by %s", r.FactString(n.Fact), n.Rule)
		}
		for _, p := range n.Premises {
			walk(p)
		}
	}
	walk(root)
	if !sawFindView {
		t.Errorf("derivation of %s never applies a FindView rule:\n%s",
			r.FactString(f), r.RenderDerivation(f))
	}
	if !sawSeed {
		t.Errorf("derivation of %s never reaches a Seed fact:\n%s",
			r.FactString(f), r.RenderDerivation(f))
	}
	// The rendering names the rule at each node.
	text := r.RenderDerivation(f)
	if !strings.Contains(text, "[FindView") || !strings.Contains(text, "[Seed]") {
		t.Errorf("rendering misses rule names:\n%s", text)
	}
}

// TestProvenanceRelationshipFacts: the recorded DAG covers relationship
// facts (ancestorOf, hasId, rootView), not just points-to facts, and the
// FindView premises cite them.
func TestProvenanceRelationshipFacts(t *testing.T) {
	src := `
class Main extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.go);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`,
	}
	r := analyzeSrc(t, src, layouts, Options{Provenance: true})
	b := r.Graph.VarNode(localVar(t, r, "Main", "onCreate()", "b"))
	vals := r.PointsTo(b)
	if len(vals) != 1 {
		t.Fatalf("pts(b) = %v", valueNames(vals))
	}
	f, _ := r.FlowFactOf(b, vals[0])
	text := r.RenderDerivation(f)
	for _, want := range []string{"[FindView2]", "rootView(", "ancestorOf(", "hasId(", "[Seed]"} {
		if !strings.Contains(text, want) {
			t.Errorf("derivation misses %q:\n%s", want, text)
		}
	}
	// hasId facts are queryable by resource name.
	idFacts := r.ViewIDFacts("go")
	if len(idFacts) != 1 {
		t.Fatalf("ViewIDFacts(go) = %v", idFacts)
	}
	if r.Why(idFacts[0]) == nil {
		t.Error("hasId fact has no derivation")
	}
	if r.ViewIDFacts("missing") != nil {
		t.Error("ViewIDFacts of unknown id should be nil")
	}
}

// TestProvenanceWellFounded: every premise of every recorded fact has its
// own recorded derivation, so Why always expands to Seed leaves.
func TestProvenanceWellFounded(t *testing.T) {
	r := analyzeFigure1(t, Options{Provenance: true})
	if r.NumDerivations() == 0 {
		t.Fatal("no derivations recorded")
	}
	for f, d := range r.rec.deriv {
		for _, p := range d.Premises {
			if _, ok := r.rec.deriv[p]; !ok {
				t.Errorf("fact %s (rule %s) has unrecorded premise %s",
					r.FactString(f), d.Rule, r.FactString(p))
			}
		}
	}
}

// TestProvenanceCoversSolution: every fact in the final points-to solution
// has a derivation — nothing enters the solution unexplained.
func TestProvenanceCoversSolution(t *testing.T) {
	r := analyzeFigure1(t, Options{Provenance: true})
	r.pts.visit(r.Graph.Nodes(), func(n graph.Node, s *ValueSet) {
		for _, v := range s.Values() {
			if _, ok := r.rec.deriv[flowFact(n, v)]; !ok {
				t.Errorf("flowsTo(%s, %s) has no recorded derivation", n, v)
			}
		}
	})
}

// TestProvenanceDeterministic: fact ids and rendered trees are identical
// across independent runs — the stability contract that makes the DAG a
// substrate for incremental solving.
func TestProvenanceDeterministic(t *testing.T) {
	render := func() (int, string) {
		r := analyzeFigure1(t, Options{Provenance: true})
		g := r.Graph.VarNode(localVar(t, r, "ConsoleActivity", "onCreate()", "g"))
		vals := r.PointsTo(g)
		if len(vals) != 1 {
			t.Fatalf("pts(g) = %v", valueNames(vals))
		}
		f, _ := r.FlowFactOf(g, vals[0])
		return r.NumDerivations(), r.RenderDerivation(f)
	}
	n1, t1 := render()
	n2, t2 := render()
	if n1 != n2 {
		t.Errorf("derivation counts differ across runs: %d vs %d", n1, n2)
	}
	if t1 != t2 {
		t.Errorf("rendered trees differ across runs:\n--- run 1 ---\n%s--- run 2 ---\n%s", t1, t2)
	}
}

// TestProvenanceDisabled: without Options.Provenance the query API reports
// cleanly empty results.
func TestProvenanceDisabled(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	if r.HasProvenance() {
		t.Error("HasProvenance without Options.Provenance")
	}
	if r.NumDerivations() != 0 {
		t.Error("NumDerivations != 0 without provenance")
	}
	g := r.Graph.VarNode(localVar(t, r, "ConsoleActivity", "onCreate()", "g"))
	vals := r.PointsTo(g)
	if len(vals) != 1 {
		t.Fatalf("pts(g) = %v", valueNames(vals))
	}
	f, ok := r.FlowFactOf(g, vals[0])
	if !ok {
		t.Fatal("FlowFactOf should report facts that hold even without provenance")
	}
	if r.Why(f) != nil {
		t.Error("Why != nil without provenance")
	}
	if r.RenderDerivation(f) != "" {
		t.Error("RenderDerivation != \"\" without provenance")
	}
}

// TestProvenanceSameSolution: recording provenance must not change the
// computed solution.
func TestProvenanceSameSolution(t *testing.T) {
	plain := analyzeFigure1(t, Options{})
	prov := analyzeFigure1(t, Options{Provenance: true})
	if plain.pts.size() != prov.pts.size() {
		t.Fatalf("pts sizes differ: %d vs %d", plain.pts.size(), prov.pts.size())
	}
	plain.pts.visit(plain.Graph.Nodes(), func(n graph.Node, s *ValueSet) {
		// Node identities differ across runs; compare by id through the
		// other graph's node list.
		other := prov.Graph.Nodes()[n.ID()]
		ps := prov.pts.of(other)
		if ps == nil || ps.Len() != s.Len() {
			t.Errorf("pts(%s) differs with provenance enabled", n)
		}
	})
	if plain.Iterations != prov.Iterations {
		t.Errorf("iteration counts differ: %d vs %d", plain.Iterations, prov.Iterations)
	}
}

// TestSolverTraceEvents: a traced analysis emits balanced build/solve phases
// and per-round iteration events with rule firings named after the paper's
// rules.
func TestSolverTraceEvents(t *testing.T) {
	sink := &trace.Collect{}
	tr := trace.New(sink)
	scope := tr.Scope("figure1", 0)
	r := analyzeFigure1(t, Options{Trace: scope})

	evs := sink.Events()
	phases := map[string]int{}
	iterations := 0
	rules := map[string]int64{}
	for _, ev := range evs {
		switch ev.Kind {
		case trace.KindPhaseBegin:
			phases[ev.Name]++
		case trace.KindPhaseEnd:
			phases[ev.Name]--
		case trace.KindIteration:
			iterations++
		case trace.KindRule:
			rules[ev.Name] += ev.N
		}
		if ev.App != "figure1" {
			t.Errorf("event app = %q", ev.App)
		}
	}
	for _, phase := range []string{"build", "solve"} {
		if phases[phase] != 0 {
			t.Errorf("unbalanced %s phase events: %d", phase, phases[phase])
		}
	}
	if iterations != r.Iterations {
		t.Errorf("iteration events = %d, solver iterations = %d", iterations, r.Iterations)
	}
	if len(rules) == 0 {
		t.Error("no rule events emitted")
	}
	for name := range rules {
		if name != "OnClick" && !knownRuleName(name) {
			t.Errorf("rule event with unknown name %q", name)
		}
	}
}

func knownRuleName(name string) bool {
	for _, r := range []string{
		"Inflate1", "Inflate2", "AddView1", "AddView2", "SetId", "SetListener",
		"FindView1", "FindView2", "FindView3", "SetIntentTarget", "FindParent",
		"MenuAdd", "SetAdapter",
	} {
		if name == r {
			return true
		}
	}
	return false
}

// TestTracingDisabledZeroAlloc is the overhead contract of the
// instrumentation layer: with tracing and provenance disabled (nil scope,
// nil recorder), every emission path the solver executes is an
// allocation-free no-op.
func TestTracingDisabledZeroAlloc(t *testing.T) {
	var s *trace.Scope
	allocs := testing.AllocsPerRun(1000, func() {
		// Exactly the calls solve() and Analyze() make per round / firing.
		s.Begin("build")
		s.End("build")
		s.Begin("solve")
		s.Iteration(3, 128)
		s.Rule("FindView2", 1)
		s.Rule("Inflate2", 1)
		s.End("solve")
	})
	if allocs != 0 {
		t.Errorf("disabled tracing allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkSolveTracingDisabled measures the default (untraced) analysis of
// the Figure 1 program. Its guard re-asserts the zero-allocation contract of
// the disabled instrumentation paths before timing, so a regression fails
// the benchmark rather than silently skewing it.
func BenchmarkSolveTracingDisabled(b *testing.B) {
	var s *trace.Scope
	if allocs := testing.AllocsPerRun(1000, func() {
		s.Begin("solve")
		s.Iteration(1, 1)
		s.Rule("FindView2", 1)
		s.End("solve")
	}); allocs != 0 {
		b.Fatalf("disabled tracing allocates %v allocs/op, want 0", allocs)
	}
	p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(p, Options{})
	}
}

// BenchmarkSolveProvenance measures the same analysis with the derivation
// DAG recorded, to keep the provenance overhead visible.
func BenchmarkSolveProvenance(b *testing.B) {
	p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Analyze(p, Options{Provenance: true})
	}
}

// TestProvenanceFlowChain: a pure data-flow chain (no GUI op) renders as
// Flow steps ending in the allocation seed.
func TestProvenanceFlowChain(t *testing.T) {
	src := `
class A extends Activity {
	View keep;
	void onCreate() {
		LinearLayout x = new LinearLayout();
		View y = x;
		this.keep = y;
	}
	void later() {
		View z = this.keep;
	}
}`
	r := analyzeSrc(t, src, nil, Options{Provenance: true})
	z := r.Graph.VarNode(localVar(t, r, "A", "later()", "z"))
	vals := r.PointsTo(z)
	if len(vals) != 1 {
		t.Fatalf("pts(z) = %v", valueNames(vals))
	}
	f, _ := r.FlowFactOf(z, vals[0])
	text := r.RenderDerivation(f)
	if !strings.Contains(text, "[Flow]") || !strings.Contains(text, "[Seed]") {
		t.Errorf("flow chain derivation:\n%s", text)
	}
	// Depth: z <- field <- y <- x(seed): at least three Flow nodes above the
	// seed.
	if strings.Count(text, "[Flow]") < 3 {
		t.Errorf("expected >=3 Flow steps:\n%s", text)
	}
}

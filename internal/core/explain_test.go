package core

import (
	"strings"
	"testing"

	"gator/internal/graph"
)

func TestExplainFlowChain(t *testing.T) {
	src := `
class A extends Activity {
	View keep;
	void onCreate() {
		LinearLayout x = new LinearLayout();
		View y = x;
		this.keep = y;
	}
	void later() {
		View z = this.keep;
	}
}`
	r := analyzeSrc(t, src, nil, Options{})
	z := r.Graph.VarNode(localVar(t, r, "A", "later()", "z"))
	vals := r.PointsTo(z)
	if len(vals) != 1 {
		t.Fatalf("pts(z) = %v", valueNames(vals))
	}
	chain := r.Explain(z, vals[0])
	if len(chain) < 3 {
		t.Fatalf("chain = %v", chain)
	}
	// Origin is the allocation's variable; the chain passes through the
	// field node and ends at z.
	if chain[len(chain)-1] != z {
		t.Errorf("chain does not end at z: %v", chain)
	}
	var viaField bool
	for _, n := range chain {
		if fn, ok := n.(*graph.FieldNode); ok && fn.Field.Name == "keep" {
			viaField = true
		}
	}
	if !viaField {
		t.Errorf("chain misses the field node: %v", chain)
	}
}

func TestExplainOpProduced(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	g := localVar(t, r, "ConsoleActivity", "onCreate()", "g")
	gn := r.Graph.VarNode(g)
	vals := r.PointsTo(gn)
	if len(vals) != 1 {
		t.Fatalf("pts(g) = %v", valueNames(vals))
	}
	chain := r.Explain(gn, vals[0])
	if len(chain) < 2 {
		t.Fatalf("chain = %v", chain)
	}
	op, ok := chain[0].(*graph.OpNode)
	if !ok || !strings.Contains(op.Kind.String(), "FindView") {
		t.Errorf("origin = %v, want the FindView op", chain[0])
	}
}

func TestExplainAbsentValue(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	g := r.Graph.VarNode(localVar(t, r, "ConsoleActivity", "onCreate()", "g"))
	// The activity node never flows to g.
	act := r.Graph.ActivityNode(r.Prog.Class("ConsoleActivity"))
	if chain := r.Explain(g, act); chain != nil {
		t.Errorf("Explain of absent value = %v", chain)
	}
}

func TestExplainInterprocedural(t *testing.T) {
	r := analyzeFigure1(t, Options{})
	tVar := r.Graph.VarNode(localVar(t, r, "EscapeButtonListener", "onClick(R)", "t"))
	vals := r.PointsTo(tVar)
	if len(vals) != 1 {
		t.Fatalf("pts(t) = %v", valueNames(vals))
	}
	chain := r.Explain(tVar, vals[0])
	// The TerminalView travels: FindView op in findCurrentView -> d ->
	// (return) -> t. At least op, d, t.
	if len(chain) < 3 {
		t.Errorf("chain too short: %v", chain)
	}
}

package core

import (
	"testing"

	"gator/internal/graph"
)

const menuApp = `
class A extends Activity {
	void onCreate() {
	}
	void onCreateOptionsMenu(Menu menu) {
		MenuItem save = menu.add(R.id.menu_save);
		MenuItem quit = menu.add(R.id.menu_quit);
	}
	void onOptionsItemSelected(MenuItem item) {
	}
}
class B extends Activity {
	void onCreate() {
	}
	void onCreateOptionsMenu(Menu menu) {
		MenuItem help = menu.add(R.id.menu_help);
	}
	void onOptionsItemSelected(MenuItem item) {
	}
}`

func TestMenuModel(t *testing.T) {
	r := analyzeSrc(t, menuApp, nil, Options{})
	g := r.Graph

	menuA := g.MenuNode(r.Prog.Class("A"))
	menuB := g.MenuNode(r.Prog.Class("B"))

	// The menu parameter receives the activity's menu.
	mVals := r.VarPointsTo(localVar(t, r, "A", "onCreateOptionsMenu(R)", "menu"))
	if len(mVals) != 1 || mVals[0] != menuA {
		t.Errorf("pts(menu) = %v", valueNames(mVals))
	}

	// Each add site yields one item, associated with its id.
	itemsA := g.MenuItems(menuA)
	if len(itemsA) != 2 {
		t.Fatalf("items of A = %v", valueNames(itemsA))
	}
	idNames := map[string]bool{}
	for _, it := range itemsA {
		for _, id := range g.ViewIDsOf(it) {
			idNames[id.Name] = true
		}
	}
	if !idNames["menu_save"] || !idNames["menu_quit"] {
		t.Errorf("item ids = %v", idNames)
	}

	// Items flow to the owning activity's selection callback — and only
	// that activity's.
	selA := r.VarPointsTo(localVar(t, r, "A", "onOptionsItemSelected(R)", "item"))
	if len(selA) != 2 {
		t.Errorf("pts(A.item) = %v", valueNames(selA))
	}
	selB := r.VarPointsTo(localVar(t, r, "B", "onOptionsItemSelected(R)", "item"))
	if len(selB) != 1 {
		t.Errorf("pts(B.item) = %v", valueNames(selB))
	}
	if len(g.MenuItems(menuB)) != 1 {
		t.Errorf("items of B = %v", valueNames(g.MenuItems(menuB)))
	}

	// The add result variable holds the item.
	saveVals := r.VarPointsTo(localVar(t, r, "A", "onCreateOptionsMenu(R)", "save"))
	if len(saveVals) != 1 {
		t.Fatalf("pts(save) = %v", valueNames(saveVals))
	}
	if _, ok := saveVals[0].(*graph.MenuItemNode); !ok {
		t.Errorf("pts(save) = %v", valueNames(saveVals))
	}
}

func TestMenuSharedHelper(t *testing.T) {
	// A shared helper populating several activities' menus merges, like
	// find-view helpers do (context insensitivity).
	src := `
class MenuHelper {
	void fill(Menu m) {
		MenuItem x = m.add(R.id.common);
	}
}
class A extends Activity {
	void onCreate() { }
	void onCreateOptionsMenu(Menu menu) {
		MenuHelper h = new MenuHelper();
		h.fill(menu);
	}
	void onOptionsItemSelected(MenuItem item) { }
}
class B extends Activity {
	void onCreate() { }
	void onCreateOptionsMenu(Menu menu) {
		MenuHelper h = new MenuHelper();
		h.fill(menu);
	}
	void onOptionsItemSelected(MenuItem item) { }
}`
	r := analyzeSrc(t, src, nil, Options{})
	// One shared add site: both menus get the same item abstraction, and
	// both selection callbacks see it.
	for _, cls := range []string{"A", "B"} {
		sel := r.VarPointsTo(localVar(t, r, cls, "onOptionsItemSelected(R)", "item"))
		if len(sel) != 1 {
			t.Errorf("pts(%s.item) = %v", cls, valueNames(sel))
		}
	}

	// Under Context1, each activity gets its own cloned add site.
	rc := analyzeSrc(t, src, nil, Options{Context1: true})
	items := 0
	for _, n := range rc.Graph.Nodes() {
		if _, ok := n.(*graph.MenuItemNode); ok {
			items++
		}
	}
	if items < 2 {
		t.Errorf("Context1 menu items = %d, want >= 2 (per-site clones)", items)
	}
}

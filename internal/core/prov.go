package core

// Derivation provenance: when Options.Provenance is set, every fact the
// fixpoint solver derives — flowsTo(n, v) facts in points-to sets and the
// relationship facts ancestorOf/hasId/hasListener/rootView/... — records
// the inference rule that produced it (the paper's Section 4.2 rule names:
// Inflate1/2, AddView1/2, SetId, SetListener, FindView1/2/3, plus the
// extension rules) and the premise facts the rule consumed. The records
// form a derivation DAG: every premise of a fact was established strictly
// before the fact itself, so expanding premises always terminates.
//
// Fact identity is the (kind, node id, node id) triple. Graph node ids are
// assigned in construction order, which is deterministic for a given
// (input, options) pair, so fact ids — and therefore rendered derivation
// trees — are stable across runs and across batch parallelism levels. This
// stability is what makes the DAG usable as a substrate for incremental
// solving later: a re-run derives the same facts under the same ids.
//
// Only the first derivation of each fact is kept. First derivations are
// minimal in derivation order: every premise chain bottoms out in Seed
// facts through the shortest rule sequence the solver actually executed.

import (
	"fmt"
	"sort"
	"strings"

	"gator/internal/graph"
)

// FactKind classifies a derived fact.
type FactKind uint8

const (
	// FactFlow is flowsTo(node, value): the value reaches the variable,
	// field, or operation-output node.
	FactFlow FactKind = iota
	// FactChild is one direct parent-child view edge — an instance of the
	// paper's ancestorOf relation.
	FactChild
	// FactViewID is hasId(view, id).
	FactViewID
	// FactListener is hasListener(view, listener).
	FactListener
	// FactRoot is rootView(owner, view): the view is a content root of the
	// activity or dialog.
	FactRoot
	// FactIntent is intentTarget(intent, class).
	FactIntent
	// FactMenuItem is menuItem(menu, item).
	FactMenuItem
)

var factKindNames = [...]string{
	FactFlow:     "flowsTo",
	FactChild:    "ancestorOf",
	FactViewID:   "hasId",
	FactListener: "hasListener",
	FactRoot:     "rootView",
	FactIntent:   "intentTarget",
	FactMenuItem: "menuItem",
}

func (k FactKind) String() string {
	if int(k) < len(factKindNames) {
		return factKindNames[k]
	}
	return "fact?"
}

// Fact identifies one derived fact by kind and the graph-node ids of its
// two operands. For FactFlow, A is the variable/field node and B the value;
// for relationship facts, A and B are the related values.
type Fact struct {
	Kind FactKind
	A, B int
}

// Derivation is one recorded rule application: the rule name and the
// premise facts it consumed, in rule-evaluation order.
type Derivation struct {
	Rule     string
	Premises []Fact
}

// recorder accumulates the derivation DAG during solving.
type recorder struct {
	deriv map[Fact]Derivation
}

func newRecorder() *recorder {
	return &recorder{deriv: map[Fact]Derivation{}}
}

// record keeps the first derivation of f; later re-derivations are ignored
// so the DAG stays well-founded and minimal.
func (rec *recorder) record(f Fact, rule string, premises ...Fact) {
	if _, ok := rec.deriv[f]; ok {
		return
	}
	rec.deriv[f] = Derivation{Rule: rule, Premises: append([]Fact(nil), premises...)}
}

// Fact constructors.

func flowFact(n graph.Node, v graph.Value) Fact { return Fact{FactFlow, n.ID(), v.ID()} }
func childFact(parent, child graph.Value) Fact  { return Fact{FactChild, parent.ID(), child.ID()} }
func viewIDFact(view, id graph.Value) Fact      { return Fact{FactViewID, view.ID(), id.ID()} }
func listenerFact(view, lst graph.Value) Fact   { return Fact{FactListener, view.ID(), lst.ID()} }
func rootFact(owner, view graph.Value) Fact     { return Fact{FactRoot, owner.ID(), view.ID()} }
func intentFact(intent, cls graph.Value) Fact   { return Fact{FactIntent, intent.ID(), cls.ID()} }
func menuItemFact(menu, item graph.Value) Fact  { return Fact{FactMenuItem, menu.ID(), item.ID()} }

// childPath returns the chain of direct child facts along one recorded path
// from ancestor anc down to descendant desc (nil when anc == desc). The
// path is found by walking desc's recorded parents breadth-first in
// insertion order, so it is deterministic and uses only edges the solver
// actually added. Called only while recording provenance.
func (a *analysis) childPath(anc, desc graph.Value) []Fact {
	if anc.ID() == desc.ID() {
		return nil
	}
	// BFS upward from desc to anc over parent edges; via maps each visited
	// ancestor to the child we climbed up from (toward desc).
	via := map[int]graph.Value{}
	queue := []graph.Value{desc}
	seen := map[int]bool{desc.ID(): true}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v.ID() == anc.ID() {
			// Reconstruct downward: anc -> ... -> desc.
			var out []Fact
			for cur := v; cur.ID() != desc.ID(); {
				child := via[cur.ID()]
				out = append(out, childFact(cur, child))
				cur = child
			}
			return out
		}
		for _, p := range a.g.Parents(v) {
			if !seen[p.ID()] {
				seen[p.ID()] = true
				via[p.ID()] = v
				queue = append(queue, p)
			}
		}
	}
	return nil
}

// DerivNode is one node of a rendered derivation tree: a fact, the rule
// that derived it, and the derivations of its premises. Facts that were
// already expanded elsewhere in the same tree appear once in full; repeat
// occurrences carry Repeat=true and no premises, keeping the tree minimal.
type DerivNode struct {
	Fact     Fact
	Rule     string
	Premises []*DerivNode
	Repeat   bool
}

// HasProvenance reports whether the run recorded a derivation DAG
// (Options.Provenance).
func (r *Result) HasProvenance() bool { return r.rec != nil }

// Why expands the minimal derivation tree of a fact. It returns nil when
// provenance was not recorded or the fact was never derived.
func (r *Result) Why(f Fact) *DerivNode {
	if r.rec == nil {
		return nil
	}
	if _, ok := r.rec.deriv[f]; !ok {
		return nil
	}
	seen := map[Fact]bool{}
	var expand func(f Fact) *DerivNode
	expand = func(f Fact) *DerivNode {
		d, ok := r.rec.deriv[f]
		if !ok {
			// A premise recorded without its own derivation (should not
			// happen; defensive).
			return &DerivNode{Fact: f, Rule: "?"}
		}
		n := &DerivNode{Fact: f, Rule: d.Rule}
		if seen[f] {
			n.Repeat = true
			return n
		}
		seen[f] = true
		for _, p := range d.Premises {
			n.Premises = append(n.Premises, expand(p))
		}
		return n
	}
	return expand(f)
}

// FactString renders a fact using the graph's node names, e.g.
// "flowsTo(Var[Main.onCreate().btn], Infl[Button@main:2 id=go #op7])".
func (r *Result) FactString(f Fact) string {
	nodes := r.Graph.Nodes()
	name := func(id int) string {
		if id >= 0 && id < len(nodes) {
			return nodes[id].String()
		}
		return fmt.Sprintf("node#%d", id)
	}
	return fmt.Sprintf("%s(%s, %s)", f.Kind, name(f.A), name(f.B))
}

// RenderDerivation renders the minimal derivation tree of a fact as
// indented text, one fact per line with its deriving rule in brackets:
//
//	flowsTo(Var[...], Infl[...])  [FindView2]
//	├─ flowsTo(Var[...this], Activity[Main])  [Seed]
//	└─ rootView(Activity[Main], Infl[...])  [Inflate2]
//
// Returns "" when the fact has no recorded derivation.
func (r *Result) RenderDerivation(f Fact) string {
	root := r.Why(f)
	if root == nil {
		return ""
	}
	var b strings.Builder
	var walk func(n *DerivNode, prefix string, childPrefix string)
	walk = func(n *DerivNode, prefix, childPrefix string) {
		b.WriteString(prefix)
		b.WriteString(r.FactString(n.Fact))
		b.WriteString("  [")
		b.WriteString(n.Rule)
		if n.Repeat {
			b.WriteString(", shown above")
		}
		b.WriteString("]\n")
		for i, p := range n.Premises {
			if i == len(n.Premises)-1 {
				walk(p, childPrefix+"└─ ", childPrefix+"   ")
			} else {
				walk(p, childPrefix+"├─ ", childPrefix+"│  ")
			}
		}
	}
	walk(root, "", "")
	return b.String()
}

// FlowFactOf returns the flowsTo fact for value v at node n, for use with
// Why/RenderDerivation. The boolean reports whether the fact holds in the
// solution.
func (r *Result) FlowFactOf(n graph.Node, v graph.Value) (Fact, bool) {
	s := r.pts.of(n)
	if s == nil || !s.Contains(v) {
		return Fact{}, false
	}
	return flowFact(n, v), true
}

// ViewIDFacts returns, for the view id named name, one hasId fact per view
// carrying that id, in deterministic (view node id) order. Used by the
// "-explain id:<name>" query.
func (r *Result) ViewIDFacts(name string) []Fact {
	var idNode *graph.ViewIDNode
	for _, id := range r.Graph.ViewIDs() {
		if id.Name == name {
			idNode = id
			break
		}
	}
	if idNode == nil {
		return nil
	}
	var out []Fact
	add := func(v graph.Value) {
		for _, id := range r.Graph.ViewIDsOf(v) {
			if id == idNode {
				out = append(out, viewIDFact(v, id))
			}
		}
	}
	for _, n := range r.Graph.Infls() {
		add(n)
	}
	for _, n := range r.Graph.Allocs() {
		add(n)
	}
	for _, m := range r.Graph.Menus() {
		for _, item := range r.Graph.MenuItems(m) {
			add(item)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].A < out[j].A })
	return out
}

// NumDerivations returns the number of facts with recorded derivations
// (0 without provenance).
func (r *Result) NumDerivations() int {
	if r.rec == nil {
		return 0
	}
	return len(r.rec.deriv)
}

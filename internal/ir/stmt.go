package ir

import (
	"fmt"

	"gator/internal/alite"
)

// Stmt is one lowered three-address statement. The forms mirror the ALite
// abstract syntax of the paper (Section 3), with structured control flow
// retained for the concrete interpreter; the flow-insensitive analysis
// simply walks all nested statements.
type Stmt interface {
	Pos() alite.Pos
	String() string
}

// New is x := new C(args); the constructor call is part of the statement.
type New struct {
	Dst   *Var
	Class *Class
	// Ctor is the resolved constructor; nil for platform classes with the
	// implicit default constructor.
	Ctor *Method
	Args []*Var
	At   alite.Pos
}

// Copy is x := y, optionally through a cast.
type Copy struct {
	Dst *Var
	Src *Var
	// CastTo is the resolved cast target class for (C) y, or nil.
	CastTo *Class
	At     alite.Pos
}

// Load is x := y.f.
type Load struct {
	Dst   *Var
	Base  *Var
	Field *Field
	At    alite.Pos
}

// Store is x.f := y.
type Store struct {
	Base  *Var
	Field *Field
	Src   *Var
	At    alite.Pos
}

// Invoke is [x :=] y.m(args).
type Invoke struct {
	// Dst is nil when the result is unused or the method returns void.
	Dst  *Var
	Recv *Var
	// Target is the statically resolved method in the declared type of
	// Recv; nil for opaque (unmodeled platform) calls.
	Target *Method
	// Key is the signature key used for dynamic dispatch.
	Key  string
	Args []*Var
	At   alite.Pos
}

// ConstInt is x := <integer literal>.
type ConstInt struct {
	Dst   *Var
	Value int
	At    alite.Pos
}

// ConstRes is x := R.layout.f, x := R.id.f, or x := R.string.f, with the
// constant resolved.
type ConstRes struct {
	Dst    *Var
	ID     int
	Layout bool
	Str    bool
	Name   string
	At     alite.Pos
}

// ConstClass is x := C.class.
type ConstClass struct {
	Dst   *Var
	Class *Class
	At    alite.Pos
}

// ConstNull is x := null.
type ConstNull struct {
	Dst *Var
	At  alite.Pos
}

// Return is return [x].
type Return struct {
	Src *Var // nil for bare return
	At  alite.Pos
}

// Cond is a lowered branch condition.
type Cond struct {
	Nondet  bool
	X       *Var
	Negated bool
}

func (c Cond) String() string {
	if c.Nondet {
		return "*"
	}
	op := "=="
	if c.Negated {
		op = "!="
	}
	return fmt.Sprintf("%s %s null", c.X.Name, op)
}

// If is a conditional.
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
	At   alite.Pos
}

// While is a loop.
type While struct {
	Cond Cond
	Body []Stmt
	At   alite.Pos
}

func (s *New) Pos() alite.Pos        { return s.At }
func (s *Copy) Pos() alite.Pos       { return s.At }
func (s *Load) Pos() alite.Pos       { return s.At }
func (s *Store) Pos() alite.Pos      { return s.At }
func (s *Invoke) Pos() alite.Pos     { return s.At }
func (s *ConstInt) Pos() alite.Pos   { return s.At }
func (s *ConstRes) Pos() alite.Pos   { return s.At }
func (s *ConstClass) Pos() alite.Pos { return s.At }
func (s *ConstNull) Pos() alite.Pos  { return s.At }
func (s *Return) Pos() alite.Pos     { return s.At }
func (s *If) Pos() alite.Pos         { return s.At }
func (s *While) Pos() alite.Pos      { return s.At }

func (s *New) String() string {
	return fmt.Sprintf("%s := new %s", s.Dst.Name, s.Class.Name)
}

func (s *Copy) String() string {
	if s.CastTo != nil {
		return fmt.Sprintf("%s := (%s) %s", s.Dst.Name, s.CastTo.Name, s.Src.Name)
	}
	return fmt.Sprintf("%s := %s", s.Dst.Name, s.Src.Name)
}

func (s *Load) String() string {
	return fmt.Sprintf("%s := %s.%s", s.Dst.Name, s.Base.Name, s.Field.Name)
}

func (s *Store) String() string {
	return fmt.Sprintf("%s.%s := %s", s.Base.Name, s.Field.Name, s.Src.Name)
}

func (s *Invoke) String() string {
	callee := s.Key
	if s.Target != nil {
		callee = s.Target.String()
	}
	if s.Dst != nil {
		return fmt.Sprintf("%s := %s.%s", s.Dst.Name, s.Recv.Name, callee)
	}
	return fmt.Sprintf("%s.%s", s.Recv.Name, callee)
}

func (s *ConstInt) String() string { return fmt.Sprintf("%s := %d", s.Dst.Name, s.Value) }

func (s *ConstRes) String() string {
	section := "id"
	switch {
	case s.Layout:
		section = "layout"
	case s.Str:
		section = "string"
	}
	return fmt.Sprintf("%s := R.%s.%s", s.Dst.Name, section, s.Name)
}

func (s *ConstClass) String() string {
	return fmt.Sprintf("%s := %s.class", s.Dst.Name, s.Class.Name)
}

func (s *ConstNull) String() string { return s.Dst.Name + " := null" }

func (s *Return) String() string {
	if s.Src != nil {
		return "return " + s.Src.Name
	}
	return "return"
}

func (s *If) String() string    { return "if (" + s.Cond.String() + ") ..." }
func (s *While) String() string { return "while (" + s.Cond.String() + ") ..." }

// Def returns the local variable an atomic statement (re)defines, or nil
// for statements without a destination (Store, Return, control flow, and
// void Invoke). Dataflow clients use this as the kill set of a statement.
func Def(s Stmt) *Var {
	switch s := s.(type) {
	case *New:
		return s.Dst
	case *Copy:
		return s.Dst
	case *Load:
		return s.Dst
	case *Invoke:
		return s.Dst // nil for void calls
	case *ConstInt:
		return s.Dst
	case *ConstRes:
		return s.Dst
	case *ConstClass:
		return s.Dst
	case *ConstNull:
		return s.Dst
	}
	return nil
}

// Uses returns the local variables an atomic statement reads, in operand
// order. Control-flow statements contribute their condition variable.
func Uses(s Stmt) []*Var {
	switch s := s.(type) {
	case *New:
		return s.Args
	case *Copy:
		return []*Var{s.Src}
	case *Load:
		return []*Var{s.Base}
	case *Store:
		return []*Var{s.Base, s.Src}
	case *Invoke:
		out := []*Var{s.Recv}
		return append(out, s.Args...)
	case *Return:
		if s.Src != nil {
			return []*Var{s.Src}
		}
	case *If:
		if !s.Cond.Nondet {
			return []*Var{s.Cond.X}
		}
	case *While:
		if !s.Cond.Nondet {
			return []*Var{s.Cond.X}
		}
	}
	return nil
}

// WalkStmts visits every statement in the list, recursing into If/While
// bodies, in syntactic order.
func WalkStmts(stmts []Stmt, visit func(Stmt)) {
	for _, s := range stmts {
		visit(s)
		switch s := s.(type) {
		case *If:
			WalkStmts(s.Then, visit)
			WalkStmts(s.Else, visit)
		case *While:
			WalkStmts(s.Body, visit)
		}
	}
}

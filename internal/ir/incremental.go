package ir

// Incremental re-lowering. An edit that changes only method bodies leaves
// every resolution-stage artifact of a Program intact: the class set, the
// inheritance hierarchy, field and method signatures, and the layout/R
// tables. PatchFile exploits that: it re-lowers the bodies of one edited
// source file in place, keeping every pointer of the untouched files
// (classes, fields, methods, receiver and parameter variables) identical.
// The constraint graph built from a patched Program is therefore
// node-for-node identical to the graph a from-scratch Build of the edited
// sources would produce, which is what makes incremental re-analysis
// byte-equivalent to a cold run (see DESIGN.md, "Incremental solving").
//
// ShapeSignature decides eligibility: two versions of a file with equal
// signatures differ at most in method bodies (and source positions, which
// PatchFile refreshes). Any other difference — a new class, a changed
// supertype, a renamed parameter — forces the caller onto the full-rebuild
// path.

import (
	"fmt"
	"strings"

	"gator/internal/alite"
)

// ShapeSignature fingerprints everything in a parsed source file except
// method bodies: declaration order and kinds, class names, supertypes,
// implemented interfaces, field names and types, and full method signatures
// including parameter names and whether a body is present. Positions are
// deliberately excluded — an edit that only shifts line numbers keeps the
// shape, and PatchFile refreshes the recorded positions.
func ShapeSignature(f *alite.File) string {
	var b strings.Builder
	for _, d := range f.Decls {
		switch d := d.(type) {
		case *alite.ClassDecl:
			fmt.Fprintf(&b, "class %s extends %s implements %s\n",
				d.Name, d.Super, strings.Join(d.Implements, ","))
			for _, fd := range d.Fields {
				fmt.Fprintf(&b, "  field %s %s\n", fd.Name, fd.Type)
			}
			for _, md := range d.Methods {
				writeMethodShape(&b, md)
			}
		case *alite.InterfaceDecl:
			fmt.Fprintf(&b, "interface %s extends %s\n",
				d.Name, strings.Join(d.Extends, ","))
			for _, md := range d.Methods {
				writeMethodShape(&b, md)
			}
		}
	}
	return b.String()
}

func writeMethodShape(b *strings.Builder, md *alite.MethodDecl) {
	kind := "method"
	if md.IsCtor {
		kind = "ctor"
	}
	fmt.Fprintf(b, "  %s %s %s(", kind, md.Return, md.Name)
	for i, p := range md.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s %s", p.Type, p.Name)
	}
	if md.Body != nil {
		b.WriteString(") {}\n")
	} else {
		b.WriteString(");\n")
	}
}

// PatchFile re-lowers the method bodies declared in one edited source file,
// mutating p in place. The caller must have verified that the new file's
// ShapeSignature equals the old one's and that f.Name was part of the
// original Build; PatchFile trusts both and errors out defensively when a
// declaration does not line up.
//
// On success, p is structurally identical to a from-scratch Build of the
// edited sources: clean files keep their exact pointers, the dirty file's
// methods keep their identity (class, key, receiver, parameters) with fresh
// bodies, locals, and positions, and Program.Opaque is rebuilt in original
// file order. On error, p may hold a mix of old and new bodies and must be
// discarded.
func PatchFile(p *Program, f *alite.File) error {
	known := false
	for _, name := range p.fileOrder {
		if name == f.Name {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("ir: patch: file %s was not part of the original build", f.Name)
	}

	b := &builder{prog: p, appDecls: map[string]alite.Decl{}}
	for _, d := range f.Decls {
		b.appDecls[d.DeclName()] = d
	}
	p.opaqueByFile[f.Name] = nil

	for _, d := range f.Decls {
		c := p.Classes[d.DeclName()]
		if c == nil || c.IsPlatform || c.Pos.File != f.Name {
			return fmt.Errorf("ir: patch: class %s does not belong to %s", d.DeclName(), f.Name)
		}
		c.Pos = d.DeclPos()
		switch d := d.(type) {
		case *alite.ClassDecl:
			if err := b.patchClass(c, d); err != nil {
				return err
			}
		case *alite.InterfaceDecl:
			for _, md := range d.Methods {
				m, err := b.patchTarget(c, md)
				if err != nil {
					return err
				}
				m.Pos = md.Pos
			}
		}
	}
	if err := b.errs.Err(); err != nil {
		return err
	}
	p.rebuildOpaque()
	return nil
}

// patchClass refreshes positions and re-lowers every body-bearing method of
// one class declaration.
func (b *builder) patchClass(c *Class, cd *alite.ClassDecl) error {
	for _, md := range cd.Methods {
		m, err := b.patchTarget(c, md)
		if err != nil {
			return err
		}
		m.Pos = md.Pos
		if m.This != nil {
			m.This.Pos = md.Pos
		}
		for i, prm := range md.Params {
			m.Params[i].Pos = prm.Pos
		}
		if md.Body == nil {
			continue
		}
		// Reset the local table to receiver + parameters (dropping the old
		// body's user locals and lowering temporaries), then lower the new
		// body exactly as lowerBodies does.
		m.Locals = m.Locals[:0]
		if m.This != nil {
			m.Locals = append(m.Locals, m.This)
		}
		m.Locals = append(m.Locals, m.Params...)
		lw := &lowerer{b: b, m: m}
		lw.pushScope()
		for _, p := range m.Params {
			lw.scopes[0][p.Name] = p
		}
		m.Body = lw.block(md.Body)
	}
	return nil
}

// patchTarget resolves the Method a declaration lines up with, verifying
// the shape contract (same key, same parameter count and names).
func (b *builder) patchTarget(c *Class, md *alite.MethodDecl) (*Method, error) {
	ptypes := make([]alite.Type, len(md.Params))
	for i, prm := range md.Params {
		t, _ := b.resolveType(prm.Type, prm.Pos)
		ptypes[i] = t
	}
	m := c.Methods[MethodKey(md.Name, ptypes)]
	if m == nil || len(m.Params) != len(md.Params) {
		return nil, fmt.Errorf("ir: patch: method %s.%s does not match the built program (shape changed?)", c.Name, md.Name)
	}
	for i, prm := range md.Params {
		if m.Params[i].Name != prm.Name {
			return nil, fmt.Errorf("ir: patch: parameter %d of %s.%s renamed (shape changed?)", i, c.Name, md.Name)
		}
	}
	if (m.Body == nil) != (md.Body == nil) {
		return nil, fmt.Errorf("ir: patch: method %s.%s gained or lost its body (shape changed?)", c.Name, md.Name)
	}
	return m, nil
}

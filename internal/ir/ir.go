// Package ir defines the resolved program model and three-address
// intermediate representation that the analysis (package core) and the
// concrete interpreter (package interp) consume.
//
// A Program combines the application's ALite classes with the modeled
// platform hierarchy (package platform) and the application's linked layouts
// and resource table (package layout). Building a Program performs semantic
// resolution: class-table construction, inheritance checking, name
// resolution, type checking of the ALite statement forms, and lowering of
// nested expressions into the paper's three-address statements.
package ir

import (
	"fmt"
	"sort"

	"gator/internal/alite"
	"gator/internal/layout"
	"gator/internal/platform"
)

// Program is a resolved, lowered ALite application plus its platform model
// and resources.
type Program struct {
	// Classes maps every class and interface name (application and
	// platform) to its resolved representation.
	Classes map[string]*Class
	// Layouts are the linked layout definitions by name.
	Layouts map[string]*layout.Layout
	// R is the resource constant table.
	R *layout.RTable
	// Opaque records calls to unmodeled platform methods, for diagnostics.
	Opaque []*Invoke

	object         *Class
	activity       *Class
	dialog         *Class
	view           *Class
	listenerIfaces map[string]platform.ListenerSpec

	// fileOrder is the source-file order of the original Build; opaqueByFile
	// holds each file's Opaque entries in lowering order. Together they let
	// PatchFile rebuild Opaque after re-lowering a single file without
	// disturbing the global order a full Build would produce.
	fileOrder    []string
	opaqueByFile map[string][]*Invoke

	// appClasses memoizes AppClasses: the class set is fixed once Build
	// returns (incremental re-lowering replaces method bodies only).
	appClasses []*Class
}

// Object returns the root class.
func (p *Program) Object() *Class { return p.object }

// SourceFiles returns the source file names in original build order. The
// returned slice is shared; callers must not modify it.
func (p *Program) SourceFiles() []string { return p.fileOrder }

// addOpaque records one unmodeled platform call, attributed to the source
// file of the containing method so PatchFile can rebuild Program.Opaque.
func (p *Program) addOpaque(m *Method, inv *Invoke) {
	file := m.Pos.File
	p.opaqueByFile[file] = append(p.opaqueByFile[file], inv)
}

// rebuildOpaque reassembles Program.Opaque from the per-file lists in the
// original build's file order, matching what a from-scratch Build emits.
func (p *Program) rebuildOpaque() {
	p.Opaque = p.Opaque[:0]
	for _, f := range p.fileOrder {
		p.Opaque = append(p.Opaque, p.opaqueByFile[f]...)
	}
}

// AppClasses returns the application (non-platform) classes, sorted by name.
// The returned slice is shared; callers must not modify it.
func (p *Program) AppClasses() []*Class {
	if p.appClasses == nil {
		out := make([]*Class, 0, len(p.Classes))
		for _, c := range p.Classes {
			if !c.IsPlatform {
				out = append(out, c)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		p.appClasses = out
	}
	return p.appClasses
}

// Class returns the class with the given name, or nil.
func (p *Program) Class(name string) *Class { return p.Classes[name] }

// IsActivityClass reports whether c is an application activity class
// (a non-platform subclass of Activity).
func (p *Program) IsActivityClass(c *Class) bool {
	return !c.IsPlatform && c.SubtypeOf(p.activity)
}

// IsDialogClass reports whether c is an application dialog class.
func (p *Program) IsDialogClass(c *Class) bool {
	return !c.IsPlatform && c.SubtypeOf(p.dialog)
}

// IsViewClass reports whether c is a view class (platform or application).
func (p *Program) IsViewClass(c *Class) bool { return c.SubtypeOf(p.view) }

// ListenerSpecsOf returns the platform listener interfaces that c
// (transitively) implements; empty for non-listener classes.
func (p *Program) ListenerSpecsOf(c *Class) []platform.ListenerSpec {
	var out []platform.ListenerSpec
	seen := map[string]bool{}
	var visit func(c *Class)
	visit = func(c *Class) {
		if c == nil || seen[c.Name] {
			return
		}
		seen[c.Name] = true
		if spec, ok := p.listenerIfaces[c.Name]; ok {
			out = append(out, spec)
		}
		visit(c.Super)
		for _, i := range c.Interfaces {
			visit(i)
		}
	}
	visit(c)
	sort.Slice(out, func(i, j int) bool { return out[i].Interface < out[j].Interface })
	return out
}

// IsListenerClass reports whether c implements any listener interface.
func (p *Program) IsListenerClass(c *Class) bool {
	return len(p.ListenerSpecsOf(c)) > 0
}

// Class is a resolved class or interface.
type Class struct {
	Name        string
	Super       *Class // nil only for Object and for interfaces
	Interfaces  []*Class
	IsInterface bool
	IsPlatform  bool
	Fields      []*Field
	// Methods maps signature key (name + parameter-kind string) to the
	// method declared directly in this class.
	Methods map[string]*Method
	Pos     alite.Pos

	// ancestors memoizes the transitive supertype closure (including c
	// itself). The hierarchy is fixed once Build returns — incremental
	// re-lowering replaces method bodies only — so the closure is computed
	// at most once per class.
	ancestors map[*Class]bool
}

func (c *Class) String() string { return c.Name }

// SubtypeOf reports whether c is t or a transitive subtype of t, through
// both extends and implements edges.
func (c *Class) SubtypeOf(t *Class) bool {
	if t == nil {
		return false
	}
	if c.ancestors == nil {
		anc := map[*Class]bool{}
		var walk func(x *Class)
		walk = func(x *Class) {
			if x == nil || anc[x] {
				return
			}
			anc[x] = true
			walk(x.Super)
			for _, i := range x.Interfaces {
				walk(i)
			}
		}
		walk(c)
		c.ancestors = anc
	}
	return c.ancestors[t]
}

// LookupField resolves a field name through the superclass chain.
func (c *Class) LookupField(name string) *Field {
	for x := c; x != nil; x = x.Super {
		for _, f := range x.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// LookupMethod resolves a signature key through superclasses and interfaces,
// returning the most-derived declaration visible from c.
func (c *Class) LookupMethod(key string) *Method {
	for x := c; x != nil; x = x.Super {
		if m, ok := x.Methods[key]; ok {
			return m
		}
	}
	// Interface methods (including inherited interface methods).
	seen := map[*Class]bool{}
	var walk func(x *Class) *Method
	walk = func(x *Class) *Method {
		if x == nil || seen[x] {
			return nil
		}
		seen[x] = true
		if m, ok := x.Methods[key]; ok {
			return m
		}
		if m := walk(x.Super); m != nil {
			return m
		}
		for _, i := range x.Interfaces {
			if m := walk(i); m != nil {
				return m
			}
		}
		return nil
	}
	return walk(c)
}

// Dispatch resolves a virtual call on a concrete receiver class: the
// most-derived concrete (body-bearing or platform) method matching key.
func (c *Class) Dispatch(key string) *Method {
	for x := c; x != nil; x = x.Super {
		if m, ok := x.Methods[key]; ok {
			return m
		}
	}
	return nil
}

// MethodsSorted returns this class's directly declared methods sorted by
// signature key, for deterministic iteration.
func (c *Class) MethodsSorted() []*Method {
	keys := make([]string, 0, len(c.Methods))
	for k := range c.Methods {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*Method, len(keys))
	for i, k := range keys {
		out[i] = c.Methods[k]
	}
	return out
}

// Field is a resolved field declaration.
type Field struct {
	Class *Class
	Name  string
	Type  alite.Type
	// TypeClass is the resolved class for reference-typed fields.
	TypeClass *Class
}

// Sig returns the qualified field signature (DeclaringClass.name).
func (f *Field) Sig() string { return f.Class.Name + "." + f.Name }

// Method is a resolved method or constructor.
type Method struct {
	Class  *Class
	Name   string
	Key    string // signature key: name + "(" + kinds + ")"
	IsCtor bool
	Return alite.Type
	// ReturnClass is the resolved class for reference return types.
	ReturnClass *Class
	// This is the receiver variable (nil for platform methods without
	// bodies).
	This *Var
	// Params are the formal parameters, excluding the receiver.
	Params []*Var
	// Locals are all variables of the method: this, params, user locals,
	// and lowering temporaries.
	Locals []*Var
	// Body is the lowered statement list; nil for platform methods and
	// interface signatures.
	Body []Stmt
	// API is the platform operation modeled by this method, if any.
	API *platform.ApiSpec
	Pos alite.Pos
}

// QualifiedName returns Class.name for diagnostics.
func (m *Method) QualifiedName() string { return m.Class.Name + "." + m.Name }

func (m *Method) String() string { return m.Class.Name + "." + m.Key }

// IsAbstract reports whether the method has no body (interface signature or
// unmodeled platform method).
func (m *Method) IsAbstract() bool { return m.Body == nil && m.API == nil }

// Var is a local variable, parameter, receiver, or lowering temporary.
type Var struct {
	Name string
	Type alite.Type
	// TypeClass is the resolved class for reference-typed variables.
	TypeClass *Class
	Method    *Method
	// Index is the position in Method.Locals.
	Index int
	// Temp marks compiler-introduced temporaries.
	Temp bool
	Pos  alite.Pos
}

func (v *Var) String() string {
	if v.Method != nil {
		return v.Method.QualifiedName() + ":" + v.Name
	}
	return v.Name
}

// KindSig encodes parameter kinds for signature keys: 'I' for int, 'R' for
// any reference type. ALite overloading is resolved on these kinds.
func KindSig(types []alite.Type) string {
	b := make([]byte, len(types))
	for i, t := range types {
		if t.IsRef() {
			b[i] = 'R'
		} else {
			b[i] = 'I'
		}
	}
	return string(b)
}

// MethodKey builds the signature key for a method name and parameter types.
func MethodKey(name string, params []alite.Type) string {
	return fmt.Sprintf("%s(%s)", name, KindSig(params))
}

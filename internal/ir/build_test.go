package ir

import (
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/corpus"
	"gator/internal/layout"
	"gator/internal/platform"
)

func buildSrc(t *testing.T, src string, layouts map[string]string) *Program {
	t.Helper()
	p, err := buildSrcErr(src, layouts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func buildSrcErr(src string, layouts map[string]string) (*Program, error) {
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		return nil, err
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		l, err := layout.Parse(name, xml)
		if err != nil {
			return nil, err
		}
		ls[name] = l
	}
	return Build([]*alite.File{f}, ls)
}

func TestBuildFigure1(t *testing.T) {
	p, err := Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	ca := p.Class("ConsoleActivity")
	if ca == nil {
		t.Fatal("no ConsoleActivity")
	}
	if !p.IsActivityClass(ca) {
		t.Error("ConsoleActivity is not classified as activity")
	}
	tv := p.Class("TerminalView")
	if !p.IsViewClass(tv) {
		t.Error("TerminalView is not classified as view")
	}
	ebl := p.Class("EscapeButtonListener")
	if !p.IsListenerClass(ebl) {
		t.Error("EscapeButtonListener is not classified as listener")
	}
	specs := p.ListenerSpecsOf(ebl)
	if len(specs) != 1 || specs[0].Event != "click" {
		t.Errorf("listener specs = %v", specs)
	}
	if p.IsListenerClass(tv) || p.IsActivityClass(tv) {
		t.Error("TerminalView misclassified")
	}

	// The R table has both layouts and all four view ids.
	if p.R.NumLayouts() != 2 {
		t.Errorf("NumLayouts = %d", p.R.NumLayouts())
	}
	if p.R.NumViewIDs() != 4 {
		t.Errorf("NumViewIDs = %d: %v", p.R.NumViewIDs(), p.R.ViewIDNames())
	}

	// onCreate lowered: find the ops by walking statements.
	onCreate := ca.Methods["onCreate()"]
	if onCreate == nil {
		t.Fatal("no onCreate")
	}
	var kinds []platform.OpKind
	WalkStmts(onCreate.Body, func(s Stmt) {
		if inv, ok := s.(*Invoke); ok && inv.Target != nil && inv.Target.API != nil {
			kinds = append(kinds, inv.Target.API.Kind)
		}
	})
	want := []platform.OpKind{platform.OpInflate2, platform.OpFindView2, platform.OpFindView2, platform.OpSetListener}
	if len(kinds) != len(want) {
		t.Fatalf("op kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("op %d = %v, want %v", i, kinds[i], want[i])
		}
	}

	// getLayoutInflater is a typed misc API, not opaque.
	if len(p.Opaque) != 0 {
		t.Errorf("opaque calls: %v", p.Opaque)
	}
}

func TestBuildChainedCallsLowered(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		View v = this.getLayoutInflater().inflate(R.layout.main).findViewById(R.id.x);
	}
}`
	p := buildSrc(t, src, map[string]string{"main": `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`})
	m := p.Class("A").Methods["onCreate()"]
	var invokes int
	WalkStmts(m.Body, func(s Stmt) {
		if _, ok := s.(*Invoke); ok {
			invokes++
		}
	})
	if invokes != 3 {
		t.Errorf("lowered to %d invokes, want 3", invokes)
	}
}

func TestDispatchAndOverriding(t *testing.T) {
	src := `
class Base extends Activity {
	View pick(View v) { return v; }
}
class Derived extends Base {
	View pick(View v) { return v.findFocus(); }
}`
	p := buildSrc(t, src, nil)
	base, derived := p.Class("Base"), p.Class("Derived")
	key := "pick(R)"
	if got := derived.Dispatch(key); got != derived.Methods[key] {
		t.Errorf("Dispatch on Derived = %v", got)
	}
	if got := base.Dispatch(key); got != base.Methods[key] {
		t.Errorf("Dispatch on Base = %v", got)
	}
	if got := derived.LookupMethod("setContentView(I)"); got == nil || got.API == nil {
		t.Errorf("platform lookup through app hierarchy failed: %v", got)
	}
}

func TestOverloadResolutionByKind(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		LinearLayout root = new LinearLayout();
		this.setContentView(root);
	}
}`
	p := buildSrc(t, src, map[string]string{"main": `<LinearLayout/>`})
	m := p.Class("A").Methods["onCreate()"]
	var ops []platform.OpKind
	WalkStmts(m.Body, func(s Stmt) {
		if inv, ok := s.(*Invoke); ok && inv.Target != nil && inv.Target.API != nil {
			ops = append(ops, inv.Target.API.Kind)
		}
	})
	if len(ops) != 2 || ops[0] != platform.OpInflate2 || ops[1] != platform.OpAddView1 {
		t.Errorf("ops = %v", ops)
	}
}

func TestSubtypeOf(t *testing.T) {
	p := buildSrc(t, `class L implements OnClickListener { void onClick(View v) { } }`, nil)
	cases := []struct {
		sub, sup string
		want     bool
	}{
		{"Button", "View", true},
		{"Button", "TextView", true},
		{"ViewFlipper", "ViewGroup", true},
		{"ViewFlipper", "FrameLayout", true},
		{"TextView", "Button", false},
		{"Activity", "View", false},
		{"L", "OnClickListener", true},
		{"L", "Object", true},
		{"ListView", "AdapterView", true},
	}
	for _, c := range cases {
		got := p.Class(c.sub).SubtypeOf(p.Class(c.sup))
		if got != c.want {
			t.Errorf("%s subtype of %s = %v, want %v", c.sub, c.sup, got, c.want)
		}
	}
}

func TestFieldResolutionThroughSuper(t *testing.T) {
	src := `
class Base { View stored; }
class Sub extends Base {
	void put(View v) { this.stored = v; }
	View get() { View r = this.stored; return r; }
}`
	p := buildSrc(t, src, nil)
	sub := p.Class("Sub")
	f := sub.LookupField("stored")
	if f == nil || f.Class.Name != "Base" {
		t.Fatalf("LookupField = %v", f)
	}
	var stores, loads int
	for _, m := range sub.MethodsSorted() {
		WalkStmts(m.Body, func(s Stmt) {
			switch s := s.(type) {
			case *Store:
				stores++
				if s.Field != f {
					t.Errorf("store to %v, want %v", s.Field, f)
				}
			case *Load:
				loads++
			}
		})
	}
	if stores != 1 || loads != 1 {
		t.Errorf("stores=%d loads=%d", stores, loads)
	}
}

func TestOpaquePlatformCalls(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.requestWindowFeature(1);
	}
}`
	p := buildSrc(t, src, nil)
	if len(p.Opaque) != 1 {
		t.Fatalf("opaque = %v", p.Opaque)
	}
	if p.Opaque[0].Key != "requestWindowFeature(I)" {
		t.Errorf("opaque key = %q", p.Opaque[0].Key)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name, src string
		wantSub   string
	}{
		{"dup class", `class A { } class A { }`, "duplicate class"},
		{"platform clash", `class View { }`, "conflicts with a platform class"},
		{"unknown super", `class A extends Zorp { }`, "unknown class"},
		{"extends iface", `class A extends OnClickListener { }`, "extends interface"},
		{"implements class", `class A implements View { }`, "non-interface"},
		{"cycle", `class A extends B { } class B extends A { }`, "cycle"},
		{"unknown field type", `class A { Zorp f; }`, "unknown type"},
		{"dup field", `class A { View f; View f; }`, "duplicate field"},
		{"dup method", `class A { void m() { } void m() { } }`, "duplicate method"},
		{"undefined var", `class A { void m() { x = null; } }`, "undefined variable"},
		{"redeclared var", `class A { void m() { View v; View v; } }`, "already declared"},
		{"no field", `class A { void m(View v) { View w = v.zorp; } }`, "no field"},
		{"no app method", `class B { } class A { void m(B b) { b.zorp(); } }`, "no method"},
		{"bad assign", `class A { void m(View v) { int x; x = v; } }`, "cannot assign"},
		{"bad arg", `class A { void take(Button b) { } void m(View v) { A a = new A(); a.take(v); } }`, "cannot pass"},
		{"impossible cast", `class B { } class A { void m(B b) { View v = (View) b; } }`, "impossible cast"},
		{"void value", `class A { void m(View v) { View w = v.setId(3); } }`, "returns no value"},
		{"void return val", `class A { void m() { return; } int n() { return; } }`, "missing return value"},
		{"nonvoid return", `class A { void m() { View v; return v; } }`, "returns a value"},
		{"iface new", `class A { void m() { OnClickListener l = new OnClickListener(); } }`, "cannot instantiate interface"},
		{"missing layout", `class A extends Activity { void onCreate() { this.setContentView(R.layout.nope); } }`, "does not match any layout"},
		{"ctor args", `class B { } class A { void m() { B b = new B(null); } }`, "no constructor"},
		{"int cond", `class A { void m(int i) { if (i == null) { } } }`, "reference operand"},
	}
	for _, c := range cases {
		_, err := buildSrcErr(c.src, nil)
		if err == nil {
			t.Errorf("%s: want error containing %q, got none", c.name, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("%s: error %q does not contain %q", c.name, err, c.wantSub)
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	_, err := buildSrcErr(`class A { }`, map[string]string{"main": `<Zorp/>`})
	if err == nil || !strings.Contains(err.Error(), "unknown view class") {
		t.Errorf("err = %v", err)
	}
	_, err = buildSrcErr(`class A { }`, map[string]string{"main": `<Activity/>`})
	if err == nil || !strings.Contains(err.Error(), "not a view class") {
		t.Errorf("err = %v", err)
	}
	// App-defined view classes are allowed in layouts.
	_, err = buildSrcErr(`class MyWidget extends View { }`, map[string]string{"main": `<MyWidget/>`})
	if err != nil {
		t.Errorf("app view class rejected: %v", err)
	}
}

func TestProgrammaticViewIDRegistration(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		b.setId(R.id.made_up);
	}
}`
	p := buildSrc(t, src, nil)
	if _, ok := p.R.ViewID("made_up"); !ok {
		t.Error("programmatic view id not registered")
	}
}

func TestListenerSpecsTransitive(t *testing.T) {
	src := `
interface Command extends OnClickListener { }
class Impl implements Command {
	void onClick(View v) { }
}
class Multi implements OnClickListener, OnKeyListener {
	void onClick(View v) { }
	void onKey(View v, int code) { }
}`
	p := buildSrc(t, src, nil)
	if got := p.ListenerSpecsOf(p.Class("Impl")); len(got) != 1 || got[0].Event != "click" {
		t.Errorf("Impl specs = %v", got)
	}
	if got := p.ListenerSpecsOf(p.Class("Multi")); len(got) != 2 {
		t.Errorf("Multi specs = %v", got)
	}
}

func TestTempNaming(t *testing.T) {
	src := `class A { View m(View v) { return v.findFocus().findFocus(); } }`
	p := buildSrc(t, src, nil)
	m := p.Class("A").Methods["m(R)"]
	var temps int
	for _, v := range m.Locals {
		if v.Temp {
			temps++
		}
	}
	if temps != 2 {
		t.Errorf("temps = %d, want 2", temps)
	}
}

func TestControlFlowLowering(t *testing.T) {
	src := `
class A {
	void m(View v) {
		if (v != null) {
			v.setId(1);
		} else {
			while (*) {
				v.findFocus();
			}
		}
	}
}`
	p := buildSrc(t, src, nil)
	m := p.Class("A").Methods["m(R)"]
	var ifs, whiles, invokes int
	WalkStmts(m.Body, func(s Stmt) {
		switch s.(type) {
		case *If:
			ifs++
		case *While:
			whiles++
		case *Invoke:
			invokes++
		}
	})
	if ifs != 1 || whiles != 1 || invokes != 2 {
		t.Errorf("ifs=%d whiles=%d invokes=%d", ifs, whiles, invokes)
	}
}

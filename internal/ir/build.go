package ir

import (
	"sort"

	"gator/internal/alite"
	"gator/internal/layout"
	"gator/internal/platform"
)

// Build resolves and lowers an application: ALite source files plus layout
// definitions. Layouts are linked (includes spliced) in place.
func Build(files []*alite.File, layouts map[string]*layout.Layout) (*Program, error) {
	if layouts == nil {
		layouts = map[string]*layout.Layout{}
	}
	if err := layout.Link(layouts); err != nil {
		return nil, err
	}
	b := &builder{
		prog: &Program{
			Classes:        map[string]*Class{},
			Layouts:        layouts,
			R:              layout.NewRTable(layouts),
			listenerIfaces: map[string]platform.ListenerSpec{},
			opaqueByFile:   map[string][]*Invoke{},
		},
	}
	for _, f := range files {
		b.prog.fileOrder = append(b.prog.fileOrder, f.Name)
	}
	b.installPlatform()
	b.declareAppClasses(files)
	if err := b.errs.Err(); err != nil {
		return nil, err
	}
	b.resolveHierarchy(files)
	if err := b.errs.Err(); err != nil {
		return nil, err
	}
	b.declareMembers(files)
	if err := b.errs.Err(); err != nil {
		return nil, err
	}
	b.lowerBodies(files)
	if err := b.errs.Err(); err != nil {
		return nil, err
	}
	b.prog.rebuildOpaque()
	b.validateLayouts()
	if err := b.errs.Err(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error; for tests and embedded corpora.
func MustBuild(files []*alite.File, layouts map[string]*layout.Layout) *Program {
	p, err := Build(files, layouts)
	if err != nil {
		panic(err)
	}
	return p
}

type builder struct {
	prog *Program
	errs alite.ErrorList
	// appDecls maps app class names back to their AST declarations.
	appDecls map[string]alite.Decl
}

// installPlatform materializes the modeled Android hierarchy, listener
// interfaces, and classified API methods.
func (b *builder) installPlatform() {
	p := b.prog
	specs := platform.Hierarchy()
	for _, s := range specs {
		p.Classes[s.Name] = &Class{
			Name:        s.Name,
			IsInterface: s.IsIface,
			IsPlatform:  true,
			Methods:     map[string]*Method{},
		}
	}
	for _, s := range specs {
		c := p.Classes[s.Name]
		if s.Super != "" && !s.IsIface {
			c.Super = p.Classes[s.Super]
		}
		for _, i := range s.Interfaces {
			c.Interfaces = append(c.Interfaces, p.Classes[i])
		}
	}
	p.object = p.Classes["Object"]
	p.activity = p.Classes["Activity"]
	p.dialog = p.Classes["Dialog"]
	p.view = p.Classes["View"]

	// Listener interfaces: register specs and handler signatures.
	for _, l := range platform.Listeners() {
		p.listenerIfaces[l.Interface] = l
		iface := p.Classes[l.Interface]
		for _, h := range l.Handlers {
			m := b.platformMethod(iface, h.Name, h.Params, h.Return, nil)
			iface.Methods[m.Key] = m
		}
	}

	// Classified APIs.
	apis := platform.APIs()
	for i := range apis {
		api := &apis[i]
		c := p.Classes[api.Class]
		m := b.platformMethod(c, api.Name, api.Params, api.Return, api)
		// A platform method named after its class is a modeled constructor
		// (e.g. Intent(Class)).
		m.IsCtor = m.Name == c.Name
		c.Methods[m.Key] = m
	}

	// A few unclassified-but-typed helpers the corpus uses.
	misc := []struct {
		cls, name string
		params    []string
		ret       string
	}{
		{"Activity", "getLayoutInflater", nil, "LayoutInflater"},
		{"Dialog", "getLayoutInflater", nil, "LayoutInflater"},
		// The Adapter interface's factory callback.
		{"Adapter", "getView", []string{"int"}, "View"},
	}
	for _, mi := range misc {
		c := p.Classes[mi.cls]
		m := b.platformMethod(c, mi.name, mi.params, mi.ret, nil)
		c.Methods[m.Key] = m
	}
}

// platformMethod builds a body-less platform method from type names.
func (b *builder) platformMethod(c *Class, name string, params []string, ret string, api *platform.ApiSpec) *Method {
	ptypes := make([]alite.Type, len(params))
	for i, pn := range params {
		ptypes[i] = b.typeFromName(pn)
	}
	m := &Method{
		Class:  c,
		Name:   name,
		Key:    MethodKey(name, ptypes),
		Return: b.typeFromName(ret),
		API:    api,
	}
	if m.Return.IsRef() {
		m.ReturnClass = b.prog.Classes[m.Return.Name]
	}
	for i, t := range ptypes {
		v := &Var{Name: "p" + string(rune('0'+i)), Type: t, Method: m, Index: i}
		if t.IsRef() {
			v.TypeClass = b.prog.Classes[t.Name]
		}
		m.Params = append(m.Params, v)
		m.Locals = append(m.Locals, v)
	}
	return m
}

func (b *builder) typeFromName(n string) alite.Type {
	switch n {
	case "", "void":
		return alite.Type{Prim: alite.TypeVoid}
	case "int":
		return alite.Type{Prim: alite.TypeInt}
	default:
		return alite.Type{Name: n}
	}
}

func (b *builder) declareAppClasses(files []*alite.File) {
	b.appDecls = map[string]alite.Decl{}
	for _, f := range files {
		for _, d := range f.Decls {
			name := d.DeclName()
			if prev, ok := b.prog.Classes[name]; ok {
				if prev.IsPlatform {
					b.errs.Add(d.DeclPos(), "class %s conflicts with a platform class", name)
				} else {
					b.errs.Add(d.DeclPos(), "duplicate class %s", name)
				}
				continue
			}
			_, isIface := d.(*alite.InterfaceDecl)
			b.prog.Classes[name] = &Class{
				Name:        name,
				IsInterface: isIface,
				Methods:     map[string]*Method{},
				Pos:         d.DeclPos(),
			}
			b.appDecls[name] = d
		}
	}
}

func (b *builder) resolveHierarchy(files []*alite.File) {
	p := b.prog
	for _, f := range files {
		for _, d := range f.Decls {
			c := p.Classes[d.DeclName()]
			if c == nil || b.appDecls[d.DeclName()] != d {
				continue // duplicate; already reported
			}
			switch d := d.(type) {
			case *alite.ClassDecl:
				super := p.object
				if d.Super != "" {
					s, ok := p.Classes[d.Super]
					switch {
					case !ok:
						b.errs.Add(d.Pos, "class %s extends unknown class %s", d.Name, d.Super)
					case s.IsInterface:
						b.errs.Add(d.Pos, "class %s extends interface %s", d.Name, d.Super)
					default:
						super = s
					}
				}
				c.Super = super
				for _, in := range d.Implements {
					i, ok := p.Classes[in]
					switch {
					case !ok:
						b.errs.Add(d.Pos, "class %s implements unknown interface %s", d.Name, in)
					case !i.IsInterface:
						b.errs.Add(d.Pos, "class %s implements non-interface %s", d.Name, in)
					default:
						c.Interfaces = append(c.Interfaces, i)
					}
				}
			case *alite.InterfaceDecl:
				for _, in := range d.Extends {
					i, ok := p.Classes[in]
					switch {
					case !ok:
						b.errs.Add(d.Pos, "interface %s extends unknown interface %s", d.Name, in)
					case !i.IsInterface:
						b.errs.Add(d.Pos, "interface %s extends class %s", d.Name, in)
					default:
						c.Interfaces = append(c.Interfaces, i)
					}
				}
			}
		}
	}
	if b.errs.Err() != nil {
		return
	}
	// Inheritance cycle check over extends+implements edges.
	state := map[*Class]int{}
	var visit func(c *Class) bool
	visit = func(c *Class) bool {
		switch state[c] {
		case 1:
			return true
		case 2:
			return false
		}
		state[c] = 1
		cyc := false
		if c.Super != nil && visit(c.Super) {
			cyc = true
		}
		for _, i := range c.Interfaces {
			if visit(i) {
				cyc = true
			}
		}
		state[c] = 2
		return cyc
	}
	for _, name := range sortedClassNames(p) {
		c := p.Classes[name]
		if !c.IsPlatform && visit(c) {
			b.errs.Add(c.Pos, "inheritance cycle involving %s", c.Name)
			return
		}
	}
}

func sortedClassNames(p *Program) []string {
	names := make([]string, 0, len(p.Classes))
	for n := range p.Classes {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// resolveType resolves a declared type to its class (for reference types).
func (b *builder) resolveType(t alite.Type, pos alite.Pos) (alite.Type, *Class) {
	if !t.IsRef() {
		return t, nil
	}
	c, ok := b.prog.Classes[t.Name]
	if !ok {
		b.errs.Add(pos, "unknown type %s", t.Name)
		return t, b.prog.object
	}
	return t, c
}

func (b *builder) declareMembers(files []*alite.File) {
	for _, f := range files {
		for _, d := range f.Decls {
			if b.appDecls[d.DeclName()] != d {
				continue
			}
			switch d := d.(type) {
			case *alite.ClassDecl:
				b.declareClassMembers(d)
			case *alite.InterfaceDecl:
				b.declareInterfaceMembers(d)
			}
		}
	}
}

func (b *builder) declareClassMembers(d *alite.ClassDecl) {
	c := b.prog.Classes[d.Name]
	seen := map[string]bool{}
	for _, fd := range d.Fields {
		if seen[fd.Name] {
			b.errs.Add(fd.Pos, "duplicate field %s in class %s", fd.Name, d.Name)
			continue
		}
		seen[fd.Name] = true
		t, tc := b.resolveType(fd.Type, fd.Pos)
		c.Fields = append(c.Fields, &Field{Class: c, Name: fd.Name, Type: t, TypeClass: tc})
	}
	for _, md := range d.Methods {
		b.declareMethod(c, md)
	}
}

func (b *builder) declareInterfaceMembers(d *alite.InterfaceDecl) {
	c := b.prog.Classes[d.Name]
	for _, md := range d.Methods {
		b.declareMethod(c, md)
	}
}

func (b *builder) declareMethod(c *Class, md *alite.MethodDecl) {
	ptypes := make([]alite.Type, len(md.Params))
	for i, prm := range md.Params {
		t, _ := b.resolveType(prm.Type, prm.Pos)
		if !t.IsRef() && t.Prim != alite.TypeInt {
			b.errs.Add(prm.Pos, "parameter %s cannot have type %s", prm.Name, t)
		}
		ptypes[i] = t
	}
	key := MethodKey(md.Name, ptypes)
	if _, dup := c.Methods[key]; dup {
		b.errs.Add(md.Pos, "duplicate method %s in class %s", key, c.Name)
		return
	}
	ret, retClass := b.resolveType(md.Return, md.Pos)
	m := &Method{
		Class:       c,
		Name:        md.Name,
		Key:         key,
		IsCtor:      md.IsCtor,
		Return:      ret,
		ReturnClass: retClass,
		Pos:         md.Pos,
	}
	if !c.IsInterface {
		m.This = &Var{Name: "this", Type: alite.Type{Name: c.Name}, TypeClass: c, Method: m, Pos: md.Pos}
		m.Locals = append(m.Locals, m.This)
		m.This.Index = 0
	}
	pseen := map[string]bool{}
	for i, prm := range md.Params {
		if pseen[prm.Name] {
			b.errs.Add(prm.Pos, "duplicate parameter %s", prm.Name)
		}
		pseen[prm.Name] = true
		t, tc := b.resolveType(ptypes[i], prm.Pos)
		v := &Var{Name: prm.Name, Type: t, TypeClass: tc, Method: m, Pos: prm.Pos}
		v.Index = len(m.Locals)
		m.Locals = append(m.Locals, v)
		m.Params = append(m.Params, v)
	}
	c.Methods[key] = m
}

func (b *builder) lowerBodies(files []*alite.File) {
	for _, f := range files {
		for _, d := range f.Decls {
			cd, ok := d.(*alite.ClassDecl)
			if !ok || b.appDecls[d.DeclName()] != d {
				continue
			}
			c := b.prog.Classes[cd.Name]
			for _, md := range cd.Methods {
				ptypes := make([]alite.Type, len(md.Params))
				for i, prm := range md.Params {
					t, _ := b.resolveType(prm.Type, prm.Pos)
					ptypes[i] = t
				}
				m := c.Methods[MethodKey(md.Name, ptypes)]
				if m == nil || md.Body == nil {
					continue
				}
				lw := &lowerer{b: b, m: m}
				lw.pushScope()
				for _, p := range m.Params {
					lw.scopes[0][p.Name] = p
				}
				m.Body = lw.block(md.Body)
			}
		}
	}
}

// validateLayouts checks that every layout node names a known view class and
// that declarative onClick handlers resolve somewhere.
func (b *builder) validateLayouts() {
	p := b.prog
	names := make([]string, 0, len(p.Layouts))
	for n := range p.Layouts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, ln := range names {
		l := p.Layouts[ln]
		l.Root.Walk(func(n *layout.Node) {
			c, ok := p.Classes[n.Class]
			if !ok {
				b.errs.Add(alite.Pos{File: ln + ".xml"}, "layout %s: unknown view class %s", ln, n.Class)
				return
			}
			if !p.IsViewClass(c) || c.IsInterface {
				b.errs.Add(alite.Pos{File: ln + ".xml"}, "layout %s: %s is not a view class", ln, n.Class)
			}
		})
	}
}

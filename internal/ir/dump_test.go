package ir

import (
	"strings"
	"testing"

	"gator/internal/corpus"
)

func TestDumpMethodForms(t *testing.T) {
	src := `
class Helper {
	Helper() { }
}
class Other extends Activity { void onCreate() { } }
class A extends Activity {
	View kept;
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.go);
		this.kept = v;
		View w = this.kept;
		Button b = new Button();
		Button c = (Button) w;
		int n = 7;
		Intent i = new Intent(Other.class);
		if (v != null) {
			v.setId(R.id.go);
		} else {
			while (*) {
				v.findFocus();
			}
		}
	}
	View pick() {
		View r = this.kept;
		return r;
	}
	void drop() {
		return;
	}
}`
	p := buildSrc(t, src, map[string]string{"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`})
	dump := DumpProgram(p)
	for _, want := range []string{
		"class A extends Activity",
		":= R.layout.main",
		":= R.id.go",
		"this.kept :=",
		":= this.kept",
		":= new Button",
		":= (Button)",
		":= 7",
		"Other.class",
		"if (v != null) {",
		"} else {",
		"while (*) {",
		"return r",
		"return\n",
		"void A.drop()",
		"View A.pick()",
		"interface", // none in this program... see below
	} {
		if want == "interface" {
			continue
		}
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
	// Null constants and calls render.
	if !strings.Contains(dump, "null") && strings.Contains(src, "null") {
		// "v != null" appears in the condition
		t.Errorf("dump lost null condition:\n%s", dump)
	}
}

func TestDumpInterfaceAndAbstract(t *testing.T) {
	src := `
interface Cmd extends OnClickListener {
	void run(View v);
}
class Impl implements Cmd {
	void run(View v) { }
	void onClick(View v) { }
}`
	p := buildSrc(t, src, nil)
	dump := DumpProgram(p)
	if !strings.Contains(dump, "interface Cmd") {
		t.Errorf("dump missing interface:\n%s", dump)
	}
	if !strings.Contains(dump, "<no body>") {
		t.Errorf("dump missing abstract marker:\n%s", dump)
	}
	if !strings.Contains(dump, "implements Cmd") {
		t.Errorf("dump missing implements clause:\n%s", dump)
	}
}

func TestDumpFigure1Stable(t *testing.T) {
	p := MustBuild(corpus.Figure1Files(), corpus.Figure1Layouts())
	a := DumpProgram(p)
	p2 := MustBuild(corpus.Figure1Files(), corpus.Figure1Layouts())
	b := DumpProgram(p2)
	if a != b {
		t.Error("dump is not deterministic")
	}
	if !strings.Contains(a, "ConsoleActivity.addNewTerminalView") {
		t.Errorf("dump incomplete:\n%s", a)
	}
}

func TestStmtPosCarried(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
	}
}`
	p := buildSrc(t, src, nil)
	m := p.Class("A").Methods["onCreate()"]
	WalkStmts(m.Body, func(s Stmt) {
		if !s.Pos().IsValid() {
			t.Errorf("statement %s has no position", s)
		}
		if s.Pos().File == "" {
			t.Errorf("statement %s has no file", s)
		}
	})
}

func TestVarAndMethodStrings(t *testing.T) {
	p := MustBuild(corpus.Figure1Files(), corpus.Figure1Layouts())
	m := p.Class("ConsoleActivity").Methods["onCreate()"]
	if got := m.String(); got != "ConsoleActivity.onCreate()" {
		t.Errorf("method String = %q", got)
	}
	if got := m.This.String(); got != "ConsoleActivity.onCreate:this" {
		t.Errorf("this String = %q", got)
	}
	if m.IsAbstract() {
		t.Error("onCreate reported abstract")
	}
	iface := p.Class("OnClickListener").Methods["onClick(R)"]
	if iface == nil || !iface.IsAbstract() {
		t.Error("interface handler not abstract")
	}
	f := p.Class("ConsoleActivity").LookupField("flip")
	if f.Sig() != "ConsoleActivity.flip" {
		t.Errorf("field Sig = %q", f.Sig())
	}
	if p.Object() == nil || p.Object().Name != "Object" {
		t.Error("Object accessor broken")
	}
	if p.IsDialogClass(p.Class("ConsoleActivity")) {
		t.Error("activity misclassified as dialog")
	}
}

package ir

import (
	"testing"
)

// TestDefUses pins the def/use sets of the lowered statement forms — the
// contract the dataflow layer (internal/dataflow) builds gen/kill sets on.
func TestDefUses(t *testing.T) {
	src := `
class H implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	View keep;
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.x);
		this.keep = v;
		View w = this.keep;
		if (w != null) {
			H h = new H();
			w.setOnClickListener(h);
		}
	}
}`
	p := buildSrc(t, src, map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`,
	})
	m := p.Class("A").Dispatch("onCreate()")
	if m == nil {
		t.Fatal("no onCreate")
	}
	defs := map[string]bool{}
	var sawStore, sawIf, sawInvokeUse bool
	WalkStmts(m.Body, func(s Stmt) {
		if v := Def(s); v != nil {
			defs[v.Name] = true
		}
		switch s := s.(type) {
		case *Store:
			sawStore = true
			if Def(s) != nil {
				t.Errorf("Store defines %v", Def(s))
			}
			us := Uses(s)
			if len(us) != 2 || us[0] != s.Base || us[1] != s.Src {
				t.Errorf("Store uses = %v", us)
			}
		case *If:
			sawIf = true
			us := Uses(s)
			if len(us) != 1 || us[0].Name != "w" {
				t.Errorf("If uses = %v", us)
			}
		case *Invoke:
			if s.Dst == nil && len(s.Args) == 1 {
				sawInvokeUse = true
				us := Uses(s)
				if len(us) != 2 || us[0] != s.Recv || us[1] != s.Args[0] {
					t.Errorf("Invoke uses = %v", us)
				}
			}
		}
	})
	for _, want := range []string{"v", "w", "h"} {
		if !defs[want] {
			t.Errorf("no def of %s seen (defs: %v)", want, defs)
		}
	}
	if !sawStore || !sawIf || !sawInvokeUse {
		t.Errorf("statement forms missed: store=%v if=%v invoke=%v", sawStore, sawIf, sawInvokeUse)
	}
}

package ir

import (
	"fmt"

	"gator/internal/alite"
)

// lowerer lowers one method body from AST to three-address statements,
// performing name resolution and type checking along the way.
type lowerer struct {
	b      *builder
	m      *Method
	scopes []map[string]*Var
	temps  int
}

func (lw *lowerer) errf(pos alite.Pos, format string, args ...any) {
	lw.b.errs.Add(pos, format, args...)
}

func (lw *lowerer) pushScope() { lw.scopes = append(lw.scopes, map[string]*Var{}) }
func (lw *lowerer) popScope()  { lw.scopes = lw.scopes[:len(lw.scopes)-1] }

func (lw *lowerer) lookupVar(name string) *Var {
	for i := len(lw.scopes) - 1; i >= 0; i-- {
		if v, ok := lw.scopes[i][name]; ok {
			return v
		}
	}
	return nil
}

func (lw *lowerer) declareVar(pos alite.Pos, name string, t alite.Type, tc *Class) *Var {
	if lw.lookupVar(name) != nil {
		lw.errf(pos, "variable %s is already declared", name)
	}
	v := &Var{Name: name, Type: t, TypeClass: tc, Method: lw.m, Pos: pos}
	v.Index = len(lw.m.Locals)
	lw.m.Locals = append(lw.m.Locals, v)
	lw.scopes[len(lw.scopes)-1][name] = v
	return v
}

func (lw *lowerer) newTemp(pos alite.Pos, t alite.Type, tc *Class) *Var {
	v := &Var{
		Name:      fmt.Sprintf("$t%d", lw.temps),
		Type:      t,
		TypeClass: tc,
		Method:    lw.m,
		Temp:      true,
		Pos:       pos,
	}
	lw.temps++
	v.Index = len(lw.m.Locals)
	lw.m.Locals = append(lw.m.Locals, v)
	return v
}

// assignable reports whether a value of type (src, srcClass) can be assigned
// to (dst, dstClass) without a cast. isNull marks the null literal.
func assignable(src alite.Type, srcClass *Class, dst alite.Type, dstClass *Class, isNull bool) bool {
	if dst.Prim == alite.TypeInt {
		return src.Prim == alite.TypeInt
	}
	if !dst.IsRef() {
		return false
	}
	if isNull {
		return true
	}
	if !src.IsRef() || srcClass == nil || dstClass == nil {
		return false
	}
	return srcClass.SubtypeOf(dstClass)
}

func (lw *lowerer) block(b *alite.Block) []Stmt {
	lw.pushScope()
	defer lw.popScope()
	// Non-nil even when empty: a nil Body marks abstract methods.
	out := []Stmt{}
	for _, s := range b.Stmts {
		out = lw.stmt(out, s)
	}
	return out
}

func (lw *lowerer) stmt(out []Stmt, s alite.Stmt) []Stmt {
	switch s := s.(type) {
	case *alite.LocalDecl:
		t, tc := lw.b.resolveType(s.Type, s.Pos)
		if !t.IsRef() && t.Prim != alite.TypeInt {
			lw.errf(s.Pos, "variable %s cannot have type %s", s.Name, t)
		}
		v := lw.declareVar(s.Pos, s.Name, t, tc)
		if s.Init != nil {
			return lw.assignInto(out, v, s.Init, s.Pos)
		}
		return out

	case *alite.AssignStmt:
		switch target := s.Target.(type) {
		case *alite.VarExpr:
			v := lw.lookupVar(target.Name)
			if v == nil {
				lw.errf(target.Pos, "undefined variable %s", target.Name)
				return out
			}
			return lw.assignInto(out, v, s.Value, s.Pos)
		case *alite.FieldExpr:
			var base *Var
			out, base = lw.expr(out, target.Base)
			if base == nil {
				return out
			}
			fld := lw.resolveField(base, target.Name, target.Pos)
			if fld == nil {
				return out
			}
			var src *Var
			out, src = lw.expr(out, s.Value)
			if src == nil {
				return out
			}
			_, isNull := s.Value.(*alite.NullExpr)
			if !assignable(src.Type, src.TypeClass, fld.Type, fld.TypeClass, isNull) {
				lw.errf(s.Pos, "cannot assign %s to field %s of type %s", src.Type, fld.Sig(), fld.Type)
			}
			return append(out, &Store{Base: base, Field: fld, Src: src, At: s.Pos})
		default:
			lw.errf(s.Pos, "invalid assignment target")
			return out
		}

	case *alite.ExprStmt:
		switch x := s.X.(type) {
		case *alite.CallExpr:
			out, _ = lw.call(out, x, nil)
			return out
		case *alite.NewExpr:
			out, _ = lw.newExpr(out, x, nil)
			return out
		default:
			lw.errf(s.Pos, "expression statement must be a call")
			return out
		}

	case *alite.ReturnStmt:
		ret := lw.m.Return
		if s.Value == nil {
			if ret.Prim != alite.TypeVoid {
				lw.errf(s.Pos, "missing return value in %s", lw.m.QualifiedName())
			}
			return append(out, &Return{At: s.Pos})
		}
		if ret.Prim == alite.TypeVoid {
			lw.errf(s.Pos, "void method %s returns a value", lw.m.QualifiedName())
			return out
		}
		var v *Var
		out, v = lw.expr(out, s.Value)
		if v == nil {
			return out
		}
		_, isNull := s.Value.(*alite.NullExpr)
		if !assignable(v.Type, v.TypeClass, ret, lw.m.ReturnClass, isNull) {
			lw.errf(s.Pos, "cannot return %s from %s (declared %s)", v.Type, lw.m.QualifiedName(), ret)
		}
		return append(out, &Return{Src: v, At: s.Pos})

	case *alite.IfStmt:
		var cond Cond
		out, cond = lw.cond(out, s.Cond)
		st := &If{Cond: cond, Then: lw.block(s.Then), At: s.Pos}
		if s.Else != nil {
			st.Else = lw.block(s.Else)
		}
		return append(out, st)

	case *alite.WhileStmt:
		var cond Cond
		out, cond = lw.cond(out, s.Cond)
		return append(out, &While{Cond: cond, Body: lw.block(s.Body), At: s.Pos})

	default:
		lw.errf(s.StmtPos(), "unsupported statement %T", s)
		return out
	}
}

func (lw *lowerer) cond(out []Stmt, c alite.Cond) ([]Stmt, Cond) {
	if c.Nondet {
		return out, Cond{Nondet: true}
	}
	var v *Var
	out, v = lw.expr(out, c.X)
	if v == nil {
		return out, Cond{Nondet: true}
	}
	if !v.Type.IsRef() {
		lw.errf(c.Pos, "null comparison requires a reference operand, got %s", v.Type)
	}
	return out, Cond{X: v, Negated: c.Negated}
}

// assignInto lowers "dst = value", writing directly into dst when the value
// form produces a result (avoiding a temporary).
func (lw *lowerer) assignInto(out []Stmt, dst *Var, value alite.Expr, pos alite.Pos) []Stmt {
	checkedAssign := func(src *Var, isNull bool) {
		if src == nil {
			return
		}
		if !assignable(src.Type, src.TypeClass, dst.Type, dst.TypeClass, isNull) {
			lw.errf(pos, "cannot assign %s to %s of type %s", src.Type, dst.Name, dst.Type)
		}
	}
	switch x := value.(type) {
	case *alite.NewExpr:
		var v *Var
		out, v = lw.newExpr(out, x, dst)
		if v != dst {
			checkedAssign(v, false)
			if v != nil {
				out = append(out, &Copy{Dst: dst, Src: v, At: pos})
			}
		} else {
			checkedAssign(v, false)
		}
		return out
	case *alite.CallExpr:
		var v *Var
		out, v = lw.callForValue(out, x, dst)
		if v != nil && v != dst {
			checkedAssign(v, false)
			out = append(out, &Copy{Dst: dst, Src: v, At: pos})
		} else {
			checkedAssign(v, false)
		}
		return out
	case *alite.NullExpr:
		if !dst.Type.IsRef() {
			lw.errf(pos, "cannot assign null to %s of type %s", dst.Name, dst.Type)
		}
		return append(out, &ConstNull{Dst: dst, At: pos})
	case *alite.IntExpr:
		if dst.Type.Prim != alite.TypeInt {
			lw.errf(pos, "cannot assign int to %s of type %s", dst.Name, dst.Type)
		}
		return append(out, &ConstInt{Dst: dst, Value: x.Value, At: pos})
	case *alite.RRefExpr:
		if dst.Type.Prim != alite.TypeInt {
			lw.errf(pos, "resource constants have type int; %s has type %s", dst.Name, dst.Type)
		}
		return lw.rref(out, x, dst)
	default:
		var v *Var
		out, v = lw.expr(out, value)
		if v == nil {
			return out
		}
		_, isNull := value.(*alite.NullExpr)
		checkedAssign(v, isNull)
		return append(out, &Copy{Dst: dst, Src: v, At: pos})
	}
}

// expr lowers an expression, returning the variable holding its value.
// A nil Var means an error was already reported.
func (lw *lowerer) expr(out []Stmt, e alite.Expr) ([]Stmt, *Var) {
	switch x := e.(type) {
	case *alite.VarExpr:
		if x.IsThis {
			if lw.m.This == nil {
				lw.errf(x.Pos, "'this' is not available here")
				return out, nil
			}
			return out, lw.m.This
		}
		v := lw.lookupVar(x.Name)
		if v == nil {
			lw.errf(x.Pos, "undefined variable %s", x.Name)
		}
		return out, v

	case *alite.NullExpr:
		t := lw.newTemp(x.Pos, alite.Type{Name: "Object"}, lw.b.prog.object)
		return append(out, &ConstNull{Dst: t, At: x.Pos}), t

	case *alite.IntExpr:
		t := lw.newTemp(x.Pos, alite.Type{Prim: alite.TypeInt}, nil)
		return append(out, &ConstInt{Dst: t, Value: x.Value, At: x.Pos}), t

	case *alite.RRefExpr:
		t := lw.newTemp(x.Pos, alite.Type{Prim: alite.TypeInt}, nil)
		return lw.rref(out, x, t), t

	case *alite.ClassLitExpr:
		c, ok := lw.b.prog.Classes[x.Name]
		if !ok {
			lw.errf(x.Pos, "unknown class %s in class literal", x.Name)
			return out, nil
		}
		cls := lw.b.prog.Classes["Class"]
		t := lw.newTemp(x.Pos, alite.Type{Name: "Class"}, cls)
		return append(out, &ConstClass{Dst: t, Class: c, At: x.Pos}), t

	case *alite.FieldExpr:
		var base *Var
		out, base = lw.expr(out, x.Base)
		if base == nil {
			return out, nil
		}
		fld := lw.resolveField(base, x.Name, x.Pos)
		if fld == nil {
			return out, nil
		}
		t := lw.newTemp(x.Pos, fld.Type, fld.TypeClass)
		return append(out, &Load{Dst: t, Base: base, Field: fld, At: x.Pos}), t

	case *alite.CallExpr:
		return lw.callForValue(out, x, nil)

	case *alite.NewExpr:
		return lw.newExpr(out, x, nil)

	case *alite.CastExpr:
		var src *Var
		out, src = lw.expr(out, x.X)
		if src == nil {
			return out, nil
		}
		t, tc := lw.b.resolveType(x.Type, x.Pos)
		if t.Prim == alite.TypeInt {
			if src.Type.Prim != alite.TypeInt {
				lw.errf(x.Pos, "cannot cast %s to int", src.Type)
			}
			return out, src
		}
		if !t.IsRef() {
			lw.errf(x.Pos, "cannot cast to %s", t)
			return out, nil
		}
		if !src.Type.IsRef() {
			lw.errf(x.Pos, "cannot cast %s to %s", src.Type, t)
			return out, nil
		}
		// Up- and downcasts are fine; unrelated class-to-class casts are
		// compile-time errors (interfaces are always allowed, as in Java).
		if src.TypeClass != nil && tc != nil &&
			!src.TypeClass.IsInterface && !tc.IsInterface &&
			!src.TypeClass.SubtypeOf(tc) && !tc.SubtypeOf(src.TypeClass) {
			lw.errf(x.Pos, "impossible cast from %s to %s", src.Type, t)
		}
		dst := lw.newTemp(x.Pos, t, tc)
		return append(out, &Copy{Dst: dst, Src: src, CastTo: tc, At: x.Pos}), dst

	default:
		lw.errf(e.ExprPos(), "unsupported expression %T", e)
		return out, nil
	}
}

func (lw *lowerer) rref(out []Stmt, x *alite.RRefExpr, dst *Var) []Stmt {
	p := lw.b.prog
	var id int
	switch {
	case x.Layout:
		lid, ok := p.R.LayoutID(x.Name)
		if !ok {
			lw.errf(x.Pos, "R.layout.%s does not match any layout file", x.Name)
			return out
		}
		id = lid
	case x.Str:
		// String resources have no XML source in the ALite abstraction;
		// the constants are registered on first use, like view ids below.
		id = p.R.AddStringID(x.Name)
	default:
		// View ids referenced only from code (for setId) are registered on
		// first use, like aapt does for @+id declarations.
		id = p.R.AddViewID(x.Name)
	}
	return append(out, &ConstRes{Dst: dst, ID: id, Layout: x.Layout, Str: x.Str, Name: x.Name, At: x.Pos})
}

func (lw *lowerer) resolveField(base *Var, name string, pos alite.Pos) *Field {
	if !base.Type.IsRef() || base.TypeClass == nil {
		lw.errf(pos, "field access on non-reference %s", base.Name)
		return nil
	}
	fld := base.TypeClass.LookupField(name)
	if fld == nil {
		lw.errf(pos, "class %s has no field %s", base.TypeClass.Name, name)
	}
	return fld
}

// newExpr lowers new C(args). If dst is non-nil and type-compatible, the
// allocation writes directly into it.
func (lw *lowerer) newExpr(out []Stmt, x *alite.NewExpr, dst *Var) ([]Stmt, *Var) {
	c, ok := lw.b.prog.Classes[x.Class]
	if !ok {
		lw.errf(x.Pos, "unknown class %s", x.Class)
		return out, nil
	}
	if c.IsInterface {
		lw.errf(x.Pos, "cannot instantiate interface %s", c.Name)
		return out, nil
	}
	var args []*Var
	var kinds []alite.Type
	for _, a := range x.Args {
		var v *Var
		out, v = lw.expr(out, a)
		if v == nil {
			return out, nil
		}
		args = append(args, v)
		kinds = append(kinds, v.Type)
	}
	var ctor *Method
	if len(c.Methods) > 0 || !c.IsPlatform {
		key := MethodKey(c.Name, kinds)
		ctor = c.Methods[key]
		if ctor == nil && len(args) > 0 {
			lw.errf(x.Pos, "class %s has no constructor %s", c.Name, key)
			return out, nil
		}
		if ctor == nil {
			// Implicit default constructor: legal only when the class
			// declares no explicit constructors.
			for _, m := range c.Methods {
				if m.IsCtor {
					lw.errf(x.Pos, "class %s requires explicit constructor arguments", c.Name)
					return out, nil
				}
			}
		}
	} else if len(args) > 0 {
		lw.errf(x.Pos, "platform class %s has no %d-argument constructor", c.Name, len(args))
		return out, nil
	}
	// Argument type checks against the resolved constructor.
	if ctor != nil {
		for i, p := range ctor.Params {
			_, isNull := x.Args[i].(*alite.NullExpr)
			if !assignable(args[i].Type, args[i].TypeClass, p.Type, p.TypeClass, isNull) {
				lw.errf(x.Pos, "argument %d: cannot pass %s as %s", i+1, args[i].Type, p.Type)
			}
		}
	}
	target := dst
	if target == nil || !target.Type.IsRef() || target.TypeClass == nil || !c.SubtypeOf(target.TypeClass) {
		target = lw.newTemp(x.Pos, alite.Type{Name: c.Name}, c)
	}
	return append(out, &New{Dst: target, Class: c, Ctor: ctor, Args: args, At: x.Pos}), target
}

// callForValue lowers a call whose result is needed.
func (lw *lowerer) callForValue(out []Stmt, x *alite.CallExpr, dst *Var) ([]Stmt, *Var) {
	out, inv := lw.call(out, x, dst)
	if inv == nil {
		return out, nil
	}
	if inv.Dst == nil {
		if inv.Target == nil {
			// Opaque platform call in expression position: the value is an
			// unknown platform object.
			inv.Dst = lw.newTemp(x.Pos, alite.Type{Name: "Object"}, lw.b.prog.object)
		} else {
			lw.errf(x.Pos, "method %s returns no value", x.Name)
			return out, nil
		}
	}
	return out, inv.Dst
}

// call lowers y.m(args). dst, when non-nil, receives the result directly if
// type-compatible; otherwise a temp is used. Returns the Invoke statement.
func (lw *lowerer) call(out []Stmt, x *alite.CallExpr, dst *Var) ([]Stmt, *Invoke) {
	var recv *Var
	out, recv = lw.expr(out, x.Base)
	if recv == nil {
		return out, nil
	}
	if !recv.Type.IsRef() || recv.TypeClass == nil {
		lw.errf(x.Pos, "method call on non-reference %s", recv.Name)
		return out, nil
	}
	var args []*Var
	var kinds []alite.Type
	for _, a := range x.Args {
		var v *Var
		out, v = lw.expr(out, a)
		if v == nil {
			return out, nil
		}
		args = append(args, v)
		kinds = append(kinds, v.Type)
	}
	key := MethodKey(x.Name, kinds)
	target := recv.TypeClass.LookupMethod(key)
	if target == nil {
		// Unknown methods are permitted on platform types (the platform has
		// a vast unmodeled API surface) but are errors on pure application
		// hierarchies, where every method is known.
		if !lw.hasPlatformAncestry(recv.TypeClass) {
			lw.errf(x.Pos, "class %s has no method %s", recv.TypeClass.Name, key)
			return out, nil
		}
	}
	inv := &Invoke{Recv: recv, Target: target, Key: key, Args: args, At: x.Pos}
	if target != nil {
		if target.IsCtor {
			lw.errf(x.Pos, "cannot call constructor %s directly", target.QualifiedName())
			return out, nil
		}
		for i, p := range target.Params {
			_, isNull := x.Args[i].(*alite.NullExpr)
			if !assignable(args[i].Type, args[i].TypeClass, p.Type, p.TypeClass, isNull) {
				lw.errf(x.Pos, "argument %d of %s: cannot pass %s as %s",
					i+1, target.QualifiedName(), args[i].Type, p.Type)
			}
		}
		if target.Return.Prim != alite.TypeVoid {
			if dst != nil && assignable(target.Return, target.ReturnClass, dst.Type, dst.TypeClass, false) {
				inv.Dst = dst
			} else {
				inv.Dst = lw.newTemp(x.Pos, target.Return, target.ReturnClass)
			}
		}
	} else {
		// Opaque platform call: trust the context. With a destination, the
		// declared type of the destination stands in for the return type.
		if dst != nil {
			inv.Dst = dst
		}
		lw.b.prog.addOpaque(lw.m, inv)
	}
	return append(out, inv), inv
}

// hasPlatformAncestry reports whether c inherits from a platform class other
// than Object (the boundary past which unmodeled methods may exist).
func (lw *lowerer) hasPlatformAncestry(c *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x.IsPlatform && x != lw.b.prog.object {
			return true
		}
	}
	return false
}

package ir

import (
	"fmt"
	"sort"
	"strings"
)

// DumpMethod renders a method's lowered three-address body as a readable
// listing, one statement per line, with nesting for structured control
// flow. Useful for debugging the frontend and for golden tests.
func DumpMethod(m *Method) string {
	var b strings.Builder
	params := make([]string, len(m.Params))
	for i, p := range m.Params {
		params[i] = fmt.Sprintf("%s %s", p.Type, p.Name)
	}
	fmt.Fprintf(&b, "%s %s.%s(%s)", m.Return, m.Class.Name, m.Name, strings.Join(params, ", "))
	if m.Body == nil {
		b.WriteString(" <no body>\n")
		return b.String()
	}
	b.WriteString(" {\n")
	dumpStmts(&b, m.Body, 1)
	b.WriteString("}\n")
	return b.String()
}

func dumpStmts(b *strings.Builder, stmts []Stmt, depth int) {
	indent := strings.Repeat("    ", depth)
	for _, s := range stmts {
		switch s := s.(type) {
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, s.Cond)
			dumpStmts(b, s.Then, depth+1)
			if len(s.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				dumpStmts(b, s.Else, depth+1)
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *While:
			fmt.Fprintf(b, "%swhile (%s) {\n", indent, s.Cond)
			dumpStmts(b, s.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", indent)
		default:
			fmt.Fprintf(b, "%s%s\n", indent, s)
		}
	}
}

// DumpClass renders a class's fields and lowered methods.
func DumpClass(c *Class) string {
	var b strings.Builder
	kind := "class"
	if c.IsInterface {
		kind = "interface"
	}
	fmt.Fprintf(&b, "%s %s", kind, c.Name)
	if c.Super != nil && c.Super.Name != "Object" {
		fmt.Fprintf(&b, " extends %s", c.Super.Name)
	}
	if len(c.Interfaces) > 0 {
		names := make([]string, len(c.Interfaces))
		for i, in := range c.Interfaces {
			names[i] = in.Name
		}
		sort.Strings(names)
		fmt.Fprintf(&b, " implements %s", strings.Join(names, ", "))
	}
	b.WriteString(" {\n")
	for _, f := range c.Fields {
		fmt.Fprintf(&b, "    %s %s  // %s\n", f.Type, f.Name, f.Sig())
	}
	for _, m := range c.MethodsSorted() {
		for _, line := range strings.Split(strings.TrimRight(DumpMethod(m), "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// DumpProgram renders every application class.
func DumpProgram(p *Program) string {
	var b strings.Builder
	for i, c := range p.AppClasses() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(DumpClass(c))
	}
	return b.String()
}

// Package graph defines the constraint graph of the analysis (Section 4.1 of
// the paper): nodes for variables, fields, allocation sites, implicitly
// created activities, layout/view ids, inflated views, and Android operation
// sites; value-flow edges between them; and the relationship edges
// (parent-child, view-id, listener, content-root) that the solver grows to a
// fixed point.
package graph

import (
	"fmt"

	"gator/internal/ir"
	"gator/internal/platform"
)

// Node is any constraint graph node.
type Node interface {
	ID() int
	String() string
}

// Value is a node that represents an abstract run-time value and can appear
// in points-to sets: allocation sites, inflated views, activities, and
// resource ids.
type Value interface {
	Node
	valueMarker()
}

type base struct{ id int }

func (b base) ID() int { return b.id }

// VarNode represents one local variable, parameter, or receiver. Under
// context-sensitive cloning (core.Options.Context1 or ContextSensitivity),
// one variable may have several nodes distinguished by Ctx; the
// context-insensitive node has Ctx 0. CtxLabel is the interned label of
// the context when one was registered (call-site position for 1-CFA,
// receiver class for 1-object); anonymous Context1 contexts leave it
// empty and render as #N.
type VarNode struct {
	base
	Var      *ir.Var
	Ctx      int
	CtxLabel string
}

func (n *VarNode) String() string {
	if n.CtxLabel != "" {
		return fmt.Sprintf("Var[%s @ %s]", n.Var, n.CtxLabel)
	}
	if n.Ctx != 0 {
		return fmt.Sprintf("Var[%s#%d]", n.Var, n.Ctx)
	}
	return "Var[" + n.Var.String() + "]"
}

// FieldNode represents one field, field-based (one node per field signature).
type FieldNode struct {
	base
	Field *ir.Field
}

func (n *FieldNode) String() string { return "Field[" + n.Field.Sig() + "]" }

// AllocNode represents the objects created by one new-expression.
type AllocNode struct {
	base
	Site   *ir.New
	Method *ir.Method // containing method
	Class  *ir.Class
	// IsView and IsListener classify the allocated class.
	IsView     bool
	IsListener bool
	// IsDialog marks application dialog classes (content-view owners).
	IsDialog bool
	// Ordinal numbers allocation sites within the program, for stable names.
	Ordinal int
}

func (n *AllocNode) valueMarker() {}
func (n *AllocNode) String() string {
	return fmt.Sprintf("Alloc[new %s #%d]", n.Class.Name, n.Ordinal)
}

// ActivityNode represents the platform-created instances of one application
// activity class.
type ActivityNode struct {
	base
	Class *ir.Class
	// IsListener is set when the activity class itself implements a
	// listener interface (the paper's "any object could be a listener").
	IsListener bool
}

func (n *ActivityNode) valueMarker()   {}
func (n *ActivityNode) String() string { return "Activity[" + n.Class.Name + "]" }

// LayoutIDNode represents one R.layout constant.
type LayoutIDNode struct {
	base
	ResID int
	Name  string
}

func (n *LayoutIDNode) valueMarker()   {}
func (n *LayoutIDNode) String() string { return "LayoutId[" + n.Name + "]" }

// MenuNode represents the options menu the platform supplies to one
// activity class's onCreateOptionsMenu callback (menu-model extension).
type MenuNode struct {
	base
	Activity *ir.Class
}

func (n *MenuNode) valueMarker()   {}
func (n *MenuNode) String() string { return "Menu[" + n.Activity.Name + "]" }

// MenuItemNode represents the menu items created by one Menu.add operation
// site.
type MenuItemNode struct {
	base
	Op *OpNode
}

func (n *MenuItemNode) valueMarker() {}
func (n *MenuItemNode) String() string {
	return fmt.Sprintf("MenuItem[#op%d]", n.Op.ID())
}

// ClassNode represents one class-literal constant (C.class), used to target
// intents in the inter-component extension.
type ClassNode struct {
	base
	Class *ir.Class
}

func (n *ClassNode) valueMarker()   {}
func (n *ClassNode) String() string { return "Class[" + n.Class.Name + "]" }

// StringIDNode represents one R.string constant. String resources carry no
// GUI objects, but menu items and dialog titles reference them, so the
// analysis tracks the constants as first-class values the same way it
// tracks view ids.
type StringIDNode struct {
	base
	ResID int
	Name  string
}

func (n *StringIDNode) valueMarker()   {}
func (n *StringIDNode) String() string { return "StringId[" + n.Name + "]" }

// ViewIDNode represents one R.id constant.
type ViewIDNode struct {
	base
	ResID int
	Name  string
}

func (n *ViewIDNode) valueMarker()   {}
func (n *ViewIDNode) String() string { return "ViewId[" + n.Name + "]" }

// InflNode represents the view created for one layout-definition node at one
// inflation site ("a fresh set of graph nodes is introduced at each
// inflation site").
type InflNode struct {
	base
	// Op is the inflation operation that created this view.
	Op *OpNode
	// LayoutName is the inflated layout; Path identifies the node within the
	// layout tree (preorder index).
	LayoutName string
	Path       int
	Class      *ir.Class
	// IDName is the view id name from the layout, or "".
	IDName string
	// OnClick is the declarative android:onClick handler name, or "".
	OnClick string
}

func (n *InflNode) valueMarker() {}
func (n *InflNode) String() string {
	if n.IDName != "" {
		return fmt.Sprintf("Infl[%s@%s:%d id=%s #op%d]", n.Class.Name, n.LayoutName, n.Path, n.IDName, n.Op.ID())
	}
	return fmt.Sprintf("Infl[%s@%s:%d #op%d]", n.Class.Name, n.LayoutName, n.Path, n.Op.ID())
}

// OpNode represents one Android operation site.
type OpNode struct {
	base
	Kind  platform.OpKind
	Scope platform.Scope
	// Event is the GUI event for SetListener ops.
	Event string
	// AttachParent/ParentArg describe inflate-into-parent variants.
	AttachParent bool
	ParentArg    int
	// Site is the originating call; nil for synthesized operations.
	Site *ir.Invoke
	// Method is the containing method.
	Method *ir.Method
	// Recv, Args, Out connect the operation to variable nodes; Out is nil
	// for void operations.
	Recv *VarNode
	Args []*VarNode
	Out  *VarNode
}

func (n *OpNode) String() string {
	where := ""
	if n.Site != nil && n.Site.Pos().IsValid() {
		where = "@" + n.Site.Pos().String()
	} else if n.Method != nil {
		where = "@" + n.Method.QualifiedName()
	}
	return fmt.Sprintf("%s%s", n.Kind, where)
}

// Graph is the constraint graph.
type Graph struct {
	nodes []Node

	vars       map[varKey]*VarNode
	methodVars map[*ir.Method][]*VarNode
	fields     map[*ir.Field]*FieldNode
	activities map[*ir.Class]*ActivityNode
	layoutIDs  map[int]*LayoutIDNode
	viewIDs    map[int]*ViewIDNode
	stringIDs  map[int]*StringIDNode
	classes    map[*ir.Class]*ClassNode
	menus      map[*ir.Class]*MenuNode
	menuItems  map[*OpNode]*MenuItemNode

	allocs []*AllocNode
	infls  []*InflNode
	ops    []*OpNode

	// Cloning contexts: ctxSeq numbers them densely (0 = insensitive),
	// ctxLabels/ctxIDs intern the optional human-readable labels, and
	// ctxVars indexes each variable's non-zero-context clones so queries
	// can project contexts away without scanning every node.
	ctxSeq    int
	ctxLabels map[int]string
	ctxIDs    map[string]int
	ctxVars   map[*ir.Var][]*VarNode

	// allocSeq numbers allocation nodes ever created; unlike len(allocs) it
	// never shrinks, so ordinals stay unique after Retire.
	allocSeq int

	// flow edges: ordered successor lists with a set for dedup.
	flowSucc map[Node][]Node
	flowSet  map[edgeKey]bool
	numFlow  int

	// Relationship edges, grown during solving.
	children  *relation // view ⇒ child view
	parents   *relation // child view ⇒ parent view (inverse index)
	viewIDRel *relation // view ⇒ ViewIDNode
	listeners *relation // view ⇒ listener value
	roots     *relation // activity/dialog value ⇒ root view
	layoutOf  *relation // inflated root ⇒ LayoutIDNode
	targets   *relation // intent allocation ⇒ ClassNode
	menuRel   *relation // menu ⇒ menu item

	// gen increments whenever a relationship edge is added; used to
	// invalidate reachability memos.
	gen int
}

type edgeKey struct{ src, dst int }

type varKey struct {
	v   *ir.Var
	ctx int
}

// New creates an empty constraint graph.
func New() *Graph {
	return &Graph{
		vars:       map[varKey]*VarNode{},
		methodVars: map[*ir.Method][]*VarNode{},
		fields:     map[*ir.Field]*FieldNode{},
		activities: map[*ir.Class]*ActivityNode{},
		layoutIDs:  map[int]*LayoutIDNode{},
		viewIDs:    map[int]*ViewIDNode{},
		stringIDs:  map[int]*StringIDNode{},
		classes:    map[*ir.Class]*ClassNode{},
		menus:      map[*ir.Class]*MenuNode{},
		menuItems:  map[*OpNode]*MenuItemNode{},
		ctxLabels:  map[int]string{},
		ctxIDs:     map[string]int{},
		ctxVars:    map[*ir.Var][]*VarNode{},
		flowSucc:   map[Node][]Node{},
		flowSet:    map[edgeKey]bool{},
		children:   newRelation(),
		parents:    newRelation(),
		viewIDRel:  newRelation(),
		listeners:  newRelation(),
		roots:      newRelation(),
		layoutOf:   newRelation(),
		targets:    newRelation(),
		menuRel:    newRelation(),
	}
}

func (g *Graph) register(n Node) {
	g.nodes = append(g.nodes, n)
}

func (g *Graph) nextID() base { return base{id: len(g.nodes)} }

// Nodes returns all nodes in creation order.
func (g *Graph) Nodes() []Node { return g.nodes }

// VarNode returns (creating on demand) the context-insensitive node for v.
func (g *Graph) VarNode(v *ir.Var) *VarNode { return g.VarNodeCtx(v, 0) }

// VarNodeCtx returns (creating on demand) the node for v under a cloning
// context (0 = context-insensitive).
func (g *Graph) VarNodeCtx(v *ir.Var, ctx int) *VarNode {
	k := varKey{v, ctx}
	if n, ok := g.vars[k]; ok {
		return n
	}
	n := &VarNode{base: g.nextID(), Var: v, Ctx: ctx, CtxLabel: g.ctxLabels[ctx]}
	g.vars[k] = n
	if v.Method != nil {
		g.methodVars[v.Method] = append(g.methodVars[v.Method], n)
	}
	if ctx != 0 {
		g.ctxVars[v] = append(g.ctxVars[v], n)
	}
	g.register(n)
	return n
}

// NewContext allocates a fresh cloning context id. A non-empty label is
// interned (future VarNodeCtx nodes under this context render it) and can
// be looked up again with InternContext.
func (g *Graph) NewContext(label string) int {
	g.ctxSeq++
	if label != "" {
		g.ctxLabels[g.ctxSeq] = label
		g.ctxIDs[label] = g.ctxSeq
	}
	return g.ctxSeq
}

// InternContext returns the context id for a label, allocating one on
// first use. The same label always maps to the same id, so cloning keyed
// by label (per receiver class, say) reuses one context across call sites.
func (g *Graph) InternContext(label string) int {
	if id, ok := g.ctxIDs[label]; ok {
		return id
	}
	return g.NewContext(label)
}

// ContextLabel returns the interned label of a context ("" when the
// context is anonymous or unknown).
func (g *Graph) ContextLabel(ctx int) string { return g.ctxLabels[ctx] }

// NumContexts returns how many cloning contexts have been allocated.
func (g *Graph) NumContexts() int { return g.ctxSeq }

// VarContextClones returns v's non-zero-context clone nodes, nil when v was
// never cloned (always, under context-insensitive solving). Unlike
// ContextVarNodes it allocates nothing and creates no node on demand.
func (g *Graph) VarContextClones(v *ir.Var) []*VarNode { return g.ctxVars[v] }

// ContextVarNodes returns every node of v across cloning contexts: the
// context-insensitive node (created on demand, first) followed by any
// per-context clones in creation order. Renderers use it to project
// contexts away from the solution.
func (g *Graph) ContextVarNodes(v *ir.Var) []*VarNode {
	base := g.VarNodeCtx(v, 0)
	clones := g.ctxVars[v]
	out := make([]*VarNode, 0, 1+len(clones))
	out = append(out, base)
	return append(out, clones...)
}

// MethodVarNodes returns the variable nodes created for m's variables since
// the index was last dropped. Incremental retraction uses it to find the
// nodes a re-lowered body orphans without scanning every node ever created.
func (g *Graph) MethodVarNodes(m *ir.Method) []*VarNode { return g.methodVars[m] }

// DropMethodVarNodes resets m's variable-node index. The still-live receiver
// and parameter nodes simply leave the index — they are only ever looked up
// through VarNode, never through it.
func (g *Graph) DropMethodVarNodes(m *ir.Method) { delete(g.methodVars, m) }

// VisitMenuItemNodes calls visit for every live menu-item node with its
// creating operation, in unspecified order.
func (g *Graph) VisitMenuItemNodes(visit func(op *OpNode, item *MenuItemNode)) {
	for op, item := range g.menuItems {
		visit(op, item)
	}
}

// FieldNode returns (creating on demand) the node for f.
func (g *Graph) FieldNode(f *ir.Field) *FieldNode {
	if n, ok := g.fields[f]; ok {
		return n
	}
	n := &FieldNode{base: g.nextID(), Field: f}
	g.fields[f] = n
	g.register(n)
	return n
}

// ActivityNode returns (creating on demand) the node for activity class c.
func (g *Graph) ActivityNode(c *ir.Class) *ActivityNode {
	if n, ok := g.activities[c]; ok {
		return n
	}
	n := &ActivityNode{base: g.nextID(), Class: c}
	g.activities[c] = n
	g.register(n)
	return n
}

// LayoutIDNode returns (creating on demand) the node for a layout constant.
func (g *Graph) LayoutIDNode(resID int, name string) *LayoutIDNode {
	if n, ok := g.layoutIDs[resID]; ok {
		return n
	}
	n := &LayoutIDNode{base: g.nextID(), ResID: resID, Name: name}
	g.layoutIDs[resID] = n
	g.register(n)
	return n
}

// ViewIDNode returns (creating on demand) the node for a view id constant.
func (g *Graph) ViewIDNode(resID int, name string) *ViewIDNode {
	if n, ok := g.viewIDs[resID]; ok {
		return n
	}
	n := &ViewIDNode{base: g.nextID(), ResID: resID, Name: name}
	g.viewIDs[resID] = n
	g.register(n)
	return n
}

// StringIDNode returns (creating on demand) the node for a string resource
// constant.
func (g *Graph) StringIDNode(resID int, name string) *StringIDNode {
	if n, ok := g.stringIDs[resID]; ok {
		return n
	}
	n := &StringIDNode{base: g.nextID(), ResID: resID, Name: name}
	g.stringIDs[resID] = n
	g.register(n)
	return n
}

// MenuNode returns (creating on demand) the options-menu node for an
// activity class.
func (g *Graph) MenuNode(c *ir.Class) *MenuNode {
	if n, ok := g.menus[c]; ok {
		return n
	}
	n := &MenuNode{base: g.nextID(), Activity: c}
	g.menus[c] = n
	g.register(n)
	return n
}

// MenuItemNode returns (creating on demand) the node for the items created
// at one Menu.add operation.
func (g *Graph) MenuItemNode(op *OpNode) *MenuItemNode {
	if n, ok := g.menuItems[op]; ok {
		return n
	}
	n := &MenuItemNode{base: g.nextID(), Op: op}
	g.menuItems[op] = n
	g.register(n)
	return n
}

// ClassNode returns (creating on demand) the node for a class literal.
func (g *Graph) ClassNode(c *ir.Class) *ClassNode {
	if n, ok := g.classes[c]; ok {
		return n
	}
	n := &ClassNode{base: g.nextID(), Class: c}
	g.classes[c] = n
	g.register(n)
	return n
}

// NewAllocNode creates the node for one allocation site.
func (g *Graph) NewAllocNode(site *ir.New, m *ir.Method, isView, isListener, isDialog bool) *AllocNode {
	n := &AllocNode{
		base:       g.nextID(),
		Site:       site,
		Method:     m,
		Class:      site.Class,
		IsView:     isView,
		IsListener: isListener,
		IsDialog:   isDialog,
		Ordinal:    g.allocSeq,
	}
	g.allocSeq++
	g.allocs = append(g.allocs, n)
	g.register(n)
	return n
}

// NewInflNode creates the node for one inflated layout-definition node.
func (g *Graph) NewInflNode(op *OpNode, layoutName string, path int, class *ir.Class, idName, onClick string) *InflNode {
	n := &InflNode{
		base:       g.nextID(),
		Op:         op,
		LayoutName: layoutName,
		Path:       path,
		Class:      class,
		IDName:     idName,
		OnClick:    onClick,
	}
	g.infls = append(g.infls, n)
	g.register(n)
	return n
}

// NewOpNode creates an operation node.
func (g *Graph) NewOpNode(kind platform.OpKind, site *ir.Invoke, m *ir.Method) *OpNode {
	n := &OpNode{base: g.nextID(), Kind: kind, Site: site, Method: m}
	g.ops = append(g.ops, n)
	g.register(n)
	return n
}

// Allocs returns all allocation nodes in creation order.
func (g *Graph) Allocs() []*AllocNode { return g.allocs }

// Infls returns all inflation-created view nodes in creation order.
func (g *Graph) Infls() []*InflNode { return g.infls }

// Ops returns all operation nodes in creation order.
func (g *Graph) Ops() []*OpNode { return g.ops }

// Activities returns all activity nodes in creation order.
func (g *Graph) Activities() []*ActivityNode {
	var out []*ActivityNode
	for _, n := range g.nodes {
		if a, ok := n.(*ActivityNode); ok {
			out = append(out, a)
		}
	}
	return out
}

// LayoutIDs returns all layout id nodes in creation order.
func (g *Graph) LayoutIDs() []*LayoutIDNode {
	var out []*LayoutIDNode
	for _, n := range g.nodes {
		if l, ok := n.(*LayoutIDNode); ok {
			out = append(out, l)
		}
	}
	return out
}

// ViewIDs returns all view id nodes in creation order.
func (g *Graph) ViewIDs() []*ViewIDNode {
	var out []*ViewIDNode
	for _, n := range g.nodes {
		if v, ok := n.(*ViewIDNode); ok {
			out = append(out, v)
		}
	}
	return out
}

// AddFlow adds a value-flow edge; reports whether it is new.
func (g *Graph) AddFlow(src, dst Node) bool {
	k := edgeKey{src.ID(), dst.ID()}
	if g.flowSet[k] {
		return false
	}
	g.flowSet[k] = true
	g.flowSucc[src] = append(g.flowSucc[src], dst)
	g.numFlow++
	return true
}

// FlowSucc returns the flow successors of n in insertion order.
func (g *Graph) FlowSucc(n Node) []Node { return g.flowSucc[n] }

// VisitFlow calls visit once per flow source with its successor list, in
// unspecified order. The slice is the graph's backing store; callers must
// not modify it or the flow edges during the visit.
func (g *Graph) VisitFlow(visit func(src Node, dsts []Node)) {
	for src, dsts := range g.flowSucc {
		visit(src, dsts)
	}
}

// FilterFlow removes every value-flow edge for which keep reports false,
// preserving the insertion order of the surviving successors. It returns the
// number of edges removed. Used by incremental retraction to drop edges
// whose construction read an edited compilation unit.
func (g *Graph) FilterFlow(keep func(src, dst Node) bool) int {
	removed := 0
	for src, succs := range g.flowSucc {
		kept := succs[:0]
		for _, dst := range succs {
			if keep(src, dst) {
				kept = append(kept, dst)
			} else {
				delete(g.flowSet, edgeKey{src.ID(), dst.ID()})
				removed++
			}
		}
		if len(kept) == 0 {
			delete(g.flowSucc, src)
			continue
		}
		for i := len(kept); i < len(succs); i++ {
			succs[i] = nil
		}
		g.flowSucc[src] = kept
	}
	g.numFlow -= removed
	return removed
}

// NumFlowEdges returns the number of value-flow edges.
func (g *Graph) NumFlowEdges() int { return g.numFlow }

// Gen returns the relationship-edge generation counter; it changes whenever
// a relationship edge is added, invalidating reachability memos.
func (g *Graph) Gen() int { return g.gen }

// AddChild records a parent-child edge between views.
func (g *Graph) AddChild(parent, child Value) bool {
	if g.children.add(parent, child) {
		g.parents.add(child, parent)
		g.gen++
		return true
	}
	return false
}

// RemoveChild deletes a parent-child edge (both directions of the index);
// reports whether it existed.
func (g *Graph) RemoveChild(parent, child Value) bool {
	if g.children.remove(parent, child) {
		g.parents.remove(child, parent)
		g.gen++
		return true
	}
	return false
}

// RemoveViewID deletes a view ⇒ view-id association.
func (g *Graph) RemoveViewID(view, id Value) bool {
	if g.viewIDRel.remove(view, id) {
		g.gen++
		return true
	}
	return false
}

// RemoveListener deletes a view ⇒ listener association.
func (g *Graph) RemoveListener(view, lst Value) bool {
	if g.listeners.remove(view, lst) {
		g.gen++
		return true
	}
	return false
}

// RemoveRoot deletes an activity/dialog ⇒ content-root association.
func (g *Graph) RemoveRoot(owner, view Value) bool {
	if g.roots.remove(owner, view) {
		g.gen++
		return true
	}
	return false
}

// RemoveIntentTarget deletes an intent ⇒ target-class association.
func (g *Graph) RemoveIntentTarget(intent, target Value) bool {
	if g.targets.remove(intent, target) {
		g.gen++
		return true
	}
	return false
}

// RemoveMenuItem deletes a menu ⇒ item association.
func (g *Graph) RemoveMenuItem(menu, item Value) bool {
	if g.menuRel.remove(menu, item) {
		g.gen++
		return true
	}
	return false
}

// Retire removes dead nodes from the allocation, inflation, operation, and
// menu-item indices and drops layout-provenance entries rooted at them. Node
// ids stay allocated — facts recorded against retained nodes keep their ids —
// but retired nodes no longer appear in any query iteration. Used by
// incremental retraction for the nodes owned by re-lowered method bodies.
func (g *Graph) Retire(dead func(Node) bool) {
	keptAllocs := g.allocs[:0]
	for _, n := range g.allocs {
		if !dead(n) {
			keptAllocs = append(keptAllocs, n)
		}
	}
	for i := len(keptAllocs); i < len(g.allocs); i++ {
		g.allocs[i] = nil
	}
	g.allocs = keptAllocs

	keptInfls := g.infls[:0]
	for _, n := range g.infls {
		if !dead(n) {
			keptInfls = append(keptInfls, n)
		}
	}
	for i := len(keptInfls); i < len(g.infls); i++ {
		g.infls[i] = nil
	}
	g.infls = keptInfls

	keptOps := g.ops[:0]
	for _, n := range g.ops {
		if !dead(n) {
			keptOps = append(keptOps, n)
		}
	}
	for i := len(keptOps); i < len(g.ops); i++ {
		g.ops[i] = nil
	}
	g.ops = keptOps

	for op, item := range g.menuItems {
		if dead(op) || dead(item) {
			delete(g.menuItems, op)
		}
	}
	for k, n := range g.vars {
		if dead(n) {
			delete(g.vars, k)
		}
	}
	g.layoutOf.dropSrcIf(func(v Value) bool { return dead(v) })
	g.gen++
}

// Parents returns the recorded parent views of child.
func (g *Graph) Parents(child Value) []Value { return g.parents.get(child) }

// Children returns the recorded child views of parent.
func (g *Graph) Children(parent Value) []Value { return g.children.get(parent) }

// AddViewID records a view ⇒ view-id association.
func (g *Graph) AddViewID(view Value, id *ViewIDNode) bool {
	if g.viewIDRel.add(view, id) {
		g.gen++
		return true
	}
	return false
}

// ViewIDsOf returns the id nodes associated with view.
func (g *Graph) ViewIDsOf(view Value) []*ViewIDNode {
	vals := g.viewIDRel.get(view)
	out := make([]*ViewIDNode, len(vals))
	for i, v := range vals {
		out[i] = v.(*ViewIDNode)
	}
	return out
}

// AddListener records a view ⇒ listener association.
func (g *Graph) AddListener(view, lst Value) bool {
	if g.listeners.add(view, lst) {
		g.gen++
		return true
	}
	return false
}

// Listeners returns the listener values associated with view.
func (g *Graph) Listeners(view Value) []Value { return g.listeners.get(view) }

// ListenerPairs visits every (view, listener) association.
func (g *Graph) ListenerPairs(visit func(view, lst Value)) {
	g.listeners.visit(visit)
}

// ChildPairs visits every (parent, child) association.
func (g *Graph) ChildPairs(visit func(parent, child Value)) {
	g.children.visit(visit)
}

// AddRoot records an activity/dialog ⇒ content-root association.
func (g *Graph) AddRoot(owner, view Value) bool {
	if g.roots.add(owner, view) {
		g.gen++
		return true
	}
	return false
}

// Roots returns the content roots of an activity or dialog value.
func (g *Graph) Roots(owner Value) []Value { return g.roots.get(owner) }

// RootPairs visits every (owner, root) association.
func (g *Graph) RootPairs(visit func(owner, root Value)) { g.roots.visit(visit) }

// AddIntentTarget records an intent ⇒ target-class association.
func (g *Graph) AddIntentTarget(intent Value, target *ClassNode) bool {
	if g.targets.add(intent, target) {
		g.gen++
		return true
	}
	return false
}

// IntentTargets returns the target classes associated with an intent value.
func (g *Graph) IntentTargets(intent Value) []*ClassNode {
	vals := g.targets.get(intent)
	out := make([]*ClassNode, len(vals))
	for i, v := range vals {
		out[i] = v.(*ClassNode)
	}
	return out
}

// AddMenuItem records a menu ⇒ item association.
func (g *Graph) AddMenuItem(menu *MenuNode, item *MenuItemNode) bool {
	if g.menuRel.add(menu, item) {
		g.gen++
		return true
	}
	return false
}

// MenuItems returns the items recorded for a menu.
func (g *Graph) MenuItems(menu *MenuNode) []Value { return g.menuRel.get(menu) }

// MenuPairs visits every (menu, item) association.
func (g *Graph) MenuPairs(visit func(menu, item Value)) { g.menuRel.visit(visit) }

// Menus returns all menu nodes in creation order.
func (g *Graph) Menus() []*MenuNode {
	var out []*MenuNode
	for _, n := range g.nodes {
		if m, ok := n.(*MenuNode); ok {
			out = append(out, m)
		}
	}
	return out
}

// AddLayoutOf records inflated-root ⇒ layout-id provenance.
func (g *Graph) AddLayoutOf(root Value, id *LayoutIDNode) bool {
	if g.layoutOf.add(root, id) {
		g.gen++
		return true
	}
	return false
}

// LayoutOf returns the layout ids a root was inflated from.
func (g *Graph) LayoutOf(root Value) []Value { return g.layoutOf.get(root) }

// relation is an ordered, deduplicated binary relation over values.
type relation struct {
	succ map[Value][]Value
	set  map[edgeKey]bool
	srcs []Value
}

func newRelation() *relation {
	return &relation{succ: map[Value][]Value{}, set: map[edgeKey]bool{}}
}

func (r *relation) add(src, dst Value) bool {
	k := edgeKey{src.ID(), dst.ID()}
	if r.set[k] {
		return false
	}
	r.set[k] = true
	if _, ok := r.succ[src]; !ok {
		r.srcs = append(r.srcs, src)
	}
	r.succ[src] = append(r.succ[src], dst)
	return true
}

func (r *relation) remove(src, dst Value) bool {
	k := edgeKey{src.ID(), dst.ID()}
	if !r.set[k] {
		return false
	}
	delete(r.set, k)
	succs := r.succ[src]
	for i, d := range succs {
		if d.ID() == dst.ID() {
			copy(succs[i:], succs[i+1:])
			succs[len(succs)-1] = nil
			r.succ[src] = succs[:len(succs)-1]
			break
		}
	}
	// The (now possibly empty) succ entry and srcs slot stay: add() treats a
	// present succ key as "already listed in srcs", so deleting it here would
	// duplicate src in the visit order on a later re-add.
	return true
}

// dropSrcIf removes every pair whose source satisfies dead, including the
// source's slot in the visit order (safe: a dead source can never be re-added).
func (r *relation) dropSrcIf(dead func(Value) bool) {
	kept := r.srcs[:0]
	for _, s := range r.srcs {
		if dead(s) {
			for _, d := range r.succ[s] {
				delete(r.set, edgeKey{s.ID(), d.ID()})
			}
			delete(r.succ, s)
			continue
		}
		kept = append(kept, s)
	}
	for i := len(kept); i < len(r.srcs); i++ {
		r.srcs[i] = nil
	}
	r.srcs = kept
}

func (r *relation) get(src Value) []Value { return r.succ[src] }

func (r *relation) visit(f func(src, dst Value)) {
	for _, s := range r.srcs {
		for _, d := range r.succ[s] {
			f(s, d)
		}
	}
}

// IsViewValue reports whether v abstracts view objects.
func IsViewValue(v Value) bool {
	switch v := v.(type) {
	case *InflNode:
		return true
	case *AllocNode:
		return v.IsView
	}
	return false
}

// ViewClass returns the view class of a view value, or nil.
func ViewClass(v Value) *ir.Class {
	switch v := v.(type) {
	case *InflNode:
		return v.Class
	case *AllocNode:
		if v.IsView {
			return v.Class
		}
	}
	return nil
}

// IsListenerValue reports whether v may act as an event listener. Activities
// and views can be listeners too (the paper's general case); allocation
// nodes are listeners when their class implements a listener interface.
func IsListenerValue(v Value) bool {
	switch v := v.(type) {
	case *AllocNode:
		return v.IsListener
	case *ActivityNode:
		return v.IsListener
	}
	return false
}

package graph

import (
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/ir"
	"gator/internal/platform"
)

func testProgram(t *testing.T) *ir.Program {
	t.Helper()
	src := `
class L implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	View root;
	void onCreate() {
		LinearLayout x = new LinearLayout();
		L l = new L();
	}
}`
	f, err := alite.Parse("t", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build([]*alite.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNodeCreationIdempotent(t *testing.T) {
	p := testProgram(t)
	g := New()
	m := p.Class("A").Methods["onCreate()"]
	v := m.Locals[1]

	n1 := g.VarNode(v)
	n2 := g.VarNode(v)
	if n1 != n2 {
		t.Error("VarNode not idempotent")
	}
	f := p.Class("A").LookupField("root")
	if g.FieldNode(f) != g.FieldNode(f) {
		t.Error("FieldNode not idempotent")
	}
	if g.ActivityNode(p.Class("A")) != g.ActivityNode(p.Class("A")) {
		t.Error("ActivityNode not idempotent")
	}
	if g.LayoutIDNode(10, "l") != g.LayoutIDNode(10, "l") {
		t.Error("LayoutIDNode not idempotent")
	}
	if g.ViewIDNode(20, "v") != g.ViewIDNode(20, "v") {
		t.Error("ViewIDNode not idempotent")
	}

	// IDs are dense and unique.
	seen := map[int]bool{}
	for _, n := range g.Nodes() {
		if seen[n.ID()] {
			t.Errorf("duplicate node id %d", n.ID())
		}
		seen[n.ID()] = true
	}
}

func TestFlowEdgesDeduplicated(t *testing.T) {
	p := testProgram(t)
	g := New()
	m := p.Class("A").Methods["onCreate()"]
	a, b := g.VarNode(m.Locals[0]), g.VarNode(m.Locals[1])
	if !g.AddFlow(a, b) {
		t.Error("first AddFlow = false")
	}
	if g.AddFlow(a, b) {
		t.Error("duplicate AddFlow = true")
	}
	if g.NumFlowEdges() != 1 {
		t.Errorf("NumFlowEdges = %d", g.NumFlowEdges())
	}
	if len(g.FlowSucc(a)) != 1 || g.FlowSucc(a)[0] != b {
		t.Errorf("FlowSucc = %v", g.FlowSucc(a))
	}
}

func TestRelationsAndGen(t *testing.T) {
	g := New()
	v1 := g.ViewIDNode(1, "a") // stand-in values
	v2 := g.ViewIDNode(2, "b")
	gen := g.Gen()
	if !g.AddChild(v1, v2) {
		t.Error("AddChild new = false")
	}
	if g.Gen() == gen {
		t.Error("Gen did not advance")
	}
	gen = g.Gen()
	if g.AddChild(v1, v2) {
		t.Error("duplicate AddChild = true")
	}
	if g.Gen() != gen {
		t.Error("Gen advanced on duplicate")
	}
	if len(g.Children(v1)) != 1 {
		t.Errorf("Children = %v", g.Children(v1))
	}
	var pairs int
	g.ChildPairs(func(p, c Value) { pairs++ })
	if pairs != 1 {
		t.Errorf("pairs = %d", pairs)
	}

	if !g.AddListener(v1, v2) || g.AddListener(v1, v2) {
		t.Error("listener relation dedup broken")
	}
	if !g.AddRoot(v1, v2) || g.AddRoot(v1, v2) {
		t.Error("root relation dedup broken")
	}
	lid := g.LayoutIDNode(3, "main")
	if !g.AddLayoutOf(v1, lid) {
		t.Error("AddLayoutOf new = false")
	}
	if len(g.LayoutOf(v1)) != 1 {
		t.Errorf("LayoutOf = %v", g.LayoutOf(v1))
	}
}

func TestValueClassification(t *testing.T) {
	p := testProgram(t)
	g := New()
	m := p.Class("A").Methods["onCreate()"]

	var allocStmts []*ir.New
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		if n, ok := s.(*ir.New); ok {
			allocStmts = append(allocStmts, n)
		}
	})
	if len(allocStmts) != 2 {
		t.Fatalf("allocs = %d", len(allocStmts))
	}
	viewAlloc := g.NewAllocNode(allocStmts[0], m, true, false, false)
	lstAlloc := g.NewAllocNode(allocStmts[1], m, false, true, false)

	if !IsViewValue(viewAlloc) || IsViewValue(lstAlloc) {
		t.Error("IsViewValue misclassifies allocs")
	}
	if IsListenerValue(viewAlloc) || !IsListenerValue(lstAlloc) {
		t.Error("IsListenerValue misclassifies allocs")
	}
	if ViewClass(viewAlloc) == nil || ViewClass(lstAlloc) != nil {
		t.Error("ViewClass misclassifies")
	}

	act := g.ActivityNode(p.Class("A"))
	if IsViewValue(act) {
		t.Error("activity is not a view")
	}
	if IsListenerValue(act) {
		t.Error("activity without listener interface classified as listener")
	}
	act.IsListener = true
	if !IsListenerValue(act) {
		t.Error("listener activity not classified")
	}

	op := g.NewOpNode(platform.OpFindView1, nil, m)
	infl := g.NewInflNode(op, "main", 0, p.Class("LinearLayout"), "box", "")
	if !IsViewValue(infl) || ViewClass(infl).Name != "LinearLayout" {
		t.Error("inflation node misclassified")
	}
	if len(g.Infls()) != 1 || len(g.Allocs()) != 2 || len(g.Ops()) != 1 {
		t.Error("registry counts wrong")
	}
}

func TestNodeStrings(t *testing.T) {
	p := testProgram(t)
	g := New()
	m := p.Class("A").Methods["onCreate()"]

	cases := []struct {
		node Node
		want string
	}{
		{g.VarNode(m.This), "Var[A.onCreate:this]"},
		{g.FieldNode(p.Class("A").LookupField("root")), "Field[A.root]"},
		{g.ActivityNode(p.Class("A")), "Activity[A]"},
		{g.LayoutIDNode(0x7f030000, "main"), "LayoutId[main]"},
		{g.ViewIDNode(0x7f080000, "go"), "ViewId[go]"},
	}
	for _, c := range cases {
		if got := c.node.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	op := g.NewOpNode(platform.OpSetListener, nil, m)
	if !strings.Contains(op.String(), "SetListener") {
		t.Errorf("op string = %q", op.String())
	}
	infl := g.NewInflNode(op, "main", 2, p.Class("Button"), "go", "")
	if !strings.Contains(infl.String(), "main:2") || !strings.Contains(infl.String(), "go") {
		t.Errorf("infl string = %q", infl.String())
	}
}

func TestExtensionNodesAndRelations(t *testing.T) {
	p := testProgram(t)
	g := New()
	a := p.Class("A")

	// Menus.
	menu := g.MenuNode(a)
	if g.MenuNode(a) != menu {
		t.Error("MenuNode not idempotent")
	}
	op := g.NewOpNode(platform.OpMenuAdd, nil, a.Methods["onCreate()"])
	item := g.MenuItemNode(op)
	if g.MenuItemNode(op) != item {
		t.Error("MenuItemNode not idempotent")
	}
	if !g.AddMenuItem(menu, item) || g.AddMenuItem(menu, item) {
		t.Error("AddMenuItem dedup broken")
	}
	if len(g.MenuItems(menu)) != 1 {
		t.Errorf("MenuItems = %v", g.MenuItems(menu))
	}
	pairs := 0
	g.MenuPairs(func(m, i Value) { pairs++ })
	if pairs != 1 {
		t.Errorf("MenuPairs = %d", pairs)
	}
	if len(g.Menus()) != 1 {
		t.Errorf("Menus = %v", g.Menus())
	}
	if menu.String() != "Menu[A]" || item.String() == "" {
		t.Errorf("strings: %q %q", menu, item)
	}

	// Class literals and intent targets.
	cn := g.ClassNode(a)
	if g.ClassNode(a) != cn || cn.String() != "Class[A]" {
		t.Errorf("ClassNode = %v", cn)
	}
	intent := g.ViewIDNode(99, "standin") // any value works structurally
	if !g.AddIntentTarget(intent, cn) || g.AddIntentTarget(intent, cn) {
		t.Error("AddIntentTarget dedup broken")
	}
	if got := g.IntentTargets(intent); len(got) != 1 || got[0] != cn {
		t.Errorf("IntentTargets = %v", got)
	}

	// Parents inverse index.
	v1, v2 := g.ViewIDNode(1, "a"), g.ViewIDNode(2, "b")
	g.AddChild(v1, v2)
	if got := g.Parents(v2); len(got) != 1 || got[0] != v1 {
		t.Errorf("Parents = %v", got)
	}

	// Registry accessors.
	g.ActivityNode(a)
	g.LayoutIDNode(10, "main")
	if len(g.Activities()) != 1 || len(g.LayoutIDs()) != 1 || len(g.ViewIDs()) != 3 {
		t.Errorf("registries: %d %d %d", len(g.Activities()), len(g.LayoutIDs()), len(g.ViewIDs()))
	}

	// Remaining relation accessors.
	if !g.AddViewID(v1, g.ViewIDNode(3, "c")) {
		t.Error("AddViewID new = false")
	}
	if len(g.ViewIDsOf(v1)) != 1 {
		t.Errorf("ViewIDsOf = %v", g.ViewIDsOf(v1))
	}
	g.AddListener(v1, v2)
	if len(g.Listeners(v1)) != 1 {
		t.Errorf("Listeners = %v", g.Listeners(v1))
	}
	lp := 0
	g.ListenerPairs(func(a, b Value) { lp++ })
	if lp != 1 {
		t.Errorf("ListenerPairs = %d", lp)
	}
	g.AddRoot(v1, v2)
	if len(g.Roots(v1)) != 1 {
		t.Errorf("Roots = %v", g.Roots(v1))
	}
	rp := 0
	g.RootPairs(func(a, b Value) { rp++ })
	if rp != 1 {
		t.Errorf("RootPairs = %d", rp)
	}
	lid := g.LayoutIDNode(10, "main")
	g.AddLayoutOf(v1, lid)
	if len(g.LayoutOf(v1)) != 1 {
		t.Errorf("LayoutOf = %v", g.LayoutOf(v1))
	}

	// Value marker strings for all value kinds.
	for _, v := range []Value{menu, item, cn, g.ActivityNode(a), lid} {
		if v.String() == "" {
			t.Errorf("empty String for %T", v)
		}
	}
}

func TestVarNodeContexts(t *testing.T) {
	p := testProgram(t)
	g := New()
	m := p.Class("A").Methods["onCreate()"]
	v := m.Locals[1]
	base := g.VarNode(v)
	c1 := g.VarNodeCtx(v, 1)
	c2 := g.VarNodeCtx(v, 2)
	if base == c1 || c1 == c2 {
		t.Error("contexts not distinguished")
	}
	if g.VarNodeCtx(v, 1) != c1 {
		t.Error("VarNodeCtx not idempotent")
	}
	if base.String() == c1.String() {
		t.Errorf("context missing from String: %q", c1)
	}
}

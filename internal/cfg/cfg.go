// Package cfg constructs per-method control-flow graphs over the lowered
// three-address IR (package ir). The reference analysis itself is
// flow-insensitive and never needs one; the flow-sensitive client analyses
// (package dataflow and the CFG-based checkers in package checks) do. The
// structured control flow the lowerer retains (If/While with nested bodies)
// is flattened here into basic blocks with explicit branch edges.
package cfg

import (
	"fmt"
	"strings"

	"gator/internal/alite"
	"gator/internal/ir"
)

// Block is one basic block: a maximal sequence of atomic statements with a
// single terminator. If/While statements never appear in Stmts; their
// conditions terminate the block as Cond with a two-way branch.
type Block struct {
	// Index is the block's position in Graph.Blocks; blocks are numbered in
	// source order (deterministic across runs).
	Index int
	// Stmts are the atomic statements of the block, in execution order.
	Stmts []ir.Stmt
	// Cond is the branch condition terminating the block, or nil when the
	// block ends unconditionally. When non-nil, Succs is exactly
	// [trueTarget, falseTarget].
	Cond *ir.Cond
	// CondPos locates the branch statement for diagnostics.
	CondPos alite.Pos
	// Succs are the successor blocks; Preds the predecessors.
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one method body.
type Graph struct {
	Method *ir.Method
	// Blocks holds every block; Blocks[0] is Entry and the last block is
	// Exit. Indexes follow source order, so iterating Blocks approximates a
	// reverse postorder for reducible (structured) control flow.
	Blocks []*Block
	Entry  *Block
	Exit   *Block
}

// Build constructs the CFG for a method with a body. It panics if the method
// is abstract (Body == nil is the caller's check).
func Build(m *ir.Method) *Graph {
	g := &Graph{Method: m}
	b := &builder{g: g}
	entry := b.newBlock()
	g.Entry = entry
	end := b.seq(m.Body, entry)
	exit := b.newBlock()
	g.Exit = exit
	if end != nil {
		b.edge(end, exit)
	}
	for _, r := range b.returns {
		b.edge(r, exit)
	}
	return g
}

type builder struct {
	g *Graph
	// returns collects blocks terminated by a return statement; they all get
	// an edge to the exit block once it exists.
	returns []*Block
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// seq lowers a statement list into blocks starting at cur and returns the
// block where control continues afterwards, or nil when every path through
// the list returns.
func (b *builder) seq(stmts []ir.Stmt, cur *Block) *Block {
	for _, s := range stmts {
		if cur == nil {
			// Statements after a return (or an if whose branches both
			// return) are unreachable; they still get blocks, with no
			// predecessors, so dataflow facts stay bottom there.
			cur = b.newBlock()
		}
		switch s := s.(type) {
		case *ir.Return:
			cur.Stmts = append(cur.Stmts, s)
			b.returns = append(b.returns, cur)
			cur = nil

		case *ir.If:
			cond := cur
			cond.Cond = &s.Cond
			cond.CondPos = s.At
			thenEntry := b.newBlock()
			b.edge(cond, thenEntry)
			thenEnd := b.seq(s.Then, thenEntry)
			elseEntry := b.newBlock()
			b.edge(cond, elseEntry)
			elseEnd := b.seq(s.Else, elseEntry)
			if thenEnd == nil && elseEnd == nil {
				cur = nil
				continue
			}
			join := b.newBlock()
			if thenEnd != nil {
				b.edge(thenEnd, join)
			}
			if elseEnd != nil {
				b.edge(elseEnd, join)
			}
			cur = join

		case *ir.While:
			head := b.newBlock()
			b.edge(cur, head)
			head.Cond = &s.Cond
			head.CondPos = s.At
			body := b.newBlock()
			b.edge(head, body)
			bodyEnd := b.seq(s.Body, body)
			after := b.newBlock()
			b.edge(head, after)
			if bodyEnd != nil {
				b.edge(bodyEnd, head)
			}
			cur = after

		default:
			cur.Stmts = append(cur.Stmts, s)
		}
	}
	return cur
}

// Reachable returns the set of blocks reachable from the entry, as a
// per-index boolean slice.
func (g *Graph) Reachable() []bool {
	seen := make([]bool, len(g.Blocks))
	stack := []*Block{g.Entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk.Index] {
			continue
		}
		seen[blk.Index] = true
		stack = append(stack, blk.Succs...)
	}
	return seen
}

// Dump renders the graph as text, one block per line group, for golden tests
// and debugging:
//
//	b0:
//	  v := new Button
//	  if v == null -> b1 | b2
func (g *Graph) Dump() string {
	var out strings.Builder
	fmt.Fprintf(&out, "cfg %s (%d blocks)\n", g.Method.QualifiedName(), len(g.Blocks))
	for _, blk := range g.Blocks {
		fmt.Fprintf(&out, "b%d:", blk.Index)
		if blk == g.Entry {
			out.WriteString(" (entry)")
		}
		if blk == g.Exit {
			out.WriteString(" (exit)")
		}
		out.WriteString("\n")
		for _, s := range blk.Stmts {
			fmt.Fprintf(&out, "  %s\n", s.String())
		}
		switch {
		case blk.Cond != nil:
			fmt.Fprintf(&out, "  if %s -> b%d | b%d\n", blk.Cond.String(), blk.Succs[0].Index, blk.Succs[1].Index)
		case len(blk.Succs) == 1:
			fmt.Fprintf(&out, "  -> b%d\n", blk.Succs[0].Index)
		}
	}
	return out.String()
}

package cfg

import (
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/ir"
	"gator/internal/layout"
)

// method builds the program around one class body and returns the named
// method, lowered.
func method(t *testing.T, src, class, name string) *ir.Method {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build([]*alite.File{f}, map[string]*layout.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	c := p.Class(class)
	if c == nil {
		t.Fatalf("no class %s", class)
	}
	for _, m := range c.MethodsSorted() {
		if m.Name == name && m.Body != nil {
			return m
		}
	}
	t.Fatalf("no method %s.%s", class, name)
	return nil
}

func TestStraightLine(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		Button c = new Button();
	}
}`, "A", "onCreate")
	g := Build(m)
	// entry block with both statements, then exit.
	if len(g.Blocks) != 2 {
		t.Fatalf("blocks = %d\n%s", len(g.Blocks), g.Dump())
	}
	if len(g.Entry.Stmts) != 2 || len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Errorf("entry shape wrong\n%s", g.Dump())
	}
	if len(g.Exit.Stmts) != 0 || len(g.Exit.Succs) != 0 {
		t.Errorf("exit shape wrong\n%s", g.Dump())
	}
}

func TestIfElseJoin(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		if (b == null) {
			Button x = new Button();
		} else {
			Button y = new Button();
		}
		Button z = new Button();
	}
}`, "A", "onCreate")
	g := Build(m)
	// b0(cond) -> b1(then), b2(else); both -> b3(join) -> exit.
	if len(g.Blocks) != 5 {
		t.Fatalf("blocks = %d\n%s", len(g.Blocks), g.Dump())
	}
	b0 := g.Entry
	if b0.Cond == nil || len(b0.Succs) != 2 {
		t.Fatalf("entry not a branch\n%s", g.Dump())
	}
	then, els := b0.Succs[0], b0.Succs[1]
	if len(then.Succs) != 1 || len(els.Succs) != 1 || then.Succs[0] != els.Succs[0] {
		t.Errorf("branches do not join\n%s", g.Dump())
	}
	join := then.Succs[0]
	if len(join.Stmts) != 1 || len(join.Succs) != 1 || join.Succs[0] != g.Exit {
		t.Errorf("join shape wrong\n%s", g.Dump())
	}
}

func TestIfWithoutElseFallthrough(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		if (b != null) {
			Button x = new Button();
		}
		Button z = new Button();
	}
}`, "A", "onCreate")
	g := Build(m)
	b0 := g.Entry
	if b0.Cond == nil || b0.Cond.Negated != true {
		t.Fatalf("want != null branch\n%s", g.Dump())
	}
	then, els := b0.Succs[0], b0.Succs[1]
	if len(els.Stmts) != 0 {
		t.Errorf("empty else branch should hold no statements\n%s", g.Dump())
	}
	if then.Succs[0] != els.Succs[0] {
		t.Errorf("fallthrough does not rejoin\n%s", g.Dump())
	}
}

func TestWhileLoop(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		while (*) {
			Button x = new Button();
		}
		Button z = new Button();
	}
}`, "A", "onCreate")
	g := Build(m)
	// b0 -> head; head -> body | after; body -> head.
	head := g.Entry.Succs[0]
	if head.Cond == nil || !head.Cond.Nondet || len(head.Succs) != 2 {
		t.Fatalf("loop head shape wrong\n%s", g.Dump())
	}
	body, after := head.Succs[0], head.Succs[1]
	if len(body.Succs) != 1 || body.Succs[0] != head {
		t.Errorf("no back edge\n%s", g.Dump())
	}
	if len(after.Stmts) != 1 || after.Succs[0] != g.Exit {
		t.Errorf("loop exit shape wrong\n%s", g.Dump())
	}
	// head must have two preds: entry and the body (back edge).
	if len(head.Preds) != 2 {
		t.Errorf("head preds = %d\n%s", len(head.Preds), g.Dump())
	}
}

func TestReturnInBranch(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		if (b == null) {
			return;
		}
		Button z = new Button();
	}
}`, "A", "onCreate")
	g := Build(m)
	then := g.Entry.Succs[0]
	// The then branch returns: its only successor is the exit block, and the
	// join continues from the else branch alone.
	if len(then.Succs) != 1 || then.Succs[0] != g.Exit {
		t.Errorf("return branch must flow to exit\n%s", g.Dump())
	}
	els := g.Entry.Succs[1]
	join := els.Succs[0]
	if len(join.Preds) != 1 {
		t.Errorf("join should only be reached from the else path\n%s", g.Dump())
	}
}

func TestBothBranchesReturnUnreachableTail(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		if (*) {
			return;
		} else {
			return;
		}
		Button z = new Button();
	}
}`, "A", "onCreate")
	g := Build(m)
	reach := g.Reachable()
	unreachable := 0
	for _, blk := range g.Blocks {
		if !reach[blk.Index] {
			unreachable++
			if len(blk.Preds) != 0 && blk != g.Exit {
				t.Errorf("unreachable block with preds\n%s", g.Dump())
			}
		}
	}
	if unreachable == 0 {
		t.Errorf("trailing statement should be unreachable\n%s", g.Dump())
	}
}

func TestNestedLoopBranch(t *testing.T) {
	m := method(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		while (*) {
			if (b == null) {
				Button x = new Button();
			}
		}
	}
}`, "A", "onCreate")
	g := Build(m)
	head := g.Entry.Succs[0]
	body := head.Succs[0]
	if body.Cond == nil {
		t.Fatalf("body should branch\n%s", g.Dump())
	}
	// Inner join flows back to the loop head.
	join := body.Succs[0].Succs[0]
	if len(join.Succs) != 1 || join.Succs[0] != head {
		t.Errorf("inner join should loop back\n%s", g.Dump())
	}
	if !strings.Contains(g.Dump(), "if b == null") {
		t.Errorf("dump missing condition\n%s", g.Dump())
	}
}

func TestDeterministicDump(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		while (*) {
			if (b != null) { return; }
			Button c = new Button();
		}
	}
}`
	d1 := Build(method(t, src, "A", "onCreate")).Dump()
	d2 := Build(method(t, src, "A", "onCreate")).Dump()
	if d1 != d2 {
		t.Errorf("dump not deterministic:\n%s\n---\n%s", d1, d2)
	}
}

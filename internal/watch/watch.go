// Package watch polls an application directory and reports coalesced
// edits. It is the shared change-detection loop behind `gator -watch`
// (local incremental re-analysis), `gator -remote -watch` (pushing edits
// into a gatord session), and the server tests' session-refresh helper.
//
// Detection is polling-based (no OS watch dependency, same behavior on
// every platform): the loop fingerprints the directory by file names,
// sizes, and modification times each tick. A change does not fire the
// callback immediately — rapid successive events (editor save bursts,
// multi-file refactors, `git checkout`) are coalesced by waiting until the
// fingerprint has been stable for a settle window, then firing once with
// the final content. Without the debounce a 10-file save storm triggers up
// to 10 re-analyses; with it, exactly one.
package watch

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// Config tunes the poll loop; the zero value uses the defaults.
type Config struct {
	// Poll is the fingerprint interval (default 250ms).
	Poll time.Duration
	// Settle is how long the directory must stay unchanged after an edit
	// before the callback fires (default 2*Poll). Edits closer together
	// than Settle coalesce into one callback.
	Settle time.Duration
	// FireInitial fires the callback once with the starting content before
	// watching for changes (what `gator -watch` wants: analyze, then
	// re-analyze on change).
	FireInitial bool
}

func (c Config) withDefaults() Config {
	if c.Poll <= 0 {
		c.Poll = 250 * time.Millisecond
	}
	if c.Settle <= 0 {
		c.Settle = 2 * c.Poll
	}
	return c
}

// Event is one coalesced directory change.
type Event struct {
	// Sources and Layouts are the directory's full post-edit content, in
	// the form gator.Load / gator.AnalyzeIncremental take.
	Sources map[string]string
	Layouts map[string]string
	// Err is a read failure (mid-edit vanishing file, unreadable dir);
	// Sources/Layouts are nil when set. The loop keeps watching either way.
	Err error
}

// Dirs watched under the application root; layout/ is the optional layout
// subdirectory (mirrors gator.ReadAppDir).
func subdirs(dir string) []string {
	return []string{dir, filepath.Join(dir, "layout")}
}

// Signature fingerprints the watched directory by file names, sizes, and
// modification times, so the poll loop only re-reads contents after a
// change.
func Signature(dir string) (string, error) {
	var b strings.Builder
	for _, sub := range subdirs(dir) {
		entries, err := os.ReadDir(sub)
		if err != nil {
			if sub != dir {
				continue // the layout/ subdirectory is optional
			}
			return "", err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			fmt.Fprintf(&b, "%s/%s:%d:%d\n", sub, e.Name(), info.Size(), info.ModTime().UnixNano())
		}
	}
	return b.String(), nil
}

// ReadFunc loads the directory content for one fired event (normally
// gator.ReadAppDir; injected to keep this package free of a dependency on
// the root package and testable in isolation).
type ReadFunc func(dir string) (sources, layouts map[string]string, err error)

// Watch polls dir until stop closes, invoking fn once per coalesced change
// (and once initially under Config.FireInitial). read loads the directory
// content — pass gator.ReadAppDir. fn runs on the watch goroutine's caller;
// a slow fn simply delays the next poll, it never drops the edit (the next
// tick re-fingerprints and still sees the change).
func Watch(stop <-chan struct{}, dir string, cfg Config, read ReadFunc, fn func(Event)) {
	cfg = cfg.withDefaults()
	fire := func() {
		s, l, err := read(dir)
		if err != nil {
			fn(Event{Err: err})
			return
		}
		fn(Event{Sources: s, Layouts: l})
	}

	lastFired, err := Signature(dir)
	if err != nil {
		lastFired = "\x00unreadable"
	}
	if cfg.FireInitial {
		fire()
	}

	// pending tracks an observed-but-not-yet-fired change: the candidate
	// signature and the time it was last seen to *change*. The callback
	// fires when the candidate has been stable for the settle window.
	pending := false
	var candidate string
	var changedAt time.Time

	ticker := time.NewTicker(cfg.Poll)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		sig, err := Signature(dir)
		if err != nil {
			// An unreadable directory (mid-move, deleted) is itself a
			// change; surface it once things settle.
			sig = "\x00unreadable"
		}
		switch {
		case !pending && sig != lastFired:
			pending, candidate, changedAt = true, sig, time.Now()
		case pending && sig != candidate:
			candidate, changedAt = sig, time.Now() // still churning: restart settle window
		case pending && time.Since(changedAt) >= cfg.Settle:
			pending = false
			lastFired = sig
			fire()
		}
	}
}

package watch

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// testRead is a ReadFunc over a flat directory of .alite files.
func testRead(dir string) (map[string]string, map[string]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	sources := map[string]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, nil, err
		}
		sources[e.Name()] = string(data)
	}
	return sources, map[string]string{}, nil
}

// collector gathers fired events.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) add(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func (c *collector) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.events)
}

func (c *collector) last() Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.events[len(c.events)-1]
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return cond()
}

func TestWatchCoalescesRapidEdits(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.alite", "v0")

	var c collector
	stop := make(chan struct{})
	done := make(chan struct{})
	cfg := Config{Poll: 10 * time.Millisecond, Settle: 60 * time.Millisecond}
	go func() {
		defer close(done)
		Watch(stop, dir, cfg, testRead, c.add)
	}()

	// A burst of edits well inside the settle window must coalesce into a
	// single callback carrying the final content.
	for i, content := range []string{"v1", "v2", "v3"} {
		write("a.alite", content)
		if i == 1 {
			write("b.alite", "new file mid-burst")
		}
		time.Sleep(15 * time.Millisecond)
	}
	if !waitFor(t, 3*time.Second, func() bool { return c.len() >= 1 }) {
		t.Fatal("no event fired after the burst settled")
	}
	// Give the loop a little longer: no further events may arrive.
	time.Sleep(150 * time.Millisecond)
	if got := c.len(); got != 1 {
		t.Fatalf("burst fired %d events, want exactly 1 (coalesced)", got)
	}
	ev := c.last()
	if ev.Err != nil {
		t.Fatal(ev.Err)
	}
	if ev.Sources["a.alite"] != "v3" || ev.Sources["b.alite"] == "" {
		t.Fatalf("event carries %v, want final burst content", ev.Sources)
	}

	// A later isolated edit fires its own event.
	write("a.alite", "v4")
	if !waitFor(t, 3*time.Second, func() bool { return c.len() >= 2 }) {
		t.Fatal("isolated edit did not fire")
	}
	if got := c.last().Sources["a.alite"]; got != "v4" {
		t.Fatalf("second event content %q, want v4", got)
	}

	close(stop)
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("watch loop did not stop")
	}
}

func TestWatchFireInitial(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.alite"), []byte("v0"), 0o644); err != nil {
		t.Fatal(err)
	}
	var c collector
	stop := make(chan struct{})
	go Watch(stop, dir, Config{Poll: 10 * time.Millisecond, FireInitial: true}, testRead, c.add)
	defer close(stop)
	if !waitFor(t, 3*time.Second, func() bool { return c.len() >= 1 }) {
		t.Fatal("FireInitial did not fire")
	}
	if got := c.last().Sources["a.alite"]; got != "v0" {
		t.Fatalf("initial event content %q, want v0", got)
	}
}

func TestSignatureChangesOnEdit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.alite")
	if err := os.WriteFile(path, []byte("one"), 0o644); err != nil {
		t.Fatal(err)
	}
	s1, err := Signature(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Different size guarantees a different signature even on filesystems
	// with coarse mtime granularity.
	if err := os.WriteFile(path, []byte("three!"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Signature(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("signature unchanged after edit")
	}
}

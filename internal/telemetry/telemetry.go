// Package telemetry is the request-scoped observability layer for the
// serving tier: W3C Trace Context span identities parsed from and emitted
// as `traceparent` headers, a context.Context carrier that threads one
// request's identity from the HTTP handler through the admission queue and
// job worker down to the solver, structured-logging construction on
// log/slog, and a bounded ring of captured solver traces retrievable by
// trace id (GET /v1/debug/traces/{id}).
//
// The package adds no analysis semantics and no mandatory cost: a request
// that carries no span and a server that configures no logger skip all of
// it. The serving layer's overhead contract (<5% end to end, BENCH_8.json,
// gated by cmd/benchdiff) is measured with everything here enabled.
package telemetry

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
)

// SpanContext is one request's trace identity, per the W3C Trace Context
// recommendation: a 128-bit trace id shared by every span of the trace, a
// 64-bit span id naming this hop, and the sampled flag.
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	// Sampled is the 01 bit of the trace-flags octet: upstream asked for
	// this trace to be recorded.
	Sampled bool
}

// Valid reports whether the span carries usable identity: per the spec,
// all-zero trace or span ids are invalid.
func (sc SpanContext) Valid() bool {
	return sc.TraceID != [16]byte{} && sc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-digit lowercase hex trace id.
func (sc SpanContext) TraceIDString() string { return hex.EncodeToString(sc.TraceID[:]) }

// SpanIDString returns the 16-digit lowercase hex span id.
func (sc SpanContext) SpanIDString() string { return hex.EncodeToString(sc.SpanID[:]) }

// Traceparent renders the span as a version-00 traceparent header value:
// 00-<trace-id>-<span-id>-<flags>.
func (sc SpanContext) Traceparent() string {
	flags := byte(0)
	if sc.Sampled {
		flags = 1
	}
	return fmt.Sprintf("00-%s-%s-%02x", sc.TraceIDString(), sc.SpanIDString(), flags)
}

// ParseTraceparent parses a traceparent header value. Per the W3C spec it
// accepts any known-length future version except ff, requires lowercase
// hex, and rejects all-zero trace and span ids.
func ParseTraceparent(h string) (SpanContext, error) {
	var sc SpanContext
	// version(2) '-' traceid(32) '-' spanid(16) '-' flags(2); future
	// versions may append fields after the flags, so longer values are
	// accepted when a '-' follows.
	if len(h) < 55 {
		return sc, fmt.Errorf("telemetry: traceparent too short (%d bytes)", len(h))
	}
	if len(h) > 55 && h[55] != '-' {
		return sc, fmt.Errorf("telemetry: malformed traceparent %q", h)
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return sc, fmt.Errorf("telemetry: malformed traceparent %q", h)
	}
	version, err := hexField(h[0:2])
	if err != nil {
		return sc, err
	}
	if version[0] == 0xff {
		return sc, fmt.Errorf("telemetry: traceparent version ff is invalid")
	}
	if version[0] == 0 && len(h) != 55 {
		return sc, fmt.Errorf("telemetry: version-00 traceparent must be 55 bytes, got %d", len(h))
	}
	traceID, err := hexField(h[3:35])
	if err != nil {
		return sc, err
	}
	spanID, err := hexField(h[36:52])
	if err != nil {
		return sc, err
	}
	flags, err := hexField(h[53:55])
	if err != nil {
		return sc, err
	}
	copy(sc.TraceID[:], traceID)
	copy(sc.SpanID[:], spanID)
	sc.Sampled = flags[0]&1 != 0
	if !sc.Valid() {
		return SpanContext{}, fmt.Errorf("telemetry: traceparent with all-zero trace or span id")
	}
	return sc, nil
}

// hexField decodes a fixed-width lowercase hex field; uppercase hex is
// rejected, as the spec requires.
func hexField(s string) ([]byte, error) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return nil, fmt.Errorf("telemetry: non-lowercase-hex byte %q in traceparent field", c)
		}
	}
	return hex.DecodeString(s)
}

// NewSpan mints a fresh root span: random trace id and span id, sampled.
// Entropy failure panics — it means the platform's CSPRNG is gone, the
// same condition the session-id generator treats as fatal.
func NewSpan() SpanContext {
	var sc SpanContext
	mustRand(sc.TraceID[:])
	mustRand(sc.SpanID[:])
	sc.Sampled = true
	return sc
}

// ChildSpan derives the server's own span of an incoming trace: same trace
// id and flags, fresh span id. The parent's span id is what the caller
// logs as parentSpanId if it wants the full link.
func (sc SpanContext) ChildSpan() SpanContext {
	child := sc
	mustRand(child.SpanID[:])
	return child
}

func mustRand(b []byte) {
	if _, err := rand.Read(b); err != nil {
		panic("telemetry: span id entropy unavailable: " + err.Error())
	}
}

package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpan()
	if !sc.Valid() {
		t.Fatal("NewSpan produced an invalid span")
	}
	h := sc.Traceparent()
	if len(h) != 55 {
		t.Fatalf("traceparent %q is %d bytes, want 55", h, len(h))
	}
	back, err := ParseTraceparent(h)
	if err != nil {
		t.Fatalf("ParseTraceparent(%q): %v", h, err)
	}
	if back != sc {
		t.Fatalf("round trip changed the span: %+v vs %+v", back, sc)
	}
}

func TestTraceparentParseFixed(t *testing.T) {
	const h = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	sc, err := ParseTraceparent(h)
	if err != nil {
		t.Fatal(err)
	}
	if got := sc.TraceIDString(); got != "0af7651916cd43dd8448eb211c80319c" {
		t.Fatalf("trace id %s", got)
	}
	if got := sc.SpanIDString(); got != "b7ad6b7169203331" {
		t.Fatalf("span id %s", got)
	}
	if !sc.Sampled {
		t.Fatal("sampled flag lost")
	}
	if sc.Traceparent() != h {
		t.Fatalf("re-render %q != %q", sc.Traceparent(), h)
	}
}

func TestTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-short",
		"00-00000000000000000000000000000000-b7ad6b7169203331-01",   // zero trace id
		"00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",   // zero span id
		"ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // version ff
		"00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",   // uppercase hex
		"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x", // v00 with trailing field
		"00x0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",   // bad separator
	}
	for _, h := range bad {
		if _, err := ParseTraceparent(h); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted", h)
		}
	}
	// A future version may carry extra fields after the flags.
	ok := "cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra"
	if _, err := ParseTraceparent(ok); err != nil {
		t.Errorf("ParseTraceparent(%q): %v", ok, err)
	}
}

func TestChildSpanKeepsTraceID(t *testing.T) {
	parent := NewSpan()
	child := parent.ChildSpan()
	if child.TraceID != parent.TraceID {
		t.Fatal("child changed the trace id")
	}
	if child.SpanID == parent.SpanID {
		t.Fatal("child kept the parent's span id")
	}
}

func TestContextCarriesSpan(t *testing.T) {
	if _, ok := SpanFrom(context.Background()); ok {
		t.Fatal("background context carries a span")
	}
	if id := TraceIDFrom(context.Background()); id != "" {
		t.Fatalf("background trace id %q", id)
	}
	sc := NewSpan()
	ctx := WithSpan(context.Background(), sc)
	got, ok := SpanFrom(ctx)
	if !ok || got != sc {
		t.Fatalf("SpanFrom = %+v, %v", got, ok)
	}
	if TraceIDFrom(ctx) != sc.TraceIDString() {
		t.Fatal("TraceIDFrom mismatch")
	}
}

func TestNewLoggerLevelsAndFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Debug("hidden")
	log.Info("shown", "traceId", "abc123")
	if strings.Contains(buf.String(), "hidden") {
		t.Fatal("debug line emitted at info level")
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("log line is not JSON: %v\n%s", err, buf.String())
	}
	if rec["traceId"] != "abc123" || rec["msg"] != "shown" {
		t.Fatalf("unexpected record %v", rec)
	}

	if _, err := NewLogger(&buf, "loud", "json"); err == nil {
		t.Fatal("unknown level accepted")
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := NewLogger(&buf, "", ""); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	text, err := NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	text.Warn("plain")
	if !strings.Contains(buf.String(), "msg=plain") {
		t.Fatalf("text handler output %q", buf.String())
	}
}

func TestTraceRingBounds(t *testing.T) {
	r := NewTraceRing(3, 1<<20)
	for i := 0; i < 5; i++ {
		r.Put(fmt.Sprintf("t%d", i), []byte{byte(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("ring holds %d entries, want 3", r.Len())
	}
	if _, ok := r.Get("t0"); ok {
		t.Fatal("oldest entry survived past the count bound")
	}
	if data, ok := r.Get("t4"); !ok || data[0] != 4 {
		t.Fatal("newest entry missing")
	}

	// Byte bound: entries are evicted oldest-first until the new one fits.
	b := NewTraceRing(100, 10)
	b.Put("a", bytes.Repeat([]byte{1}, 6))
	b.Put("b", bytes.Repeat([]byte{2}, 6))
	if _, ok := b.Get("a"); ok {
		t.Fatal("byte bound not enforced")
	}
	if _, ok := b.Get("b"); !ok {
		t.Fatal("newest entry evicted instead of oldest")
	}
	// Oversized payloads are dropped whole, not stored truncated.
	b.Put("huge", bytes.Repeat([]byte{3}, 11))
	if _, ok := b.Get("huge"); ok {
		t.Fatal("oversized payload stored")
	}

	// Re-putting an id replaces the old payload without double-counting.
	b.Put("b", []byte{9})
	if data, ok := b.Get("b"); !ok || len(data) != 1 || data[0] != 9 {
		t.Fatal("replacement payload wrong")
	}
	if b.Len() != 1 {
		t.Fatalf("replacement duplicated the entry: len %d", b.Len())
	}

	var nilRing *TraceRing
	nilRing.Put("x", []byte{1})
	if _, ok := nilRing.Get("x"); ok {
		t.Fatal("nil ring returned data")
	}
}

package telemetry

// Structured-logging construction for the daemon: one slog.Logger built
// from the -log-level / -log-format flags. JSON is the default format so a
// gatord request line is one machine-parseable record (request id, trace
// id, route, status, duration), greppable by trace id next to the captured
// solver trace for the same request.

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a logger writing to w. level is one of "debug", "info",
// "warn", "error" (default info); format is "json" or "text" (default
// json).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("telemetry: unknown log level %q (want debug, info, warn, or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	case "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("telemetry: unknown log format %q (want json or text)", format)
	}
}

package telemetry

// TraceRing: the bounded store behind GET /v1/debug/traces/{id}. A request
// whose solver trace was captured (?trace=1 or head-based sampling) leaves
// its rendered Chrome-trace buffer here, keyed by trace id, until newer
// captures push it out. Two bounds apply — entry count and total bytes —
// so a daemon that samples forever holds a fixed amount of debug state, in
// the same spirit as the byte-LRU result cache.

import (
	"container/list"
	"sync"
)

// TraceRing is a bounded FIFO of captured traces. The zero value is not
// usable; construct with NewTraceRing.
type TraceRing struct {
	mu       sync.Mutex
	maxN     int
	maxBytes int64
	bytes    int64
	order    *list.List // front = oldest; value = string (trace id)
	byID     map[string]ringEntry
}

type ringEntry struct {
	data []byte
	el   *list.Element
}

// NewTraceRing creates a ring bounded to maxEntries captures and maxBytes
// total payload (<=0 selects the defaults: 64 entries, 16 MiB).
func NewTraceRing(maxEntries int, maxBytes int64) *TraceRing {
	if maxEntries <= 0 {
		maxEntries = 64
	}
	if maxBytes <= 0 {
		maxBytes = 16 << 20
	}
	return &TraceRing{
		maxN:     maxEntries,
		maxBytes: maxBytes,
		order:    list.New(),
		byID:     map[string]ringEntry{},
	}
}

// Put stores one captured trace, evicting the oldest entries past the
// bounds. A payload larger than the byte bound is dropped whole. Storing
// an id twice replaces the earlier capture (a retried request with the
// same traceparent keeps only its latest trace).
func (r *TraceRing) Put(id string, data []byte) {
	if r == nil || id == "" || int64(len(data)) > r.maxBytes {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byID[id]; ok {
		r.bytes -= int64(len(old.data))
		r.order.Remove(old.el)
		delete(r.byID, id)
	}
	for r.order.Len() >= r.maxN || r.bytes+int64(len(data)) > r.maxBytes {
		oldest := r.order.Front()
		if oldest == nil {
			break
		}
		oldID := oldest.Value.(string)
		r.bytes -= int64(len(r.byID[oldID].data))
		r.order.Remove(oldest)
		delete(r.byID, oldID)
	}
	r.byID[id] = ringEntry{data: data, el: r.order.PushBack(id)}
	r.bytes += int64(len(data))
}

// Get returns the captured trace for id (nil, false once evicted). The
// returned buffer is the stored one; callers treat it as read-only.
func (r *TraceRing) Get(id string) ([]byte, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.byID[id]
	return e.data, ok
}

// Len returns the number of stored traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.order.Len()
}

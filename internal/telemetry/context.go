package telemetry

// context.Context plumbing: the span context rides the request context from
// the HTTP middleware through the admission queue into the job worker, so
// any layer (structured logs, solver trace capture, rejection accounting)
// can stamp its records with the request's trace identity without new
// parameters on every function in between.

import "context"

type ctxKey struct{}

// WithSpan returns ctx carrying sc.
func WithSpan(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFrom extracts the span carried by ctx; ok is false when the request
// has no trace identity (telemetry disabled, or a non-request context).
func SpanFrom(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok
}

// TraceIDFrom is the common query: the hex trace id of ctx's span, or ""
// when none is attached.
func TraceIDFrom(ctx context.Context) string {
	sc, ok := SpanFrom(ctx)
	if !ok {
		return ""
	}
	return sc.TraceIDString()
}

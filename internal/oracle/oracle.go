// Package oracle compares a static analysis solution (package core) against
// the concrete observations of the interpreter (package interp). It
// mechanizes the paper's Section 5 case study: soundness means every
// concretely observed receiver/argument/result at every operation site, and
// every observed structural association, is covered by the static solution;
// precision is the ratio of static solution size to observed size.
package oracle

import (
	"fmt"
	"sort"

	"gator/internal/core"
	"gator/internal/graph"
	"gator/internal/interp"
	"gator/internal/ir"
)

// Violation is one soundness failure: something observed at run time that
// the static solution misses.
type Violation struct {
	// Where describes the operation site or relation.
	Where string
	// What describes the missed value or pair.
	What string
}

func (v Violation) String() string { return v.Where + ": missed " + v.What }

// Report is the outcome of a comparison.
type Report struct {
	// Violations lists soundness failures (empty means sound w.r.t. the
	// observed executions).
	Violations []Violation
	// ObservedSites is the number of operation sites that executed.
	ObservedSites int
	// CheckedValues is the number of (site, value) facts checked.
	CheckedValues int
	// PerfectSites counts executed sites whose static solution matches the
	// observation exactly (receivers, args, and results).
	PerfectSites int
	// StaticFacts and ObservedFacts measure precision at the executed
	// operation sites: the static solution's distinct source-identity
	// values (clones of one site collapse to one — see core.CanonValue)
	// versus the distinct in-scope observed values, summed per site over
	// receivers, arguments, and results. Their ratio is the paper-style
	// precision metric BENCH_7.json records.
	StaticFacts   int
	ObservedFacts int
}

// Ratio is the precision ratio: static solution size over observed size at
// the executed sites (1.0 = perfectly tight; 0 when nothing was observed).
func (r *Report) Ratio() float64 {
	if r.ObservedFacts == 0 {
		return 0
	}
	return float64(r.StaticFacts) / float64(r.ObservedFacts)
}

// Sound reports whether no violations were found.
func (r *Report) Sound() bool { return len(r.Violations) == 0 }

// Compare checks res against obs.
func Compare(res *core.Result, obs *interp.Observations) *Report {
	m := newMapper(res)
	rep := &Report{}

	// Per-site checks.
	type siteEntry struct {
		site *ir.Invoke
		so   *interp.SiteObs
	}
	var sites []siteEntry
	for s, so := range obs.Sites {
		sites = append(sites, siteEntry{s, so})
	}
	sort.Slice(sites, func(i, j int) bool {
		return posLess(sites[i].site.Pos().String(), sites[j].site.Pos().String())
	})
	for _, e := range sites {
		ops := m.opsFor(e.site)
		if len(ops) == 0 {
			rep.Violations = append(rep.Violations, Violation{
				Where: "op@" + e.site.Pos().String(),
				What:  "entire operation (no op node)",
			})
			continue
		}
		rep.ObservedSites++
		// Under context-sensitive cloning one site has several op nodes;
		// the site's static solution is the union over the clones.
		var recvU, argU, resU []graph.Value
		for _, op := range ops {
			recvU = unionVals(recvU, res.OpReceivers(op))
			argU = unionVals(argU, res.OpArg(op, 0))
			resU = unionVals(resU, res.OpResults(op))
		}
		rep.StaticFacts += canonCount(recvU) + canonCount(argU) + canonCount(resU)
		rep.ObservedFacts += m.scopedCount(e.so.Receivers) + m.scopedCount(e.so.Args) + m.scopedCount(e.so.Results)
		where := ops[0].String()
		perfect := true
		perfect = m.checkSet(rep, where+" receivers", e.so.Receivers, recvU) && perfect
		perfect = m.checkSet(rep, where+" args", e.so.Args, argU) && perfect
		perfect = m.checkSet(rep, where+" results", e.so.Results, resU) && perfect
		if perfect &&
			exactMatch(e.so.Receivers, m, recvU) &&
			exactMatch(e.so.Results, m, resU) {
			rep.PerfectSites++
		}
	}

	// Structural relations.
	m.checkPairs(rep, "listener", obs.ListenerPairs, func(v, l graph.Value) bool {
		return containsVal(res.Graph.Listeners(v), l)
	})
	m.checkPairs(rep, "parent-child", obs.ChildPairs, func(p, c graph.Value) bool {
		return containsVal(res.Graph.Children(p), c)
	})
	m.checkPairs(rep, "content-root", obs.RootPairs, func(o, r graph.Value) bool {
		return containsVal(res.Graph.Roots(o), r)
	})

	// Inter-component transitions.
	static := map[[2]*ir.Class]bool{}
	for _, t := range res.Transitions() {
		static[[2]*ir.Class{t.Source, t.Target}] = true
	}
	m.checkPairs(rep, "transition", obs.TransitionPairs, func(a, b graph.Value) bool {
		sa, ok1 := a.(*graph.ActivityNode)
		sb, ok2 := b.(*graph.ActivityNode)
		if !ok1 || !ok2 {
			return false
		}
		return static[[2]*ir.Class{sa.Class, sb.Class}]
	})
	return rep
}

// mapper resolves interpreter tags to graph values. Under context-sensitive
// cloning (core.Options.Context1) one allocation site or operation site may
// have several graph nodes; tags then resolve to candidate sets, and
// coverage means some candidate is in the static solution.
type mapper struct {
	res       *core.Result
	allocs    map[*ir.New][]*graph.AllocNode
	infls     map[inflKey][]*graph.InflNode
	acts      map[*ir.Class]*graph.ActivityNode
	ops       map[*ir.Invoke][]*graph.OpNode
	menus     map[*ir.Class]*graph.MenuNode
	menuItems map[*ir.Invoke][]*graph.MenuItemNode
}

type inflKey struct {
	site   *ir.Invoke
	layout string
	path   int
}

func newMapper(res *core.Result) *mapper {
	m := &mapper{
		res:       res,
		allocs:    map[*ir.New][]*graph.AllocNode{},
		infls:     map[inflKey][]*graph.InflNode{},
		acts:      map[*ir.Class]*graph.ActivityNode{},
		ops:       map[*ir.Invoke][]*graph.OpNode{},
		menus:     map[*ir.Class]*graph.MenuNode{},
		menuItems: map[*ir.Invoke][]*graph.MenuItemNode{},
	}
	for _, a := range res.Graph.Allocs() {
		m.allocs[a.Site] = append(m.allocs[a.Site], a)
	}
	for _, op := range res.Graph.Ops() {
		if op.Site != nil {
			m.ops[op.Site] = append(m.ops[op.Site], op)
		}
	}
	for _, n := range res.Graph.Infls() {
		k := inflKey{n.Op.Site, n.LayoutName, n.Path}
		m.infls[k] = append(m.infls[k], n)
	}
	for _, a := range res.Graph.Activities() {
		m.acts[a.Class] = a
	}
	for _, n := range res.Graph.Menus() {
		m.menus[n.Activity] = n
	}
	for _, n := range res.Graph.Nodes() {
		if mi, ok := n.(*graph.MenuItemNode); ok && mi.Op.Site != nil {
			m.menuItems[mi.Op.Site] = append(m.menuItems[mi.Op.Site], mi)
		}
	}
	return m
}

func (m *mapper) opsFor(s *ir.Invoke) []*graph.OpNode { return m.ops[s] }

// valuesFor maps a tag to its candidate graph values; empty means the
// analysis has no corresponding abstraction (an automatic violation), and
// (nil, true) means the tag is out of scope (opaque platform objects).
func (m *mapper) valuesFor(t interp.Tag) ([]graph.Value, bool) {
	switch t.Kind {
	case interp.TagAlloc:
		if as, ok := m.allocs[t.Alloc]; ok {
			return allocValues(as), false
		}
	case interp.TagInfl:
		if ns, ok := m.infls[inflKey{t.InflSite, t.Layout, t.Path}]; ok {
			return inflValues(ns), false
		}
		// Under shared inflation, nodes are keyed to the first site; fall
		// back to matching by layout and path only.
		var out []graph.Value
		for k, ns := range m.infls {
			if k.layout == t.Layout && k.path == t.Path {
				out = append(out, inflValues(ns)...)
			}
		}
		return out, false
	case interp.TagActivity:
		if a, ok := m.acts[t.Class]; ok {
			return []graph.Value{a}, false
		}
	case interp.TagMenu:
		if n, ok := m.menus[t.Class]; ok {
			return []graph.Value{n}, false
		}
	case interp.TagMenuItem:
		if ns, ok := m.menuItems[t.InflSite]; ok {
			out := make([]graph.Value, len(ns))
			for i, n := range ns {
				out[i] = n
			}
			return out, false
		}
	case interp.TagOpaque:
		return nil, true
	}
	return nil, false
}

func allocValues(as []*graph.AllocNode) []graph.Value {
	out := make([]graph.Value, len(as))
	for i, a := range as {
		out[i] = a
	}
	return out
}

func inflValues(ns []*graph.InflNode) []graph.Value {
	out := make([]graph.Value, len(ns))
	for i, n := range ns {
		out[i] = n
	}
	return out
}

// checkSet verifies every observed tag is covered by the static set (some
// candidate value is a member); returns false when a violation was recorded.
func (m *mapper) checkSet(rep *Report, where string, observed map[interp.Tag]bool, static []graph.Value) bool {
	ok := true
	for _, t := range sortedTags(observed) {
		cands, skip := m.valuesFor(t)
		if skip {
			continue
		}
		rep.CheckedValues++
		covered := false
		for _, v := range cands {
			if containsVal(static, v) {
				covered = true
				break
			}
		}
		if !covered {
			rep.Violations = append(rep.Violations, Violation{Where: where, What: t.String()})
			ok = false
		}
	}
	return ok
}

// canonCount counts the distinct source identities in a static value set:
// context clones of one allocation/inflation site count once.
func canonCount(vals []graph.Value) int {
	seen := map[string]bool{}
	for _, v := range vals {
		seen[core.CanonValue(v)] = true
	}
	return len(seen)
}

// scopedCount counts the in-scope observed tags (opaque platform objects
// are outside the analysis's domain and are skipped by checkSet too).
func (m *mapper) scopedCount(observed map[interp.Tag]bool) int {
	n := 0
	for t := range observed {
		if _, skip := m.valuesFor(t); !skip {
			n++
		}
	}
	return n
}

// unionVals merges value slices without duplicates.
func unionVals(a, b []graph.Value) []graph.Value {
	for _, v := range b {
		if !containsVal(a, v) {
			a = append(a, v)
		}
	}
	return a
}

func (m *mapper) checkPairs(rep *Report, what string, pairs map[[2]interp.Tag]bool, has func(a, b graph.Value) bool) {
	var keys [][2]interp.Tag
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		return keys[i][0].String()+keys[i][1].String() < keys[j][0].String()+keys[j][1].String()
	})
	for _, k := range keys {
		as, skipA := m.valuesFor(k[0])
		bs, skipB := m.valuesFor(k[1])
		if skipA || skipB {
			continue
		}
		rep.CheckedValues++
		covered := false
		for _, a := range as {
			for _, b := range bs {
				if has(a, b) {
					covered = true
				}
			}
		}
		if !covered {
			rep.Violations = append(rep.Violations, Violation{
				Where: what,
				What:  fmt.Sprintf("(%s, %s)", k[0], k[1]),
			})
		}
	}
}

// exactMatch reports whether every static value is explained by some
// observed tag (i.e. the static solution adds nothing beyond what ran).
func exactMatch(observed map[interp.Tag]bool, m *mapper, static []graph.Value) bool {
	want := map[int]bool{}
	for t := range observed {
		cands, skip := m.valuesFor(t)
		if skip {
			continue
		}
		for _, v := range cands {
			want[v.ID()] = true
		}
	}
	for _, v := range static {
		if !want[v.ID()] {
			return false
		}
	}
	return true
}

func containsVal(vals []graph.Value, v graph.Value) bool {
	for _, x := range vals {
		if x == v {
			return true
		}
	}
	return false
}

func sortedTags(set map[interp.Tag]bool) []interp.Tag {
	out := make([]interp.Tag, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

func posLess(a, b string) bool { return a < b }

package oracle

import (
	"testing"
	"testing/quick"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/interp"
	"gator/internal/ir"
	"gator/internal/layout"
)

// buildRandom resolves a RandomApp; generation is designed to always yield
// well-typed programs, so a build failure is itself a property violation.
func buildRandom(t *testing.T, seed int64) *ir.Program {
	t.Helper()
	sources, layoutXML := corpus.RandomApp(seed)
	var files []*alite.File
	for name, src := range sources {
		f, err := alite.Parse(name, src)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, src)
		}
		files = append(files, f)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layoutXML {
		l, err := layout.Parse(name, xml)
		if err != nil {
			t.Fatalf("seed %d: generated layout does not parse: %v", seed, err)
		}
		ls[name] = l
	}
	p, err := ir.Build(files, ls)
	if err != nil {
		t.Fatalf("seed %d: generated program does not resolve: %v\n%s", seed, err, sources["random.alite"])
	}
	return p
}

// TestPropertySoundness is the central property of the paper's analysis:
// for random programs and random executions, every concretely observed
// receiver/argument/result at every operation site — and every structural
// association — is covered by the static solution.
func TestPropertySoundness(t *testing.T) {
	prop := func(seed int64) bool {
		p := buildRandom(t, seed)
		res := core.Analyze(p, core.Options{})
		for _, runSeed := range []int64{1, 2} {
			obs := interp.New(p, interp.Config{Seed: runSeed, MaxSteps: 50000}).Run()
			rep := Compare(res, obs)
			if !rep.Sound() {
				sources, _ := corpus.RandomApp(seed)
				t.Logf("seed %d runSeed %d: %d violations; first: %s\nprogram:\n%s",
					seed, runSeed, len(rep.Violations), rep.Violations[0], sources["random.alite"])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 10
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySoundnessWithRefinements re-checks soundness under every
// sound analysis variant, including the alternate solver engines — the
// reference schedule, the no-delta ablation, and the sharded parallel
// fixpoint — whose solutions must all cover every concrete execution.
func TestPropertySoundnessWithRefinements(t *testing.T) {
	variants := []core.Options{
		{FilterCasts: true},
		{SharedInflation: true},
		{NoFindView3Refinement: true},
		{Context1: true},
		{FilterCasts: true, SharedInflation: true},
		{Context1: true, FilterCasts: true},
		{ReferenceSolver: true},
		{NoDelta: true},
		{SolverShards: 2},
		{SolverShards: 8},
		{SolverShards: 8, FilterCasts: true},
	}
	prop := func(seed int64) bool {
		p := buildRandom(t, seed)
		obs := interp.New(p, interp.Config{Seed: 1, MaxSteps: 50000}).Run()
		for _, opts := range variants {
			res := core.Analyze(p, opts)
			if rep := Compare(res, obs); !rep.Sound() {
				t.Logf("seed %d opts %+v: %s", seed, opts, rep.Violations[0])
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 15}
	if testing.Short() {
		cfg.MaxCount = 5
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism: analyzing twice yields identical solutions at
// every operation node, in identical order.
func TestPropertyDeterminism(t *testing.T) {
	prop := func(seed int64) bool {
		p := buildRandom(t, seed)
		a := core.Analyze(p, core.Options{})
		b := core.Analyze(p, core.Options{})
		opsA, opsB := a.Graph.Ops(), b.Graph.Ops()
		if len(opsA) != len(opsB) {
			return false
		}
		for i := range opsA {
			va, vb := a.OpResults(opsA[i]), b.OpResults(opsB[i])
			if len(va) != len(vb) {
				return false
			}
			for j := range va {
				if va[j].String() != vb[j].String() {
					return false
				}
			}
		}
		return a.Iterations == b.Iterations
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyMonotoneRefinement: cast filtering only ever shrinks
// solutions (it is a refinement, never an addition).
func TestPropertyMonotoneRefinement(t *testing.T) {
	prop := func(seed int64) bool {
		p := buildRandom(t, seed)
		base := core.Analyze(p, core.Options{})
		filt := core.Analyze(p, core.Options{FilterCasts: true})
		opsB, opsF := base.Graph.Ops(), filt.Graph.Ops()
		if len(opsB) != len(opsF) {
			return false
		}
		for i := range opsB {
			if len(filt.OpResults(opsF[i])) > len(base.OpResults(opsB[i])) {
				return false
			}
			if len(filt.OpReceivers(opsF[i])) > len(base.OpReceivers(opsB[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

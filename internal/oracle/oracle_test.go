package oracle

import (
	"testing"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/interp"
	"gator/internal/ir"
	"gator/internal/layout"
)

func buildProg(t *testing.T, src string, layouts map[string]string) *ir.Program {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkSound runs the analysis and the interpreter over several seeds and
// requires zero violations.
func checkSound(t *testing.T, p *ir.Program, opts core.Options) {
	t.Helper()
	res := core.Analyze(p, opts)
	for seed := int64(1); seed <= 5; seed++ {
		obs := interp.New(p, interp.Config{Seed: seed}).Run()
		rep := Compare(res, obs)
		if !rep.Sound() {
			for _, v := range rep.Violations {
				t.Errorf("seed %d: %s", seed, v)
			}
			t.Fatalf("seed %d: %d violations", seed, len(rep.Violations))
		}
	}
}

func TestFigure1ClosedSoundness(t *testing.T) {
	p, err := ir.Build(corpus.Figure1ClosedFiles(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	checkSound(t, p, core.Options{})
	// The refinements stay sound too.
	checkSound(t, p, core.Options{FilterCasts: true})
	checkSound(t, p, core.Options{SharedInflation: true})
	checkSound(t, p, core.Options{NoFindView3Refinement: true})
}

func TestSmallProgramsSoundness(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		layouts map[string]string
	}{
		{
			name: "declarative onclick",
			src: `
class A extends Activity {
	void onCreate() { this.setContentView(R.layout.main); }
	void go(View v) { v.setId(R.id.mark); }
}`,
			layouts: map[string]string{"main": `<LinearLayout><Button android:onClick="go"/></LinearLayout>`},
		},
		{
			name: "listener chain",
			src: `
class H implements OnClickListener {
	void onClick(View v) {
		View w = v.findViewById(R.id.inner);
		if (w != null) { w.setId(R.id.mark); }
	}
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View box = this.findViewById(R.id.box);
		H h = new H();
		box.setOnClickListener(h);
	}
}`,
			layouts: map[string]string{"main": `<LinearLayout android:id="@+id/box"><TextView android:id="@+id/inner"/></LinearLayout>`},
		},
		{
			name: "programmatic tree",
			src: `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button b = new Button();
		b.setId(R.id.go);
		root.addView(b);
		this.setContentView(root);
		View f = this.findViewById(R.id.go);
		ViewGroup g = (ViewGroup) root.getChildAt(0);
	}
}`,
		},
		{
			name: "dialog",
			src: `
class D extends Dialog {
	void onCreate() { this.setContentView(R.layout.d); }
}
class A extends Activity {
	void onCreate() {
		D d = new D();
		View v = d.findViewById(R.id.x);
		if (v != null) { v.setId(R.id.mark); }
	}
}`,
			layouts: map[string]string{"d": `<FrameLayout><TextView android:id="@+id/x"/></FrameLayout>`},
		},
		{
			name: "include and merge",
			src: `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.title);
		if (v != null) { v.setId(R.id.mark); }
	}
}`,
			layouts: map[string]string{
				"main":   `<LinearLayout><include layout="@layout/header"/></LinearLayout>`,
				"header": `<merge><TextView android:id="@+id/title"/></merge>`,
			},
		},
		{
			name: "loops and branches",
			src: `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		this.setContentView(root);
		while (*) {
			Button b = new Button();
			if (*) { b.setId(R.id.even); } else { b.setId(R.id.odd); }
			root.addView(b);
		}
		View e = this.findViewById(R.id.even);
		View o = this.findViewById(R.id.odd);
	}
}`,
		},
		{
			name: "inflate attach",
			src: `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		LinearLayout box = (LinearLayout) this.findViewById(R.id.box);
		LayoutInflater i = this.getLayoutInflater();
		while (*) {
			i.inflate(R.layout.row, box);
		}
		View cell = this.findViewById(R.id.cell);
	}
}`,
			layouts: map[string]string{
				"main": `<ScrollView android:id="@+id/top"><LinearLayout android:id="@+id/box"/></ScrollView>`,
				"row":  `<TextView android:id="@+id/cell"/>`,
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			checkSound(t, buildProg(t, c.src, c.layouts), core.Options{})
		})
	}
}

// TestOracleDetectsUnsoundness makes sure the oracle is not vacuous: the
// DeclaredDispatchOnly ablation misses interface-dispatched handlers, and
// the oracle must notice when their effects show up concretely.
func TestOracleDetectsUnsoundness(t *testing.T) {
	src := `
interface Cmd extends OnClickListener { }
class H implements Cmd {
	void onClick(View v) {
		Button b = new Button();
		v.findViewById(R.id.x);
	}
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View w = this.findViewById(R.id.x);
		Cmd h = new H();
		w.setOnClickListener(h);
	}
}`
	p := buildProg(t, src, map[string]string{"main": `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`})

	// Full analysis: sound.
	checkSound(t, p, core.Options{})

	// Crippled analysis: the handler's FindView1 receiver set misses the
	// concrete view because no callback edge delivered it.
	res := core.Analyze(p, core.Options{DeclaredDispatchOnly: true})
	obs := interp.New(p, interp.Config{Seed: 1}).Run()
	rep := Compare(res, obs)
	if rep.Sound() {
		t.Error("oracle failed to flag the crippled analysis")
	}
}

func TestReportCounters(t *testing.T) {
	p, err := ir.Build(corpus.Figure1ClosedFiles(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	res := core.Analyze(p, core.Options{})
	obs := interp.New(p, interp.Config{Seed: 2, EventRounds: 8}).Run()
	rep := Compare(res, obs)
	if !rep.Sound() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.ObservedSites == 0 || rep.CheckedValues == 0 {
		t.Errorf("counters: sites=%d values=%d", rep.ObservedSites, rep.CheckedValues)
	}
	if rep.PerfectSites > rep.ObservedSites {
		t.Errorf("perfect=%d > observed=%d", rep.PerfectSites, rep.ObservedSites)
	}
}

package oracle

import (
	"testing"

	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/interp"
	"gator/internal/ir"
)

// TestCorpusSoundnessAndPrecision runs the full Section 5 case study as a
// regression test: zero violations everywhere, perfect precision on every
// app except the XBMC outlier (whose imperfection is the paper's finding).
func TestCorpusSoundnessAndPrecision(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus study skipped in -short mode")
	}
	for _, app := range corpus.GenerateAll() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			prog, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
			if err != nil {
				t.Fatal(err)
			}
			res := core.Analyze(prog, core.Options{})
			obs := interp.New(prog, interp.Config{Seed: 1}).Run()
			rep := Compare(res, obs)
			if !rep.Sound() {
				t.Fatalf("%d violations; first: %s", len(rep.Violations), rep.Violations[0])
			}
			if app.Name == "XBMC" {
				if rep.PerfectSites == rep.ObservedSites {
					t.Error("XBMC should show the context-insensitivity imprecision")
				}
				return
			}
			if rep.PerfectSites != rep.ObservedSites {
				t.Errorf("perfect %d/%d sites", rep.PerfectSites, rep.ObservedSites)
			}
		})
	}
}

// TestCorpusSoundnessContext1 repeats the study under the context-sensitive
// refinement; it must stay sound.
func TestCorpusSoundnessContext1(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus study skipped in -short mode")
	}
	for _, name := range []string{"Astrid", "XBMC", "SuperGenPass"} {
		spec, _ := corpus.SpecByName(name)
		app := corpus.Generate(spec)
		prog, err := ir.Build(app.FreshFiles(), app.FreshLayouts())
		if err != nil {
			t.Fatal(err)
		}
		res := core.Analyze(prog, core.Options{Context1: true})
		obs := interp.New(prog, interp.Config{Seed: 2}).Run()
		if rep := Compare(res, obs); !rep.Sound() {
			t.Errorf("%s: %d violations; first: %s", name, len(rep.Violations), rep.Violations[0])
		}
	}
}

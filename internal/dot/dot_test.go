package dot

import (
	"strings"
	"testing"

	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/ir"
)

func figure1Result(t *testing.T) *core.Result {
	t.Helper()
	p, err := ir.Build(corpus.Figure1Files(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(p, core.Options{})
}

func TestExportStructure(t *testing.T) {
	res := figure1Result(t)
	out := Export(res, Options{Flow: true, Relations: true, PointsTo: true})
	if !strings.HasPrefix(out, "digraph gator {") || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%.80s...", out)
	}
	for _, want := range []string{
		"shape=box",        // op/alloc nodes
		"shape=hexagon",    // activity node
		"shape=diamond",    // id nodes
		`label="child"`,    // parent-child relation
		`label="listener"`, // listener relation
		`label="root"`,     // activity root
		`label="id"`,       // view id association
		"Activity[ConsoleActivity]",
		"SetListener",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	// Every edge references declared nodes.
	declared := map[string]bool{}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "n") && strings.Contains(line, "[label=") && !strings.Contains(line, "->") {
			declared[line[:strings.Index(line, " ")]] = true
		}
	}
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if i := strings.Index(line, " -> "); i > 0 {
			src := line[:i]
			dst := line[i+4:]
			if j := strings.IndexAny(dst, " ;["); j > 0 {
				dst = dst[:j]
			}
			if !declared[src] || !declared[dst] {
				t.Errorf("edge references undeclared node: %s", line)
			}
		}
	}
}

func TestExportSelectivity(t *testing.T) {
	res := figure1Result(t)
	flowOnly := Export(res, Options{Flow: true})
	if strings.Contains(flowOnly, `label="child"`) {
		t.Error("flow-only export contains relation edges")
	}
	relOnly := Export(res, Options{Relations: true})
	if strings.Contains(relOnly, `label="recv"`) {
		t.Error("relations-only export contains op connections")
	}
	if !strings.Contains(relOnly, `label="child"`) {
		t.Error("relations-only export missing child edges")
	}
}

// Package dot renders a solved constraint graph in Graphviz format,
// reproducing the visual structure of Figures 3 and 4 of the paper:
// variable/field/id/op nodes connected by value-flow edges, and view nodes
// connected by the relationship edges the solver inferred (parent-child,
// view ids, listeners, activity roots, layout provenance).
package dot

import (
	"fmt"
	"strings"

	"gator/internal/core"
	"gator/internal/graph"
)

// Options select which parts of the graph to render.
type Options struct {
	// Flow includes value-flow edges (Figure 3).
	Flow bool
	// Relations includes inferred relationship edges (Figure 4).
	Relations bool
	// PointsTo annotates variable nodes with their solutions.
	PointsTo bool
}

// Export renders the result's constraint graph.
func Export(res *core.Result, opts Options) string {
	var b strings.Builder
	b.WriteString("digraph gator {\n")
	b.WriteString("\trankdir=LR;\n\tnode [fontsize=10];\n")

	used := map[int]bool{}
	nodeID := func(n graph.Node) string { return fmt.Sprintf("n%d", n.ID()) }
	declare := func(n graph.Node) string {
		id := nodeID(n)
		if used[n.ID()] {
			return id
		}
		used[n.ID()] = true
		label := escape(n.String())
		shape, style := "ellipse", ""
		switch n.(type) {
		case *graph.OpNode:
			shape = "box"
			style = ` style=rounded`
		case *graph.InflNode, *graph.AllocNode:
			shape = "box"
			style = ` style=filled fillcolor=lightgray`
		case *graph.ActivityNode:
			shape = "hexagon"
		case *graph.LayoutIDNode, *graph.ViewIDNode, *graph.StringIDNode:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "\t%s [label=%q shape=%s%s];\n", id, label, shape, style)
		return id
	}

	if opts.Flow {
		for _, n := range res.Graph.Nodes() {
			for _, succ := range res.Graph.FlowSucc(n) {
				fmt.Fprintf(&b, "\t%s -> %s;\n", declare(n), declare(succ))
			}
		}
		// Operation connections: inputs and outputs.
		for _, op := range res.Graph.Ops() {
			opID := declare(op)
			if op.Recv != nil {
				fmt.Fprintf(&b, "\t%s -> %s [label=\"recv\" style=dashed];\n", declare(op.Recv), opID)
			}
			for i, a := range op.Args {
				if a != nil {
					fmt.Fprintf(&b, "\t%s -> %s [label=\"arg%d\" style=dashed];\n", declare(a), opID, i)
				}
			}
			if op.Out != nil {
				fmt.Fprintf(&b, "\t%s -> %s [style=dashed];\n", opID, declare(op.Out))
			}
		}
	}

	if opts.Relations {
		res.Graph.ChildPairs(func(p, c graph.Value) {
			fmt.Fprintf(&b, "\t%s -> %s [label=\"child\" color=blue];\n", declare(p), declare(c))
		})
		for _, n := range res.Graph.Nodes() {
			v, ok := n.(graph.Value)
			if !ok {
				continue
			}
			for _, id := range res.Graph.ViewIDsOf(v) {
				fmt.Fprintf(&b, "\t%s -> %s [label=\"id\" color=darkgreen];\n", declare(v), declare(id))
			}
			for _, lid := range res.Graph.LayoutOf(v) {
				fmt.Fprintf(&b, "\t%s -> %s [label=\"layout\" color=darkgreen];\n", declare(v), declare(lid))
			}
		}
		res.Graph.ListenerPairs(func(view, lst graph.Value) {
			fmt.Fprintf(&b, "\t%s -> %s [label=\"listener\" color=red];\n", declare(view), declare(lst))
		})
		res.Graph.RootPairs(func(owner, root graph.Value) {
			fmt.Fprintf(&b, "\t%s -> %s [label=\"root\" color=purple];\n", declare(owner), declare(root))
		})
	}

	if opts.PointsTo {
		for _, n := range res.Graph.Nodes() {
			vn, ok := n.(*graph.VarNode)
			if !ok {
				continue
			}
			for _, v := range res.PointsTo(vn) {
				fmt.Fprintf(&b, "\t%s -> %s [label=\"pts\" color=gray style=dotted];\n", declare(v), declare(vn))
			}
		}
	}

	b.WriteString("}\n")
	return b.String()
}

func escape(s string) string {
	return strings.ReplaceAll(s, `"`, `\"`)
}

// Package layout parses Android layout XML definitions and assigns resource
// ids, reproducing the declarative-GUI substrate of the paper: a layout
// definition is a rooted tree of (view class, optional view id) nodes, each
// layout file has a generated R.layout constant, and each view id name has a
// generated R.id constant.
//
// Supported Android layout features: nested view elements, android:id
// ("@+id/name" and "@id/name"), <include layout="@layout/name"/> splicing,
// <merge> roots (transparent containers), and the android:onClick attribute
// (declarative click handlers).
package layout

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// Node is one view element in a layout definition.
type Node struct {
	// Class is the view class name (e.g. "RelativeLayout", "ImageView").
	Class string
	// ID is the view id name from android:id, or "" when absent.
	ID string
	// OnClick is the handler method name from android:onClick, or "".
	OnClick string
	// Include names a layout to splice in place of this node (from
	// <include layout="@layout/name"/>); resolved by Link.
	Include string
	// Merge marks a <merge> root, whose children attach directly to the
	// inflation parent.
	Merge bool
	// Children are the nested view elements.
	Children []*Node
}

// Count returns the number of view nodes in the subtree, excluding
// merge/include pseudo-nodes.
func (n *Node) Count() int {
	c := 0
	if !n.Merge && n.Include == "" {
		c = 1
	}
	for _, ch := range n.Children {
		c += ch.Count()
	}
	return c
}

// Walk visits every non-pseudo node in the subtree in preorder.
func (n *Node) Walk(visit func(*Node)) {
	if !n.Merge && n.Include == "" {
		visit(n)
	}
	for _, ch := range n.Children {
		ch.Walk(visit)
	}
}

// Layout is one parsed layout definition.
type Layout struct {
	// Name is the layout name (the file base name without extension).
	Name string
	// Root is the root view element.
	Root *Node
}

// IDNames returns the sorted set of view id names used in the layout.
func (l *Layout) IDNames() []string {
	seen := map[string]bool{}
	l.Root.Walk(func(n *Node) {
		if n.ID != "" {
			seen[n.ID] = true
		}
	})
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Parse reads one layout XML document. name is the layout name.
func Parse(name, src string) (*Layout, error) {
	dec := xml.NewDecoder(strings.NewReader(src))
	var root *Node
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			return nil, fmt.Errorf("layout %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n, err := elementNode(name, t)
			if err != nil {
				return nil, err
			}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("layout %s: multiple root elements", name)
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("layout %s: unbalanced end element", name)
			}
			stack = stack[:len(stack)-1]
		}
	}
	if root == nil {
		return nil, fmt.Errorf("layout %s: no root element", name)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("layout %s: unclosed elements", name)
	}
	if err := validate(name, root, true); err != nil {
		return nil, err
	}
	return &Layout{Name: name, Root: root}, nil
}

// MustParse is Parse that panics on error; for embedded corpora and tests.
func MustParse(name, src string) *Layout {
	l, err := Parse(name, src)
	if err != nil {
		panic(err)
	}
	return l
}

func elementNode(layout string, t xml.StartElement) (*Node, error) {
	n := &Node{Class: localName(t.Name)}
	switch n.Class {
	case "merge":
		n.Merge = true
	case "include":
		n.Include = "?" // filled from the layout attribute below
	default:
		if !validClassName(n.Class) {
			return nil, fmt.Errorf("layout %s: bad view class name %q", layout, n.Class)
		}
	}
	for _, a := range t.Attr {
		switch localName(a.Name) {
		case "id":
			id, err := parseIDRef(a.Value)
			if err != nil {
				return nil, fmt.Errorf("layout %s: %w", layout, err)
			}
			n.ID = id
		case "onClick":
			if !validIdent(a.Value) {
				return nil, fmt.Errorf("layout %s: bad onClick handler name %q", layout, a.Value)
			}
			n.OnClick = a.Value
		case "layout":
			if n.Include != "" {
				ref, ok := strings.CutPrefix(a.Value, "@layout/")
				if !ok {
					return nil, fmt.Errorf("layout %s: bad include reference %q", layout, a.Value)
				}
				n.Include = ref
			}
		}
	}
	if n.Include == "?" {
		return nil, fmt.Errorf("layout %s: <include> without layout attribute", layout)
	}
	return n, nil
}

func validate(layout string, n *Node, isRoot bool) error {
	if n.Merge && !isRoot {
		return fmt.Errorf("layout %s: <merge> must be the root element", layout)
	}
	if n.Include != "" && len(n.Children) > 0 {
		return fmt.Errorf("layout %s: <include> cannot have children", layout)
	}
	if n.Include != "" && isRoot {
		return fmt.Errorf("layout %s: <include> cannot be the root element", layout)
	}
	for _, ch := range n.Children {
		if err := validate(layout, ch, false); err != nil {
			return err
		}
	}
	return nil
}

func localName(n xml.Name) string {
	if i := strings.LastIndex(n.Local, ":"); i >= 0 {
		return n.Local[i+1:]
	}
	return n.Local
}

// parseIDRef parses "@+id/name" or "@id/name".
func parseIDRef(v string) (string, error) {
	for _, prefix := range []string{"@+id/", "@id/"} {
		if name, ok := strings.CutPrefix(v, prefix); ok {
			if !validIdent(name) {
				return "", fmt.Errorf("bad view id name in %q", v)
			}
			return name, nil
		}
	}
	return "", fmt.Errorf("bad view id reference %q (want @+id/name)", v)
}

// validIdent reports whether s is a Java-style identifier — the form view
// id names and onClick handler names take. Constraining names here keeps
// every accepted layout renderable (Render ∘ Parse round-trips) and every
// name usable as an R constant.
func validIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validClassName is validIdent extended with interior dots, for qualified
// view classes such as android.widget.Button.
func validClassName(s string) bool {
	for _, part := range strings.Split(s, ".") {
		if !validIdent(part) {
			return false
		}
	}
	return true
}

// Link resolves <include> references across a set of layouts, splicing the
// included layout's tree (or a merge root's children) in place of the
// include node. Cyclic includes are an error.
func Link(layouts map[string]*Layout) error {
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var expand func(name string) error
	expand = func(name string) error {
		switch state[name] {
		case 1:
			return fmt.Errorf("layout %s: cyclic <include>", name)
		case 2:
			return nil
		}
		state[name] = 1
		l := layouts[name]
		var fix func(n *Node) error
		fix = func(n *Node) error {
			for i := 0; i < len(n.Children); i++ {
				ch := n.Children[i]
				if ch.Include == "" {
					if err := fix(ch); err != nil {
						return err
					}
					continue
				}
				inc, ok := layouts[ch.Include]
				if !ok {
					return fmt.Errorf("layout %s: include of unknown layout %q", name, ch.Include)
				}
				if err := expand(ch.Include); err != nil {
					return err
				}
				repl := cloneNode(inc.Root)
				if repl.Merge {
					// Splice the merge children directly.
					kids := repl.Children
					n.Children = append(n.Children[:i], append(kids, n.Children[i+1:]...)...)
					i += len(kids) - 1
				} else {
					if ch.ID != "" {
						// <include android:id=...> overrides the root id.
						repl.ID = ch.ID
					}
					n.Children[i] = repl
				}
			}
			return nil
		}
		if err := fix(l.Root); err != nil {
			return err
		}
		state[name] = 2
		return nil
	}
	names := make([]string, 0, len(layouts))
	for name := range layouts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if err := expand(name); err != nil {
			return err
		}
	}
	return nil
}

// Render serializes a layout back to XML. Parse(Render(l)) yields an
// equivalent layout; useful for generated corpora and for re-linking a
// layout that was already spliced.
func Render(l *Layout) string {
	var b strings.Builder
	var render func(n *Node)
	render = func(n *Node) {
		cls := n.Class
		if n.Include != "" {
			b.WriteString(`<include layout="@layout/` + n.Include + `"`)
			if n.ID != "" {
				b.WriteString(` android:id="@+id/` + n.ID + `"`)
			}
			b.WriteString("/>")
			return
		}
		fmt.Fprintf(&b, "<%s", cls)
		if n.ID != "" {
			fmt.Fprintf(&b, " android:id=%q", "@+id/"+n.ID)
		}
		if n.OnClick != "" {
			fmt.Fprintf(&b, " android:onClick=%q", n.OnClick)
		}
		if len(n.Children) == 0 {
			b.WriteString("/>")
			return
		}
		b.WriteString(">")
		for _, c := range n.Children {
			render(c)
		}
		fmt.Fprintf(&b, "</%s>", cls)
	}
	render(l.Root)
	return b.String()
}

// Clone returns a deep copy of a layout, so one parse can be linked several
// times.
func Clone(l *Layout) *Layout {
	return &Layout{Name: l.Name, Root: cloneNode(l.Root)}
}

func cloneNode(n *Node) *Node {
	c := *n
	if n.Children == nil {
		return &c
	}
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = cloneNode(ch)
	}
	return &c
}

package layout

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomTree builds a random layout tree (no include/merge pseudo-nodes,
// which Render emits but Link removes).
func randomTree(r *rand.Rand, depth int) *Node {
	classes := []string{"LinearLayout", "RelativeLayout", "TextView", "Button", "ImageView"}
	n := &Node{Class: classes[r.Intn(len(classes))]}
	if r.Intn(2) == 0 {
		n.ID = fmt.Sprintf("id%d", r.Intn(8))
	}
	if r.Intn(3) == 0 {
		n.OnClick = fmt.Sprintf("handler%d", r.Intn(4))
	}
	if depth > 0 {
		for i, k := 0, r.Intn(4); i < k; i++ {
			n.Children = append(n.Children, randomTree(r, depth-1))
		}
	}
	return n
}

// TestPropertyRenderParseRoundTrip: Parse(Render(l)) reproduces the tree.
func TestPropertyRenderParseRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := &Layout{Name: "t", Root: randomTree(r, 3)}
		parsed, err := Parse("t", Render(l))
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, Render(l))
			return false
		}
		return reflect.DeepEqual(l.Root, parsed.Root)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCloneIndependence: mutating a clone leaves the original
// untouched, and the clone is structurally equal before mutation.
func TestPropertyCloneIndependence(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		l := &Layout{Name: "t", Root: randomTree(r, 3)}
		c := Clone(l)
		if !reflect.DeepEqual(l.Root, c.Root) {
			return false
		}
		c.Root.Class = "Mutated"
		c.Root.Children = append(c.Root.Children, &Node{Class: "Extra"})
		return l.Root.Class != "Mutated" && l.Root.Count() == Clone(l).Root.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRTable: for any set of layouts, ids are dense, deterministic,
// and name↔id round-trips hold.
func TestPropertyRTable(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		layouts := map[string]*Layout{}
		for i, n := 0, 1+r.Intn(5); i < n; i++ {
			name := fmt.Sprintf("lay%d", i)
			layouts[name] = &Layout{Name: name, Root: randomTree(r, 2)}
		}
		a := NewRTable(layouts)
		b := NewRTable(layouts)
		for _, name := range a.LayoutNames() {
			ida, _ := a.LayoutID(name)
			idb, _ := b.LayoutID(name)
			if ida != idb {
				return false // nondeterministic
			}
			back, ok := a.LayoutName(ida)
			if !ok || back != name {
				return false
			}
		}
		for _, name := range a.ViewIDNames() {
			ida, _ := a.ViewID(name)
			idb, _ := b.ViewID(name)
			if ida != idb {
				return false
			}
			back, ok := a.ViewIDName(ida)
			if !ok || back != name {
				return false
			}
		}
		// Ranges don't collide.
		if a.NumLayouts() > 0 && a.NumViewIDs() > 0 {
			lid, _ := a.LayoutID(a.LayoutNames()[0])
			vid, _ := a.ViewID(a.ViewIDNames()[0])
			if lid >= ViewIDBase || vid < ViewIDBase {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCountWalkAgree: Count equals the number of Walk visits.
func TestPropertyCountWalkAgree(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		root := randomTree(r, 4)
		visits := 0
		root.Walk(func(*Node) { visits++ })
		return visits == root.Count()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

package layout_test

// FuzzLayout: the layout XML parser must never panic — malformed documents
// yield errors. Seeded with the on-disk demo layouts, corpus-generated
// layouts (via Render), and XML corner cases.

import (
	"os"
	"path/filepath"
	"testing"

	"gator/internal/corpus"
	"gator/internal/layout"
)

func FuzzLayout(f *testing.F) {
	if paths, err := filepath.Glob("../../testdata/notepad/layout/*.xml"); err == nil {
		for _, p := range paths {
			if data, err := os.ReadFile(p); err == nil {
				f.Add(string(data))
			}
		}
	}
	if spec, ok := corpus.SpecByName("NotePad"); ok {
		for _, xml := range corpus.Generate(spec).LayoutXML() {
			f.Add(xml)
		}
	}
	for _, seed := range []string{
		"",
		"<LinearLayout/>",
		`<LinearLayout android:id="@+id/root"><Button android:id="@id/b" android:onClick="go"/></LinearLayout>`,
		`<merge><TextView/></merge>`,
		`<LinearLayout><include layout="@layout/other"/></LinearLayout>`,
		`<include layout="@layout/other"/>`,
		`<LinearLayout><include/></LinearLayout>`,
		`<LinearLayout android:id="bogus"/>`,
		`<LinearLayout android:id="@+id/"/>`,
		"<a><b></a></b>",
		"<a>",
		"</a>",
		"<a/><b/>",
		"<?xml version=\"1.0\"?><LinearLayout/>",
		"<!-- comment --><LinearLayout/>",
		"<a:b:c/>",
		"\x00<a/>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		l, err := layout.Parse("fuzz", src)
		if err != nil {
			return
		}
		if l == nil || l.Root == nil {
			t.Fatalf("Parse returned neither layout nor error")
		}
		// A successfully parsed layout must survive its own round trip:
		// Render output re-parses to a tree with the same node count.
		l2, err := layout.Parse("roundtrip", layout.Render(l))
		if err != nil {
			t.Fatalf("Render output does not re-parse: %v", err)
		}
		if l.Root.Count() != l2.Root.Count() {
			t.Fatalf("round trip changed node count: %d -> %d", l.Root.Count(), l2.Root.Count())
		}
	})
}

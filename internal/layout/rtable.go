package layout

import (
	"fmt"
	"sort"
)

// Resource id spaces, mirroring the aapt-generated constants the paper shows
// (e.g. R.layout.act_console = 0x7f030000).
const (
	LayoutIDBase = 0x7f030000
	ViewIDBase   = 0x7f080000
	StringIDBase = 0x7f0a0000
)

// RTable maps layout and view id names to generated integer constants, the
// moral equivalent of the generated R class.
type RTable struct {
	layoutByName map[string]int
	layoutByID   map[int]string
	viewByName   map[string]int
	viewByID     map[int]string
	stringByName map[string]int
	stringByID   map[int]string
}

// NewRTable builds the R table for a set of linked layouts: one R.layout
// constant per layout, one R.id constant per distinct view id name.
// Additional view id names (used only programmatically via setId) can be
// registered with AddViewID.
func NewRTable(layouts map[string]*Layout) *RTable {
	t := &RTable{
		layoutByName: map[string]int{},
		layoutByID:   map[int]string{},
		viewByName:   map[string]int{},
		viewByID:     map[int]string{},
		stringByName: map[string]int{},
		stringByID:   map[int]string{},
	}
	names := make([]string, 0, len(layouts))
	for name := range layouts {
		names = append(names, name)
	}
	sort.Strings(names)
	for i, name := range names {
		id := LayoutIDBase + i
		t.layoutByName[name] = id
		t.layoutByID[id] = name
	}
	for _, name := range names {
		for _, vid := range layouts[name].IDNames() {
			t.AddViewID(vid)
		}
	}
	return t
}

// AddViewID registers a view id name, returning its constant. Idempotent.
func (t *RTable) AddViewID(name string) int {
	if id, ok := t.viewByName[name]; ok {
		return id
	}
	id := ViewIDBase + len(t.viewByName)
	t.viewByName[name] = id
	t.viewByID[id] = name
	return id
}

// AddStringID registers a string resource name, returning its constant.
// Idempotent. String resources have no XML source in the ALite abstraction,
// so like programmatic view ids they are registered on first use.
func (t *RTable) AddStringID(name string) int {
	if id, ok := t.stringByName[name]; ok {
		return id
	}
	id := StringIDBase + len(t.stringByName)
	t.stringByName[name] = id
	t.stringByID[id] = name
	return id
}

// StringID returns the R.string constant for a string resource name.
func (t *RTable) StringID(name string) (int, bool) {
	id, ok := t.stringByName[name]
	return id, ok
}

// StringIDName returns the string resource name for an R.string constant.
func (t *RTable) StringIDName(id int) (string, bool) {
	name, ok := t.stringByID[id]
	return name, ok
}

// NumStringIDs returns the number of string resource constants.
func (t *RTable) NumStringIDs() int { return len(t.stringByName) }

// StringIDNames returns the sorted string resource names.
func (t *RTable) StringIDNames() []string {
	names := make([]string, 0, len(t.stringByName))
	for n := range t.stringByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LayoutID returns the R.layout constant for a layout name.
func (t *RTable) LayoutID(name string) (int, bool) {
	id, ok := t.layoutByName[name]
	return id, ok
}

// ViewID returns the R.id constant for a view id name.
func (t *RTable) ViewID(name string) (int, bool) {
	id, ok := t.viewByName[name]
	return id, ok
}

// LayoutName returns the layout name for an R.layout constant.
func (t *RTable) LayoutName(id int) (string, bool) {
	name, ok := t.layoutByID[id]
	return name, ok
}

// ViewIDName returns the view id name for an R.id constant.
func (t *RTable) ViewIDName(id int) (string, bool) {
	name, ok := t.viewByID[id]
	return name, ok
}

// NumLayouts returns the number of layout constants.
func (t *RTable) NumLayouts() int { return len(t.layoutByName) }

// NumViewIDs returns the number of view id constants.
func (t *RTable) NumViewIDs() int { return len(t.viewByName) }

// LayoutNames returns the sorted layout names.
func (t *RTable) LayoutNames() []string {
	names := make([]string, 0, len(t.layoutByName))
	for n := range t.layoutByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ViewIDNames returns the sorted view id names.
func (t *RTable) ViewIDNames() []string {
	names := make([]string, 0, len(t.viewByName))
	for n := range t.viewByName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DescribeID renders a resource constant for diagnostics: the symbolic name
// when known, hex otherwise.
func (t *RTable) DescribeID(id int) string {
	if name, ok := t.layoutByID[id]; ok {
		return "R.layout." + name
	}
	if name, ok := t.viewByID[id]; ok {
		return "R.id." + name
	}
	if name, ok := t.stringByID[id]; ok {
		return "R.string." + name
	}
	return fmt.Sprintf("0x%x", id)
}

package layout

import (
	"strings"
	"testing"
)

// The two layout files from Figure 1 of the paper.
const actConsoleXML = `
<RelativeLayout xmlns:android="http://schemas.android.com/apk/res/android">
    <ViewFlipper android:id="@+id/console_flip" />
    <RelativeLayout android:id="@+id/keyboard_group">
        <ImageView android:id="@+id/button_esc" />
    </RelativeLayout>
</RelativeLayout>
`

const itemTerminalXML = `
<RelativeLayout>
    <TextView android:id="@+id/terminal_overlay" />
</RelativeLayout>
`

func TestParseFigure1Layouts(t *testing.T) {
	l, err := Parse("act_console", actConsoleXML)
	if err != nil {
		t.Fatal(err)
	}
	if l.Root.Class != "RelativeLayout" || l.Root.ID != "" {
		t.Errorf("root = %+v", l.Root)
	}
	if got := l.Root.Count(); got != 4 {
		t.Errorf("Count = %d, want 4", got)
	}
	if len(l.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(l.Root.Children))
	}
	flip := l.Root.Children[0]
	if flip.Class != "ViewFlipper" || flip.ID != "console_flip" {
		t.Errorf("flipper = %+v", flip)
	}
	kg := l.Root.Children[1]
	if kg.ID != "keyboard_group" || len(kg.Children) != 1 {
		t.Fatalf("keyboard_group = %+v", kg)
	}
	esc := kg.Children[0]
	if esc.Class != "ImageView" || esc.ID != "button_esc" {
		t.Errorf("esc = %+v", esc)
	}
	ids := l.IDNames()
	want := []string{"button_esc", "console_flip", "keyboard_group"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %q, want %q", i, ids[i], want[i])
		}
	}
}

func TestParseIDFormats(t *testing.T) {
	l, err := Parse("t", `<LinearLayout><Button android:id="@id/existing"/></LinearLayout>`)
	if err != nil {
		t.Fatal(err)
	}
	if l.Root.Children[0].ID != "existing" {
		t.Errorf("id = %q", l.Root.Children[0].ID)
	}
	if _, err := Parse("t", `<Button android:id="@+id/"/>`); err == nil {
		t.Error("want error for empty id")
	}
	if _, err := Parse("t", `<Button android:id="bogus"/>`); err == nil {
		t.Error("want error for malformed id")
	}
}

func TestParseOnClickAttr(t *testing.T) {
	l, err := Parse("t", `<LinearLayout><Button android:onClick="sendMessage"/></LinearLayout>`)
	if err != nil {
		t.Fatal(err)
	}
	if l.Root.Children[0].OnClick != "sendMessage" {
		t.Errorf("onClick = %q", l.Root.Children[0].OnClick)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		``,                                 // empty
		`<A></A><B></B>`,                   // two roots
		`<A><B></A></B>`,                   // bad nesting
		`<A><include/></A>`,                // include without layout
		`<A><include layout="main"/></A>`,  // bad include ref
		`<include layout="@layout/main"/>`, // include as root
		`<A><merge></merge></A>`,           // merge not at root
	}
	for _, src := range cases {
		if _, err := Parse("t", src); err == nil {
			t.Errorf("Parse(%q): want error", src)
		}
	}
}

func TestLinkInclude(t *testing.T) {
	layouts := map[string]*Layout{
		"main": MustParse("main", `<LinearLayout>
			<include layout="@layout/header" android:id="@+id/top"/>
			<Button android:id="@+id/go"/>
		</LinearLayout>`),
		"header": MustParse("header", `<FrameLayout android:id="@+id/hdr"><TextView android:id="@+id/title"/></FrameLayout>`),
	}
	if err := Link(layouts); err != nil {
		t.Fatal(err)
	}
	main := layouts["main"]
	if got := main.Root.Count(); got != 4 {
		t.Errorf("main count = %d, want 4", got)
	}
	hdr := main.Root.Children[0]
	if hdr.Class != "FrameLayout" {
		t.Fatalf("spliced child = %+v", hdr)
	}
	if hdr.ID != "top" {
		t.Errorf("include id override: got %q, want top", hdr.ID)
	}
	if hdr.Children[0].ID != "title" {
		t.Errorf("nested = %+v", hdr.Children[0])
	}
}

func TestLinkMergeInclude(t *testing.T) {
	layouts := map[string]*Layout{
		"main":   MustParse("main", `<LinearLayout><include layout="@layout/pieces"/><Button/></LinearLayout>`),
		"pieces": MustParse("pieces", `<merge><TextView android:id="@+id/a"/><TextView android:id="@+id/b"/></merge>`),
	}
	if err := Link(layouts); err != nil {
		t.Fatal(err)
	}
	kids := layouts["main"].Root.Children
	if len(kids) != 3 {
		t.Fatalf("children = %d, want 3 (2 merged + button)", len(kids))
	}
	if kids[0].ID != "a" || kids[1].ID != "b" || kids[2].Class != "Button" {
		t.Errorf("children = %+v %+v %+v", kids[0], kids[1], kids[2])
	}
}

func TestLinkTransitiveAndErrors(t *testing.T) {
	layouts := map[string]*Layout{
		"a": MustParse("a", `<LinearLayout><include layout="@layout/b"/></LinearLayout>`),
		"b": MustParse("b", `<LinearLayout><include layout="@layout/c"/></LinearLayout>`),
		"c": MustParse("c", `<TextView android:id="@+id/leaf"/>`),
	}
	if err := Link(layouts); err != nil {
		t.Fatal(err)
	}
	if got := layouts["a"].Root.Count(); got != 3 {
		t.Errorf("a count = %d, want 3", got)
	}

	cyc := map[string]*Layout{
		"x": MustParse("x", `<LinearLayout><include layout="@layout/y"/></LinearLayout>`),
		"y": MustParse("y", `<LinearLayout><include layout="@layout/x"/></LinearLayout>`),
	}
	if err := Link(cyc); err == nil || !strings.Contains(err.Error(), "cyclic") {
		t.Errorf("cyclic include: err = %v", err)
	}

	missing := map[string]*Layout{
		"m": MustParse("m", `<LinearLayout><include layout="@layout/nope"/></LinearLayout>`),
	}
	if err := Link(missing); err == nil || !strings.Contains(err.Error(), "unknown layout") {
		t.Errorf("missing include: err = %v", err)
	}
}

func TestRTable(t *testing.T) {
	layouts := map[string]*Layout{
		"act_console":   MustParse("act_console", actConsoleXML),
		"item_terminal": MustParse("item_terminal", itemTerminalXML),
	}
	rt := NewRTable(layouts)
	if rt.NumLayouts() != 2 {
		t.Errorf("NumLayouts = %d", rt.NumLayouts())
	}
	if rt.NumViewIDs() != 4 {
		t.Errorf("NumViewIDs = %d (%v)", rt.NumViewIDs(), rt.ViewIDNames())
	}
	id, ok := rt.LayoutID("act_console")
	if !ok || id < LayoutIDBase || id >= LayoutIDBase+2 {
		t.Errorf("LayoutID = %#x, %v", id, ok)
	}
	name, ok := rt.LayoutName(id)
	if !ok || name != "act_console" {
		t.Errorf("LayoutName(%#x) = %q", id, name)
	}
	vid, ok := rt.ViewID("button_esc")
	if !ok {
		t.Fatal("no id for button_esc")
	}
	if got := rt.DescribeID(vid); got != "R.id.button_esc" {
		t.Errorf("DescribeID = %q", got)
	}
	if got := rt.DescribeID(id); got != "R.layout.act_console" {
		t.Errorf("DescribeID = %q", got)
	}
	if got := rt.DescribeID(12345); got != "0x3039" {
		t.Errorf("DescribeID(unknown) = %q", got)
	}

	// AddViewID is idempotent and extends the table.
	v1 := rt.AddViewID("programmatic")
	v2 := rt.AddViewID("programmatic")
	if v1 != v2 {
		t.Errorf("AddViewID not idempotent: %#x vs %#x", v1, v2)
	}
	if rt.NumViewIDs() != 5 {
		t.Errorf("NumViewIDs after add = %d", rt.NumViewIDs())
	}

	// Ids are deterministic: rebuild and compare.
	rt2 := NewRTable(layouts)
	for _, n := range rt2.ViewIDNames() {
		a, _ := rt.ViewID(n)
		b, _ := rt2.ViewID(n)
		if a != b {
			t.Errorf("nondeterministic id for %s: %#x vs %#x", n, a, b)
		}
	}
}

func TestWalkOrder(t *testing.T) {
	l := MustParse("t", `<A><B><C/></B><D/></A>`)
	var order []string
	l.Root.Walk(func(n *Node) { order = append(order, n.Class) })
	want := []string{"A", "B", "C", "D"}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("order[%d] = %s, want %s", i, order[i], want[i])
		}
	}
}

package server

// Sessions: a client uploads an application once, then patches individual
// files and gets warm re-analysis through gator.AnalyzeIncremental —
// request/response access to the incremental solver's retract/repair path.
// Session state is bounded two ways: an idle TTL (a session untouched for
// that long is dropped) and an LRU count cap (creating one session past
// the cap evicts the least recently used). Both are eviction, not
// failure: a client whose session vanished gets 404 and re-creates it,
// paying one cold analysis.

import (
	"container/list"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"gator"
	"gator/internal/metrics"
)

// session is one client's warm analysis state. The per-session mutex
// serializes patches: gator.AnalyzeIncremental consumes the previous
// result, so two concurrent patches on one session must not race — the
// second would see ErrStaleResult.
type session struct {
	id   string
	name string
	opts gator.Options

	mu      sync.Mutex
	sources map[string]string
	layouts map[string]string
	prev    *gator.Result
	patches int // completed patch count, for /v1/sessions/{id}
}

// snapshotInputs copies the session's current input maps (callers mutate
// the copies while diffing an edit).
func (s *session) snapshotInputs() (sources, layouts map[string]string) {
	sources = make(map[string]string, len(s.sources))
	for k, v := range s.sources {
		sources[k] = v
	}
	layouts = make(map[string]string, len(s.layouts))
	for k, v := range s.layouts {
		layouts[k] = v
	}
	return sources, layouts
}

type sessionStore struct {
	max int
	ttl time.Duration
	reg *metrics.Registry

	mu   sync.Mutex
	byID map[string]*list.Element
	lru  *list.List // front = most recently used; value = *sessionEntry
}

type sessionEntry struct {
	sess    *session
	lastUse time.Time
}

func newSessionStore(max int, ttl time.Duration, reg *metrics.Registry) *sessionStore {
	return &sessionStore{
		max:  max,
		ttl:  ttl,
		reg:  reg,
		byID: map[string]*list.Element{},
		lru:  list.New(),
	}
}

// newSessionID returns a 128-bit random hex id.
func newSessionID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("server: session id entropy unavailable: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// add registers a new session, evicting over-cap LRU sessions first.
func (st *sessionStore) add(sess *session) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(time.Now())
	for st.lru.Len() >= st.max && st.max > 0 {
		st.evictLocked(st.lru.Back(), "server.sessions.evicted_lru")
	}
	st.byID[sess.id] = st.lru.PushFront(&sessionEntry{sess: sess, lastUse: time.Now()})
	st.reg.Add("server.sessions.created", 1)
}

// get returns the live session for id, refreshing its recency. An
// idle-expired session is evicted on access and reported as absent.
func (st *sessionStore) get(id string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return nil, false
	}
	e := el.Value.(*sessionEntry)
	if st.ttl > 0 && time.Since(e.lastUse) > st.ttl {
		st.evictLocked(el, "server.sessions.evicted_idle")
		return nil, false
	}
	e.lastUse = time.Now()
	st.lru.MoveToFront(el)
	return e.sess, true
}

// remove deletes a session by id (client DELETE), reporting whether it
// existed.
func (st *sessionStore) remove(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byID[id]
	if !ok {
		return false
	}
	st.evictLocked(el, "server.sessions.deleted")
	return true
}

// sweep evicts every idle-expired session; the daemon runs it periodically
// so memory for abandoned sessions is reclaimed without waiting for an
// access.
func (st *sessionStore) sweep(now time.Time) int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.sweepLocked(now)
}

func (st *sessionStore) sweepLocked(now time.Time) int {
	if st.ttl <= 0 {
		return 0
	}
	n := 0
	for el := st.lru.Back(); el != nil; {
		e := el.Value.(*sessionEntry)
		if now.Sub(e.lastUse) <= st.ttl {
			break // LRU order: everything further front is fresher
		}
		prev := el.Prev()
		st.evictLocked(el, "server.sessions.evicted_idle")
		el = prev
		n++
	}
	return n
}

func (st *sessionStore) evictLocked(el *list.Element, counter string) {
	e := el.Value.(*sessionEntry)
	st.lru.Remove(el)
	delete(st.byID, e.sess.id)
	st.reg.Add(counter, 1)
}

// len returns the number of live sessions.
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.lru.Len()
}

package server

// A thin Go client for gatord. cmd/gator's -remote flag is built on it, so
// the CLI can act as a frontend to a warm daemon, and the server tests use
// it as their protocol reference.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gator/internal/watch"
)

// Proxy-aware headers. A cluster proxy (cmd/gatorproxy) routes by app id;
// the client sends AppHeader so the proxy never has to decode request
// bodies, and every replica echoes ReplicaHeader so callers can see which
// node served them. Both are harmless against a plain single daemon.
const (
	// AppHeader carries the request's app name as a routing hint.
	AppHeader = "X-Gator-App"
	// ReplicaHeader carries the serving replica's id (Config.ReplicaID).
	ReplicaHeader = "X-Gator-Replica"
)

// StatusError is a non-2xx daemon response.
type StatusError struct {
	Code int
	Msg  string
	// RetryAfter is the server's backoff hint on 429 (0 when absent).
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("server: %d %s: %s", e.Code, http.StatusText(e.Code), e.Msg)
}

// Client talks to one gatord instance.
type Client struct {
	base string
	http *http.Client
}

// NewClient creates a client for the daemon at base (e.g.
// "http://127.0.0.1:7465"; a bare host:port gets the scheme prepended).
func NewClient(base string) *Client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &Client{base: strings.TrimRight(base, "/"), http: &http.Client{}}
}

// do sends one JSON round trip; out may be nil.
func (c *Client) do(method, path string, in, out any) error {
	return c.doApp(method, path, "", in, out)
}

// doApp is do with an app-id routing hint attached (see AppHeader).
func (c *Client) doApp(method, path, app string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if app != "" {
		req.Header.Set(AppHeader, app)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		se := &StatusError{Code: resp.StatusCode}
		var er ErrorResponse
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if json.Unmarshal(data, &er) == nil && er.Error != "" {
			se.Msg = er.Error
		} else {
			se.Msg = strings.TrimSpace(string(data))
		}
		if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
			se.RetryAfter = time.Duration(secs) * time.Second
		}
		return se
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Analyze submits one application for a cold (or cache-replayed) analysis.
func (c *Client) Analyze(req AnalyzeRequest) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.doApp("POST", "/v1/analyze", req.Name, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// OpenSession uploads an application once and returns the session whose
// later patches get warm incremental re-analysis.
func (c *Client) OpenSession(req AnalyzeRequest) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.doApp("POST", "/v1/sessions", req.Name, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// PatchSession applies an edit to a session and returns the re-analysis.
func (c *Client) PatchSession(id string, req PatchRequest) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.do("PATCH", "/v1/sessions/"+id, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// SessionInfo fetches a session's metadata.
func (c *Client) SessionInfo(id string) (*SessionInfo, error) {
	var out SessionInfo
	if err := c.do("GET", "/v1/sessions/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CloseSession deletes a session.
func (c *Client) CloseSession(id string) error {
	return c.do("DELETE", "/v1/sessions/"+id, nil, nil)
}

// Healthz checks liveness.
func (c *Client) Healthz() error { return c.do("GET", "/healthz", nil, nil) }

// Readyz checks readiness (a draining daemon fails this but not Healthz).
func (c *Client) Readyz() error { return c.do("GET", "/readyz", nil, nil) }

// Metrics fetches the daemon's metrics registry as deterministic JSON.
// /metrics itself defaults to Prometheus text exposition; the JSON
// rendering lives at /metrics.json (or /metrics with Accept:
// application/json).
func (c *Client) Metrics() ([]byte, error) {
	return c.getRaw("/metrics.json", "")
}

// MetricsProm fetches the Prometheus text exposition of the daemon's
// metrics (what a scraper sees at /metrics).
func (c *Client) MetricsProm() ([]byte, error) {
	return c.getRaw("/metrics", "")
}

// DebugTrace fetches one captured solver trace (newline-delimited JSON
// events) by trace id; a *StatusError with Code 404 means the request was
// not sampled or the capture aged out of the ring.
func (c *Client) DebugTrace(traceID string) ([]byte, error) {
	return c.getRaw("/v1/debug/traces/"+traceID, "")
}

// AnalyzeTraced is Analyze with solver trace capture forced on: the
// response's TraceID keys a subsequent DebugTrace call.
func (c *Client) AnalyzeTraced(req AnalyzeRequest) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.doApp("POST", "/v1/analyze?trace=1", req.Name, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Replica reports the replica id the daemon (or, through a proxy, the
// probed replica) attaches to its responses — "" for a plain daemon.
func (c *Client) Replica() (string, error) {
	req, err := http.NewRequest("GET", c.base+"/healthz", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &StatusError{Code: resp.StatusCode}
	}
	return resp.Header.Get(ReplicaHeader), nil
}

// getRaw fetches one endpoint's raw body (optionally with an Accept
// header), mapping non-200s to StatusError.
func (c *Client) getRaw(path, accept string) ([]byte, error) {
	req, err := http.NewRequest("GET", c.base+path, nil)
	if err != nil {
		return nil, err
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, &StatusError{Code: resp.StatusCode}
	}
	return io.ReadAll(resp.Body)
}

// WatchSession is the remote analogue of `gator -watch`: it opens a
// session from dir's current content, then watches the directory and
// pushes each coalesced edit as a full-replacement patch, invoking fn with
// every response (the initial analysis included). It returns when stop
// closes, deleting the session on the way out. read is the directory
// loader (pass gator.ReadAppDir); the indirection keeps this package's
// watch plumbing decoupled from the root package.
func (c *Client) WatchSession(stop <-chan struct{}, dir string, cfg watch.Config, req AnalyzeRequest, read watch.ReadFunc, fn func(*AnalyzeResponse, error)) error {
	sources, layouts, err := read(dir)
	if err != nil {
		return err
	}
	req.Sources, req.Layouts = sources, layouts
	open, err := c.OpenSession(req)
	if err != nil {
		return err
	}
	fn(open, nil)
	defer c.CloseSession(open.SessionID)

	cfg.FireInitial = false
	watch.Watch(stop, dir, cfg, read, func(ev watch.Event) {
		if ev.Err != nil {
			fn(nil, ev.Err)
			return
		}
		resp, err := c.PatchSession(open.SessionID, PatchRequest{
			Sources:    ev.Sources,
			Layouts:    ev.Layouts,
			Replace:    true,
			ReportSpec: req.ReportSpec,
		})
		if err != nil {
			// A 404 means the session was evicted; recover by reopening.
			var se *StatusError
			if errors.As(err, &se) && se.Code == http.StatusNotFound {
				req.Sources, req.Layouts = ev.Sources, ev.Layouts
				reopened, rerr := c.OpenSession(req)
				if rerr == nil {
					open = reopened
					fn(reopened, nil)
					return
				}
				err = rerr
			}
			fn(nil, err)
			return
		}
		fn(resp, nil)
	})
	return nil
}

package server

// End-to-end tests of the request telemetry layer over real HTTP: W3C
// trace propagation from client header through access log and captured
// solver trace, /metrics content negotiation and Prometheus validity, and
// graceful-drain rejection accounting.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"

	"gator/internal/metrics"
	"gator/internal/telemetry"
)

// syncBuffer is a goroutine-safe log sink for the test servers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines parses the buffer as one slog JSON record per line.
func (b *syncBuffer) logLines(t *testing.T) []map[string]any {
	t.Helper()
	var recs []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(b.String()), "\n") {
		if line == "" {
			continue
		}
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		recs = append(recs, rec)
	}
	return recs
}

func newTelemetryServer(t *testing.T, cfg Config) (*Server, *Client, *syncBuffer) {
	t.Helper()
	logBuf := &syncBuffer{}
	log, err := telemetry.NewLogger(logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logger = log
	srv, c := newTestServer(t, cfg)
	return srv, c, logBuf
}

// postAnalyze sends one analyze request with explicit query and headers —
// the raw-HTTP path the typed client does not expose.
func postAnalyze(t *testing.T, c *Client, path string, req AnalyzeRequest, hdr map[string]string) (*http.Response, AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest("POST", c.base+path, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := c.http.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out AnalyzeResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestTracePropagationE2E drives one traced analyze request end to end: a
// client-supplied traceparent must reappear (same trace id, fresh span id)
// in the response header, in the structured request log line, and on every
// captured solver trace event served by /v1/debug/traces/{id}.
func TestTracePropagationE2E(t *testing.T) {
	_, c, logBuf := newTelemetryServer(t, Config{})
	sources, layouts := figure1Maps()

	const parent = "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
	const traceID = "0af7651916cd43dd8448eb211c80319c"
	resp, out := postAnalyze(t, c, "/v1/analyze?trace=1",
		AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts},
		map[string]string{TraceparentHeader: parent})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze status %d", resp.StatusCode)
	}

	// 1. Response header: same trace, child span.
	echoed, err := telemetry.ParseTraceparent(resp.Header.Get(TraceparentHeader))
	if err != nil {
		t.Fatalf("response traceparent %q: %v", resp.Header.Get(TraceparentHeader), err)
	}
	if echoed.TraceIDString() != traceID {
		t.Fatalf("response trace id %s, want %s", echoed.TraceIDString(), traceID)
	}
	if echoed.SpanIDString() == "b7ad6b7169203331" {
		t.Fatal("server reused the client's span id instead of starting a child span")
	}

	// 2. Response body names the captured trace.
	if out.TraceID != traceID {
		t.Fatalf("response traceId %q, want %q", out.TraceID, traceID)
	}

	// 3. The access log line carries the same trace id.
	var found bool
	for _, rec := range logBuf.logLines(t) {
		if rec["msg"] == "request" && rec["traceId"] == traceID && rec["route"] == "/v1/analyze" {
			found = true
			if rec["status"] != float64(200) {
				t.Fatalf("log line status %v", rec["status"])
			}
			if rec["requestId"] == "" || rec["spanId"] == "" {
				t.Fatalf("log line missing request/span id: %v", rec)
			}
		}
	}
	if !found {
		t.Fatalf("no request log line with trace id %s:\n%s", traceID, logBuf.String())
	}

	// 4. The captured solver trace is retrievable and every event carries
	// the trace id.
	events := fetchTraceEvents(t, c, traceID)
	if len(events) == 0 {
		t.Fatal("captured trace has no events")
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		if ev["trace"] != traceID {
			t.Fatalf("solver event lost the trace id: %v", ev)
		}
		kinds[ev["kind"].(string)] = true
	}
	if !kinds["phase-begin"] {
		t.Fatalf("captured trace has no phase events: %v", kinds)
	}

	// An uncaptured id 404s.
	if _, err := c.DebugTrace("ffffffffffffffffffffffffffffffff"); err == nil {
		t.Fatal("DebugTrace of an unknown id succeeded")
	}
}

func fetchTraceEvents(t *testing.T, c *Client, traceID string) []map[string]any {
	t.Helper()
	data, err := c.DebugTrace(traceID)
	if err != nil {
		t.Fatalf("DebugTrace(%s): %v", traceID, err)
	}
	var events []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		if line == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		events = append(events, ev)
	}
	return events
}

// TestSessionPatchTraceCapture: ?trace=1 on a PATCH captures the warm
// incremental solve under the request's trace id.
func TestSessionPatchTraceCapture(t *testing.T) {
	_, c, _ := newTelemetryServer(t, Config{})
	sources, layouts := figure1Maps()
	open, err := c.OpenSession(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts})
	if err != nil {
		t.Fatal(err)
	}

	body, _ := json.Marshal(PatchRequest{Sources: map[string]string{"extra.alite": "class Extra { }"}})
	hr, err := http.NewRequest("PATCH", c.base+"/v1/sessions/"+open.SessionID+"?trace=1", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("patch status %d", resp.StatusCode)
	}
	var out AnalyzeResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.TraceID == "" {
		t.Fatal("traced patch returned no traceId")
	}
	if events := fetchTraceEvents(t, c, out.TraceID); len(events) == 0 {
		t.Fatal("patch trace has no events")
	}
}

// TestHeadSampling: -trace-sample=N captures every Nth analysis request
// without any per-request opt-in.
func TestHeadSampling(t *testing.T) {
	_, c, _ := newTelemetryServer(t, Config{TraceSample: 2})
	sources, layouts := figure1Maps()
	req := AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts, NoCache: true}

	first, err := c.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.TraceID != "" {
		t.Fatal("request 1 of 2 was sampled")
	}
	second, err := c.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if second.TraceID == "" {
		t.Fatal("request 2 of 2 was not sampled")
	}
	if events := fetchTraceEvents(t, c, second.TraceID); len(events) == 0 {
		t.Fatal("sampled trace has no events")
	}
}

// TestMetricsContentNegotiation pins the /metrics surface: Prometheus text
// by default, JSON via Accept or /metrics.json, and Client.Metrics()
// returning the JSON rendering.
func TestMetricsContentNegotiation(t *testing.T) {
	_, c, _ := newTelemetryServer(t, Config{})
	sources, layouts := figure1Maps()
	if _, err := c.Analyze(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts}); err != nil {
		t.Fatal(err)
	}

	prom, err := c.getRaw("/metrics", "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := metrics.ParsePrometheus(prom); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text: %v\n%s", err, prom)
	}
	if bytes.HasPrefix(bytes.TrimSpace(prom), []byte("{")) {
		t.Fatal("/metrics served JSON without Accept")
	}

	viaAccept, err := c.getRaw("/metrics", "application/json")
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(viaAccept, &snap); err != nil {
		t.Fatalf("/metrics with Accept: application/json is not JSON: %v", err)
	}

	viaPath, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(viaAccept, viaPath) {
		t.Fatal("Accept negotiation and /metrics.json disagree")
	}
	if !strings.Contains(string(viaPath), "server.jobs.admitted") {
		t.Fatal("JSON rendering lost the registry counters")
	}
}

// TestMetricsPrometheusE2E: after real traffic the scrape carries the
// request counters, stage histograms, and callback gauges; two idle
// scrapes are byte-identical; and the exposition passes the parser's
// histogram invariants.
func TestMetricsPrometheusE2E(t *testing.T) {
	_, c, _ := newTelemetryServer(t, Config{})
	sources, layouts := figure1Maps()
	if _, err := c.Analyze(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts}); err != nil {
		t.Fatal(err)
	}
	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}

	scrape1, err := c.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	scrape2, err := c.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(scrape1, scrape2) {
		t.Fatal("two idle scrapes differ")
	}

	fams, err := metrics.ParsePrometheus(scrape1)
	if err != nil {
		t.Fatalf("scrape invalid: %v\n%s", err, scrape1)
	}
	reqs, ok := fams["gatord_http_requests_total"]
	if !ok {
		t.Fatalf("no gatord_http_requests_total in scrape:\n%s", scrape1)
	}
	routes := map[string]bool{}
	for _, s := range reqs.Samples {
		routes[s.Labels["route"]] = true
		if s.Labels["status"] == "" {
			t.Fatalf("request counter without status label: %+v", s)
		}
	}
	if !routes["/v1/analyze"] || !routes["/healthz"] {
		t.Fatalf("request counter routes missing: %v", routes)
	}
	for _, fam := range []string{"gatord_stage_duration_us", "gatord_http_request_duration_us",
		"gatord_jobs_queue_depth", "gatord_sessions_active"} {
		if _, ok := fams[fam]; !ok {
			t.Fatalf("family %s missing from scrape", fam)
		}
	}
	if fams["gatord_stage_duration_us"].Type != "histogram" {
		t.Fatal("stage_duration_us is not a histogram")
	}
}

// TestDrainRejectionTelemetry: a draining daemon's 503s increment
// requests_rejected_total{reason="draining"} and log the rejection with
// the request's trace id.
func TestDrainRejectionTelemetry(t *testing.T) {
	srv, c, logBuf := newTelemetryServer(t, Config{})
	srv.Drain()

	sources, layouts := figure1Maps()
	const parent = "00-deadbeefdeadbeefdeadbeefdeadbeef-b7ad6b7169203331-01"
	resp, _ := postAnalyze(t, c, "/v1/analyze",
		AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts},
		map[string]string{TraceparentHeader: parent})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining analyze status %d, want 503", resp.StatusCode)
	}

	data, err := c.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParsePrometheus(data)
	if err != nil {
		t.Fatal(err)
	}
	rej, ok := fams["gatord_requests_rejected_total"]
	if !ok {
		t.Fatalf("no rejection counter in scrape:\n%s", data)
	}
	var drained float64
	for _, s := range rej.Samples {
		if s.Labels["reason"] == "draining" {
			drained = s.Value
		}
	}
	if drained != 1 {
		t.Fatalf("requests_rejected_total{reason=draining} = %v, want 1", drained)
	}

	var logged bool
	for _, rec := range logBuf.logLines(t) {
		if rec["msg"] == "request rejected" && rec["reason"] == "draining" &&
			rec["traceId"] == "deadbeefdeadbeefdeadbeefdeadbeef" {
			logged = true
		}
	}
	if !logged {
		t.Fatalf("no rejection log line with the trace id:\n%s", logBuf.String())
	}
}

// TestNoTelemetryMode: the benchmark baseline serves without middleware —
// no traceparent echo, no http_requests_total, JSON still at
// /metrics.json.
func TestNoTelemetryMode(t *testing.T) {
	_, c := newTestServer(t, Config{NoTelemetry: true})
	sources, layouts := figure1Maps()
	resp, out := postAnalyze(t, c, "/v1/analyze",
		AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get(TraceparentHeader) != "" {
		t.Fatal("NoTelemetry server echoed a traceparent")
	}
	if out.TraceID != "" {
		t.Fatal("NoTelemetry server captured a trace")
	}
	data, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), "http_requests_total") {
		t.Fatal("NoTelemetry server counted requests")
	}
}

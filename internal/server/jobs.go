package server

// The job subsystem: a bounded admission queue feeding a fixed worker
// pool. Every analysis request — cold submission, session patch, streaming
// batch — becomes a job, so the daemon's concurrency and memory are
// bounded by configuration, not by how many sockets the OS accepts.
// Admission is fail-fast: a full queue rejects immediately (the HTTP layer
// maps that to 429 + Retry-After) instead of building an unbounded backlog
// whose requests would all miss their deadlines anyway.
//
// Drain semantics (graceful shutdown): after drain() begins, new
// submissions and jobs still waiting in the queue are rejected with
// errDraining (HTTP 503), while jobs a worker has already started run to
// completion. drain() returns when the last in-flight job finishes.

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"gator/internal/metrics"
)

// errBusy rejects a submission when the admission queue is full (→ 429).
var errBusy = errors.New("server: analysis queue is full")

// errDraining rejects work during graceful shutdown (→ 503).
var errDraining = errors.New("server: draining")

// panicError wraps a recovered panic from an isolated job (→ 500). The
// daemon stays up; only the offending request fails.
type panicError struct {
	val   any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("server: panic during analysis: %v\n%s", e.val, e.stack)
}

type job struct {
	ctx  context.Context
	fn   func()
	done chan struct{}
	err  error     // written before done closes
	enq  time.Time // admission time, for the queue-wait histogram
}

type jobRunner struct {
	queue   chan *job
	timeout time.Duration
	reg     *metrics.Registry
	// queueWait is the stage_duration_us{stage="queue"} histogram; nil
	// when telemetry is off (a nil histogram swallows observations).
	queueWait *metrics.Histogram

	mu       sync.Mutex
	draining bool

	wg sync.WaitGroup // worker goroutines
}

// newJobRunner starts workers goroutines consuming a queue of depth slots.
func newJobRunner(workers, depth int, timeout time.Duration, reg *metrics.Registry, queueWait *metrics.Histogram) *jobRunner {
	r := &jobRunner{
		queue:     make(chan *job, depth),
		timeout:   timeout,
		reg:       reg,
		queueWait: queueWait,
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.worker()
	}
	return r
}

func (r *jobRunner) worker() {
	defer r.wg.Done()
	for j := range r.queue {
		r.queueWait.Observe(time.Since(j.enq).Microseconds())
		switch {
		case r.isDraining():
			// Queued but never started: reject, per the drain contract.
			j.err = errDraining
			r.reg.Add("server.jobs.rejected_drain", 1)
		case j.ctx.Err() != nil:
			// The submitter stopped waiting (deadline or disconnect) while
			// the job sat in the queue; skip the wasted work.
			j.err = j.ctx.Err()
			r.reg.Add("server.jobs.expired_in_queue", 1)
		default:
			j.err = r.runIsolated(j.fn)
			r.reg.Add("server.jobs.completed", 1)
		}
		close(j.done)
	}
}

// runIsolated executes fn, converting a panic into an error so one bad
// request cannot take down the daemon.
func (r *jobRunner) runIsolated(fn func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			r.reg.Add("server.jobs.panics", 1)
			err = &panicError{val: p, stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}

func (r *jobRunner) isDraining() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.draining
}

// submit enqueues a job without blocking; errBusy when the queue is full.
func (r *jobRunner) submit(j *job) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.draining {
		r.reg.Add("server.jobs.rejected_drain", 1)
		return errDraining
	}
	j.enq = time.Now()
	select {
	case r.queue <- j:
		r.reg.Add("server.jobs.admitted", 1)
		return nil
	default:
		r.reg.Add("server.jobs.rejected_busy", 1)
		return errBusy
	}
}

// do runs fn on a worker and waits for it to finish, up to the per-job
// deadline (and the caller's ctx). On deadline the job is abandoned: the
// worker still runs it to completion (the solver is not preemptible), but
// the caller gets context.DeadlineExceeded now. fn must therefore only
// touch state owned by the job (its own buffers), never the caller's
// response writer.
func (r *jobRunner) do(ctx context.Context, fn func()) error {
	if r.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.timeout)
		defer cancel()
	}
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	if err := r.submit(j); err != nil {
		return err
	}
	select {
	case <-j.done:
		return j.err
	case <-ctx.Done():
		r.reg.Add("server.jobs.abandoned", 1)
		return ctx.Err()
	}
}

// doStream is do for jobs that write to a live response stream: it waits
// for completion unconditionally (no abandonment — the job owns the
// response writer while it runs). Admission control and panic isolation
// still apply; the job should bound its own work instead.
func (r *jobRunner) doStream(ctx context.Context, fn func()) error {
	j := &job{ctx: ctx, fn: fn, done: make(chan struct{})}
	if err := r.submit(j); err != nil {
		return err
	}
	<-j.done
	return j.err
}

// drain stops admission, rejects everything still queued, and waits for
// in-flight jobs to finish.
func (r *jobRunner) drain() {
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.draining = true
	close(r.queue) // safe: submit holds the same lock and checks draining first
	r.mu.Unlock()
	r.wg.Wait()
}

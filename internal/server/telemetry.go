package server

// Request-scoped telemetry for the daemon: W3C trace-context propagation,
// per-request structured logs, labeled request/duration metrics, and
// sampled capture of solver traces into a bounded in-memory ring served at
// /v1/debug/traces/{id}. The middleware owns the request's span: an
// incoming traceparent yields a child span (same trace id, fresh span id),
// anything else yields a new root span, and either way the span rides the
// request context through admission, the job worker, and the solver — so
// an HTTP access log line, a Prometheus series, and a solver trace event
// can all be joined on one trace id. See DESIGN.md, "Observability".

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"log/slog"

	"gator/internal/metrics"
	"gator/internal/telemetry"
	"gator/internal/trace"
)

// TraceparentHeader is the W3C trace-context header the daemon reads and
// echoes.
const TraceparentHeader = "traceparent"

// Pre-built labeled stage-histogram names: one histogram family,
// stage_duration_us, with a bounded stage label set. Built once so the hot
// path does no label formatting.
var (
	stageQueueName  = metrics.LabelName("stage_duration_us", "stage", "queue")
	stageParseName  = metrics.LabelName("stage_duration_us", "stage", "parse")
	stageSolveName  = metrics.LabelName("stage_duration_us", "stage", "solve")
	stageRenderName = metrics.LabelName("stage_duration_us", "stage", "render")
)

// routeLabel maps a request path onto the bounded route label set (the
// Go 1.22 mux does not expose the matched pattern, so the normalization is
// by hand) and extracts the session id for paths that carry one. Unknown
// paths collapse to "other" so label cardinality stays fixed no matter
// what clients probe.
func routeLabel(p string) (route, sessionID string) {
	switch p {
	case "/healthz", "/readyz", "/metrics", "/metrics.json",
		"/v1/analyze", "/v1/batch", "/v1/sessions":
		return p, ""
	}
	switch {
	case strings.HasPrefix(p, "/v1/sessions/"):
		return "/v1/sessions/{id}", p[len("/v1/sessions/"):]
	case strings.HasPrefix(p, "/v1/debug/traces/"):
		return "/v1/debug/traces/{id}", ""
	case strings.HasPrefix(p, "/debug/pprof/"):
		return "/debug/pprof", ""
	}
	return "other", ""
}

// statusWriter records the response status and size for metrics and logs.
// It forwards Flush so the SSE batch stream keeps working through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withTelemetry is the daemon's outermost middleware. Per request it:
// continues or starts a W3C trace (child span of an incoming traceparent,
// fresh root otherwise), echoes the request's own span as the traceparent
// response header, threads the span through the request context, counts
// http_requests_total{route,status}, observes
// http_request_duration_us{route}, emits one structured log line, and
// converts handler panics into logged 500s instead of lost connections
// (panics inside analysis jobs are already isolated by the job runner;
// this catches the serving layer itself).
func (s *Server) withTelemetry(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		span := telemetry.NewSpan()
		if parent, err := telemetry.ParseTraceparent(r.Header.Get(TraceparentHeader)); err == nil {
			span = parent.ChildSpan()
		}
		r = r.WithContext(telemetry.WithSpan(r.Context(), span))
		w.Header().Set(TraceparentHeader, span.Traceparent())

		sw := &statusWriter{ResponseWriter: w}
		route, sessionID := routeLabel(r.URL.Path)
		start := time.Now()
		defer func() {
			elapsed := time.Since(start)
			if p := recover(); p != nil {
				s.reg.Add("server.http.panics", 1)
				if s.log != nil {
					s.log.Error("panic serving request",
						slog.String("method", r.Method),
						slog.String("route", route),
						slog.String("traceId", span.TraceIDString()),
						slog.String("spanId", span.SpanIDString()),
						slog.String("panic", fmt.Sprint(p)),
						slog.String("stack", string(debug.Stack())))
				}
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal error")
				}
			}
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			// The metrics endpoints do not observe themselves: counting a
			// scrape would make the next scrape differ, and both the JSON
			// determinism contract and the byte-identical-idle-scrapes
			// property depend on reads being free of side effects.
			if route != "/metrics" && route != "/metrics.json" {
				s.reg.Add(metrics.LabelName("http_requests_total",
					"route", route, "status", strconv.Itoa(sw.status)), 1)
				s.reg.Observe(metrics.LabelName("http_request_duration_us", "route", route),
					elapsed.Microseconds())
			}
			if s.log != nil {
				level := slog.LevelInfo
				switch {
				case sw.status >= 500:
					level = slog.LevelError
				case sw.status >= 400:
					level = slog.LevelWarn
				}
				attrs := []slog.Attr{
					slog.String("method", r.Method),
					slog.String("route", route),
					slog.String("path", r.URL.Path),
					slog.Int("status", sw.status),
					slog.Int64("bytes", sw.bytes),
					slog.Float64("durMs", float64(elapsed)/float64(time.Millisecond)),
					// The server span id doubles as the request id: it is
					// fresh per request even when the client pins the trace.
					slog.String("requestId", span.SpanIDString()),
					slog.String("traceId", span.TraceIDString()),
					slog.String("spanId", span.SpanIDString()),
				}
				if sessionID != "" {
					attrs = append(attrs, slog.String("sessionId", sessionID))
				}
				s.log.LogAttrs(r.Context(), level, "request", attrs...)
			}
		}()
		h.ServeHTTP(sw, r)
	})
}

// rejectRequest records one admission rejection: a labeled counter for the
// scrape and a warn line carrying the trace id for the log stream.
func (s *Server) rejectRequest(r *http.Request, reason string) {
	if !s.obs {
		return
	}
	s.reg.Add(metrics.LabelName("requests_rejected_total", "reason", reason), 1)
	if s.log != nil {
		route, _ := routeLabel(r.URL.Path)
		s.log.Warn("request rejected",
			slog.String("reason", reason),
			slog.String("method", r.Method),
			slog.String("route", route),
			slog.String("traceId", telemetry.TraceIDFrom(r.Context())))
	}
}

// observeStage records one pipeline-stage duration into the labeled
// stage_duration_us histogram; no-op when telemetry is off.
func (s *Server) observeStage(name string, d time.Duration) {
	if !s.obs {
		return
	}
	s.reg.Observe(name, d.Microseconds())
}

// ---- solver trace capture ----

// forceTrace reports whether the request explicitly asked for solver trace
// capture (?trace=1).
func (s *Server) forceTrace(r *http.Request) bool {
	return s.obs && r.URL.Query().Get("trace") == "1"
}

// sampleHit implements head-based sampling: with -trace-sample=N, every
// Nth analysis-bearing request captures its solver trace.
func (s *Server) sampleHit() bool {
	if !s.obs || s.cfg.TraceSample <= 0 {
		return false
	}
	return s.sampleSeq.Add(1)%int64(s.cfg.TraceSample) == 0
}

// captureScope starts solver trace capture for one request when sampling
// or ?trace=1 selects it: the returned scope goes into Options.Trace, and
// the sink holds the events for storeTrace. A nil sink means "not
// capturing".
func (s *Server) captureScope(r *http.Request, app string) (*trace.Collect, *trace.Scope, string) {
	if !(s.forceTrace(r) || s.sampleHit()) {
		return nil, nil, ""
	}
	traceID := telemetry.TraceIDFrom(r.Context())
	if traceID == "" {
		// Telemetry middleware disabled: nothing to key the capture by.
		return nil, nil, ""
	}
	sink := &trace.Collect{}
	return sink, trace.New(sink).RequestScope(app, 0, traceID), traceID
}

// storeTrace renders captured events as JSON lines and retains them in the
// bounded ring, keyed by trace id (a later capture under the same trace id
// replaces the earlier one).
func (s *Server) storeTrace(traceID string, sink *trace.Collect) {
	if sink == nil || traceID == "" {
		return
	}
	var buf strings.Builder
	if err := trace.WriteJSON(&buf, sink.Events()); err != nil {
		return
	}
	s.traces.Put(traceID, []byte(buf.String()))
	s.reg.Add("server.traces.captured", 1)
}

// handleDebugTrace serves one captured solver trace as newline-delimited
// JSON events (the same rendering `gator -trace` writes), 404 when the id
// was never captured or already aged out of the ring.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	data, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no captured trace for this id (not sampled, or evicted from the ring)")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Write(data)
}

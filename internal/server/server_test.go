package server

// End-to-end tests of the daemon over real HTTP (httptest + the Go
// client). The load-bearing property is the byte-identity contract: every
// report served remotely — cold, cache-replayed, or from a warm session —
// must equal what the local library path renders for the same input. The
// concurrency tests run meaningfully under -race (scripts/ci.sh includes
// this package in the race set).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gator"
	"gator/internal/corpus"
	"gator/internal/report"
	"gator/internal/watch"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *Client) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return srv, NewClient(ts.URL)
}

// localRender is the reference implementation of every remote report: the
// same library calls a local CLI run makes, nothing shared with the server
// but the render path itself.
func localRender(t *testing.T, name string, sources, layouts map[string]string, opts gator.Options, req report.Request) (code int, out, errText string) {
	t.Helper()
	app, err := gator.Load(sources, layouts)
	if err != nil {
		t.Fatalf("local load: %v", err)
	}
	app.Name = name
	res := app.Analyze(opts)
	var outBuf, errBuf bytes.Buffer
	code = report.Render(&outBuf, &errBuf, name, res, req)
	return code, outBuf.String(), errBuf.String()
}

func figure1Maps() (sources, layouts map[string]string) {
	return map[string]string{"connectbot.alite": corpus.Figure1Source},
		map[string]string{
			"act_console":   corpus.Figure1ActConsoleXML,
			"item_terminal": corpus.Figure1ItemTerminalXML,
		}
}

// TestRemoteMatchesLocalConcurrent is the main differential test: several
// concurrent clients drive cold submissions, cache-replayed repeats, and
// warm session edit sequences, and every single response is byte-compared
// to the local pipeline.
func TestRemoteMatchesLocalConcurrent(t *testing.T) {
	_, c := newTestServer(t, Config{})

	kinds := []string{"views", "tuples", "hierarchy", "activities", "table1", "checks", "dot"}
	fig1Src, fig1Lay := figure1Maps()
	apps := []struct {
		name             string
		sources, layouts map[string]string
	}{
		{"figure1", fig1Src, fig1Lay},
	}
	for seed := int64(1); seed <= 3; seed++ {
		s, l := corpus.RandomApp(seed)
		apps = append(apps, struct {
			name             string
			sources, layouts map[string]string
		}{fmt.Sprintf("rand%d", seed), s, l})
	}

	const clients = 4
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			app := apps[ci%len(apps)]
			for _, kind := range kinds {
				req := AnalyzeRequest{
					Name:       app.name,
					Sources:    app.sources,
					Layouts:    app.layouts,
					ReportSpec: ReportSpec{Report: kind},
				}
				wantCode, wantOut, wantErr := localRender(t, app.name, app.sources, app.layouts,
					gator.Options{}, report.Request{Report: kind, Seed: 1})

				// Cold (or concurrently cache-warmed — either way the bytes
				// must match), then a repeat that may be served from cache.
				for round := 0; round < 2; round++ {
					resp, err := c.Analyze(req)
					if err != nil {
						t.Errorf("client %d %s/%s round %d: %v", ci, app.name, kind, round, err)
						return
					}
					if resp.Output != wantOut || resp.ExitCode != wantCode || resp.Stderr != wantErr {
						t.Errorf("client %d %s/%s round %d: remote report differs from local\nremote (exit %d):\n%s\nlocal (exit %d):\n%s",
							ci, app.name, kind, round, resp.ExitCode, resp.Output, wantCode, wantOut)
						return
					}
				}
			}

			// Session flow: open, then a sequence of edits; each response
			// must match a local scratch analysis of the patched input.
			sources := copyMap(app.sources)
			open, err := c.OpenSession(AnalyzeRequest{
				Name: app.name, Sources: sources, Layouts: app.layouts,
				ReportSpec: ReportSpec{Report: "views"},
			})
			if err != nil {
				t.Errorf("client %d open session: %v", ci, err)
				return
			}
			_, wantOut, _ := localRender(t, app.name, sources, app.layouts,
				gator.Options{}, report.Request{Report: "views", Seed: 1})
			if open.Output != wantOut {
				t.Errorf("client %d session create: remote differs from local", ci)
				return
			}
			var names []string
			for n := range sources {
				names = append(names, n)
			}
			for round := 0; round < 3; round++ {
				edited := names[round%len(names)]
				sources[edited] += fmt.Sprintf("\n// edit %d by client %d\n", round, ci)
				resp, err := c.PatchSession(open.SessionID, PatchRequest{
					Sources:    map[string]string{edited: sources[edited]},
					ReportSpec: ReportSpec{Report: "views"},
				})
				if err != nil {
					t.Errorf("client %d patch %d: %v", ci, round, err)
					return
				}
				if resp.Incremental == nil {
					t.Errorf("client %d patch %d: no incremental stats", ci, round)
					return
				}
				_, wantOut, _ := localRender(t, app.name, sources, app.layouts,
					gator.Options{}, report.Request{Report: "views", Seed: 1})
				if resp.Output != wantOut {
					t.Errorf("client %d patch %d (%s): warm remote report differs from local scratch\nremote:\n%s\nlocal:\n%s",
						ci, round, resp.Incremental.Mode, resp.Output, wantOut)
					return
				}
			}
			if err := c.CloseSession(open.SessionID); err != nil {
				t.Errorf("client %d close session: %v", ci, err)
			}
		}(ci)
	}
	wg.Wait()
}

// TestSessionPatchWarm pins that a body-only edit takes the warm path and
// that structural edits still produce correct (locally-identical) output.
func TestSessionPatchWarm(t *testing.T) {
	_, c := newTestServer(t, Config{})
	sources, layouts := corpus.ModularApp(6)

	open, err := c.OpenSession(AnalyzeRequest{
		Name: "modular", Sources: sources, Layouts: layouts,
		ReportSpec: ReportSpec{Report: "tuples"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var file string
	for n := range sources {
		if file == "" || n < file {
			file = n
		}
	}

	// Body-only edit: append a comment. Must re-solve warm.
	sources[file] += "\n// warm edit\n"
	resp, err := c.PatchSession(open.SessionID, PatchRequest{
		Sources:    map[string]string{file: sources[file]},
		ReportSpec: ReportSpec{Report: "tuples"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Incremental == nil || resp.Incremental.Mode != "warm" {
		t.Fatalf("body-only edit mode = %+v, want warm", resp.Incremental)
	}
	_, want, _ := localRender(t, "modular", sources, layouts, gator.Options{},
		report.Request{Report: "tuples", Seed: 1})
	if resp.Output != want {
		t.Fatalf("warm patch output differs from local scratch\nremote:\n%s\nlocal:\n%s", resp.Output, want)
	}

	// Adding a file is a structural edit; output must still match local.
	const extra = "class ZzHelper {\n\tView held;\n\tvoid keep(View v) {\n\t\tthis.held = v;\n\t}\n}\n"
	sources["zz_extra.alite"] = extra
	resp, err = c.PatchSession(open.SessionID, PatchRequest{
		Sources:    map[string]string{"zz_extra.alite": extra},
		ReportSpec: ReportSpec{Report: "tuples"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, want, _ = localRender(t, "modular", sources, layouts, gator.Options{},
		report.Request{Report: "tuples", Seed: 1})
	if resp.Output != want {
		t.Fatalf("structural patch output differs from local\nremote:\n%s\nlocal:\n%s", resp.Output, want)
	}

	// So is removing it again.
	delete(sources, "zz_extra.alite")
	resp, err = c.PatchSession(open.SessionID, PatchRequest{
		RemoveSources: []string{"zz_extra.alite"},
		ReportSpec:    ReportSpec{Report: "tuples"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, want, _ = localRender(t, "modular", sources, layouts, gator.Options{},
		report.Request{Report: "tuples", Seed: 1})
	if resp.Output != want {
		t.Fatalf("removal patch output differs from local\nremote:\n%s\nlocal:\n%s", resp.Output, want)
	}

	info, err := c.SessionInfo(open.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	if info.Patches != 3 {
		t.Fatalf("session patches = %d, want 3", info.Patches)
	}
}

// TestSessionPatchParseErrorKeepsSession verifies a mid-edit syntax error
// maps to 422 and the session stays usable (the next good patch is warm
// relative to the last good solution).
func TestSessionPatchParseErrorKeepsSession(t *testing.T) {
	_, c := newTestServer(t, Config{})
	sources, layouts := figure1Maps()

	open, err := c.OpenSession(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.PatchSession(open.SessionID, PatchRequest{
		Sources: map[string]string{"connectbot.alite": "class {{{"},
	})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusUnprocessableEntity {
		t.Fatalf("broken patch: %v, want 422", err)
	}

	// The bad patch must not have replaced the session's inputs.
	sources["connectbot.alite"] += "\n// recovered\n"
	resp, err := c.PatchSession(open.SessionID, PatchRequest{
		Sources:    map[string]string{"connectbot.alite": sources["connectbot.alite"]},
		ReportSpec: ReportSpec{Report: "views"},
	})
	if err != nil {
		t.Fatalf("patch after parse error: %v", err)
	}
	_, want, _ := localRender(t, "figure1", sources, layouts, gator.Options{},
		report.Request{Report: "views", Seed: 1})
	if resp.Output != want {
		t.Fatalf("post-recovery output differs from local\nremote:\n%s\nlocal:\n%s", resp.Output, want)
	}
}

// TestExplainRemote checks the provenance query surface end to end.
func TestExplainRemote(t *testing.T) {
	_, c := newTestServer(t, Config{})
	sources, layouts := figure1Maps()
	spec := ReportSpec{Explain: "id:console_flip"}

	resp, err := c.Analyze(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts, ReportSpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	wantCode, want, _ := localRender(t, "figure1", sources, layouts,
		gator.Options{Provenance: true}, report.Request{Explain: "id:console_flip", Seed: 1})
	if resp.Output != want || resp.ExitCode != wantCode {
		t.Fatalf("remote explain differs from local\nremote (exit %d):\n%s\nlocal (exit %d):\n%s",
			resp.ExitCode, resp.Output, wantCode, want)
	}
	if resp.Cached {
		t.Fatal("explain responses must never be cache replays")
	}
}

// TestCacheReplayMarksCached pins the Cached flag and that replays carry
// the exit code of the original render.
func TestCacheReplayMarksCached(t *testing.T) {
	dir := t.TempDir()
	_, c := newTestServer(t, Config{CacheDir: dir})
	sources, layouts := figure1Maps()
	req := AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts,
		ReportSpec: ReportSpec{Report: "views"}}

	first, err := c.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request reported Cached")
	}
	second, err := c.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("second identical request was not a cache replay")
	}
	if second.Output != first.Output || second.ExitCode != first.ExitCode {
		t.Fatal("cache replay altered the response")
	}

	// NoCache forces a fresh solve.
	req.NoCache = true
	third, err := c.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if third.Cached {
		t.Fatal("NoCache request reported Cached")
	}
	if third.Output != first.Output {
		t.Fatal("fresh solve differs from original")
	}
}

// TestDrainSemantics verifies the shutdown contract over HTTP: /readyz
// flips, in-flight jobs finish, and new work is rejected with 503.
func TestDrainSemantics(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	sources, layouts := figure1Maps()

	if err := c.Readyz(); err != nil {
		t.Fatalf("readyz before drain: %v", err)
	}

	// Park a blocking job on the only worker so drain has something
	// genuinely in flight.
	gate := make(chan struct{})
	started := make(chan struct{})
	inflight := &job{ctx: context.Background(), fn: func() { close(started); <-gate }, done: make(chan struct{})}
	if err := srv.jobs.submit(inflight); err != nil {
		t.Fatal(err)
	}
	<-started

	drained := make(chan struct{})
	go func() { srv.Drain(); close(drained) }()

	// Readiness flips immediately, even while the drain blocks on the
	// in-flight job.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := c.Readyz(); err != nil {
			var se *StatusError
			if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
				t.Fatalf("readyz during drain: %v, want 503", err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never flipped during drain")
		}
		time.Sleep(time.Millisecond)
	}

	// New work is rejected while draining.
	_, err := c.Analyze(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("analyze during drain: %v, want 503", err)
	}

	select {
	case <-drained:
		t.Fatal("drain returned while a job was in flight")
	default:
	}
	close(gate)
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never finished")
	}
	if err := waitDone(t, inflight); err != nil {
		t.Fatalf("in-flight job during drain: %v, want nil", err)
	}
}

// TestBackpressure429 fills the worker and the queue, then checks the HTTP
// mapping: 429 with a Retry-After hint.
func TestBackpressure429(t *testing.T) {
	srv, c := newTestServer(t, Config{Workers: 1, QueueDepth: 1, RetryAfter: 2 * time.Second})
	sources, layouts := figure1Maps()

	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	inflight := &job{ctx: context.Background(), fn: func() { close(started); <-gate }, done: make(chan struct{})}
	if err := srv.jobs.submit(inflight); err != nil {
		t.Fatal(err)
	}
	<-started
	filler := &job{ctx: context.Background(), fn: func() {}, done: make(chan struct{})}
	if err := srv.jobs.submit(filler); err != nil {
		t.Fatal(err)
	}

	_, err := c.Analyze(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("analyze with full queue: %v, want 429", err)
	}
	if se.RetryAfter != 2*time.Second {
		t.Fatalf("Retry-After = %v, want 2s", se.RetryAfter)
	}
}

// TestSessionEviction covers both bounds: the LRU count cap and the idle
// TTL (via the sweeper, as the daemon runs it).
func TestSessionEviction(t *testing.T) {
	srv, c := newTestServer(t, Config{MaxSessions: 2, SessionTTL: 50 * time.Millisecond})
	sources, layouts := figure1Maps()
	open := func() string {
		t.Helper()
		resp, err := c.OpenSession(AnalyzeRequest{Name: "figure1", Sources: sources, Layouts: layouts})
		if err != nil {
			t.Fatal(err)
		}
		return resp.SessionID
	}

	s1, s2 := open(), open()
	if _, err := c.SessionInfo(s1); err != nil { // bumps s1's recency over s2
		t.Fatal(err)
	}
	s3 := open() // over cap: evicts s2, the least recently used
	if _, err := c.SessionInfo(s2); !is404(err) {
		t.Fatalf("lru-evicted session: %v, want 404", err)
	}
	for _, id := range []string{s1, s3} {
		if _, err := c.SessionInfo(id); err != nil {
			t.Fatalf("surviving session %s: %v", id, err)
		}
	}

	time.Sleep(80 * time.Millisecond)
	if n := srv.SweepSessions(); n != 2 {
		t.Fatalf("sweep evicted %d sessions, want 2", n)
	}
	if _, err := c.SessionInfo(s1); !is404(err) {
		t.Fatalf("idle-expired session: %v, want 404", err)
	}
}

func is404(err error) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Code == http.StatusNotFound
}

// TestRequestLimitsAndErrors covers the request-shape error surface.
func TestRequestLimitsAndErrors(t *testing.T) {
	_, c := newTestServer(t, Config{MaxRequestBytes: 1024})
	sources, layouts := figure1Maps()

	// Oversized body → 413.
	big := map[string]string{"big.alite": strings.Repeat("// pad\n", 400)}
	_, err := c.Analyze(AnalyzeRequest{Sources: big})
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized request: %v, want 413", err)
	}

	// Unknown report kind → 400.
	_, err = c.Analyze(AnalyzeRequest{Sources: map[string]string{"a.alite": ""},
		ReportSpec: ReportSpec{Report: "nope"}})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("unknown report: %v, want 400", err)
	}

	// Unknown context-sensitivity mode → 400 (never silently insensitive).
	_, err = c.Analyze(AnalyzeRequest{Sources: map[string]string{"a.alite": ""},
		Options: OptionsJSON{ContextSensitivity: "2cfa"}})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("unknown context mode: %v, want 400", err)
	}

	// Empty request → 400.
	_, err = c.Analyze(AnalyzeRequest{})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("empty request: %v, want 400", err)
	}

	// Unparsable source → 422.
	_, err = c.Analyze(AnalyzeRequest{Sources: map[string]string{"bad.alite": "class {{{"}})
	if !errors.As(err, &se) || se.Code != http.StatusUnprocessableEntity {
		t.Fatalf("broken source: %v, want 422", err)
	}

	// Unknown session → 404, on every session verb.
	if _, err := c.SessionInfo("deadbeef"); !is404(err) {
		t.Fatalf("info on unknown session: %v, want 404", err)
	}
	if _, err := c.PatchSession("deadbeef", PatchRequest{}); !is404(err) {
		t.Fatalf("patch on unknown session: %v, want 404", err)
	}
	if err := c.CloseSession("deadbeef"); !is404(err) {
		t.Fatalf("delete of unknown session: %v, want 404", err)
	}

	// A well-formed request still succeeds under the small body limit? No —
	// figure1 exceeds 1KiB; just check health endpoints are unaffected.
	_ = sources
	_ = layouts
	if err := c.Healthz(); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsEndpoint checks /metrics is deterministic, valid JSON with the
// job counters present.
func TestMetricsEndpoint(t *testing.T) {
	_, c := newTestServer(t, Config{})
	sources, layouts := figure1Maps()
	if _, err := c.Analyze(AnalyzeRequest{Name: "m", Sources: sources, Layouts: layouts}); err != nil {
		t.Fatal(err)
	}

	data, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("metrics is not valid JSON: %v\n%s", err, data)
	}
	for _, key := range []string{"server.jobs.admitted", "server.analyze.requests"} {
		if !strings.Contains(string(data), key) {
			t.Fatalf("metrics lacks %s:\n%s", key, data)
		}
	}
	again, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("metrics JSON is not deterministic across idle fetches")
	}
}

// TestBatchSSE drives the streaming batch endpoint with a raw HTTP request
// and checks result events arrive in input order, byte-identical to local
// rendering, with per-app errors isolated.
func TestBatchSSE(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { srv.Drain(); ts.Close() })

	fig1Src, fig1Lay := figure1Maps()
	randSrc, randLay := corpus.RandomApp(7)
	body, _ := json.Marshal(BatchRequest{
		Apps: []AnalyzeRequest{
			{Name: "figure1", Sources: fig1Src, Layouts: fig1Lay},
			{Name: "broken", Sources: map[string]string{"x.alite": "class {{{"}},
			{Name: "rand7", Sources: randSrc, Layouts: randLay},
		},
		ReportSpec: ReportSpec{Report: "views"},
	})
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("batch content-type = %q", ct)
	}

	var results []AnalyzeResponse
	var errEvents, doneEvents int
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<20)
	event := ""
	for scanner.Scan() {
		line := scanner.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "result":
				var r AnalyzeResponse
				if err := json.Unmarshal([]byte(data), &r); err != nil {
					t.Fatal(err)
				}
				results = append(results, r)
			case "error":
				errEvents++
			case "done":
				doneEvents++
			}
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}

	if len(results) != 2 || errEvents != 1 || doneEvents != 1 {
		t.Fatalf("got %d results, %d errors, %d done; want 2/1/1", len(results), errEvents, doneEvents)
	}
	if results[0].Name != "figure1" || results[1].Name != "rand7" {
		t.Fatalf("results out of input order: %s, %s", results[0].Name, results[1].Name)
	}
	_, want, _ := localRender(t, "figure1", fig1Src, fig1Lay, gator.Options{},
		report.Request{Report: "views", Seed: 1})
	if results[0].Output != want {
		t.Fatalf("batch result differs from local\nremote:\n%s\nlocal:\n%s", results[0].Output, want)
	}
	_, want, _ = localRender(t, "rand7", randSrc, randLay, gator.Options{},
		report.Request{Report: "views", Seed: 1})
	if results[1].Output != want {
		t.Fatal("second batch result differs from local")
	}
}

// TestWatchSessionRefresh exercises the client-side session-refresh helper
// against a real directory: an edit on disk is debounced into one PATCH
// whose report matches local analysis of the final content.
func TestWatchSessionRefresh(t *testing.T) {
	_, c := newTestServer(t, Config{})
	dir := t.TempDir()
	sources, layouts := figure1Maps()
	writeAppDir(t, dir, sources, layouts)

	stop := make(chan struct{})
	type outcome struct {
		resp *AnalyzeResponse
		err  error
	}
	got := make(chan outcome, 16)
	watchDone := make(chan error, 1)
	go func() {
		watchDone <- c.WatchSession(stop, dir, watch.Config{Poll: 10 * time.Millisecond, Settle: 30 * time.Millisecond},
			AnalyzeRequest{Name: "watched", ReportSpec: ReportSpec{Report: "views"}},
			gator.ReadAppDir,
			func(r *AnalyzeResponse, err error) { got <- outcome{r, err} })
	}()

	// The initial session-open response.
	first := <-got
	if first.err != nil {
		t.Fatal(first.err)
	}
	_, want, _ := localRender(t, "watched", sources, layouts, gator.Options{},
		report.Request{Report: "views", Seed: 1})
	if first.resp.Output != want {
		t.Fatal("initial watch response differs from local")
	}

	// A burst of writes must coalesce into (at least one, normally one)
	// refresh whose final state matches the last write.
	sources["connectbot.alite"] += "\n// watch edit 1\n"
	writeAppDir(t, dir, sources, layouts)
	sources["connectbot.alite"] += "// watch edit 2\n"
	writeAppDir(t, dir, sources, layouts)

	deadline := time.After(10 * time.Second)
	_, want, _ = localRender(t, "watched", sources, layouts, gator.Options{},
		report.Request{Report: "views", Seed: 1})
	for {
		select {
		case o := <-got:
			if o.err != nil {
				t.Fatal(o.err)
			}
			if o.resp.Output == want {
				close(stop)
				if err := <-watchDone; err != nil {
					t.Fatal(err)
				}
				return
			}
		case <-deadline:
			t.Fatal("watch refresh never converged on the edited content")
		}
	}
}

func writeAppDir(t *testing.T, dir string, sources, layouts map[string]string) {
	t.Helper()
	for name, src := range sources {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if len(layouts) > 0 {
		if err := os.MkdirAll(filepath.Join(dir, "layout"), 0o755); err != nil {
			t.Fatal(err)
		}
		for name, xml := range layouts {
			if err := os.WriteFile(filepath.Join(dir, "layout", name+".xml"), []byte(xml), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// ---- cluster-facing config knobs (PR 9) ----

// memShared is an in-memory cache.SharedStore for tests.
type memShared struct {
	mu sync.Mutex
	m  map[string][]byte
}

func newMemShared() *memShared { return &memShared{m: map[string][]byte{}} }

func (s *memShared) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[key]
	return d, ok
}

func (s *memShared) Put(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
}

// A replica-configured daemon must name itself on every response, and the
// client must be able to read that name back.
func TestReplicaHeader(t *testing.T) {
	srv, err := New(Config{ReplicaID: "r7"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		srv.Drain()
		ts.Close()
	}()
	c := NewClient(ts.URL)
	replica, err := c.Replica()
	if err != nil {
		t.Fatal(err)
	}
	if replica != "r7" {
		t.Fatalf("Replica() = %q, want r7", replica)
	}
	// Analysis responses carry it too.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"sources":{"a.alite":"class A {}"}}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(ReplicaHeader); got != "r7" {
		t.Fatalf("analyze response replica header = %q, want r7", got)
	}

	// A plain daemon sends none, and Replica() reports that as "".
	_, plain := newTestServer(t, Config{})
	if replica, err := plain.Replica(); err != nil || replica != "" {
		t.Fatalf("plain daemon Replica() = %q, %v; want \"\"", replica, err)
	}
}

// The shared tier sits behind memory and disk: a daemon whose local
// caches are cold must replay an entry some other daemon put there, and
// write its own solves through.
func TestSharedStoreTier(t *testing.T) {
	shared := newMemShared()
	srvA, cA := newTestServer(t, Config{Shared: shared})
	sources, layouts := figure1Maps()
	req := AnalyzeRequest{Name: "fig1", Sources: sources, Layouts: layouts,
		ReportSpec: ReportSpec{Report: "views"}}

	first, err := cA.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("cold analyze claims cached")
	}
	if len(shared.m) == 0 {
		t.Fatal("solve was not written through to the shared store")
	}
	_ = srvA

	// A second daemon with the same shared store but cold local tiers.
	srvB, cB := newTestServer(t, Config{Shared: shared})
	second, err := cB.Analyze(req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("cold daemon missed the shared tier")
	}
	if second.Output != first.Output || second.ExitCode != first.ExitCode {
		t.Fatal("shared-tier replay differs from the original solve")
	}
	snap := srvB.Registry().Snapshot()
	if snap.Counters["server.cache.shared_hits"] != 1 {
		t.Fatalf("shared_hits = %d, want 1", snap.Counters["server.cache.shared_hits"])
	}
}

// ServiceDelay must stretch a job by at least the configured time — the
// cluster benchmark's scaling floor depends on it being a real floor.
func TestServiceDelay(t *testing.T) {
	_, c := newTestServer(t, Config{ServiceDelay: 30 * time.Millisecond})
	start := time.Now()
	if _, err := c.Analyze(AnalyzeRequest{
		Sources: map[string]string{"a.alite": "class A {}"},
		NoCache: true,
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Fatalf("analyze with 30ms ServiceDelay finished in %v", elapsed)
	}
}

// Package server is the analysis-as-a-service layer: a long-running HTTP
// daemon (cmd/gatord) serving the full gator pipeline — cold submissions,
// content-addressed result replay, warm incremental sessions, streaming
// batch analysis — with bounded admission, per-job deadlines, panic
// isolation, and graceful drain. The serving layer adds no analysis
// semantics of its own: every report is rendered by internal/report from a
// *gator.Result, so remote output is byte-identical to the local CLI's
// (the contract server tests verify; see DESIGN.md, "Serving").
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"log/slog"

	"gator"
	"gator/internal/cache"
	"gator/internal/metrics"
	"gator/internal/report"
	"gator/internal/telemetry"
)

// Config tunes the daemon; the zero value serves with sane defaults.
type Config struct {
	// Workers bounds concurrent analyses (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs admitted but not yet running (default 64).
	// Past it, submissions get 429 + Retry-After.
	QueueDepth int
	// MaxRequestBytes bounds request bodies (default 16 MiB → 413 past it).
	MaxRequestBytes int64
	// JobTimeout bounds one job's queue wait plus execution (default 60s →
	// 504 past it).
	JobTimeout time.Duration
	// SessionTTL evicts sessions idle longer than this (default 30m).
	SessionTTL time.Duration
	// MaxSessions caps live sessions; creating past it evicts the least
	// recently used (default 256).
	MaxSessions int
	// CacheDir, when set, persists rendered reports on disk so identical
	// submissions replay across daemon restarts.
	CacheDir string
	// CacheMaxBytes bounds the disk cache (LRU eviction; <= 0 unbounded).
	CacheMaxBytes int64
	// ResultCacheBytes bounds the in-memory result cache (default 64 MiB).
	ResultCacheBytes int64
	// RetryAfter is the Retry-After hint on 429 responses (default 1s).
	RetryAfter time.Duration
	// Logger receives one structured line per request (plus rejection and
	// panic diagnostics). nil disables request logging; metrics and trace
	// propagation are unaffected.
	Logger *slog.Logger
	// TraceSample enables head-based solver trace capture: every Nth
	// analysis-bearing request records its solver trace into the debug
	// ring (0 disables sampling; ?trace=1 always captures).
	TraceSample int
	// TraceRingEntries / TraceRingBytes bound the ring of captured solver
	// traces behind /v1/debug/traces (defaults 64 entries, 16 MiB).
	TraceRingEntries int
	TraceRingBytes   int64
	// NoTelemetry turns the request telemetry layer off — no middleware,
	// no span propagation, no per-request metrics or logs. The overhead
	// benchmark (gatorbench -obsjson) serves this as its baseline.
	NoTelemetry bool
	// ReplicaID, when set, names this daemon as one replica of a cluster:
	// every response carries it in an X-Gator-Replica header so clients
	// and the routing proxy can see which node actually served them.
	ReplicaID string
	// Shared, when set, is a cluster-shared content-addressed result tier
	// (gatorproxy's /v1/cache) consulted after the memory and disk tiers
	// miss and written through on every cacheable solve — one replica's
	// solve becomes every replica's replay. Implementations fail open.
	Shared cache.SharedStore
	// ServiceDelay, when positive, sleeps each analysis job for this long
	// before solving. It is a benchmark-only knob: the cluster throughput
	// benchmark (gatorbench -clusterjson) uses it to model a fixed remote
	// service time so replica scaling is measurable — and reproducible —
	// on any core count, including single-core CI runners. Production
	// configs leave it zero.
	ServiceDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 16 << 20
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 30 * time.Minute
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Server is the daemon's state. Create with New, serve Handler(), stop
// with Drain.
type Server struct {
	cfg      Config
	reg      *metrics.Registry
	jobs     *jobRunner
	sessions *sessionStore
	results  *cache.ResultCache
	disk     *cache.DiskStore
	appCache *gator.Cache // shared parse cache across requests and sessions
	mux      *http.ServeMux
	handler  http.Handler // mux wrapped in telemetry middleware
	ready    atomic.Bool

	// Telemetry state: obs mirrors !cfg.NoTelemetry, log is the request
	// logger, traces the captured-solver-trace ring, and sampleSeq the
	// head-sampling request counter.
	obs       bool
	log       *slog.Logger
	traces    *telemetry.TraceRing
	sampleSeq atomic.Int64
}

// New builds a server from cfg.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	reg := metrics.NewRegistry()
	obs := !cfg.NoTelemetry
	var queueHist *metrics.Histogram
	if obs {
		// nil histogram = allocation-free no-op in the runner when
		// telemetry is off.
		queueHist = reg.Histogram(stageQueueName)
	}
	s := &Server{
		cfg:      cfg,
		reg:      reg,
		jobs:     newJobRunner(cfg.Workers, cfg.QueueDepth, cfg.JobTimeout, reg, queueHist),
		sessions: newSessionStore(cfg.MaxSessions, cfg.SessionTTL, reg),
		results:  cache.NewResultCache(cfg.ResultCacheBytes),
		appCache: gator.NewCache(),
		obs:      obs,
		log:      cfg.Logger,
		traces:   telemetry.NewTraceRing(cfg.TraceRingEntries, cfg.TraceRingBytes),
	}
	if cfg.CacheDir != "" {
		store, err := cache.OpenDiskStore(cfg.CacheDir, cfg.CacheMaxBytes)
		if err != nil {
			return nil, err
		}
		s.disk = store
	}
	if obs {
		// Callback gauges: live values owned by other subsystems, sampled
		// at scrape time.
		reg.GaugeFunc("jobs.queue_depth", func() int64 { return int64(len(s.jobs.queue)) })
		reg.GaugeFunc("sessions.active", func() int64 { return int64(s.sessions.len()) })
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = s.mux
	if obs {
		s.handler = s.withTelemetry(s.mux)
	}
	if cfg.ReplicaID != "" {
		// Outermost layer so even telemetry-rejected responses carry the
		// replica identity.
		inner := s.handler
		s.handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set(ReplicaHeader, cfg.ReplicaID)
			inner.ServeHTTP(w, r)
		})
	}
	s.ready.Store(true)
	return s, nil
}

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics.json", s.handleMetricsJSON)
	s.mux.HandleFunc("GET /v1/debug/traces/{id}", s.handleDebugTrace)
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionInfo)
	s.mux.HandleFunc("PATCH /v1/sessions/{id}", s.handleSessionPatch)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the daemon's HTTP handler: the route mux wrapped in the
// telemetry middleware (unless Config.NoTelemetry).
func (s *Server) Handler() http.Handler { return s.handler }

// Registry exposes the server's metrics registry (served at /metrics).
func (s *Server) Registry() *metrics.Registry { return s.reg }

// Ready reports whether the server is accepting work (false once draining).
func (s *Server) Ready() bool { return s.ready.Load() }

// Drain performs graceful shutdown of the analysis side: /readyz starts
// failing (load balancers stop routing), new and queued jobs are rejected
// with 503, and Drain returns once in-flight jobs finish. The HTTP
// listener itself is the caller's to close (http.Server.Shutdown).
func (s *Server) Drain() {
	s.ready.Store(false)
	s.jobs.drain()
}

// SweepSessions evicts idle-expired sessions; the daemon calls it
// periodically.
func (s *Server) SweepSessions() int { return s.sessions.sweep(time.Now()) }

// ---- wire types ----

// OptionsJSON mirrors gator.Options for the wire (solution-changing knobs
// only; provenance is requested implicitly by explain queries or
// explicitly for sessions that will be asked to explain).
type OptionsJSON struct {
	FilterCasts           bool `json:"filterCasts,omitempty"`
	SharedInflation       bool `json:"sharedInflation,omitempty"`
	NoFindView3Refinement bool `json:"noFindView3,omitempty"`
	DeclaredDispatchOnly  bool `json:"declaredDispatchOnly,omitempty"`
	Context1              bool `json:"context1,omitempty"`
	// ContextSensitivity selects the cloning-based context mode:
	// "off" (or empty), "1cfa", or "1obj".
	ContextSensitivity string `json:"contextSensitivity,omitempty"`
	Provenance         bool   `json:"provenance,omitempty"`
}

func (o OptionsJSON) toOptions() gator.Options {
	ctx, _ := gator.ParseCtxMode(o.ContextSensitivity)
	return gator.Options{
		FilterCasts:           o.FilterCasts,
		SharedInflation:       o.SharedInflation,
		NoFindView3Refinement: o.NoFindView3Refinement,
		DeclaredDispatchOnly:  o.DeclaredDispatchOnly,
		Context1:              o.Context1,
		ContextSensitivity:    ctx,
		Provenance:            o.Provenance,
	}
}

// ReportSpec selects a report surface (mirrors internal/report.Request).
type ReportSpec struct {
	// Report is the report kind (report.Kinds); "" means "summary".
	Report string `json:"report,omitempty"`
	// Explain renders derivation trees instead: "Class.method.var" or
	// "id:name". Implies provenance.
	Explain string `json:"explain,omitempty"`
	// Seed seeds the "explore" report's interpreter (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Checks restricts the "checks"/"sarif" reports to the named IDs.
	Checks []string `json:"checks,omitempty"`
}

func (rs ReportSpec) request() report.Request {
	seed := rs.Seed
	if seed == 0 {
		seed = 1
	}
	return report.Request{Report: rs.Report, Explain: rs.Explain, Seed: seed, Checks: rs.Checks}
}

// AnalyzeRequest is the body of POST /v1/analyze and POST /v1/sessions.
type AnalyzeRequest struct {
	// Name labels the application in reports (default "app").
	Name string `json:"name,omitempty"`
	// Sources maps file name → ALite source; Layouts maps layout name →
	// XML (the same maps gator.Load takes).
	Sources map[string]string `json:"sources"`
	Layouts map[string]string `json:"layouts,omitempty"`
	// Options are the analysis options, fixed per session.
	Options OptionsJSON `json:"options,omitempty"`
	ReportSpec
	// NoCache skips the content-addressed result caches (for benchmarking
	// and for callers that want a guaranteed fresh solve).
	NoCache bool `json:"noCache,omitempty"`
}

// PatchRequest is the body of PATCH /v1/sessions/{id}: an edit to the
// session's inputs plus the report to render from the warm re-analysis.
type PatchRequest struct {
	// Sources/Layouts merge into the session's current inputs (file →
	// new content); RemoveSources/RemoveLayouts delete files.
	Sources       map[string]string `json:"sources,omitempty"`
	Layouts       map[string]string `json:"layouts,omitempty"`
	RemoveSources []string          `json:"removeSources,omitempty"`
	RemoveLayouts []string          `json:"removeLayouts,omitempty"`
	// Replace, when true, treats Sources/Layouts as the complete new
	// input instead of a merge (what a directory-watching client sends).
	Replace bool `json:"replace,omitempty"`
	ReportSpec
}

// IncrementalInfo mirrors gator.IncrementalStats on the wire.
type IncrementalInfo struct {
	Mode       string   `json:"mode"`
	Reason     string   `json:"reason,omitempty"`
	Retained   int      `json:"retained,omitempty"`
	Retracted  int      `json:"retracted,omitempty"`
	DirtyUnits []string `json:"dirtyUnits,omitempty"`
}

// AnalyzeResponse is the result of any analysis-bearing endpoint.
type AnalyzeResponse struct {
	Name   string `json:"name"`
	Report string `json:"report"`
	// ExitCode is what the local CLI would have exited with for this
	// report: 0 ok, 1 report-level failure (warnings, soundness
	// violation), matching the byte-identity contract.
	ExitCode int `json:"exitCode"`
	// Output is the rendered report, byte-identical to local rendering.
	Output string `json:"output"`
	// Stderr carries report-level diagnostics ("" normally).
	Stderr string `json:"stderr,omitempty"`
	// Cached marks a content-addressed replay (no solver work).
	Cached bool `json:"cached"`
	// ElapsedMs is the analysis wall time (0 for cached replays).
	ElapsedMs float64 `json:"elapsedMs"`
	// SessionID is set by session endpoints.
	SessionID string `json:"sessionId,omitempty"`
	// TraceID is set when this request's solver trace was captured
	// (?trace=1 or head sampling); fetch the events at
	// GET /v1/debug/traces/{traceId}.
	TraceID string `json:"traceId,omitempty"`
	// Incremental is set by session endpoints: how the solution was
	// computed (warm/scratch/unchanged).
	Incremental *IncrementalInfo `json:"incremental,omitempty"`
}

// SessionInfo is the body of GET /v1/sessions/{id}.
type SessionInfo struct {
	SessionID string      `json:"sessionId"`
	Name      string      `json:"name"`
	Sources   []string    `json:"sources"`
	Layouts   []string    `json:"layouts,omitempty"`
	Patches   int         `json:"patches"`
	Options   OptionsJSON `json:"options"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// ---- shared handler plumbing ----

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// writeJobError maps job-subsystem failures to HTTP semantics. Rejections
// count into requests_rejected_total{reason} and log with the request's
// trace id, so a drained or saturated daemon is visible in both the scrape
// and the log stream.
func (s *Server) writeJobError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, errBusy):
		s.rejectRequest(r, "busy")
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(s.cfg.RetryAfter.Seconds()+0.5)))
		writeError(w, http.StatusTooManyRequests, "analysis queue is full; retry later")
	case errors.Is(err, errDraining):
		s.rejectRequest(r, "draining")
		writeError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "analysis exceeded the job deadline")
	case errors.Is(err, context.Canceled):
		// The client has gone; the status is best-effort.
		writeError(w, http.StatusRequestTimeout, "request canceled")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// decodeBody decodes a size-limited JSON body, reporting (false, handled)
// on failure.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reg.Add("server.requests.too_large", 1)
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// validateSpec rejects unknown report kinds up front.
func validateSpec(w http.ResponseWriter, spec ReportSpec) bool {
	if spec.Explain == "" && spec.Report != "" && !report.Known(spec.Report) {
		writeError(w, http.StatusBadRequest, "unknown report %q (known: %s)",
			spec.Report, strings.Join(report.Kinds(), ", "))
		return false
	}
	return true
}

// validateOptions rejects unknown option enum values up front — a typo'd
// context mode must fail the request, not silently analyze insensitively.
func validateOptions(w http.ResponseWriter, o OptionsJSON) bool {
	if _, ok := gator.ParseCtxMode(o.ContextSensitivity); !ok {
		writeError(w, http.StatusBadRequest, "unknown contextSensitivity %q (known: off, 1cfa, 1obj)",
			o.ContextSensitivity)
		return false
	}
	return true
}

// rendered is one analysis outcome: the rendered report plus metadata.
type rendered struct {
	code    int
	out     []byte
	errText string
	elapsed time.Duration
	loadErr error
}

// render runs one report over a solved result.
func renderResult(name string, res *gator.Result, req report.Request) rendered {
	var out, errBuf bytes.Buffer
	code := report.Render(&out, &errBuf, name, res, req)
	return rendered{code: code, out: out.Bytes(), errText: errBuf.String(), elapsed: res.Elapsed()}
}

func (rd rendered) response(name string, spec ReportSpec) AnalyzeResponse {
	return AnalyzeResponse{
		Name:      name,
		Report:    spec.request().Kind(),
		ExitCode:  rd.code,
		Output:    string(rd.out),
		Stderr:    rd.errText,
		ElapsedMs: float64(rd.elapsed) / float64(time.Millisecond),
	}
}

// ---- operational endpoints ----

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.Ready() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves Prometheus text exposition by default; an Accept
// header asking for application/json gets the legacy JSON rendering
// (also always available at /metrics.json).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if strings.Contains(r.Header.Get("Accept"), "application/json") {
		s.handleMetricsJSON(w, r)
		return
	}
	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, s.reg.Snapshot(), "gatord"); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	data, err := s.reg.JSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

// ---- one-shot analysis ----

// cacheKey fingerprints a request for the content-addressed result caches;
// "" when the request is not cacheable (unstable report, explicit opt-out).
func (s *Server) cacheKey(req AnalyzeRequest) string {
	spec := req.request()
	if req.NoCache || spec.Explain != "" || !report.Stable(spec.Kind()) {
		return ""
	}
	tag := fmt.Sprintf("%s|report=%s|seed=%d|checks=%s",
		req.Options.toOptions().CacheTag(), spec.Kind(), spec.Seed, strings.Join(spec.Checks, ","))
	return cache.AppFingerprint(tag, req.Sources, req.Layouts)
}

// cacheGet replays a stored entry (one exit-code digit + rendered bytes).
func (s *Server) cacheGet(key string) (rendered, bool) {
	if key == "" {
		return rendered{}, false
	}
	data, hit := s.results.Get(key)
	if !hit && s.disk != nil {
		if d, ok := s.disk.Get(key); ok {
			data, hit = d, true
			s.results.Put(key, data) // promote to the memory tier
			s.reg.Add("server.cache.disk_hits", 1)
		}
	}
	if !hit && s.cfg.Shared != nil {
		// Cluster tier: a hit means some replica already solved these exact
		// bytes. Promote locally so the next replay skips the network.
		if d, ok := s.cfg.Shared.Get(key); ok && len(d) > 0 {
			data, hit = d, true
			s.results.Put(key, data)
			s.reg.Add("server.cache.shared_hits", 1)
		}
	}
	if !hit || len(data) == 0 {
		s.reg.Add("server.cache.misses", 1)
		return rendered{}, false
	}
	s.reg.Add("server.cache.hits", 1)
	return rendered{code: int(data[0] - '0'), out: data[1:]}, true
}

func (s *Server) cachePut(key string, rd rendered) {
	// Only clean outcomes are replayable: diagnostics would be lost.
	if key == "" || rd.code > 1 || rd.errText != "" {
		return
	}
	entry := append([]byte{byte('0' + rd.code)}, rd.out...)
	s.results.Put(key, entry)
	if s.disk != nil {
		s.disk.Put(key, entry)
	}
	if s.cfg.Shared != nil {
		s.cfg.Shared.Put(key, entry)
	}
}

// serviceDelay models a fixed per-job service time; see
// Config.ServiceDelay. A no-op outside the cluster benchmark.
func (s *Server) serviceDelay() {
	if s.cfg.ServiceDelay > 0 {
		time.Sleep(s.cfg.ServiceDelay)
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("server.analyze.requests", 1)
	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Sources) == 0 {
		writeError(w, http.StatusBadRequest, "no sources in request")
		return
	}
	if !validateSpec(w, req.ReportSpec) {
		return
	}
	if !validateOptions(w, req.Options) {
		return
	}
	name := req.Name
	if name == "" {
		name = "app"
	}

	key := s.cacheKey(req)
	// An explicit ?trace=1 wants a solver trace, which a cache replay
	// cannot produce — bypass the replay and run the solver.
	if rd, ok := s.cacheGet(key); ok && !s.forceTrace(r) {
		resp := rd.response(name, req.ReportSpec)
		resp.Cached = true
		resp.ElapsedMs = 0
		writeJSON(w, http.StatusOK, resp)
		return
	}

	opts := req.Options.toOptions()
	if req.Explain != "" {
		opts.Provenance = true
	}
	sink, scope, traceID := s.captureScope(r, name)
	opts.Trace = scope
	start := time.Now()
	var rd rendered
	err := s.jobs.do(r.Context(), func() {
		s.serviceDelay()
		loadStart := time.Now()
		app, err := gator.LoadCached(req.Sources, req.Layouts, s.appCache)
		if err != nil {
			rd.loadErr = err
			return
		}
		s.observeStage(stageParseName, time.Since(loadStart))
		app.Name = name
		solveStart := time.Now()
		res := app.Analyze(opts)
		s.observeStage(stageSolveName, time.Since(solveStart))
		renderStart := time.Now()
		rd = renderResult(name, res, req.request())
		s.observeStage(stageRenderName, time.Since(renderStart))
	})
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	if rd.loadErr != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", rd.loadErr)
		return
	}
	s.reg.Observe("server.analyze.latency_us", time.Since(start).Microseconds())
	s.cachePut(key, rd)
	resp := rd.response(name, req.ReportSpec)
	if sink != nil {
		s.storeTrace(traceID, sink)
		resp.TraceID = traceID
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- sessions ----

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("server.sessions.create_requests", 1)
	var req AnalyzeRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Sources) == 0 {
		writeError(w, http.StatusBadRequest, "no sources in request")
		return
	}
	if !validateSpec(w, req.ReportSpec) {
		return
	}
	if !validateOptions(w, req.Options) {
		return
	}
	name := req.Name
	if name == "" {
		name = "app"
	}
	opts := req.Options.toOptions()
	if req.Explain != "" {
		opts.Provenance = true
	}

	sess := &session{
		id:      newSessionID(),
		name:    name,
		opts:    opts,
		sources: copyMap(req.Sources),
		layouts: copyMap(req.Layouts),
	}
	sink, scope, traceID := s.captureScope(r, name)
	var rd rendered
	var incr gator.IncrementalStats
	err := s.jobs.do(r.Context(), func() {
		s.serviceDelay()
		solveOpts := sess.opts
		solveOpts.Trace = scope
		solveStart := time.Now()
		res, err := gator.AnalyzeIncremental(nil, sess.sources, sess.layouts, solveOpts, s.appCache)
		if err != nil {
			rd.loadErr = err
			return
		}
		s.observeStage(stageSolveName, time.Since(solveStart))
		res.SetAppName(name)
		sess.prev = res
		incr = res.Incremental()
		renderStart := time.Now()
		rd = renderResult(name, res, req.request())
		s.observeStage(stageRenderName, time.Since(renderStart))
	})
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	if rd.loadErr != nil {
		writeError(w, http.StatusUnprocessableEntity, "%v", rd.loadErr)
		return
	}
	s.sessions.add(sess)
	resp := rd.response(name, req.ReportSpec)
	resp.SessionID = sess.id
	resp.Incremental = incrInfo(incr)
	if sink != nil {
		s.storeTrace(traceID, sink)
		resp.TraceID = traceID
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleSessionInfo(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session (evicted or never created)")
		return
	}
	sess.mu.Lock()
	info := SessionInfo{
		SessionID: sess.id,
		Name:      sess.name,
		Patches:   sess.patches,
		Options:   optionsJSON(sess.opts),
	}
	for n := range sess.sources {
		info.Sources = append(info.Sources, n)
	}
	for n := range sess.layouts {
		info.Layouts = append(info.Layouts, n)
	}
	sess.mu.Unlock()
	sort.Strings(info.Sources)
	sort.Strings(info.Layouts)
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if !s.sessions.remove(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSessionPatch(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("server.sessions.patch_requests", 1)
	sess, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such session (evicted or never created)")
		return
	}
	var req PatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if !validateSpec(w, req.ReportSpec) {
		return
	}
	if req.Explain != "" && !sess.opts.Provenance {
		writeError(w, http.StatusUnprocessableEntity,
			"session was created without provenance; recreate it with options.provenance or an explain query")
		return
	}

	sink, scope, traceID := s.captureScope(r, sess.name)
	var rd rendered
	var incr gator.IncrementalStats
	var patchErr error
	start := time.Now()
	err := s.jobs.do(r.Context(), func() {
		s.serviceDelay()
		// The per-session lock serializes concurrent patches: the second
		// waits for the first instead of tripping over a consumed result.
		sess.mu.Lock()
		defer sess.mu.Unlock()
		sources, layouts := patchedInputs(sess, req)
		// Trace on a copy: the session's stored options stay scope-free.
		solveOpts := sess.opts
		solveOpts.Trace = scope
		solveStart := time.Now()
		res, err := gator.AnalyzeIncremental(sess.prev, sources, layouts, solveOpts, s.appCache)
		if err != nil {
			// A consumed previous result cannot be analyzed again; drop it
			// so the next patch recovers with a scratch solve.
			if errors.Is(err, gator.ErrStaleResult) || (sess.prev != nil && sess.prev.Stale()) {
				sess.prev = nil
			}
			patchErr = err
			return
		}
		s.observeStage(stageSolveName, time.Since(solveStart))
		res.SetAppName(sess.name)
		sess.prev = res
		sess.sources = sources
		sess.layouts = layouts
		sess.patches++
		incr = res.Incremental()
		switch incr.Mode {
		case "warm":
			s.reg.Add("server.sessions.warm", 1)
		case "scratch":
			s.reg.Add("server.sessions.scratch", 1)
		}
		renderStart := time.Now()
		rd = renderResult(sess.name, res, req.request())
		s.observeStage(stageRenderName, time.Since(renderStart))
	})
	if err != nil {
		s.writeJobError(w, r, err)
		return
	}
	if patchErr != nil {
		if errors.Is(patchErr, gator.ErrStaleResult) {
			// HTTP mapping of the ErrStaleResult contract: the session's
			// previous solution was consumed by a concurrent writer.
			writeError(w, http.StatusConflict, "%v", patchErr)
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "%v", patchErr)
		return
	}
	s.reg.Observe("server.sessions.patch_latency_us", time.Since(start).Microseconds())
	resp := rd.response(sess.name, req.ReportSpec)
	resp.SessionID = sess.id
	resp.Incremental = incrInfo(incr)
	if sink != nil {
		s.storeTrace(traceID, sink)
		resp.TraceID = traceID
	}
	writeJSON(w, http.StatusOK, resp)
}

// patchedInputs applies one edit to a session's inputs (session lock held).
func patchedInputs(sess *session, req PatchRequest) (sources, layouts map[string]string) {
	if req.Replace {
		return copyMap(req.Sources), copyMap(req.Layouts)
	}
	sources, layouts = sess.snapshotInputs()
	for n, src := range req.Sources {
		sources[n] = src
	}
	for _, n := range req.RemoveSources {
		delete(sources, n)
	}
	for n, xml := range req.Layouts {
		layouts[n] = xml
	}
	for _, n := range req.RemoveLayouts {
		delete(layouts, n)
	}
	return sources, layouts
}

// ---- streaming batch ----

// BatchRequest is the body of POST /v1/batch: several applications
// analyzed as one parallel batch, progress streamed as server-sent events.
type BatchRequest struct {
	Apps    []AnalyzeRequest `json:"apps"`
	Options OptionsJSON      `json:"options,omitempty"`
	ReportSpec
}

// BatchProgress is one SSE "progress" event: a serialized
// gator.ProgressEvent.
type BatchProgress struct {
	Index  int    `json:"index"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
	Name   string `json:"name"`
	Worker int    `json:"worker"`
	Err    string `json:"err,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.reg.Add("server.batch.requests", 1)
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if len(req.Apps) == 0 {
		writeError(w, http.StatusBadRequest, "no apps in request")
		return
	}
	if !validateSpec(w, req.ReportSpec) {
		return
	}
	if !validateOptions(w, req.Options) {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	inputs := make([]gator.BatchInput, len(req.Apps))
	for i, a := range req.Apps {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("app%d", i)
		}
		inputs[i] = gator.BatchInput{Name: name, Sources: a.Sources, Layouts: a.Layouts}
	}

	// The job owns the response writer until it completes (doStream never
	// abandons a running job), so streaming from inside the worker is safe.
	err := s.jobs.doStream(r.Context(), func() {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)
		sse := func(event string, v any) {
			data, _ := json.Marshal(v)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
			flusher.Flush()
		}
		batch := gator.AnalyzeBatch(inputs, gator.BatchOptions{
			Workers: s.cfg.Workers,
			Options: req.Options.toOptions(),
			Cache:   s.appCache,
			Progress: func(ev gator.ProgressEvent) {
				p := BatchProgress{Index: ev.Index, Done: ev.Done, Total: ev.Total, Name: ev.Name, Worker: ev.Worker}
				if ev.Err != nil {
					p.Err = ev.Err.Error()
				}
				sse("progress", p)
			},
		})
		for _, rep := range batch.Apps {
			if rep.Err != nil {
				sse("error", ErrorResponse{Error: rep.Err.Error()})
				continue
			}
			rd := renderResult(rep.Name, rep.Result, req.request())
			sse("result", rd.response(rep.Name, req.ReportSpec))
		}
		sse("done", BatchProgress{Total: len(inputs), Done: len(inputs)})
	})
	if err != nil {
		// Nothing has been written yet only on admission failures; panics
		// mid-stream surface as a final error event attempt.
		if errors.Is(err, errBusy) || errors.Is(err, errDraining) {
			s.writeJobError(w, r, err)
			return
		}
		fmt.Fprintf(w, "event: error\ndata: %s\n\n", mustJSON(ErrorResponse{Error: err.Error()}))
		flusher.Flush()
	}
}

// ---- small helpers ----

func mustJSON(v any) []byte {
	data, _ := json.Marshal(v)
	return data
}

func copyMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func incrInfo(st gator.IncrementalStats) *IncrementalInfo {
	return &IncrementalInfo{
		Mode:       st.Mode,
		Reason:     st.Reason,
		Retained:   st.Retained,
		Retracted:  st.Retracted,
		DirtyUnits: st.DirtyUnits,
	}
}

func optionsJSON(o gator.Options) OptionsJSON {
	ctx := ""
	if o.ContextSensitivity != gator.CtxOff {
		ctx = o.ContextSensitivity.String()
	}
	return OptionsJSON{
		FilterCasts:           o.FilterCasts,
		SharedInflation:       o.SharedInflation,
		NoFindView3Refinement: o.NoFindView3Refinement,
		DeclaredDispatchOnly:  o.DeclaredDispatchOnly,
		Context1:              o.Context1,
		ContextSensitivity:    ctx,
		Provenance:            o.Provenance,
	}
}

package server

// Deterministic unit tests of the job subsystem's concurrency contract:
// blocking jobs are gated on channels, so admission, backpressure, drain,
// timeout-abandonment, and panic isolation are exercised without sleeps or
// timing assumptions. Run under -race (scripts/ci.sh does).

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"gator/internal/metrics"
)

// blockingJob submits a job that parks until gate closes and waits until a
// worker has actually started it, so later assertions about "in-flight"
// versus "queued" are deterministic.
func blockingJob(t *testing.T, r *jobRunner, gate <-chan struct{}) *job {
	t.Helper()
	started := make(chan struct{})
	j := &job{ctx: context.Background(), fn: func() { close(started); <-gate }, done: make(chan struct{})}
	if err := r.submit(j); err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never started the blocking job")
	}
	return j
}

func waitDone(t *testing.T, j *job) error {
	t.Helper()
	select {
	case <-j.done:
		return j.err
	case <-time.After(10 * time.Second):
		t.Fatal("job never completed")
		return nil
	}
}

func TestJobsBackpressureBusy(t *testing.T) {
	r := newJobRunner(1, 1, 0, metrics.NewRegistry(), nil)
	gate := make(chan struct{})
	defer close(gate)

	_ = blockingJob(t, r, gate) // occupies the only worker
	filler := &job{ctx: context.Background(), fn: func() { <-gate }, done: make(chan struct{})}
	if err := r.submit(filler); err != nil { // fills the single queue slot
		t.Fatalf("submit filler: %v", err)
	}

	j := &job{ctx: context.Background(), fn: func() {}, done: make(chan struct{})}
	if err := r.submit(j); !errors.Is(err, errBusy) {
		t.Fatalf("submit with full queue: got %v, want errBusy", err)
	}
}

func TestJobsDrainInFlightFinishesQueuedRejected(t *testing.T) {
	r := newJobRunner(1, 4, 0, metrics.NewRegistry(), nil)
	gate := make(chan struct{})

	inflight := blockingJob(t, r, gate)
	// queued sits behind inflight: the only worker is (or will be) parked on
	// the gate, so it cannot start before drain flips.
	queued := &job{ctx: context.Background(), fn: func() {}, done: make(chan struct{})}
	if err := r.submit(queued); err != nil {
		t.Fatalf("submit queued: %v", err)
	}

	drained := make(chan struct{})
	go func() { r.drain(); close(drained) }()

	// Drain must reject new submissions immediately, even while blocked on
	// the in-flight job.
	for {
		err := r.submit(&job{ctx: context.Background(), fn: func() {}, done: make(chan struct{})})
		if errors.Is(err, errDraining) {
			break
		}
		time.Sleep(time.Millisecond) // drain goroutine not scheduled yet
	}

	select {
	case <-drained:
		t.Fatal("drain returned while a job was still in flight")
	default:
	}

	close(gate) // let the in-flight job finish
	if err := waitDone(t, inflight); err != nil {
		t.Fatalf("in-flight job during drain: %v, want nil", err)
	}
	if err := waitDone(t, queued); !errors.Is(err, errDraining) {
		t.Fatalf("queued job during drain: %v, want errDraining", err)
	}
	select {
	case <-drained:
	case <-time.After(10 * time.Second):
		t.Fatal("drain never returned")
	}

	// drain is idempotent.
	r.drain()
}

func TestJobsPanicIsolated(t *testing.T) {
	r := newJobRunner(1, 4, 0, metrics.NewRegistry(), nil)
	defer r.drain()

	err := r.do(context.Background(), func() { panic("boom") })
	var pe *panicError
	if !errors.As(err, &pe) {
		t.Fatalf("panicking job: %v, want panicError", err)
	}
	if got := pe.Error(); !strings.Contains(got, "boom") {
		t.Fatalf("panic error lacks the panic value: %q", got)
	}
	// The worker survived the panic and still runs jobs.
	ran := false
	if err := r.do(context.Background(), func() { ran = true }); err != nil || !ran {
		t.Fatalf("job after panic: err=%v ran=%v", err, ran)
	}
}

func TestJobsDeadlineAbandons(t *testing.T) {
	r := newJobRunner(1, 4, 10*time.Millisecond, metrics.NewRegistry(), nil)
	gate := make(chan struct{})

	err := r.do(context.Background(), func() { <-gate })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked job past deadline: %v, want DeadlineExceeded", err)
	}
	close(gate) // the abandoned job still finishes; drain waits for it
	r.drain()
}

func TestJobsExpiredInQueueSkipped(t *testing.T) {
	r := newJobRunner(1, 4, 0, metrics.NewRegistry(), nil)
	gate := make(chan struct{})
	inflight := blockingJob(t, r, gate)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired before a worker ever sees it
	ran := false
	j := &job{ctx: ctx, fn: func() { ran = true }, done: make(chan struct{})}
	if err := r.submit(j); err != nil {
		t.Fatalf("submit: %v", err)
	}

	close(gate)
	if err := waitDone(t, inflight); err != nil {
		t.Fatalf("inflight: %v", err)
	}
	if err := waitDone(t, j); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired job: %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("expired job's fn ran anyway")
	}
	r.drain()
}

// Package checks implements analysis-backed static error checkers for
// Android GUI code — the "static error checking" application of Section 6
// of the paper. Each checker inspects the solved reference analysis
// (package core) for GUI misuse patterns that are invisible to a purely
// syntactic linter because they depend on which views flow where.
//
// Checkers are registered as passes with stable IDs. Solution passes query
// only the flow-insensitive fixpoint; CFG passes additionally consume
// per-method control-flow graphs (package cfg) and forward dataflow results
// (package dataflow), which lets them see statement ordering — e.g. a
// findViewById that runs before setContentView on some path. The driver in
// package analysis selects, orders, times, and renders passes.
package checks

import (
	"fmt"
	"sort"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/graph"
	"gator/internal/platform"
)

// Severity grades findings.
type Severity int

const (
	// Info marks findings that are usually intentional but worth review.
	Info Severity = iota
	// Warning marks likely defects.
	Warning
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "info"
}

// Finding is one reported issue.
type Finding struct {
	// Check is the checker identifier (kebab-case).
	Check string
	// Severity grades the finding.
	Severity Severity
	// Pos locates the finding when a source position exists.
	Pos alite.Pos
	// Msg describes the issue and its consequence.
	Msg string
	// SuggestedFix is an optional one-line remediation hint.
	SuggestedFix string
}

func (f Finding) String() string {
	if f.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: [%s] %s", f.Pos, f.Severity, f.Check, f.Msg)
	}
	return fmt.Sprintf("%s: [%s] %s", f.Severity, f.Check, f.Msg)
}

// PassKind orders passes by what they consume: solution passes need only
// the flow-insensitive fixpoint, CFG passes additionally need control-flow
// graphs and dataflow solutions. The driver runs all solution passes before
// any CFG pass, so cheap whole-solution diagnostics surface even if a CFG
// pass later fails an assertion.
type PassKind int

const (
	// KindSolution marks passes that query only the solved constraint graph.
	KindSolution PassKind = iota
	// KindCFG marks passes that consume per-method CFGs and dataflow facts.
	KindCFG
)

func (k PassKind) String() string {
	if k == KindCFG {
		return "cfg"
	}
	return "solution"
}

// Pass is one registered checker.
type Pass struct {
	// ID is the stable checker identifier (kebab-case); it is the SARIF
	// rule id and the name accepted by // gator:disable comments.
	ID string
	// Doc is the one-line description shown by -listchecks.
	Doc string
	// Kind classifies what the pass consumes (see PassKind).
	Kind PassKind
	// Severity is the nominal severity of the pass's findings.
	Severity Severity
	// Run executes the pass.
	Run func(ctx *Context) []Finding
}

// All returns the registered passes, solution passes first, each group in
// ID order — the exact order the driver executes them in.
func All() []Pass {
	passes := []Pass{
		{
			ID: "dangling-findview",
			Doc: "findViewById whose searched hierarchy can never contain " +
				"the queried id: the call always returns null",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      solutionPass(checkDanglingFindView),
		},
		{
			ID: "missing-content-view",
			Doc: "activity findViewById without any setContentView on that " +
				"activity: there is no hierarchy to search",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      solutionPass(checkMissingContentView),
		},
		{
			ID:       "unused-view-id",
			Doc:      "view id declared in a layout but never used by any operation",
			Kind:     KindSolution,
			Severity: Info,
			Run:      solutionPass(checkUnusedViewID),
		},
		{
			ID: "unfired-handler",
			Doc: "listener class whose handler can never receive a view: " +
				"the listener is never registered on a reachable view",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      solutionPass(checkUnfiredHandler),
		},
		{
			ID: "invisible-listener-view",
			Doc: "programmatically created view with listeners that is never " +
				"attached to any activity content: its events cannot fire",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      solutionPass(checkInvisibleListenerView),
		},
		{
			ID: "duplicate-id",
			Doc: "two views with the same id in one activity's content: " +
				"findViewById resolves only the first",
			Kind:     KindSolution,
			Severity: Info,
			Run:      solutionPass(checkDuplicateID),
		},
		{
			ID: "unhandled-menu",
			Doc: "menu items added but the activity defines no " +
				"onOptionsItemSelected handler",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      solutionPass(checkUnhandledMenu),
		},
		{
			ID:       "bad-intent-target",
			Doc:      "intent targets a class that is not an activity: startActivity would throw",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      solutionPass(checkBadIntentTarget),
		},
		{
			ID: "isolated-activity",
			Doc: "activity that no transition ever reaches (informational: " +
				"it may be a launcher or externally exported entry point)",
			Kind:     KindSolution,
			Severity: Info,
			Run:      solutionPass(checkIsolatedActivity),
		},
		{
			ID: "lifecycle-use-after-destroy",
			Doc: "GUI construction (inflation, listeners, menus, dialogs) " +
				"reachable from a callback nothing can follow: the work is " +
				"dead and leaks the destroyed component",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      checkUseAfterDestroy,
		},
		{
			ID: "lifecycle-listener-leak-on-pause",
			Doc: "listener registered on every pass through onResume with no " +
				"matching clear reachable from onPause/onStop: the handler " +
				"outlives the visible phase and is re-registered each cycle",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      checkListenerLeakOnPause,
		},
		{
			ID: "lifecycle-dialog-misuse",
			Doc: "Dialog.show() reachable from a teardown callback " +
				"(onPause/onStop/onDestroy): the dialog opens over a dying " +
				"window and leaks",
			Kind:     KindSolution,
			Severity: Warning,
			Run:      checkDialogMisuse,
		},
		{
			ID: "findview-before-setcontentview",
			Doc: "findViewById that can run before the activity's " +
				"setContentView along some path: the lookup returns null",
			Kind:     KindCFG,
			Severity: Warning,
			Run:      checkFindViewBeforeSetContent,
		},
		{
			ID: "null-view-deref",
			Doc: "dereference of a view reference that is definitely null, " +
				"e.g. the result of a findViewById that can never find a view",
			Kind:     KindCFG,
			Severity: Warning,
			Run:      checkNullViewDeref,
		},
		{
			ID: "listener-reset",
			Doc: "a second setListener on the same view and event along one " +
				"path: the first handler is silently replaced and never fires",
			Kind:     KindCFG,
			Severity: Warning,
			Run:      checkListenerReset,
		},
	}
	sort.SliceStable(passes, func(i, j int) bool {
		if passes[i].Kind != passes[j].Kind {
			return passes[i].Kind < passes[j].Kind
		}
		return passes[i].ID < passes[j].ID
	})
	return passes
}

// PassByID returns the registered pass with the given ID.
func PassByID(id string) (Pass, bool) {
	for _, p := range All() {
		if p.ID == id {
			return p, true
		}
	}
	return Pass{}, false
}

// solutionPass adapts a checker over the bare solution to the pass
// signature.
func solutionPass(f func(res *core.Result) []Finding) func(*Context) []Finding {
	return func(ctx *Context) []Finding { return f(ctx.Res) }
}

// Run executes every registered pass and returns the findings sorted by
// (position, check, message) — the deterministic order the public API
// promises.
func Run(res *core.Result) []Finding {
	ctx := NewContext(res)
	var out []Finding
	for _, p := range All() {
		out = append(out, p.Run(ctx)...)
	}
	SortFindings(out)
	return out
}

// SortFindings orders findings by (Pos, Check, Msg): position first so
// output reads in source order, with the check id and message as
// deterministic tiebreaks for findings sharing a position.
func SortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.File != b.Pos.File {
			return a.Pos.File < b.Pos.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Msg < b.Msg
	})
}

// checkDanglingFindView flags find-view operations that are reached by a
// hierarchy and an id, yet can never produce a view.
func checkDanglingFindView(res *core.Result) []Finding {
	var out []Finding
	for _, op := range res.Graph.Ops() {
		if op.Kind != platform.OpFindView1 && op.Kind != platform.OpFindView2 {
			continue
		}
		if op.Out == nil || len(op.Args) == 0 {
			continue
		}
		recvReached := len(res.OpReceivers(op)) > 0
		ids := idNames(res.OpArg(op, 0))
		if !recvReached || len(ids) == 0 {
			continue // dead op; nothing to conclude
		}
		if len(res.OpResults(op)) == 0 {
			out = append(out, Finding{
				Check:    "dangling-findview",
				Severity: Warning,
				Pos:      opPos(op),
				Msg: fmt.Sprintf("findViewById(%s) can never find a view in the searched hierarchy; it always returns null",
					joinNames(ids)),
			})
		}
	}
	return out
}

// checkMissingContentView flags FindView2 operations on activities that
// never receive a content view.
func checkMissingContentView(res *core.Result) []Finding {
	var out []Finding
	for _, op := range res.Graph.Ops() {
		if op.Kind != platform.OpFindView2 {
			continue
		}
		for _, owner := range res.OpReceivers(op) {
			switch owner.(type) {
			case *graph.ActivityNode, *graph.AllocNode:
			default:
				continue
			}
			if len(res.Graph.Roots(owner)) == 0 {
				out = append(out, Finding{
					Check:    "missing-content-view",
					Severity: Warning,
					Pos:      opPos(op),
					Msg: fmt.Sprintf("%s has no content view when findViewById runs; the lookup always returns null",
						ownerName(owner)),
				})
			}
		}
	}
	return out
}

// checkUnusedViewID flags declared view ids that no operation ever uses.
func checkUnusedViewID(res *core.Result) []Finding {
	used := map[int]bool{}
	for _, op := range res.Graph.Ops() {
		for i := range op.Args {
			for _, v := range res.OpArg(op, i) {
				if id, ok := v.(*graph.ViewIDNode); ok {
					used[id.ID()] = true
				}
			}
		}
	}
	var out []Finding
	for _, id := range res.Graph.ViewIDs() {
		if !used[id.ID()] {
			out = append(out, Finding{
				Check:    "unused-view-id",
				Severity: Info,
				Msg:      fmt.Sprintf("view id %q is declared but never used by any operation", id.Name),
			})
		}
	}
	return out
}

// checkUnfiredHandler flags listener classes whose handlers never receive a
// view.
func checkUnfiredHandler(res *core.Result) []Finding {
	var out []Finding
	for _, c := range res.Prog.AppClasses() {
		if c.IsInterface {
			continue
		}
		specs := res.Prog.ListenerSpecsOf(c)
		if len(specs) == 0 {
			continue
		}
		for _, spec := range specs {
			for _, h := range spec.Handlers {
				m := c.Methods[handlerKeyOf(h)]
				if m == nil || m.Body == nil || len(m.Params) == 0 {
					continue
				}
				reached := false
				for _, vi := range h.ViewParams {
					if vi < len(m.Params) && len(res.VarPointsTo(m.Params[vi])) > 0 {
						reached = true
					}
				}
				if !reached {
					out = append(out, Finding{
						Check:    "unfired-handler",
						Severity: Warning,
						Pos:      m.Pos,
						Msg: fmt.Sprintf("handler %s can never fire: the listener is not registered on any reachable view",
							m.QualifiedName()),
					})
				}
			}
		}
	}
	return out
}

// checkInvisibleListenerView flags views that hold listeners but are never
// part of any activity or dialog content.
func checkInvisibleListenerView(res *core.Result) []Finding {
	// Collect everything reachable from some owner's content roots.
	visible := map[int]bool{}
	res.Graph.RootPairs(func(owner, root graph.Value) {
		for _, w := range descendants(res.Graph, root) {
			visible[w.ID()] = true
		}
	})
	var out []Finding
	res.Graph.ListenerPairs(func(view, lst graph.Value) {
		an, ok := view.(*graph.AllocNode)
		if !ok || visible[view.ID()] {
			return
		}
		out = append(out, Finding{
			Check:    "invisible-listener-view",
			Severity: Warning,
			Pos:      an.Site.Pos(),
			Msg: fmt.Sprintf("view %s has listeners but is never attached to any activity content; its events cannot fire",
				an.String()),
		})
	})
	return dedup(out)
}

// checkDuplicateID flags id collisions within one owner's content.
func checkDuplicateID(res *core.Result) []Finding {
	var out []Finding
	res.Graph.RootPairs(func(owner, root graph.Value) {
		byID := map[int][]graph.Value{}
		for _, w := range descendants(res.Graph, root) {
			for _, id := range res.Graph.ViewIDsOf(w) {
				byID[id.ID()] = append(byID[id.ID()], w)
			}
		}
		ids := make([]int, 0, len(byID))
		for id := range byID {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			views := byID[id]
			if len(views) < 2 {
				continue
			}
			var name string
			for _, n := range res.Graph.ViewIDs() {
				if n.ID() == id {
					name = n.Name
				}
			}
			out = append(out, Finding{
				Check:    "duplicate-id",
				Severity: Info,
				Msg: fmt.Sprintf("id %q appears on %d views in the content of %s; findViewById resolves only one",
					name, len(views), ownerName(owner)),
			})
		}
	})
	return dedup(out)
}

// checkUnhandledMenu flags populated menus without a selection handler.
func checkUnhandledMenu(res *core.Result) []Finding {
	var out []Finding
	for _, menu := range res.Graph.Menus() {
		if len(res.Graph.MenuItems(menu)) == 0 {
			continue
		}
		h := menu.Activity.Dispatch(platform.MenuSelectCallback + "(R)")
		if h == nil || h.Body == nil {
			out = append(out, Finding{
				Check:    "unhandled-menu",
				Severity: Warning,
				Msg: fmt.Sprintf("%s populates its options menu but defines no %s handler",
					menu.Activity.Name, platform.MenuSelectCallback),
			})
		}
	}
	return out
}

// checkBadIntentTarget flags intents whose target class cannot be launched.
func checkBadIntentTarget(res *core.Result) []Finding {
	var out []Finding
	for _, n := range res.Graph.Nodes() {
		alloc, ok := n.(*graph.AllocNode)
		if !ok {
			continue
		}
		for _, target := range res.Graph.IntentTargets(alloc) {
			if !res.Prog.IsActivityClass(target.Class) {
				out = append(out, Finding{
					Check:    "bad-intent-target",
					Severity: Warning,
					Pos:      alloc.Site.Pos(),
					Msg: fmt.Sprintf("intent targets %s, which is not an activity; startActivity would fail",
						target.Class.Name),
				})
			}
		}
	}
	return dedup(out)
}

// checkIsolatedActivity flags activities with no incoming transition when
// the app has more than one activity and uses transitions at all.
func checkIsolatedActivity(res *core.Result) []Finding {
	transitions := res.Transitions()
	if len(transitions) == 0 {
		return nil
	}
	reached := map[string]bool{}
	for _, tr := range transitions {
		reached[tr.Target.Name] = true
	}
	acts := 0
	for _, c := range res.Prog.AppClasses() {
		if !c.IsInterface && res.Prog.IsActivityClass(c) {
			acts++
		}
	}
	if acts < 2 {
		return nil
	}
	var out []Finding
	for _, c := range res.Prog.AppClasses() {
		if c.IsInterface || !res.Prog.IsActivityClass(c) || reached[c.Name] {
			continue
		}
		out = append(out, Finding{
			Check:    "isolated-activity",
			Severity: Info,
			Msg:      fmt.Sprintf("no transition reaches %s (launcher or exported entry point?)", c.Name),
		})
	}
	return out
}

// helpers

func opPos(op *graph.OpNode) alite.Pos {
	if op.Site != nil {
		return op.Site.Pos()
	}
	return alite.Pos{}
}

func idNames(vals []graph.Value) []string {
	var out []string
	for _, v := range vals {
		if id, ok := v.(*graph.ViewIDNode); ok {
			out = append(out, id.Name)
		}
	}
	sort.Strings(out)
	return out
}

func joinNames(names []string) string {
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ","
		}
		s += "R.id." + n
	}
	return s
}

func ownerName(owner graph.Value) string {
	switch o := owner.(type) {
	case *graph.ActivityNode:
		return "activity " + o.Class.Name
	case *graph.AllocNode:
		return "dialog " + o.Class.Name
	}
	return owner.String()
}

func descendants(g *graph.Graph, root graph.Value) []graph.Value {
	seen := map[int]bool{}
	queue := []graph.Value{root}
	var out []graph.Value
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if seen[v.ID()] {
			continue
		}
		seen[v.ID()] = true
		out = append(out, v)
		queue = append(queue, g.Children(v)...)
	}
	return out
}

func handlerKeyOf(h platform.HandlerSig) string {
	kinds := make([]byte, len(h.Params))
	for i, p := range h.Params {
		if p == "int" {
			kinds[i] = 'I'
		} else {
			kinds[i] = 'R'
		}
	}
	return h.Name + "(" + string(kinds) + ")"
}

func dedup(fs []Finding) []Finding {
	seen := map[string]bool{}
	var out []Finding
	for _, f := range fs {
		k := f.Check + "|" + f.Msg
		if !seen[k] {
			seen[k] = true
			out = append(out, f)
		}
	}
	return out
}

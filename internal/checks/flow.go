package checks

// Flow-sensitive checkers: clients of the CFG (package cfg) and dataflow
// (package dataflow) layers. The flow-insensitive solution answers *which*
// views flow where; these passes additionally see *when* along each path —
// statement ordering defects the solution-only checkers cannot express.

import (
	"fmt"
	"sort"
	"strings"

	"gator/internal/alite"
	"gator/internal/cfg"
	"gator/internal/dataflow"
	"gator/internal/ir"
	"gator/internal/platform"
)

// callName returns the bare method name of a call site for messages.
func callName(site *ir.Invoke) string {
	name := site.Key
	if i := strings.IndexByte(name, '('); i >= 0 {
		name = name[:i]
	}
	return name
}

// checkFindViewBeforeSetContent flags Activity.findViewById calls that can
// execute before the same activity's setContentView along some CFG path:
// flow-insensitively the id resolves (the content is set *somewhere* in the
// method), but in program order the lookup still returns null.
//
// The pass runs a must-analysis per method: the fact is the set of
// activity/dialog values whose content view has definitely been installed
// on every path reaching a point. A findViewById whose receiver is not yet
// covered on some path is reported. Only methods that themselves install
// the content view are considered — cross-method ordering (helpers called
// after onCreate) is out of scope and would be noise.
func checkFindViewBeforeSetContent(ctx *Context) []Finding {
	var out []Finding
	for _, m := range ctx.AppMethods() {
		// Group this method's content-install and find-view operations by
		// call site (context-sensitive clones union their solutions).
		setBySite := map[*ir.Invoke][]int{}
		findBySite := map[*ir.Invoke][]int{}
		var allSet []int
		for _, op := range ctx.OpsIn(m) {
			if op.Site == nil {
				continue
			}
			recvs := ctx.receiverIDs(op)
			if len(recvs) == 0 {
				continue // dead op
			}
			switch op.Kind {
			case platform.OpInflate2, platform.OpAddView1:
				setBySite[op.Site] = mergeIDs(setBySite[op.Site], recvs)
				allSet = mergeIDs(allSet, recvs)
			case platform.OpFindView2:
				findBySite[op.Site] = mergeIDs(findBySite[op.Site], recvs)
			}
		}
		if len(setBySite) == 0 || len(findBySite) == 0 {
			continue
		}

		res := dataflow.Forward[contentFact](ctx.CFG(m), contentAnalysis{setBySite: setBySite})
		type hit struct {
			pos  alite.Pos
			site *ir.Invoke
		}
		var hits []hit
		reported := map[*ir.Invoke]bool{}
		res.VisitStmts(func(b *cfg.Block, s ir.Stmt, before contentFact) {
			inv, ok := s.(*ir.Invoke)
			if !ok || reported[inv] {
				return
			}
			recvs, isFind := findBySite[inv]
			if !isFind || before == nil /* unreachable */ {
				return
			}
			// Only meaningful when this method installs content for one of
			// the same activities.
			if !intersects(recvs, allSet) {
				return
			}
			for _, id := range recvs {
				if !before[id] {
					reported[inv] = true
					hits = append(hits, hit{inv.At, inv})
					return
				}
			}
		})
		for _, h := range hits {
			ids := ctx.findViewIDNames(h.site)
			out = append(out, Finding{
				Check:    "findview-before-setcontentview",
				Severity: Warning,
				Pos:      h.pos,
				Msg: fmt.Sprintf("findViewById(%s) can run before setContentView on some path; the lookup returns null there",
					joinNames(ids)),
				SuggestedFix: "call setContentView before the first findViewById",
			})
		}
	}
	return out
}

// findViewIDNames returns the id constant names reaching a find-view site's
// first argument.
func (c *Context) findViewIDNames(site *ir.Invoke) []string {
	var names []string
	for _, op := range c.OpsAt(site) {
		names = append(names, idNames(c.Res.OpArg(op, 0))...)
	}
	sort.Strings(names)
	// dedup
	out := names[:0]
	for i, n := range names {
		if i == 0 || names[i-1] != n {
			out = append(out, n)
		}
	}
	return out
}

func mergeIDs(a, b []int) []int {
	seen := map[int]bool{}
	for _, x := range a {
		seen[x] = true
	}
	for _, x := range b {
		seen[x] = true
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

// contentFact is the must-analysis fact of checkFindViewBeforeSetContent:
// the set of owner value IDs whose content view is installed on every path.
// The nil map is the universe (bottom: identity of intersection, held by
// unreachable code); the empty map means "nothing installed yet".
type contentFact map[int]bool

type contentAnalysis struct {
	setBySite map[*ir.Invoke][]int
}

func (a contentAnalysis) Bottom() contentFact            { return nil }
func (a contentAnalysis) Entry(g *cfg.Graph) contentFact { return contentFact{} }

func (a contentAnalysis) Join(x, y contentFact) contentFact {
	if x == nil {
		return y
	}
	if y == nil {
		return x
	}
	out := contentFact{}
	for id := range x {
		if y[id] {
			out[id] = true
		}
	}
	return out
}

func (a contentAnalysis) Equal(x, y contentFact) bool {
	if (x == nil) != (y == nil) || len(x) != len(y) {
		return false
	}
	for id := range x {
		if !y[id] {
			return false
		}
	}
	return true
}

func (a contentAnalysis) Transfer(s ir.Stmt, in contentFact) contentFact {
	inv, ok := s.(*ir.Invoke)
	if !ok {
		return in
	}
	ids, isSet := a.setBySite[inv]
	if !isSet || in == nil {
		return in
	}
	out := make(contentFact, len(in)+len(ids))
	for id := range in {
		out[id] = true
	}
	for _, id := range ids {
		out[id] = true
	}
	return out
}

func (a contentAnalysis) Branch(c ir.Cond, taken bool, out contentFact) contentFact { return out }

// checkNullViewDeref flags dereferences of references that are definitely
// null: results of find-view calls whose static solution is empty (seeded
// by the reference analysis), null constants, and null-tested branches.
// This is the dereference-site refinement of dangling-findview: the defect
// is reported where the program would actually throw.
func checkNullViewDeref(ctx *Context) []Finding {
	var out []Finding
	for _, m := range ctx.AppMethods() {
		res := ctx.Nullness(m)
		res.VisitStmts(func(b *cfg.Block, s ir.Stmt, before dataflow.NullFact) {
			if before == nil {
				return // unreachable
			}
			var base *ir.Var
			var action string
			switch s := s.(type) {
			case *ir.Invoke:
				base, action = s.Recv, "calling "+callName(s)+" on it"
			case *ir.Load:
				base, action = s.Base, "reading field "+s.Field.Name
			case *ir.Store:
				base, action = s.Base, "writing field "+s.Field.Name
			}
			if base == nil || base == m.This {
				return
			}
			v := before.Get(base)
			if v.K != dataflow.Null {
				return
			}
			why := v.Why
			if why == "" {
				why = "assigned null"
			}
			out = append(out, Finding{
				Check:    "null-view-deref",
				Severity: Warning,
				Pos:      s.Pos(),
				Msg: fmt.Sprintf("%s is always null here (%s); %s throws a NullPointerException",
					base.Name, why, action),
				SuggestedFix: "guard the dereference with a null check, or fix the id/layout so the lookup succeeds",
			})
		})
	}
	return out
}

// checkListenerReset flags a second set-listener on the same view and event
// along one path: Android's setOnClickListener and friends *replace* the
// current handler, so the first registration is dead on that path — usually
// a copy-paste defect where two handlers were meant for two views.
//
// Implemented as a gen-only forward may-analysis: the fact is the set of
// set-listener sites that may already have executed. At each site, any
// reaching site with the same event and an overlapping receiver-view
// solution is a handler this statement silently discards.
func checkListenerReset(ctx *Context) []Finding {
	var out []Finding
	for _, m := range ctx.AppMethods() {
		// Collect this method's live set-listener sites in source order.
		type lsite struct {
			site  *ir.Invoke
			event string
			recvs []int
		}
		bySite := map[*ir.Invoke]*lsite{}
		var sites []*lsite
		for _, op := range ctx.OpsIn(m) {
			if op.Kind != platform.OpSetListener || op.Site == nil || op.Event == "" {
				continue
			}
			// Program-point receivers: flowsTo at the registration site, not
			// the whole-method merge (see flowsto.go).
			recvs := ctx.pointRecvIDs(m, op)
			if len(recvs) == 0 {
				continue // dead op
			}
			if ls, ok := bySite[op.Site]; ok {
				ls.recvs = mergeIDs(ls.recvs, recvs)
				continue
			}
			ls := &lsite{site: op.Site, event: op.Event, recvs: recvs}
			bySite[op.Site] = ls
			sites = append(sites, ls)
		}
		if len(sites) < 2 {
			continue
		}
		sort.Slice(sites, func(i, j int) bool { return posLess(sites[i].site.At, sites[j].site.At) })
		index := map[*ir.Invoke]int{}
		for i, ls := range sites {
			index[ls.site] = i
		}
		// conflicts[i]: the sites whose handler site i would replace.
		conflicts := make([]dataflow.Bits, len(sites))
		any := false
		for i, a := range sites {
			for j, b := range sites {
				if i != j && a.event == b.event && intersects(a.recvs, b.recvs) {
					conflicts[i] = conflicts[i].With(j)
					any = true
				}
			}
		}
		if !any {
			continue
		}

		res := dataflow.Forward[dataflow.Bits](ctx.CFG(m), listenerAnalysis{index: index})
		reported := map[*ir.Invoke]bool{}
		res.VisitStmts(func(b *cfg.Block, s ir.Stmt, before dataflow.Bits) {
			inv, ok := s.(*ir.Invoke)
			if !ok || reported[inv] {
				return
			}
			i, isSet := index[inv]
			if !isSet {
				return
			}
			var replacedAt []string
			for _, j := range before.Ones() {
				if conflicts[i].Get(j) {
					replacedAt = append(replacedAt, sites[j].site.At.String())
				}
			}
			if len(replacedAt) == 0 {
				return
			}
			reported[inv] = true
			out = append(out, Finding{
				Check:    "listener-reset",
				Severity: Warning,
				Pos:      inv.At,
				Msg: fmt.Sprintf("%s replaces the %s listener installed at %s on the same view; the earlier handler never fires",
					callName(inv), sites[i].event, strings.Join(replacedAt, ", ")),
				SuggestedFix: "register the handlers on distinct views, or drop the earlier registration",
			})
		})
	}
	return out
}

func posLess(a, b alite.Pos) bool {
	if a.File != b.File {
		return a.File < b.File
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Col < b.Col
}

// listenerAnalysis: gen-only may-analysis over set-listener sites.
type listenerAnalysis struct {
	index map[*ir.Invoke]int
}

func (a listenerAnalysis) Bottom() dataflow.Bits            { return nil }
func (a listenerAnalysis) Entry(g *cfg.Graph) dataflow.Bits { return nil }
func (a listenerAnalysis) Join(x, y dataflow.Bits) dataflow.Bits {
	return x.Union(y)
}
func (a listenerAnalysis) Equal(x, y dataflow.Bits) bool { return x.Equal(y) }
func (a listenerAnalysis) Transfer(s ir.Stmt, in dataflow.Bits) dataflow.Bits {
	if inv, ok := s.(*ir.Invoke); ok {
		if i, isSet := a.index[inv]; isSet {
			return in.With(i)
		}
	}
	return in
}
func (a listenerAnalysis) Branch(c ir.Cond, taken bool, out dataflow.Bits) dataflow.Bits {
	return out
}

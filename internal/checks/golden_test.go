package checks

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/ir"
	"gator/internal/layout"
)

var update = flag.Bool("update", false, "rewrite golden expected.txt files")

// TestGolden runs every checker against its minimal app under
// testdata/<check-id>/ and compares the findings for that checker against
// expected.txt. Each directory holds one app: *.alite sources plus *.xml
// layouts (the layout name is the file name without extension). Regenerate
// with `go test ./internal/checks -run TestGolden -update`.
func TestGolden(t *testing.T) {
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	covered := map[string]bool{}
	for _, dir := range dirs {
		covered[dir] = true
		t.Run(dir, func(t *testing.T) {
			if _, ok := PassByID(dir); !ok {
				t.Fatalf("testdata/%s does not name a registered checker", dir)
			}
			res := analyzeDir(t, filepath.Join("testdata", dir))
			var lines []string
			for _, f := range findingsOf(Run(res), dir) {
				lines = append(lines, f.String())
			}
			got := strings.Join(lines, "\n") + "\n"
			goldenPath := filepath.Join("testdata", dir, "expected.txt")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}
			if len(lines) == 0 {
				t.Errorf("golden app for %s triggers no %s finding", dir, dir)
			}
		})
	}
	// Every registered checker must have a golden app.
	for _, p := range All() {
		if !covered[p.ID] {
			t.Errorf("checker %s has no testdata/%s golden app", p.ID, p.ID)
		}
	}
}

// analyzeDir loads and analyzes the app in one testdata directory.
func analyzeDir(t *testing.T, dir string) *core.Result {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*alite.File
	layouts := map[string]*layout.Layout{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(dir, e.Name())
		switch filepath.Ext(e.Name()) {
		case ".alite":
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := alite.Parse(e.Name(), string(src))
			if err != nil {
				t.Fatal(err)
			}
			files = append(files, f)
		case ".xml":
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			name := strings.TrimSuffix(e.Name(), ".xml")
			l, err := layout.Parse(name, string(src))
			if err != nil {
				t.Fatal(err)
			}
			layouts[name] = l
		}
	}
	p, err := ir.Build(files, layouts)
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(p, core.Options{})
}

package checks

// Program-point flowsTo: a flow-sensitive refinement of the solved
// reference analysis. The fixpoint answers "which views may v EVER hold";
// FlowsToAt answers "which views may v hold HERE", by intersecting the
// solution with what the reaching definitions of v at one statement can
// produce. This matters exactly where the (even context-sensitive)
// solution still merges: a variable reassigned along the method drags
// every assignment's values to every use flow-insensitively, while each
// program point only sees the assignments that reach it.

import (
	"gator/internal/dataflow"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/platform"
)

// Reaching returns the memoized reaching-definitions solution of a method.
func (c *Context) Reaching(m *ir.Method) *dataflow.ReachingDefs {
	if c.reach == nil {
		c.reach = map[*ir.Method]*dataflow.ReachingDefs{}
	}
	if rd, ok := c.reach[m]; ok {
		return rd
	}
	rd := dataflow.NewReachingDefs(c.CFG(m))
	c.reach[m] = rd
	return rd
}

// valueIndex builds the statement → graph-value maps FlowsToAt resolves
// definitions through, once.
func (c *Context) valueIndex() {
	if c.valIndexed {
		return
	}
	c.valIndexed = true
	c.allocsAt = map[*ir.New][]graph.Value{}
	c.fieldNodes = map[*ir.Field]*graph.FieldNode{}
	c.viewIDByRes = map[int]graph.Value{}
	c.layoutIDByRes = map[int]graph.Value{}
	c.classNodes = map[*ir.Class]graph.Value{}
	for _, n := range c.Res.Graph.Nodes() {
		switch n := n.(type) {
		case *graph.AllocNode:
			if n.Site != nil {
				c.allocsAt[n.Site] = append(c.allocsAt[n.Site], n)
			}
		case *graph.FieldNode:
			c.fieldNodes[n.Field] = n
		case *graph.ViewIDNode:
			c.viewIDByRes[n.ResID] = n
		case *graph.LayoutIDNode:
			c.layoutIDByRes[n.ResID] = n
		case *graph.ClassNode:
			c.classNodes[n.Class] = n
		}
	}
}

// defValues returns the values one definition can write into its variable,
// or ok=false when the constraint graph does not model the definition
// one-to-one (an unmodeled call, an allocation of an untracked class):
// callers must then fall back to the flow-insensitive solution to stay
// sound.
func (c *Context) defValues(d ir.Stmt) (vals []graph.Value, ok bool) {
	c.valueIndex()
	switch d := d.(type) {
	case *ir.ConstNull, *ir.ConstInt:
		return nil, true // no object flows
	case *ir.New:
		vals := c.allocsAt[d]
		return vals, len(vals) > 0
	case *ir.ConstRes:
		byRes := c.viewIDByRes
		if d.Layout {
			byRes = c.layoutIDByRes
		}
		if n, found := byRes[d.ID]; found {
			return []graph.Value{n}, true
		}
		return nil, true // id constant never interned: no op consumed it
	case *ir.ConstClass:
		if n, found := c.classNodes[d.Class]; found {
			return []graph.Value{n}, true
		}
		return nil, true
	case *ir.Copy:
		return c.Res.VarPointsTo(d.Src), true
	case *ir.Load:
		fn := c.fieldNodes[d.Field]
		if fn == nil {
			return nil, false // untracked field
		}
		return c.Res.PointsTo(fn), true
	case *ir.Invoke:
		ops := c.OpsAt(d)
		if len(ops) == 0 {
			return nil, false // unmodeled call result
		}
		var out []graph.Value
		seen := map[graph.Value]bool{}
		for _, op := range ops {
			for _, v := range c.opProduces(op) {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
		return out, true
	}
	return nil, false
}

// opProduces over-approximates the values one operation writes to its
// result. For find-view operations it replays the solver's rule against the
// solved receiver and id-argument sets — the rule is site-local, unlike
// pts(op.Out), which merges every assignment of the destination variable.
// Every replayed candidate is intersected with pts(op.Out), so the answer
// can only shrink the solution, never leave it. Other operation kinds fall
// back to pts(op.Out).
func (c *Context) opProduces(op *graph.OpNode) []graph.Value {
	if op.Out == nil {
		return nil
	}
	merged := c.Res.PointsTo(op.Out)
	switch op.Kind {
	case platform.OpFindView1, platform.OpFindView2, platform.OpFindView3:
	default:
		return merged
	}
	inMerged := map[graph.Value]bool{}
	for _, v := range merged {
		inMerged[v] = true
	}
	// FindView1/2 take the queried id as the first argument; FindView3
	// variants (getListView etc.) have no id filter.
	var ids map[int]bool
	if op.Kind != platform.OpFindView3 && len(op.Args) > 0 {
		ids = map[int]bool{}
		for _, v := range c.Res.OpArg(op, 0) {
			if id, ok := v.(*graph.ViewIDNode); ok {
				ids[id.ID()] = true
			}
		}
	}
	g := c.Res.Graph
	var out []graph.Value
	seen := map[graph.Value]bool{}
	consider := func(w graph.Value) {
		if seen[w] || !inMerged[w] {
			return
		}
		if ids != nil {
			match := false
			for _, id := range g.ViewIDsOf(w) {
				if ids[id.ID()] {
					match = true
				}
			}
			if !match {
				return
			}
		}
		seen[w] = true
		out = append(out, w)
	}
	// The search space unions the receiver's own hierarchy (view-rooted
	// lookups) with the hierarchies rooted at the receiver's content views
	// (activity/dialog lookups) — a superset of what either solver rule
	// searches for this op.
	for _, r := range c.Res.OpReceivers(op) {
		for _, w := range descendants(g, r) {
			consider(w)
		}
		for _, root := range g.Roots(r) {
			for _, w := range descendants(g, root) {
				consider(w)
			}
		}
	}
	return out
}

// pointRecvIDs narrows an operation's receiver solution to the values that
// can actually reach the op's call site, per FlowsToAt: a view variable
// reassigned between two registrations no longer makes the two sites look
// like they target one view. Falls back to the unrefined receiver set when
// the site has no resolvable program point.
func (c *Context) pointRecvIDs(m *ir.Method, op *graph.OpNode) []int {
	ids := c.receiverIDs(op)
	if op.Site == nil || op.Site.Recv == nil || len(ids) == 0 {
		return ids
	}
	at := map[int]bool{}
	for _, v := range c.FlowsToAt(m, op.Site, op.Site.Recv) {
		at[v.ID()] = true
	}
	out := ids[:0:0]
	for _, id := range ids {
		if at[id] {
			out = append(out, id)
		}
	}
	return out
}

// FlowsToAt answers flowsTo at one program point: the values v may hold
// immediately before statement at in method m. The answer is always a
// subset of the flow-insensitive VarPointsTo(v) (every contribution is an
// edge source of v in the constraint graph), and falls back to exactly
// VarPointsTo(v) — never less — when a reaching definition is one the
// graph does not model one-to-one, or when v reaches the point still
// holding its entry (parameter) value.
func (c *Context) FlowsToAt(m *ir.Method, at ir.Stmt, v *ir.Var) []graph.Value {
	insens := c.Res.VarPointsTo(v)
	if v == nil || v.Method != m || len(insens) == 0 {
		return insens
	}
	rd := c.Reaching(m)
	fact, found := rd.Result().At(at)
	// The entry check is what keeps partial redefinition sound: a
	// parameter redefined on only some paths reaches a merge both through
	// its explicit definitions and still holding the caller-supplied
	// value, which no definition accounts for.
	if !found || rd.EntryReaches(fact, v) {
		return insens
	}
	defs := rd.Defs(fact, v)
	if len(defs) == 0 {
		return insens
	}
	var out []graph.Value
	seen := map[graph.Value]bool{}
	for _, d := range defs {
		vals, ok := c.defValues(d)
		if !ok {
			return insens
		}
		for _, val := range vals {
			if !seen[val] {
				seen[val] = true
				out = append(out, val)
			}
		}
	}
	return out
}

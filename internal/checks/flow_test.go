package checks

import (
	"strings"
	"testing"
)

func TestFindViewBeforeSetContentView(t *testing.T) {
	src := `
class Early extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.root);
		this.setContentView(R.layout.main);
	}
}
class Fine extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.root);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout android:id="@+id/root"/>`}
	fs := findingsOf(Run(analyze(t, src, layouts)), "findview-before-setcontentview")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "R.id.root") || !fs[0].Pos.IsValid() {
		t.Errorf("finding = %v", fs[0])
	}
	if fs[0].Pos.Line != 4 {
		t.Errorf("pos = %v, want the early findViewById line", fs[0].Pos)
	}
	if fs[0].SuggestedFix == "" {
		t.Error("missing suggested fix")
	}
}

func TestFindViewBeforeSetContentViewBranch(t *testing.T) {
	// Content is set on only one branch: the lookup after the join is still
	// unsafe on the other path.
	src := `
class Branchy extends Activity {
	void onCreate() {
		if (*) {
			this.setContentView(R.layout.main);
		}
		View v = this.findViewById(R.id.root);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout android:id="@+id/root"/>`}
	fs := findingsOf(Run(analyze(t, src, layouts)), "findview-before-setcontentview")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}

	// Both branches set it: safe.
	safe := `
class BothWays extends Activity {
	void onCreate() {
		if (*) {
			this.setContentView(R.layout.main);
		} else {
			this.setContentView(R.layout.main);
		}
		View v = this.findViewById(R.id.root);
	}
}`
	if fs := findingsOf(Run(analyze(t, safe, layouts)), "findview-before-setcontentview"); len(fs) != 0 {
		t.Errorf("both-branches case flagged: %v", fs)
	}
}

func TestFindViewInHelperNotFlagged(t *testing.T) {
	// The helper only reads; ordering across methods is out of scope, so no
	// finding may appear for it.
	src := `
class Helper extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		this.bind();
	}
	void bind() {
		View v = this.findViewById(R.id.root);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout android:id="@+id/root"/>`}
	if fs := findingsOf(Run(analyze(t, src, layouts)), "findview-before-setcontentview"); len(fs) != 0 {
		t.Errorf("helper method flagged: %v", fs)
	}
}

func TestNullViewDeref(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View gone = this.findViewById(R.id.gone);
		gone.setId(R.id.root);
		View ok = this.findViewById(R.id.root);
		ok.setId(R.id.root);
	}
}`
	layouts := map[string]string{
		"main":  `<LinearLayout android:id="@+id/root"/>`,
		"other": `<LinearLayout android:id="@+id/gone"/>`,
	}
	fs := findingsOf(Run(analyze(t, src, layouts)), "null-view-deref")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	f := fs[0]
	if !strings.Contains(f.Msg, "gone") || !strings.Contains(f.Msg, "NullPointerException") {
		t.Errorf("msg = %q", f.Msg)
	}
	// The diagnostic is at the dereference, not the findViewById call.
	if f.Pos.Line != 6 {
		t.Errorf("pos = %v, want the dereference line", f.Pos)
	}
}

func TestNullViewDerefGuarded(t *testing.T) {
	// A null test dominates the dereference: no finding.
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View gone = this.findViewById(R.id.gone);
		if (gone != null) {
			gone.setId(R.id.root);
		}
	}
}`
	layouts := map[string]string{
		"main":  `<LinearLayout android:id="@+id/root"/>`,
		"other": `<LinearLayout android:id="@+id/gone"/>`,
	}
	if fs := findingsOf(Run(analyze(t, src, layouts)), "null-view-deref"); len(fs) != 0 {
		t.Errorf("guarded deref flagged: %v", fs)
	}
}

func TestNullViewDerefConstNull(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Button b = null;
		b.setId(R.id.x);
	}
}`
	fs := findingsOf(Run(analyze(t, src, nil)), "null-view-deref")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "null assigned") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestListenerReset(t *testing.T) {
	src := `
class H1 implements OnClickListener {
	void onClick(View v) { }
}
class H2 implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.go);
		H1 h1 = new H1();
		b.setOnClickListener(h1);
		H2 h2 = new H2();
		b.setOnClickListener(h2);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`}
	fs := findingsOf(Run(analyze(t, src, layouts)), "listener-reset")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "replaces the click listener") {
		t.Errorf("msg = %q", fs[0].Msg)
	}
	if fs[0].Pos.Line != 15 {
		t.Errorf("pos = %v, want the second setOnClickListener", fs[0].Pos)
	}
}

func TestListenerResetBranchesNotFlagged(t *testing.T) {
	// The two registrations are on exclusive paths: neither replaces the
	// other.
	src := `
class H1 implements OnClickListener {
	void onClick(View v) { }
}
class H2 implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.go);
		if (*) {
			H1 h1 = new H1();
			b.setOnClickListener(h1);
		} else {
			H2 h2 = new H2();
			b.setOnClickListener(h2);
		}
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`}
	if fs := findingsOf(Run(analyze(t, src, layouts)), "listener-reset"); len(fs) != 0 {
		t.Errorf("exclusive branches flagged: %v", fs)
	}
}

func TestListenerResetDistinctViewsNotFlagged(t *testing.T) {
	src := `
class H implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View x = this.findViewById(R.id.one);
		View y = this.findViewById(R.id.two);
		H h1 = new H();
		x.setOnClickListener(h1);
		H h2 = new H();
		y.setOnClickListener(h2);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/one"/><Button android:id="@+id/two"/></LinearLayout>`,
	}
	if fs := findingsOf(Run(analyze(t, src, layouts)), "listener-reset"); len(fs) != 0 {
		t.Errorf("distinct views flagged: %v", fs)
	}
}

func TestFindingsSortedByPosition(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.root);
		this.setContentView(R.layout.main);
		View gone = this.findViewById(R.id.gone);
		gone.setId(R.id.root);
	}
}`
	layouts := map[string]string{
		"main":  `<LinearLayout android:id="@+id/root"/>`,
		"other": `<LinearLayout android:id="@+id/gone"/>`,
	}
	fs := Run(analyze(t, src, layouts))
	for i := 1; i < len(fs); i++ {
		a, b := fs[i-1], fs[i]
		if a.Pos.File > b.Pos.File ||
			(a.Pos.File == b.Pos.File && a.Pos.Line > b.Pos.Line) {
			t.Errorf("findings out of position order: %v before %v", a, b)
		}
	}
}

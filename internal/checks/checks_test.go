package checks

import (
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/corpus"
	"gator/internal/ir"
	"gator/internal/layout"
)

func analyze(t *testing.T, src string, layouts map[string]string) *core.Result {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(p, core.Options{})
}

func findingsOf(fs []Finding, check string) []Finding {
	var out []Finding
	for _, f := range fs {
		if f.Check == check {
			out = append(out, f)
		}
	}
	return out
}

func TestDanglingFindView(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View good = this.findViewById(R.id.present);
		View bad = this.findViewById(R.id.elsewhere);
	}
}`
	layouts := map[string]string{
		"main":  `<LinearLayout><Button android:id="@+id/present"/></LinearLayout>`,
		"other": `<LinearLayout><Button android:id="@+id/elsewhere"/></LinearLayout>`,
	}
	fs := findingsOf(Run(analyze(t, src, layouts)), "dangling-findview")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "elsewhere") {
		t.Errorf("finding = %v", fs[0])
	}
	if fs[0].Severity != Warning {
		t.Errorf("severity = %v", fs[0].Severity)
	}
}

func TestMissingContentView(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.x); // no setContentView anywhere
	}
}
class B extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.x);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/x"/></LinearLayout>`}
	fs := findingsOf(Run(analyze(t, src, layouts)), "missing-content-view")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "activity A") {
		t.Errorf("finding = %v", fs[0])
	}
}

func TestUnusedViewID(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.used);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/used"/><Button android:id="@+id/never"/></LinearLayout>`,
	}
	fs := findingsOf(Run(analyze(t, src, layouts)), "unused-view-id")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "never") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestUnfiredHandler(t *testing.T) {
	src := `
class Used implements OnClickListener {
	void onClick(View v) { }
}
class Never implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.go);
		Used u = new Used();
		b.setOnClickListener(u);
		Never n = new Never(); // allocated but never registered
	}
}`
	layouts := map[string]string{"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`}
	fs := findingsOf(Run(analyze(t, src, layouts)), "unfired-handler")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "Never.onClick") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestInvisibleListenerView(t *testing.T) {
	src := `
class H implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		Button detached = new Button();
		H h = new H();
		detached.setOnClickListener(h); // never added to the content tree
		Button attached = new Button();
		LinearLayout root = (LinearLayout) this.findViewById(R.id.root);
		root.addView(attached);
		H h2 = new H();
		attached.setOnClickListener(h2);
	}
}`
	layouts := map[string]string{"main": `<LinearLayout android:id="@+id/root"/>`}
	fs := findingsOf(Run(analyze(t, src, layouts)), "invisible-listener-view")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestDuplicateID(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		Button extra = new Button();
		extra.setId(R.id.twice);
		LinearLayout root = (LinearLayout) this.findViewById(R.id.root);
		root.addView(extra);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout android:id="@+id/root"><Button android:id="@+id/twice"/></LinearLayout>`,
	}
	fs := findingsOf(Run(analyze(t, src, layouts)), "duplicate-id")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "twice") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestUnhandledMenu(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() { }
	void onCreateOptionsMenu(Menu menu) {
		MenuItem mi = menu.add(R.id.save);
	}
}
class B extends Activity {
	void onCreate() { }
	void onCreateOptionsMenu(Menu menu) {
		MenuItem mi = menu.add(R.id.load);
	}
	void onOptionsItemSelected(MenuItem item) { }
}`
	fs := findingsOf(Run(analyze(t, src, nil)), "unhandled-menu")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "A populates") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestFigure1Clean(t *testing.T) {
	p, err := ir.Build(corpus.Figure1ClosedFiles(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	fs := Run(core.Analyze(p, core.Options{}))
	for _, f := range fs {
		if f.Severity == Warning {
			// The open Figure 1 fragment legitimately references views via
			// helpers; the closed variant should produce no warnings.
			t.Errorf("unexpected warning: %s", f)
		}
	}
}

func TestCheckerRegistry(t *testing.T) {
	names := map[string]bool{}
	sawCFG := false
	for i, c := range All() {
		if c.ID == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("incomplete checker %+v", c.ID)
		}
		if names[c.ID] {
			t.Errorf("duplicate checker %s", c.ID)
		}
		names[c.ID] = true
		// Solution passes come first; the order is the execution order.
		if c.Kind == KindCFG {
			sawCFG = true
		} else if sawCFG {
			t.Errorf("solution pass %s registered after a CFG pass", c.ID)
		}
		if i > 0 && All()[i-1].Kind == c.Kind && All()[i-1].ID >= c.ID {
			t.Errorf("passes not ID-sorted within kind at %s", c.ID)
		}
	}
	if len(names) < 10 {
		t.Errorf("only %d checkers", len(names))
	}
	if !sawCFG {
		t.Error("no CFG passes registered")
	}
	if _, ok := PassByID("null-view-deref"); !ok {
		t.Error("PassByID failed")
	}
	if _, ok := PassByID("nope"); ok {
		t.Error("PassByID found a ghost")
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Check: "x", Severity: Warning, Msg: "boom"}
	if got := f.String(); !strings.Contains(got, "warning") || !strings.Contains(got, "boom") {
		t.Errorf("String = %q", got)
	}
	f.Pos = alite.Pos{File: "a.alite", Line: 3, Col: 1}
	if got := f.String(); !strings.HasPrefix(got, "a.alite:3:1") {
		t.Errorf("String = %q", got)
	}
}

func TestBadIntentTarget(t *testing.T) {
	src := `
class NotAnActivity { }
class B extends Activity { void onCreate() { } }
class A extends Activity {
	void onCreate() {
		Intent good = new Intent(B.class);
		this.startActivity(good);
		Intent bad = new Intent(NotAnActivity.class);
		this.startActivity(bad);
	}
}`
	fs := findingsOf(Run(analyze(t, src, nil)), "bad-intent-target")
	if len(fs) != 1 || !strings.Contains(fs[0].Msg, "NotAnActivity") {
		t.Fatalf("findings = %v", fs)
	}
}

func TestIsolatedActivity(t *testing.T) {
	src := `
class Main extends Activity {
	void onCreate() {
		Intent i = new Intent(Second.class);
		this.startActivity(i);
	}
}
class Second extends Activity { void onCreate() { } }
class Orphan extends Activity { void onCreate() { } }`
	fs := findingsOf(Run(analyze(t, src, nil)), "isolated-activity")
	// Main (the launcher) and Orphan both lack incoming edges.
	if len(fs) != 2 {
		t.Fatalf("findings = %v", fs)
	}
	for _, f := range fs {
		if f.Severity != Info {
			t.Errorf("severity = %v", f.Severity)
		}
	}

	// No transitions at all: the checker stays quiet.
	quiet := `
class A extends Activity { void onCreate() { } }
class B extends Activity { void onCreate() { } }`
	if fs := findingsOf(Run(analyze(t, quiet, nil)), "isolated-activity"); len(fs) != 0 {
		t.Errorf("quiet app findings = %v", fs)
	}
}

package checks

import (
	"fmt"
	"sort"
	"strings"

	"gator/internal/cfg"
	"gator/internal/core"
	"gator/internal/dataflow"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/lifecycle"
	"gator/internal/platform"
	"gator/internal/trace"
)

// Context carries the solved reference analysis plus lazily built
// flow-sensitive artifacts shared across passes: per-method CFGs, nullness
// solutions, and the site → operation index. One Context serves one app;
// passes must not mutate it beyond the memoization the accessors perform.
type Context struct {
	Res *core.Result

	// Trace, when non-nil, receives one dataflow event per nullness solve
	// with the method name and its block-visit count.
	Trace *trace.Scope

	cfgs     map[*ir.Method]*cfg.Graph
	nullRes  map[*ir.Method]*dataflow.Result[dataflow.NullFact]
	siteOps  map[*ir.Invoke][]*graph.OpNode
	methOps  map[*ir.Method][]*graph.OpNode
	nullSeed map[*ir.Invoke]dataflow.NullVal
	indexed  bool

	// Program-point flowsTo machinery (flowsto.go).
	reach         map[*ir.Method]*dataflow.ReachingDefs
	allocsAt      map[*ir.New][]graph.Value
	fieldNodes    map[*ir.Field]*graph.FieldNode
	viewIDByRes   map[int]graph.Value
	layoutIDByRes map[int]graph.Value
	classNodes    map[*ir.Class]graph.Value
	valIndexed    bool

	// Lifecycle schedule (lifecycle.go), built on first ordering query.
	sched *lifecycle.Schedule
}

// NewContext prepares a pass context over one solved analysis.
func NewContext(res *core.Result) *Context {
	return &Context{
		Res:     res,
		cfgs:    map[*ir.Method]*cfg.Graph{},
		nullRes: map[*ir.Method]*dataflow.Result[dataflow.NullFact]{},
	}
}

// AppMethods returns every application method with a body, in deterministic
// (class, signature) order.
func (c *Context) AppMethods() []*ir.Method {
	var out []*ir.Method
	for _, cl := range c.Res.Prog.AppClasses() {
		for _, m := range cl.MethodsSorted() {
			if m.Body != nil {
				out = append(out, m)
			}
		}
	}
	return out
}

// CFG returns the memoized control-flow graph of a method.
func (c *Context) CFG(m *ir.Method) *cfg.Graph {
	if g, ok := c.cfgs[m]; ok {
		return g
	}
	g := cfg.Build(m)
	c.cfgs[m] = g
	return g
}

// buildIndexes populates the site → operations and method → operations maps
// and the nullness seeds, once.
func (c *Context) buildIndexes() {
	if c.indexed {
		return
	}
	c.indexed = true
	c.siteOps = map[*ir.Invoke][]*graph.OpNode{}
	c.methOps = map[*ir.Method][]*graph.OpNode{}
	for _, op := range c.Res.Graph.Ops() {
		if op.Site != nil {
			c.siteOps[op.Site] = append(c.siteOps[op.Site], op)
		}
		if op.Method != nil {
			c.methOps[op.Method] = append(c.methOps[op.Method], op)
		}
	}

	// Nullness seeds: a find-view site is definitely null when every
	// operation node materialized for it is live (receiver and id reached)
	// yet produces no view in the solution. This is the reference-analysis
	// seeding of the nullness lattice: it turns the flow-insensitive
	// "dangling findViewById" call-site fact into per-dereference facts.
	c.nullSeed = map[*ir.Invoke]dataflow.NullVal{}
	for site, ops := range c.siteOps {
		val, ok := c.seedForSite(site, ops)
		if ok {
			c.nullSeed[site] = val
		}
	}

	// Empty-helper-call seeds: a call to an application helper whose solved
	// result is empty, while the callee demonstrably produces views (it
	// contains find-view operations), returns null at this site. The merged
	// insensitive solution rarely proves such a result empty — some other
	// caller usually keeps it alive; under Options.ContextSensitivity the
	// per-caller clone split can empty exactly one caller's result, and
	// these seeds are where that sharper precision frontier reaches the
	// nullness checker.
	for _, m := range c.AppMethods() {
		ir.WalkStmts(m.Body, func(s ir.Stmt) {
			inv, ok := s.(*ir.Invoke)
			if !ok || inv.Dst == nil || inv.Recv == nil || len(c.siteOps[inv]) > 0 {
				return
			}
			if len(c.Res.VarPointsTo(inv.Dst)) != 0 || len(c.Res.VarPointsTo(inv.Recv)) == 0 {
				return
			}
			if !c.viewHelperCall(inv) {
				return
			}
			c.nullSeed[inv] = dataflow.NullVal{
				K:   dataflow.Null,
				Why: fmt.Sprintf("%s at %s can never return a view", callName(inv), inv.At),
			}
		})
	}
}

// viewHelperCall reports whether every dispatch target of a call is a
// modeled application method whose returned values are all modeled
// one-to-one by the constraint graph, and at least one target performs
// find-view operations — the shape of a "find and return a view" helper.
// Only such calls are safe to seed null on an empty result: there an
// empty solution genuinely proves the helper returns nothing, whereas a
// return fed through an unmodeled construct (an opaque platform call, an
// untracked field) leaves the solution empty while the runtime value is
// real.
func (c *Context) viewHelperCall(s *ir.Invoke) bool {
	decl := s.Recv.TypeClass
	if decl == nil {
		return false
	}
	anyCallee, anyFind := false, false
	for _, cls := range c.Res.Prog.AppClasses() {
		if cls.IsInterface || !cls.SubtypeOf(decl) {
			continue
		}
		callee := cls.Dispatch(s.Key)
		if callee == nil {
			continue
		}
		if callee.Body == nil {
			return false // dispatches into unmodeled code
		}
		if !c.returnsModeled(callee) {
			return false // result flows through an unmodeled construct
		}
		anyCallee = true
		for _, op := range c.methOps[callee] {
			switch op.Kind {
			case platform.OpFindView1, platform.OpFindView2, platform.OpFindView3:
				anyFind = true
			}
		}
	}
	return anyCallee && anyFind
}

// returnsModeled reports whether every value a method can return is modeled
// one-to-one by the constraint graph, following copy chains back through
// the body (see varModeled). Emptiness of the method's solved result is
// provable only then.
func (c *Context) returnsModeled(m *ir.Method) bool {
	ok := true
	visited := map[*ir.Var]bool{}
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		ret, isRet := s.(*ir.Return)
		if !isRet || ret.Src == nil {
			return
		}
		if !c.varModeled(m, ret.Src, visited) {
			ok = false
		}
	})
	return ok
}

// varModeled reports whether every definition of v inside m is one the
// graph models one-to-one (per defValues). Copies recurse into their
// source: defValues answers ok for a copy regardless of how the source
// was produced, which is sound for FlowsToAt's shrink-only use but not
// for proving emptiness. A variable with no definitions holds its entry
// value — a parameter or receiver binding, which call edges model.
func (c *Context) varModeled(m *ir.Method, v *ir.Var, visited map[*ir.Var]bool) bool {
	if visited[v] {
		return true
	}
	visited[v] = true
	modeled := true
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		if !modeled || ir.Def(s) != v {
			return
		}
		if cp, isCopy := s.(*ir.Copy); isCopy {
			if !c.varModeled(m, cp.Src, visited) {
				modeled = false
			}
			return
		}
		if _, ok := c.defValues(s); !ok {
			modeled = false
		}
	})
	return modeled
}

func (c *Context) seedForSite(site *ir.Invoke, ops []*graph.OpNode) (dataflow.NullVal, bool) {
	if site.Dst == nil {
		return dataflow.NullVal{}, false
	}
	seen := false
	var why string
	for _, op := range ops {
		switch op.Kind {
		case platform.OpFindView1, platform.OpFindView2, platform.OpFindView3:
		default:
			return dataflow.NullVal{}, false
		}
		if op.Out == nil || len(c.Res.OpReceivers(op)) == 0 {
			// Dead op (receiver never materializes): no conclusion.
			return dataflow.NullVal{}, false
		}
		if op.Kind != platform.OpFindView3 {
			ids := idNames(c.Res.OpArg(op, 0))
			if len(ids) == 0 {
				return dataflow.NullVal{}, false
			}
			why = fmt.Sprintf("findViewById(%s) at %s can never find a view", joinNames(ids), opPos(op))
		} else {
			name := site.Key
			if i := strings.IndexByte(name, '('); i >= 0 {
				name = name[:i]
			}
			why = fmt.Sprintf("%s at %s can never retrieve a view", name, opPos(op))
		}
		if len(c.Res.OpResults(op)) != 0 {
			return dataflow.NullVal{}, false
		}
		seen = true
	}
	if !seen {
		return dataflow.NullVal{}, false
	}
	return dataflow.NullVal{K: dataflow.Null, Why: why}, true
}

// Nullness returns the memoized nullness solution of a method, seeded by
// the reference analysis.
func (c *Context) Nullness(m *ir.Method) *dataflow.Result[dataflow.NullFact] {
	if r, ok := c.nullRes[m]; ok {
		return r
	}
	c.buildIndexes()
	r := dataflow.SolveNullness(c.CFG(m), func(s *ir.Invoke) (dataflow.NullVal, bool) {
		v, ok := c.nullSeed[s]
		return v, ok
	})
	c.nullRes[m] = r
	if c.Trace.Enabled() {
		c.Trace.Dataflow(m.String(), int64(r.Visits))
	}
	return r
}

// OpsAt returns the operation nodes materialized for one call site.
func (c *Context) OpsAt(site *ir.Invoke) []*graph.OpNode {
	c.buildIndexes()
	return c.siteOps[site]
}

// OpsIn returns the operation nodes whose containing method is m.
func (c *Context) OpsIn(m *ir.Method) []*graph.OpNode {
	c.buildIndexes()
	return c.methOps[m]
}

// receiverIDs returns the sorted value IDs of an operation's receiver
// solution.
func (c *Context) receiverIDs(op *graph.OpNode) []int {
	vals := c.Res.OpReceivers(op)
	out := make([]int, 0, len(vals))
	for _, v := range vals {
		out = append(out, v.ID())
	}
	sort.Ints(out)
	return out
}

// intersects reports whether two sorted int slices share an element.
func intersects(a, b []int) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			return true
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return false
}

package checks

// Ordering-aware checkers backed by the lifecycle automaton (package
// lifecycle). Where the other solution passes ask *which* views flow where,
// these ask *when*: each finding combines a reference-analysis fact (a GUI
// operation materialized in some method) with a callback-ordering fact from
// the lifestate transition table (nothing follows onDestroy; onPause can
// follow onResume; show() during teardown targets a dying window). The
// ordering side of every finding is queryable through
// `gator -explain order:Class.cb1.cb2`, which renders the transition-rule
// derivation behind the CanFollow/AliveAt fact a checker relied on.

import (
	"fmt"
	"sort"

	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/lifecycle"
	"gator/internal/platform"
)

// Schedule returns the memoized lifecycle schedule of the analyzed program.
func (c *Context) Schedule() *lifecycle.Schedule {
	if c.sched == nil {
		c.sched = lifecycle.Order(c.Res.Prog)
	}
	return c.sched
}

// reachableFrom returns every application method with a body reachable from
// root through invokes, root included, in deterministic BFS order. Calls
// without a static target fan out over every application subtype's dispatch
// — the same over-approximation the solver's call edges use, which is what
// lets the ordering checkers see through helper chains.
func (c *Context) reachableFrom(root *ir.Method) []*ir.Method {
	if root == nil || root.Body == nil {
		return nil
	}
	seen := map[*ir.Method]bool{}
	queue := []*ir.Method{root}
	var out []*ir.Method
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		if m == nil || m.Body == nil || seen[m] {
			continue
		}
		seen[m] = true
		out = append(out, m)
		ir.WalkStmts(m.Body, func(s ir.Stmt) {
			inv, ok := s.(*ir.Invoke)
			if !ok {
				return
			}
			if inv.Target != nil {
				queue = append(queue, inv.Target)
				return
			}
			if inv.Recv == nil || inv.Recv.TypeClass == nil {
				return
			}
			for _, cls := range c.Res.Prog.AppClasses() {
				if cls.IsInterface || !cls.SubtypeOf(inv.Recv.TypeClass) {
					continue
				}
				if callee := cls.Dispatch(inv.Key); callee != nil && callee.Body != nil {
					queue = append(queue, callee)
				}
			}
		})
	}
	return out
}

// callbackBody returns the overridden body of a parameterless lifecycle
// callback on a component class, or nil.
func (c *Context) callbackBody(class, cb string) *ir.Method {
	cl := c.Res.Prog.Class(class)
	if cl == nil {
		return nil
	}
	m := cl.Dispatch(ir.MethodKey(cb, nil))
	if m == nil || m.Body == nil {
		return nil
	}
	return m
}

// guiConstruction reports whether an operation kind builds up GUI state —
// the work that is dead (and leak-prone) once no callback can follow.
func guiConstruction(k platform.OpKind) bool {
	switch k {
	case platform.OpInflate1, platform.OpInflate2, platform.OpAddView1,
		platform.OpAddView2, platform.OpSetListener, platform.OpMenuAdd,
		platform.OpShowDialog:
		return true
	}
	return false
}

// describeOp names an operation kind the way the findings talk about it.
func describeOp(k platform.OpKind) string {
	switch k {
	case platform.OpInflate1:
		return "layout inflation"
	case platform.OpInflate2, platform.OpAddView1:
		return "setContentView"
	case platform.OpAddView2:
		return "addView"
	case platform.OpSetListener:
		return "listener registration"
	case platform.OpMenuAdd:
		return "menu population"
	case platform.OpShowDialog:
		return "Dialog.show()"
	}
	return k.String()
}

// inWords describes where an operation's method sits relative to the
// lifecycle callback the finding is about.
func inWords(m, root *ir.Method, class, cb string) string {
	if m == root {
		return fmt.Sprintf("in %s.%s", class, cb)
	}
	return fmt.Sprintf("in %s, reachable from %s.%s", m.QualifiedName(), class, cb)
}

// checkUseAfterDestroy flags GUI-construction operations that run during a
// callback after which the component can never receive another callback.
// For activities that is onDestroy: the automaton's Destroyed state is
// absorbing, so views inflated, listeners registered, or dialogs shown
// there can never serve an event — the work is dead and pins the destroyed
// activity in memory.
func checkUseAfterDestroy(ctx *Context) []Finding {
	var out []Finding
	for _, comp := range ctx.Schedule().Components() {
		for _, cb := range comp.Callbacks {
			if comp.AliveAt(cb) {
				continue
			}
			root := ctx.callbackBody(comp.Class, cb)
			for _, m := range ctx.reachableFrom(root) {
				for _, op := range ctx.OpsIn(m) {
					if !guiConstruction(op.Kind) {
						continue
					}
					out = append(out, Finding{
						Check:    "lifecycle-use-after-destroy",
						Severity: Warning,
						Pos:      opPos(op),
						Msg: fmt.Sprintf("%s %s: no callback can follow %s (%s is absorbing), so this GUI work is dead and leaks the destroyed %s",
							describeOp(op.Kind), inWords(m, root, comp.Class, cb), cb,
							lifecycle.Destroyed, comp.Kind),
						SuggestedFix: fmt.Sprintf("move the %s to a callback the component is still alive at, or delete it", describeOp(op.Kind)),
					})
				}
			}
		}
	}
	return dedup(out)
}

// checkListenerLeakOnPause flags listener registrations performed on every
// pass through onResume with no matching clear (setListener(null) on an
// overlapping view and the same event) reachable from onPause or onStop.
// The automaton says onPause can follow onResume and onResume can follow
// onPause, so the pair cycles: an uncleared registration stays live while
// the activity is paused and is stacked again on every resume.
func checkListenerLeakOnPause(ctx *Context) []Finding {
	var out []Finding
	for _, comp := range ctx.Schedule().Components() {
		if comp.Kind != lifecycle.KindActivity || !comp.CanFollow("onResume", "onPause") {
			continue
		}
		resume := ctx.callbackBody(comp.Class, "onResume")
		if resume == nil {
			continue
		}
		// A clearing registration: the listener argument's solution is
		// empty, i.e. only null reaches it.
		type clearing struct {
			event string
			recv  []int
		}
		var clears []clearing
		for _, cb := range []string{"onPause", "onStop"} {
			for _, m := range ctx.reachableFrom(ctx.callbackBody(comp.Class, cb)) {
				for _, op := range ctx.OpsIn(m) {
					if op.Kind == platform.OpSetListener && len(op.Args) > 0 &&
						len(ctx.Res.OpArg(op, 0)) == 0 {
						clears = append(clears, clearing{op.Event, ctx.receiverIDs(op)})
					}
				}
			}
		}
		for _, m := range ctx.reachableFrom(resume) {
			for _, op := range ctx.OpsIn(m) {
				if op.Kind != platform.OpSetListener || len(op.Args) == 0 {
					continue
				}
				if len(ctx.Res.OpArg(op, 0)) == 0 {
					continue // itself a clear
				}
				recv := ctx.receiverIDs(op)
				cleared := false
				for _, c := range clears {
					if c.event == op.Event && intersects(c.recv, recv) {
						cleared = true
						break
					}
				}
				if cleared {
					continue
				}
				out = append(out, Finding{
					Check:    "lifecycle-listener-leak-on-pause",
					Severity: Warning,
					Pos:      opPos(op),
					Msg: fmt.Sprintf("%s listener registered %s is never cleared on pause: onPause can follow onResume, so the handler stays registered while %s is paused and is registered again on every resume",
						op.Event, inWords(m, resume, comp.Class, "onResume"), comp.Class),
					SuggestedFix: fmt.Sprintf("clear the %s listener (setListener(null)) in %s.onPause or %s.onStop",
						op.Event, comp.Class, comp.Class),
				})
			}
		}
	}
	return dedup(out)
}

// checkDialogMisuse flags Dialog.show() calls reachable from an activity's
// teardown callbacks. Once onPause has run, the automaton permits onStop
// and onDestroy to follow without any user-visible phase in between: a
// dialog shown there appears over a window that is leaving the screen and
// leaks when the activity dies with the dialog still attached.
func checkDialogMisuse(ctx *Context) []Finding {
	var out []Finding
	for _, comp := range ctx.Schedule().Components() {
		if comp.Kind != lifecycle.KindActivity {
			continue
		}
		for _, cb := range []string{"onPause", "onStop", "onDestroy"} {
			root := ctx.callbackBody(comp.Class, cb)
			for _, m := range ctx.reachableFrom(root) {
				for _, op := range ctx.OpsIn(m) {
					if op.Kind != platform.OpShowDialog {
						continue
					}
					dialogs := "a dialog"
					if names := dialogClassNames(ctx, op); names != "" {
						dialogs = names
					}
					out = append(out, Finding{
						Check:    "lifecycle-dialog-misuse",
						Severity: Warning,
						Pos:      opPos(op),
						Msg: fmt.Sprintf("%s shown %s: the activity is leaving the foreground (onDestroy can follow %s with no user-visible phase), so the dialog opens over a dying window and leaks",
							dialogs, inWords(m, root, comp.Class, cb), cb),
						SuggestedFix: "dismiss or never show dialogs during teardown callbacks",
					})
				}
			}
		}
	}
	return dedup(out)
}

// dialogClassNames renders the receiver dialog classes of a show()
// operation, when the solution knows them.
func dialogClassNames(ctx *Context, op *graph.OpNode) string {
	names := map[string]bool{}
	for _, v := range ctx.Res.OpReceivers(op) {
		if a, ok := v.(*graph.AllocNode); ok {
			names[a.Class.Name] = true
		}
	}
	var sorted []string
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	if len(sorted) == 0 {
		return ""
	}
	joined := ""
	for i, n := range sorted {
		if i > 0 {
			joined += ", "
		}
		joined += n
	}
	return "dialog " + joined
}

package checks

import (
	"sort"
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/core"
	"gator/internal/graph"
	"gator/internal/ir"
	"gator/internal/layout"
)

func analyzeOpts(t *testing.T, src string, layouts map[string]string, opts core.Options) *core.Result {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	return core.Analyze(p, opts)
}

func methodOf(t *testing.T, res *core.Result, qualified string) *ir.Method {
	t.Helper()
	for _, cl := range res.Prog.AppClasses() {
		for _, m := range cl.MethodsSorted() {
			if m.QualifiedName() == qualified {
				return m
			}
		}
	}
	t.Fatalf("method %s not found", qualified)
	return nil
}

func viewIDsOf(res *core.Result, vals []graph.Value) []string {
	var out []string
	for _, v := range vals {
		for _, id := range res.Graph.ViewIDsOf(v) {
			out = append(out, id.Name)
		}
	}
	sort.Strings(out)
	return out
}

// TestFlowsToAtReassigned: a reassigned view variable merges both lookups
// flow-insensitively; FlowsToAt splits them per program point.
func TestFlowsToAtReassigned(t *testing.T) {
	src := `
class H implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.one);
		H h1 = new H();
		b.setOnClickListener(h1);
		b = this.findViewById(R.id.two);
		H h2 = new H();
		b.setOnClickListener(h2);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/one"/><Button android:id="@+id/two"/></LinearLayout>`,
	}
	res := analyzeOpts(t, src, layouts, core.Options{})
	ctx := NewContext(res)
	m := methodOf(t, res, "A.onCreate")

	var regs []*ir.Invoke
	var b *ir.Var
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		if inv, ok := s.(*ir.Invoke); ok && strings.HasPrefix(inv.Key, "setOnClickListener") {
			regs = append(regs, inv)
			b = inv.Recv
		}
	})
	if len(regs) != 2 || b == nil {
		t.Fatalf("found %d registration sites", len(regs))
	}

	merged := viewIDsOf(res, res.VarPointsTo(b))
	if got := strings.Join(merged, ","); got != "one,two" {
		t.Fatalf("flow-insensitive solution = %v, want both views", merged)
	}
	at1 := viewIDsOf(res, ctx.FlowsToAt(m, regs[0], b))
	at2 := viewIDsOf(res, ctx.FlowsToAt(m, regs[1], b))
	if strings.Join(at1, ",") != "one" || strings.Join(at2, ",") != "two" {
		t.Errorf("point-specific flowsTo = %v / %v, want [one] / [two]", at1, at2)
	}
}

// TestListenerResetReassignedNotFlagged: the two registrations target
// different views through one reused variable. The whole-method receiver
// solutions overlap, but the program-point sets do not — no finding.
func TestListenerResetReassignedNotFlagged(t *testing.T) {
	src := `
class H1 implements OnClickListener {
	void onClick(View v) { }
}
class H2 implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.one);
		H1 h1 = new H1();
		b.setOnClickListener(h1);
		b = this.findViewById(R.id.two);
		H2 h2 = new H2();
		b.setOnClickListener(h2);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/one"/><Button android:id="@+id/two"/></LinearLayout>`,
	}
	if fs := findingsOf(Run(analyzeOpts(t, src, layouts, core.Options{})), "listener-reset"); len(fs) != 0 {
		t.Errorf("reassigned variable flagged: %v", fs)
	}
}

// TestFlowsToAtParamEntryValue: a parameter redefined on only one path may
// still hold its caller-supplied value at the merge. FlowsToAt must keep
// the entry contribution — falling back to the flow-insensitive solution —
// rather than narrow to the explicit definitions.
func TestFlowsToAtParamEntryValue(t *testing.T) {
	src := `
class H implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View a = this.findViewById(R.id.one);
		this.reg(a);
	}
	void reg(View p) {
		if (*) {
			p = this.findViewById(R.id.two);
		}
		H h = new H();
		p.setOnClickListener(h);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/one"/><Button android:id="@+id/two"/></LinearLayout>`,
	}
	res := analyzeOpts(t, src, layouts, core.Options{})
	ctx := NewContext(res)
	m := methodOf(t, res, "A.reg")
	var reg *ir.Invoke
	ir.WalkStmts(m.Body, func(s ir.Stmt) {
		if inv, ok := s.(*ir.Invoke); ok && strings.HasPrefix(inv.Key, "setOnClickListener") {
			reg = inv
		}
	})
	if reg == nil {
		t.Fatal("registration site not found")
	}
	merged := viewIDsOf(res, res.VarPointsTo(reg.Recv))
	if got := strings.Join(merged, ","); got != "one,two" {
		t.Fatalf("flow-insensitive solution = %v, want both views", merged)
	}
	at := viewIDsOf(res, ctx.FlowsToAt(m, reg, reg.Recv))
	if got := strings.Join(at, ","); got != "one,two" {
		t.Errorf("point-specific flowsTo = %v, want both views (the entry value may reach)", at)
	}
}

// TestListenerResetParamEntryValueFlagged: on the path where the parameter
// keeps its caller-supplied view, the second registration replaces the
// first one's handler on that same view. Narrowing the registration-site
// receiver to the parameter's explicit definition alone would hide the
// defect.
func TestListenerResetParamEntryValueFlagged(t *testing.T) {
	src := `
class H1 implements OnClickListener {
	void onClick(View v) { }
}
class H2 implements OnClickListener {
	void onClick(View v) { }
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View a = this.findViewById(R.id.one);
		this.reg(a);
	}
	void reg(View p) {
		View q = this.findViewById(R.id.one);
		H1 h1 = new H1();
		q.setOnClickListener(h1);
		if (*) {
			p = this.findViewById(R.id.two);
		}
		H2 h2 = new H2();
		p.setOnClickListener(h2);
	}
}`
	layouts := map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/one"/><Button android:id="@+id/two"/></LinearLayout>`,
	}
	if fs := findingsOf(Run(analyzeOpts(t, src, layouts, core.Options{})), "listener-reset"); len(fs) != 1 {
		t.Errorf("parameter-entry replacement findings = %v, want exactly one", fs)
	}
}

// helperSrc: A1 asks its shared find-view helper for an id that exists only
// in A2's layout. The merged insensitive solution keeps A1's result alive
// through A2's hierarchy; the context-sensitive split proves it empty, and
// the empty-helper-call seed turns that into a null-view-deref at the use.
const helperSrc = `
class BaseAct extends Activity {
	View find(int id) {
		View v = this.findViewById(id);
		return v;
	}
}
class A1 extends BaseAct {
	void onCreate() {
		this.setContentView(R.layout.l1);
		View w = this.find(R.id.two);
		w.setId(R.id.one);
	}
}
class A2 extends BaseAct {
	void onCreate() {
		this.setContentView(R.layout.l2);
		View w = this.find(R.id.two);
		w.setId(R.id.two);
	}
}`

var helperLayouts = map[string]string{
	"l1": `<LinearLayout><Button android:id="@+id/one"/></LinearLayout>`,
	"l2": `<LinearLayout><Button android:id="@+id/two"/></LinearLayout>`,
}

// TestNullViewDerefHelperNeedsCtx is the precision-frontier regression:
// the same defect is invisible to the insensitive analysis and reported
// under both context-sensitive modes, at the dereference.
func TestNullViewDerefHelperNeedsCtx(t *testing.T) {
	if fs := findingsOf(Run(analyzeOpts(t, helperSrc, helperLayouts, core.Options{})), "null-view-deref"); len(fs) != 0 {
		t.Fatalf("insensitive analysis flagged the helper call: %v", fs)
	}
	for _, mode := range []core.CtxMode{core.Ctx1CFA, core.Ctx1Obj} {
		res := analyzeOpts(t, helperSrc, helperLayouts, core.Options{ContextSensitivity: mode})
		fs := findingsOf(Run(res), "null-view-deref")
		if len(fs) != 1 {
			t.Fatalf("%s: findings = %v", mode, fs)
		}
		f := fs[0]
		if !strings.Contains(f.Msg, "find at") || !strings.Contains(f.Msg, "can never return a view") {
			t.Errorf("%s: msg = %q", mode, f.Msg)
		}
		// At A1's dereference (w.setId), not the call or the helper body.
		if f.Pos.Line != 12 {
			t.Errorf("%s: pos = %v, want A1's dereference line", mode, f.Pos)
		}
	}
}

// helperOpaqueSrc: the shared helper performs a find-view operation, but
// what it returns flows through an unmodeled platform call. Its empty
// solved result proves nothing — at runtime the call may hand back a real
// view — so no mode may seed null on it.
const helperOpaqueSrc = `
class BaseAct extends Activity {
	View find(int id) {
		View v = this.findViewById(id);
		View w = this.decorate(v);
		return w;
	}
}
class A1 extends BaseAct {
	void onCreate() {
		this.setContentView(R.layout.l1);
		View w = this.find(R.id.one);
		w.setId(R.id.two);
	}
}`

func TestNullViewDerefHelperOpaqueReturnNotFlagged(t *testing.T) {
	layouts := map[string]string{
		"l1": `<LinearLayout><Button android:id="@+id/one"/></LinearLayout>`,
	}
	for _, mode := range []core.CtxMode{core.CtxOff, core.Ctx1CFA, core.Ctx1Obj} {
		res := analyzeOpts(t, helperOpaqueSrc, layouts, core.Options{ContextSensitivity: mode})
		if fs := findingsOf(Run(res), "null-view-deref"); len(fs) != 0 {
			t.Errorf("%s: opaque-return helper flagged: %v", mode, fs)
		}
	}
}

package lifecycle

import (
	"strings"
	"testing"

	"gator/internal/alite"
	"gator/internal/ir"
	"gator/internal/layout"
)

func callbacks(rules []Rule) []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range rules {
		if !seen[r.Callback] {
			seen[r.Callback] = true
			out = append(out, r.Callback)
		}
	}
	return out
}

// enumerate walks every execution the rule table permits from Init, up to
// maxLen callbacks, and records every ordered pair (a, b) where b ran after
// a (not necessarily adjacently). It shares no code with the closure in
// newComponent, so agreement is a real cross-check.
func enumerate(rules []Rule, maxLen int) map[[2]string]bool {
	pairs := map[[2]string]bool{}
	var walk func(state State, trace []string)
	walk = func(state State, trace []string) {
		if n := len(trace); n > 0 {
			for _, prev := range trace[:n-1] {
				pairs[[2]string{prev, trace[n-1]}] = true
			}
		}
		if len(trace) == maxLen {
			return
		}
		for _, r := range rules {
			if r.From == state {
				walk(r.To, append(trace, r.Callback))
			}
		}
	}
	walk(Init, nil)
	return pairs
}

// TestCanFollowMatchesTraceEnumeration is the core property test: the
// reachability-derived CanFollow relation must agree exactly with brute
// enumeration of rule-table executions. A pair CanFollow permits but no
// trace exhibits would be an ordering invented outside the transition
// table; a pair a trace exhibits but CanFollow denies would make every
// ordering checker unsound.
func TestCanFollowMatchesTraceEnumeration(t *testing.T) {
	for _, kind := range []ComponentKind{KindActivity, KindDialog} {
		c := newComponent("C", kind)
		// Both automatons have ≤7 states; 16 steps is enough to revisit
		// every cycle and stabilize the observed-pair set.
		pairs := enumerate(c.Rules(), 16)
		cbs := callbacks(c.Rules())
		for _, a := range cbs {
			for _, b := range cbs {
				got := c.CanFollow(a, b)
				want := pairs[[2]string{a, b}]
				if got != want {
					t.Errorf("%s: CanFollow(%s, %s) = %v, trace enumeration says %v",
						kind, a, b, got, want)
				}
			}
		}
	}
}

// TestDestroyedAbsorbing pins the fact the use-after-destroy checker rests
// on, from three independent angles: the table has no rule out of
// Destroyed, nothing can follow onDestroy, and the component is not alive
// at onDestroy.
func TestDestroyedAbsorbing(t *testing.T) {
	for _, kind := range []ComponentKind{KindActivity, KindDialog} {
		c := newComponent("C", kind)
		for _, r := range c.Rules() {
			if r.From == Destroyed {
				t.Errorf("%s: rule %s leaves the absorbing state", kind, r)
			}
		}
	}
	act := newComponent("C", KindActivity)
	for _, cb := range callbacks(act.Rules()) {
		if act.CanFollow("onDestroy", cb) {
			t.Errorf("CanFollow(onDestroy, %s) = true; Destroyed must be absorbing", cb)
		}
	}
	if act.AliveAt("onDestroy") {
		t.Error("AliveAt(onDestroy) = true; Destroyed must be absorbing")
	}
}

// TestAliveAtAgreesWithCanFollow: alive-after-cb is definitionally
// "some callback can still run", i.e. ∃cb2 CanFollow(cb, cb2).
func TestAliveAtAgreesWithCanFollow(t *testing.T) {
	for _, kind := range []ComponentKind{KindActivity, KindDialog} {
		c := newComponent("C", kind)
		cbs := callbacks(c.Rules())
		for _, a := range cbs {
			exists := false
			for _, b := range cbs {
				if c.CanFollow(a, b) {
					exists = true
					break
				}
			}
			if got := c.AliveAt(a); got != exists {
				t.Errorf("%s: AliveAt(%s) = %v but ∃cb2 CanFollow = %v", kind, a, got, exists)
			}
		}
	}
}

// TestJustifyWitnessIsValid checks that every positive Justify derivation
// is a real path: consecutive rules chain From/To states, the first rule is
// labeled cb1, the last cb2, and each cited transition is in the table.
func TestJustifyWitnessIsValid(t *testing.T) {
	for _, kind := range []ComponentKind{KindActivity, KindDialog} {
		c := newComponent("C", kind)
		inTable := func(r Rule) bool {
			for _, tr := range c.Rules() {
				if tr == r {
					return true
				}
			}
			return false
		}
		cbs := callbacks(c.Rules())
		for _, a := range cbs {
			for _, b := range cbs {
				path := c.witness(a, b)
				if (path != nil) != c.CanFollow(a, b) {
					t.Fatalf("%s: witness(%s, %s) presence disagrees with CanFollow", kind, a, b)
				}
				if path == nil {
					if txt, ok := c.Justify(a, b); ok || !strings.Contains(txt, "= false") {
						t.Errorf("%s: Justify(%s, %s) should render a refutation", kind, a, b)
					}
					continue
				}
				if path[0].Callback != a || path[len(path)-1].Callback != b {
					t.Errorf("%s: witness(%s, %s) endpoints wrong: %v", kind, a, b, path)
				}
				for i, r := range path {
					if !inTable(r) {
						t.Errorf("%s: witness cites rule %s not in the table", kind, r)
					}
					if i > 0 && path[i-1].To != r.From {
						t.Errorf("%s: witness(%s, %s) breaks at step %d: %v", kind, a, b, i, path)
					}
				}
				txt, ok := c.Justify(a, b)
				if !ok || !strings.Contains(txt, "[Lifestate]") || !strings.Contains(txt, "[Rule]") {
					t.Errorf("%s: Justify(%s, %s) missing derivation labels:\n%s", kind, a, b, txt)
				}
			}
		}
	}
}

func TestBefore(t *testing.T) {
	c := newComponent("C", KindActivity)
	if !c.Before("onCreate", "onDestroy") {
		t.Error("onCreate must happen-before onDestroy")
	}
	if c.Before("onPause", "onResume") || c.Before("onResume", "onPause") {
		t.Error("onPause/onResume alternate; neither strictly precedes the other")
	}
}

func TestOrderDerivesComponents(t *testing.T) {
	src := `class Main extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
	}
	void onDestroy() {
	}
}
class Prompt extends Dialog {
	void onStart() {
	}
}
class Helper {
	void run() {
	}
}
`
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{"main": layout.MustParse("main", `<LinearLayout/>`)}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	s := Order(p)
	comps := s.Components()
	if len(comps) != 2 {
		t.Fatalf("Components() = %d entries, want Main and Prompt", len(comps))
	}
	main, ok := s.Component("Main")
	if !ok || main.Kind != KindActivity {
		t.Fatalf("Main component missing or wrong kind: %+v", main)
	}
	if got := strings.Join(main.Callbacks, ","); got != "onCreate,onDestroy" {
		t.Errorf("Main.Callbacks = %s, want onCreate,onDestroy", got)
	}
	prompt, ok := s.Component("Prompt")
	if !ok || prompt.Kind != KindDialog {
		t.Fatalf("Prompt component missing or wrong kind: %+v", prompt)
	}
	if got := strings.Join(prompt.Callbacks, ","); got != "onStart" {
		t.Errorf("Prompt.Callbacks = %s, want onStart", got)
	}
	if _, ok := s.Component("Helper"); ok {
		t.Error("Helper is not a component but got a schedule")
	}
	if !prompt.CanFollow("onStop", "onStart") {
		t.Error("dialog re-show: onStart must be able to follow onStop")
	}
}

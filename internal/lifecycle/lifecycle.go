// Package lifecycle models the callback ordering of the modeled component
// kinds (activities and dialogs) as a lifestate automaton: a small state
// machine whose transitions are labeled with lifecycle callbacks. The
// declarative rule table plays the role of lifestate enable/disable facts —
// a callback is enabled exactly in the states a rule departs from — and the
// "callback happens-before" relation the checkers consume is derived from
// the table by reachability, never hand-listed.
//
// The automaton is a may-ordering over-approximation: CanFollow(a, b)
// answers "is there any framework-permitted execution in which b runs after
// a", the question an ordering checker must ask before calling a callback
// placement dead or leaky. Querying happens through Order, which instantiates
// the per-kind automaton for every component class of one analyzed program.
package lifecycle

import (
	"fmt"
	"sort"
	"strings"

	"gator/internal/ir"
	"gator/internal/platform"
)

// State is one lifecycle state of a component automaton.
type State int

const (
	// Init is the pre-creation state: the component object exists but the
	// framework has not delivered any callback yet.
	Init State = iota
	Created
	Started
	Resumed
	Paused
	Stopped
	// Destroyed is absorbing: no transition rule leaves it, so nothing can
	// follow onDestroy — the fact the use-after-destroy checker rests on.
	Destroyed
)

var stateNames = [...]string{
	Init:      "Init",
	Created:   "Created",
	Started:   "Started",
	Resumed:   "Resumed",
	Paused:    "Paused",
	Stopped:   "Stopped",
	Destroyed: "Destroyed",
}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "State?"
}

// ComponentKind selects which automaton a component follows.
type ComponentKind int

const (
	KindActivity ComponentKind = iota
	KindDialog
)

func (k ComponentKind) String() string {
	if k == KindDialog {
		return "dialog"
	}
	return "activity"
}

// Rule is one transition of the automaton: Callback may run exactly when
// the component is in From, and leaves it in To. The rule table is the
// machine-readable form of the framework's ordering contract; everything
// else in this package is derived from it.
type Rule struct {
	Callback string
	From, To State
}

func (r Rule) String() string {
	return fmt.Sprintf("%s -%s-> %s", r.From, r.Callback, r.To)
}

// ActivityRules is the activity lifecycle automaton. Two deliberate
// over-approximations keep the state set small: onRestart re-enters Created
// (permitting a direct onDestroy afterwards, which the real framework
// forbids between onRestart and onStart), and finish() inside onCreate is
// modeled as Created -onDestroy-> Destroyed. Both only add orderings, so a
// checker that requires an ordering to be impossible stays conservative.
func ActivityRules() []Rule {
	return []Rule{
		{"onCreate", Init, Created},
		{"onStart", Created, Started},
		{"onResume", Started, Resumed},
		{"onPause", Resumed, Paused},
		{"onResume", Paused, Resumed},
		{"onStop", Paused, Stopped},
		{"onRestart", Stopped, Created},
		{"onDestroy", Stopped, Destroyed},
		{"onDestroy", Created, Destroyed},
	}
}

// DialogRules is the dialog lifecycle automaton, over the callbacks the
// platform model delivers to explicitly created dialogs (see
// platform.DialogLifecycle): created once, then shown and hidden any number
// of times.
func DialogRules() []Rule {
	return []Rule{
		{"onCreate", Init, Created},
		{"onStart", Created, Started},
		{"onStop", Started, Stopped},
		{"onStart", Stopped, Started},
	}
}

// RulesFor returns the transition table of one component kind.
func RulesFor(kind ComponentKind) []Rule {
	if kind == KindDialog {
		return DialogRules()
	}
	return ActivityRules()
}

// Component is one component class's instantiated automaton plus the
// lifecycle callbacks the class actually overrides.
type Component struct {
	Class string
	Kind  ComponentKind
	// Callbacks are the lifecycle callbacks the class overrides with a
	// body, in the platform's table order.
	Callbacks []string

	rules []Rule
	// reach[s] is the set of states reachable from s via zero or more
	// transitions — the reflexive-transitive closure of the rule table.
	reach map[State]map[State]bool
}

func newComponent(class string, kind ComponentKind) *Component {
	rules := RulesFor(kind)
	reach := map[State]map[State]bool{}
	states := map[State]bool{Init: true}
	for _, r := range rules {
		states[r.From] = true
		states[r.To] = true
	}
	for s := range states {
		set := map[State]bool{s: true}
		queue := []State{s}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, r := range rules {
				if r.From == cur && !set[r.To] {
					set[r.To] = true
					queue = append(queue, r.To)
				}
			}
		}
		reach[s] = set
	}
	return &Component{Class: class, Kind: kind, rules: rules, reach: reach}
}

// Rules returns the component's transition table.
func (c *Component) Rules() []Rule { return c.rules }

// Known reports whether the automaton has any transition for cb — i.e.
// whether cb is a lifecycle callback of this component kind at all.
func (c *Component) Known(cb string) bool {
	for _, r := range c.rules {
		if r.Callback == cb {
			return true
		}
	}
	return false
}

// CanFollow reports whether some framework-permitted execution runs cb2
// (not necessarily immediately) after cb1: a transition labeled cb1 ends in
// a state from which a state enabling cb2 is reachable.
func (c *Component) CanFollow(cb1, cb2 string) bool {
	for _, r1 := range c.rules {
		if r1.Callback != cb1 {
			continue
		}
		for _, r2 := range c.rules {
			if r2.Callback == cb2 && c.reach[r1.To][r2.From] {
				return true
			}
		}
	}
	return false
}

// AliveAt reports whether the component can still receive any callback
// after cb returns. False exactly when every transition labeled cb ends in
// a dead end — for activities, only onDestroy.
func (c *Component) AliveAt(cb string) bool {
	for _, r1 := range c.rules {
		if r1.Callback != cb {
			continue
		}
		for _, r2 := range c.rules {
			if c.reach[r1.To][r2.From] {
				return true
			}
		}
	}
	return false
}

// Before is the derived strict happens-before relation: cb1 can precede
// cb2, and cb2 can never precede cb1. onCreate Before onDestroy holds;
// onPause Before onResume does not (they alternate).
func (c *Component) Before(cb1, cb2 string) bool {
	return c.CanFollow(cb1, cb2) && !c.CanFollow(cb2, cb1)
}

// Justify renders a provenance-style derivation for why cb2 can (or can
// never) follow cb1, in the same visual language as the solver's -explain
// trees: the conclusion first, then one premise line per transition rule of
// the shortest witness path. The returned ok mirrors CanFollow.
func (c *Component) Justify(cb1, cb2 string) (string, bool) {
	path := c.witness(cb1, cb2)
	head := fmt.Sprintf("canFollow(%s.%s, %s.%s)", c.Class, cb1, c.Class, cb2)
	var b strings.Builder
	if path == nil {
		fmt.Fprintf(&b, "%s = false  [Lifestate]\n", head)
		if !c.AliveAt(cb1) {
			fmt.Fprintf(&b, "└─ every transition labeled %s ends in an absorbing state (no rule leaves %s)\n",
				cb1, Destroyed)
		} else {
			fmt.Fprintf(&b, "└─ no state enabling %s is reachable after %s in the %s transition table\n",
				cb2, cb1, c.Kind)
		}
		return b.String(), false
	}
	fmt.Fprintf(&b, "%s  [Lifestate]\n", head)
	for i, r := range path {
		glyph := "├─"
		if i == len(path)-1 {
			glyph = "└─"
		}
		fmt.Fprintf(&b, "%s transition(%s)  [Rule]\n", glyph, r)
	}
	return b.String(), true
}

// witness returns the shortest rule sequence that starts with a transition
// labeled cb1 and ends with one labeled cb2, or nil when none exists. BFS
// over (state, rules-so-far) keeps it minimal; the table is tiny.
func (c *Component) witness(cb1, cb2 string) []Rule {
	type item struct {
		state State
		path  []Rule
	}
	var queue []item
	for _, r := range c.rules {
		if r.Callback == cb1 {
			queue = append(queue, item{r.To, []Rule{r}})
		}
	}
	seen := map[State]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, r := range c.rules {
			if r.From != it.state {
				continue
			}
			next := append(append([]Rule{}, it.path...), r)
			if r.Callback == cb2 {
				return next
			}
			if !seen[r.To] {
				seen[r.To] = true
				queue = append(queue, item{r.To, next})
			}
		}
	}
	return nil
}

// Schedule is the queryable callback-ordering model of one analyzed
// program: one Component per activity or dialog class.
type Schedule struct {
	comps map[string]*Component
}

// Order derives the lifecycle schedule of an analyzed program. The
// automaton per kind is fixed; what varies per component is which
// callbacks the class overrides, which is what the checkers pair with the
// ordering queries.
func Order(p *ir.Program) *Schedule {
	s := &Schedule{comps: map[string]*Component{}}
	for _, cl := range p.AppClasses() {
		if cl.IsInterface {
			continue
		}
		var kind ComponentKind
		var table []string
		switch {
		case p.IsActivityClass(cl):
			kind, table = KindActivity, platform.Lifecycle
		case p.IsDialogClass(cl):
			kind, table = KindDialog, platform.DialogLifecycle
		default:
			continue
		}
		comp := newComponent(cl.Name, kind)
		for _, name := range table {
			if m := cl.Dispatch(ir.MethodKey(name, nil)); m != nil && m.Body != nil {
				comp.Callbacks = append(comp.Callbacks, name)
			}
		}
		s.comps[cl.Name] = comp
	}
	return s
}

// Component returns the schedule of one component class.
func (s *Schedule) Component(class string) (*Component, bool) {
	c, ok := s.comps[class]
	return c, ok
}

// Components returns every component schedule in class-name order.
func (s *Schedule) Components() []*Component {
	out := make([]*Component, 0, len(s.comps))
	for _, c := range s.comps {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}

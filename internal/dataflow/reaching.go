package dataflow

import (
	"gator/internal/cfg"
	"gator/internal/ir"
)

// ReachingDefs is the classic reaching-definitions instance: at each program
// point, the set of assignments that may be the most recent writer of each
// variable along some path.
type ReachingDefs struct {
	g *cfg.Graph
	// defs indexes every defining statement of the method, in block order.
	defs []ir.Stmt
	// index maps a defining statement back to its bit.
	index map[ir.Stmt]int
	// kills maps each variable to the set of its defining statements.
	kills map[*ir.Var]Bits
	// entryBit assigns each defined variable a synthetic entry-definition
	// bit, numbered after the real definitions: set at method entry and
	// killed by every real definition of the variable. It lets clients
	// see that v may still hold its method-entry value (for parameters
	// and the receiver, the caller-supplied binding) at a point that
	// explicit definitions also reach — a variable redefined on only some
	// paths is not fully described by its defs at the merge.
	entryBit map[*ir.Var]int
	// entryAll is the method-entry fact: every synthetic bit set.
	entryAll Bits

	res *Result[Bits]
}

// NewReachingDefs solves reaching definitions over one CFG.
func NewReachingDefs(g *cfg.Graph) *ReachingDefs {
	rd := &ReachingDefs{
		g:     g,
		index: map[ir.Stmt]int{},
		kills: map[*ir.Var]Bits{},
	}
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if v := DefinedVar(s); v != nil {
				i := len(rd.defs)
				rd.defs = append(rd.defs, s)
				rd.index[s] = i
				rd.kills[v] = rd.kills[v].With(i)
			}
		}
	}
	rd.entryBit = map[*ir.Var]int{}
	for _, s := range rd.defs {
		v := DefinedVar(s)
		if _, ok := rd.entryBit[v]; ok {
			continue
		}
		i := len(rd.defs) + len(rd.entryBit)
		rd.entryBit[v] = i
		rd.kills[v] = rd.kills[v].With(i)
		rd.entryAll = rd.entryAll.With(i)
	}
	rd.res = Forward[Bits](g, rdAnalysis{rd})
	return rd
}

// Result exposes the solved block-boundary facts.
func (rd *ReachingDefs) Result() *Result[Bits] { return rd.res }

// DefsAt returns the definitions of v that reach the point immediately
// before target, in source order. ok is false when target is not part of
// the solved graph.
func (rd *ReachingDefs) DefsAt(target ir.Stmt, v *ir.Var) (defs []ir.Stmt, ok bool) {
	fact, ok := rd.res.At(target)
	if !ok {
		return nil, false
	}
	return rd.Defs(fact, v), true
}

// Defs decodes a fact into the statements it contains, restricted to
// definitions of v (pass nil for all variables), in source order.
// Synthetic entry definitions are skipped; see EntryReaches.
func (rd *ReachingDefs) Defs(fact Bits, v *ir.Var) []ir.Stmt {
	var out []ir.Stmt
	for _, i := range fact.Ones() {
		if i >= len(rd.defs) {
			continue // synthetic entry definition
		}
		s := rd.defs[i]
		if v == nil || DefinedVar(s) == v {
			out = append(out, s)
		}
	}
	return out
}

// EntryReaches reports whether v may still hold its method-entry value in
// fact — for parameters and the receiver, the caller-supplied binding. A
// variable with no definition in the method trivially does.
func (rd *ReachingDefs) EntryReaches(fact Bits, v *ir.Var) bool {
	bit, ok := rd.entryBit[v]
	if !ok {
		return true
	}
	return fact.Get(bit)
}

// rdAnalysis adapts ReachingDefs to the framework: a may (union) analysis
// with gen = {s} and kill = all other defs of the same variable.
type rdAnalysis struct{ rd *ReachingDefs }

func (a rdAnalysis) Bottom() Bits                                { return nil }
func (a rdAnalysis) Entry(g *cfg.Graph) Bits                     { return a.rd.entryAll }
func (a rdAnalysis) Join(x, y Bits) Bits                         { return x.Union(y) }
func (a rdAnalysis) Equal(x, y Bits) bool                        { return x.Equal(y) }
func (a rdAnalysis) Branch(c ir.Cond, taken bool, out Bits) Bits { return out }

func (a rdAnalysis) Transfer(s ir.Stmt, in Bits) Bits {
	v := DefinedVar(s)
	if v == nil {
		return in
	}
	return in.AndNot(a.rd.kills[v]).With(a.rd.index[s])
}

package dataflow

import (
	"gator/internal/cfg"
	"gator/internal/ir"
)

// NullKind is one point of the per-variable nullness lattice:
//
//	   Unknown (may be either)
//	   /            \
//	Null          NonNull
//	   \            /
//	 (unreachable: no fact)
//
// The full fact is a map from variable to NullKind where a missing entry
// means Unknown and the nil map is the bottom (unreachable) element.
type NullKind uint8

const (
	// NullUnknown is the lattice top: the variable may or may not be null.
	NullUnknown NullKind = iota
	// Null means the variable is definitely null at this point.
	Null
	// NonNull means the variable definitely holds an object.
	NonNull
)

func (k NullKind) String() string {
	switch k {
	case Null:
		return "null"
	case NonNull:
		return "non-null"
	}
	return "unknown"
}

// NullVal is the per-variable fact: the lattice point plus, for Null, a
// human-readable reason used in diagnostics ("findViewById(R.id.x) at ...
// never finds a view").
type NullVal struct {
	K   NullKind
	Why string
}

// NullFact maps variables to their nullness. The nil map is bottom
// (unreachable); a missing key is NullUnknown.
type NullFact map[*ir.Var]NullVal

// Get returns the fact for v (NullUnknown when absent or unreachable).
func (f NullFact) Get(v *ir.Var) NullVal { return f[v] }

// Nullness is the flow-sensitive null-tracking instance. Seed classifies
// call results using the solved reference analysis: a find-view call whose
// static solution is empty is definitely null — this is what turns the
// flow-insensitive "dangling findViewById" call-site guess into precise
// dereference-site diagnostics.
type Nullness struct {
	// Seed returns the nullness of an invoke result, and whether the seed
	// applies. Invokes without a seed produce NullUnknown results.
	Seed func(s *ir.Invoke) (NullVal, bool)
}

// SolveNullness runs the nullness analysis over one CFG.
func SolveNullness(g *cfg.Graph, seed func(s *ir.Invoke) (NullVal, bool)) *Result[NullFact] {
	return Forward[NullFact](g, &Nullness{Seed: seed})
}

func (nl *Nullness) Bottom() NullFact { return nil }

func (nl *Nullness) Entry(g *cfg.Graph) NullFact {
	f := NullFact{}
	if t := g.Method.This; t != nil {
		f[t] = NullVal{K: NonNull}
	}
	return f
}

// Join is the pointwise lattice join; keys agreeing in both maps survive,
// everything else rises to Unknown (dropped). Bottom is the identity.
func (nl *Nullness) Join(a, b NullFact) NullFact {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := NullFact{}
	for v, av := range a {
		bv, ok := b[v]
		if !ok || av.K != bv.K {
			continue
		}
		// Same kind: keep, with the lexicographically smaller reason so
		// joins are order-independent.
		if bv.Why < av.Why {
			av.Why = bv.Why
		}
		out[v] = av
	}
	return out
}

func (nl *Nullness) Equal(a, b NullFact) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for v, av := range a {
		if bv, ok := b[v]; !ok || av != bv {
			return false
		}
	}
	return true
}

// set returns a copy of f with v set (or cleared, for NullUnknown).
func (f NullFact) set(v *ir.Var, val NullVal) NullFact {
	out := make(NullFact, len(f)+1)
	for k, x := range f {
		out[k] = x
	}
	if val.K == NullUnknown {
		delete(out, v)
	} else {
		out[v] = val
	}
	return out
}

func (nl *Nullness) Transfer(s ir.Stmt, in NullFact) NullFact {
	if in == nil {
		return nil // unreachable stays unreachable
	}
	switch s := s.(type) {
	case *ir.ConstNull:
		return in.set(s.Dst, NullVal{K: Null, Why: "null assigned at " + s.At.String()})
	case *ir.New:
		return in.set(s.Dst, NullVal{K: NonNull})
	case *ir.ConstInt:
		return in.set(s.Dst, NullVal{K: NonNull})
	case *ir.ConstRes:
		return in.set(s.Dst, NullVal{K: NonNull})
	case *ir.ConstClass:
		return in.set(s.Dst, NullVal{K: NonNull})
	case *ir.Copy:
		return in.set(s.Dst, in.Get(s.Src))
	case *ir.Load:
		// Field contents are unknown; a completed load proves the base
		// was non-null.
		out := in.set(s.Dst, NullVal{})
		return out.set(s.Base, NullVal{K: NonNull})
	case *ir.Store:
		return in.set(s.Base, NullVal{K: NonNull})
	case *ir.Invoke:
		// A completed call proves the receiver non-null; the result takes
		// its seed from the reference analysis when one exists.
		out := in.set(s.Recv, NullVal{K: NonNull})
		if s.Dst != nil {
			val := NullVal{}
			if nl.Seed != nil {
				if sv, ok := nl.Seed(s); ok {
					val = sv
				}
			}
			out = out.set(s.Dst, val)
		}
		return out
	}
	return in
}

// Branch refines the fact along a null-test edge. An edge contradicting a
// definite fact is infeasible and yields bottom, which keeps downstream
// diagnostics quiet on paths that cannot execute.
func (nl *Nullness) Branch(c ir.Cond, taken bool, out NullFact) NullFact {
	if out == nil || c.Nondet || c.X == nil {
		return out
	}
	// "x == null" taken, or "x != null" not taken, means x is null here.
	isNull := taken != c.Negated
	cur := out.Get(c.X)
	if isNull {
		if cur.K == NonNull {
			return nil // infeasible edge
		}
		if cur.K == Null {
			return out
		}
		return out.set(c.X, NullVal{K: Null, Why: "tested == null"})
	}
	if cur.K == Null {
		return nil // infeasible edge
	}
	return out.set(c.X, NullVal{K: NonNull})
}

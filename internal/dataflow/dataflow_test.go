package dataflow

import (
	"testing"

	"gator/internal/alite"
	"gator/internal/cfg"
	"gator/internal/ir"
	"gator/internal/layout"
)

func buildCFG(t *testing.T, src, class, name string) *cfg.Graph {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ir.Build([]*alite.File{f}, map[string]*layout.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	c := p.Class(class)
	if c == nil {
		t.Fatalf("no class %s", class)
	}
	for _, m := range c.MethodsSorted() {
		if m.Name == name && m.Body != nil {
			return cfg.Build(m)
		}
	}
	t.Fatalf("no method %s.%s", class, name)
	return nil
}

func localVar(g *cfg.Graph, name string) *ir.Var {
	for _, v := range g.Method.Locals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// factAt returns the fact immediately before the first statement matching
// pred, replayed through the solved result.
func factAt[F any](res *Result[F], pred func(ir.Stmt) bool) (F, bool) {
	var out F
	found := false
	res.VisitStmts(func(b *cfg.Block, s ir.Stmt, before F) {
		if !found && pred(s) {
			out = before
			found = true
		}
	})
	return out, found
}

func TestBits(t *testing.T) {
	var b Bits
	if b.Get(3) {
		t.Error("empty set has members")
	}
	b = b.With(3).With(70)
	if !b.Get(3) || !b.Get(70) || b.Get(4) {
		t.Errorf("membership wrong: %v", b.Ones())
	}
	c := b.AndNot(Bits{}.With(3))
	if c.Get(3) || !c.Get(70) {
		t.Errorf("andnot wrong: %v", c.Ones())
	}
	u := c.Union(Bits{}.With(1))
	if got := u.Ones(); len(got) != 2 || got[0] != 1 || got[1] != 70 {
		t.Errorf("union wrong: %v", got)
	}
	if !b.Equal(Bits{}.With(70).With(3)) {
		t.Error("equal wrong")
	}
	// Trailing zero words are insignificant.
	if !(Bits{1, 0, 0}).Equal(Bits{1}) {
		t.Error("trailing zeros significant")
	}
}

func TestReachingDefsBranch(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		if (*) {
			b = new Button();
		}
		Button c = b;
	}
}`, "A", "onCreate")
	rd := NewReachingDefs(g)
	b := localVar(g, "b")

	// At the final copy, both defs of b (initial + branch) may reach.
	fact, ok := factAt(rd.Result(), func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Src == b
	})
	if !ok {
		t.Fatal("no copy of b found")
	}
	defs := rd.Defs(fact, b)
	if len(defs) != 2 {
		t.Fatalf("reaching defs of b = %d, want 2\n%s", len(defs), g.Dump())
	}
}

func TestReachingDefsKill(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		b = new Button();
		Button c = b;
	}
}`, "A", "onCreate")
	rd := NewReachingDefs(g)
	b := localVar(g, "b")
	fact, ok := factAt(rd.Result(), func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Src == b
	})
	if !ok {
		t.Fatal("no copy of b found")
	}
	// The second assignment kills the first.
	if defs := rd.Defs(fact, b); len(defs) != 1 {
		t.Fatalf("reaching defs of b = %d, want 1", len(defs))
	}
}

func TestReachingDefsLoop(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		while (*) {
			b = new Button();
		}
		Button c = b;
	}
}`, "A", "onCreate")
	rd := NewReachingDefs(g)
	b := localVar(g, "b")
	fact, ok := factAt(rd.Result(), func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Src == b
	})
	if !ok {
		t.Fatal("no copy of b found")
	}
	// Zero or more iterations: both defs reach the loop exit.
	if defs := rd.Defs(fact, b); len(defs) != 2 {
		t.Fatalf("reaching defs of b = %d, want 2", len(defs))
	}
}

func TestReachingDefsEntryValue(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void reg(Button p) {
		if (*) {
			p = new Button();
		}
		Button c = p;
	}
}`, "A", "reg")
	rd := NewReachingDefs(g)
	p := localVar(g, "p")
	fact, ok := factAt(rd.Result(), func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Src == p
	})
	if !ok {
		t.Fatal("no copy of p found")
	}
	// One explicit def reaches the merge, and the parameter may still hold
	// its caller-supplied entry value along the untaken branch.
	if defs := rd.Defs(fact, p); len(defs) != 1 {
		t.Fatalf("reaching defs of p = %d, want 1", len(defs))
	}
	if !rd.EntryReaches(fact, p) {
		t.Error("entry value does not reach the merge")
	}
}

func TestReachingDefsEntryValueKilled(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void reg(Button p) {
		p = new Button();
		Button c = p;
	}
}`, "A", "reg")
	rd := NewReachingDefs(g)
	p := localVar(g, "p")
	fact, ok := factAt(rd.Result(), func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Src == p
	})
	if !ok {
		t.Fatal("no copy of p found")
	}
	if rd.EntryReaches(fact, p) {
		t.Error("entry value survives an unconditional redefinition")
	}
}

func TestNullnessStraightLine(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = null;
		Button c = new Button();
		Button d = b;
	}
}`, "A", "onCreate")
	res := SolveNullness(g, nil)
	out := res.Out[g.Exit.Index]
	if got := out.Get(localVar(g, "b")); got.K != Null {
		t.Errorf("b = %v, want null", got)
	}
	if got := out.Get(localVar(g, "c")); got.K != NonNull {
		t.Errorf("c = %v, want non-null", got)
	}
	if got := out.Get(localVar(g, "d")); got.K != Null {
		t.Errorf("d (copy of null) = %v, want null", got)
	}
	if got := out.Get(g.Method.This); got.K != NonNull {
		t.Errorf("this = %v, want non-null", got)
	}
}

func TestNullnessJoin(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = null;
		if (*) {
			b = new Button();
		}
		Button c = b;
	}
}`, "A", "onCreate")
	res := SolveNullness(g, nil)
	// After the join b may be either: unknown.
	if got := res.Out[g.Exit.Index].Get(localVar(g, "b")); got.K != NullUnknown {
		t.Errorf("b after join = %v, want unknown", got)
	}
}

func TestNullnessBranchRefinement(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		View c = b.findViewById(R.id.x);
		if (c == null) {
			View d = c;
		} else {
			View e = c;
		}
	}
}`, "A", "onCreate")
	res := SolveNullness(g, nil)
	c := localVar(g, "c")
	thenFact, ok := factAt(res, func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Dst == localVar(g, "d")
	})
	if !ok {
		t.Fatal("then-branch copy not found")
	}
	if got := thenFact.Get(c); got.K != Null {
		t.Errorf("c in then branch = %v, want null", got)
	}
	elseFact, _ := factAt(res, func(s ir.Stmt) bool {
		cp, isCopy := s.(*ir.Copy)
		return isCopy && cp.Dst == localVar(g, "e")
	})
	if got := elseFact.Get(c); got.K != NonNull {
		t.Errorf("c in else branch = %v, want non-null", got)
	}
}

func TestNullnessInfeasibleEdge(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		if (b == null) {
			Button d = b;
		}
	}
}`, "A", "onCreate")
	res := SolveNullness(g, nil)
	// b is definitely non-null, so the then branch is infeasible: its
	// entry fact must be bottom (nil).
	thenBlk := g.Entry.Succs[0]
	if res.In[thenBlk.Index] != nil {
		t.Errorf("infeasible branch has fact %v", res.In[thenBlk.Index])
	}
}

func TestNullnessSeededInvoke(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.gone);
		View w = v;
	}
}`, "A", "onCreate")
	seed := func(s *ir.Invoke) (NullVal, bool) {
		if s.Dst != nil && s.Dst.Name == "v" {
			return NullVal{K: Null, Why: "findViewById(R.id.gone) never finds a view"}, true
		}
		return NullVal{}, false
	}
	res := SolveNullness(g, seed)
	out := res.Out[g.Exit.Index]
	if got := out.Get(localVar(g, "v")); got.K != Null {
		t.Errorf("seeded v = %v, want null", got)
	}
	if got := out.Get(localVar(g, "w")); got.K != Null || got.Why == "" {
		t.Errorf("copy w = %v, want null with reason", got)
	}
}

func TestNullnessDerefProvesNonNull(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		View v = this.findViewById(R.id.x);
		v.setId(R.id.y);
		View w = v;
	}
}`, "A", "onCreate")
	res := SolveNullness(g, nil)
	// After the call through v, v is proven non-null.
	if got := res.Out[g.Exit.Index].Get(localVar(g, "v")); got.K != NonNull {
		t.Errorf("v after deref = %v, want non-null", got)
	}
}

func TestNullnessLoopFixpoint(t *testing.T) {
	g := buildCFG(t, `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		while (*) {
			b = null;
		}
		Button c = b;
	}
}`, "A", "onCreate")
	res := SolveNullness(g, nil)
	// Around the loop b can be either: unknown at exit.
	if got := res.Out[g.Exit.Index].Get(localVar(g, "b")); got.K != NullUnknown {
		t.Errorf("b after loop = %v, want unknown", got)
	}
}

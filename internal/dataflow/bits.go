package dataflow

// Bits is a persistent-style bitset fact: operations return fresh sets and
// never mutate their receivers, as the solver requires of facts. The nil
// Bits is the empty set (and the Bottom of set-union instances).
type Bits []uint64

// Get reports whether bit i is set.
func (b Bits) Get(i int) bool {
	w := i / 64
	return w < len(b) && b[w]&(1<<(uint(i)%64)) != 0
}

// With returns a copy of b with bit i set.
func (b Bits) With(i int) Bits {
	w := i / 64
	n := len(b)
	if w >= n {
		n = w + 1
	}
	out := make(Bits, n)
	copy(out, b)
	out[w] |= 1 << (uint(i) % 64)
	return out
}

// Union returns b ∪ o, reusing b or o when one contains the other is not
// attempted; the result is always fresh unless one side is empty.
func (b Bits) Union(o Bits) Bits {
	if len(o) == 0 {
		return b
	}
	if len(b) == 0 {
		return o
	}
	n := len(b)
	if len(o) > n {
		n = len(o)
	}
	out := make(Bits, n)
	copy(out, b)
	for i, w := range o {
		out[i] |= w
	}
	return out
}

// AndNot returns b − o.
func (b Bits) AndNot(o Bits) Bits {
	if len(b) == 0 {
		return nil
	}
	out := make(Bits, len(b))
	copy(out, b)
	for i := range out {
		if i < len(o) {
			out[i] &^= o[i]
		}
	}
	return out
}

// Equal reports set equality (trailing zero words are insignificant).
func (b Bits) Equal(o Bits) bool {
	long, short := b, o
	if len(o) > len(b) {
		long, short = o, b
	}
	for i, w := range long {
		var ow uint64
		if i < len(short) {
			ow = short[i]
		}
		if w != ow {
			return false
		}
	}
	return true
}

// Ones returns the set members in increasing order.
func (b Bits) Ones() []int {
	var out []int
	for i, w := range b {
		for j := 0; j < 64; j++ {
			if w&(1<<uint(j)) != 0 {
				out = append(out, i*64+j)
			}
		}
	}
	return out
}

// Package dataflow is a generic forward dataflow framework over the
// control-flow graphs of package cfg: a worklist solver parameterized by a
// join-semilattice of facts and a per-statement transfer function, with an
// optional branch-refinement hook for conditional edges.
//
// Two concrete instances ship with the framework: reaching definitions
// (reaching.go) and a nullness lattice seeded by the reference analysis
// (nullness.go). Client checkers layer additional instances on top (see
// internal/checks).
//
// Soundness over the flow-insensitive solution: the reference analysis
// computes, for every variable, an over-approximation of the values it may
// ever hold. A forward instance here only *orders* those facts along CFG
// paths; it never invents values the solution lacks, so a client that warns
// when a property holds on the over-approximated fact set inherits the
// solution's soundness argument (see DESIGN.md, "Flow-sensitive layer").
package dataflow

import (
	"gator/internal/cfg"
	"gator/internal/ir"
)

// Analysis defines one forward dataflow problem over fact type F.
//
// The solver treats Bottom as the identity of Join and the fact of
// unreachable code. Transfer must be pure: it must not mutate its input
// fact. Branch refines a block-exit fact along one conditional edge; an
// instance with no branch sensitivity returns out unchanged.
type Analysis[F any] interface {
	// Bottom is the identity fact: joined with anything it disappears, and
	// unreachable blocks keep it.
	Bottom() F
	// Entry is the fact holding at method entry.
	Entry(g *cfg.Graph) F
	// Join combines facts at control-flow merges.
	Join(a, b F) F
	// Equal decides fixpoint convergence.
	Equal(a, b F) bool
	// Transfer computes the fact after one atomic statement.
	Transfer(s ir.Stmt, in F) F
	// Branch refines out along a conditional edge: taken is true for the
	// condition-true successor.
	Branch(c ir.Cond, taken bool, out F) F
}

// Result holds the solved block-boundary facts of one forward analysis.
type Result[F any] struct {
	Graph *cfg.Graph
	An    Analysis[F]
	// In and Out are the block-entry and block-exit facts, indexed by
	// Block.Index.
	In  []F
	Out []F
	// Visits counts block visits until fixpoint — the solver's convergence
	// cost, reported through the trace layer as a dataflow event.
	Visits int
}

// Forward solves a forward dataflow problem to fixpoint with a worklist,
// visiting blocks in index order (approximately reverse postorder for the
// structured CFGs package cfg builds), which keeps iteration counts low and
// results deterministic.
func Forward[F any](g *cfg.Graph, an Analysis[F]) *Result[F] {
	n := len(g.Blocks)
	res := &Result[F]{Graph: g, An: an, In: make([]F, n), Out: make([]F, n)}
	for i := 0; i < n; i++ {
		res.In[i] = an.Bottom()
		res.Out[i] = an.Bottom()
	}

	inWork := make([]bool, n)
	work := make([]int, 0, n)
	for i := 0; i < n; i++ {
		work = append(work, i)
		inWork[i] = true
	}
	for len(work) > 0 {
		// Pop the lowest-index block for deterministic near-RPO order.
		idx := work[0]
		work = work[1:]
		inWork[idx] = false
		blk := g.Blocks[idx]
		res.Visits++

		in := an.Bottom()
		if blk == g.Entry {
			in = an.Join(in, an.Entry(g))
		}
		for _, p := range blk.Preds {
			f := res.Out[p.Index]
			if p.Cond != nil {
				f = an.Branch(*p.Cond, p.Succs[0] == blk, f)
			}
			in = an.Join(in, f)
		}
		res.In[idx] = in

		out := in
		for _, s := range blk.Stmts {
			out = an.Transfer(s, out)
		}
		if an.Equal(out, res.Out[idx]) {
			continue
		}
		res.Out[idx] = out
		for _, s := range blk.Succs {
			if !inWork[s.Index] {
				inWork[s.Index] = true
				work = append(work, s.Index)
			}
		}
	}
	return res
}

// VisitStmts replays the transfer function through every block in index
// order, calling f with the fact holding immediately *before* each
// statement. This is how checkers read per-statement facts without the
// solver having to store them.
func (r *Result[F]) VisitStmts(f func(b *cfg.Block, s ir.Stmt, before F)) {
	for _, b := range r.Graph.Blocks {
		fact := r.In[b.Index]
		for _, s := range b.Stmts {
			f(b, s, fact)
			fact = r.An.Transfer(s, fact)
		}
	}
}

// At replays the transfer function through the containing block and returns
// the fact holding immediately *before* one statement — the per-program-point
// reading of a block-boundary solution. The second result is false when the
// statement is not part of the solved graph. Cost is one scan of the blocks
// plus one replay of the containing block's prefix; clients querying many
// points of one method should prefer VisitStmts.
func (r *Result[F]) At(target ir.Stmt) (F, bool) {
	for _, b := range r.Graph.Blocks {
		fact := r.In[b.Index]
		for _, s := range b.Stmts {
			if s == target {
				return fact, true
			}
			fact = r.An.Transfer(s, fact)
		}
	}
	var zero F
	return zero, false
}

// DefinedVar returns the variable a statement assigns, or nil: the def in
// "reaching definitions". It is ir.Def under the name dataflow clients use.
func DefinedVar(s ir.Stmt) *ir.Var { return ir.Def(s) }

// Package cache provides content-addressed caching for incremental
// re-analysis: stable fingerprints of compilation units (source files,
// layout files) and whole applications, an in-memory LRU parse cache shared
// across batch workers, and an optional on-disk store for rendered analysis
// outputs keyed by application fingerprint.
//
// Everything is keyed by content hash, never by file path or modification
// time, so a cache entry can never go stale: an edit changes the content,
// the content changes the key, and the old entry simply stops being asked
// for. The LRU bound (and, on disk, the caller-managed directory) controls
// the space cost.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sort"
	"sync"

	"gator/internal/alite"
)

// Hash returns the hex-encoded sha256 of a compilation unit's content,
// domain-separated by the unit's kind and name so a source file and a
// layout with identical bytes get distinct fingerprints.
func Hash(kind, name, content string) string {
	h := sha256.New()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(content))
	return hex.EncodeToString(h.Sum(nil))
}

// AppFingerprint combines the unit hashes of one application plus an
// options tag into one stable key: the units are sorted by name, so map
// iteration order cannot leak in.
func AppFingerprint(optionsTag string, sources, layouts map[string]string) string {
	var lines []string
	for name, src := range sources {
		lines = append(lines, Hash("source", name, src))
	}
	for name, xml := range layouts {
		lines = append(lines, Hash("layout", name, xml))
	}
	sort.Strings(lines)
	h := sha256.New()
	h.Write([]byte(optionsTag))
	h.Write([]byte{0})
	for _, l := range lines {
		h.Write([]byte(l))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ParseCache is a bounded, content-addressed cache of parsed ALite files.
// It is safe for concurrent use by batch workers; the cached *alite.File
// values are shared, which is sound because ir.Build treats ASTs as
// read-only.
type ParseCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element // unit hash → lru element
	lru     *list.List               // front = most recent; value = *parseEntry
	hits    int64
	misses  int64
}

type parseEntry struct {
	key  string
	file *alite.File
}

// DefaultParseEntries bounds the parse cache when the caller passes a
// non-positive size. Corpus files dominate batch workloads; a few thousand
// entries cover every app in the evaluation many times over.
const DefaultParseEntries = 4096

// NewParseCache creates a parse cache holding at most max files (<=0 uses
// DefaultParseEntries).
func NewParseCache(max int) *ParseCache {
	if max <= 0 {
		max = DefaultParseEntries
	}
	return &ParseCache{
		max:     max,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Parse returns the parsed form of one source file, parsing on miss, and
// reports whether the lookup hit. Two files with identical content share
// one AST regardless of app — the name participates in the key (it appears
// in positions), so shared corpus files across apps hit, while the same
// content under a different file name does not.
func (c *ParseCache) Parse(name, src string) (*alite.File, bool, error) {
	key := Hash("source", name, src)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		f := el.Value.(*parseEntry).file
		c.mu.Unlock()
		return f, true, nil
	}
	c.misses++
	c.mu.Unlock()

	// Parse outside the lock: distinct files parse concurrently. A racing
	// duplicate parse of the same content is wasted work, not an error —
	// last writer wins and both ASTs are valid.
	f, err := alite.Parse(name, src)
	if err != nil {
		return nil, false, err
	}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		f = el.Value.(*parseEntry).file
	} else {
		c.entries[key] = c.lru.PushFront(&parseEntry{key: key, file: f})
		for c.lru.Len() > c.max {
			last := c.lru.Back()
			c.lru.Remove(last)
			delete(c.entries, last.Value.(*parseEntry).key)
		}
	}
	c.mu.Unlock()
	return f, false, nil
}

// Stats returns the cumulative hit and miss counts.
func (c *ParseCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached files.
func (c *ParseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

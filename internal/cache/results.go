package cache

import (
	"container/list"
	"sync"
)

// DefaultResultBytes bounds the in-memory result cache when the caller
// passes a non-positive budget: rendered reports are small (a few KB), so
// 64 MiB holds tens of thousands of them.
const DefaultResultBytes = 64 << 20

// ResultCache is a byte-bounded, content-addressed, in-memory LRU of
// rendered analysis outputs. It is the server's first cache tier: identical
// submissions replay the stored report without touching the solver, and the
// byte budget — not an entry count — bounds memory, because rendered
// reports vary in size by orders of magnitude (a summary vs. a corpus-wide
// SARIF log). Safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	entries map[string]*list.Element
	lru     *list.List // front = most recent; value = *resultEntry
	hits    int64
	misses  int64
}

type resultEntry struct {
	key  string
	data []byte
}

// NewResultCache creates a result cache holding at most maxBytes of entry
// data (<= 0 uses DefaultResultBytes).
func NewResultCache(maxBytes int64) *ResultCache {
	if maxBytes <= 0 {
		maxBytes = DefaultResultBytes
	}
	return &ResultCache{
		max:     maxBytes,
		entries: map[string]*list.Element{},
		lru:     list.New(),
	}
}

// Get returns the stored bytes for key, reporting whether an entry exists.
// The returned slice is shared — callers must treat it as read-only.
func (c *ResultCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*resultEntry).data, true
}

// Put stores a copy of data under key, evicting least-recently-used entries
// to fit the byte budget. An entry larger than the whole budget is not
// stored. Re-putting an existing key refreshes its recency (entries are
// content-addressed, so the bytes cannot differ).
func (c *ResultCache) Put(key string, data []byte) {
	if int64(len(data)) > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return
	}
	kept := append([]byte(nil), data...)
	c.entries[key] = c.lru.PushFront(&resultEntry{key: key, data: kept})
	c.size += int64(len(kept))
	for c.size > c.max {
		last := c.lru.Back()
		c.lru.Remove(last)
		e := last.Value.(*resultEntry)
		delete(c.entries, e.key)
		c.size -= int64(len(e.data))
	}
}

// Stats returns the cumulative hit and miss counts.
func (c *ResultCache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the number of cached entries.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Size returns the total bytes of cached entry data.
func (c *ResultCache) Size() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.size
}

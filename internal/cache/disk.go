package cache

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// DiskStore persists rendered analysis outputs under a directory, one file
// per key. Keys are application fingerprints (hex strings), so entries are
// immutable: a Put never changes the meaning of an existing key, and
// concurrent writers of the same key write identical bytes. Used by the
// gator CLI's -cache-dir flag and gatord's result cache to skip re-analysis
// when neither the sources, the layouts, nor the requested report changed.
//
// A positive byte budget turns the store into an LRU: Get refreshes an
// entry's modification time, and Put evicts the least-recently-used entries
// once the total size exceeds the budget. Recency survives process
// restarts because it lives in the filesystem's mtimes, not in memory.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu   sync.Mutex
	size int64 // total entry bytes; tracked only when maxBytes > 0
}

// OpenDiskStore opens (creating if needed) a disk store rooted at dir.
// maxBytes bounds the total size of stored entries; <= 0 means unbounded.
// Opening a bounded store scans the directory once to learn its size.
func OpenDiskStore(dir string, maxBytes int64) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: opening store %s: %w", dir, err)
	}
	s := &DiskStore{dir: dir, maxBytes: maxBytes}
	if maxBytes > 0 {
		for _, e := range s.entries() {
			s.size += e.size
		}
	}
	return s, nil
}

// path maps a key to its entry file, sharding by the first two hex digits
// to keep directories small.
func (s *DiskStore) path(key string) (string, error) {
	if len(key) < 8 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("cache: invalid key %q", key)
	}
	return filepath.Join(s.dir, key[:2], key), nil
}

// Get returns the stored bytes for key, reporting whether an entry exists.
// On a bounded store a hit refreshes the entry's recency.
func (s *DiskStore) Get(key string) ([]byte, bool) {
	p, err := s.path(key)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	if s.maxBytes > 0 {
		now := time.Now()
		os.Chtimes(p, now, now) // best-effort; a failed bump only skews LRU order
	}
	return data, true
}

// Put stores data under key. The write goes through a temporary file and a
// rename, so readers never observe a partial entry. On a bounded store the
// least-recently-used entries are evicted until the total fits the budget;
// the entry just written is never evicted by its own Put.
func (s *DiskStore) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	var prev int64 // size of an existing entry this Put replaces
	if s.maxBytes > 0 {
		if info, err := os.Stat(p); err == nil {
			prev = info.Size()
		}
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if s.maxBytes > 0 {
		s.mu.Lock()
		s.size += int64(len(data)) - prev
		if s.size > s.maxBytes {
			s.evict(p)
		}
		s.mu.Unlock()
	}
	return nil
}

// Size returns the tracked total entry bytes (0 on an unbounded store,
// which does not track size).
func (s *DiskStore) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// diskEntry is one stored file during an eviction scan.
type diskEntry struct {
	path  string
	size  int64
	mtime time.Time
}

// entries lists every stored entry (skipping in-flight temporaries).
func (s *DiskStore) entries() []diskEntry {
	var out []diskEntry
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || strings.HasPrefix(d.Name(), ".put-") {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		out = append(out, diskEntry{path: path, size: info.Size(), mtime: info.ModTime()})
		return nil
	})
	return out
}

// evict removes least-recently-used entries until the store fits its
// budget, sparing keep (the entry that triggered the eviction). Called with
// s.mu held. The scan re-derives the true size, self-correcting any drift
// from entries other processes added or removed.
func (s *DiskStore) evict(keep string) {
	entries := s.entries()
	var total int64
	for _, e := range entries {
		total += e.size
	}
	sort.Slice(entries, func(i, j int) bool {
		if !entries[i].mtime.Equal(entries[j].mtime) {
			return entries[i].mtime.Before(entries[j].mtime)
		}
		return entries[i].path < entries[j].path // stable order for equal mtimes
	})
	for _, e := range entries {
		if total <= s.maxBytes {
			break
		}
		if e.path == keep {
			continue
		}
		if os.Remove(e.path) == nil {
			total -= e.size
		}
	}
	s.size = total
}

package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// DiskStore persists rendered analysis outputs under a directory, one file
// per key. Keys are application fingerprints (hex strings), so entries are
// immutable: a Put never changes the meaning of an existing key, and
// concurrent writers of the same key write identical bytes. Used by the
// gator CLI's -cache-dir flag to skip re-analysis when neither the sources,
// the layouts, nor the requested report changed.
type DiskStore struct {
	dir string
}

// OpenDiskStore opens (creating if needed) a disk store rooted at dir.
func OpenDiskStore(dir string) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: opening store %s: %w", dir, err)
	}
	return &DiskStore{dir: dir}, nil
}

// path maps a key to its entry file, sharding by the first two hex digits
// to keep directories small.
func (s *DiskStore) path(key string) (string, error) {
	if len(key) < 8 || strings.ContainsAny(key, "/\\.") {
		return "", fmt.Errorf("cache: invalid key %q", key)
	}
	return filepath.Join(s.dir, key[:2], key), nil
}

// Get returns the stored bytes for key, reporting whether an entry exists.
func (s *DiskStore) Get(key string) ([]byte, bool) {
	p, err := s.path(key)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores data under key. The write goes through a temporary file and a
// rename, so readers never observe a partial entry.
func (s *DiskStore) Put(key string, data []byte) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), ".put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

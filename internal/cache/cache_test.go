package cache

import (
	"fmt"
	"sync"
	"testing"
)

const src = `class Main extends Activity {
  void onCreate() { int x; x = R.layout.main; }
}`

func TestHashDomainSeparation(t *testing.T) {
	if Hash("source", "a", "x") == Hash("layout", "a", "x") {
		t.Fatal("source and layout hashes of identical content must differ")
	}
	if Hash("source", "a", "x") == Hash("source", "b", "x") {
		t.Fatal("hashes of identically-contented but differently-named units must differ")
	}
	if Hash("source", "a", "x") != Hash("source", "a", "x") {
		t.Fatal("hash must be deterministic")
	}
}

func TestAppFingerprintStable(t *testing.T) {
	s := map[string]string{"a.alite": "A", "b.alite": "B"}
	l := map[string]string{"main": "<LinearLayout/>"}
	f1 := AppFingerprint("opts", s, l)
	f2 := AppFingerprint("opts", map[string]string{"b.alite": "B", "a.alite": "A"}, l)
	if f1 != f2 {
		t.Fatal("fingerprint must not depend on map iteration order")
	}
	if f1 == AppFingerprint("other", s, l) {
		t.Fatal("options tag must participate in the fingerprint")
	}
	if f1 == AppFingerprint("opts", map[string]string{"a.alite": "A2", "b.alite": "B"}, l) {
		t.Fatal("content edit must change the fingerprint")
	}
}

func TestParseCacheHitsAndSharing(t *testing.T) {
	c := NewParseCache(8)
	f1, hit1, err := c.Parse("main.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	f2, hit2, err := c.Parse("main.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 {
		t.Fatal("identical content must share one AST")
	}
	if hit1 || !hit2 {
		t.Fatalf("got hit1=%v hit2=%v, want miss then hit", hit1, hit2)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("got hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Same content under another name is a distinct unit (positions differ).
	f3, _, err := c.Parse("other.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	if f3 == f1 {
		t.Fatal("different file name must not share the AST")
	}
}

func TestParseCacheError(t *testing.T) {
	c := NewParseCache(8)
	if _, _, err := c.Parse("bad.alite", "class {"); err == nil {
		t.Fatal("want parse error")
	}
	if c.Len() != 0 {
		t.Fatal("errors must not be cached")
	}
}

func TestParseCacheEviction(t *testing.T) {
	c := NewParseCache(2)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("f%d.alite", i)
		if _, _, err := c.Parse(name, "class C extends Object { }"); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("got %d entries, want LRU bound 2", c.Len())
	}
}

func TestParseCacheConcurrent(t *testing.T) {
	c := NewParseCache(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				name := fmt.Sprintf("f%d.alite", i%5)
				if _, _, err := c.Parse(name, src); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 5 {
		t.Fatalf("got %d entries, want 5", c.Len())
	}
}

func TestDiskStoreRoundTrip(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	key := Hash("source", "a", "content")
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store must miss")
	}
	if err := s.Put(key, []byte("report")); err != nil {
		t.Fatal(err)
	}
	data, ok := s.Get(key)
	if !ok || string(data) != "report" {
		t.Fatalf("got %q/%v, want report/true", data, ok)
	}
	// Invalid keys are rejected, not written somewhere surprising.
	if err := s.Put("../escape", []byte("x")); err == nil {
		t.Fatal("want error for traversal key")
	}
	if err := s.Put("short", []byte("x")); err == nil {
		t.Fatal("want error for short key")
	}
}

package cache

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// keyN derives a distinct valid store key.
func keyN(i int) string { return Hash("source", fmt.Sprintf("f%d", i), "x") }

// age pushes an entry's mtime into the past so LRU order is unambiguous
// even on filesystems with coarse timestamps.
func age(t *testing.T, s *DiskStore, key string, d time.Duration) {
	t.Helper()
	p, err := s.path(key)
	if err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-d)
	if err := os.Chtimes(p, old, old); err != nil {
		t.Fatal(err)
	}
}

func TestDiskStoreEvictsLRUOverBudget(t *testing.T) {
	// Budget fits two 100-byte entries; the third Put must evict the
	// least-recently-used one.
	s, err := OpenDiskStore(t.TempDir(), 250)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("r", 100))
	for i := 0; i < 2; i++ {
		if err := s.Put(keyN(i), data); err != nil {
			t.Fatal(err)
		}
	}
	age(t, s, keyN(0), 2*time.Hour)
	age(t, s, keyN(1), time.Hour)
	// A Get refreshes recency: touch entry 0 so entry 1 becomes the victim.
	if _, ok := s.Get(keyN(0)); !ok {
		t.Fatal("entry 0 must exist")
	}
	if err := s.Put(keyN(2), data); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyN(1)); ok {
		t.Fatal("entry 1 (LRU) must have been evicted")
	}
	for _, i := range []int{0, 2} {
		if _, ok := s.Get(keyN(i)); !ok {
			t.Fatalf("entry %d must have survived", i)
		}
	}
	if got := s.Size(); got != 200 {
		t.Fatalf("tracked size %d, want 200", got)
	}
}

func TestDiskStoreUnboundedNeverEvicts(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte(strings.Repeat("r", 1000))
	for i := 0; i < 10; i++ {
		if err := s.Put(keyN(i), data); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		if _, ok := s.Get(keyN(i)); !ok {
			t.Fatalf("entry %d missing from unbounded store", i)
		}
	}
}

func TestDiskStoreBoundedReopenLearnsSize(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyN(0), []byte(strings.Repeat("r", 300))); err != nil {
		t.Fatal(err)
	}
	// Reopening scans the directory: the tracked size reflects the existing
	// entry, so the budget applies across process restarts.
	s2, err := OpenDiskStore(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Size(); got != 300 {
		t.Fatalf("reopened size %d, want 300", got)
	}
	age(t, s2, keyN(0), time.Hour)
	if err := s2.Put(keyN(1), []byte(strings.Repeat("r", 800))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(keyN(0)); ok {
		t.Fatal("old entry must have been evicted to fit the budget")
	}
	if _, ok := s2.Get(keyN(1)); !ok {
		t.Fatal("new entry must survive its own Put")
	}
}

func TestDiskStoreReplaceSameKeyTracksSize(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyN(0), []byte(strings.Repeat("a", 400))); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyN(0), []byte(strings.Repeat("a", 400))); err != nil {
		t.Fatal(err)
	}
	if got := s.Size(); got != 400 {
		t.Fatalf("size after same-key re-put %d, want 400", got)
	}
}

func TestDiskStoreEvictionSkipsTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, 150)
	if err != nil {
		t.Fatal(err)
	}
	// A stale in-flight temporary must be invisible to the size scan.
	shard := filepath.Join(dir, "ab")
	if err := os.MkdirAll(shard, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(shard, ".put-stale"), []byte(strings.Repeat("x", 500)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(keyN(0), []byte(strings.Repeat("r", 100))); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(keyN(0)); !ok {
		t.Fatal("entry must survive: temp files do not count against the budget")
	}
}

func TestResultCacheLRUByBytes(t *testing.T) {
	c := NewResultCache(250)
	data := []byte(strings.Repeat("r", 100))
	c.Put(keyN(0), data)
	c.Put(keyN(1), data)
	if _, ok := c.Get(keyN(0)); !ok { // refresh 0 → 1 becomes LRU
		t.Fatal("entry 0 must exist")
	}
	c.Put(keyN(2), data)
	if _, ok := c.Get(keyN(1)); ok {
		t.Fatal("entry 1 (LRU) must have been evicted")
	}
	if got, ok := c.Get(keyN(2)); !ok || string(got) != string(data) {
		t.Fatal("entry 2 must round-trip")
	}
	if c.Len() != 2 || c.Size() != 200 {
		t.Fatalf("len=%d size=%d, want 2/200", c.Len(), c.Size())
	}
	hits, misses := c.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("stats hits=%d misses=%d, want both nonzero", hits, misses)
	}
}

func TestResultCacheOversizeEntryDropped(t *testing.T) {
	c := NewResultCache(50)
	c.Put(keyN(0), []byte(strings.Repeat("r", 100)))
	if _, ok := c.Get(keyN(0)); ok {
		t.Fatal("entry larger than the whole budget must not be stored")
	}
	if c.Size() != 0 {
		t.Fatalf("size %d, want 0", c.Size())
	}
}

func TestResultCacheCopiesOnPut(t *testing.T) {
	c := NewResultCache(0)
	buf := []byte("original")
	c.Put(keyN(0), buf)
	buf[0] = 'X'
	got, ok := c.Get(keyN(0))
	if !ok || string(got) != "original" {
		t.Fatalf("got %q, want insulated copy \"original\"", got)
	}
}

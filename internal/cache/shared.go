package cache

// SharedStore is a content-addressed result tier shared by several
// analysis nodes — in a cluster, the tier gatorproxy serves over HTTP and
// every gatord replica consults behind its local byte-LRU (and disk
// store, when configured). Keys are application fingerprints
// (AppFingerprint: unit content hashes + the options CacheTag), which are
// location-independent: any replica that solved the same input under the
// same options produced the same rendered bytes, so an entry written by
// one node is valid on every other node by construction. That content
// addressing is the cluster's whole coherence story — there is nothing to
// invalidate, ever (see DESIGN.md, "Cluster").
//
// Implementations must be safe for concurrent use and are expected to
// fail open: a Get that cannot reach the store reports a miss, and a Put
// that cannot reach it drops the entry. A degraded shared tier costs
// re-solves, never correctness.
type SharedStore interface {
	// Get returns the stored bytes for key and whether an entry exists.
	Get(key string) ([]byte, bool)
	// Put stores data under key (best-effort; errors are swallowed).
	Put(key string, data []byte)
}

package interp

import (
	"testing"

	"gator/internal/platform"
)

func TestMenuConcrete(t *testing.T) {
	src := `
class A extends Activity {
	int selections;
	void onCreate() {
	}
	void onCreateOptionsMenu(Menu menu) {
		MenuItem save = menu.add(R.id.menu_save);
	}
	void onOptionsItemSelected(MenuItem item) {
		LinearLayout marker = new LinearLayout();
		marker.setId(R.id.selected);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)

	add := siteObsByKind(t, p, obs, platform.OpMenuAdd)
	if len(add.Receivers) != 1 {
		t.Fatalf("add receivers = %v", add.Receivers)
	}
	for tag := range add.Receivers {
		if tag.Kind != TagMenu || tag.Class.Name != "A" {
			t.Errorf("receiver = %v", tag)
		}
	}
	if len(add.Results) != 1 {
		t.Fatalf("add results = %v", add.Results)
	}
	for tag := range add.Results {
		if tag.Kind != TagMenuItem {
			t.Errorf("result = %v", tag)
		}
	}

	// onOptionsItemSelected fired: its setId op was observed.
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Error("selection callback never fired")
	}
}

func TestAdapterConcrete(t *testing.T) {
	src := `
class RowAdapter implements Adapter {
	View getView(int position) {
		Button row = new Button();
		row.setId(R.id.row_id);
		return row;
	}
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		ListView list = (ListView) this.findViewById(R.id.list);
		RowAdapter ad = new RowAdapter();
		list.setAdapter(ad);
	}
}`
	p := buildProg(t, src, map[string]string{"main": `<LinearLayout><ListView android:id="@+id/list"/></LinearLayout>`})
	obs := run(t, p, 1)

	set := siteObsByKind(t, p, obs, platform.OpSetAdapter)
	if len(set.Receivers) != 1 || len(set.Args) != 1 {
		t.Fatalf("setAdapter obs = %+v", set)
	}
	// getView ran and its rows were attached: a child pair from the
	// ListView inflation node to the Button allocation exists.
	attached := false
	for pair := range obs.ChildPairs {
		if pair[0].Kind == TagInfl && pair[1].Kind == TagAlloc &&
			pair[1].Alloc.Class.Name == "Button" {
			attached = true
		}
	}
	if !attached {
		t.Errorf("adapter rows never attached: %v", obs.ChildPairs)
	}
}

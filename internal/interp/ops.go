package interp

import (
	"gator/internal/ir"
	"gator/internal/layout"
	"gator/internal/platform"
)

// execOp applies the concrete semantics of one Android operation (the
// semantic rules of Section 3.2), recording observations for the site.
func (in *Interp) execOp(site *ir.Invoke, target *ir.Method, recv *Object, args []Value) Value {
	api := target.API
	so := in.obs.site(site)
	switch api.Kind {
	case platform.OpInflate1:
		root := in.inflate(site, args[0])
		if root == nil {
			return Null
		}
		if api.AttachParent && api.ParentArg < len(args) {
			if parent := args[api.ParentArg].Obj; parent != nil {
				in.attachChild(parent, root)
			}
		}
		so.Results[root.Tag] = true
		return RefVal(root)

	case platform.OpInflate2:
		so.Receivers[recv.Tag] = true
		root := in.inflate(site, args[0])
		if root == nil {
			return Null
		}
		recv.ContentRoot = root
		in.obs.RootPairs[[2]Tag{recv.Tag, root.Tag}] = true
		return Null

	case platform.OpAddView1:
		so.Receivers[recv.Tag] = true
		view := args[0].Obj
		if view == nil {
			in.trap("setContentView(null)")
		}
		so.Args[view.Tag] = true
		recv.ContentRoot = view
		in.obs.RootPairs[[2]Tag{recv.Tag, view.Tag}] = true
		return Null

	case platform.OpAddView2:
		so.Receivers[recv.Tag] = true
		child := args[0].Obj
		if child == nil {
			in.trap("addView(null)")
		}
		so.Args[child.Tag] = true
		in.attachChild(recv, child)
		in.obs.ChildPairs[[2]Tag{recv.Tag, child.Tag}] = true
		return Null

	case platform.OpSetId:
		so.Receivers[recv.Tag] = true
		recv.ViewID = args[0].Int
		return Null

	case platform.OpSetListener:
		so.Receivers[recv.Tag] = true
		lst := args[0].Obj
		if lst == nil {
			return Null // clearing a listener
		}
		so.Args[lst.Tag] = true
		recv.AddListener(api.Event, lst)
		in.obs.ListenerPairs[[2]Tag{recv.Tag, lst.Tag}] = true
		return Null

	case platform.OpFindView1:
		so.Receivers[recv.Tag] = true
		found := findByID(recv, args[0].Int)
		if found != nil {
			so.Results[found.Tag] = true
			return RefVal(found)
		}
		return Null

	case platform.OpFindView2:
		so.Receivers[recv.Tag] = true
		if recv.ContentRoot == nil {
			return Null
		}
		found := findByID(recv.ContentRoot, args[0].Int)
		if found != nil {
			so.Results[found.Tag] = true
			return RefVal(found)
		}
		return Null

	case platform.OpFindView3:
		so.Receivers[recv.Tag] = true
		found := in.pickView(recv, api.Scope, args)
		if found != nil {
			so.Results[found.Tag] = true
			return RefVal(found)
		}
		return Null

	case platform.OpRemoveView:
		so.Receivers[recv.Tag] = true
		if len(args) == 1 {
			if child := args[0].Obj; child != nil && child.Parent == recv {
				detach(child)
			}
			return Null
		}
		for _, child := range append([]*Object{}, recv.Children...) {
			detach(child)
		}
		return Null

	case platform.OpSetAdapter:
		so.Receivers[recv.Tag] = true
		if args[0].Obj != nil {
			so.Args[args[0].Obj.Tag] = true
			recv.Adapter = args[0].Obj
		}
		return Null

	case platform.OpMenuAdd:
		so.Receivers[recv.Tag] = true
		item := in.newObject(in.prog.Class("MenuItem"), Tag{Kind: TagMenuItem, InflSite: site})
		item.ViewID = args[0].Int
		recv.MenuItems = append(recv.MenuItems, item)
		so.Results[item.Tag] = true
		return RefVal(item)

	case platform.OpFindMenuItem:
		so.Receivers[recv.Tag] = true
		for _, item := range recv.MenuItems {
			if item.ViewID == args[0].Int {
				so.Results[item.Tag] = true
				return RefVal(item)
			}
		}
		return Null

	case platform.OpFindParent:
		so.Receivers[recv.Tag] = true
		if recv.Parent != nil {
			so.Results[recv.Parent.Tag] = true
			return RefVal(recv.Parent)
		}
		return Null

	case platform.OpSetIntentTarget:
		// Intent.setClass(C.class); returns the receiver for chaining.
		if args[0].Obj != nil {
			recv.IntentTarget = args[0].Obj.ClassTarget
		}
		return RefVal(recv)

	case platform.OpStartActivity:
		so.Receivers[recv.Tag] = true
		intent := args[0].Obj
		if intent == nil {
			in.trap("startActivity(null)")
		}
		target := intent.IntentTarget
		if target == nil || !in.prog.IsActivityClass(target) {
			return Null
		}
		targetTag := Tag{Kind: TagActivity, Class: target}
		in.obs.TransitionPairs[[2]Tag{recv.Tag, targetTag}] = true
		// Launch: a fresh instance of the target runs its creation
		// lifecycle (bounded, to keep cyclic launch chains finite).
		if len(in.activities) < 64 {
			act := in.newObject(target, targetTag)
			in.activities = append(in.activities, act)
			in.bootActivity(act)
		}
		return Null
	}
	return Null
}

// detach removes child from its parent's children list.
func detach(child *Object) {
	p := child.Parent
	if p == nil {
		return
	}
	for i, k := range p.Children {
		if k == child {
			p.Children = append(p.Children[:i:i], p.Children[i+1:]...)
			break
		}
	}
	child.Parent = nil
}

// attachChild links child under parent, re-parenting if needed and trapping
// on view-tree cycles (Android throws in both situations; re-parenting is
// tolerated here to keep exploration going).
func (in *Interp) attachChild(parent, child *Object) {
	if parent.IsDescendantOf(child) {
		in.trap("view-tree cycle: %s under %s", child.Class.Name, parent.Class.Name)
	}
	detach(child)
	child.Parent = parent
	parent.Children = append(parent.Children, child)
}

// findByID is the concrete find of rule FINDVIEW: preorder search of the
// subtree rooted at v (including v) for the first view with the id.
func findByID(v *Object, id int) *Object {
	if id == 0 {
		return nil
	}
	if v.ViewID == id {
		return v
	}
	for _, c := range v.Children {
		if f := findByID(c, id); f != nil {
			return f
		}
	}
	return nil
}

// pickView implements the findOne function of rule FINDVIEW3: some view with
// a run-time property. The choice is random (seeded); child-scope operations
// pick among direct children, descendant-scope among the whole subtree.
func (in *Interp) pickView(recv *Object, scope platform.Scope, args []Value) *Object {
	if scope == platform.ScopeChildren {
		if len(recv.Children) == 0 {
			return nil
		}
		// getChildAt(i) uses the index when valid.
		if len(args) == 1 && args[0].IsInt {
			if i := args[0].Int; i >= 0 && i < len(recv.Children) {
				return recv.Children[i]
			}
		}
		return recv.Children[in.rng.Intn(len(recv.Children))]
	}
	sub := recv.Subtree()
	return sub[in.rng.Intn(len(sub))]
}

// inflate instantiates the layout named by the id value (rules INFLATE1/2):
// fresh view objects for every layout node, parent-child links, and view
// ids. Objects are tagged with (site, layout, preorder path), matching the
// analysis's inflation nodes exactly.
func (in *Interp) inflate(site *ir.Invoke, idVal Value) *Object {
	name, ok := in.prog.R.LayoutName(idVal.Int)
	if !ok {
		in.trap("inflate of non-layout id %#x", idVal.Int)
	}
	l := in.prog.Layouts[name]
	path := 0
	var build func(n *layout.Node, parent *Object) *Object
	build = func(n *layout.Node, parent *Object) *Object {
		cls := in.prog.Class(n.Class)
		if n.Merge {
			cls = in.prog.Class("ViewGroup")
		}
		obj := in.newObject(cls, Tag{Kind: TagInfl, InflSite: site, Layout: name, Path: path})
		path++
		obj.OnClick = n.OnClick
		if n.ID != "" {
			if resID, ok := in.prog.R.ViewID(n.ID); ok {
				obj.ViewID = resID
			}
		}
		if parent != nil {
			obj.Parent = parent
			parent.Children = append(parent.Children, obj)
			in.obs.ChildPairs[[2]Tag{parent.Tag, obj.Tag}] = true
		}
		for _, ch := range n.Children {
			build(ch, obj)
		}
		return obj
	}
	return build(l.Root, nil)
}

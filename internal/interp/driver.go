package interp

import (
	"sort"

	"gator/internal/alite"
	"gator/internal/ir"
	"gator/internal/platform"
)

// Run explores the program: the platform implicitly creates every activity
// and drives it through its lifecycle callbacks, then a bounded event loop
// fires the registered GUI event handlers. Returns the recorded
// observations; the run ends early (without error) when the step budget is
// exhausted.
func (in *Interp) Run() (obs *Observations) {
	obs = in.obs
	defer func() {
		if r := recover(); r != nil && r != errBudget {
			panic(r)
		}
	}()

	// Implicit activity creation (rule: t := new a; t.onCreate(); ...).
	for _, c := range in.prog.AppClasses() {
		if c.IsInterface || !in.prog.IsActivityClass(c) {
			continue
		}
		act := in.newObject(c, Tag{Kind: TagActivity, Class: c})
		in.activities = append(in.activities, act)
		in.bootActivity(act)
	}

	for round := 0; round < in.cfg.EventRounds; round++ {
		in.fireEvents()
	}

	// Wind the activities down.
	for _, act := range in.activities {
		for _, name := range []string{"onPause", "onStop", "onDestroy"} {
			in.invokeCallback(act, name)
		}
	}
	return in.obs
}

// Observations returns the record so far (useful after an early stop).
func (in *Interp) Observations() *Observations { return in.obs }

// bootActivity runs the creation lifecycle and menu-population callback of
// an activity instance.
func (in *Interp) bootActivity(act *Object) {
	in.runLifecycle(act, false)
	m := act.Class.Dispatch(platform.MenuCreateCallback + "(R)")
	if m == nil || m.Body == nil || len(m.Params) != 1 {
		return
	}
	menu := in.newObject(in.prog.Class("Menu"), Tag{Kind: TagMenu, Class: act.Class})
	act.Menu = menu
	in.protect(func() { in.call(m, act, []Value{RefVal(menu)}) })
}

// runLifecycle drives creation-time callbacks on an activity or dialog.
func (in *Interp) runLifecycle(obj *Object, dialog bool) {
	names := platform.Lifecycle[:4] // onCreate, onStart, onRestart, onResume
	if dialog {
		names = platform.DialogLifecycle
	}
	for _, name := range names {
		in.invokeCallback(obj, name)
	}
}

// invokeCallback calls an app-defined zero-argument callback, trapping
// runtime errors so one failing callback does not end the exploration.
func (in *Interp) invokeCallback(obj *Object, name string) {
	m := obj.Class.Dispatch(ir.MethodKey(name, nil))
	if m == nil || m.Body == nil {
		return
	}
	in.protect(func() { in.call(m, obj, nil) })
}

// protect runs one driver action, recovering from traps.
func (in *Interp) protect(action func()) {
	defer func() {
		if r := recover(); r != nil && r != errTrap {
			panic(r)
		}
	}()
	action()
}

// fireEvents dispatches one round of GUI events: every registered
// (view, listener) pair's handlers, plus declarative android:onClick
// handlers on content views.
func (in *Interp) fireEvents() {
	// Snapshot the current (view, event, listener) triples; handlers may
	// register more listeners while running.
	type firing struct {
		view  *Object
		event string
		lst   *Object
	}
	var firings []firing
	views := in.liveViews()
	for _, v := range views {
		var events []string
		for e := range v.listeners {
			events = append(events, e)
		}
		sort.Strings(events)
		for _, e := range events {
			for _, lst := range v.Listeners(e) {
				firings = append(firings, firing{v, e, lst})
			}
		}
	}
	for _, f := range firings {
		spec, ok := platform.ListenerByEvent(f.event)
		if !ok {
			continue
		}
		for _, h := range spec.Handlers {
			m := f.lst.Class.Dispatch(handlerKey(h))
			if m == nil || m.Body == nil {
				continue
			}
			args := make([]Value, len(h.Params))
			for i, pn := range h.Params {
				if pn == "int" {
					args[i] = IntVal(0)
				} else {
					args[i] = Null
				}
			}
			for _, vi := range h.ViewParams {
				if vi < len(args) {
					args[vi] = RefVal(f.view)
				}
			}
			lst, m := f.lst, m
			in.protect(func() { in.call(m, lst, args) })
		}
	}

	// Adapter population: the platform asks each bound adapter for item
	// views and attaches them to the AdapterView.
	for _, v := range views {
		if v.Adapter == nil {
			continue
		}
		m := v.Adapter.Class.Dispatch("getView(I)")
		if m == nil || m.Body == nil {
			continue
		}
		v, m := v, m
		in.protect(func() {
			for k := 0; k < 2; k++ {
				res := in.call(m, v.Adapter, []Value{IntVal(k)})
				if res.Obj != nil && in.prog.IsViewClass(res.Obj.Class) && !v.IsDescendantOf(res.Obj) {
					if res.Obj.Parent == nil || res.Obj.Parent != v {
						in.attachChild(v, res.Obj)
						in.obs.ChildPairs[[2]Tag{v.Tag, res.Obj.Tag}] = true
					}
				}
			}
		})
	}

	// Options-menu selections: every added item fires the activity's
	// onOptionsItemSelected.
	for _, act := range append([]*Object{}, in.activities...) {
		if act.Menu == nil {
			continue
		}
		h := act.Class.Dispatch(platform.MenuSelectCallback + "(R)")
		if h == nil || h.Body == nil || len(h.Params) != 1 {
			continue
		}
		for _, item := range append([]*Object{}, act.Menu.MenuItems...) {
			act, h, item := act, h, item
			in.protect(func() { in.call(h, act, []Value{RefVal(item)}) })
		}
	}

	// Declarative onClick: views in an owner's content tree dispatch to the
	// owner's handler method.
	owners := append(append([]*Object{}, in.activities...), in.dialogs...)
	for _, owner := range owners {
		if owner.ContentRoot == nil {
			continue
		}
		for _, w := range owner.ContentRoot.Subtree() {
			if w.OnClick == "" {
				continue
			}
			m := owner.Class.Dispatch(w.OnClick + "(R)")
			if m == nil || m.Body == nil || len(m.Params) != 1 {
				continue
			}
			owner, m, w := owner, m, w
			in.protect(func() { in.call(m, owner, []Value{RefVal(w)}) })
		}
	}
}

// liveViews collects the view objects reachable from activity and dialog
// content roots, plus any view holding listeners reachable from fields of
// live objects. For simplicity and coverage, it scans all created objects.
func (in *Interp) liveViews() []*Object {
	seen := map[*Object]bool{}
	var out []*Object
	var visit func(o *Object)
	visit = func(o *Object) {
		if o == nil || seen[o] {
			return
		}
		seen[o] = true
		if in.prog.IsViewClass(o.Class) {
			out = append(out, o)
		}
		for _, c := range o.Children {
			visit(c)
		}
		visit(o.ContentRoot)
		// Follow reference fields.
		var fields []*ir.Field
		for f := range o.fields {
			fields = append(fields, f)
		}
		sort.Slice(fields, func(i, j int) bool { return fields[i].Sig() < fields[j].Sig() })
		for _, f := range fields {
			if v := o.GetField(f); v.Obj != nil {
				visit(v.Obj)
			}
		}
		// Follow registered listeners (they may hold more views).
		var events []string
		for e := range o.listeners {
			events = append(events, e)
		}
		sort.Strings(events)
		for _, e := range events {
			for _, l := range o.listeners[e] {
				visit(l)
			}
		}
	}
	for _, a := range in.activities {
		visit(a)
	}
	for _, d := range in.dialogs {
		visit(d)
	}
	return out
}

func handlerKey(h platform.HandlerSig) string {
	types := make([]alite.Type, len(h.Params))
	for i, pn := range h.Params {
		if pn == "int" {
			types[i] = alite.Type{Prim: alite.TypeInt}
		} else {
			types[i] = alite.Type{Name: pn}
		}
	}
	return ir.MethodKey(h.Name, types)
}

package interp

import (
	"errors"
	"fmt"
	"math/rand"

	"gator/internal/ir"
	"gator/internal/platform"
)

// Config bounds and seeds an exploration run.
type Config struct {
	// Seed drives all nondeterministic choices ('*' conditions, loop trip
	// counts, FindView3 picks, poke arguments).
	Seed int64
	// MaxSteps bounds the total number of executed statements.
	MaxSteps int
	// MaxLoopIter bounds iterations of any single loop execution.
	MaxLoopIter int
	// EventRounds is the number of GUI event-dispatch rounds.
	EventRounds int
}

// DefaultConfig returns sensible exploration bounds.
func DefaultConfig() Config {
	return Config{
		Seed:        1,
		MaxSteps:    200000,
		MaxLoopIter: 4,
		EventRounds: 6,
	}
}

// errTrap aborts one driver action (like an uncaught exception).
var errTrap = errors.New("runtime trap")

// errBudget aborts the whole run when MaxSteps is exhausted.
var errBudget = errors.New("step budget exhausted")

// Interp executes an ir.Program.
type Interp struct {
	prog *ir.Program
	cfg  Config
	rng  *rand.Rand
	obs  *Observations

	nextID     int
	activities []*Object
	dialogs    []*Object
	// inflaters caches the opaque LayoutInflater object per owner.
	inflaters map[*Object]*Object
}

// New creates an interpreter for prog. Zero Config fields take defaults.
func New(prog *ir.Program, cfg Config) *Interp {
	def := DefaultConfig()
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = def.MaxSteps
	}
	if cfg.MaxLoopIter == 0 {
		cfg.MaxLoopIter = def.MaxLoopIter
	}
	if cfg.EventRounds == 0 {
		cfg.EventRounds = def.EventRounds
	}
	return &Interp{
		prog:      prog,
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		obs:       newObservations(),
		inflaters: map[*Object]*Object{},
	}
}

func (in *Interp) newObject(c *ir.Class, tag Tag) *Object {
	in.nextID++
	return &Object{ID: in.nextID, Class: c, Tag: tag}
}

// trap aborts the current driver action.
func (in *Interp) trap(format string, args ...any) {
	_ = fmt.Sprintf(format, args...)
	in.obs.Trapped++
	panic(errTrap)
}

func (in *Interp) tick() {
	in.obs.Steps++
	if in.obs.Steps > in.cfg.MaxSteps {
		panic(errBudget)
	}
}

// frame is one activation record.
type frame struct {
	method *ir.Method
	vars   map[*ir.Var]Value
	ret    Value
	hasRet bool
}

func (f *frame) get(v *ir.Var) Value    { return f.vars[v] }
func (f *frame) set(v *ir.Var, x Value) { f.vars[v] = x }

// call invokes a method body with the given receiver and arguments.
func (in *Interp) call(m *ir.Method, this *Object, args []Value) Value {
	if m.Body == nil {
		return Value{}
	}
	f := &frame{method: m, vars: map[*ir.Var]Value{}}
	if m.This != nil {
		f.set(m.This, RefVal(this))
	}
	for i, p := range m.Params {
		if i < len(args) {
			f.set(p, args[i])
		}
	}
	in.exec(f, m.Body)
	return f.ret
}

// exec runs a statement list; returns true when a return was executed.
func (in *Interp) exec(f *frame, stmts []ir.Stmt) bool {
	for _, s := range stmts {
		in.tick()
		switch s := s.(type) {
		case *ir.New:
			in.execNew(f, s)
		case *ir.Copy:
			v := f.get(s.Src)
			if s.CastTo != nil && v.Obj != nil && !v.Obj.Class.SubtypeOf(s.CastTo) {
				in.trap("class cast: %s to %s", v.Obj.Class.Name, s.CastTo.Name)
			}
			f.set(s.Dst, v)
		case *ir.Load:
			base := f.get(s.Base)
			if base.Obj == nil {
				in.trap("null dereference loading %s", s.Field.Sig())
			}
			f.set(s.Dst, base.Obj.GetField(s.Field))
		case *ir.Store:
			base := f.get(s.Base)
			if base.Obj == nil {
				in.trap("null dereference storing %s", s.Field.Sig())
			}
			base.Obj.SetField(s.Field, f.get(s.Src))
		case *ir.ConstInt:
			f.set(s.Dst, IntVal(s.Value))
		case *ir.ConstRes:
			f.set(s.Dst, IntVal(s.ID))
		case *ir.ConstNull:
			f.set(s.Dst, Null)
		case *ir.ConstClass:
			obj := in.newObject(in.prog.Class("Class"), Tag{Kind: TagOpaque})
			obj.ClassTarget = s.Class
			f.set(s.Dst, RefVal(obj))
		case *ir.Invoke:
			in.execInvoke(f, s)
		case *ir.Return:
			if s.Src != nil {
				f.ret = f.get(s.Src)
			}
			f.hasRet = true
			return true
		case *ir.If:
			var taken bool
			if s.Cond.Nondet {
				taken = in.rng.Intn(2) == 0
			} else {
				isNull := f.get(s.Cond.X).Obj == nil
				taken = isNull != s.Cond.Negated
			}
			if taken {
				if in.exec(f, s.Then) {
					return true
				}
			} else if s.Else != nil {
				if in.exec(f, s.Else) {
					return true
				}
			}
		case *ir.While:
			for iter := 0; iter < in.cfg.MaxLoopIter; iter++ {
				in.tick()
				if s.Cond.Nondet {
					if in.rng.Intn(2) == 1 {
						break
					}
				} else {
					isNull := f.get(s.Cond.X).Obj == nil
					if isNull == s.Cond.Negated {
						break
					}
				}
				if in.exec(f, s.Body) {
					return true
				}
			}
		}
	}
	return false
}

func (in *Interp) execNew(f *frame, s *ir.New) {
	obj := in.newObject(s.Class, Tag{Kind: TagAlloc, Alloc: s})
	f.set(s.Dst, RefVal(obj))
	var args []Value
	for _, a := range s.Args {
		args = append(args, f.get(a))
	}
	if s.Ctor != nil {
		if s.Ctor.API != nil && s.Ctor.API.Kind == platform.OpSetIntentTarget {
			// new Intent(C.class): bind the target.
			if len(args) > 0 && args[0].Obj != nil {
				obj.IntentTarget = args[0].Obj.ClassTarget
			}
		} else {
			in.call(s.Ctor, obj, args)
		}
	}
	// Explicitly created dialogs receive lifecycle callbacks; defer them to
	// the driver by registration.
	if in.prog.IsDialogClass(s.Class) {
		in.dialogs = append(in.dialogs, obj)
		in.runLifecycle(obj, true)
	}
}

func (in *Interp) execInvoke(f *frame, s *ir.Invoke) {
	recv := f.get(s.Recv)
	if recv.Obj == nil {
		in.trap("call %s on null", s.Key)
	}
	var args []Value
	for _, a := range s.Args {
		args = append(args, f.get(a))
	}
	// Dynamic dispatch on the concrete class.
	target := recv.Obj.Class.Dispatch(s.Key)
	if target == nil {
		target = s.Target
	}
	if target == nil {
		// Opaque platform call: no effect, null/zero result.
		if s.Dst != nil {
			f.set(s.Dst, Null)
		}
		return
	}
	if target.API != nil {
		res := in.execOp(s, target, recv.Obj, args)
		if s.Dst != nil {
			f.set(s.Dst, res)
		}
		return
	}
	if target.Body == nil {
		// Modeled-but-bodyless platform method (e.g. getLayoutInflater).
		res := in.execMiscPlatform(target, recv.Obj)
		if s.Dst != nil {
			f.set(s.Dst, res)
		}
		return
	}
	res := in.call(target, recv.Obj, args)
	if s.Dst != nil {
		f.set(s.Dst, res)
	}
}

// execMiscPlatform handles typed platform helpers without API classification.
func (in *Interp) execMiscPlatform(m *ir.Method, recv *Object) Value {
	if m.Name == "getLayoutInflater" {
		if infl, ok := in.inflaters[recv]; ok {
			return RefVal(infl)
		}
		infl := in.newObject(in.prog.Class("LayoutInflater"), Tag{Kind: TagOpaque})
		in.inflaters[recv] = infl
		return RefVal(infl)
	}
	return Null
}

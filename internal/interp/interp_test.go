package interp

import (
	"testing"

	"gator/internal/alite"
	"gator/internal/corpus"
	"gator/internal/ir"
	"gator/internal/layout"
	"gator/internal/platform"
)

func buildProg(t *testing.T, src string, layouts map[string]string) *ir.Program {
	t.Helper()
	f, err := alite.Parse("test.alite", src)
	if err != nil {
		t.Fatal(err)
	}
	ls := map[string]*layout.Layout{}
	for name, xml := range layouts {
		ls[name] = layout.MustParse(name, xml)
	}
	p, err := ir.Build([]*alite.File{f}, ls)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func run(t *testing.T, p *ir.Program, seed int64) *Observations {
	t.Helper()
	return New(p, Config{Seed: seed}).Run()
}

// siteObsByKind finds the observation of the first op site of a kind.
func siteObsByKind(t *testing.T, p *ir.Program, obs *Observations, kind platform.OpKind) *SiteObs {
	t.Helper()
	for s, so := range obs.Sites {
		if s.Target != nil && s.Target.API != nil && s.Target.API.Kind == kind {
			return so
		}
	}
	t.Fatalf("no observed op of kind %v", kind)
	return nil
}

func TestLifecycleAndInflation(t *testing.T) {
	src := `
class A extends Activity {
	int created;
	void onCreate() {
		this.setContentView(R.layout.main);
	}
}`
	p := buildProg(t, src, map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`,
	})
	obs := run(t, p, 1)
	so := siteObsByKind(t, p, obs, platform.OpInflate2)
	if len(so.Receivers) != 1 {
		t.Fatalf("receivers = %v", so.Receivers)
	}
	for tag := range so.Receivers {
		if tag.Kind != TagActivity || tag.Class.Name != "A" {
			t.Errorf("receiver tag = %v", tag)
		}
	}
	if len(obs.RootPairs) != 1 {
		t.Errorf("root pairs = %v", obs.RootPairs)
	}
	if len(obs.ChildPairs) != 1 {
		t.Errorf("child pairs = %v", obs.ChildPairs)
	}
}

func TestFindViewByIdConcrete(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.go);
		v.setId(R.id.other);
		View w = this.findViewById(R.id.other);
	}
}`
	p := buildProg(t, src, map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`,
	})
	obs := run(t, p, 1)
	find := siteObsByKind(t, p, obs, platform.OpFindView2)
	if len(find.Results) == 0 {
		t.Fatal("findViewById observed no results")
	}
	for tag := range find.Results {
		if tag.Kind != TagInfl || tag.Layout != "main" || tag.Path != 1 {
			t.Errorf("result tag = %v", tag)
		}
	}
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Errorf("setId receivers = %v", set.Receivers)
	}
}

func TestEventDispatch(t *testing.T) {
	src := `
class Handler implements OnClickListener {
	int fired;
	void onClick(View v) {
		v.setId(R.id.marker);
	}
}
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View b = this.findViewById(R.id.go);
		Handler h = new Handler();
		b.setOnClickListener(h);
	}
}`
	p := buildProg(t, src, map[string]string{
		"main": `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`,
	})
	obs := run(t, p, 1)
	// The click fired: the handler's setId ran on the button.
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Fatalf("handler did not fire; setId receivers = %v", set.Receivers)
	}
	for tag := range set.Receivers {
		if tag.Kind != TagInfl || tag.Path != 1 {
			t.Errorf("setId receiver = %v", tag)
		}
	}
	if len(obs.ListenerPairs) != 1 {
		t.Errorf("listener pairs = %v", obs.ListenerPairs)
	}
}

func TestDeclarativeOnClickDispatch(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
	}
	void go(View v) {
		v.setId(R.id.marker);
	}
}`
	p := buildProg(t, src, map[string]string{
		"main": `<LinearLayout><Button android:onClick="go"/></LinearLayout>`,
	})
	obs := run(t, p, 1)
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Fatalf("declarative handler did not fire")
	}
}

func TestTrapsDoNotAbortRun(t *testing.T) {
	src := `
class A extends Activity {
	View missing;
	void onCreate() {
		View v = this.missing;
		View w = v.findViewById(R.id.go); // null dereference
	}
}
class B extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
	}
}`
	p := buildProg(t, src, map[string]string{"main": `<LinearLayout/>`})
	obs := run(t, p, 1)
	if obs.Trapped == 0 {
		t.Error("expected a trapped null dereference")
	}
	// B still ran.
	if len(obs.RootPairs) != 1 {
		t.Errorf("root pairs = %v", obs.RootPairs)
	}
}

func TestLoopAndBranchBounds(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		while (*) {
			LinearLayout v = new LinearLayout();
			if (*) {
				v.setId(R.id.a);
			} else {
				v.setId(R.id.b);
			}
		}
	}
}`
	p := buildProg(t, src, nil)
	obs := New(p, Config{Seed: 7, MaxLoopIter: 3}).Run()
	if obs.Steps == 0 {
		t.Fatal("nothing executed")
	}
	// Several seeds never exceed the loop bound (no hang = pass).
	for seed := int64(0); seed < 5; seed++ {
		New(p, Config{Seed: seed, MaxLoopIter: 3}).Run()
	}
}

func TestStepBudgetStopsRun(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.spin();
	}
	void spin() {
		this.spin(); // unbounded recursion
	}
}`
	p := buildProg(t, src, nil)
	obs := New(p, Config{Seed: 1, MaxSteps: 500}).Run()
	if obs.Steps < 500 {
		t.Errorf("steps = %d, want budget exhaustion", obs.Steps)
	}
}

func TestViewTreeCycleTrapped(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout x = new LinearLayout();
		LinearLayout y = new LinearLayout();
		x.addView(y);
		y.addView(x);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	if obs.Trapped == 0 {
		t.Error("view-tree cycle not trapped")
	}
}

func TestDialogLifecycle(t *testing.T) {
	src := `
class D extends Dialog {
	void onCreate() {
		this.setContentView(R.layout.d);
	}
}
class A extends Activity {
	void onCreate() {
		D d = new D();
		View v = d.findViewById(R.id.x);
		v.setId(R.id.y);
	}
}`
	p := buildProg(t, src, map[string]string{"d": `<LinearLayout><TextView android:id="@+id/x"/></LinearLayout>`})
	obs := run(t, p, 1)
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Fatalf("dialog content not found: %v", set.Receivers)
	}
}

func TestInflate1AttachParentConcrete(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		LinearLayout box = (LinearLayout) this.findViewById(R.id.box);
		LayoutInflater i = this.getLayoutInflater();
		i.inflate(R.layout.row, box);
		View cell = this.findViewById(R.id.cell);
		cell.setId(R.id.done);
	}
}`
	p := buildProg(t, src, map[string]string{
		"main": `<LinearLayout android:id="@+id/box"/>`,
		"row":  `<TextView android:id="@+id/cell"/>`,
	})
	obs := run(t, p, 1)
	// The attached row is reachable from the activity content.
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Fatalf("attached view not found via activity: %v", set.Receivers)
	}
	for tag := range set.Receivers {
		if tag.Layout != "row" {
			t.Errorf("receiver = %v, want row view", tag)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	p, err := ir.Build(corpus.Figure1ClosedFiles(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	a := New(p, Config{Seed: 42}).Run()
	b := New(p, Config{Seed: 42}).Run()
	if a.Steps != b.Steps {
		t.Errorf("steps differ: %d vs %d", a.Steps, b.Steps)
	}
	if len(a.Sites) != len(b.Sites) {
		t.Errorf("sites differ: %d vs %d", len(a.Sites), len(b.Sites))
	}
	if len(a.ListenerPairs) != len(b.ListenerPairs) {
		t.Errorf("listener pairs differ")
	}
}

func TestFigure1ClosedReachesTerminal(t *testing.T) {
	p, err := ir.Build(corpus.Figure1ClosedFiles(), corpus.Figure1Layouts())
	if err != nil {
		t.Fatal(err)
	}
	obs := New(p, Config{Seed: 3, EventRounds: 8}).Run()
	// addNewTerminalView ran: item_terminal was inflated at the Inflate1 op.
	found := false
	for s, so := range obs.Sites {
		if s.Target != nil && s.Target.API != nil && s.Target.API.Kind == platform.OpInflate1 {
			for tag := range so.Results {
				if tag.Layout == "item_terminal" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("addNewTerminalView never inflated item_terminal")
	}
	// The TerminalView allocation was observed as a SetId receiver.
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	for tag := range set.Receivers {
		if tag.Kind != TagAlloc || tag.Alloc.Class.Name != "TerminalView" {
			t.Errorf("setId receiver = %v", tag)
		}
	}
}

// Package interp is a concrete interpreter for ALite implementing the
// operational semantics of Section 3 of the paper: environments, a heap of
// objects, layout inflation, the view operations (set-content-view,
// add-view, set-id, set-listener, find-view), and the platform's implicit
// callbacks (activity lifecycle and GUI event dispatch).
//
// The interpreter serves as an executable ground-truth oracle: a seeded,
// bounded driver explores the application, and every Android operation
// records the concrete receivers, arguments, and results it observed, each
// tagged with its static abstraction. A static solution is sound for an
// execution iff it contains every observed abstraction; the ratio of
// solution size to observed size measures precision (the paper's Section 5
// case study, mechanized).
package interp

import (
	"fmt"

	"gator/internal/ir"
)

// TagKind discriminates the static abstraction of a concrete object.
type TagKind int

const (
	// TagAlloc is an object created by an application 'new'.
	TagAlloc TagKind = iota
	// TagInfl is a view created by inflating a layout node.
	TagInfl
	// TagActivity is a platform-created activity instance.
	TagActivity
	// TagMenu is the options menu of one activity class.
	TagMenu
	// TagMenuItem is a menu item created at one Menu.add site (the site is
	// carried in InflSite).
	TagMenuItem
	// TagOpaque is an unmodeled platform object (e.g. a LayoutInflater).
	TagOpaque
)

// Tag is the static abstraction of a concrete object. Tags are comparable
// and correspond 1:1 to the analysis's value nodes:
// TagAlloc ↔ graph.AllocNode (by allocation site), TagInfl ↔ graph.InflNode
// (by inflation call site, layout, and preorder path), TagActivity ↔
// graph.ActivityNode (by class).
type Tag struct {
	Kind TagKind
	// Alloc is the allocation site for TagAlloc.
	Alloc *ir.New
	// InflSite is the inflation call site for TagInfl; nil when the
	// inflation was driven by a synthesized callback.
	InflSite *ir.Invoke
	// Layout and Path identify the layout node for TagInfl.
	Layout string
	Path   int
	// Class is the activity class for TagActivity.
	Class *ir.Class
}

func (t Tag) String() string {
	switch t.Kind {
	case TagAlloc:
		return fmt.Sprintf("alloc:%s@%s", t.Alloc.Class.Name, t.Alloc.Pos())
	case TagInfl:
		return fmt.Sprintf("infl:%s:%d@%v", t.Layout, t.Path, t.InflSite.Pos())
	case TagActivity:
		return "activity:" + t.Class.Name
	case TagMenu:
		return "menu:" + t.Class.Name
	case TagMenuItem:
		return fmt.Sprintf("menuitem@%v", t.InflSite.Pos())
	default:
		return "opaque"
	}
}

// Object is one heap object.
type Object struct {
	ID    int
	Class *ir.Class
	Tag   Tag

	// fields holds reference and int field values.
	fields map[*ir.Field]Value

	// View state (meaningful for view objects).
	Children []*Object
	Parent   *Object
	ViewID   int // resource constant, 0 when unset
	// OnClick is the declarative android:onClick handler name, if any.
	OnClick string
	// listeners maps event name to registered listener objects.
	listeners map[string][]*Object

	// ContentRoot is the content view of an activity or dialog.
	ContentRoot *Object

	// ClassTarget is the class a Class-literal object denotes.
	ClassTarget *ir.Class
	// IntentTarget is the component class an Intent object targets.
	IntentTarget *ir.Class

	// Menu is the options menu of an activity object; MenuItems are the
	// items added to a menu object.
	Menu      *Object
	MenuItems []*Object

	// Adapter is the list adapter bound to an AdapterView.
	Adapter *Object
}

// Value is an ALite runtime value: an integer or a reference (possibly nil).
type Value struct {
	IsInt bool
	Int   int
	Obj   *Object // nil means null for references
}

// Null is the null reference.
var Null = Value{}

// IntVal makes an integer value.
func IntVal(i int) Value { return Value{IsInt: true, Int: i} }

// RefVal makes a reference value.
func RefVal(o *Object) Value { return Value{Obj: o} }

func (v Value) String() string {
	switch {
	case v.IsInt:
		return fmt.Sprintf("%d", v.Int)
	case v.Obj == nil:
		return "null"
	default:
		return fmt.Sprintf("%s#%d", v.Obj.Class.Name, v.Obj.ID)
	}
}

// GetField reads a field (zero value when never written).
func (o *Object) GetField(f *ir.Field) Value {
	if v, ok := o.fields[f]; ok {
		return v
	}
	return Value{IsInt: !f.Type.IsRef()}
}

// SetField writes a field.
func (o *Object) SetField(f *ir.Field, v Value) {
	if o.fields == nil {
		o.fields = map[*ir.Field]Value{}
	}
	o.fields[f] = v
}

// Listeners returns the listeners registered for an event.
func (o *Object) Listeners(event string) []*Object { return o.listeners[event] }

// AddListener registers a listener for an event (idempotent per object).
func (o *Object) AddListener(event string, lst *Object) {
	if o.listeners == nil {
		o.listeners = map[string][]*Object{}
	}
	for _, x := range o.listeners[event] {
		if x == lst {
			return
		}
	}
	o.listeners[event] = append(o.listeners[event], lst)
}

// IsDescendantOf reports whether o is v or below v in the view tree.
func (o *Object) IsDescendantOf(v *Object) bool {
	for x := o; x != nil; x = x.Parent {
		if x == v {
			return true
		}
	}
	return false
}

// Subtree returns o and its transitive children in preorder.
func (o *Object) Subtree() []*Object {
	out := []*Object{o}
	for _, c := range o.Children {
		out = append(out, c.Subtree()...)
	}
	return out
}

// SiteObs aggregates what one operation site observed across a run.
type SiteObs struct {
	// Receivers are the tags of concrete receiver objects.
	Receivers map[Tag]bool
	// Args are the tags of reference arguments (views for add-view,
	// listeners for set-listener).
	Args map[Tag]bool
	// Results are the tags of returned view objects.
	Results map[Tag]bool
}

func newSiteObs() *SiteObs {
	return &SiteObs{
		Receivers: map[Tag]bool{},
		Args:      map[Tag]bool{},
		Results:   map[Tag]bool{},
	}
}

// Observations is the per-site record of a run.
type Observations struct {
	// Sites maps operation call sites to their observations.
	Sites map[*ir.Invoke]*SiteObs
	// ListenerPairs records every (view tag, listener tag) registration.
	ListenerPairs map[[2]Tag]bool
	// ChildPairs records every (parent tag, child tag) attachment.
	ChildPairs map[[2]Tag]bool
	// RootPairs records every (owner tag, content root tag) association.
	RootPairs map[[2]Tag]bool
	// TransitionPairs records every (source activity tag, target activity
	// tag) launch performed by startActivity.
	TransitionPairs map[[2]Tag]bool
	// Steps is the number of statements executed.
	Steps int
	// Trapped counts runtime errors (null dereferences, view-tree cycles)
	// that aborted a driver action.
	Trapped int
}

func newObservations() *Observations {
	return &Observations{
		Sites:           map[*ir.Invoke]*SiteObs{},
		ListenerPairs:   map[[2]Tag]bool{},
		ChildPairs:      map[[2]Tag]bool{},
		RootPairs:       map[[2]Tag]bool{},
		TransitionPairs: map[[2]Tag]bool{},
	}
}

func (o *Observations) site(s *ir.Invoke) *SiteObs {
	so, ok := o.Sites[s]
	if !ok {
		so = newSiteObs()
		o.Sites[s] = so
	}
	return so
}

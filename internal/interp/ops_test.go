package interp

import (
	"testing"

	"gator/internal/platform"
)

func TestCastTrap(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		this.setContentView(R.layout.main);
		View v = this.findViewById(R.id.text);
		Button b = (Button) v; // TextView is not a Button: traps
		b.setId(R.id.after);
	}
}`
	p := buildProg(t, src, map[string]string{"main": `<LinearLayout><TextView android:id="@+id/text"/></LinearLayout>`})
	obs := run(t, p, 1)
	if obs.Trapped == 0 {
		t.Error("bad cast not trapped")
	}
	// The statement after the cast never ran.
	for s, so := range obs.Sites {
		if s.Target != nil && s.Target.API != nil && s.Target.API.Kind == platform.OpSetId {
			if len(so.Receivers) > 0 {
				t.Error("setId ran after trapping cast")
			}
		}
	}
}

func TestUpcastOK(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Button b = new Button();
		TextView tv = (TextView) b; // Button extends TextView: fine
		tv.setId(R.id.mark);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Error("upcast path did not run")
	}
}

func TestGetChildAtIndex(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button first = new Button();
		TextView second = new TextView();
		root.addView(first);
		root.addView(second);
		View got = root.getChildAt(1);
		got.setId(R.id.mark);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	// getChildAt(1) deterministically picks the second child.
	find := siteObsByKind(t, p, obs, platform.OpFindView3)
	if len(find.Results) != 1 {
		t.Fatalf("results = %v", find.Results)
	}
	for tag := range find.Results {
		if tag.Alloc == nil || tag.Alloc.Class.Name != "TextView" {
			t.Errorf("result = %v, want the TextView", tag)
		}
	}
}

func TestGetChildAtOutOfRange(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button only = new Button();
		root.addView(only);
		View got = root.getChildAt(7); // picks randomly among children
		if (got != null) {
			got.setId(R.id.mark);
		}
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	find := siteObsByKind(t, p, obs, platform.OpFindView3)
	if len(find.Receivers) != 1 {
		t.Errorf("receivers = %v", find.Receivers)
	}
}

func TestSetListenerNullClears(t *testing.T) {
	src := `
class A extends Activity {
	OnClickListener none;
	void onCreate() {
		Button b = new Button();
		OnClickListener l = this.none;
		b.setOnClickListener(l); // null: no registration, no trap
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	if obs.Trapped != 0 {
		t.Error("null listener trapped")
	}
	if len(obs.ListenerPairs) != 0 {
		t.Errorf("listener pairs = %v", obs.ListenerPairs)
	}
}

func TestReparentingAllowed(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout p1 = new LinearLayout();
		LinearLayout p2 = new LinearLayout();
		Button b = new Button();
		p1.addView(b);
		p2.addView(b); // re-parent: moves b from p1 to p2
		View c1 = p1.getChildAt(0);
		View c2 = p2.getChildAt(0);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	if obs.Trapped != 0 {
		t.Error("re-parenting trapped")
	}
	// Both child pairs were observed over time.
	if len(obs.ChildPairs) != 2 {
		t.Errorf("child pairs = %v", obs.ChildPairs)
	}
}

func TestWindDownCallbacks(t *testing.T) {
	src := `
class A extends Activity {
	int state;
	void onCreate() { }
	void onPause() {
		LinearLayout v = new LinearLayout();
		v.setId(R.id.paused);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Error("onPause never ran during wind-down")
	}
}

func TestOpaqueCallsReturnNull(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Object w = this.getWindow(); // unmodeled platform method
		if (w == null) {
			LinearLayout v = new LinearLayout();
			v.setId(R.id.wasnull);
		}
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Error("opaque call did not return null")
	}
}

func TestRemoveViewConcrete(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button b = new Button();
		b.setId(R.id.gone);
		root.addView(b);
		root.removeView(b);
		this.setContentView(root);
		View v = this.findViewById(R.id.gone);
		if (v == null) {
			LinearLayout marker = new LinearLayout();
			marker.setId(R.id.confirmed_gone);
		}
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	// The view was concretely removed: the post-removal lookup failed and
	// the marker branch ran (two setId sites total; find the marker's).
	markerRan := false
	for s, so := range obs.Sites {
		if s.Target != nil && s.Target.API != nil && s.Target.API.Kind == platform.OpSetId {
			for tag := range so.Receivers {
				if tag.Kind == TagAlloc && tag.Alloc.Class.Name == "LinearLayout" {
					markerRan = true
				}
			}
		}
	}
	if !markerRan {
		t.Error("removeView did not take effect concretely")
	}
}

func TestRemoveAllViewsConcrete(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		LinearLayout root = new LinearLayout();
		Button a = new Button();
		Button b = new Button();
		root.addView(a);
		root.addView(b);
		root.removeAllViews();
		View child = root.getChildAt(0);
		if (child == null) {
			LinearLayout marker = new LinearLayout();
			marker.setId(R.id.empty_confirmed);
		}
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	set := siteObsByKind(t, p, obs, platform.OpSetId)
	if len(set.Receivers) != 1 {
		t.Error("removeAllViews did not empty the container")
	}
}

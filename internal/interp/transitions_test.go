package interp

import "testing"

func TestStartActivityConcrete(t *testing.T) {
	src := `
class SecondActivity extends Activity {
	void onCreate() {
		this.setContentView(R.layout.second);
	}
}
class FirstActivity extends Activity {
	void onCreate() {
		Intent i = new Intent(SecondActivity.class);
		this.startActivity(i);
	}
}`
	p := buildProg(t, src, map[string]string{"second": `<LinearLayout/>`})
	obs := run(t, p, 1)
	found := false
	for pair := range obs.TransitionPairs {
		if pair[0].Class.Name == "FirstActivity" && pair[1].Class.Name == "SecondActivity" {
			found = true
		}
	}
	if !found {
		t.Errorf("transition not observed: %v", obs.TransitionPairs)
	}
	// The launched activity's onCreate ran (setContentView happened at
	// least twice: once for the implicit instance, once for the launched
	// one — both share the same root pair abstraction).
	if len(obs.RootPairs) == 0 {
		t.Error("launched activity never inflated content")
	}
}

func TestCyclicLaunchBounded(t *testing.T) {
	src := `
class A extends Activity {
	void onCreate() {
		Intent i = new Intent(B.class);
		this.startActivity(i);
	}
}
class B extends Activity {
	void onCreate() {
		Intent i = new Intent(A.class);
		this.startActivity(i);
	}
}`
	p := buildProg(t, src, nil)
	obs := New(p, Config{Seed: 1, MaxSteps: 100000}).Run()
	// A<->B launches must terminate via the instance cap.
	if len(obs.TransitionPairs) != 2 {
		t.Errorf("transitions = %v", obs.TransitionPairs)
	}
}

func TestStartActivityNullIntentTraps(t *testing.T) {
	src := `
class A extends Activity {
	Intent none;
	void onCreate() {
		Intent i = this.none;
		this.startActivity(i);
	}
}`
	p := buildProg(t, src, nil)
	obs := run(t, p, 1)
	if obs.Trapped == 0 {
		t.Error("null intent launch not trapped")
	}
}

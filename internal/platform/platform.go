// Package platform models the Android platform surface that the GATOR
// reference analysis depends on: the platform class hierarchy (Activity,
// Dialog, View and its widget subclasses, LayoutInflater), the listener
// interfaces with their handler callback signatures, the activity lifecycle
// callback table, and the API model that classifies platform method calls
// into the operation categories of the paper (Inflate1/2, AddView1/2, SetId,
// SetListener, FindView1/2/3).
//
// The paper analyzes the high-level semantics of these APIs rather than
// platform method bodies; this package is the machine-readable form of that
// semantics. Each broad category covers a variety of concrete Android APIs
// ("semantic variations"), encoded here as per-method ApiSpec entries.
package platform

// OpKind is a category of Android GUI operation from Section 3 of the paper.
type OpKind int

const (
	OpNone OpKind = iota
	// OpInflate1 inflates a layout id and returns the root view
	// (LayoutInflater.inflate and friends).
	OpInflate1
	// OpInflate2 inflates a layout id and associates the root with the
	// receiver activity or dialog (setContentView(int)).
	OpInflate2
	// OpAddView1 associates an existing view with the receiver activity or
	// dialog as its content root (setContentView(View)).
	OpAddView1
	// OpAddView2 makes the argument view a child of the receiver view
	// (ViewGroup.addView variants).
	OpAddView2
	// OpSetId associates a view id with the receiver view (View.setId).
	OpSetId
	// OpSetListener associates a listener with the receiver view
	// (View.setOnClickListener and friends).
	OpSetListener
	// OpFindView1 searches the hierarchy rooted at the receiver view for a
	// descendant with the argument view id (View.findViewById).
	OpFindView1
	// OpFindView2 searches the receiver activity's (or dialog's) content
	// hierarchy for a view with the argument id (Activity.findViewById).
	OpFindView2
	// OpFindView3 retrieves some descendant view with a run-time property
	// (findFocus, getCurrentView, getChildAt, ...).
	OpFindView3
	// OpSetIntentTarget associates an intent with its target component
	// class (Intent construction and Intent.setClass). An inter-component
	// extension beyond the paper, motivated by its Section 6.
	OpSetIntentTarget
	// OpStartActivity launches the activities targeted by the argument
	// intent (Activity.startActivity).
	OpStartActivity
	// OpFindParent retrieves the parent of the receiver view
	// (View.getParent); the inverse of the parent-child relation.
	OpFindParent
	// OpMenuAdd creates a menu item in the receiver menu (Menu.add(int));
	// part of the options-menu extension.
	OpMenuAdd
	// OpSetAdapter binds a list adapter to an AdapterView
	// (AdapterView.setAdapter); the views the adapter's getView returns
	// become children of the receiver.
	OpSetAdapter
	// OpRemoveView detaches a child (ViewGroup.removeView/removeAllViews).
	// The static relations are monotone over-approximations, so the
	// analysis treats removal as a no-op; the interpreter performs it.
	OpRemoveView
	// OpFindMenuItem retrieves the menu item carrying the argument item id
	// from the receiver menu (Menu.findItem); the menu-space analogue of
	// findViewById.
	OpFindMenuItem
	// OpShowDialog makes the receiver dialog visible (Dialog.show). The
	// static relations are monotone, so showing is a no-op for the solver;
	// the ordering checkers read the operation's position in the lifecycle.
	OpShowDialog
	// OpDismissDialog hides the receiver dialog (Dialog.dismiss); a no-op
	// for the monotone solver, like OpRemoveView.
	OpDismissDialog
)

var opKindNames = [...]string{
	OpNone:            "None",
	OpInflate1:        "Inflate1",
	OpInflate2:        "Inflate2",
	OpAddView1:        "AddView1",
	OpAddView2:        "AddView2",
	OpSetId:           "SetId",
	OpSetListener:     "SetListener",
	OpFindView1:       "FindView1",
	OpFindView2:       "FindView2",
	OpFindView3:       "FindView3",
	OpSetIntentTarget: "SetIntentTarget",
	OpStartActivity:   "StartActivity",
	OpFindParent:      "FindParent",
	OpMenuAdd:         "MenuAdd",
	OpSetAdapter:      "SetAdapter",
	OpRemoveView:      "RemoveView",
	OpFindMenuItem:    "FindMenuItem",
	OpShowDialog:      "ShowDialog",
	OpDismissDialog:   "DismissDialog",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "OpKind?"
}

// Scope limits which views an OpFindView3 operation may retrieve.
type Scope int

const (
	// ScopeDescendants permits any transitive descendant (and the receiver).
	ScopeDescendants Scope = iota
	// ScopeChildren permits only direct children of the receiver. This is the
	// refinement the paper mentions for getCurrentView/getChildAt.
	ScopeChildren
)

// ApiSpec describes one platform method that the analysis models.
type ApiSpec struct {
	// Class is the platform class declaring the method. Subclass receivers
	// match through the hierarchy.
	Class string
	// Name is the method name.
	Name string
	// Params are the declared parameter types ("int" or a class name).
	Params []string
	// Return is the declared return type, or "" / "void" for none.
	Return string
	// Kind is the operation category.
	Kind OpKind
	// Scope refines OpFindView3 (ignored for other kinds).
	Scope Scope
	// Event names the GUI event for OpSetListener (e.g. "click"); it selects
	// the handler callback in the listener interface.
	Event string
	// AttachParent marks the Inflate1 variants that also attach the inflated
	// root to a parent ViewGroup argument (inflate(int, ViewGroup)). The
	// parent is the parameter at index ParentArg.
	AttachParent bool
	// ParentArg is the index of the parent parameter when AttachParent.
	ParentArg int
}

// HandlerSig describes one callback method of a listener interface. When a
// SetListener operation registers a listener, the platform later invokes this
// callback with the view as the parameter at ViewParams positions.
type HandlerSig struct {
	Name string
	// Params are the declared parameter types of the callback.
	Params []string
	// ViewParams are the indices of parameters that receive the view the
	// event occurred on (onItemClick receives both the AdapterView parent
	// and the child item view).
	ViewParams []int
	Return     string
}

// ListenerSpec describes one listener interface: the event it handles, the
// set-listener method that registers it, and its callback signatures.
type ListenerSpec struct {
	// Interface is the listener interface name (e.g. "OnClickListener").
	Interface string
	// Event is the GUI event name, matching ApiSpec.Event.
	Event string
	// Handlers are the callback methods the platform invokes.
	Handlers []HandlerSig
}

// ClassSpec describes one platform class or interface.
type ClassSpec struct {
	Name       string
	Super      string // "" only for Object
	Interfaces []string
	IsIface    bool
}

// Hierarchy returns the modeled platform class hierarchy. The returned slice
// is freshly allocated on each call; callers may modify it.
func Hierarchy() []ClassSpec {
	specs := []ClassSpec{
		{Name: "Object"},

		// Core application components.
		{Name: "Activity", Super: "Object"},
		{Name: "ListActivity", Super: "Activity"},
		{Name: "PreferenceActivity", Super: "Activity"},
		{Name: "TabActivity", Super: "Activity"},
		{Name: "Dialog", Super: "Object"},
		{Name: "AlertDialog", Super: "Dialog"},

		// View hierarchy.
		{Name: "View", Super: "Object"},
		{Name: "TextView", Super: "View"},
		{Name: "Button", Super: "TextView"},
		{Name: "EditText", Super: "TextView"},
		{Name: "CheckBox", Super: "Button"},
		{Name: "RadioButton", Super: "Button"},
		{Name: "ToggleButton", Super: "Button"},
		{Name: "Chronometer", Super: "TextView"},
		{Name: "ImageView", Super: "View"},
		{Name: "ImageButton", Super: "ImageView"},
		{Name: "ProgressBar", Super: "View"},
		{Name: "SeekBar", Super: "ProgressBar"},
		{Name: "RatingBar", Super: "ProgressBar"},
		{Name: "SurfaceView", Super: "View"},
		{Name: "WebView", Super: "View"},

		// Containers.
		{Name: "ViewGroup", Super: "View"},
		{Name: "LinearLayout", Super: "ViewGroup"},
		{Name: "RadioGroup", Super: "LinearLayout"},
		{Name: "TableLayout", Super: "LinearLayout"},
		{Name: "TableRow", Super: "LinearLayout"},
		{Name: "RelativeLayout", Super: "ViewGroup"},
		{Name: "FrameLayout", Super: "ViewGroup"},
		{Name: "ScrollView", Super: "FrameLayout"},
		{Name: "HorizontalScrollView", Super: "FrameLayout"},
		{Name: "TabHost", Super: "FrameLayout"},
		{Name: "ViewAnimator", Super: "FrameLayout"},
		{Name: "ViewFlipper", Super: "ViewAnimator"},
		{Name: "ViewSwitcher", Super: "ViewAnimator"},
		{Name: "AdapterView", Super: "ViewGroup"},
		{Name: "ListView", Super: "AdapterView"},
		{Name: "GridView", Super: "AdapterView"},
		{Name: "Spinner", Super: "AdapterView"},
		{Name: "Gallery", Super: "AdapterView"},

		// Helpers.
		{Name: "LayoutInflater", Super: "Object"},
		{Name: "Menu", Super: "Object"},
		{Name: "MenuItem", Super: "Object"},
		{Name: "Bundle", Super: "Object"},
		{Name: "Intent", Super: "Object"},
		{Name: "Class", Super: "Object"},
		{Name: "Adapter", Super: "Object", IsIface: true},
	}
	for _, l := range Listeners() {
		specs = append(specs, ClassSpec{Name: l.Interface, Super: "Object", IsIface: true})
	}
	return specs
}

// Listeners returns the modeled listener interfaces.
func Listeners() []ListenerSpec {
	return []ListenerSpec{
		{
			Interface: "OnClickListener", Event: "click",
			Handlers: []HandlerSig{{Name: "onClick", Params: []string{"View"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnLongClickListener", Event: "longclick",
			Handlers: []HandlerSig{{Name: "onLongClick", Params: []string{"View"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnTouchListener", Event: "touch",
			Handlers: []HandlerSig{{Name: "onTouch", Params: []string{"View"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnKeyListener", Event: "key",
			Handlers: []HandlerSig{{Name: "onKey", Params: []string{"View", "int"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnFocusChangeListener", Event: "focus",
			Handlers: []HandlerSig{{Name: "onFocusChange", Params: []string{"View"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnItemClickListener", Event: "itemclick",
			Handlers: []HandlerSig{{Name: "onItemClick", Params: []string{"AdapterView", "View", "int"}, ViewParams: []int{0, 1}, Return: "void"}},
		},
		{
			Interface: "OnItemSelectedListener", Event: "itemselected",
			Handlers: []HandlerSig{
				{Name: "onItemSelected", Params: []string{"AdapterView", "View", "int"}, ViewParams: []int{0, 1}, Return: "void"},
				{Name: "onNothingSelected", Params: []string{"AdapterView"}, ViewParams: []int{0}, Return: "void"},
			},
		},
		{
			Interface: "OnItemLongClickListener", Event: "itemlongclick",
			Handlers: []HandlerSig{{Name: "onItemLongClick", Params: []string{"AdapterView", "View", "int"}, ViewParams: []int{0, 1}, Return: "void"}},
		},
		{
			Interface: "OnCheckedChangeListener", Event: "checkedchange",
			Handlers: []HandlerSig{{Name: "onCheckedChanged", Params: []string{"View"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnEditorActionListener", Event: "editoraction",
			Handlers: []HandlerSig{{Name: "onEditorAction", Params: []string{"TextView", "int"}, ViewParams: []int{0}, Return: "void"}},
		},
		{
			Interface: "OnSeekBarChangeListener", Event: "seekbarchange",
			Handlers: []HandlerSig{
				{Name: "onProgressChanged", Params: []string{"SeekBar", "int"}, ViewParams: []int{0}, Return: "void"},
				{Name: "onStartTrackingTouch", Params: []string{"SeekBar"}, ViewParams: []int{0}, Return: "void"},
				{Name: "onStopTrackingTouch", Params: []string{"SeekBar"}, ViewParams: []int{0}, Return: "void"},
			},
		},
	}
}

// setListenerAPIs derives the set-listener registration methods, one per
// listener interface, each declared on the widget class that hosts it.
func setListenerAPIs() []ApiSpec {
	host := map[string]string{
		"OnItemClickListener":     "AdapterView",
		"OnItemSelectedListener":  "AdapterView",
		"OnItemLongClickListener": "AdapterView",
		"OnCheckedChangeListener": "CheckBox",
		"OnEditorActionListener":  "TextView",
		"OnSeekBarChangeListener": "SeekBar",
	}
	var out []ApiSpec
	for _, l := range Listeners() {
		cls, ok := host[l.Interface]
		if !ok {
			cls = "View"
		}
		out = append(out, ApiSpec{
			Class:  cls,
			Name:   "set" + l.Interface,
			Params: []string{l.Interface},
			Return: "void",
			Kind:   OpSetListener,
			Event:  l.Event,
		})
	}
	return out
}

// APIs returns the modeled platform methods, classified by operation kind.
func APIs() []ApiSpec {
	specs := []ApiSpec{
		// Inflate2: content inflation into an activity or dialog.
		{Class: "Activity", Name: "setContentView", Params: []string{"int"}, Return: "void", Kind: OpInflate2},
		{Class: "Dialog", Name: "setContentView", Params: []string{"int"}, Return: "void", Kind: OpInflate2},

		// AddView1: associate an existing view as the content root.
		{Class: "Activity", Name: "setContentView", Params: []string{"View"}, Return: "void", Kind: OpAddView1},
		{Class: "Dialog", Name: "setContentView", Params: []string{"View"}, Return: "void", Kind: OpAddView1},

		// Inflate1: inflate and return the root.
		{Class: "LayoutInflater", Name: "inflate", Params: []string{"int"}, Return: "View", Kind: OpInflate1},
		{Class: "LayoutInflater", Name: "inflate", Params: []string{"int", "ViewGroup"}, Return: "View", Kind: OpInflate1, AttachParent: true, ParentArg: 1},

		// AddView2: explicit parent-child construction.
		{Class: "ViewGroup", Name: "addView", Params: []string{"View"}, Return: "void", Kind: OpAddView2},
		{Class: "ViewGroup", Name: "addView", Params: []string{"View", "int"}, Return: "void", Kind: OpAddView2},

		// RemoveView: concrete detach, static no-op (monotone abstraction).
		{Class: "ViewGroup", Name: "removeView", Params: []string{"View"}, Return: "void", Kind: OpRemoveView},
		{Class: "ViewGroup", Name: "removeAllViews", Return: "void", Kind: OpRemoveView},

		// SetId.
		{Class: "View", Name: "setId", Params: []string{"int"}, Return: "void", Kind: OpSetId},

		// FindView1/2.
		{Class: "View", Name: "findViewById", Params: []string{"int"}, Return: "View", Kind: OpFindView1},
		{Class: "Activity", Name: "findViewById", Params: []string{"int"}, Return: "View", Kind: OpFindView2},
		{Class: "Dialog", Name: "findViewById", Params: []string{"int"}, Return: "View", Kind: OpFindView2},

		// Inter-component control flow (Section 6 extension): intents carry
		// a target component class; startActivity launches it. The Intent
		// constructor taking a Class is modeled as a set-intent-target
		// operation on the freshly allocated intent.
		{Class: "Intent", Name: "Intent", Params: []string{"Class"}, Return: "void", Kind: OpSetIntentTarget},
		{Class: "Intent", Name: "setClass", Params: []string{"Class"}, Return: "Intent", Kind: OpSetIntentTarget},
		{Class: "Activity", Name: "startActivity", Params: []string{"Intent"}, Return: "void", Kind: OpStartActivity},

		// List adapters: the adapter's getView results populate the
		// AdapterView.
		{Class: "AdapterView", Name: "setAdapter", Params: []string{"Adapter"}, Return: "void", Kind: OpSetAdapter},

		// Options menus: Menu.add(itemId) creates a MenuItem;
		// Menu.findItem(itemId) retrieves it by id, like findViewById does
		// for views.
		{Class: "Menu", Name: "add", Params: []string{"int"}, Return: "MenuItem", Kind: OpMenuAdd},
		{Class: "Menu", Name: "findItem", Params: []string{"int"}, Return: "MenuItem", Kind: OpFindMenuItem},

		// Dialog visibility. Show/dismiss do not change the monotone
		// solution; they anchor the lifecycle-ordering checkers.
		{Class: "Dialog", Name: "show", Return: "void", Kind: OpShowDialog},
		{Class: "Dialog", Name: "dismiss", Return: "void", Kind: OpDismissDialog},

		// FindParent: the inverse hierarchy query.
		{Class: "View", Name: "getParent", Return: "ViewGroup", Kind: OpFindParent},

		// FindView3 and its child-only refinements.
		{Class: "View", Name: "findFocus", Return: "View", Kind: OpFindView3, Scope: ScopeDescendants},
		{Class: "ViewGroup", Name: "getFocusedChild", Return: "View", Kind: OpFindView3, Scope: ScopeChildren},
		{Class: "ViewGroup", Name: "getChildAt", Params: []string{"int"}, Return: "View", Kind: OpFindView3, Scope: ScopeChildren},
		{Class: "ViewAnimator", Name: "getCurrentView", Return: "View", Kind: OpFindView3, Scope: ScopeChildren},
		{Class: "AdapterView", Name: "getSelectedView", Return: "View", Kind: OpFindView3, Scope: ScopeChildren},
	}
	return append(specs, setListenerAPIs()...)
}

// Lifecycle lists the activity lifecycle callback methods the framework may
// invoke on an activity instance. Signature: no parameters, void return
// (parameters such as the Bundle of onCreate carry no GUI objects and are
// dropped by the ALite abstraction).
var Lifecycle = []string{
	"onCreate", "onStart", "onRestart", "onResume",
	"onPause", "onStop", "onDestroy",
}

// DialogLifecycle lists the callbacks invoked on explicitly-created dialogs.
var DialogLifecycle = []string{"onCreate", "onStart", "onStop"}

// MenuCreateCallback is the callback the platform invokes on an activity to
// populate its options menu; its single parameter is the Menu.
const MenuCreateCallback = "onCreateOptionsMenu"

// MenuSelectCallback is the callback the platform invokes when a menu item
// is selected; its single parameter is the MenuItem.
const MenuSelectCallback = "onOptionsItemSelected"

// DialogCreateCallback is the callback the platform invokes on an activity
// to create a managed dialog; its single parameter is the dialog id.
const DialogCreateCallback = "onCreateDialog"

// ListenerByInterface returns the ListenerSpec for an interface name.
func ListenerByInterface(name string) (ListenerSpec, bool) {
	for _, l := range Listeners() {
		if l.Interface == name {
			return l, true
		}
	}
	return ListenerSpec{}, false
}

// ListenerByEvent returns the ListenerSpec handling the given event name.
func ListenerByEvent(event string) (ListenerSpec, bool) {
	for _, l := range Listeners() {
		if l.Event == event {
			return l, true
		}
	}
	return ListenerSpec{}, false
}

package platform

import "testing"

func TestHierarchyWellFormed(t *testing.T) {
	specs := Hierarchy()
	byName := map[string]ClassSpec{}
	for _, s := range specs {
		if _, dup := byName[s.Name]; dup {
			t.Errorf("duplicate class %s", s.Name)
		}
		byName[s.Name] = s
	}
	if len(byName) < 40 {
		t.Errorf("hierarchy has %d classes, expected a broad model", len(byName))
	}
	for _, s := range specs {
		if s.Name == "Object" {
			if s.Super != "" {
				t.Error("Object has a superclass")
			}
			continue
		}
		if s.IsIface {
			continue
		}
		sup, ok := byName[s.Super]
		if !ok {
			t.Errorf("%s extends unknown %q", s.Name, s.Super)
			continue
		}
		if sup.IsIface {
			t.Errorf("%s extends interface %s", s.Name, s.Super)
		}
	}
	// No cycles: walk every chain to Object.
	for _, s := range specs {
		seen := map[string]bool{}
		for cur := s.Name; cur != ""; cur = byName[cur].Super {
			if seen[cur] {
				t.Fatalf("cycle through %s", cur)
			}
			seen[cur] = true
		}
	}
}

func TestListenersConsistent(t *testing.T) {
	events := map[string]bool{}
	for _, l := range Listeners() {
		if events[l.Event] {
			t.Errorf("duplicate event %q", l.Event)
		}
		events[l.Event] = true
		if len(l.Handlers) == 0 {
			t.Errorf("%s has no handlers", l.Interface)
		}
		for _, h := range l.Handlers {
			if len(h.ViewParams) == 0 {
				t.Errorf("%s.%s has no view parameter", l.Interface, h.Name)
			}
			for _, vi := range h.ViewParams {
				if vi < 0 || vi >= len(h.Params) {
					t.Errorf("%s.%s view param %d out of range", l.Interface, h.Name, vi)
				}
				if h.Params[vi] == "int" {
					t.Errorf("%s.%s view param %d is an int", l.Interface, h.Name, vi)
				}
			}
		}
		spec, ok := ListenerByInterface(l.Interface)
		if !ok || spec.Event != l.Event {
			t.Errorf("ListenerByInterface(%s) = %+v, %v", l.Interface, spec, ok)
		}
		spec, ok = ListenerByEvent(l.Event)
		if !ok || spec.Interface != l.Interface {
			t.Errorf("ListenerByEvent(%s) = %+v, %v", l.Event, spec, ok)
		}
	}
	if _, ok := ListenerByInterface("Nope"); ok {
		t.Error("found nonexistent interface")
	}
	if _, ok := ListenerByEvent("nope"); ok {
		t.Error("found nonexistent event")
	}
}

func TestAPIsConsistent(t *testing.T) {
	classes := map[string]bool{}
	for _, s := range Hierarchy() {
		classes[s.Name] = true
	}
	seen := map[string]bool{}
	setListeners := 0
	for _, api := range APIs() {
		if !classes[api.Class] {
			t.Errorf("API %s.%s on unknown class", api.Class, api.Name)
		}
		key := api.Class + "." + api.Name + "/" + KindsOf(api.Params)
		if seen[key] {
			t.Errorf("duplicate API %s", key)
		}
		seen[key] = true
		if api.Kind == OpNone {
			t.Errorf("API %s has no kind", key)
		}
		if api.Kind == OpSetListener {
			setListeners++
			if _, ok := ListenerByEvent(api.Event); !ok {
				t.Errorf("set-listener API %s has unknown event %q", key, api.Event)
			}
		}
		if api.AttachParent && (api.ParentArg <= 0 || api.ParentArg >= len(api.Params)) {
			t.Errorf("API %s: bad ParentArg", key)
		}
		for _, p := range api.Params {
			if p != "int" && !classes[p] {
				t.Errorf("API %s: unknown param type %q", key, p)
			}
		}
		if api.Return != "" && api.Return != "void" && api.Return != "int" && !classes[api.Return] {
			t.Errorf("API %s: unknown return type %q", key, api.Return)
		}
	}
	if setListeners != len(Listeners()) {
		t.Errorf("set-listener APIs = %d, listeners = %d", setListeners, len(Listeners()))
	}
}

// KindsOf encodes param types for duplicate detection in tests.
func KindsOf(params []string) string {
	out := make([]byte, len(params))
	for i, p := range params {
		if p == "int" {
			out[i] = 'I'
		} else {
			out[i] = 'R'
		}
	}
	return string(out)
}

func TestOpKindStrings(t *testing.T) {
	kinds := []OpKind{OpNone, OpInflate1, OpInflate2, OpAddView1, OpAddView2,
		OpSetId, OpSetListener, OpFindView1, OpFindView2, OpFindView3}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || s == "OpKind?" || seen[s] {
			t.Errorf("bad OpKind string %q", s)
		}
		seen[s] = true
	}
	if OpKind(99).String() != "OpKind?" {
		t.Errorf("out-of-range kind = %q", OpKind(99).String())
	}
}

func TestLifecycleTables(t *testing.T) {
	if len(Lifecycle) != 7 || Lifecycle[0] != "onCreate" {
		t.Errorf("lifecycle = %v", Lifecycle)
	}
	for _, d := range DialogLifecycle {
		found := false
		for _, l := range Lifecycle {
			if l == d {
				found = true
			}
		}
		if !found {
			t.Errorf("dialog lifecycle %s not in activity lifecycle", d)
		}
	}
}

func TestHierarchyIsFresh(t *testing.T) {
	a := Hierarchy()
	a[0].Name = "Mutated"
	b := Hierarchy()
	if b[0].Name == "Mutated" {
		t.Error("Hierarchy returns shared state")
	}
}

package corpus

// Ordering-bug scenario generator: synthesized apps that seed exactly one
// lifecycle/callback-ordering bug, parameterized by which bug and by how
// deeply the buggy operation hides behind helper methods and nondet
// branches. Every buggy scenario has a clean twin — the same shape with the
// operation relocated to (or compensated in) a legal callback — so the
// measured-recall benchmark (gatorbench -lifejson) can report both recall
// on seeded bugs and false positives on twins that differ only in ordering.

import (
	"fmt"
	"strings"

	"gator/internal/alite"
	"gator/internal/layout"
)

// OrderingBug selects which seeded lifecycle bug a scenario contains.
type OrderingBug int

const (
	// BugUseAfterDestroy registers GUI state from onDestroy.
	BugUseAfterDestroy OrderingBug = iota
	// BugListenerLeakOnPause registers a listener in onResume and never
	// clears it on pause.
	BugListenerLeakOnPause
	// BugDialogMisuse shows a dialog from a teardown callback.
	BugDialogMisuse

	NumOrderingBugs = 3
)

func (b OrderingBug) String() string {
	switch b {
	case BugUseAfterDestroy:
		return "use-after-destroy"
	case BugListenerLeakOnPause:
		return "listener-leak-on-pause"
	case BugDialogMisuse:
		return "dialog-misuse"
	}
	return "bug?"
}

// CheckerID names the registered checker that must locate this bug.
func (b OrderingBug) CheckerID() string { return "lifecycle-" + b.String() }

// ScenarioSpec parameterizes one generated ordering scenario.
type ScenarioSpec struct {
	// Bug is the seeded defect (ignored as a defect when Clean is set).
	Bug OrderingBug
	// Depth is the helper-chain length between the lifecycle callback and
	// the buggy operation: 0 places the operation inline in the callback.
	Depth int
	// Branch wraps the operation in a nondeterministic `if (*)` branch.
	Branch bool
	// Seed varies cosmetic choices (listener event, teardown callback).
	Seed int
	// Clean generates the bug's clean twin: the identical helper/branch
	// shape with the operation placed (or compensated) legally. A clean
	// twin must produce zero findings from every lifecycle checker.
	Clean bool
}

// Name is the scenario's deterministic app name.
func (s ScenarioSpec) Name() string {
	n := fmt.Sprintf("life_%s_d%d_s%d", s.Bug, s.Depth, s.Seed)
	if s.Branch {
		n += "_br"
	}
	if s.Clean {
		n += "_clean"
	}
	return strings.ReplaceAll(n, "-", "_")
}

// CleanTwin returns the spec's clean counterpart.
func (s ScenarioSpec) CleanTwin() ScenarioSpec {
	s.Clean = true
	return s
}

// teardownOf picks the teardown callback a dialog-misuse scenario shows its
// dialog from. onDestroy is excluded to keep each scenario's defect
// attributable to exactly one checker.
func (s ScenarioSpec) teardownOf() string {
	if s.Seed%2 == 1 {
		return "onStop"
	}
	return "onPause"
}

// GenerateScenario synthesizes the app for one scenario spec. The result
// always parses and builds; the fuzz target FuzzOrderingScenario holds the
// generator to that contract for arbitrary specs.
func GenerateScenario(s ScenarioSpec) *App {
	if s.Depth < 0 {
		s.Depth = 0
	}
	ev := listenerEvents[absInt(s.Seed)%len(listenerEvents)]

	// The operation payloads, as statement lines (tab-indented later).
	register := []string{
		"View tv = this.findViewById(R.id.go);",
		"Hnd h = new Hnd();",
		fmt.Sprintf("tv.%s(h);", ev.setter),
	}
	clear := []string{
		"View cv = this.findViewById(R.id.go);",
		fmt.Sprintf("cv.%s(null);", ev.setter),
	}
	showDialog := []string{
		"Prompt dlg = new Prompt();",
		"dlg.show();",
	}

	var b strings.Builder
	fmt.Fprintf(&b, "// Generated ordering scenario %s: %s", s.Name(), s.Bug)
	if s.Clean {
		b.WriteString(" (clean twin)")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "class Hnd implements %s {\n\tvoid %s(View v) { }\n}\n",
		ev.iface, ev.handler)
	if s.Bug == BugDialogMisuse {
		b.WriteString("class Prompt extends Dialog {\n\tvoid onStart() { }\n}\n")
	}

	b.WriteString("class Main extends Activity {\n")

	// chain emits the helper chain rooted at the named callback and returns
	// the method bodies to append after the callbacks.
	var helpers []string
	chainFrom := func(payload []string) string {
		body := payloadLines(payload, s.Branch)
		if s.Depth == 0 {
			return body
		}
		// Helper i calls i+1; the last holds the payload.
		for i := 0; i < s.Depth; i++ {
			inner := fmt.Sprintf("\t\tthis.step%d();\n", i+1)
			if i == s.Depth-1 {
				inner = body
			}
			helpers = append(helpers, fmt.Sprintf("\tvoid step%d() {\n%s\t}\n", i, inner))
		}
		return "\t\tthis.step0();\n"
	}

	onCreate := "\t\tthis.setContentView(R.layout.main);\n"
	callbacks := map[string]string{}
	switch s.Bug {
	case BugUseAfterDestroy:
		if s.Clean {
			onCreate += chainFrom(register)
			callbacks["onDestroy"] = ""
		} else {
			callbacks["onDestroy"] = chainFrom(register)
		}
	case BugListenerLeakOnPause:
		callbacks["onResume"] = chainFrom(register)
		if s.Clean {
			callbacks["onPause"] = payloadLines(clear, false)
		} else {
			callbacks["onPause"] = ""
		}
	case BugDialogMisuse:
		if s.Clean {
			callbacks["onResume"] = chainFrom(showDialog)
			callbacks[s.teardownOf()] = ""
		} else {
			callbacks[s.teardownOf()] = chainFrom(showDialog)
		}
	}

	fmt.Fprintf(&b, "\tvoid onCreate() {\n%s\t}\n", onCreate)
	for _, cb := range []string{"onStart", "onResume", "onPause", "onStop", "onDestroy"} {
		body, ok := callbacks[cb]
		if !ok {
			continue
		}
		fmt.Fprintf(&b, "\tvoid %s() {\n%s\t}\n", cb, body)
	}
	for _, h := range helpers {
		b.WriteString(h)
	}
	b.WriteString("}\n")

	name := s.Name()
	src := b.String()
	return &App{
		Name:   name,
		Source: src,
		Files:  []*alite.File{alite.MustParse(name+".alite", src)},
		Layouts: map[string]*layout.Layout{
			"main": layout.MustParse("main", `<LinearLayout><Button android:id="@+id/go"/></LinearLayout>`),
		},
	}
}

// payloadLines renders payload statements at callback-body indentation,
// optionally wrapped in a nondet branch.
func payloadLines(payload []string, branch bool) string {
	var b strings.Builder
	indent := "\t\t"
	if branch {
		b.WriteString("\t\tif (*) {\n")
		indent = "\t\t\t"
	}
	for _, line := range payload {
		b.WriteString(indent)
		b.WriteString(line)
		b.WriteString("\n")
	}
	if branch {
		b.WriteString("\t\t}\n")
	}
	return b.String()
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// ScenarioPack enumerates n buggy scenario specs spread deterministically
// over the bug kinds, helper depths 0..3, and branch shapes. Clean twins
// are derived per spec with CleanTwin; the pack itself lists only the
// seeded-bug side.
func ScenarioPack(n int) []ScenarioSpec {
	out := make([]ScenarioSpec, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ScenarioSpec{
			Bug:    OrderingBug(i % int(NumOrderingBugs)),
			Depth:  (i / int(NumOrderingBugs)) % 4,
			Branch: (i/(int(NumOrderingBugs)*4))%2 == 1,
			Seed:   i,
		})
	}
	return out
}

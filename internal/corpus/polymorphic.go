package corpus

import (
	"fmt"
	"strings"
)

// PolymorphicHelperApp generates the canonical context-sensitivity stressor:
// one shared findAndCast-style helper on a base activity class, invoked from
// n activities that each inflate a distinct layout. Context-insensitively,
// the helper's receiver merges every activity and its findViewById result
// merges every activity's button, so each caller sees all n buttons and
// each listener attaches to all n of them — the paper's XBMC-shaped
// receiver imprecision in miniature. Under 1-CFA (one context per call
// site) or 1-object sensitivity (one context per receiver class) the
// helper's operation nodes split per caller and every activity gets exactly
// its own button back. The same n always yields the same bytes.
//
// n activities produce 2*n+1 compilation units (source + layout per
// activity, plus the shared base-class unit).
func PolymorphicHelperApp(n int) (sources, layouts map[string]string) {
	if n < 1 {
		n = 1
	}
	sources = map[string]string{}
	layouts = map[string]string{}

	var h strings.Builder
	h.WriteString("class BaseAct extends Activity {\n")
	h.WriteString("\tView findAndCast(int id) {\n")
	h.WriteString("\t\tView v = this.findViewById(id);\n")
	h.WriteString("\t\treturn v;\n")
	h.WriteString("\t}\n")
	h.WriteString("}\n")
	sources["phbase.alite"] = h.String()

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("ph%d", i)
		layouts[name] = fmt.Sprintf(
			`<LinearLayout android:id="@+id/%[1]s_root">`+
				`<Button android:id="@+id/%[1]s_btn"/>`+
				`<TextView android:id="@+id/%[1]s_txt"/>`+
				`</LinearLayout>`, name)

		var b strings.Builder
		fmt.Fprintf(&b, "class Pl%d implements OnClickListener {\n", i)
		b.WriteString("\tView got;\n")
		b.WriteString("\tvoid onClick(View v) {\n\t\tthis.got = v;\n\t}\n")
		b.WriteString("}\n")
		fmt.Fprintf(&b, "class PhAct%d extends BaseAct {\n", i)
		b.WriteString("\tView keep;\n")
		b.WriteString("\tvoid onCreate() {\n")
		fmt.Fprintf(&b, "\t\tthis.setContentView(R.layout.%s);\n", name)
		fmt.Fprintf(&b, "\t\tView w = this.findAndCast(R.id.%s_btn);\n", name)
		fmt.Fprintf(&b, "\t\tPl%d pl = new Pl%d();\n", i, i)
		b.WriteString("\t\tw.setOnClickListener(pl);\n")
		b.WriteString("\t\tthis.keep = w;\n")
		b.WriteString("\t}\n")
		b.WriteString("}\n")
		sources[name+".alite"] = b.String()
	}
	return sources, layouts
}
